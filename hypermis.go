// Package hypermis is a Go library for computing maximal independent
// sets (MIS) of hypergraphs in parallel. It is a full reproduction of
//
//	Bercea, Goyal, Harris, Srinivasan:
//	"On Computing Maximal Independent Sets of Hypergraphs in Parallel"
//	(SPAA 2014, arXiv:1405.1133)
//
// and packages the paper's SBL algorithm — the first n^{o(1)}-time
// parallel MIS algorithm for general hypergraphs with
// m ≤ n^{log log n/(8(log log log n)²)} edges — together with every
// algorithm it builds on: the Beame–Luby marking algorithm (with
// Kelsen's analysis extended to super-constant dimension), the
// Karp–Upfal–Wigderson O(√n) algorithm, Luby's graph-MIS algorithm for
// the dimension-2 case, and sequential greedy baselines.
//
// # Quick start
//
//	h, err := hypermis.NewBuilder(6).
//		AddEdge(0, 1, 2).
//		AddEdge(2, 3, 4).
//		Build()
//	res, err := hypermis.Solve(h, hypermis.Options{Seed: 1})
//	// res.MIS is a vertex mask; res.Size its cardinality.
//	err = hypermis.VerifyMIS(h, res.MIS) // nil: independent and maximal
//
// A maximal independent set of a hypergraph H = (V, E) is a set S ⊆ V
// containing no edge entirely (independence) such that adding any
// vertex would complete an edge (maximality). For dimension 2 this is
// the classic graph MIS.
//
// # Cost model
//
// Alongside wall-clock parallelism (the solvers use multicore
// goroutine primitives internally), every solve can account idealized
// EREW PRAM work and depth — the quantities the paper's theorems bound.
// Set Options.CollectCost and read Result.Depth / Result.Work.
//
// The experiment suite regenerating the paper's analytical claims lives
// under cmd/experiments; see DESIGN.md and EXPERIMENTS.md.
package hypermis

import (
	"repro/internal/hypergraph"
)

// V is a vertex identifier in [0, N).
type V = hypergraph.V

// Edge is a set of vertices stored as a strictly increasing slice.
type Edge = hypergraph.Edge

// Hypergraph is an immutable hypergraph on vertices {0, …, N−1}.
type Hypergraph = hypergraph.Hypergraph

// Builder accumulates edges and produces a canonical Hypergraph.
type Builder = hypergraph.Builder

// NewBuilder returns a builder for a hypergraph on n vertices.
func NewBuilder(n int) *Builder { return hypergraph.NewBuilder(n) }

// FromEdges builds a hypergraph from an edge list (canonicalized:
// sorted, deduplicated; empty edges rejected).
func FromEdges(n int, edges []Edge) (*Hypergraph, error) {
	return hypergraph.FromEdges(n, edges)
}

// VerifyMIS checks that mask is a maximal independent set of h,
// returning nil on success or a descriptive error naming the violated
// property and a witness.
func VerifyMIS(h *Hypergraph, mask []bool) error {
	return hypergraph.VerifyMIS(h, mask)
}

// IsIndependent reports whether the vertex set contains no edge of h.
func IsIndependent(h *Hypergraph, mask []bool) bool {
	return hypergraph.IsIndependent(h, mask)
}

// MaskFromList converts a vertex list into a boolean mask of length n.
func MaskFromList(n int, vs []V) []bool { return hypergraph.MaskFromList(n, vs) }

// ListFromMask converts a boolean mask into a sorted vertex list.
func ListFromMask(mask []bool) []V { return hypergraph.ListFromMask(mask) }
