package hypermis

import (
	"context"

	"repro/internal/hypergraph"
)

// The MIS/transversal duality: S is a maximal independent set of H iff
// V\S is a minimal transversal (hitting set) of H. The parallel MIS
// algorithms in this library therefore double as parallel
// minimal-hitting-set algorithms.

// IsTransversal reports whether the set intersects every edge of h.
func IsTransversal(h *Hypergraph, mask []bool) bool {
	return hypergraph.IsTransversal(h, mask)
}

// VerifyMinimalTransversal checks coverage and minimality (removing any
// member leaves some edge unhit), returning nil or a witnessed error.
func VerifyMinimalTransversal(h *Hypergraph, mask []bool) error {
	return hypergraph.VerifyMinimalTransversal(h, mask)
}

// TransversalResult is the result of MinimalTransversalCtx: the
// transversal mask plus the telemetry of the MIS solve it complements.
// MISSize + Size == h.N() always — the mask is exactly the complement
// of the solved maximal independent set.
type TransversalResult struct {
	// Transversal[v] reports whether vertex v is in the transversal.
	Transversal []bool
	// Size is the number of vertices in the transversal.
	Size int
	// MISSize is the size of the complementary maximal independent set.
	MISSize int
	// Algorithm that was used (AlgAuto resolved).
	Algorithm Algorithm
	// Rounds is the underlying solve's outer round count.
	Rounds int
	// Depth and Work are PRAM cost measures (Options.CollectCost only).
	Depth int64
	Work  int64
	// Trace is the underlying solve's per-round telemetry
	// (Options.Trace only).
	Trace []RoundTrace
}

// MinimalTransversal computes a minimal transversal of h as the
// complement of a maximal independent set found by Solve with the given
// options.
func MinimalTransversal(h *Hypergraph, opts Options) ([]bool, error) {
	res, err := MinimalTransversalCtx(context.Background(), h, opts)
	if err != nil {
		return nil, err
	}
	return res.Transversal, nil
}

// MinimalTransversalCtx is MinimalTransversal with cooperative
// cancellation and the underlying solve's telemetry. The complement is
// verified as a maximal independent set before it is inverted, so a
// returned result is always a genuine minimal transversal. Like Solve,
// the output is bit-identical at any Options.Parallelism.
func MinimalTransversalCtx(ctx context.Context, h *Hypergraph, opts Options) (*TransversalResult, error) {
	res, err := SolveCtx(ctx, h, opts)
	if err != nil {
		return nil, err
	}
	mask, err := hypergraph.MinimalTransversalFromMIS(h, res.MIS)
	if err != nil {
		return nil, err
	}
	return &TransversalResult{
		Transversal: mask,
		Size:        h.N() - res.Size,
		MISSize:     res.Size,
		Algorithm:   res.Algorithm,
		Rounds:      res.Rounds,
		Depth:       res.Depth,
		Work:        res.Work,
		Trace:       res.Trace,
	}, nil
}
