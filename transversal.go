package hypermis

import "repro/internal/hypergraph"

// The MIS/transversal duality: S is a maximal independent set of H iff
// V\S is a minimal transversal (hitting set) of H. The parallel MIS
// algorithms in this library therefore double as parallel
// minimal-hitting-set algorithms.

// IsTransversal reports whether the set intersects every edge of h.
func IsTransversal(h *Hypergraph, mask []bool) bool {
	return hypergraph.IsTransversal(h, mask)
}

// VerifyMinimalTransversal checks coverage and minimality (removing any
// member leaves some edge unhit), returning nil or a witnessed error.
func VerifyMinimalTransversal(h *Hypergraph, mask []bool) error {
	return hypergraph.VerifyMinimalTransversal(h, mask)
}

// MinimalTransversal computes a minimal transversal of h as the
// complement of a maximal independent set found by Solve with the given
// options.
func MinimalTransversal(h *Hypergraph, opts Options) ([]bool, error) {
	res, err := Solve(h, opts)
	if err != nil {
		return nil, err
	}
	return hypergraph.MinimalTransversalFromMIS(h, res.MIS)
}
