package hypermis

import (
	"fmt"

	"repro/internal/hypergraph"
	"repro/internal/rng"
)

// GenerateSpec names a random instance for Generate: a generator kind
// plus its parameters. Unused parameters for a kind are ignored.
type GenerateSpec struct {
	// Kind is one of "uniform", "mixed" (the default for ""), "graph",
	// "linear", "sunflower".
	Kind string
	Seed uint64
	N    int // vertices
	M    int // edges (petals for sunflower)
	D    int // edge size (uniform, linear), petal size (sunflower)
	// MinSize, MaxSize bound edge sizes for "mixed".
	MinSize, MaxSize int
}

// Generate validates spec and dispatches to the matching generator,
// returning an error — never panicking — on parameter combinations the
// generators reject (d larger than n, a sunflower that needs more
// vertices than it has, …). It is the shared front end of
// `hypermis generate` and the daemon's /v1/generate.
func Generate(spec GenerateSpec) (*Hypergraph, error) {
	if spec.N <= 0 || spec.M < 0 {
		return nil, fmt.Errorf("hypermis: generate needs n > 0 and m >= 0 (got n=%d m=%d)", spec.N, spec.M)
	}
	switch spec.Kind {
	case "uniform":
		if spec.D < 1 || spec.D > spec.N {
			return nil, fmt.Errorf("hypermis: uniform needs 1 <= d <= n (got d=%d n=%d)", spec.D, spec.N)
		}
		return RandomUniform(spec.Seed, spec.N, spec.M, spec.D), nil
	case "mixed", "":
		if spec.MinSize < 1 || spec.MaxSize < spec.MinSize || spec.MaxSize > spec.N {
			return nil, fmt.Errorf("hypermis: mixed needs 1 <= min <= max <= n (got min=%d max=%d n=%d)", spec.MinSize, spec.MaxSize, spec.N)
		}
		return RandomMixed(spec.Seed, spec.N, spec.M, spec.MinSize, spec.MaxSize), nil
	case "graph":
		if spec.N < 2 {
			return nil, fmt.Errorf("hypermis: graph needs n >= 2 (got n=%d)", spec.N)
		}
		return RandomGraph(spec.Seed, spec.N, spec.M), nil
	case "linear":
		if spec.D < 1 || spec.D > spec.N {
			return nil, fmt.Errorf("hypermis: linear needs 1 <= d <= n (got d=%d n=%d)", spec.D, spec.N)
		}
		return Linear(spec.Seed, spec.N, spec.M, spec.D), nil
	case "sunflower":
		if spec.D < 1 {
			return nil, fmt.Errorf("hypermis: sunflower needs petal size d >= 1 (got d=%d)", spec.D)
		}
		if need := 2 + spec.M*spec.D; need > spec.N {
			return nil, fmt.Errorf("hypermis: sunflower with %d petals of size %d needs %d vertices, have %d", spec.M, spec.D, need, spec.N)
		}
		return Sunflower(spec.Seed, spec.N, 2, spec.D, spec.M), nil
	default:
		return nil, fmt.Errorf("hypermis: unknown generator kind %q", spec.Kind)
	}
}

// Instance generators re-exported for applications and benchmarks. All
// take an explicit seed and are fully deterministic.

// RandomUniform generates m random d-uniform edges on n vertices
// (duplicates dropped).
func RandomUniform(seed uint64, n, m, d int) *Hypergraph {
	return hypergraph.RandomUniform(rng.New(seed), n, m, d)
}

// RandomMixed generates m edges with sizes uniform in [minSize, maxSize]
// — the "general hypergraph" workload of the paper.
func RandomMixed(seed uint64, n, m, minSize, maxSize int) *Hypergraph {
	return hypergraph.RandomMixed(rng.New(seed), n, m, minSize, maxSize)
}

// RandomGraph generates an ordinary graph (2-uniform hypergraph).
func RandomGraph(seed uint64, n, m int) *Hypergraph {
	return hypergraph.RandomGraph(rng.New(seed), n, m)
}

// Linear generates a linear hypergraph (any two edges share at most one
// vertex — the Łuczak–Szymańska RNC class). May return fewer than m
// edges if the space saturates.
func Linear(seed uint64, n, m, d int) *Hypergraph {
	return hypergraph.Linear(rng.New(seed), n, m, d)
}

// Sunflower generates `petals` edges sharing a common core: the
// edge-migration adversary of Kelsen's analysis.
func Sunflower(seed uint64, n, coreSize, petalSize, petals int) *Hypergraph {
	return hypergraph.Sunflower(rng.New(seed), n, coreSize, petalSize, petals)
}

// PlantedMIS generates an instance whose first plantedSize vertices are
// guaranteed independent.
func PlantedMIS(seed uint64, n, m, d, plantedSize int) *Hypergraph {
	return hypergraph.PlantedMIS(rng.New(seed), n, m, d, plantedSize)
}

// BlockPartition generates per-block local subproblems: blocks of
// blockSize vertices, perBlock random d-subsets of each as edges.
func BlockPartition(seed uint64, n, blockSize, d, perBlock int) *Hypergraph {
	return hypergraph.BlockPartition(rng.New(seed), n, blockSize, d, perBlock)
}

// SteinerTripleSystem constructs STS(n) (Bose construction, n ≡ 3
// mod 6): every vertex pair lies in exactly one triple — the extreme
// structured linear hypergraph, deterministic (no seed).
func SteinerTripleSystem(n int) (*Hypergraph, error) {
	return hypergraph.SteinerTripleSystem(n)
}
