package hypermis

import (
	"repro/internal/hypergraph"
	"repro/internal/rng"
)

// Instance generators re-exported for applications and benchmarks. All
// take an explicit seed and are fully deterministic.

// RandomUniform generates m random d-uniform edges on n vertices
// (duplicates dropped).
func RandomUniform(seed uint64, n, m, d int) *Hypergraph {
	return hypergraph.RandomUniform(rng.New(seed), n, m, d)
}

// RandomMixed generates m edges with sizes uniform in [minSize, maxSize]
// — the "general hypergraph" workload of the paper.
func RandomMixed(seed uint64, n, m, minSize, maxSize int) *Hypergraph {
	return hypergraph.RandomMixed(rng.New(seed), n, m, minSize, maxSize)
}

// RandomGraph generates an ordinary graph (2-uniform hypergraph).
func RandomGraph(seed uint64, n, m int) *Hypergraph {
	return hypergraph.RandomGraph(rng.New(seed), n, m)
}

// Linear generates a linear hypergraph (any two edges share at most one
// vertex — the Łuczak–Szymańska RNC class). May return fewer than m
// edges if the space saturates.
func Linear(seed uint64, n, m, d int) *Hypergraph {
	return hypergraph.Linear(rng.New(seed), n, m, d)
}

// Sunflower generates `petals` edges sharing a common core: the
// edge-migration adversary of Kelsen's analysis.
func Sunflower(seed uint64, n, coreSize, petalSize, petals int) *Hypergraph {
	return hypergraph.Sunflower(rng.New(seed), n, coreSize, petalSize, petals)
}

// PlantedMIS generates an instance whose first plantedSize vertices are
// guaranteed independent.
func PlantedMIS(seed uint64, n, m, d, plantedSize int) *Hypergraph {
	return hypergraph.PlantedMIS(rng.New(seed), n, m, d, plantedSize)
}

// BlockPartition generates per-block local subproblems: blocks of
// blockSize vertices, perBlock random d-subsets of each as edges.
func BlockPartition(seed uint64, n, blockSize, d, perBlock int) *Hypergraph {
	return hypergraph.BlockPartition(rng.New(seed), n, blockSize, d, perBlock)
}

// SteinerTripleSystem constructs STS(n) (Bose construction, n ≡ 3
// mod 6): every vertex pair lies in exactly one triple — the extreme
// structured linear hypergraph, deterministic (no seed).
func SteinerTripleSystem(n int) (*Hypergraph, error) {
	return hypergraph.SteinerTripleSystem(n)
}
