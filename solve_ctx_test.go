package hypermis

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestSolveCtxCancelled: an already-cancelled context returns promptly
// with context.Canceled for every algorithm, including the sequential
// greedy baseline.
func TestSolveCtxCancelled(t *testing.T) {
	algos := []Algorithm{AlgAuto, AlgSBL, AlgBL, AlgKUW, AlgLuby, AlgGreedy, AlgPermBL}
	for _, algo := range algos {
		t.Run(algo.String(), func(t *testing.T) {
			h := RandomGraph(7, 200, 400) // dim 2: valid for every algorithm
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			start := time.Now()
			res, err := SolveCtx(ctx, h, Options{Algorithm: algo, Seed: 1})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("SolveCtx(cancelled) = (%v, %v), want context.Canceled", res, err)
			}
			if elapsed := time.Since(start); elapsed > time.Second {
				t.Errorf("cancelled solve took %v, want prompt return", elapsed)
			}
		})
	}
}

// TestSolveCtxDeadline: a deadline that expires mid-run surfaces
// context.DeadlineExceeded from inside the round loops.
func TestSolveCtxDeadline(t *testing.T) {
	h := RandomMixed(3, 3000, 6000, 2, 8)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond) // ensure the deadline has passed
	if _, err := SolveCtx(ctx, h, Options{Algorithm: AlgSBL, Seed: 1}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("SolveCtx(expired deadline) err = %v, want context.DeadlineExceeded", err)
	}
}

// TestSolveCtxBackground: SolveCtx with a live context matches Solve
// bit-for-bit (same seed, same instance).
func TestSolveCtxBackground(t *testing.T) {
	h := RandomMixed(11, 500, 1000, 2, 6)
	a, err := Solve(h, Options{Algorithm: AlgSBL, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SolveCtx(context.Background(), h, Options{Algorithm: AlgSBL, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if a.Size != b.Size {
		t.Fatalf("Solve size %d != SolveCtx size %d", a.Size, b.Size)
	}
	for v := range a.MIS {
		if a.MIS[v] != b.MIS[v] {
			t.Fatalf("MIS differs at vertex %d", v)
		}
	}
}
