package hypermis

import (
	"fmt"
	"testing"
)

// TestDeterminismSharedParPool pins the persistent-pool guarantee: a
// single ParPool shared across solves of every algorithm, combined
// with a reused Workspace poisoned between checkouts, still yields
// bit-identical results at parallelism 1, 2 and 8. The pool only
// changes which OS threads execute shard closures — never the shard
// partition or the reduction order — so nothing may leak into results.
func TestDeterminismSharedParPool(t *testing.T) {
	pool := NewParPool(8)
	defer pool.Close()
	ws := NewWorkspace()
	for _, c := range solverCases() {
		t.Run(c.name, func(t *testing.T) {
			for seed := uint64(0); seed < 3; seed++ {
				ref := runSolver(t, c.algo, c.h, seed, 1)
				if err := VerifyMIS(c.h, ref.MIS); err != nil {
					t.Fatalf("seed %d: invalid MIS: %v", seed, err)
				}
				for _, p := range []int{1, 2, 8} {
					ws.Poison()
					got, err := Solve(c.h, Options{
						Algorithm:   c.algo,
						Seed:        seed,
						Parallelism: p,
						Workspace:   ws,
						ParPool:     pool,
					})
					if err != nil {
						t.Fatalf("solve(%s seed=%d par=%d pooled): %v", c.name, seed, p, err)
					}
					assertSameResult(t, fmt.Sprintf("%s seed=%d par=%d pooled", c.name, seed, p), ref, got)
				}
			}
		})
	}
}
