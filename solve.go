package hypermis

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/bl"
	"repro/internal/core"
	"repro/internal/greedy"
	"repro/internal/kuw"
	"repro/internal/luby"
	"repro/internal/par"
	"repro/internal/permbl"
	"repro/internal/rng"
)

// Algorithm selects which MIS solver Solve uses.
type Algorithm int

const (
	// AlgAuto picks by instance shape: Luby for dimension ≤ 2, BL for
	// dimension within the SBL cap, SBL otherwise. The default.
	AlgAuto Algorithm = iota
	// AlgSBL is the paper's sampling algorithm (Algorithm 1) — for
	// general hypergraphs of unbounded dimension.
	AlgSBL
	// AlgBL is the Beame–Luby marking algorithm (Algorithm 2) — RNC for
	// small dimension; slow for large dimension (marking probability
	// 2^{−(d+1)}/Δ).
	AlgBL
	// AlgKUW is the Karp–Upfal–Wigderson O(√n)-round algorithm.
	AlgKUW
	// AlgLuby is Luby's graph algorithm — dimension ≤ 2 only.
	AlgLuby
	// AlgGreedy is the sequential linear-time baseline.
	AlgGreedy
	// AlgPermBL is the random-permutation Beame–Luby algorithm (the one
	// conjectured in RNC, partially analyzed by Shachnai–Srinivasan),
	// simulated by parallel dependency resolution. Its output equals
	// sequential greedy on a random order; Result.Rounds is the greedy
	// dependency depth — the open quantity.
	AlgPermBL
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case AlgAuto:
		return "auto"
	case AlgSBL:
		return "sbl"
	case AlgBL:
		return "bl"
	case AlgKUW:
		return "kuw"
	case AlgLuby:
		return "luby"
	case AlgGreedy:
		return "greedy"
	case AlgPermBL:
		return "permbl"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// AlgorithmNames lists every name ParseAlgorithm accepts, in menu
// order ("" is also accepted as an alias for "auto").
var AlgorithmNames = []string{"auto", "sbl", "bl", "kuw", "luby", "greedy", "permbl"}

// ParseAlgorithm converts a name ("auto", "sbl", "bl", "kuw", "luby",
// "greedy", "permbl") to an Algorithm.
func ParseAlgorithm(name string) (Algorithm, error) {
	switch name {
	case "auto", "":
		return AlgAuto, nil
	case "sbl":
		return AlgSBL, nil
	case "bl":
		return AlgBL, nil
	case "kuw":
		return AlgKUW, nil
	case "luby":
		return AlgLuby, nil
	case "greedy":
		return AlgGreedy, nil
	case "permbl":
		return AlgPermBL, nil
	default:
		return 0, fmt.Errorf("hypermis: unknown algorithm %q", name)
	}
}

// Options configures Solve.
type Options struct {
	// Algorithm selects the solver (default AlgAuto).
	Algorithm Algorithm
	// Seed makes the run deterministic; runs with equal seeds and
	// inputs produce identical MISs regardless of host parallelism.
	Seed uint64
	// Parallelism caps the number of worker goroutines the solver's
	// sharded round passes may use (0 = runtime.GOMAXPROCS, i.e. the
	// whole machine; 1 = fully sequential). The result is bit-identical
	// for any value — per-vertex randomness is index-addressed and every
	// parallel reduction is exact — so this is purely a scheduling
	// knob: the service scheduler sets it per job to keep concurrent
	// jobs from oversubscribing the host.
	Parallelism int
	// Alpha is SBL's sampling exponent (p = n^{−α}); 0 means the
	// measurable default 0.25. The paper's asymptotic choice is
	// α = 1/log log log n — see core.PaperParams for why that
	// degenerates at practical n.
	Alpha float64
	// UseGreedyTail makes SBL finish with the sequential solver instead
	// of KUW once the residual is below 1/p² vertices (both are allowed
	// by the paper).
	UseGreedyTail bool
	// CollectCost accounts idealized EREW PRAM work/depth into
	// Result.Depth and Result.Work.
	CollectCost bool
}

// Result of a Solve call.
type Result struct {
	// MIS is the maximal independent set as a vertex mask.
	MIS []bool
	// Size is the number of vertices in the MIS.
	Size int
	// Algorithm that actually ran (resolves AlgAuto).
	Algorithm Algorithm
	// Rounds is the solver's outer round/stage count (0 for greedy).
	Rounds int
	// Depth and Work are the accounted PRAM costs (CollectCost only).
	Depth, Work int64
}

// ErrDimension is returned when a dimension-restricted algorithm is
// applied to an instance outside its class.
var ErrDimension = errors.New("hypermis: instance dimension outside the algorithm's class")

// ResolveAlgorithm maps AlgAuto to the concrete solver Solve would use
// for h (Luby for dimension ≤ 2, BL for dimension ≤ 5, SBL otherwise);
// any other algorithm is returned unchanged.
func ResolveAlgorithm(h *Hypergraph, algo Algorithm) Algorithm {
	if algo != AlgAuto {
		return algo
	}
	switch {
	case h.Dim() <= 2:
		return AlgLuby
	case h.Dim() <= 5:
		return AlgBL
	default:
		return AlgSBL
	}
}

// Solve computes a maximal independent set of h.
func Solve(h *Hypergraph, opts Options) (*Result, error) {
	return SolveCtx(context.Background(), h, opts)
}

// SolveCtx is Solve with cooperative cancellation: the context is
// checked before dispatch and at the top of every outer round/stage of
// the SBL, BL, KUW, Luby and PermBL solvers, and ctx.Err() is returned
// as soon as it is done. Completed rounds are discarded, not rolled
// back. The sequential greedy solver runs to completion once started
// (it is linear time); an already-done context still fails fast.
func SolveCtx(ctx context.Context, h *Hypergraph, opts Options) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	algo := ResolveAlgorithm(h, opts.Algorithm)
	var cost *par.Cost
	if opts.CollectCost {
		cost = &par.Cost{}
	}
	stream := rng.New(opts.Seed)
	eng := par.Engine{P: opts.Parallelism}

	res := &Result{Algorithm: algo}
	switch algo {
	case AlgSBL:
		r, err := core.Run(h, stream, cost, core.Options{
			Ctx:   ctx,
			Par:   eng,
			Alpha: opts.Alpha,
			Tail:  tailOf(opts),
		})
		if err != nil {
			return nil, err
		}
		res.MIS = r.InIS
		res.Rounds = r.Rounds
	case AlgBL:
		blOpts := bl.DefaultOptions()
		blOpts.Ctx = ctx
		blOpts.Par = eng
		r, err := bl.Run(h, nil, stream, cost, blOpts)
		if err != nil {
			return nil, err
		}
		res.MIS = r.InIS
		res.Rounds = r.Stages
	case AlgKUW:
		r, err := kuw.Run(h, nil, stream, cost, kuw.Options{Ctx: ctx, Par: eng})
		if err != nil {
			return nil, err
		}
		res.MIS = r.InIS
		res.Rounds = r.Rounds
	case AlgLuby:
		if h.Dim() > 2 {
			return nil, fmt.Errorf("%w: dim %d > 2 for Luby", ErrDimension, h.Dim())
		}
		r, err := luby.Run(h, nil, stream, cost, luby.Options{Ctx: ctx, Par: eng})
		if err != nil {
			return nil, err
		}
		res.MIS = r.InIS
		res.Rounds = r.Rounds
	case AlgGreedy:
		r := greedy.Run(h, nil)
		res.MIS = r.InIS
	case AlgPermBL:
		r, err := permbl.Run(h, nil, stream, cost, permbl.Options{Ctx: ctx, Par: eng})
		if err != nil {
			return nil, err
		}
		res.MIS = r.InIS
		res.Rounds = r.Rounds
	default:
		return nil, fmt.Errorf("hypermis: unknown algorithm %v", algo)
	}
	for _, in := range res.MIS {
		if in {
			res.Size++
		}
	}
	if cost != nil {
		res.Depth = cost.Depth()
		res.Work = cost.Work()
	}
	return res, nil
}

func tailOf(opts Options) core.TailSolver {
	if opts.UseGreedyTail {
		return core.TailGreedy
	}
	return core.TailKUW
}
