package hypermis

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/solver"

	// The solver packages register themselves with the internal/solver
	// registry at init time; importing them here is what populates the
	// dispatch table (core pulls in bl, kuw and greedy itself, but each
	// is named explicitly so the registration set is visible at a
	// glance).
	_ "repro/internal/bl"
	_ "repro/internal/core"
	_ "repro/internal/greedy"
	_ "repro/internal/kuw"
	_ "repro/internal/luby"
	_ "repro/internal/permbl"
)

// Algorithm selects which MIS solver Solve uses. It aliases the
// internal registry's algorithm type: every constant below resolves to
// a registered solver descriptor (see internal/solver), and the
// registry — not a switch — performs dispatch, naming and
// auto-selection.
type Algorithm = solver.Algorithm

const (
	// AlgAuto picks by instance shape: Luby for dimension ≤ 2, BL for
	// dimension within the SBL cap, SBL otherwise. The default.
	AlgAuto = solver.Auto
	// AlgSBL is the paper's sampling algorithm (Algorithm 1) — for
	// general hypergraphs of unbounded dimension.
	AlgSBL = solver.SBL
	// AlgBL is the Beame–Luby marking algorithm (Algorithm 2) — RNC for
	// small dimension; slow for large dimension (marking probability
	// 2^{−(d+1)}/Δ).
	AlgBL = solver.BL
	// AlgKUW is the Karp–Upfal–Wigderson O(√n)-round algorithm.
	AlgKUW = solver.KUW
	// AlgLuby is Luby's graph algorithm — dimension ≤ 2 only.
	AlgLuby = solver.Luby
	// AlgGreedy is the sequential linear-time baseline.
	AlgGreedy = solver.Greedy
	// AlgPermBL is the random-permutation Beame–Luby algorithm (the one
	// conjectured in RNC, partially analyzed by Shachnai–Srinivasan),
	// simulated by parallel dependency resolution. Its output equals
	// sequential greedy on a random order; Result.Rounds is the greedy
	// dependency depth — the open quantity.
	AlgPermBL = solver.PermBL
)

// AlgorithmNames lists every name ParseAlgorithm accepts, in menu
// order ("" is also accepted as an alias for "auto"). It is derived
// from the solver registry, so it can never drift from the dispatch.
var AlgorithmNames = append([]string{"auto"}, solver.Names()...)

// ParseAlgorithm converts a name ("auto", "sbl", "bl", "kuw", "luby",
// "greedy", "permbl") to an Algorithm.
func ParseAlgorithm(name string) (Algorithm, error) {
	if name == "" || name == "auto" {
		return AlgAuto, nil
	}
	if d, ok := solver.LookupName(name); ok {
		return d.Algo, nil
	}
	return 0, fmt.Errorf("hypermis: unknown algorithm %q", name)
}

// ParPool is a persistent pool of parallel worker goroutines shared
// across Solve calls (it aliases the internal engine's pool type).
// Solvers dispatch their sharded round passes onto the pool's parked
// workers instead of spawning goroutines per pass; a steady-state
// caller running many solves — the hypermisd scheduler keeps one per
// server — amortizes all worker startup across jobs. A pool never
// affects results, only scheduling. Close releases the workers.
type ParPool = par.Pool

// NewParPool starts a pool of the given number of worker goroutines
// for Options.ParPool (workers <= 0 means runtime.GOMAXPROCS). The
// caller owns its lifetime and must Close it.
func NewParPool(workers int) *ParPool { return par.NewPool(workers) }

// Workspace is the reusable per-job buffer bundle of the solver
// runtime: the CSR round arenas, packed decision masks and per-vertex
// slices every solver draws from. Passing one workspace to sequential
// Solve calls (via Options.Workspace) lets a steady-state caller — the
// hypermisd scheduler pools them per worker — solve with ~zero arena
// allocations. A workspace must not be shared by concurrent solves.
type Workspace = solver.Workspace

// NewWorkspace returns an empty Workspace ready for Options.Workspace.
func NewWorkspace() *Workspace { return solver.NewWorkspace() }

// RoundTrace is one per-round telemetry record: the residual instance
// shape entering the round, the number of vertices the round decided,
// and its wall time. Collected into Result.Trace when Options.Trace is
// set, and streamed to Options.RoundObserver when non-nil.
type RoundTrace = solver.Round

// Options configures Solve.
type Options struct {
	// Algorithm selects the solver (default AlgAuto).
	Algorithm Algorithm
	// Seed makes the run deterministic; runs with equal seeds and
	// inputs produce identical MISs regardless of host parallelism.
	Seed uint64
	// Parallelism caps the number of worker goroutines the solver's
	// sharded round passes may use (0 = runtime.GOMAXPROCS, i.e. the
	// whole machine; 1 = fully sequential). The result is bit-identical
	// for any value — per-vertex randomness is index-addressed and every
	// parallel reduction is exact — so this is purely a scheduling
	// knob: the service scheduler sets it per job to keep concurrent
	// jobs from oversubscribing the host.
	Parallelism int
	// Alpha is SBL's sampling exponent (p = n^{−α}); 0 means the
	// measurable default 0.25. The paper's asymptotic choice is
	// α = 1/log log log n — see core.PaperParams for why that
	// degenerates at practical n.
	Alpha float64
	// UseGreedyTail makes SBL finish with the sequential solver instead
	// of KUW once the residual is below 1/p² vertices (both are allowed
	// by the paper).
	UseGreedyTail bool
	// CollectCost accounts idealized EREW PRAM work/depth into
	// Result.Depth and Result.Work.
	CollectCost bool
	// Trace collects one RoundTrace per outer solver round into
	// Result.Trace (telemetry only: it never affects the MIS).
	Trace bool
	// RoundObserver, if non-nil, receives each RoundTrace as the round
	// completes — the streaming form of Trace, used by the service for
	// aggregate round counters. It runs on the solving goroutine and
	// must be cheap.
	RoundObserver func(RoundTrace)
	// Workspace, if non-nil, supplies the solve's reusable buffers and
	// is left warm for the caller to reuse (nil = fresh buffers). It
	// must not be shared by concurrent solves.
	Workspace *Workspace
	// ParPool, if non-nil, supplies the persistent worker pool the
	// solve's parallel passes dispatch onto; unlike a Workspace it may
	// be shared by concurrent solves. nil makes the call run a private
	// pool when Parallelism permits more than one worker (and none at
	// all when it doesn't). Pools never affect results.
	ParPool *ParPool
}

// Result of a Solve call.
type Result struct {
	// MIS is the maximal independent set as a vertex mask.
	MIS []bool
	// Size is the number of vertices in the MIS.
	Size int
	// Algorithm that actually ran (resolves AlgAuto).
	Algorithm Algorithm
	// Rounds is the solver's outer round/stage count (0 for greedy).
	Rounds int
	// Depth and Work are the accounted PRAM costs (CollectCost only).
	Depth, Work int64
	// Trace holds the per-round telemetry (Options.Trace only).
	Trace []RoundTrace
}

// ErrDimension is returned when a dimension-restricted algorithm is
// applied to an instance outside its class.
var ErrDimension = errors.New("hypermis: instance dimension outside the algorithm's class")

// ResolveAlgorithm maps AlgAuto to the concrete solver Solve would use
// for h (Luby for dimension ≤ 2, BL for dimension ≤ 5, SBL otherwise —
// the auto roles the registered descriptors declare); any other
// algorithm is returned unchanged.
func ResolveAlgorithm(h *Hypergraph, algo Algorithm) Algorithm {
	return solver.Resolve(h.Dim(), algo)
}

// Solve computes a maximal independent set of h.
func Solve(h *Hypergraph, opts Options) (*Result, error) {
	return SolveCtx(context.Background(), h, opts)
}

// SolveCtx is Solve with cooperative cancellation: the context is
// checked before dispatch and at the top of every outer round/stage of
// the SBL, BL, KUW, Luby and PermBL solvers, and ctx.Err() is returned
// as soon as it is done. Completed rounds are discarded, not rolled
// back. The sequential greedy solver runs to completion once started
// (it is linear time); an already-done context still fails fast.
func SolveCtx(ctx context.Context, h *Hypergraph, opts Options) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	algo := ResolveAlgorithm(h, opts.Algorithm)
	desc, ok := solver.Lookup(algo)
	if !ok {
		return nil, fmt.Errorf("hypermis: unknown algorithm %v", algo)
	}
	if desc.MaxDim > 0 && h.Dim() > desc.MaxDim {
		return nil, fmt.Errorf("%w: dim %d > %d for %s", ErrDimension, h.Dim(), desc.MaxDim, desc.Name)
	}
	var cost *par.Cost
	if opts.CollectCost {
		cost = &par.Cost{}
	}
	ws := opts.Workspace
	if ws == nil {
		ws = solver.NewWorkspace()
	}

	res := &Result{Algorithm: algo}
	var observer solver.RoundObserver
	if opts.Trace {
		observer = func(r solver.Round) { res.Trace = append(res.Trace, r) }
	}
	observer = solver.Tee(observer, solver.RoundObserver(opts.RoundObserver))

	// Parallel runs dispatch onto a persistent pool (the caller's, or a
	// private one for this call) and attach a fresh grain autotuner fed
	// by the per-round wall times the Loop driver already records.
	// Neither changes results — see Options.Parallelism.
	eng := par.Engine{P: opts.Parallelism}
	if eng.Procs() > 1 {
		pool := opts.ParPool
		if pool == nil {
			pool = par.NewPool(eng.Procs() - 1)
			defer pool.Close()
		}
		tuner := par.NewTuner()
		eng = pool.Engine(opts.Parallelism).WithTuner(tuner)
		observer = solver.Tee(observer, func(r solver.Round) { tuner.ObserveRound(r.Elapsed) })
	}

	out, err := desc.Solve(solver.Request{
		H:          h,
		Stream:     rng.New(opts.Seed),
		Cost:       cost,
		Ws:         ws,
		Ctx:        ctx,
		Par:        eng,
		Observer:   observer,
		Alpha:      opts.Alpha,
		GreedyTail: opts.UseGreedyTail,
	})
	if err != nil {
		return nil, err
	}
	res.MIS = out.InIS
	res.Rounds = out.Rounds
	for _, in := range res.MIS {
		if in {
			res.Size++
		}
	}
	if cost != nil {
		res.Depth = cost.Depth()
		res.Work = cost.Work()
	}
	return res, nil
}
