// Hitting set: monitoring placement via the MIS/transversal duality.
//
// A data center operator must choose a minimal set of hosts to
// instrument so that every failure domain (rack power group, switch
// uplink set, storage pool) contains at least one instrumented host —
// a hitting set (transversal) of the domain hypergraph, minimal so no
// probe is redundant. The classical duality (S is a maximal independent
// set iff its complement is a minimal transversal) turns any of this
// library's parallel MIS solvers into a parallel minimal-hitting-set
// solver — this example exercises that path end to end and
// cross-checks minimality by brute force.
//
//	go run ./examples/hittingset
package main

import (
	"fmt"
	"log"

	hypermis "repro"
	"repro/internal/rng"
)

const (
	hosts   = 900
	racks   = 60  // power groups of 15 hosts
	uplinks = 120 // switch groups of 6 random hosts
	pools   = 90  // storage pools of 4 random hosts
)

func main() {
	s := rng.New(7)
	b := hypermis.NewBuilder(hosts)

	// Rack power groups: contiguous blocks.
	perRack := hosts / racks
	for r := 0; r < racks; r++ {
		e := make(hypermis.Edge, 0, perRack)
		for i := 0; i < perRack; i++ {
			e = append(e, hypermis.V(r*perRack+i))
		}
		b.AddEdgeSlice(e)
	}
	// Switch uplink groups and storage pools: random host sets.
	addRandomGroups := func(count, size int) {
		for g := 0; g < count; g++ {
			seen := map[int]bool{}
			e := make(hypermis.Edge, 0, size)
			for len(e) < size {
				h := s.Intn(hosts)
				if !seen[h] {
					seen[h] = true
					e = append(e, hypermis.V(h))
				}
			}
			b.AddEdgeSlice(e)
		}
	}
	addRandomGroups(uplinks, 6)
	addRandomGroups(pools, 4)

	h, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hosts=%d failure domains=%d (sizes %d–%d)\n", h.N(), h.M(), 4, perRack)

	// One call: MIS complement = minimal transversal.
	probes, err := hypermis.MinimalTransversal(h, hypermis.Options{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	count := 0
	for _, p := range probes {
		if p {
			count++
		}
	}
	fmt.Printf("instrumented hosts: %d (%.1f%% of fleet)\n", count, 100*float64(count)/hosts)

	if !hypermis.IsTransversal(h, probes) {
		log.Fatal("some failure domain has no probe")
	}
	if err := hypermis.VerifyMinimalTransversal(h, probes); err != nil {
		log.Fatal(err)
	}
	fmt.Println("verified: every domain hit, no probe redundant")

	// Brute-force double check of minimality: removing any single probe
	// must leave some domain unmonitored.
	for v := 0; v < hosts; v++ {
		if !probes[v] {
			continue
		}
		probes[v] = false
		if hypermis.IsTransversal(h, probes) {
			log.Fatalf("probe on host %d was redundant", v)
		}
		probes[v] = true
	}
	fmt.Println("brute-force minimality check passed")

	// Compare probe counts across solvers (all minimal, sizes differ).
	fmt.Println("\nprobe count by solver:")
	for _, algo := range []hypermis.Algorithm{
		hypermis.AlgSBL, hypermis.AlgBL, hypermis.AlgKUW, hypermis.AlgPermBL, hypermis.AlgGreedy,
	} {
		tr, err := hypermis.MinimalTransversal(h, hypermis.Options{Algorithm: algo, Seed: 11, Alpha: 0.3})
		if err != nil {
			log.Fatalf("%v: %v", algo, err)
		}
		c := 0
		for _, p := range tr {
			if p {
				c++
			}
		}
		fmt.Printf("  %-7v %d probes\n", algo, c)
	}
}
