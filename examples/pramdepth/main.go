// PRAM depth walkthrough: the cost model behind the paper's theorems.
//
// Theorem 1 is a statement about *parallel time on an EREW PRAM*, not
// wall-clock seconds. This example makes that concrete: it solves the
// same instances with each solver while accounting idealized work and
// depth, prints the scaling table, and demonstrates that outputs are
// bit-identical across runs (the PRAM cost model is deterministic given
// a seed, regardless of host parallelism).
//
//	go run ./examples/pramdepth
package main

import (
	"fmt"
	"log"
	"math"

	hypermis "repro"
)

func main() {
	fmt.Println("PRAM depth and work by solver (mixed edges 2–8, m = 2n)")
	fmt.Printf("%8s  %12s %12s  %12s %12s  %10s\n",
		"n", "SBL depth", "SBL work", "KUW depth", "KUW work", "√n")

	for _, n := range []int{256, 512, 1024, 2048} {
		h := hypermis.RandomMixed(uint64(n), n, 2*n, 2, 8)

		sbl, err := hypermis.Solve(h, hypermis.Options{
			Algorithm: hypermis.AlgSBL, Seed: 1, Alpha: 0.3, CollectCost: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		kuw, err := hypermis.Solve(h, hypermis.Options{
			Algorithm: hypermis.AlgKUW, Seed: 1, CollectCost: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range []*hypermis.Result{sbl, kuw} {
			if err := hypermis.VerifyMIS(h, r.MIS); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("%8d  %12d %12d  %12d %12d  %10.0f\n",
			n, sbl.Depth, sbl.Work, kuw.Depth, kuw.Work, math.Sqrt(float64(n)))
	}

	// Determinism: two runs with the same seed agree exactly — PRAM
	// costs included.
	h := hypermis.RandomMixed(5, 1000, 2000, 2, 8)
	a, err := hypermis.Solve(h, hypermis.Options{Algorithm: hypermis.AlgSBL, Seed: 9, CollectCost: true})
	if err != nil {
		log.Fatal(err)
	}
	b, err := hypermis.Solve(h, hypermis.Options{Algorithm: hypermis.AlgSBL, Seed: 9, CollectCost: true})
	if err != nil {
		log.Fatal(err)
	}
	same := a.Depth == b.Depth && a.Work == b.Work && a.Size == b.Size
	for i := range a.MIS {
		if a.MIS[i] != b.MIS[i] {
			same = false
		}
	}
	fmt.Printf("\ndeterminism check (seed 9, two runs): identical = %v "+
		"(size=%d depth=%d work=%d)\n", same, a.Size, a.Depth, a.Work)
	if !same {
		log.Fatal("determinism violated")
	}

	fmt.Println("\nReading: depth is the parallel time the theorems bound; work/depth")
	fmt.Println("is the processor count that achieves it (Brent). The depth columns are")
	fmt.Println("what experiment F1 fits growth exponents to — SBL below KUW's ~n^0.5.")
}
