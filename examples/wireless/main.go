// Wireless: channel allocation under group interference.
//
// Transmitters on a grid interfere in *groups*: a set of transmitters
// sharing a congested cell cannot all use the same channel, but any
// proper subset can (capture effect / CDMA-style tolerance). Group
// conflicts are exactly hyperedges — the pairwise graph model would be
// far too conservative. Assigning channels greedily by repeated MIS
// extraction gives every transmitter a channel with no hyperedge
// monochromatic.
//
// The example compares the hypergraph coloring against the pessimistic
// pairwise-graph coloring on the same layout: the hypergraph model
// needs visibly fewer channels, which is the practical reason to want
// hypergraph MIS (and the fast parallel primitive the paper provides).
//
//	go run ./examples/wireless
package main

import (
	"fmt"
	"log"

	hypermis "repro"
	"repro/internal/rng"
)

const (
	gridSide    = 24  // transmitters on a gridSide×gridSide layout
	cellCount   = 140 // congested cells
	groupSize   = 4   // transmitters per congested cell
	maxChannels = 64  // safety bound
)

func main() {
	n := gridSide * gridSide
	s := rng.New(99)

	// Congested cells pick nearby transmitters (a random anchor and
	// its neighbourhood) — groups of size groupSize form the hyperedges.
	groups := make([]hypermis.Edge, 0, cellCount)
	for c := 0; c < cellCount; c++ {
		ax, ay := s.Intn(gridSide), s.Intn(gridSide)
		seen := map[int]bool{}
		e := make(hypermis.Edge, 0, groupSize)
		for len(e) < groupSize {
			dx, dy := s.Intn(5)-2, s.Intn(5)-2
			x, y := (ax+dx+gridSide)%gridSide, (ay+dy+gridSide)%gridSide
			id := x*gridSide + y
			if !seen[id] {
				seen[id] = true
				e = append(e, hypermis.V(id))
			}
		}
		groups = append(groups, e)
	}

	hyper, err := hypermis.FromEdges(n, groups)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transmitters=%d interference groups=%d (size %d)\n", n, hyper.M(), groupSize)

	hyperChannels := colorByMIS(hyper, "hypergraph")

	// Pairwise pessimistic model: every pair inside a group conflicts.
	pb := hypermis.NewBuilder(n)
	for _, g := range groups {
		for i := 0; i < len(g); i++ {
			for j := i + 1; j < len(g); j++ {
				pb.AddEdge(g[i], g[j])
			}
		}
	}
	pairwise, err := pb.Build()
	if err != nil {
		log.Fatal(err)
	}
	pairChannels := colorByMIS(pairwise, "pairwise graph")

	fmt.Printf("\nchannels needed — hypergraph model: %d, pairwise model: %d\n",
		hyperChannels, pairChannels)
	if hyperChannels > pairChannels {
		log.Fatal("hypergraph model should never need more channels")
	}
}

// colorByMIS assigns channels by repeated MIS extraction and returns
// the number of channels used. Every extracted set is verified.
func colorByMIS(h *hypermis.Hypergraph, label string) int {
	n := h.N()
	channel := make([]int, n)
	for i := range channel {
		channel[i] = -1
	}
	assigned := 0
	ch := 0
	for assigned < n && ch < maxChannels {
		b := hypermis.NewBuilder(n)
		for _, e := range h.Edges() {
			all := true
			for _, v := range e {
				if channel[v] != -1 {
					all = false
					break
				}
			}
			if all {
				b.AddEdgeSlice(append(hypermis.Edge(nil), e...))
			}
		}
		sub, err := b.Build()
		if err != nil {
			log.Fatal(err)
		}
		res, err := hypermis.Solve(sub, hypermis.Options{Seed: uint64(7 + ch)})
		if err != nil {
			log.Fatal(err)
		}
		if err := hypermis.VerifyMIS(sub, res.MIS); err != nil {
			log.Fatal(err)
		}
		batch := 0
		for v := 0; v < n; v++ {
			if channel[v] == -1 && res.MIS[v] {
				channel[v] = ch
				batch++
			}
		}
		assigned += batch
		fmt.Printf("  %-15s channel %2d -> %4d transmitters (%4d left)\n",
			label, ch, batch, n-assigned)
		ch++
	}
	// Sanity: no hyperedge monochromatic.
	for _, e := range h.Edges() {
		c0 := channel[e[0]]
		mono := true
		for _, v := range e {
			if channel[v] != c0 {
				mono = false
				break
			}
		}
		if mono {
			log.Fatalf("%s: monochromatic conflict group %v", label, e)
		}
	}
	return ch
}
