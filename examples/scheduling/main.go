// Scheduling: batch admission under shared-resource conflicts.
//
// A cluster runs batch jobs; each resource (GPU pool, license server,
// bandwidth class) can serve only a limited number of its subscribers at
// once. Every minimal over-subscribed subset of jobs forms a hyperedge:
// those jobs must not all run in the same window. A maximal independent
// set is then exactly a maximal admissible batch — no constraint
// violated, no further job admittable.
//
// Repeatedly extracting an MIS and removing it partitions the whole job
// set into conflict-free windows (MIS-peeling), the classic application
// pattern for parallel MIS primitives.
//
//	go run ./examples/scheduling
package main

import (
	"fmt"
	"log"

	hypermis "repro"
	"repro/internal/rng"
)

const (
	numJobs      = 1200
	numResources = 180
	subsPerRes   = 9 // jobs subscribed to each resource
	capacity     = 6 // how many subscribers a resource can serve at once
)

func main() {
	s := rng.New(2024)

	// Each resource picks its subscribers; any (capacity+1)-subset of a
	// resource's subscribers is an over-subscription constraint. Using
	// one random minimal violating set per resource keeps the instance
	// sparse while preserving the structure (capacity constraints give
	// (cap+1)-uniform hyperedges over subscriber pools).
	b := hypermis.NewBuilder(numJobs)
	edgeCount := 0
	for r := 0; r < numResources; r++ {
		subs := make([]hypermis.V, 0, subsPerRes)
		seen := map[int]bool{}
		for len(subs) < subsPerRes {
			j := s.Intn(numJobs)
			if !seen[j] {
				seen[j] = true
				subs = append(subs, hypermis.V(j))
			}
		}
		// Three random minimal violating subsets per resource.
		for c := 0; c < 3; c++ {
			perm := s.Perm(subsPerRes)
			e := make(hypermis.Edge, capacity+1)
			for i := 0; i <= capacity; i++ {
				e[i] = subs[perm[i]]
			}
			b.AddEdgeSlice(e)
			edgeCount++
		}
	}
	h, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("jobs=%d resources=%d constraints=%d (dimension %d)\n",
		numJobs, numResources, h.M(), h.Dim())

	// MIS-peeling: window after window until all jobs are scheduled.
	remaining := make([]bool, numJobs)
	for i := range remaining {
		remaining[i] = true
	}
	window := 0
	scheduled := 0
	for scheduled < numJobs {
		// Restrict the instance to unscheduled jobs: edges with a
		// scheduled job can no longer be violated within this window
		// universe, but edges entirely among remaining jobs still bind.
		sub := activeSubinstance(h, remaining)
		res, err := hypermis.Solve(sub, hypermis.Options{
			Algorithm: hypermis.AlgBL, // dimension 7: BL's home turf
			Seed:      uint64(1000 + window),
		})
		if err != nil {
			log.Fatal(err)
		}
		batch := 0
		for v := 0; v < numJobs; v++ {
			if remaining[v] && res.MIS[v] {
				remaining[v] = false
				batch++
			}
		}
		scheduled += batch
		window++
		fmt.Printf("window %2d: admitted %4d jobs (%4d remaining)\n",
			window, batch, numJobs-scheduled)
		if batch == 0 {
			log.Fatal("no progress — impossible for a correct MIS")
		}
	}
	fmt.Printf("\nall %d jobs scheduled in %d conflict-free windows\n", numJobs, window)
}

// activeSubinstance keeps only edges fully inside the remaining set and
// marks removed jobs as isolated (they are ignored by the solve; the
// caller intersects the result with `remaining`).
func activeSubinstance(h *hypermis.Hypergraph, remaining []bool) *hypermis.Hypergraph {
	b := hypermis.NewBuilder(h.N())
	for _, e := range h.Edges() {
		inside := true
		for _, v := range e {
			if !remaining[v] {
				inside = false
				break
			}
		}
		if inside {
			b.AddEdgeSlice(append(hypermis.Edge(nil), e...))
		}
	}
	sub, err := b.Build()
	if err != nil {
		panic(err)
	}
	return sub
}
