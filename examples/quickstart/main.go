// Quickstart: build a hypergraph, compute a maximal independent set
// with the paper's SBL algorithm, and verify the result.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	hypermis "repro"
)

func main() {
	// A hypergraph on 8 vertices. An edge is a set of vertices that may
	// not ALL be selected together; a maximal independent set (MIS)
	// contains no edge entirely and cannot be extended.
	h, err := hypermis.NewBuilder(8).
		AddEdge(0, 1, 2). // at most two of {0,1,2}
		AddEdge(2, 3).    // 2 and 3 are mutually exclusive
		AddEdge(3, 4, 5, 6).
		AddEdge(1, 6).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("instance:", h)

	// Solve. AlgAuto picks by dimension; ask for SBL explicitly to see
	// the paper's algorithm. Seeded runs are fully deterministic.
	res, err := hypermis.Solve(h, hypermis.Options{
		Algorithm:   hypermis.AlgSBL,
		Seed:        42,
		CollectCost: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MIS (%d vertices): %v\n", res.Size, hypermis.ListFromMask(res.MIS))
	fmt.Printf("PRAM cost: depth=%d work=%d\n", res.Depth, res.Work)

	// Verify both properties: no edge fully inside, no vertex addable.
	if err := hypermis.VerifyMIS(h, res.MIS); err != nil {
		log.Fatal("verification failed:", err)
	}
	fmt.Println("verified: independent and maximal")

	// Compare the solvers on a larger random instance.
	big := hypermis.RandomMixed(7, 2000, 4000, 2, 6)
	fmt.Println("\ncomparing solvers on", big)
	for _, algo := range []hypermis.Algorithm{
		hypermis.AlgSBL, hypermis.AlgBL, hypermis.AlgKUW, hypermis.AlgGreedy,
	} {
		r, err := hypermis.Solve(big, hypermis.Options{Algorithm: algo, Seed: 1, CollectCost: true})
		if err != nil {
			log.Fatalf("%v: %v", algo, err)
		}
		if err := hypermis.VerifyMIS(big, r.MIS); err != nil {
			log.Fatalf("%v: %v", algo, err)
		}
		fmt.Printf("  %-7v size=%-5d rounds=%-5d depth=%-8d work=%d\n",
			algo, r.Size, r.Rounds, r.Depth, r.Work)
	}
}
