package hypermis_test

import (
	"fmt"

	hypermis "repro"
)

// ExampleSolve computes a maximal independent set of a small
// 3-uniform hypergraph. Solves are deterministic: this exact output is
// reproduced for this (instance, seed) on any machine at any
// parallelism.
func ExampleSolve() {
	h, err := hypermis.NewBuilder(6).
		AddEdge(0, 1, 2).
		AddEdge(2, 3, 4).
		AddEdge(1, 3, 5).
		Build()
	if err != nil {
		panic(err)
	}
	res, err := hypermis.Solve(h, hypermis.Options{Seed: 1})
	if err != nil {
		panic(err)
	}
	if err := hypermis.VerifyMIS(h, res.MIS); err != nil {
		panic(err) // independent and maximal, or Solve is broken
	}
	fmt.Println("algorithm:", res.Algorithm)
	fmt.Println("size:", res.Size)
	fmt.Println("mis:", hypermis.ListFromMask(res.MIS))
	// Output:
	// algorithm: bl
	// size: 4
	// mis: [0 3 4 5]
}
