// Command benchjson runs the solver micro-benchmarks programmatically
// (via testing.Benchmark, no `go test` subprocess) and emits the
// results as JSON, one record per benchmark with ns/op, B/op and
// allocs/op. It exists so the perf trajectory of the solvers is a
// machine-readable artifact: the repository tracks its output as
// BENCH_solvers.json.
//
// Each benchmark is measured across a GOMAXPROCS sweep (default
// 1/2/4/NumCPU, deduplicated) and the record carries the per-procs
// timings plus a parallel_speedup field: ns/op at GOMAXPROCS=1 divided
// by ns/op at the sweep's widest setting. The top-level legacy fields
// (ns_per_op etc.) are the GOMAXPROCS=1 numbers, so the single-core
// trajectory stays comparable across revisions.
//
// Speedup numbers are only honest when the host actually has the cores
// the sweep asks for. When the widest sweep point exceeds the host's
// CPU count the run is oversubscribed — goroutines time-slice one core
// and the ratio measures scheduler churn, not scaling — so the report
// sets a top-level "oversubscribed": true flag and every
// parallel_speedup is emitted as null rather than a number a reader
// could mistake for real scaling.
//
// The workloads come from internal/benchdefs — the same declarations
// the root bench_test.go runs — so the JSON always corresponds to
// `go test -bench Solve`.
//
// Usage:
//
//	go run ./cmd/benchjson                     # writes BENCH_solvers.json
//	go run ./cmd/benchjson -out -              # writes to stdout
//	go run ./cmd/benchjson -procs 1,8 -out -   # custom sweep
//	go run ./cmd/benchjson -benchtime 1x -out -  # CI smoke (one iteration per case)
//	go run ./cmd/benchjson -match 'HTTPColor'  # refresh only matching rows in place
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/benchdefs"
)

// procRecord is one benchmark × GOMAXPROCS measurement.
type procRecord struct {
	Procs       int     `json:"procs"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// record is one benchmark result row. The top-level numbers are the
// GOMAXPROCS=1 measurement; Sweep holds every point and
// ParallelSpeedup is ns/op(1) / ns/op(widest) — or null when the sweep
// oversubscribed the host (see the package comment).
type record struct {
	Name            string       `json:"name"`
	Iterations      int          `json:"iterations"`
	NsPerOp         float64      `json:"ns_per_op"`
	BytesPerOp      int64        `json:"bytes_per_op"`
	AllocsPerOp     int64        `json:"allocs_per_op"`
	Sweep           []procRecord `json:"procs_sweep"`
	ParallelSpeedup *float64     `json:"parallel_speedup"`
}

// report is the emitted document.
type report struct {
	Tool       string `json:"tool"`
	GoVersion  string `json:"go_version"`
	HostCPUs   int    `json:"host_cpus"`
	ProcsSweep []int  `json:"procs_sweep"`
	// Oversubscribed is true when the widest sweep point exceeds
	// HostCPUs; every parallel_speedup is null in that case.
	Oversubscribed bool     `json:"oversubscribed,omitempty"`
	Benchmarks     []record `json:"benchmarks"`
}

// parseProcs parses "1,2,4" into a sorted, deduplicated, positive list.
func parseProcs(s string) ([]int, error) {
	var out []int
	seen := map[int]bool{}
	for _, f := range strings.Split(s, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || p < 1 {
			return nil, fmt.Errorf("bad procs entry %q", f)
		}
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	sort.Ints(out)
	if len(out) == 0 {
		return nil, fmt.Errorf("empty procs list")
	}
	return out, nil
}

func defaultProcs() string {
	procs := []int{1, 2, 4, runtime.NumCPU()}
	seen := map[int]bool{}
	var parts []string
	sort.Ints(procs)
	for _, p := range procs {
		if !seen[p] {
			seen[p] = true
			parts = append(parts, strconv.Itoa(p))
		}
	}
	return strings.Join(parts, ",")
}

func main() {
	out := flag.String("out", "BENCH_solvers.json", "output path, or - for stdout")
	benchtime := flag.String("benchtime", "", "per-benchmark budget forwarded to testing (e.g. 100ms or 5x); default 1s")
	procsFlag := flag.String("procs", defaultProcs(), "comma-separated GOMAXPROCS sweep")
	match := flag.String("match", "", "regexp selecting which benchmarks to run; with an existing -out file, unmatched rows are carried over unchanged (selective refresh)")
	testing.Init()
	flag.Parse()
	if *benchtime != "" {
		if err := flag.Set("test.benchtime", *benchtime); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
	procs, err := parseProcs(*procsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	type namedBench struct {
		name string
		fn   func(b *testing.B)
	}
	var benches []namedBench
	for _, c := range benchdefs.Solver() {
		if !c.Tracked {
			continue
		}
		benches = append(benches, namedBench{"Benchmark" + c.Name, func(b *testing.B) {
			benchdefs.RunCase(b, c)
		}})
	}
	// Pooled-workspace and service-level variants of the tracked cases:
	// the _ws rows measure the steady-state allocs of a reused
	// hypermis.Workspace, the Service rows the full uncached job path
	// through the scheduler's workspace pool.
	for _, c := range benchdefs.Solver() {
		if !c.Tracked {
			continue
		}
		benches = append(benches, namedBench{"Benchmark" + c.Name + "_ws", func(b *testing.B) {
			benchdefs.RunCaseWs(b, c)
		}})
	}
	for _, c := range benchdefs.Solver() {
		if !c.Tracked {
			continue
		}
		benches = append(benches, namedBench{"BenchmarkService" + c.Name, func(b *testing.B) {
			benchdefs.RunServiceSolve(b, c)
		}})
	}
	// HTTP-path rows: the full daemon round trip per solve, single-shot
	// versus batched — the recorded evidence that /v1/batch sustains
	// more solves/sec than one-request-per-solve at equal concurrency.
	for _, name := range []string{"SolveLuby_n1000", "SolveSBL_n1000"} {
		c, ok := benchdefs.Find(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: missing case %s\n", name)
			os.Exit(1)
		}
		suffix := strings.TrimPrefix(name, "Solve")
		benches = append(benches, namedBench{"BenchmarkServiceHTTPSingle_" + suffix, func(b *testing.B) {
			benchdefs.RunServiceHTTPSolve(b, c)
		}})
		benches = append(benches, namedBench{
			fmt.Sprintf("BenchmarkServiceHTTPBatch%d_%s", benchdefs.HTTPBatchSize, suffix),
			func(b *testing.B) { benchdefs.RunServiceHTTPBatch(b, c) },
		})
		// Tracing-disabled twins: the recorded guard that the span/trace
		// plumbing stays within noise of the untraced request path.
		benches = append(benches, namedBench{"BenchmarkServiceHTTPSingleNoTrace_" + suffix, func(b *testing.B) {
			benchdefs.RunServiceHTTPSolveNoTrace(b, c)
		}})
		benches = append(benches, namedBench{
			fmt.Sprintf("BenchmarkServiceHTTPBatch%dNoTrace_%s", benchdefs.HTTPBatchSize, suffix),
			func(b *testing.B) { benchdefs.RunServiceHTTPBatchNoTrace(b, c) },
		})
	}
	// Workload-endpoint rows: /v1/color runs the whole peeling pipeline
	// per request, /v1/transversal one solve plus the verified
	// complement — the recorded per-request cost of the two non-solve
	// workloads.
	{
		c, ok := benchdefs.Find("SolveLuby_n1000")
		if !ok {
			fmt.Fprintln(os.Stderr, "benchjson: missing case SolveLuby_n1000")
			os.Exit(1)
		}
		benches = append(benches, namedBench{"BenchmarkServiceHTTPColor_Luby_n1000", func(b *testing.B) {
			benchdefs.RunServiceHTTPColor(b, c)
		}})
		benches = append(benches, namedBench{"BenchmarkServiceHTTPTransversal_Luby_n1000", func(b *testing.B) {
			benchdefs.RunServiceHTTPTransversal(b, c)
		}})
	}
	benches = append(benches, namedBench{"BenchmarkVerifyMIS_n10000", benchdefs.RunVerify})

	if *match != "" {
		re, err := regexp.Compile(*match)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: bad -match:", err)
			os.Exit(1)
		}
		kept := benches[:0]
		for _, bench := range benches {
			if re.MatchString(bench.name) {
				kept = append(kept, bench)
			}
		}
		benches = kept
		if len(benches) == 0 {
			fmt.Fprintln(os.Stderr, "benchjson: -match selects no benchmarks")
			os.Exit(1)
		}
	}

	rep := report{
		Tool:       "cmd/benchjson",
		GoVersion:  runtime.Version(),
		HostCPUs:   runtime.NumCPU(),
		ProcsSweep: procs,
		// A sweep wider than the host oversubscribes: the "parallel"
		// points time-slice one core, so a speedup ratio would be
		// meaningless (historically this emitted 0.4–0.9 "speedups" on a
		// 1-CPU host that read like parallelism losing).
		Oversubscribed: procs[len(procs)-1] > runtime.NumCPU(),
	}
	origProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(origProcs)
	for _, bench := range benches {
		rec := record{Name: bench.name}
		for _, p := range procs {
			runtime.GOMAXPROCS(p)
			r := testing.Benchmark(bench.fn)
			if r.N == 0 {
				fmt.Fprintf(os.Stderr, "benchjson: %s failed at GOMAXPROCS=%d (see log above)\n", bench.name, p)
				os.Exit(1)
			}
			pr := procRecord{
				Procs:       p,
				Iterations:  r.N,
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				BytesPerOp:  r.AllocedBytesPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
			}
			rec.Sweep = append(rec.Sweep, pr)
			fmt.Fprintf(os.Stderr, "%-28s p=%-3d %10d ns/op %10d B/op %8d allocs/op\n",
				bench.name, p, int64(pr.NsPerOp), pr.BytesPerOp, pr.AllocsPerOp)
		}
		runtime.GOMAXPROCS(origProcs)
		base := rec.Sweep[0] // procs sorted ascending; [0] is the narrowest
		rec.Iterations = base.Iterations
		rec.NsPerOp = base.NsPerOp
		rec.BytesPerOp = base.BytesPerOp
		rec.AllocsPerOp = base.AllocsPerOp
		widest := rec.Sweep[len(rec.Sweep)-1]
		if !rep.Oversubscribed && widest.NsPerOp > 0 {
			speedup := base.NsPerOp / widest.NsPerOp
			rec.ParallelSpeedup = &speedup
		}
		rep.Benchmarks = append(rep.Benchmarks, rec)
	}

	// Selective refresh: under -match against an existing file, carry the
	// unmatched rows over unchanged so one new benchmark can be added to
	// the tracked baseline without re-measuring (and so re-baselining)
	// every other row.
	if *match != "" && *out != "-" {
		if prior, err := os.ReadFile(*out); err == nil {
			var old report
			if err := json.Unmarshal(prior, &old); err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: existing %s: %v\n", *out, err)
				os.Exit(1)
			}
			fresh := make(map[string]record, len(rep.Benchmarks))
			for _, r := range rep.Benchmarks {
				fresh[r.Name] = r
			}
			merged := make([]record, 0, len(old.Benchmarks)+len(rep.Benchmarks))
			for _, r := range old.Benchmarks {
				if nr, ok := fresh[r.Name]; ok {
					merged = append(merged, nr)
					delete(fresh, r.Name)
				} else {
					merged = append(merged, r)
				}
			}
			for _, r := range rep.Benchmarks {
				if _, ok := fresh[r.Name]; ok {
					merged = append(merged, r)
				}
			}
			rep.Benchmarks = merged
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
