// Command benchjson runs the solver micro-benchmarks programmatically
// (via testing.Benchmark, no `go test` subprocess) and emits the
// results as JSON, one record per benchmark with ns/op, B/op and
// allocs/op. It exists so the perf trajectory of the solvers is a
// machine-readable artifact: the repository tracks its output as
// BENCH_solvers.json.
//
// The workloads come from internal/benchdefs — the same declarations
// the root bench_test.go runs — so the JSON always corresponds to
// `go test -bench Solve`.
//
// Usage:
//
//	go run ./cmd/benchjson                     # writes BENCH_solvers.json
//	go run ./cmd/benchjson -out -              # writes to stdout
//	go run ./cmd/benchjson -benchtime 1x -out -  # CI smoke (one iteration per case)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/benchdefs"
)

// record is one benchmark result row.
type record struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// report is the emitted document.
type report struct {
	Tool       string   `json:"tool"`
	GoVersion  string   `json:"go_version"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Benchmarks []record `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "BENCH_solvers.json", "output path, or - for stdout")
	benchtime := flag.String("benchtime", "", "per-benchmark budget forwarded to testing (e.g. 100ms or 5x); default 1s")
	testing.Init()
	flag.Parse()
	if *benchtime != "" {
		if err := flag.Set("test.benchtime", *benchtime); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}

	type namedBench struct {
		name string
		fn   func(b *testing.B)
	}
	var benches []namedBench
	for _, c := range benchdefs.Solver() {
		if !c.Tracked {
			continue
		}
		benches = append(benches, namedBench{"Benchmark" + c.Name, func(b *testing.B) {
			benchdefs.RunCase(b, c)
		}})
	}
	benches = append(benches, namedBench{"BenchmarkVerifyMIS_n10000", benchdefs.RunVerify})

	rep := report{
		Tool:       "cmd/benchjson",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, bench := range benches {
		r := testing.Benchmark(bench.fn)
		if r.N == 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %s failed (see log above)\n", bench.name)
			os.Exit(1)
		}
		rep.Benchmarks = append(rep.Benchmarks, record{
			Name:        bench.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
		fmt.Fprintf(os.Stderr, "%-28s %10d ns/op %10d B/op %8d allocs/op\n",
			bench.name, int64(float64(r.T.Nanoseconds())/float64(r.N)),
			r.AllocedBytesPerOp(), r.AllocsPerOp())
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
