// Command promcheck scrapes a Prometheus text exposition endpoint and
// lints it: TYPE lines must precede their samples, families must not
// interleave or repeat, counters must be non-negative, histogram
// buckets must be cumulative with increasing bounds, and every sample
// line must parse. It exits non-zero on any violation or when fewer
// than -min samples are exposed — the CI smoke step runs it against a
// live hypermisd's GET /metrics.
//
// Usage:
//
//	promcheck -url http://127.0.0.1:8080/metrics [-min 20]
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"repro/internal/obs"
)

func main() {
	url := flag.String("url", "http://127.0.0.1:8080/metrics", "exposition endpoint to scrape")
	min := flag.Int("min", 1, "minimum number of samples the exposition must carry")
	timeout := flag.Duration("timeout", 10*time.Second, "scrape timeout")
	flag.Parse()

	client := &http.Client{Timeout: *timeout}
	resp, err := client.Get(*url)
	if err != nil {
		fmt.Fprintln(os.Stderr, "promcheck:", err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "promcheck: GET %s: status %d\n", *url, resp.StatusCode)
		os.Exit(1)
	}

	samples, errs := obs.LintExposition(resp.Body)
	for _, e := range errs {
		fmt.Fprintln(os.Stderr, "promcheck:", e)
	}
	if len(errs) > 0 {
		os.Exit(1)
	}
	if samples < *min {
		fmt.Fprintf(os.Stderr, "promcheck: only %d samples exposed (want >= %d)\n", samples, *min)
		os.Exit(1)
	}
	fmt.Printf("promcheck: %s ok (%d samples)\n", *url, samples)
}
