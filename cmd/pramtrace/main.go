// Command pramtrace demonstrates the EREW PRAM substrate: it runs the
// textbook primitives (broadcast, reduce, prefix sums) on the simulated
// machine and prints each routine's depth, work, peak processor count,
// and the auditor's verdict on the EREW discipline — the machine-level
// grounding for the paper's "can be implemented on EREW PRAM" claims.
//
// Usage:
//
//	pramtrace [-n 4096]
package main

import (
	"flag"
	"fmt"
	"math"

	"repro/internal/pram"
)

func main() {
	n := flag.Int("n", 4096, "input size")
	flag.Parse()

	fmt.Printf("EREW PRAM primitive traces at n = %d (log2 n = %.1f)\n\n", *n, math.Log2(float64(*n)))
	fmt.Printf("%-22s %8s %10s %10s %10s  %s\n", "routine", "depth", "work", "maxProcs", "work/depth", "EREW")

	row := func(name string, run func(m *pram.Machine)) {
		m := pram.NewMachine(4**n + 8)
		run(m)
		verdict := "clean"
		if len(m.Violations()) > 0 {
			verdict = fmt.Sprintf("VIOLATED (%s)", m.Violations()[0])
		}
		ratio := float64(m.Work()) / float64(max64(m.Steps(), 1))
		fmt.Printf("%-22s %8d %10d %10d %10.1f  %s\n",
			name, m.Steps(), m.Work(), m.MaxProcs(), ratio, verdict)
	}

	row("broadcast", func(m *pram.Machine) {
		m.Store(0, 42)
		pram.Broadcast(m, 0, 1, *n)
	})
	row("reduce (sum)", func(m *pram.Machine) {
		for i := 0; i < *n; i++ {
			m.Store(i, int64(i))
		}
		pram.ReduceSum(m, 0, *n, 3**n, *n)
	})
	row("prefix sums (scan)", func(m *pram.Machine) {
		for i := 0; i < *n; i++ {
			m.Store(i, 1)
		}
		pram.PrefixSumExclusive(m, 0, *n, *n, 2**n+2)
	})

	// A deliberately broken CREW-style program, to show the auditor
	// catching it.
	row("naive broadcast (CREW)", func(m *pram.Machine) {
		m.Store(0, 7)
		m.Step(*n, func(p *pram.Proc) {
			p.Write(1+p.ID(), p.Read(0)) // everyone reads cell 0 at once
		})
	})

	fmt.Println("\nDepth grows logarithmically for the clean routines; the CREW variant")
	fmt.Println("is depth 1 but violates exclusive reads — exactly the trade the EREW")
	fmt.Println("model forbids and the paper's algorithms are engineered around.")
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
