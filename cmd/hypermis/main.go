// Command hypermis is the command-line front end of the library:
// generate instances, solve them with any of the six algorithms, and
// verify independence/maximality (or transversal-minimality)
// certificates.
//
// Usage:
//
//	hypermis generate -n 1000 -m 2000 -min 2 -max 6 -seed 1 > h.txt
//	hypermis solve -algo sbl -seed 7 < h.txt > mis.txt
//	hypermis color -algo sbl -seed 7 < h.txt > colors.txt
//	hypermis transversal -seed 7 < h.txt > tv.txt
//	hypermis verify -mis mis.txt < h.txt
//	hypermis batch < items.ndjson > results.ndjson
//	hypermis stats < h.txt
//
// color and transversal run locally by default; -addr sends the same
// request to a running hypermisd (POST /v1/color, /v1/transversal) and
// prints the identical, locally re-verified output.
//
// Instances use the line-oriented text format of internal/hgio by
// default ("hypergraph <n> <m>" header, one edge per line); -bin on any
// subcommand switches to the compact binary format. MIS files are one
// vertex id per line.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"time"

	hypermis "repro"
	"repro/internal/hgio"
	"repro/internal/hypergraph"
	"repro/internal/service"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "generate":
		err = cmdGenerate(args)
	case "solve":
		err = cmdSolve(args)
	case "color":
		err = cmdColor(args)
	case "transversal":
		err = cmdTransversal(args)
	case "verify":
		err = cmdVerify(args)
	case "batch":
		err = cmdBatch(args)
	case "stats":
		err = cmdStats(args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hypermis:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: hypermis <generate|solve|color|transversal|verify|batch|stats> [flags]
  generate    -n N -m M [-min S] [-max S] [-d D] [-kind uniform|mixed|graph|linear|sunflower] [-seed S] [-bin]
  solve       [-algo auto|sbl|bl|kuw|luby|greedy|permbl|help] [-seed S] [-alpha A] [-cost] [-trace] [-transversal] [-bin]  < instance
  color       [-algo A] [-seed S] [-alpha A] [-addr URL] [-bin]  < instance  > colors.txt
  transversal [-algo A] [-seed S] [-alpha A] [-addr URL] [-bin]  < instance  > transversal.txt
  verify      -mis FILE [-transversal] [-bin]  < instance
  batch       [-addr URL]  < items.ndjson  > results.ndjson
  stats       [-bin]  < instance`)
}

func readInstance(r io.Reader, bin bool) (*hypergraph.Hypergraph, error) {
	if bin {
		return hgio.ReadBinary(r)
	}
	return hgio.ReadText(r)
}

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	n := fs.Int("n", 1000, "vertices")
	m := fs.Int("m", 2000, "edges")
	minS := fs.Int("min", 2, "min edge size (mixed)")
	maxS := fs.Int("max", 6, "max edge size (mixed)")
	d := fs.Int("d", 3, "edge size (uniform/linear)")
	kind := fs.String("kind", "mixed", "uniform|mixed|graph|linear|sunflower")
	seed := fs.Uint64("seed", 1, "seed")
	bin := fs.Bool("bin", false, "binary output format")
	fs.Parse(args)

	h, err := hypermis.Generate(hypermis.GenerateSpec{
		Kind: *kind, Seed: *seed, N: *n, M: *m, D: *d, MinSize: *minS, MaxSize: *maxS,
	})
	if err != nil {
		return err
	}
	if *bin {
		return hgio.WriteBinary(os.Stdout, h)
	}
	return hgio.WriteText(os.Stdout, h)
}

func cmdSolve(args []string) error {
	fs := flag.NewFlagSet("solve", flag.ExitOnError)
	algoName := fs.String("algo", "auto", "algorithm")
	seed := fs.Uint64("seed", 1, "seed")
	alpha := fs.Float64("alpha", 0, "SBL sampling exponent (0 = default)")
	cost := fs.Bool("cost", false, "print PRAM depth/work to stderr")
	trace := fs.Bool("trace", false, "print per-round telemetry (residual shape, decided, wall time) to stderr")
	transversal := fs.Bool("transversal", false, "output the dual minimal transversal instead of the MIS")
	bin := fs.Bool("bin", false, "binary instance format")
	fs.Parse(args)

	if *algoName == "help" {
		fmt.Println("algorithms:", strings.Join(hypermis.AlgorithmNames, " "))
		return nil
	}
	algo, err := hypermis.ParseAlgorithm(*algoName)
	if err != nil {
		return err
	}
	h, err := readInstance(os.Stdin, *bin)
	if err != nil {
		return err
	}
	res, err := hypermis.Solve(h, hypermis.Options{
		Algorithm: algo, Seed: *seed, Alpha: *alpha, CollectCost: *cost, Trace: *trace,
	})
	if err != nil {
		return err
	}
	for _, r := range res.Trace {
		fmt.Fprintf(os.Stderr, "round=%d n=%d m=%d dim=%d decided=%d elapsed=%s\n",
			r.Round, r.N, r.M, r.Dim, r.Decided, r.Elapsed)
	}
	if err := hypermis.VerifyMIS(h, res.MIS); err != nil {
		return fmt.Errorf("internal verification failed: %w", err)
	}
	out := res.MIS
	kind := "MIS"
	if *transversal {
		out = hypergraph.ComplementMask(res.MIS)
		kind = "minimal transversal"
	}
	if err := hgio.WriteVertexSet(os.Stdout, out); err != nil {
		return err
	}
	size := 0
	for _, in := range out {
		if in {
			size++
		}
	}
	fmt.Fprintf(os.Stderr, "algorithm=%v %s size=%d rounds=%d", res.Algorithm, kind, size, res.Rounds)
	if *cost {
		fmt.Fprintf(os.Stderr, " depth=%d work=%d", res.Depth, res.Work)
	}
	fmt.Fprintln(os.Stderr)
	return nil
}

// workloadQuery renders the shared solver flags as the service's query
// parameters (zero values omitted, matching the server defaults).
func workloadQuery(algo string, seed uint64, alpha float64) url.Values {
	q := url.Values{}
	if algo != "" && algo != "auto" {
		q.Set("algo", algo)
	}
	q.Set("seed", strconv.FormatUint(seed, 10))
	if alpha != 0 {
		q.Set("alpha", strconv.FormatFloat(alpha, 'g', -1, 64))
	}
	return q
}

// postWorkload sends the instance to a daemon workload endpoint
// (/v1/color or /v1/transversal) and decodes the JSON response into
// out. The daemon computes exactly what the local path would — the
// caller re-verifies the answer against the instance either way.
func postWorkload(addr, path string, q url.Values, h *hypergraph.Hypergraph, out any) error {
	var buf bytes.Buffer
	if err := hgio.WriteBinary(&buf, h); err != nil {
		return err
	}
	u := strings.TrimSuffix(addr, "/") + path
	if enc := q.Encode(); enc != "" {
		u += "?" + enc
	}
	resp, err := http.Post(u, service.ContentTypeBinary, &buf)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		return fmt.Errorf("daemon status %d: %s", resp.StatusCode, strings.TrimSpace(string(raw)))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// cmdColor colors the instance by MIS peeling — locally through
// hypermis.ColorByMISCtx, or through a running hypermisd's POST
// /v1/color with -addr. Both paths print the identical color vector
// (line v = color of vertex v) and re-verify the coloring before
// printing, so a daemon answer is held to the same standard as a local
// one.
func cmdColor(args []string) error {
	fs := flag.NewFlagSet("color", flag.ExitOnError)
	algoName := fs.String("algo", "auto", "algorithm")
	seed := fs.Uint64("seed", 1, "seed")
	alpha := fs.Float64("alpha", 0, "SBL sampling exponent (0 = default)")
	addr := fs.String("addr", "", "daemon base URL (empty = color locally)")
	bin := fs.Bool("bin", false, "binary instance format")
	fs.Parse(args)

	algo, err := hypermis.ParseAlgorithm(*algoName)
	if err != nil {
		return err
	}
	h, err := readInstance(os.Stdin, *bin)
	if err != nil {
		return err
	}
	var c hypermis.Coloring
	var algoStr string
	var rounds int
	if *addr != "" {
		var cr service.ColorResponse
		if err := postWorkload(*addr, "/v1/color", workloadQuery(*algoName, *seed, *alpha), h, &cr); err != nil {
			return err
		}
		c = hypermis.Coloring{Colors: cr.Colors, NumColors: cr.NumColors, ClassSizes: cr.ClassSizes}
		algoStr, rounds = cr.Algorithm, cr.Rounds
	} else {
		res, err := hypermis.ColorByMISCtx(context.Background(), h, hypermis.Options{
			Algorithm: algo, Seed: *seed, Alpha: *alpha,
		})
		if err != nil {
			return err
		}
		c = *res.Coloring()
		algoStr, rounds = res.Algorithm.String(), res.Rounds
	}
	if err := hypermis.VerifyColoring(h, &c); err != nil {
		return fmt.Errorf("coloring verification failed: %w", err)
	}
	out := bufio.NewWriter(os.Stdout)
	for _, col := range c.Colors {
		fmt.Fprintln(out, col)
	}
	if err := out.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "algorithm=%s colors=%d rounds=%d class_sizes=%v\n",
		algoStr, c.NumColors, rounds, c.ClassSizes)
	return nil
}

// cmdTransversal computes a verified minimal transversal — locally via
// hypermis.MinimalTransversalCtx, or through POST /v1/transversal with
// -addr. Output is the member vertex set in the same format `hypermis
// solve -transversal` emits, bit-identical across the two paths.
func cmdTransversal(args []string) error {
	fs := flag.NewFlagSet("transversal", flag.ExitOnError)
	algoName := fs.String("algo", "auto", "algorithm")
	seed := fs.Uint64("seed", 1, "seed")
	alpha := fs.Float64("alpha", 0, "SBL sampling exponent (0 = default)")
	addr := fs.String("addr", "", "daemon base URL (empty = compute locally)")
	bin := fs.Bool("bin", false, "binary instance format")
	fs.Parse(args)

	algo, err := hypermis.ParseAlgorithm(*algoName)
	if err != nil {
		return err
	}
	h, err := readInstance(os.Stdin, *bin)
	if err != nil {
		return err
	}
	var mask []bool
	var algoStr string
	var rounds int
	if *addr != "" {
		var tr service.TransversalResponse
		if err := postWorkload(*addr, "/v1/transversal", workloadQuery(*algoName, *seed, *alpha), h, &tr); err != nil {
			return err
		}
		mask = make([]bool, h.N())
		for _, v := range tr.Transversal {
			if v < 0 || v >= h.N() {
				return fmt.Errorf("daemon returned out-of-range vertex %d", v)
			}
			mask[v] = true
		}
		algoStr, rounds = tr.Algorithm, tr.Rounds
	} else {
		res, err := hypermis.MinimalTransversalCtx(context.Background(), h, hypermis.Options{
			Algorithm: algo, Seed: *seed, Alpha: *alpha,
		})
		if err != nil {
			return err
		}
		mask = res.Transversal
		algoStr, rounds = res.Algorithm.String(), res.Rounds
	}
	if err := hypermis.VerifyMinimalTransversal(h, mask); err != nil {
		return fmt.Errorf("transversal verification failed: %w", err)
	}
	if err := hgio.WriteVertexSet(os.Stdout, mask); err != nil {
		return err
	}
	size := 0
	for _, in := range mask {
		if in {
			size++
		}
	}
	fmt.Fprintf(os.Stderr, "algorithm=%s minimal transversal size=%d rounds=%d\n", algoStr, size, rounds)
	return nil
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	misFile := fs.String("mis", "", "file with one vertex id per line")
	transversal := fs.Bool("transversal", false, "verify a minimal transversal instead of a MIS")
	bin := fs.Bool("bin", false, "binary instance format")
	fs.Parse(args)
	if *misFile == "" {
		return fmt.Errorf("verify: -mis required")
	}
	h, err := readInstance(os.Stdin, *bin)
	if err != nil {
		return err
	}
	f, err := os.Open(*misFile)
	if err != nil {
		return err
	}
	defer f.Close()
	mask, err := hgio.ReadVertexSet(f, h.N())
	if err != nil {
		return err
	}
	if *transversal {
		if err := hypermis.VerifyMinimalTransversal(h, mask); err != nil {
			return err
		}
		fmt.Println("OK: minimal transversal")
		return nil
	}
	if err := hypermis.VerifyMIS(h, mask); err != nil {
		return err
	}
	fmt.Println("OK: maximal independent set")
	return nil
}

// cmdBatch solves a stream of NDJSON batch items (the POST /v1/batch
// wire format — see internal/service.BatchItem and docs/api.md) and
// writes one NDJSON result per item. By default items solve in-process
// through one shared solver workspace, in input order; with -addr the
// whole stream is forwarded to a running hypermisd and the daemon's
// streamed response (completion order) is copied through. The two
// paths produce bit-identical per-item results.
func cmdBatch(args []string) error {
	fs := flag.NewFlagSet("batch", flag.ExitOnError)
	addr := fs.String("addr", "", "daemon base URL (empty = solve locally)")
	fs.Parse(args)

	if *addr != "" {
		return forwardBatch(strings.TrimSuffix(*addr, "/") + "/v1/batch")
	}

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<26)
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	enc := json.NewEncoder(out)
	ws := hypermis.NewWorkspace()
	parser := service.NewBatchParser()
	index := 0
	for in.Scan() {
		line := strings.TrimSpace(in.Text())
		if line == "" {
			continue
		}
		res := solveBatchLine([]byte(line), index, ws, parser)
		if err := enc.Encode(res); err != nil {
			return err
		}
		index++
	}
	return in.Err()
}

// forwardBatch posts the whole stdin stream to a daemon's /v1/batch,
// honouring its backpressure: a 503 or 429 response is retried with
// jittered exponential backoff — waiting at least the daemon's
// Retry-After when it sent one — up to a bounded number of attempts.
// Stdin is buffered up front so the identical body can be re-sent
// (stdin is not rewindable), which also keeps a mid-stream shed from
// emitting a partial result stream.
func forwardBatch(url string) error {
	body, err := io.ReadAll(os.Stdin)
	if err != nil {
		return fmt.Errorf("batch: reading stdin: %v", err)
	}
	const maxAttempts = 6
	for attempt := 1; ; attempt++ {
		resp, err := http.Post(url, service.ContentTypeNDJSON, bytes.NewReader(body))
		if err != nil {
			return err
		}
		if resp.StatusCode == http.StatusServiceUnavailable || resp.StatusCode == http.StatusTooManyRequests {
			raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
			resp.Body.Close()
			if attempt == maxAttempts {
				return fmt.Errorf("batch: daemon still shedding after %d attempts (status %d: %s)",
					maxAttempts, resp.StatusCode, strings.TrimSpace(string(raw)))
			}
			// Exponential base capped at 2s; the daemon's Retry-After is a
			// floor, not a suggestion to ignore. Jitter over (base/2, base]
			// so parallel invocations don't retry in lockstep.
			base := min(time.Duration(attempt*attempt)*50*time.Millisecond, 2*time.Second)
			if v := resp.Header.Get("Retry-After"); v != "" {
				if secs, aerr := strconv.Atoi(v); aerr == nil && secs > 0 {
					base = max(base, min(time.Duration(secs)*time.Second, 5*time.Second))
				}
			}
			time.Sleep(base/2 + time.Duration(rand.Int64N(int64(base/2)+1)))
			continue
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
			return fmt.Errorf("batch: daemon status %d: %s", resp.StatusCode, raw)
		}
		_, err = io.Copy(os.Stdout, resp.Body)
		return err
	}
}

// solveBatchLine runs one batch item locally, mirroring the server's
// per-item semantics: any failure is that item's error, never the
// stream's.
func solveBatchLine(line []byte, index int, ws *hypermis.Workspace, parser *service.BatchParser) service.BatchItemResult {
	res := service.BatchItemResult{Index: index}
	var it service.BatchItem
	if err := json.Unmarshal(line, &it); err != nil {
		res.Error = fmt.Sprintf("bad item JSON: %v", err)
		return res
	}
	res.ID = it.ID
	opts, err := it.Options()
	if err != nil {
		res.Error = err.Error()
		return res
	}
	h, err := parser.Instance(&it)
	if err != nil {
		res.Error = err.Error()
		return res
	}
	opts.Workspace = ws
	start := time.Now()
	solved, err := hypermis.Solve(h, opts)
	if err != nil {
		res.Error = err.Error()
		return res
	}
	res.Solve = service.SolveResponseFor(h, solved, false, time.Since(start))
	return res
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	bin := fs.Bool("bin", false, "binary instance format")
	fs.Parse(args)
	h, err := readInstance(os.Stdin, *bin)
	if err != nil {
		return err
	}
	fmt.Printf("n=%d m=%d dim=%d\n", h.N(), h.M(), h.Dim())
	hist := h.DimHistogram()
	for size, count := range hist {
		if count > 0 {
			fmt.Printf("  edges of size %d: %d\n", size, count)
		}
	}
	deg := h.VertexDegrees()
	maxDeg, isolated := 0, 0
	for _, d := range deg {
		if d > maxDeg {
			maxDeg = d
		}
		if d == 0 {
			isolated++
		}
	}
	fmt.Printf("  max vertex degree: %d, isolated vertices: %d\n", maxDeg, isolated)
	return nil
}
