// Command benchdiff compares two BENCH_solvers.json files (cmd/benchjson
// output) and fails when the new run regresses past per-metric
// thresholds — the regression gate CI runs against the committed
// baseline.
//
// Comparison is per benchmark row, matched by name, at every GOMAXPROCS
// sweep point the two files share. The two metrics are held to
// different standards because they travel differently across machines:
//
//   - allocs/op is host-independent (the allocator does the same work
//     regardless of clock speed), so it is always a hard gate.
//   - ns/op depends on the host. When the two reports come from
//     matching hosts (same go_version and host_cpus) it is a hard gate;
//     when they differ, ns regressions are reported as warnings only,
//     unless -strict-ns forces them fatal. A gate that red-flags every
//     CI runner generation change would train people to ignore it.
//
// A benchmark present in the baseline but missing from the new run is a
// failure (silent coverage loss), and new-only benchmarks are listed
// informationally.
//
// Usage:
//
//	benchdiff old.json new.json
//	benchdiff -ns 10 -allocs 5 BENCH_solvers.json /tmp/new.json
//	benchdiff -strict-ns old.json new.json   # ns fatal even across hosts
//
// Exit status: 0 when clean (or warnings only), 1 on regression, 2 on
// usage or parse errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// procEntry mirrors cmd/benchjson's procRecord.
type procEntry struct {
	Procs       int     `json:"procs"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// benchEntry mirrors cmd/benchjson's record (the fields the diff needs).
type benchEntry struct {
	Name        string      `json:"name"`
	NsPerOp     float64     `json:"ns_per_op"`
	AllocsPerOp int64       `json:"allocs_per_op"`
	Sweep       []procEntry `json:"procs_sweep"`
}

// reportDoc mirrors cmd/benchjson's report.
type reportDoc struct {
	GoVersion  string       `json:"go_version"`
	HostCPUs   int          `json:"host_cpus"`
	Benchmarks []benchEntry `json:"benchmarks"`
}

func load(path string) (*reportDoc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc reportDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(doc.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return &doc, nil
}

func main() {
	nsPct := flag.Float64("ns", 10, "ns/op regression threshold in percent")
	allocsPct := flag.Float64("allocs", 5, "allocs/op regression threshold in percent")
	strictNs := flag.Bool("strict-ns", false, "treat ns/op regressions as fatal even when the reports come from different hosts")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchdiff [flags] old.json new.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	oldDoc, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newDoc, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	sameHost := oldDoc.GoVersion == newDoc.GoVersion && oldDoc.HostCPUs == newDoc.HostCPUs
	nsFatal := sameHost || *strictNs
	if !sameHost {
		fmt.Printf("host mismatch: old %s/%d cpus, new %s/%d cpus — ns/op diffs are %s\n",
			oldDoc.GoVersion, oldDoc.HostCPUs, newDoc.GoVersion, newDoc.HostCPUs,
			map[bool]string{true: "fatal (-strict-ns)", false: "advisory"}[*strictNs])
	}

	newByName := make(map[string]benchEntry, len(newDoc.Benchmarks))
	for _, b := range newDoc.Benchmarks {
		newByName[b.Name] = b
	}
	oldNames := make(map[string]bool, len(oldDoc.Benchmarks))

	regressions, warnings := 0, 0
	check := func(name, metric string, procs int, oldV, newV, pct float64, fatal bool) {
		if oldV <= 0 || newV <= oldV*(1+pct/100) {
			return
		}
		delta := 100 * (newV - oldV) / oldV
		kind := "REGRESSION"
		if !fatal {
			kind = "warning"
			warnings++
		} else {
			regressions++
		}
		fmt.Printf("%s: %s p=%d %s %.4g -> %.4g (%+.1f%%, threshold +%.4g%%)\n",
			kind, name, procs, metric, oldV, newV, delta, pct)
	}

	for _, ob := range oldDoc.Benchmarks {
		oldNames[ob.Name] = true
		nb, ok := newByName[ob.Name]
		if !ok {
			fmt.Printf("REGRESSION: %s missing from new report\n", ob.Name)
			regressions++
			continue
		}
		newSweep := make(map[int]procEntry, len(nb.Sweep))
		for _, p := range nb.Sweep {
			newSweep[p.Procs] = p
		}
		for _, op := range ob.Sweep {
			np, ok := newSweep[op.Procs]
			if !ok {
				continue
			}
			check(ob.Name, "ns/op", op.Procs, op.NsPerOp, np.NsPerOp, *nsPct, nsFatal)
			// allocs/op gets one alloc of absolute grace so tiny counts
			// aren't gated on ±1 noise, but stays a hard gate everywhere.
			if np.AllocsPerOp > op.AllocsPerOp+1 {
				check(ob.Name, "allocs/op", op.Procs, float64(op.AllocsPerOp), float64(np.AllocsPerOp), *allocsPct, true)
			}
		}
	}
	added := 0
	for _, nb := range newDoc.Benchmarks {
		if !oldNames[nb.Name] {
			fmt.Printf("note: new benchmark %s (no baseline)\n", nb.Name)
			added++
		}
	}

	fmt.Printf("benchdiff: %d benchmarks compared, %d regressions, %d warnings, %d new\n",
		len(oldDoc.Benchmarks), regressions, warnings, added)
	if regressions > 0 {
		os.Exit(1)
	}
}
