// Command hypermisload is a closed-loop load generator for hypermisd:
// a fixed number of workers fire a solving workload at the daemon and
// report throughput, client-side latency quantiles per operation, and
// the server's own /v1/stats counters.
//
// Three traffic shapes (-mode) cover the daemon's three solve paths
// with the same instance/seed mix, so their answers are cross-checked
// against one fingerprint table and their solves/sec are directly
// comparable at equal -c:
//
//	single  mixed per-request ops: 20% generate, 70% solve, 10% verify
//	batch   NDJSON POST /v1/batch, -batch items per request
//	jobs    async POST /v1/jobs + GET polling until each job is done
//
// Two workload modes drive the non-solve endpoints with the same
// instance/seed grid, verifying every answer locally (the generator
// holds the instances) and cross-checking repeats against a
// fingerprint table — the determinism contract of ColorByMIS and
// MinimalTransversal, end to end through the daemon:
//
//	color        POST /v1/color; each response must be a proper,
//	             complete coloring and bit-identical across repeats
//	transversal  POST /v1/transversal; each response must be a verified
//	             minimal transversal and bit-identical across repeats
//
// A fourth mode probes the daemon's overload behaviour instead of its
// throughput:
//
//	overload  every request is an uncacheable interactive solve with a
//	          -deadline budget, sheds (503/429) are counted rather than
//	          retried, and the run fails if goodput collapses — the
//	          second half of the run must keep at least a quarter of
//	          the first half's successes. Run it at -c well above the
//	          daemon's worker count (2–5× capacity); -expectshed
//	          additionally requires that the daemon shed something.
//
// A fifth mode exercises the durable cache tier across daemon
// restarts:
//
//	restart  every request is a plain cacheable solve (no traced
//	         requests — traced results are memory-only), iterating the
//	         (instance, seed) grid in order so -n = pool×seeds covers
//	         every key exactly once. The run reports its cache hit rate;
//	         -expecthitrate R fails the run if the rate lands below R.
//	         The crash-recovery CI smoke runs it twice against one
//	         -cachedir: a warm pass (expected rate 0), kill -9, reboot,
//	         then an assert pass with -expecthitrate 1 — every answer
//	         must come back from the recovered store.
//
// Usage:
//
//	hypermisd -addr :8080 &
//	hypermisload -addr http://127.0.0.1:8080 -n 1000 -c 8
//	hypermisload -addr http://127.0.0.1:8080 -n 1000 -c 8 -mode batch
//	hypermisload -addr http://127.0.0.1:8080 -n 100000 -c 16 -statsevery 5s
//
// -statsevery polls the daemon's GET /v1/stats during the run and
// prints windowed deltas (solves/s, cache hit rate, queue depth, p99)
// so long runs show live progress.
//
// The instance pool is small and seeds repeat, so repeated (instance,
// seed) solve pairs are guaranteed; the generator cross-checks that the
// daemon's answers for such pairs are identical (the determinism
// contract of hypermis.Solve) and that the advertised instance digests
// match a local reconstruction. The exit status is non-zero on any
// request error or contract violation — the end-to-end serving check.
package main

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand/v2"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	hypermis "repro"
	"repro/internal/hgio"
	"repro/internal/service"
)

type config struct {
	addr       string
	total      int
	workers    int
	pool       int
	seeds      int
	algo       string
	n, m       int
	seed       uint64
	mode       string
	batch      int
	statsEvery time.Duration
	deadlineMs int
	expectShed bool
	expectHit  float64
}

type instance struct {
	text, bin []byte
	// Batch-item payload encodings, computed once at pool build so the
	// closed loop doesn't re-encode per request (which would understate
	// the solves/sec it exists to measure).
	textStr, binB64 string
	digest          string
	genQuery        string
	// h is the decoded instance itself, kept so the color/transversal
	// modes can verify every daemon answer locally.
	h *hypermis.Hypergraph
}

type runner struct {
	cfg       config
	client    *http.Client
	instances []instance

	issued atomic.Int64 // global iteration counter (closed loop)
	errs   atomic.Int64
	cached atomic.Int64
	sheds  atomic.Int64 // 503/429 responses, retried with backoff

	// Overload-mode tallies, split into run halves so the end-of-run
	// band check can compare early goodput against late goodput: a
	// healthy daemon sheds excess load and keeps serving, a collapsing
	// one serves the first wave and then nothing.
	ovOK   [2]atomic.Int64 // interactive successes per half
	ovShed [2]atomic.Int64 // honest rejections (503/429) per half

	genLat, solveLat, verifyLat, batchLat, jobLat, colorLat, tvLat service.Histogram
	genOps, solveOps, verifyOps, batchOps, jobOps, colorOps, tvOps atomic.Int64

	mu       sync.Mutex
	answers  map[string]string // (spec,seed) -> MIS fingerprint
	lastMIS  map[int][]int     // spec -> a previously served MIS
	failures []string
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "http://127.0.0.1:8080", "daemon base URL")
	flag.IntVar(&cfg.total, "n", 1000, "total requests to issue")
	flag.IntVar(&cfg.workers, "c", 8, "concurrent workers (closed loop)")
	flag.IntVar(&cfg.pool, "pool", 12, "distinct instances in the workload")
	flag.IntVar(&cfg.seeds, "seeds", 3, "distinct solve seeds per instance")
	flag.StringVar(&cfg.algo, "algo", "auto", "solve algorithm")
	flag.IntVar(&cfg.n, "size", 400, "vertices per generated instance")
	flag.IntVar(&cfg.m, "edges", 800, "edges per generated instance")
	flag.Uint64Var(&cfg.seed, "seed", 1, "base instance seed")
	flag.StringVar(&cfg.mode, "mode", "single", "traffic shape: single (mixed per-request ops), batch (NDJSON /v1/batch), jobs (async /v1/jobs + polling), overload (uncacheable flood, goodput band check), restart (durable-cache grid walk), color (/v1/color, verified + determinism-checked), transversal (/v1/transversal, same)")
	flag.IntVar(&cfg.batch, "batch", 16, "items per batch request (batch mode)")
	flag.DurationVar(&cfg.statsEvery, "statsevery", 0, "poll GET /v1/stats at this interval and print deltas (0 disables)")
	flag.IntVar(&cfg.deadlineMs, "deadline", 2000, "per-request deadline_ms budget in overload mode (0 sends none)")
	flag.BoolVar(&cfg.expectShed, "expectshed", false, "overload mode: fail unless the daemon shed at least one request")
	flag.Float64Var(&cfg.expectHit, "expecthitrate", -1, "restart mode: fail unless the cache hit rate reaches this fraction in [0,1] (negative disables)")
	flag.Parse()
	switch cfg.mode {
	case "single", "batch", "jobs", "overload", "restart", "color", "transversal":
	default:
		log.Fatalf("unknown -mode %q (want single, batch, jobs, overload, restart, color or transversal)", cfg.mode)
	}
	if cfg.batch < 1 {
		cfg.batch = 1
	}

	r := &runner{
		cfg:     cfg,
		client:  &http.Client{Timeout: 60 * time.Second},
		answers: make(map[string]string),
		lastMIS: make(map[int][]int),
	}
	r.buildPool()

	stopStats := func() {}
	if cfg.statsEvery > 0 {
		stopStats = r.pollStats(cfg.statsEvery)
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			switch cfg.mode {
			case "batch":
				// Each loop turn claims the next `-batch` item indices, so
				// total solves match single mode at equal -n.
				for {
					lo := r.issued.Add(int64(cfg.batch)) - int64(cfg.batch)
					if lo >= int64(cfg.total) {
						return
					}
					hi := lo + int64(cfg.batch)
					if hi > int64(cfg.total) {
						hi = int64(cfg.total)
					}
					r.batchStep(int(lo), int(hi))
				}
			case "jobs":
				for {
					i := r.issued.Add(1) - 1
					if i >= int64(cfg.total) {
						return
					}
					r.jobStep(int(i))
				}
			case "overload":
				for {
					i := r.issued.Add(1) - 1
					if i >= int64(cfg.total) {
						return
					}
					r.overloadStep(int(i))
				}
			case "restart":
				for {
					i := r.issued.Add(1) - 1
					if i >= int64(cfg.total) {
						return
					}
					r.restartStep(int(i))
				}
			case "color":
				for {
					i := r.issued.Add(1) - 1
					if i >= int64(cfg.total) {
						return
					}
					r.colorStep(int(i))
				}
			case "transversal":
				for {
					i := r.issued.Add(1) - 1
					if i >= int64(cfg.total) {
						return
					}
					r.transversalStep(int(i))
				}
			default:
				for {
					i := r.issued.Add(1) - 1
					if i >= int64(cfg.total) {
						return
					}
					r.step(int(i))
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	stopStats()

	r.report(elapsed)
	if r.errs.Load() > 0 || len(r.failures) > 0 {
		os.Exit(1)
	}
}

// pollStats samples GET /v1/stats at the given interval during the run
// and prints the delta between consecutive samples — server-side
// solves/s, cache hit rate over the window, queue depth, and the
// daemon's p99 — so a long run shows live progress instead of one
// summary at the end. The returned stop function waits for the final
// in-flight sample before the end-of-run report prints.
func (r *runner) pollStats(every time.Duration) func() {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var prev service.Stats
		prevAt := time.Now()
		havePrev := false
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
			}
			resp, err := r.client.Get(r.cfg.addr + "/v1/stats")
			if err != nil {
				fmt.Printf("stats: %v\n", err)
				continue
			}
			var st service.Stats
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err != nil {
				fmt.Printf("stats: bad JSON: %v\n", err)
				continue
			}
			now := time.Now()
			if havePrev {
				window := now.Sub(prevAt).Seconds()
				dSolves := st.Solves - prev.Solves
				dHits := st.CacheHits - prev.CacheHits
				dLookups := dHits + (st.CacheMisses - prev.CacheMisses)
				hitRate := 0.0
				if dLookups > 0 {
					hitRate = 100 * float64(dHits) / float64(dLookups)
				}
				fmt.Printf("stats: +%d solves (%.1f/s)  cache hit %.0f%% (%d/%d)  queue %d/%d  p99=%.2fms\n",
					dSolves, float64(dSolves)/window, hitRate, dHits, dLookups,
					st.QueueDepth, st.QueueCap, st.LatencyP99Ms)
			}
			prev, prevAt, havePrev = st, now, true
		}
	}()
	return func() { close(done); wg.Wait() }
}

// buildPool reconstructs, locally, exactly the instances the daemon's
// /v1/generate produces for the pool's queries — same generator, same
// seeds — so digests and solve bodies need no prior network round trip.
func (r *runner) buildPool() {
	r.instances = make([]instance, r.cfg.pool)
	for i := range r.instances {
		seed := r.cfg.seed + uint64(i)
		h := hypermis.RandomMixed(seed, r.cfg.n, r.cfg.m, 2, 6)
		var text, bin bytes.Buffer
		if err := hgio.WriteText(&text, h); err != nil {
			log.Fatal(err)
		}
		if err := hgio.WriteBinary(&bin, h); err != nil {
			log.Fatal(err)
		}
		r.instances[i] = instance{
			text:    text.Bytes(),
			bin:     bin.Bytes(),
			textStr: text.String(),
			binB64:  base64.StdEncoding.EncodeToString(bin.Bytes()),
			digest:  hgio.Digest(h),
			genQuery: fmt.Sprintf("kind=mixed&n=%d&m=%d&min=2&max=6&seed=%d",
				r.cfg.n, r.cfg.m, seed),
			h: h,
		}
	}
}

// retryDelay computes the sleep before retrying a shed request:
// the server's Retry-After when it sent one (capped at 2s so a load
// test never parks for long), otherwise capped exponential growth —
// jittered either way, so a burst of shed workers doesn't retry in
// lockstep and re-create the spike that shed them.
func retryDelay(resp *http.Response, attempt int) time.Duration {
	base := time.Duration(min(attempt, 6)) * 25 * time.Millisecond
	if v := resp.Header.Get("Retry-After"); v != "" {
		if secs, err := strconv.Atoi(v); err == nil && secs > 0 {
			base = min(time.Duration(secs)*time.Second, 2*time.Second)
		}
	}
	// Full jitter over (base/2, base]: spread without ever retrying
	// sooner than half the advertised wait.
	return base/2 + time.Duration(rand.Int64N(int64(base/2)+1))
}

// post issues one HTTP request, honouring the daemon's backpressure: a
// 503 (shed) or 429 (rate limited) is not an error but an instruction
// to back off and retry — for how long, the Retry-After header says —
// which is what a closed-loop client does.
func (r *runner) post(url, contentType string, body []byte) (*http.Response, []byte, error) {
	for attempt := 1; ; attempt++ {
		resp, raw, err := r.postOnce(url, contentType, body)
		if err != nil {
			return nil, nil, err
		}
		if resp.StatusCode == http.StatusServiceUnavailable || resp.StatusCode == http.StatusTooManyRequests {
			r.sheds.Add(1)
			time.Sleep(retryDelay(resp, attempt))
			continue
		}
		return resp, raw, nil
	}
}

// postOnce issues one HTTP request with no retry policy — the overload
// mode's probe, where a shed is an outcome to count, not to hide.
func (r *runner) postOnce(url, contentType string, body []byte) (*http.Response, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	resp, err := r.client.Post(url, contentType, rd)
	if err != nil {
		return nil, nil, err
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, raw, nil
}

func (r *runner) fail(format string, args ...any) {
	r.errs.Add(1)
	r.mu.Lock()
	if len(r.failures) < 20 {
		r.failures = append(r.failures, fmt.Sprintf(format, args...))
	}
	r.mu.Unlock()
}

// step issues request i of the closed loop: 20% generate, 70% solve,
// 10% verify against a previously served MIS.
func (r *runner) step(i int) {
	spec := i % len(r.instances)
	switch mode := i % 10; {
	case mode < 2:
		r.generate(spec)
	case mode < 9:
		r.solve(spec, uint64(i%r.cfg.seeds))
	default:
		r.verify(spec)
	}
}

func (r *runner) generate(spec int) {
	inst := &r.instances[spec]
	start := time.Now()
	resp, body, err := r.post(r.cfg.addr+"/v1/generate?"+inst.genQuery, "", nil)
	if err != nil {
		r.fail("generate %d: %v", spec, err)
		return
	}
	r.genLat.Observe(time.Since(start))
	r.genOps.Add(1)
	if resp.StatusCode != http.StatusOK {
		r.fail("generate %d: status %d: %s", spec, resp.StatusCode, body)
		return
	}
	if d := resp.Header.Get("X-Instance-Digest"); d != inst.digest {
		r.fail("generate %d: digest %s, local reconstruction %s", spec, d, inst.digest)
	}
}

func (r *runner) solve(spec int, seed uint64) {
	inst := &r.instances[spec]
	body, contentType := inst.text, service.ContentTypeText
	if spec%2 == 1 { // exercise the binary path on half the pool
		body, contentType = inst.bin, service.ContentTypeBinary
	}
	url := fmt.Sprintf("%s/v1/solve?algo=%s&seed=%d", r.cfg.addr, r.cfg.algo, seed)
	wantTrace := spec%4 == 0 // exercise the telemetry path on part of the pool
	if wantTrace {
		url += "&trace=1"
	}
	start := time.Now()
	resp, raw, err := r.post(url, contentType, body)
	if err != nil {
		r.fail("solve %d/%d: %v", spec, seed, err)
		return
	}
	r.solveLat.Observe(time.Since(start))
	r.solveOps.Add(1)
	if resp.StatusCode != http.StatusOK {
		r.fail("solve %d/%d: status %d: %s", spec, seed, resp.StatusCode, raw)
		return
	}
	var sr service.SolveResponse
	if err := json.Unmarshal(raw, &sr); err != nil {
		r.fail("solve %d/%d: bad JSON: %v", spec, seed, err)
		return
	}
	r.checkAnswer("solve", spec, seed, &sr, wantTrace)
}

// checkAnswer enforces the serving contracts every mode shares: the
// trace length matches the round count when requested, and repeated
// (instance, seed) pairs return the identical MIS. The table lives in
// this process, so it covers one -mode per run; equivalence ACROSS the
// single/batch/async paths is property-tested server-side
// (TestBatchMatchesSingleShot, TestJobLifecycleDone).
func (r *runner) checkAnswer(op string, spec int, seed uint64, sr *service.SolveResponse, wantTrace bool) {
	if sr.Cached {
		r.cached.Add(1)
	}
	if wantTrace && len(sr.Trace) != sr.Rounds {
		r.fail("%s %d/%d: trace has %d records for %d rounds", op, spec, seed, len(sr.Trace), sr.Rounds)
	}
	fp := fmt.Sprint(sr.MIS)
	key := fmt.Sprintf("%d/%d", spec, seed)
	r.mu.Lock()
	prev, seen := r.answers[key]
	if !seen {
		r.answers[key] = fp
	}
	r.lastMIS[spec] = sr.MIS
	r.mu.Unlock()
	if seen && prev != fp {
		r.fail("%s %s: nondeterministic answer for equal (instance, seed)", op, key)
	}
}

// batchStep issues item indices [lo, hi) as one NDJSON POST /v1/batch
// request and validates every streamed result line: same item mix as
// single mode, so per-item answers are cross-checked against the same
// fingerprint table.
func (r *runner) batchStep(lo, hi int) {
	type itemMeta struct {
		spec  int
		seed  uint64
		id    string
		trace bool
	}
	var body bytes.Buffer
	enc := json.NewEncoder(&body)
	metas := make([]itemMeta, 0, hi-lo)
	// Each distinct instance is sent once per batch; repeats within the
	// batch ref the first occurrence, so the payload and the server-side
	// parse are amortized across the batch's items.
	anchors := make(map[int]string)
	for i := lo; i < hi; i++ {
		spec := i % len(r.instances)
		seed := uint64(i % r.cfg.seeds)
		inst := &r.instances[spec]
		it := service.BatchItem{
			Algo:  r.cfg.algo,
			Seed:  seed,
			Trace: spec%4 == 0,
		}
		if anchor, ok := anchors[spec]; ok {
			it.ID = fmt.Sprintf("%d/%d", spec, seed)
			it.Ref = anchor
		} else {
			it.ID = fmt.Sprintf("s%d", spec)
			anchors[spec] = it.ID
			if spec%2 == 1 { // exercise the binary payload on half the pool
				it.InstanceB64 = inst.binB64
			} else {
				it.Instance = inst.textStr
			}
		}
		if err := enc.Encode(it); err != nil {
			log.Fatal(err)
		}
		metas = append(metas, itemMeta{spec, seed, it.ID, it.Trace})
	}
	start := time.Now()
	resp, raw, err := r.post(r.cfg.addr+"/v1/batch", service.ContentTypeNDJSON, body.Bytes())
	if err != nil {
		r.fail("batch [%d,%d): %v", lo, hi, err)
		return
	}
	r.batchLat.Observe(time.Since(start))
	r.batchOps.Add(1)
	if resp.StatusCode != http.StatusOK {
		r.fail("batch [%d,%d): status %d: %s", lo, hi, resp.StatusCode, raw)
		return
	}
	got := 0
	for _, line := range bytes.Split(raw, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var ir service.BatchItemResult
		if err := json.Unmarshal(line, &ir); err != nil {
			r.fail("batch [%d,%d): bad result line %q: %v", lo, hi, line, err)
			return
		}
		got++
		if ir.Index < 0 || ir.Index >= len(metas) {
			r.fail("batch [%d,%d): result index %d out of range", lo, hi, ir.Index)
			continue
		}
		m := metas[ir.Index]
		if ir.Error != "" {
			r.fail("batch item %d/%d: %s", m.spec, m.seed, ir.Error)
			continue
		}
		if ir.ID != m.id {
			r.fail("batch item %d: id %q, want %q", ir.Index, ir.ID, m.id)
		}
		r.checkAnswer("batch", m.spec, m.seed, ir.Solve, m.trace)
		r.solveOps.Add(1)
	}
	if got != len(metas) {
		r.fail("batch [%d,%d): %d results for %d items", lo, hi, got, len(metas))
	}
}

// jobStep runs one solve through the async job API: submit, poll until
// terminal, validate the result against the shared fingerprint table.
// The observed latency is submit→done, polling included.
func (r *runner) jobStep(i int) {
	spec := i % len(r.instances)
	seed := uint64(i % r.cfg.seeds)
	inst := &r.instances[spec]
	body, contentType := inst.text, service.ContentTypeText
	if spec%2 == 1 {
		body, contentType = inst.bin, service.ContentTypeBinary
	}
	url := fmt.Sprintf("%s/v1/jobs?algo=%s&seed=%d", r.cfg.addr, r.cfg.algo, seed)
	start := time.Now()
	resp, raw, err := r.post(url, contentType, body)
	if err != nil {
		r.fail("job submit %d/%d: %v", spec, seed, err)
		return
	}
	if resp.StatusCode != http.StatusAccepted {
		r.fail("job submit %d/%d: status %d: %s", spec, seed, resp.StatusCode, raw)
		return
	}
	var js service.JobStatusResponse
	if err := json.Unmarshal(raw, &js); err != nil {
		r.fail("job submit %d/%d: bad JSON: %v", spec, seed, err)
		return
	}
	for deadline := time.Now().Add(60 * time.Second); ; {
		if time.Now().After(deadline) {
			r.fail("job %d/%d (%s): not terminal after 60s (last status %q)", spec, seed, js.JobID, js.Status)
			return
		}
		getResp, err := r.client.Get(r.cfg.addr + "/v1/jobs/" + js.JobID)
		if err != nil {
			r.fail("job poll %d/%d: %v", spec, seed, err)
			return
		}
		raw, _ := io.ReadAll(getResp.Body)
		getResp.Body.Close()
		if getResp.StatusCode != http.StatusOK {
			r.fail("job poll %d/%d: status %d: %s", spec, seed, getResp.StatusCode, raw)
			return
		}
		if err := json.Unmarshal(raw, &js); err != nil {
			r.fail("job poll %d/%d: bad JSON: %v", spec, seed, err)
			return
		}
		switch js.Status {
		case service.JobDone:
			r.jobLat.Observe(time.Since(start))
			r.jobOps.Add(1)
			if js.Solve == nil {
				r.fail("job %d/%d: done without solve payload", spec, seed)
				return
			}
			r.checkAnswer("job", spec, seed, js.Solve, false)
			r.solveOps.Add(1)
			return
		case service.JobFailed, service.JobCanceled:
			r.fail("job %d/%d: terminal status %q: %s", spec, seed, js.Status, js.Error)
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// overloadStep fires one uncacheable interactive solve (seed = i, so
// no two requests share a cache key) with a deadline_ms budget, and
// records the outcome per run half. Sheds are final here — no retry —
// because the mode measures how the daemon behaves at offered loads
// beyond capacity, and retries would hide exactly that.
func (r *runner) overloadStep(i int) {
	half := 0
	if i >= r.cfg.total/2 {
		half = 1
	}
	inst := &r.instances[i%len(r.instances)]
	url := fmt.Sprintf("%s/v1/solve?algo=%s&seed=%d&priority=interactive", r.cfg.addr, r.cfg.algo, uint64(i))
	if r.cfg.deadlineMs > 0 {
		url += fmt.Sprintf("&deadline_ms=%d", r.cfg.deadlineMs)
	}
	start := time.Now()
	resp, raw, err := r.postOnce(url, service.ContentTypeText, inst.text)
	if err != nil {
		r.fail("overload %d: %v", i, err)
		return
	}
	switch resp.StatusCode {
	case http.StatusOK:
		r.solveLat.Observe(time.Since(start))
		r.solveOps.Add(1)
		r.ovOK[half].Add(1)
	case http.StatusServiceUnavailable, http.StatusTooManyRequests:
		// An honest rejection is the daemon doing its job; what would be
		// a failure is goodput collapsing — the band check's business.
		r.sheds.Add(1)
		r.ovShed[half].Add(1)
	case http.StatusGatewayTimeout:
		// The deadline budget expired server-side: late, not wrong.
		// Counts as neither goodput nor a shed.
	default:
		r.fail("overload %d: status %d: %s", i, resp.StatusCode, raw)
	}
}

// restartStep issues solve i of a restart-mode pass: every request is
// a plain cacheable solve — no trace, since traced results are
// deliberately memory-only and would never survive a restart — walking
// the (instance, seed) grid in order, so -n = pool×seeds covers every
// distinct cache key exactly once. Answers still flow through the
// shared fingerprint table: a recovered-from-disk result must be
// bit-identical to the one the previous pass fingerprinted.
func (r *runner) restartStep(i int) {
	spec := i % len(r.instances)
	seed := uint64((i / len(r.instances)) % r.cfg.seeds)
	inst := &r.instances[spec]
	body, contentType := inst.text, service.ContentTypeText
	if spec%2 == 1 { // exercise the binary path on half the pool
		body, contentType = inst.bin, service.ContentTypeBinary
	}
	url := fmt.Sprintf("%s/v1/solve?algo=%s&seed=%d", r.cfg.addr, r.cfg.algo, seed)
	start := time.Now()
	resp, raw, err := r.post(url, contentType, body)
	if err != nil {
		r.fail("restart solve %d/%d: %v", spec, seed, err)
		return
	}
	r.solveLat.Observe(time.Since(start))
	r.solveOps.Add(1)
	if resp.StatusCode != http.StatusOK {
		r.fail("restart solve %d/%d: status %d: %s", spec, seed, resp.StatusCode, raw)
		return
	}
	var sr service.SolveResponse
	if err := json.Unmarshal(raw, &sr); err != nil {
		r.fail("restart solve %d/%d: bad JSON: %v", spec, seed, err)
		return
	}
	r.checkAnswer("restart", spec, seed, &sr, false)
}

// checkFingerprint enforces determinism for the color/transversal
// modes: repeated (instance, seed) pairs must return the bit-identical
// answer, exactly as checkAnswer does for MIS solves.
func (r *runner) checkFingerprint(op string, spec int, seed uint64, fp string) {
	key := fmt.Sprintf("%s %d/%d", op, spec, seed)
	r.mu.Lock()
	prev, seen := r.answers[key]
	if !seen {
		r.answers[key] = fp
	}
	r.mu.Unlock()
	if seen && prev != fp {
		r.fail("%s %d/%d: nondeterministic answer for equal (instance, seed)", op, spec, seed)
	}
}

// colorStep issues one POST /v1/color over the (instance, seed) grid,
// verifies the returned coloring locally (proper and complete against
// the generator's own copy of the instance), and fingerprints it for
// the determinism cross-check.
func (r *runner) colorStep(i int) {
	spec := i % len(r.instances)
	seed := uint64(i % r.cfg.seeds)
	inst := &r.instances[spec]
	body, contentType := inst.text, service.ContentTypeText
	if spec%2 == 1 { // exercise the binary path on half the pool
		body, contentType = inst.bin, service.ContentTypeBinary
	}
	url := fmt.Sprintf("%s/v1/color?algo=%s&seed=%d", r.cfg.addr, r.cfg.algo, seed)
	start := time.Now()
	resp, raw, err := r.post(url, contentType, body)
	if err != nil {
		r.fail("color %d/%d: %v", spec, seed, err)
		return
	}
	r.colorLat.Observe(time.Since(start))
	r.colorOps.Add(1)
	if resp.StatusCode != http.StatusOK {
		r.fail("color %d/%d: status %d: %s", spec, seed, resp.StatusCode, raw)
		return
	}
	var cr service.ColorResponse
	if err := json.Unmarshal(raw, &cr); err != nil {
		r.fail("color %d/%d: bad JSON: %v", spec, seed, err)
		return
	}
	if cr.Cached {
		r.cached.Add(1)
	}
	c := hypermis.Coloring{Colors: cr.Colors, NumColors: cr.NumColors, ClassSizes: cr.ClassSizes}
	if err := hypermis.VerifyColoring(inst.h, &c); err != nil {
		r.fail("color %d/%d: invalid coloring: %v", spec, seed, err)
		return
	}
	if len(cr.Classes) != cr.NumColors {
		r.fail("color %d/%d: %d class records for %d colors", spec, seed, len(cr.Classes), cr.NumColors)
	}
	r.checkFingerprint("color", spec, seed, fmt.Sprint(cr.Colors))
}

// transversalStep issues one POST /v1/transversal over the grid,
// verifies coverage and minimality locally, and fingerprints the
// member set for the determinism cross-check.
func (r *runner) transversalStep(i int) {
	spec := i % len(r.instances)
	seed := uint64(i % r.cfg.seeds)
	inst := &r.instances[spec]
	body, contentType := inst.text, service.ContentTypeText
	if spec%2 == 1 {
		body, contentType = inst.bin, service.ContentTypeBinary
	}
	url := fmt.Sprintf("%s/v1/transversal?algo=%s&seed=%d", r.cfg.addr, r.cfg.algo, seed)
	start := time.Now()
	resp, raw, err := r.post(url, contentType, body)
	if err != nil {
		r.fail("transversal %d/%d: %v", spec, seed, err)
		return
	}
	r.tvLat.Observe(time.Since(start))
	r.tvOps.Add(1)
	if resp.StatusCode != http.StatusOK {
		r.fail("transversal %d/%d: status %d: %s", spec, seed, resp.StatusCode, raw)
		return
	}
	var tr service.TransversalResponse
	if err := json.Unmarshal(raw, &tr); err != nil {
		r.fail("transversal %d/%d: bad JSON: %v", spec, seed, err)
		return
	}
	if tr.Cached {
		r.cached.Add(1)
	}
	if tr.Size+tr.MISSize != tr.N || tr.N != inst.h.N() {
		r.fail("transversal %d/%d: size %d + mis_size %d != n %d", spec, seed, tr.Size, tr.MISSize, tr.N)
		return
	}
	mask := make([]bool, inst.h.N())
	for _, v := range tr.Transversal {
		if v < 0 || v >= len(mask) {
			r.fail("transversal %d/%d: out-of-range vertex %d", spec, seed, v)
			return
		}
		mask[v] = true
	}
	if err := hypermis.VerifyMinimalTransversal(inst.h, mask); err != nil {
		r.fail("transversal %d/%d: invalid transversal: %v", spec, seed, err)
		return
	}
	r.checkFingerprint("transversal", spec, seed, fmt.Sprint(tr.Transversal))
}

func (r *runner) verify(spec int) {
	r.mu.Lock()
	mis, ok := r.lastMIS[spec]
	r.mu.Unlock()
	if !ok {
		// No solve of this spec has completed yet; solving counts as the
		// iteration's request instead.
		r.solve(spec, 0)
		return
	}
	ids := make([]string, len(mis))
	for i, v := range mis {
		ids[i] = strconv.Itoa(v)
	}
	inst := &r.instances[spec]
	url := r.cfg.addr + "/v1/verify?mis=" + strings.Join(ids, ",")
	start := time.Now()
	resp, raw, err := r.post(url, service.ContentTypeText, inst.text)
	if err != nil {
		r.fail("verify %d: %v", spec, err)
		return
	}
	r.verifyLat.Observe(time.Since(start))
	r.verifyOps.Add(1)
	if resp.StatusCode != http.StatusOK {
		r.fail("verify %d: status %d: %s", spec, resp.StatusCode, raw)
	}
}

func (r *runner) report(elapsed time.Duration) {
	fmt.Printf("hypermisload: mode=%s %d iterations in %v (%.1f solves+ops/s), %d errors, %d sheds retried\n",
		r.cfg.mode, r.cfg.total, elapsed.Round(time.Millisecond),
		float64(r.cfg.total)/elapsed.Seconds(), r.errs.Load(), r.sheds.Load())
	fmt.Printf("  workers=%d pool=%d seeds=%d algo=%s instance=(n=%d,m=%d)\n",
		r.cfg.workers, r.cfg.pool, r.cfg.seeds, r.cfg.algo, r.cfg.n, r.cfg.m)
	if ops := r.solveOps.Load(); r.cfg.mode != "single" && ops > 0 {
		fmt.Printf("  solves/sec: %.1f (%d solves via the %s path)\n",
			float64(ops)/elapsed.Seconds(), ops, r.cfg.mode)
	}
	printHist := func(name string, ops int64, h *service.Histogram) {
		if ops == 0 || h.Count() == 0 {
			return
		}
		ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
		fmt.Printf("  %-8s %6d ops  p50=%.2fms p90=%.2fms p99=%.2fms max=%.2fms\n",
			name, ops, ms(h.Quantile(0.5)), ms(h.Quantile(0.9)), ms(h.Quantile(0.99)), ms(h.Max()))
	}
	printHist("generate", r.genOps.Load(), &r.genLat)
	printHist("solve", r.solveOps.Load(), &r.solveLat)
	printHist("verify", r.verifyOps.Load(), &r.verifyLat)
	printHist("batch", r.batchOps.Load(), &r.batchLat) // per batch request
	printHist("job", r.jobOps.Load(), &r.jobLat)       // submit → done, polling included
	printHist("color", r.colorOps.Load(), &r.colorLat)
	printHist("transversal", r.tvOps.Load(), &r.tvLat)
	fmt.Printf("  client-observed cache hits: %d of %d solves\n",
		r.cached.Load(), r.solveOps.Load()+r.colorOps.Load()+r.tvOps.Load())

	if resp, err := r.client.Get(r.cfg.addr + "/v1/stats"); err == nil {
		var st service.Stats
		if json.NewDecoder(resp.Body).Decode(&st) == nil {
			fmt.Printf("  server: solves=%d cache_hits=%d cache_misses=%d rejected=%d errors=%d p50=%.2fms p99=%.2fms\n",
				st.Solves, st.CacheHits, st.CacheMisses, st.Rejected, st.Errors,
				st.LatencyP50Ms, st.LatencyP99Ms)
		}
		resp.Body.Close()
	}
	if r.cfg.mode == "overload" {
		ok1, ok2 := r.ovOK[0].Load(), r.ovOK[1].Load()
		shed := r.ovShed[0].Load() + r.ovShed[1].Load()
		fmt.Printf("  overload: goodput first-half=%d second-half=%d shed=%d (503/429)\n", ok1, ok2, shed)
		// The band check: a daemon with working admission keeps serving a
		// steady fraction while shedding the excess. A collapsing one
		// serves the first wave and then nothing — second-half goodput
		// falling under a quarter of the first half is that signature.
		if ok1 > 0 && ok2*4 < ok1 {
			fmt.Println("  FAIL: goodput collapsed under overload (second half < 25% of first)")
			r.errs.Add(1)
		}
		if ok1+ok2 == 0 {
			fmt.Println("  FAIL: zero goodput under overload")
			r.errs.Add(1)
		}
		if r.cfg.expectShed && shed == 0 {
			fmt.Println("  FAIL: -expectshed set but the daemon shed nothing")
			r.errs.Add(1)
		}
	}
	if r.cfg.mode == "restart" {
		ops, hits := r.solveOps.Load(), r.cached.Load()
		rate := 0.0
		if ops > 0 {
			rate = float64(hits) / float64(ops)
		}
		distinct := r.cfg.pool * r.cfg.seeds
		if distinct > r.cfg.total {
			distinct = r.cfg.total
		}
		// On a cold daemon the first pass over each key misses; every
		// further iteration hits. Against a warm (restarted, recovered)
		// daemon the expected rate is 1.
		coldExpect := float64(r.cfg.total-distinct) / float64(r.cfg.total)
		fmt.Printf("  restart: cache hit rate %.1f%% (%d/%d solves, %d distinct keys; a cold daemon would show %.1f%%, a recovered one 100%%)\n",
			100*rate, hits, ops, distinct, 100*coldExpect)
		if r.cfg.expectHit >= 0 && rate < r.cfg.expectHit {
			fmt.Printf("  FAIL: hit rate %.3f below -expecthitrate %.3f — the cache did not survive\n",
				rate, r.cfg.expectHit)
			r.errs.Add(1)
		}
	}
	for _, f := range r.failures {
		fmt.Println("  FAIL:", f)
	}
	if r.cfg.mode != "overload" && r.cached.Load() == 0 &&
		r.solveOps.Load()+r.colorOps.Load()+r.tvOps.Load() > int64(r.cfg.pool*r.cfg.seeds) {
		// More solves than distinct keys yet zero hits: the cache is not
		// doing its job. Flag it so the acceptance run catches it.
		fmt.Println("  FAIL: no cache hits despite repeated (instance, seed) pairs")
		r.errs.Add(1)
	}
}
