// Command hypermisload is a closed-loop load generator for hypermisd:
// a fixed number of workers fire a mixed generate/solve/verify workload
// at the daemon and report throughput, client-side latency quantiles
// per operation, and the server's own /v1/stats counters.
//
// Usage:
//
//	hypermisd -addr :8080 &
//	hypermisload -addr http://127.0.0.1:8080 -n 1000 -c 8
//
// The instance pool is small and seeds repeat, so repeated (instance,
// seed) solve pairs are guaranteed; the generator cross-checks that the
// daemon's answers for such pairs are identical (the determinism
// contract of hypermis.Solve) and that the advertised instance digests
// match a local reconstruction. The exit status is non-zero on any
// request error or contract violation — the end-to-end serving check.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	hypermis "repro"
	"repro/internal/hgio"
	"repro/internal/service"
)

type config struct {
	addr    string
	total   int
	workers int
	pool    int
	seeds   int
	algo    string
	n, m    int
	seed    uint64
}

type instance struct {
	text, bin []byte
	digest    string
	genQuery  string
}

type runner struct {
	cfg       config
	client    *http.Client
	instances []instance

	issued atomic.Int64 // global iteration counter (closed loop)
	errs   atomic.Int64
	cached atomic.Int64
	sheds  atomic.Int64 // 503 queue-full responses, retried with backoff

	genLat, solveLat, verifyLat service.Histogram
	genOps, solveOps, verifyOps atomic.Int64

	mu       sync.Mutex
	answers  map[string]string // (spec,seed) -> MIS fingerprint
	lastMIS  map[int][]int     // spec -> a previously served MIS
	failures []string
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "http://127.0.0.1:8080", "daemon base URL")
	flag.IntVar(&cfg.total, "n", 1000, "total requests to issue")
	flag.IntVar(&cfg.workers, "c", 8, "concurrent workers (closed loop)")
	flag.IntVar(&cfg.pool, "pool", 12, "distinct instances in the workload")
	flag.IntVar(&cfg.seeds, "seeds", 3, "distinct solve seeds per instance")
	flag.StringVar(&cfg.algo, "algo", "auto", "solve algorithm")
	flag.IntVar(&cfg.n, "size", 400, "vertices per generated instance")
	flag.IntVar(&cfg.m, "edges", 800, "edges per generated instance")
	flag.Uint64Var(&cfg.seed, "seed", 1, "base instance seed")
	flag.Parse()

	r := &runner{
		cfg:     cfg,
		client:  &http.Client{Timeout: 60 * time.Second},
		answers: make(map[string]string),
		lastMIS: make(map[int][]int),
	}
	r.buildPool()

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := r.issued.Add(1) - 1
				if i >= int64(cfg.total) {
					return
				}
				r.step(int(i))
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	r.report(elapsed)
	if r.errs.Load() > 0 || len(r.failures) > 0 {
		os.Exit(1)
	}
}

// buildPool reconstructs, locally, exactly the instances the daemon's
// /v1/generate produces for the pool's queries — same generator, same
// seeds — so digests and solve bodies need no prior network round trip.
func (r *runner) buildPool() {
	r.instances = make([]instance, r.cfg.pool)
	for i := range r.instances {
		seed := r.cfg.seed + uint64(i)
		h := hypermis.RandomMixed(seed, r.cfg.n, r.cfg.m, 2, 6)
		var text, bin bytes.Buffer
		if err := hgio.WriteText(&text, h); err != nil {
			log.Fatal(err)
		}
		if err := hgio.WriteBinary(&bin, h); err != nil {
			log.Fatal(err)
		}
		r.instances[i] = instance{
			text:   text.Bytes(),
			bin:    bin.Bytes(),
			digest: hgio.Digest(h),
			genQuery: fmt.Sprintf("kind=mixed&n=%d&m=%d&min=2&max=6&seed=%d",
				r.cfg.n, r.cfg.m, seed),
		}
	}
}

// post issues one HTTP request, honouring the daemon's backpressure: a
// 503 (queue full) is not an error but an instruction to back off and
// retry, which is what a closed-loop client does.
func (r *runner) post(url, contentType string, body []byte) (*http.Response, []byte, error) {
	for attempt := 1; ; attempt++ {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		resp, err := r.client.Post(url, contentType, rd)
		if err != nil {
			return nil, nil, err
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			r.sheds.Add(1)
			backoff := time.Duration(attempt) * 25 * time.Millisecond
			if backoff > time.Second {
				backoff = time.Second
			}
			time.Sleep(backoff)
			continue
		}
		return resp, raw, nil
	}
}

func (r *runner) fail(format string, args ...any) {
	r.errs.Add(1)
	r.mu.Lock()
	if len(r.failures) < 20 {
		r.failures = append(r.failures, fmt.Sprintf(format, args...))
	}
	r.mu.Unlock()
}

// step issues request i of the closed loop: 20% generate, 70% solve,
// 10% verify against a previously served MIS.
func (r *runner) step(i int) {
	spec := i % len(r.instances)
	switch mode := i % 10; {
	case mode < 2:
		r.generate(spec)
	case mode < 9:
		r.solve(spec, uint64(i%r.cfg.seeds))
	default:
		r.verify(spec)
	}
}

func (r *runner) generate(spec int) {
	inst := &r.instances[spec]
	start := time.Now()
	resp, body, err := r.post(r.cfg.addr+"/v1/generate?"+inst.genQuery, "", nil)
	if err != nil {
		r.fail("generate %d: %v", spec, err)
		return
	}
	r.genLat.Observe(time.Since(start))
	r.genOps.Add(1)
	if resp.StatusCode != http.StatusOK {
		r.fail("generate %d: status %d: %s", spec, resp.StatusCode, body)
		return
	}
	if d := resp.Header.Get("X-Instance-Digest"); d != inst.digest {
		r.fail("generate %d: digest %s, local reconstruction %s", spec, d, inst.digest)
	}
}

func (r *runner) solve(spec int, seed uint64) {
	inst := &r.instances[spec]
	body, contentType := inst.text, service.ContentTypeText
	if spec%2 == 1 { // exercise the binary path on half the pool
		body, contentType = inst.bin, service.ContentTypeBinary
	}
	url := fmt.Sprintf("%s/v1/solve?algo=%s&seed=%d", r.cfg.addr, r.cfg.algo, seed)
	wantTrace := spec%4 == 0 // exercise the telemetry path on part of the pool
	if wantTrace {
		url += "&trace=1"
	}
	start := time.Now()
	resp, raw, err := r.post(url, contentType, body)
	if err != nil {
		r.fail("solve %d/%d: %v", spec, seed, err)
		return
	}
	r.solveLat.Observe(time.Since(start))
	r.solveOps.Add(1)
	if resp.StatusCode != http.StatusOK {
		r.fail("solve %d/%d: status %d: %s", spec, seed, resp.StatusCode, raw)
		return
	}
	var sr service.SolveResponse
	if err := json.Unmarshal(raw, &sr); err != nil {
		r.fail("solve %d/%d: bad JSON: %v", spec, seed, err)
		return
	}
	if sr.Cached {
		r.cached.Add(1)
	}
	if wantTrace && len(sr.Trace) != sr.Rounds {
		r.fail("solve %d/%d: trace has %d records for %d rounds", spec, seed, len(sr.Trace), sr.Rounds)
	}
	fp := fmt.Sprint(sr.MIS)
	key := fmt.Sprintf("%d/%d", spec, seed)
	r.mu.Lock()
	prev, seen := r.answers[key]
	if !seen {
		r.answers[key] = fp
	}
	r.lastMIS[spec] = sr.MIS
	r.mu.Unlock()
	if seen && prev != fp {
		r.fail("solve %s: nondeterministic answer for equal (instance, seed)", key)
	}
}

func (r *runner) verify(spec int) {
	r.mu.Lock()
	mis, ok := r.lastMIS[spec]
	r.mu.Unlock()
	if !ok {
		// No solve of this spec has completed yet; solving counts as the
		// iteration's request instead.
		r.solve(spec, 0)
		return
	}
	ids := make([]string, len(mis))
	for i, v := range mis {
		ids[i] = strconv.Itoa(v)
	}
	inst := &r.instances[spec]
	url := r.cfg.addr + "/v1/verify?mis=" + strings.Join(ids, ",")
	start := time.Now()
	resp, raw, err := r.post(url, service.ContentTypeText, inst.text)
	if err != nil {
		r.fail("verify %d: %v", spec, err)
		return
	}
	r.verifyLat.Observe(time.Since(start))
	r.verifyOps.Add(1)
	if resp.StatusCode != http.StatusOK {
		r.fail("verify %d: status %d: %s", spec, resp.StatusCode, raw)
	}
}

func (r *runner) report(elapsed time.Duration) {
	fmt.Printf("hypermisload: %d requests in %v (%.1f req/s), %d errors, %d sheds retried\n",
		r.cfg.total, elapsed.Round(time.Millisecond),
		float64(r.cfg.total)/elapsed.Seconds(), r.errs.Load(), r.sheds.Load())
	fmt.Printf("  workers=%d pool=%d seeds=%d algo=%s instance=(n=%d,m=%d)\n",
		r.cfg.workers, r.cfg.pool, r.cfg.seeds, r.cfg.algo, r.cfg.n, r.cfg.m)
	printHist := func(name string, ops int64, h *service.Histogram) {
		if ops == 0 {
			return
		}
		ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
		fmt.Printf("  %-8s %6d ops  p50=%.2fms p90=%.2fms p99=%.2fms max=%.2fms\n",
			name, ops, ms(h.Quantile(0.5)), ms(h.Quantile(0.9)), ms(h.Quantile(0.99)), ms(h.Max()))
	}
	printHist("generate", r.genOps.Load(), &r.genLat)
	printHist("solve", r.solveOps.Load(), &r.solveLat)
	printHist("verify", r.verifyOps.Load(), &r.verifyLat)
	fmt.Printf("  client-observed cache hits: %d of %d solves\n", r.cached.Load(), r.solveOps.Load())

	if resp, err := r.client.Get(r.cfg.addr + "/v1/stats"); err == nil {
		var st service.Stats
		if json.NewDecoder(resp.Body).Decode(&st) == nil {
			fmt.Printf("  server: solves=%d cache_hits=%d cache_misses=%d rejected=%d errors=%d p50=%.2fms p99=%.2fms\n",
				st.Solves, st.CacheHits, st.CacheMisses, st.Rejected, st.Errors,
				st.LatencyP50Ms, st.LatencyP99Ms)
		}
		resp.Body.Close()
	}
	for _, f := range r.failures {
		fmt.Println("  FAIL:", f)
	}
	if r.cached.Load() == 0 && r.solveOps.Load() > int64(r.cfg.pool*r.cfg.seeds) {
		// More solves than distinct keys yet zero hits: the cache is not
		// doing its job. Flag it so the acceptance run catches it.
		fmt.Println("  FAIL: no cache hits despite repeated (instance, seed) pairs")
		r.errs.Add(1)
	}
}
