// Command experiments regenerates every table and figure-series of the
// reproduction (DESIGN.md §5): the paper's analytical claims turned into
// measurements.
//
// Usage:
//
//	experiments [flags] [id ...]
//
// With no ids, all experiments run in registry order (t1…t12, f1, f2).
//
// Flags:
//
//	-seed N     master seed (default 1)
//	-trials N   trials per parameter point (0 = per-experiment default)
//	-quick      shrink sweeps for a fast smoke run
//	-csv        emit CSV instead of aligned tables
//	-list       list experiment ids and exit
//	-v          progress logging to stderr
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/harness"

	_ "repro/internal/experiments" // registers all experiments
)

func main() {
	seed := flag.Uint64("seed", 1, "master seed")
	trials := flag.Int("trials", 0, "trials per parameter point (0 = default)")
	quick := flag.Bool("quick", false, "shrink sweeps for a fast run")
	csv := flag.Bool("csv", false, "emit CSV")
	list := flag.Bool("list", false, "list experiments and exit")
	verbose := flag.Bool("v", false, "progress logging to stderr")
	flag.Parse()

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	var log io.Writer
	if *verbose {
		log = os.Stderr
	}
	cfg := harness.Config{Seed: *seed, Trials: *trials, Quick: *quick, Log: log}

	var exps []harness.Experiment
	if flag.NArg() == 0 {
		exps = harness.All()
	} else {
		for _, id := range flag.Args() {
			e, ok := harness.Get(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "experiments: unknown id %q (use -list)\n", id)
				os.Exit(2)
			}
			exps = append(exps, e)
		}
	}

	for _, e := range exps {
		fmt.Printf("### %s — %s\n", e.ID, e.Title)
		fmt.Printf("    claim: %s\n\n", e.Claim)
		for _, tab := range e.Run(cfg) {
			if *csv {
				tab.RenderCSV(os.Stdout)
				fmt.Println()
			} else {
				tab.Render(os.Stdout)
			}
		}
	}
}
