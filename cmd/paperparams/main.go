// Command paperparams prints the paper's derived quantities across a
// sweep of n: the Theorem 1 parameterization (α, p, d, β, the edge
// budget n^β, the tail threshold 1/p², the round bound 2·log n/p, the
// runtime bound n^{2/log⁽³⁾n}) and the Theorem 2 feasibility facts —
// making §2.2's parameter arithmetic executable. It is the quickest way
// to see *why* the asymptotic constants degenerate at practical n
// (1/p² ≈ n) and what the measurable-regime α used by the experiments
// changes.
//
// Usage:
//
//	paperparams [-alpha 0.3] [-m 2n]
package main

import (
	"flag"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/mathx"
	"repro/internal/potential"
)

func main() {
	alpha := flag.Float64("alpha", 0.3, "measurable-regime sampling exponent for the comparison columns")
	flag.Parse()

	fmt.Println("Theorem 1 parameterization (paper constants), by n:")
	fmt.Printf("%10s %8s %10s %6s %8s %12s %12s %14s\n",
		"n", "α", "p=n^-α", "d", "β", "edges n^β", "tail 1/p²", "time n^{2/l3}")
	for _, lg := range []int{10, 12, 16, 20, 24, 32, 48, 62} {
		n := 1 << uint(lg)
		fn := float64(n)
		prm := core.PaperParams(n)
		l3 := mathx.LogLogLog2(fn)
		a := 1.0 / l3
		beta := mathx.LogLog2(fn) / (8 * l3 * l3)
		timeBound := math.Pow(fn, 2/l3)
		fmt.Printf("%10.3g %8.3f %10.4g %6d %8.4f %12.4g %12.4g %14.4g\n",
			fn, a, prm.P, prm.D, beta, core.EdgeBudget(n), float64(prm.MinVertices), timeBound)
	}

	fmt.Printf("\nMeasurable regime (α = %.2f, m = 2n): derived d keeps r·m·p^{d+1} ≤ 1/n\n", *alpha)
	fmt.Printf("%10s %10s %6s %12s %14s\n", "n", "p", "d", "tail 1/p²", "rounds 2logn/p")
	for _, lg := range []int{8, 10, 12, 14, 16, 20} {
		n := 1 << uint(lg)
		prm := core.DeriveParams(n, 2*n, *alpha)
		fmt.Printf("%10d %10.4g %6d %12d %14.4g\n",
			n, prm.P, prm.D, prm.MinVertices, core.ExpectedRounds(n, prm.P))
	}

	fmt.Println("\nTheorem 2 feasibility (paper recurrence f(+d²) vs Kelsen f(+7)), by log₂ n:")
	fmt.Printf("%12s %8s %8s %16s %16s %10s\n",
		"log n", "cap d", "d used", "Kelsen feasible", "paper feasible", "dim cond")
	for _, logN := range []float64{16, 64, 256, 4096, 65536, 1 << 24} {
		capD := potential.TheoremDBound(logN)
		d := int(capD)
		if d < 3 {
			d = 3
		}
		fmt.Printf("%12.4g %8.3f %8d %16v %16v %10v\n",
			logN, capD, d,
			potential.KelsenTable(d).Feasible(logN, d),
			potential.PaperTable(d).Feasible(logN, d),
			potential.DimensionCondition(logN, d))
	}
	fmt.Println("\nReading: at every practical n the paper's α ≈ ½ puts 1/p² near n —")
	fmt.Println("the sampling loop is skipped and SBL degenerates to its tail solver.")
	fmt.Println("The theorem's content is asymptotic; the experiments use the paper's")
	fmt.Println("granted parameter flexibility (smaller α, event-B-derived d).")
}
