// Command hypermisd is the hypermis daemon: a long-lived HTTP service
// that accepts, queues, and solves hypergraph MIS instances
// concurrently, with an LRU result cache and latency/throughput
// counters. Jobs solve on pooled solver workspaces (see the
// internal/solver runtime), and POST /v1/solve?trace=1 returns
// per-round telemetry alongside the MIS; aggregate round counters are
// in GET /v1/stats. The endpoints, formats, and cache semantics are
// documented in the internal/service package; cmd/hypermisload is the
// matching load generator.
//
// Beyond single solves, the daemon batches and detaches work: POST
// /v1/batch streams NDJSON items through the scheduler and flushes
// results as they complete, and POST /v1/jobs runs a solve as an async
// job polled via GET /v1/jobs/{id} (docs/api.md documents the wire
// formats).
//
// Usage:
//
//	hypermisd [-addr :8080] [-workers N] [-queue N] [-cache N] [-timeout 30s]
//	          [-maxpar N] [-maxbatch N] [-jobttl 5m] [-maxjobs N]
//
// Counters are also published through expvar under the key "hypermisd"
// at GET /debug/vars. SIGINT/SIGTERM shut the daemon down gracefully:
// in-flight requests finish (bounded by the per-job deadline) before
// the process exits.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "job queue depth (0 = 4×workers)")
	cache := flag.Int("cache", 0, "result cache entries (0 = 1024, negative disables)")
	cacheBytes := flag.Int64("cachebytes", 0, "result cache byte budget (0 = 256 MiB, negative disables)")
	timeout := flag.Duration("timeout", 0, "per-job deadline (0 = 30s, negative disables)")
	maxPar := flag.Int("maxpar", 0, "per-job parallelism cap (0 = GOMAXPROCS, negative pins jobs to 1 core)")
	maxBatch := flag.Int("maxbatch", 0, "items per POST /v1/batch request (0 = 1024)")
	jobTTL := flag.Duration("jobttl", 0, "retention of finished async jobs (0 = 5m)")
	maxJobs := flag.Int("maxjobs", 0, "async job store capacity (0 = 1024)")
	flag.Parse()

	srv := service.New(service.Config{
		Workers:           *workers,
		QueueDepth:        *queue,
		CacheSize:         *cache,
		CacheBytes:        *cacheBytes,
		JobTimeout:        *timeout,
		MaxJobParallelism: *maxPar,
		MaxBatchItems:     *maxBatch,
		JobTTL:            *jobTTL,
		MaxJobs:           *maxJobs,
	})
	expvar.Publish("hypermisd", expvar.Func(func() any { return srv.Stats() }))

	mux := http.NewServeMux()
	mux.Handle("/", service.NewHandler(srv))
	mux.Handle("GET /debug/vars", expvar.Handler())

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	cfg := srv.Config()
	log.Printf("hypermisd listening on %s (workers=%d queue=%d cache=%d timeout=%v)",
		*addr, cfg.Workers, cfg.QueueDepth, cfg.CacheSize, cfg.JobTimeout)

	select {
	case err := <-errCh:
		log.Fatalf("hypermisd: %v", err)
	case <-ctx.Done():
	}

	log.Print("hypermisd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "hypermisd: shutdown:", err)
	}
	srv.Close()
}
