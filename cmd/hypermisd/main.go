// Command hypermisd is the hypermis daemon: a long-lived HTTP service
// that accepts, queues, and solves hypergraph MIS instances
// concurrently, with an LRU result cache and latency/throughput
// counters. Jobs solve on pooled solver workspaces (see the
// internal/solver runtime), and POST /v1/solve?trace=1 returns
// per-round telemetry alongside the MIS; aggregate round counters are
// in GET /v1/stats. The endpoints, formats, and cache semantics are
// documented in the internal/service package; cmd/hypermisload is the
// matching load generator.
//
// Beyond single solves, the daemon batches and detaches work: POST
// /v1/batch streams NDJSON items through the scheduler and flushes
// results as they complete, and POST /v1/jobs runs a solve as an async
// job polled via GET /v1/jobs/{id} (docs/api.md documents the wire
// formats).
//
// Observability: every response carries an X-Hypermis-Trace id whose
// span breakdown is retrievable from GET /v1/debug/requests, Prometheus
// metrics are at GET /metrics, request logs are structured (log/slog),
// and -debug-addr serves net/http/pprof on a separate listener kept off
// the service port.
//
// Usage:
//
//	hypermisd [-addr :8080] [-workers N] [-queue N] [-cache N] [-timeout 30s]
//	          [-maxpar N] [-maxbatch N] [-jobttl 5m] [-maxjobs N]
//	          [-notrace] [-tracerecent N] [-traceslowest N]
//	          [-debug-addr addr] [-logjson]
//	          [-ratelimit N] [-rateburst N] [-ratelimitclients N]
//	          [-draintimeout 30s]
//	          [-cachedir DIR] [-cachedisk BYTES] [-cachefsync POLICY]
//	          [-cacheverify]
//	          [-chaos] [-chaos-errrate P] [-chaos-latency D]
//	          [-chaos-latencyrate P] [-chaos-queuefullrate P]
//	          [-chaos-diskerrrate P] [-chaos-diskshortrate P]
//	          [-chaos-diskfliprate P] [-chaos-seed N]
//
// QoS: -ratelimit grants each client (X-Hypermis-Client header, or
// remote IP) N solve-path requests/second (429 beyond the burst), and
// requests carrying ?deadline_ms= are shed with 503 + Retry-After when
// the live queue-wait estimate says the deadline cannot be met. The
// -chaos flags enable the fault-injection layer (internal/faultinject)
// for overload drills: injected solver errors, latency, forced
// queue-full rejections, and (for the durable cache) failed writes,
// torn writes and read bit-flips — deterministic under -chaos-seed.
//
// Durable cache: -cachedir enables the crash-safe disk tier
// (internal/durable) behind the memory LRU. Results persist across
// restarts and crashes; recovery tolerates torn tails and skips
// corrupt records, and -cacheverify re-proves every recovered MIS
// against its instance before it is served. -cachedisk budgets the
// on-disk bytes and -cachefsync picks the durability/latency trade
// (never, interval, always). ARCHITECTURE.md ("Durable cache &
// recovery") documents the record format and invariants.
//
// Counters are also published through expvar under the key "hypermisd"
// at GET /debug/vars. SIGINT/SIGTERM drain the daemon gracefully: the
// listener stops accepting, queued jobs fail fast with the drain
// error, and running solves get up to -draintimeout to finish before
// being force-canceled (a forced drain exits nonzero).
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/durable"
	"repro/internal/faultinject"
	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "job queue depth (0 = 4×workers)")
	cache := flag.Int("cache", 0, "result cache entries (0 = 1024, negative disables)")
	cacheBytes := flag.Int64("cachebytes", 0, "result cache byte budget (0 = 256 MiB, negative disables)")
	timeout := flag.Duration("timeout", 0, "per-job deadline (0 = 30s, negative disables)")
	maxPar := flag.Int("maxpar", 0, "per-job parallelism cap (0 = GOMAXPROCS, negative pins jobs to 1 core)")
	maxBatch := flag.Int("maxbatch", 0, "items per POST /v1/batch request (0 = 1024)")
	jobTTL := flag.Duration("jobttl", 0, "retention of finished async jobs (0 = 5m)")
	maxJobs := flag.Int("maxjobs", 0, "async job store capacity (0 = 1024)")
	noTrace := flag.Bool("notrace", false, "disable request tracing and the flight recorder")
	traceRecent := flag.Int("tracerecent", 0, "flight recorder ring size (0 = 256)")
	traceSlowest := flag.Int("traceslowest", 0, "slowest traces always retained (0 = 32)")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof on this separate address (empty disables)")
	logJSON := flag.Bool("logjson", false, "emit logs as JSON instead of text")
	rateLimit := flag.Float64("ratelimit", 0, "per-client solve-path requests/second (0 disables)")
	rateBurst := flag.Float64("rateburst", 0, "per-client burst (0 = 2×ratelimit)")
	rateClients := flag.Int("ratelimitclients", 0, "client buckets tracked by the rate limiter (0 = 4096)")
	drainTimeout := flag.Duration("draintimeout", 30*time.Second, "how long running solves may finish after SIGTERM")
	cacheDir := flag.String("cachedir", "", "durable result-cache directory (empty disables the disk tier)")
	cacheDisk := flag.Int64("cachedisk", 0, "durable cache on-disk byte budget (0 = 256 MiB)")
	cacheFsync := flag.String("cachefsync", "", "durable cache fsync policy: never, interval or always (empty = interval)")
	cacheVerify := flag.Bool("cacheverify", false, "re-verify durable-cache hits against the instance before serving")
	chaos := flag.Bool("chaos", false, "enable the fault-injection layer (with the -chaos-* rates)")
	chaosErrRate := flag.Float64("chaos-errrate", 0, "probability a solve fails with an injected error")
	chaosLatency := flag.Duration("chaos-latency", 0, "latency injected before a solve runs")
	chaosLatencyRate := flag.Float64("chaos-latencyrate", 0, "probability a solve gets the injected latency")
	chaosQueueFullRate := flag.Float64("chaos-queuefullrate", 0, "probability an enqueue is rejected as queue-full")
	chaosDiskErrRate := flag.Float64("chaos-diskerrrate", 0, "probability a durable-cache write fails outright")
	chaosDiskShortRate := flag.Float64("chaos-diskshortrate", 0, "probability a durable-cache write is torn partway")
	chaosDiskFlipRate := flag.Float64("chaos-diskfliprate", 0, "probability a durable-cache read gets one bit flipped")
	chaosSeed := flag.Uint64("chaos-seed", 1, "fault-schedule seed (equal seeds inject identical schedules)")
	flag.Parse()

	var handler slog.Handler
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	} else {
		handler = slog.NewTextHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)
	slog.SetDefault(logger)

	var injector *faultinject.Injector
	if *chaos {
		injector = faultinject.New(faultinject.Config{
			ErrorRate:          *chaosErrRate,
			Latency:            *chaosLatency,
			LatencyRate:        *chaosLatencyRate,
			QueueFullRate:      *chaosQueueFullRate,
			DiskWriteErrorRate: *chaosDiskErrRate,
			DiskShortWriteRate: *chaosDiskShortRate,
			DiskBitFlipRate:    *chaosDiskFlipRate,
			Seed:               *chaosSeed,
		})
		if injector == nil {
			logger.Warn("-chaos set but every -chaos-* rate is zero; nothing will be injected")
		}
	}

	// The durable store opens (and recovers) before the service exists
	// and closes after the drain: every record the final solves queue is
	// flushed before exit.
	var store *durable.Store
	if *cacheDir != "" {
		var err error
		store, err = durable.Open(durable.Config{
			Dir:      *cacheDir,
			MaxBytes: *cacheDisk,
			Fsync:    *cacheFsync,
			Faults:   injector,
		})
		if err != nil {
			logger.Error("durable cache", slog.Any("err", err))
			os.Exit(1)
		}
		dc := store.Counters()
		logger.Info("durable cache recovered",
			slog.String("dir", *cacheDir),
			slog.Int64("records", dc.Recovered),
			slog.Int64("corrupt_skipped", dc.CorruptSkipped),
			slog.Int("segments", dc.Segments),
			slog.Int64("bytes", dc.Bytes),
		)
	}

	srv := service.New(service.Config{
		Workers:           *workers,
		QueueDepth:        *queue,
		CacheSize:         *cache,
		CacheBytes:        *cacheBytes,
		JobTimeout:        *timeout,
		MaxJobParallelism: *maxPar,
		MaxBatchItems:     *maxBatch,
		JobTTL:            *jobTTL,
		MaxJobs:           *maxJobs,
		DisableTracing:    *noTrace,
		TraceRecent:       *traceRecent,
		TraceSlowest:      *traceSlowest,
		Logger:            logger,
		RateLimit:         *rateLimit,
		RateBurst:         *rateBurst,
		RateLimitClients:  *rateClients,
		Chaos:             injector,
		Durable:           store,
		DurableVerify:     *cacheVerify,
	})
	expvar.Publish("hypermisd", expvar.Func(func() any { return srv.Stats() }))

	mux := http.NewServeMux()
	mux.Handle("/", service.NewHandler(srv))
	mux.Handle("GET /debug/vars", expvar.Handler())

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	if *debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dbgSrv := &http.Server{Addr: *debugAddr, Handler: dmux, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			logger.Info("pprof listening", slog.String("addr", *debugAddr))
			if err := dbgSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("pprof server", slog.Any("err", err))
			}
		}()
		defer dbgSrv.Close()
	}

	// Log the *effective* configuration — what the service resolved the
	// zero-value flags to — not the raw flag values.
	cfg := srv.Config()
	logger.Info("hypermisd listening",
		slog.String("addr", *addr),
		slog.Int("workers", cfg.Workers),
		slog.Int("queue", cfg.QueueDepth),
		slog.Int("cache", cfg.CacheSize),
		slog.Int64("cache_bytes", cfg.CacheBytes),
		slog.Duration("timeout", cfg.JobTimeout),
		slog.Int("maxpar", cfg.MaxJobParallelism),
		slog.Int("maxbatch", cfg.MaxBatchItems),
		slog.Duration("jobttl", cfg.JobTTL),
		slog.Int("maxjobs", cfg.MaxJobs),
		slog.Bool("tracing", !cfg.DisableTracing),
		slog.Int("trace_recent", cfg.TraceRecent),
		slog.Int("trace_slowest", cfg.TraceSlowest),
		slog.Float64("ratelimit", cfg.RateLimit),
		slog.Bool("chaos", cfg.Chaos != nil),
		slog.String("cachedir", *cacheDir),
		slog.Bool("cacheverify", cfg.DurableVerify),
	)

	select {
	case err := <-errCh:
		logger.Error("hypermisd", slog.Any("err", err))
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful drain, in dependency order: stop accepting connections
	// (in-flight HTTP requests keep going), then drain the scheduler —
	// queued jobs fail fast with the drain error so their connections
	// unwind, running solves get up to -draintimeout — and only then
	// tear the HTTP server's in-flight requests down. A forced drain
	// (solves still running at the deadline) exits nonzero so
	// supervisors can tell a clean stop from a truncated one.
	logger.Info("hypermisd draining", slog.Duration("timeout", *drainTimeout))
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout+5*time.Second)
	defer cancel()
	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- httpSrv.Shutdown(shutdownCtx) }()
	drainErr := srv.Drain(*drainTimeout)
	if err := <-shutdownDone; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("hypermisd shutdown", slog.Any("err", err))
	}
	// The scheduler is quiet now: flush the durable write-behind queue
	// and release the store so the last solves of this life are hits in
	// the next one.
	if err := store.Close(); err != nil {
		logger.Error("durable cache close", slog.Any("err", err))
	}
	if drainErr != nil {
		logger.Error("hypermisd drain", slog.Any("err", drainErr))
		os.Exit(1)
	}
	logger.Info("hypermisd stopped cleanly")
}
