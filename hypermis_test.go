package hypermis

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestSolveQuickstart(t *testing.T) {
	h, err := NewBuilder(6).AddEdge(0, 1, 2).AddEdge(2, 3, 4).Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(h, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyMIS(h, res.MIS); err != nil {
		t.Fatal(err)
	}
	if res.Size == 0 {
		t.Fatal("empty MIS")
	}
}

func TestSolveAllAlgorithmsOnGraph(t *testing.T) {
	h := RandomGraph(3, 200, 500)
	for _, algo := range []Algorithm{AlgAuto, AlgSBL, AlgBL, AlgKUW, AlgLuby, AlgGreedy} {
		res, err := Solve(h, Options{Algorithm: algo, Seed: 5})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if err := VerifyMIS(h, res.MIS); err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
	}
}

func TestSolveAllAlgorithmsOnHypergraph(t *testing.T) {
	h := RandomMixed(4, 150, 250, 2, 5)
	for _, algo := range []Algorithm{AlgAuto, AlgSBL, AlgBL, AlgKUW, AlgGreedy} {
		res, err := Solve(h, Options{Algorithm: algo, Seed: 6})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if err := VerifyMIS(h, res.MIS); err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
	}
}

func TestSolveLubyRejectsHypergraph(t *testing.T) {
	h := RandomUniform(1, 30, 40, 3)
	if _, err := Solve(h, Options{Algorithm: AlgLuby}); !errors.Is(err, ErrDimension) {
		t.Fatalf("got %v, want ErrDimension", err)
	}
}

func TestSolveAutoSelection(t *testing.T) {
	g := RandomGraph(7, 50, 80)
	res, err := Solve(g, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != AlgLuby {
		t.Fatalf("auto picked %v for a graph", res.Algorithm)
	}
	h3 := RandomUniform(8, 50, 80, 3)
	res, err = Solve(h3, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != AlgBL {
		t.Fatalf("auto picked %v for d=3", res.Algorithm)
	}
	hBig := RandomMixed(9, 100, 100, 2, 12)
	res, err = Solve(hBig, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != AlgSBL {
		t.Fatalf("auto picked %v for d=12", res.Algorithm)
	}
}

func TestSolveDeterministic(t *testing.T) {
	h := RandomMixed(10, 120, 200, 2, 6)
	a, err := Solve(h, Options{Algorithm: AlgSBL, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(h, Options{Algorithm: AlgSBL, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.MIS {
		if a.MIS[i] != b.MIS[i] {
			t.Fatal("same seed, different MIS")
		}
	}
}

func TestSolveCollectCost(t *testing.T) {
	h := RandomUniform(11, 100, 150, 3)
	res, err := Solve(h, Options{Algorithm: AlgBL, Seed: 1, CollectCost: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Depth <= 0 || res.Work < res.Depth {
		t.Fatalf("cost: depth=%d work=%d", res.Depth, res.Work)
	}
	// Without CollectCost the fields stay zero.
	res2, err := Solve(h, Options{Algorithm: AlgBL, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Depth != 0 || res2.Work != 0 {
		t.Fatal("cost collected without CollectCost")
	}
}

func TestSolveGreedyTail(t *testing.T) {
	h := RandomMixed(12, 200, 250, 2, 10)
	res, err := Solve(h, Options{Algorithm: AlgSBL, Seed: 2, UseGreedyTail: true, Alpha: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyMIS(h, res.MIS); err != nil {
		t.Fatal(err)
	}
}

func TestParseAlgorithmRoundTrip(t *testing.T) {
	for _, a := range []Algorithm{AlgAuto, AlgSBL, AlgBL, AlgKUW, AlgLuby, AlgGreedy} {
		got, err := ParseAlgorithm(a.String())
		if err != nil {
			t.Fatal(err)
		}
		if got != a {
			t.Fatalf("round trip %v -> %v", a, got)
		}
	}
	if _, err := ParseAlgorithm("nonsense"); err == nil {
		t.Fatal("bad name accepted")
	}
	if a, err := ParseAlgorithm(""); err != nil || a != AlgAuto {
		t.Fatal("empty name should be auto")
	}
}

func TestMaskHelpers(t *testing.T) {
	mask := MaskFromList(5, []V{1, 3})
	if !mask[1] || !mask[3] || mask[0] {
		t.Fatal("MaskFromList broken")
	}
	vs := ListFromMask(mask)
	if len(vs) != 2 || vs[0] != 1 || vs[1] != 3 {
		t.Fatal("ListFromMask broken")
	}
}

func TestGeneratorsViaFacade(t *testing.T) {
	if h := Linear(1, 100, 20, 3); h.M() == 0 {
		t.Fatal("Linear produced nothing")
	}
	if h := Sunflower(2, 50, 2, 3, 5); h.M() != 5 {
		t.Fatal("Sunflower wrong count")
	}
	h := PlantedMIS(3, 60, 100, 3, 20)
	mask := make([]bool, 60)
	for i := 0; i < 20; i++ {
		mask[i] = true
	}
	if !IsIndependent(h, mask) {
		t.Fatal("planted set dependent")
	}
	if h := BlockPartition(4, 100, 10, 3, 3); h.M() == 0 {
		t.Fatal("BlockPartition produced nothing")
	}
}

// Property: Solve with every algorithm yields a verified MIS across
// random small instances.
func TestSolvePropertyAllValid(t *testing.T) {
	check := func(seed uint16, algoPick uint8) bool {
		algos := []Algorithm{AlgSBL, AlgBL, AlgKUW, AlgGreedy}
		algo := algos[int(algoPick)%len(algos)]
		h := RandomMixed(uint64(seed)+500, 40, 60, 2, 4)
		res, err := Solve(h, Options{Algorithm: algo, Seed: uint64(seed)})
		if err != nil {
			return false
		}
		return VerifyMIS(h, res.MIS) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSolvePermBL(t *testing.T) {
	h := RandomMixed(21, 150, 250, 2, 5)
	res, err := Solve(h, Options{Algorithm: AlgPermBL, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyMIS(h, res.MIS); err != nil {
		t.Fatal(err)
	}
	if res.Rounds <= 0 {
		t.Fatal("permbl should report its dependency depth")
	}
	// permbl output is exactly greedy on a random order — sizes should
	// be reasonable (nonzero, below n).
	if res.Size == 0 || res.Size >= h.N() {
		t.Fatalf("size = %d", res.Size)
	}
}

func TestMinimalTransversalFacade(t *testing.T) {
	h := RandomMixed(22, 100, 200, 2, 5)
	tr, err := MinimalTransversal(h, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !IsTransversal(h, tr) {
		t.Fatal("not a transversal")
	}
	if err := VerifyMinimalTransversal(h, tr); err != nil {
		t.Fatal(err)
	}
}

func TestFromEdges(t *testing.T) {
	h, err := FromEdges(4, []Edge{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if h.M() != 2 {
		t.Fatalf("m = %d", h.M())
	}
	if _, err := FromEdges(2, []Edge{{}}); err == nil {
		t.Fatal("empty edge accepted")
	}
}

func TestColorByMIS(t *testing.T) {
	h := RandomMixed(33, 200, 400, 2, 5)
	col, err := ColorByMIS(h, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyColoring(h, col); err != nil {
		t.Fatal(err)
	}
	if col.NumColors < 2 {
		t.Fatalf("suspiciously few colors: %d", col.NumColors)
	}
	total := 0
	for _, sz := range col.ClassSizes {
		total += sz
	}
	if total != h.N() {
		t.Fatalf("classes cover %d of %d", total, h.N())
	}
}

func TestColorByMISAllSolvers(t *testing.T) {
	h := RandomUniform(34, 120, 240, 3)
	for _, algo := range []Algorithm{AlgSBL, AlgBL, AlgKUW, AlgGreedy, AlgPermBL} {
		col, err := ColorByMIS(h, Options{Algorithm: algo, Seed: 6, Alpha: 0.3})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if err := VerifyColoring(h, col); err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
	}
}

func TestSteinerFacade(t *testing.T) {
	h, err := SteinerTripleSystem(15)
	if err != nil {
		t.Fatal(err)
	}
	if h.M() != 35 { // 15·14/6
		t.Fatalf("STS(15) has %d triples, want 35", h.M())
	}
	res, err := Solve(h, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyMIS(h, res.MIS); err != nil {
		t.Fatal(err)
	}
	if _, err := SteinerTripleSystem(10); err == nil {
		t.Fatal("STS(10) should be rejected")
	}
}
