package hypermis

import (
	"repro/internal/coloring"
	"repro/internal/hypergraph"
)

// Coloring is a proper hypergraph coloring: no edge (of size ≥ 2)
// monochromatic.
type Coloring = coloring.Result

// ColorByMIS colors h by repeated MIS extraction ("MIS peeling") using
// the solver selected in opts: color class c is a maximal independent
// set of the sub-hypergraph induced by the vertices still uncolored
// after classes 0…c−1. Each class is solved with Seed = opts.Seed + c.
// The result is a proper coloring; the number of classes is the
// peeling number of the instance under the chosen solver.
func ColorByMIS(h *Hypergraph, opts Options) (*Coloring, error) {
	solver := func(sub *hypergraph.Hypergraph, active []bool, round int) ([]bool, error) {
		// The peeling loop hands us the induced sub-hypergraph (its
		// edges lie inside the active set). Solving the whole universe
		// is correct: inactive vertices are edge-free there, and the
		// peeling loop intersects the returned mask with the active set;
		// maximality witnesses live inside the active set because every
		// edge does.
		o := opts
		o.Seed = opts.Seed + uint64(round)
		res, err := Solve(sub, o)
		if err != nil {
			return nil, err
		}
		return res.MIS, nil
	}
	return coloring.ByMIS(h, solver, 0)
}

// VerifyColoring checks completeness and properness of a coloring of h.
func VerifyColoring(h *Hypergraph, c *Coloring) error {
	return coloring.Verify(h, c)
}
