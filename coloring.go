package hypermis

import (
	"context"

	"repro/internal/coloring"
	"repro/internal/hypergraph"
)

// Coloring is a proper hypergraph coloring: no edge (of size ≥ 2)
// monochromatic.
type Coloring = coloring.Result

// ColorClass is one peeled color class's telemetry: the class size, the
// residual instance shape (uncolored vertices and the edges still alive
// among them) the class's MIS solve saw, the solver rounds it spent, and
// — when Options.Trace is set — its per-round trace. The JSON tags make
// the type directly servable (the hypermisd /v1/color response embeds
// it).
type ColorClass struct {
	// Size is the number of vertices assigned this class's color.
	Size int `json:"size"`
	// N and M are the residual instance shape entering the class: the
	// uncolored vertex count and the count of edges whose vertices were
	// all still uncolored.
	N int `json:"n"`
	M int `json:"m"`
	// Rounds is the class solve's outer round count.
	Rounds int `json:"rounds"`
	// Trace is the class solve's per-round telemetry (Options.Trace
	// only).
	Trace []RoundTrace `json:"trace,omitempty"`
}

// ColorResult is the result of ColorByMISCtx: the coloring itself plus
// the peeling pipeline's telemetry. Colors, NumColors and ClassSizes
// mirror Coloring; Classes records the per-class solves in peel order.
type ColorResult struct {
	// Colors[v] is the color of vertex v, in [0, NumColors).
	Colors []int
	// NumColors is the number of color classes used.
	NumColors int
	// ClassSizes[c] is the size of color class c.
	ClassSizes []int
	// Algorithm that solved every class (resolves AlgAuto against the
	// original instance — see ColorByMISCtx).
	Algorithm Algorithm
	// Rounds is the total outer solver rounds summed across classes.
	Rounds int
	// Classes holds one telemetry record per color class, in peel order.
	Classes []ColorClass
}

// Coloring returns the result as the plain Coloring the verifier takes.
func (r *ColorResult) Coloring() *Coloring {
	return &Coloring{Colors: r.Colors, NumColors: r.NumColors, ClassSizes: r.ClassSizes}
}

// ColorByMIS colors h by repeated MIS extraction ("MIS peeling") using
// the solver selected in opts: color class c is a maximal independent
// set of the sub-hypergraph induced by the vertices still uncolored
// after classes 0…c−1. Each class is solved with Seed = opts.Seed + c.
// The result is a proper coloring; the number of classes is the
// peeling number of the instance under the chosen solver.
func ColorByMIS(h *Hypergraph, opts Options) (*Coloring, error) {
	res, err := ColorByMISCtx(context.Background(), h, opts)
	if err != nil {
		return nil, err
	}
	return res.Coloring(), nil
}

// ColorByMISCtx is ColorByMIS with cooperative cancellation and the
// full peeling telemetry: the whole multi-class pipeline runs under ctx
// (each class solve checks it per round — see SolveCtx), and the result
// carries per-class residual shapes, round counts and optional traces.
//
// AlgAuto is resolved once against h and pinned for every class, rather
// than re-resolved per residual: edges only disappear as classes peel,
// so the pinned algorithm stays within its dimension class, and pinning
// keeps an "auto" request bit-identical to the equivalent explicit
// request — the equivalence the service cache key canonicalizes on.
// Like Solve, the output is bit-identical at any Options.Parallelism.
func ColorByMISCtx(ctx context.Context, h *Hypergraph, opts Options) (*ColorResult, error) {
	opts.Algorithm = ResolveAlgorithm(h, opts.Algorithm)
	out := &ColorResult{Algorithm: opts.Algorithm}
	solve := func(sub *hypergraph.Hypergraph, active []bool, round int) ([]bool, error) {
		// The peeling loop hands us the induced sub-hypergraph (its
		// edges lie inside the active set). Solving the whole universe
		// is correct: inactive vertices are edge-free there, and the
		// peeling loop intersects the returned mask with the active set;
		// maximality witnesses live inside the active set because every
		// edge does.
		o := opts
		o.Seed = opts.Seed + uint64(round)
		res, err := SolveCtx(ctx, sub, o)
		if err != nil {
			return nil, err
		}
		n := 0
		for _, a := range active {
			if a {
				n++
			}
		}
		out.Rounds += res.Rounds
		out.Classes = append(out.Classes, ColorClass{
			N: n, M: sub.M(), Rounds: res.Rounds, Trace: res.Trace,
		})
		return res.MIS, nil
	}
	c, err := coloring.ByMIS(h, solve, 0)
	if err != nil {
		return nil, err
	}
	out.Colors = c.Colors
	out.NumColors = c.NumColors
	out.ClassSizes = c.ClassSizes
	for i := range out.Classes {
		out.Classes[i].Size = c.ClassSizes[i]
	}
	return out, nil
}

// VerifyColoring checks completeness and properness of a coloring of h.
func VerifyColoring(h *Hypergraph, c *Coloring) error {
	return coloring.Verify(h, c)
}
