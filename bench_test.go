// Root benchmark harness: one testing.B benchmark per experiment in
// DESIGN.md §5 (tables T1–T12 and figure series F1–F2). Each benchmark
// drives the same registered experiment the cmd/experiments binary runs
// — in quick mode with one trial, so `go test -bench=.` regenerates a
// smoke version of every table and reports its wall-clock cost. Full
// tables: `go run ./cmd/experiments`.
//
// Additional micro-benchmarks at the bottom measure the solvers
// directly (ns/op per full solve) for the throughput-focused reader.
package hypermis

import (
	"io"
	"testing"

	"repro/internal/harness"

	_ "repro/internal/experiments"
)

// benchExperiment runs the registered experiment once per b.N iteration
// and sanity-checks that it yields rows.
func benchExperiment(b *testing.B, id string) {
	e, ok := harness.Get(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	cfg := harness.Config{Seed: 1, Trials: 1, Quick: true, Log: nil}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables := e.Run(cfg)
		rows := 0
		for _, t := range tables {
			rows += len(t.Rows)
		}
		if rows == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

func BenchmarkT1_SBLDepthScaling(b *testing.B)       { benchExperiment(b, "t1") }
func BenchmarkT2_SBLRounds(b *testing.B)             { benchExperiment(b, "t2") }
func BenchmarkT3_SampledDimension(b *testing.B)      { benchExperiment(b, "t3") }
func BenchmarkT4_BLStages(b *testing.B)              { benchExperiment(b, "t4") }
func BenchmarkT5_SurvivalProbability(b *testing.B)   { benchExperiment(b, "t5") }
func BenchmarkT6_DegreeCollapse(b *testing.B)        { benchExperiment(b, "t6") }
func BenchmarkT7_PotentialTrajectory(b *testing.B)   { benchExperiment(b, "t7") }
func BenchmarkT8_RecurrenceFeasibility(b *testing.B) { benchExperiment(b, "t8") }
func BenchmarkT9_ConcentrationTails(b *testing.B)    { benchExperiment(b, "t9") }
func BenchmarkT10_FailureRate(b *testing.B)          { benchExperiment(b, "t10") }
func BenchmarkT11_WorkBounds(b *testing.B)           { benchExperiment(b, "t11") }
func BenchmarkT12_SpecialClasses(b *testing.B)       { benchExperiment(b, "t12") }
func BenchmarkT13_PermDependencyDepth(b *testing.B)  { benchExperiment(b, "t13") }
func BenchmarkT14_Ablations(b *testing.B)            { benchExperiment(b, "t14") }
func BenchmarkT15_EREWMachineAudit(b *testing.B)     { benchExperiment(b, "t15") }
func BenchmarkF1_DepthCrossover(b *testing.B)        { benchExperiment(b, "f1") }
func BenchmarkF2_EdgeMigration(b *testing.B)         { benchExperiment(b, "f2") }

// --- solver micro-benchmarks ---

func benchSolve(b *testing.B, algo Algorithm, h *Hypergraph) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Solve(h, Options{Algorithm: algo, Seed: uint64(i), Alpha: 0.3})
		if err != nil {
			b.Fatal(err)
		}
		if res.Size == 0 && h.N() > 0 {
			b.Fatal("empty MIS")
		}
	}
}

func BenchmarkSolveSBL_n1000(b *testing.B) {
	benchSolve(b, AlgSBL, RandomMixed(1, 1000, 2000, 2, 12))
}

func BenchmarkSolveBL_n1000_d3(b *testing.B) {
	benchSolve(b, AlgBL, RandomUniform(2, 1000, 2000, 3))
}

func BenchmarkSolveKUW_n1000(b *testing.B) {
	benchSolve(b, AlgKUW, RandomMixed(3, 1000, 2000, 2, 12))
}

func BenchmarkSolveLuby_n1000(b *testing.B) {
	benchSolve(b, AlgLuby, RandomGraph(4, 1000, 3000))
}

func BenchmarkSolveGreedy_n1000(b *testing.B) {
	benchSolve(b, AlgGreedy, RandomMixed(5, 1000, 2000, 2, 12))
}

func BenchmarkVerifyMIS_n10000(b *testing.B) {
	h := RandomMixed(6, 10000, 20000, 2, 6)
	res, err := Solve(h, Options{Algorithm: AlgGreedy})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := VerifyMIS(h, res.MIS); err != nil {
			b.Fatal(err)
		}
	}
}

var _ io.Writer // reserved for future bench log plumbing
