// Root benchmark harness: one testing.B benchmark per experiment in
// DESIGN.md §5 (tables T1–T12 and figure series F1–F2). Each benchmark
// drives the same registered experiment the cmd/experiments binary runs
// — in quick mode with one trial, so `go test -bench=.` regenerates a
// smoke version of every table and reports its wall-clock cost. Full
// tables: `go run ./cmd/experiments`.
//
// Additional micro-benchmarks at the bottom measure the solvers
// directly (ns/op and allocs/op per full solve) for the
// throughput-focused reader. Their workloads are declared once in
// internal/benchdefs, shared with cmd/benchjson so the tracked
// BENCH_solvers.json measures the same corpus.
package hypermis_test

import (
	"testing"

	"repro/internal/benchdefs"
	"repro/internal/harness"

	_ "repro/internal/experiments"
)

// benchExperiment runs the registered experiment once per b.N iteration
// and sanity-checks that it yields rows.
func benchExperiment(b *testing.B, id string) {
	e, ok := harness.Get(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	cfg := harness.Config{Seed: 1, Trials: 1, Quick: true, Log: nil}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables := e.Run(cfg)
		rows := 0
		for _, t := range tables {
			rows += len(t.Rows)
		}
		if rows == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

func BenchmarkT1_SBLDepthScaling(b *testing.B)       { benchExperiment(b, "t1") }
func BenchmarkT2_SBLRounds(b *testing.B)             { benchExperiment(b, "t2") }
func BenchmarkT3_SampledDimension(b *testing.B)      { benchExperiment(b, "t3") }
func BenchmarkT4_BLStages(b *testing.B)              { benchExperiment(b, "t4") }
func BenchmarkT5_SurvivalProbability(b *testing.B)   { benchExperiment(b, "t5") }
func BenchmarkT6_DegreeCollapse(b *testing.B)        { benchExperiment(b, "t6") }
func BenchmarkT7_PotentialTrajectory(b *testing.B)   { benchExperiment(b, "t7") }
func BenchmarkT8_RecurrenceFeasibility(b *testing.B) { benchExperiment(b, "t8") }
func BenchmarkT9_ConcentrationTails(b *testing.B)    { benchExperiment(b, "t9") }
func BenchmarkT10_FailureRate(b *testing.B)          { benchExperiment(b, "t10") }
func BenchmarkT11_WorkBounds(b *testing.B)           { benchExperiment(b, "t11") }
func BenchmarkT12_SpecialClasses(b *testing.B)       { benchExperiment(b, "t12") }
func BenchmarkT13_PermDependencyDepth(b *testing.B)  { benchExperiment(b, "t13") }
func BenchmarkT14_Ablations(b *testing.B)            { benchExperiment(b, "t14") }
func BenchmarkT15_EREWMachineAudit(b *testing.B)     { benchExperiment(b, "t15") }
func BenchmarkF1_DepthCrossover(b *testing.B)        { benchExperiment(b, "f1") }
func BenchmarkF2_EdgeMigration(b *testing.B)         { benchExperiment(b, "f2") }

// --- solver micro-benchmarks ---

// benchSolve runs the named benchdefs case through the shared body.
func benchSolve(b *testing.B, name string) {
	c, ok := benchdefs.Find(name)
	if !ok {
		b.Fatalf("benchdefs case %s not declared", name)
	}
	benchdefs.RunCase(b, c)
}

func BenchmarkSolveSBL_n1000(b *testing.B)    { benchSolve(b, "SolveSBL_n1000") }
func BenchmarkSolveBL_n1000_d3(b *testing.B)  { benchSolve(b, "SolveBL_n1000_d3") }
func BenchmarkSolveKUW_n1000(b *testing.B)    { benchSolve(b, "SolveKUW_n1000") }
func BenchmarkSolveLuby_n1000(b *testing.B)   { benchSolve(b, "SolveLuby_n1000") }
func BenchmarkSolveGreedy_n1000(b *testing.B) { benchSolve(b, "SolveGreedy_n1000") }

// Pooled-workspace variants: the same workloads through one reused
// hypermis.Workspace, i.e. the steady state of a pooled service job.
// Comparing the *_ws allocs/op against the fresh-buffer benchmarks
// above measures what the solver-runtime workspace saves per solve.
func benchSolveWs(b *testing.B, name string) {
	c, ok := benchdefs.Find(name)
	if !ok {
		b.Fatalf("benchdefs case %s not declared", name)
	}
	benchdefs.RunCaseWs(b, c)
}

func BenchmarkSolveSBL_n1000_ws(b *testing.B)    { benchSolveWs(b, "SolveSBL_n1000") }
func BenchmarkSolveBL_n1000_d3_ws(b *testing.B)  { benchSolveWs(b, "SolveBL_n1000_d3") }
func BenchmarkSolveKUW_n1000_ws(b *testing.B)    { benchSolveWs(b, "SolveKUW_n1000") }
func BenchmarkSolveLuby_n1000_ws(b *testing.B)   { benchSolveWs(b, "SolveLuby_n1000") }
func BenchmarkSolveGreedy_n1000_ws(b *testing.B) { benchSolveWs(b, "SolveGreedy_n1000") }

// Service-level benchmark: one uncached solve job end to end (queue,
// parallelism grant, pooled workspace, round observer, no cache).
func benchServiceSolve(b *testing.B, name string) {
	c, ok := benchdefs.Find(name)
	if !ok {
		b.Fatalf("benchdefs case %s not declared", name)
	}
	benchdefs.RunServiceSolve(b, c)
}

func BenchmarkServiceSolveSBL_n1000(b *testing.B)    { benchServiceSolve(b, "SolveSBL_n1000") }
func BenchmarkServiceSolveBL_n1000_d3(b *testing.B)  { benchServiceSolve(b, "SolveBL_n1000_d3") }
func BenchmarkServiceSolveKUW_n1000(b *testing.B)    { benchServiceSolve(b, "SolveKUW_n1000") }
func BenchmarkServiceSolveLuby_n1000(b *testing.B)   { benchServiceSolve(b, "SolveLuby_n1000") }
func BenchmarkServiceSolveGreedy_n1000(b *testing.B) { benchServiceSolve(b, "SolveGreedy_n1000") }

// HTTP-path benchmarks: the same uncached solve through the full
// daemon round trip, one request per solve (Single) versus NDJSON
// /v1/batch requests of benchdefs.HTTPBatchSize items (Batch32).
// ns/op is per solve in both, so the delta is the per-request overhead
// batching amortizes.
func benchServiceHTTP(b *testing.B, name string, batch bool) {
	c, ok := benchdefs.Find(name)
	if !ok {
		b.Fatalf("benchdefs case %s not declared", name)
	}
	if batch {
		benchdefs.RunServiceHTTPBatch(b, c)
	} else {
		benchdefs.RunServiceHTTPSolve(b, c)
	}
}

// NoTrace twins run the same bodies with tracing and the flight
// recorder disabled; paired with the traced rows they bound the
// observability overhead per request/item.
func benchServiceHTTPNoTrace(b *testing.B, name string, batch bool) {
	c, ok := benchdefs.Find(name)
	if !ok {
		b.Fatalf("benchdefs case %s not declared", name)
	}
	if batch {
		benchdefs.RunServiceHTTPBatchNoTrace(b, c)
	} else {
		benchdefs.RunServiceHTTPSolveNoTrace(b, c)
	}
}

func BenchmarkServiceHTTPSingle_Luby_n1000(b *testing.B) {
	benchServiceHTTP(b, "SolveLuby_n1000", false)
}
func BenchmarkServiceHTTPBatch32_Luby_n1000(b *testing.B) {
	benchServiceHTTP(b, "SolveLuby_n1000", true)
}
func BenchmarkServiceHTTPSingle_SBL_n1000(b *testing.B)  { benchServiceHTTP(b, "SolveSBL_n1000", false) }
func BenchmarkServiceHTTPBatch32_SBL_n1000(b *testing.B) { benchServiceHTTP(b, "SolveSBL_n1000", true) }

// Workload-endpoint rows: the same daemon round trip through POST
// /v1/color (the whole peeling pipeline as one scheduled job) and POST
// /v1/transversal (one solve plus the verified complement). ns/op is
// per coloring / per transversal.
func BenchmarkServiceHTTPColor_Luby_n1000(b *testing.B) {
	c, ok := benchdefs.Find("SolveLuby_n1000")
	if !ok {
		b.Fatal("benchdefs case SolveLuby_n1000 not declared")
	}
	benchdefs.RunServiceHTTPColor(b, c)
}
func BenchmarkServiceHTTPTransversal_Luby_n1000(b *testing.B) {
	c, ok := benchdefs.Find("SolveLuby_n1000")
	if !ok {
		b.Fatal("benchdefs case SolveLuby_n1000 not declared")
	}
	benchdefs.RunServiceHTTPTransversal(b, c)
}

func BenchmarkServiceHTTPSingleNoTrace_Luby_n1000(b *testing.B) {
	benchServiceHTTPNoTrace(b, "SolveLuby_n1000", false)
}
func BenchmarkServiceHTTPBatch32NoTrace_Luby_n1000(b *testing.B) {
	benchServiceHTTPNoTrace(b, "SolveLuby_n1000", true)
}
func BenchmarkServiceHTTPSingleNoTrace_SBL_n1000(b *testing.B) {
	benchServiceHTTPNoTrace(b, "SolveSBL_n1000", false)
}
func BenchmarkServiceHTTPBatch32NoTrace_SBL_n1000(b *testing.B) {
	benchServiceHTTPNoTrace(b, "SolveSBL_n1000", true)
}

// Scale benchmarks: n=50k vertices, m=100k edges. At this size the CSR
// edge scans cross the sharding threshold, so these exercise the
// worker-pool paths the n=1000 instances run serially.
func BenchmarkSolveSBL_n50000(b *testing.B)    { benchSolve(b, "SolveSBL_n50000") }
func BenchmarkSolveGreedy_n50000(b *testing.B) { benchSolve(b, "SolveGreedy_n50000") }
func BenchmarkSolveLuby_n50000(b *testing.B)   { benchSolve(b, "SolveLuby_n50000") }

func BenchmarkVerifyMIS_n10000(b *testing.B) { benchdefs.RunVerify(b) }
