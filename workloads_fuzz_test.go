package hypermis

import (
	"testing"
)

// Differential fuzzing for the workload verifiers. VerifyColoring and
// VerifyMinimalTransversal are the trust anchors of the color and
// transversal endpoints (the durable tier re-proves recovered answers
// with them, the CLIs refuse to print anything they reject), so they
// must digest adversarial class vectors and masks — wrong lengths,
// out-of-range values, redundant members — without panicking, and their
// accept/reject decision must match an independent naive reimplementation
// of the definitions.

// fuzzHypergraph decodes an instance from fuzz bytes: n in [1,32], then
// edges of 2–3 vertices consumed from data (values mod n, so always in
// range; duplicate vertices inside an edge are canonicalized away by
// the builder, which can shrink edges to singletons — a case the
// verifiers must handle, since parsers accept it too).
func fuzzHypergraph(nByte uint8, data []byte) *Hypergraph {
	n := int(nByte%32) + 1
	b := NewBuilder(n)
	for i := 0; i+2 < len(data); i += 3 {
		e := Edge{V(int(data[i]) % n), V(int(data[i+1]) % n)}
		if data[i+2]&1 == 0 {
			e = append(e, V(int(data[i+2]>>1)%n))
		}
		b.AddEdgeSlice(e)
	}
	h, err := b.Build()
	if err != nil {
		// Unreachable by construction (no empty edges, all in range) —
		// treat defensively as the empty instance.
		h, _ = FromEdges(n, nil)
	}
	return h
}

// FuzzVerifyColoring: no panic on any (instance, class vector,
// NumColors) triple, and err == nil exactly when the definition holds —
// full length, colors in [0, NumColors), no monochromatic edge of size
// ≥ 2.
func FuzzVerifyColoring(f *testing.F) {
	f.Add(uint8(3), []byte{0, 1, 2}, []byte{0, 1, 0, 1}, 2)
	f.Add(uint8(7), []byte{0, 1, 5, 2, 3, 4}, []byte{0, 0, 0, 0, 0, 0, 0, 0}, 1)
	f.Add(uint8(15), []byte{}, []byte{}, 0)
	f.Add(uint8(200), []byte{9, 9, 9, 1, 2, 2}, []byte{255, 128, 7}, -3)
	f.Add(uint8(31), []byte{0, 1, 2, 3, 4, 5, 6, 7, 8}, []byte{1, 2, 3}, 300)

	f.Fuzz(func(t *testing.T, nByte uint8, edgeData []byte, colorData []byte, numColors int) {
		h := fuzzHypergraph(nByte, edgeData)
		// int8 reinterpretation makes negative colors reachable.
		colors := make([]int, len(colorData))
		for i, b := range colorData {
			colors[i] = int(int8(b))
		}
		c := &Coloring{Colors: colors, NumColors: numColors}
		err := VerifyColoring(h, c)

		valid := len(colors) == h.N()
		if valid {
			for _, col := range colors {
				if col < 0 || col >= numColors {
					valid = false
					break
				}
			}
		}
		if valid {
		edges:
			for _, e := range h.Edges() {
				if len(e) < 2 {
					continue
				}
				for _, v := range e[1:] {
					if colors[v] != colors[e[0]] {
						continue edges
					}
				}
				valid = false
				break
			}
		}
		if (err == nil) != valid {
			t.Fatalf("VerifyColoring = %v, naive validity = %t (n=%d m=%d colors=%v numColors=%d)",
				err, valid, h.N(), h.M(), colors, numColors)
		}

		// Positive control: a coloring the library itself produces on
		// this instance must be accepted.
		if got, err := ColorByMIS(h, Options{Algorithm: AlgGreedy}); err == nil {
			if err := VerifyColoring(h, got); err != nil {
				t.Fatalf("library coloring rejected: %v", err)
			}
		}
	})
}

// FuzzVerifyMinimalTransversal: no panic on any (instance, mask) pair,
// and err == nil exactly when the definition holds — full length, every
// edge hit, every member essential (some edge is hit only through it).
func FuzzVerifyMinimalTransversal(f *testing.F) {
	f.Add(uint8(3), []byte{0, 1, 2}, []byte{1, 0, 1, 0})
	f.Add(uint8(7), []byte{0, 1, 5, 2, 3, 4}, []byte{1, 1, 1, 1, 1, 1, 1, 1})
	f.Add(uint8(15), []byte{}, []byte{})
	f.Add(uint8(200), []byte{9, 9, 9, 1, 2, 2}, []byte{0, 0, 0})
	f.Add(uint8(31), []byte{0, 1, 2, 3, 4, 5}, []byte{1})

	f.Fuzz(func(t *testing.T, nByte uint8, edgeData []byte, maskData []byte) {
		h := fuzzHypergraph(nByte, edgeData)
		mask := make([]bool, len(maskData))
		for i, b := range maskData {
			mask[i] = b&1 == 1
		}
		err := VerifyMinimalTransversal(h, mask)

		valid := len(mask) == h.N()
		if valid {
			// Coverage, tracking which members are essential.
			essential := make([]bool, h.N())
			for _, e := range h.Edges() {
				hits, last := 0, -1
				for _, v := range e {
					if mask[v] {
						hits++
						last = int(v)
					}
				}
				if hits == 0 {
					valid = false
					break
				}
				if hits == 1 {
					essential[last] = true
				}
			}
			if valid {
				for v := range mask {
					if mask[v] && !essential[v] {
						valid = false
						break
					}
				}
			}
		}
		if (err == nil) != valid {
			t.Fatalf("VerifyMinimalTransversal = %v, naive validity = %t (n=%d m=%d mask=%v)",
				err, valid, h.N(), h.M(), mask)
		}

		// Positive control: the duality the transversal workload is built
		// on — the complement of any solved MIS must be accepted.
		if res, err := Solve(h, Options{Algorithm: AlgGreedy}); err == nil {
			comp := make([]bool, len(res.MIS))
			for v, in := range res.MIS {
				comp[v] = !in
			}
			if err := VerifyMinimalTransversal(h, comp); err != nil {
				t.Fatalf("complement of a solved MIS rejected: %v", err)
			}
		}
	})
}
