package obs

import "context"

// ctxKey is the private context key type for trace propagation.
type ctxKey struct{}

// With attaches tr to ctx; a nil trace returns ctx unchanged.
func With(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, tr)
}

// From extracts the context's trace, or nil — every Trace method
// accepts a nil receiver, so callers never need to check.
func From(ctx context.Context) *Trace {
	tr, _ := ctx.Value(ctxKey{}).(*Trace)
	return tr
}
