package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestPromWriterRoundTripsThroughLint(t *testing.T) {
	var buf bytes.Buffer
	pw := NewPromWriter(&buf)
	pw.Counter("hypermisd_solves_total", "Solves completed without error.", 42)
	pw.Gauge("hypermisd_queue_depth", "Jobs waiting in the queue.", 3)
	pw.Header("hypermisd_algo_solves_total", "Solves by algorithm.", "counter")
	pw.Sample("hypermisd_algo_solves_total", []Label{{"algo", "sbl"}}, 7)
	pw.Sample("hypermisd_algo_solves_total", []Label{{"algo", "luby"}}, 5)
	pw.Histogram("hypermisd_solve_latency_seconds", "Solve latency.",
		[]float64{0.001, 0.01, 0.1}, []int64{1, 4, 9}, 1.25, 10)
	if err := pw.Flush(); err != nil {
		t.Fatal(err)
	}
	samples, errs := LintExposition(bytes.NewReader(buf.Bytes()))
	for _, e := range errs {
		t.Errorf("lint: %v", e)
	}
	// 2 singles + 2 labeled + (3 buckets + Inf + sum + count) = 10.
	if samples != 10 {
		t.Errorf("lint saw %d samples, want 10:\n%s", samples, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		`hypermisd_algo_solves_total{algo="sbl"} 7`,
		`hypermisd_solve_latency_seconds_bucket{le="+Inf"} 10`,
		"hypermisd_solve_latency_seconds_sum 1.25",
		"# TYPE hypermisd_solve_latency_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestPromWriterEscapesLabelValues(t *testing.T) {
	var buf bytes.Buffer
	pw := NewPromWriter(&buf)
	pw.Header("m_total", "with \"quotes\"\nand newline", "counter")
	pw.Sample("m_total", []Label{{"path", `a"b\c` + "\n"}}, 1)
	if err := pw.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, errs := LintExposition(bytes.NewReader(buf.Bytes())); len(errs) > 0 {
		t.Fatalf("escaped output fails lint: %v\n%s", errs, buf.String())
	}
	if !strings.Contains(buf.String(), `path="a\"b\\c\n"`) {
		t.Errorf("label not escaped:\n%s", buf.String())
	}
}

func TestLintCatchesMalformedExposition(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"garbage line", "# TYPE m counter\nm 1\nnot a metric line at all !\n", "bad sample"},
		{"bad value", "# TYPE m counter\nm notanumber\n", "bad sample"},
		{"bad name", "# TYPE m counter\nm 1\n9leading{} 1\n", "bad metric name"},
		{"missing type", "orphan_total 3\n", "no preceding # TYPE"},
		{"unknown type", "# TYPE m widget\nm 1\n", "unknown TYPE"},
		{"negative counter", "# TYPE m counter\nm -4\n", "negative"},
		{"duplicate type", "# TYPE m counter\n# TYPE m counter\nm 1\n", "duplicate TYPE"},
		{
			"non-cumulative histogram",
			"# TYPE h histogram\nh_bucket{le=\"0.1\"} 5\nh_bucket{le=\"1\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
			"not cumulative",
		},
		{
			"non-increasing bounds",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"0.5\"} 3\n",
			"not increasing",
		},
		{
			"interleaved families",
			"# TYPE a counter\n# TYPE b counter\na 1\nb 1\na 2\n",
			"interleaved",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, errs := LintExposition(strings.NewReader(tc.in))
			for _, e := range errs {
				if strings.Contains(e.Error(), tc.wantErr) {
					return
				}
			}
			t.Fatalf("lint missed %q, got %v", tc.wantErr, errs)
		})
	}
}

func TestLintAcceptsEdgeValues(t *testing.T) {
	in := "# TYPE m gauge\nm +Inf\nm{x=\"1\"} NaN\nm{x=\"2\"} -Inf\nm{x=\"3\"} 1e-9\n"
	if _, errs := LintExposition(strings.NewReader(in)); len(errs) > 0 {
		t.Fatalf("valid edge values rejected: %v", errs)
	}
}
