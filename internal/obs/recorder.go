package obs

import (
	"strings"
	"sync"
)

// Recorder is the flight recorder: a fixed-size ring of the last N
// completed traces plus an always-retained set of the slowest K — a
// burst of fast requests can never evict the evidence of the slow ones.
// Record is O(1) amortized (the slowest set is a small min-heap keyed
// by duration); Snapshot copies, so readers never block recording for
// long.
type Recorder struct {
	mu       sync.Mutex
	ring     []TraceRecord // capacity recent; circular
	next     int           // ring write cursor
	full     bool          // ring has wrapped
	slow     []TraceRecord // min-heap on DurationMs, capacity slowest
	recorded uint64        // lifetime Record calls
}

// NewRecorder sizes the recorder: recent traces in the ring, slowest
// traces retained beyond it. Non-positive values select 256 and 32.
func NewRecorder(recent, slowest int) *Recorder {
	if recent <= 0 {
		recent = 256
	}
	if slowest <= 0 {
		slowest = 32
	}
	return &Recorder{
		ring: make([]TraceRecord, recent),
		slow: make([]TraceRecord, 0, slowest),
	}
}

// Record retains rec in the ring and, if it ranks, in the slowest set.
func (r *Recorder) Record(rec TraceRecord) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.recorded++
	r.ring[r.next] = rec
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
		r.full = true
	}
	if len(r.slow) < cap(r.slow) {
		r.slow = append(r.slow, rec)
		r.siftUp(len(r.slow) - 1)
	} else if rec.DurationMs > r.slow[0].DurationMs {
		r.slow[0] = rec
		r.siftDown(0)
	}
}

// siftUp/siftDown maintain slow as a min-heap on DurationMs, so the
// root is always the cheapest-to-evict retained trace.
func (r *Recorder) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if r.slow[p].DurationMs <= r.slow[i].DurationMs {
			return
		}
		r.slow[p], r.slow[i] = r.slow[i], r.slow[p]
		i = p
	}
}

func (r *Recorder) siftDown(i int) {
	n := len(r.slow)
	for {
		least := i
		if l := 2*i + 1; l < n && r.slow[l].DurationMs < r.slow[least].DurationMs {
			least = l
		}
		if rr := 2*i + 2; rr < n && r.slow[rr].DurationMs < r.slow[least].DurationMs {
			least = rr
		}
		if least == i {
			return
		}
		r.slow[i], r.slow[least] = r.slow[least], r.slow[i]
		i = least
	}
}

// Recorded reports the lifetime number of traces recorded.
func (r *Recorder) Recorded() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.recorded
}

// Filter selects traces out of a Snapshot. The zero value matches
// everything.
type Filter struct {
	// MinDurationMs keeps traces at least this slow.
	MinDurationMs float64
	// Endpoint keeps traces whose endpoint contains this substring.
	Endpoint string
	// TraceID keeps the exact trace (both retention sets are searched).
	TraceID string
}

func (f Filter) match(rec TraceRecord) bool {
	if rec.DurationMs < f.MinDurationMs {
		return false
	}
	if f.Endpoint != "" && !strings.Contains(rec.Endpoint, f.Endpoint) {
		return false
	}
	if f.TraceID != "" && rec.TraceID != f.TraceID {
		return false
	}
	return true
}

// Snapshot returns the matching retained traces: recent in
// newest-first order, slowest in slowest-first order. A trace retained
// by both sets appears in both — the two lists answer different
// questions.
func (r *Recorder) Snapshot(f Filter) (recent, slowest []TraceRecord) {
	if r == nil {
		return nil, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.full {
		n = len(r.ring)
	}
	recent = make([]TraceRecord, 0, n)
	// Walk the ring backwards from the cursor: newest first.
	for i := 0; i < n; i++ {
		idx := r.next - 1 - i
		if idx < 0 {
			idx += len(r.ring)
		}
		if f.match(r.ring[idx]) {
			recent = append(recent, r.ring[idx])
		}
	}
	slowest = make([]TraceRecord, 0, len(r.slow))
	for _, rec := range r.slow {
		if f.match(rec) {
			slowest = append(slowest, rec)
		}
	}
	// Small K: a sort beats exposing heap order to clients.
	for i := 1; i < len(slowest); i++ {
		for j := i; j > 0 && slowest[j].DurationMs > slowest[j-1].DurationMs; j-- {
			slowest[j], slowest[j-1] = slowest[j-1], slowest[j]
		}
	}
	return recent, slowest
}
