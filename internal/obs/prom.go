package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Label is one Prometheus label pair.
type Label struct {
	Name, Value string
}

// PromWriter emits Prometheus text exposition format (version 0.0.4) —
// the GET /metrics wire format — with no dependency beyond the standard
// library. Write errors stick: the first one is retained and every
// later call is a no-op, so handlers check Err once at the end.
type PromWriter struct {
	w   *bufio.Writer
	err error
}

// NewPromWriter wraps w for exposition writing; call Flush when done.
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: bufio.NewWriter(w)}
}

// ContentTypeProm is the exposition content type for HTTP responses.
const ContentTypeProm = "text/plain; version=0.0.4; charset=utf-8"

func (p *PromWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// escapeHelp escapes a HELP text (backslash and newline).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value (backslash, quote, newline).
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Header writes the # HELP and # TYPE lines for a metric family; typ is
// "counter", "gauge", "histogram", "summary" or "untyped".
func (p *PromWriter) Header(name, help, typ string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
}

// Sample writes one sample line. Labels may be nil.
func (p *PromWriter) Sample(name string, labels []Label, v float64) {
	if p.err != nil {
		return
	}
	if len(labels) == 0 {
		p.printf("%s %s\n", name, formatValue(v))
		return
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.Name + `="` + escapeLabel(l.Value) + `"`
	}
	p.printf("%s{%s} %s\n", name, strings.Join(parts, ","), formatValue(v))
}

// Counter emits a complete single-sample counter family.
func (p *PromWriter) Counter(name, help string, v float64) {
	p.Header(name, help, "counter")
	p.Sample(name, nil, v)
}

// Gauge emits a complete single-sample gauge family.
func (p *PromWriter) Gauge(name, help string, v float64) {
	p.Header(name, help, "gauge")
	p.Sample(name, nil, v)
}

// Histogram emits a conventional histogram family: one cumulative
// _bucket sample per upper bound, the +Inf bucket, _sum and _count.
// cumulative[i] is the count of observations ≤ bounds[i]; count is the
// total (the +Inf bucket), sum the observation total in the metric's
// unit. len(cumulative) must equal len(bounds).
func (p *PromWriter) Histogram(name, help string, bounds []float64, cumulative []int64, sum float64, count int64) {
	p.Header(name, help, "histogram")
	for i, ub := range bounds {
		p.Sample(name+"_bucket", []Label{{"le", formatValue(ub)}}, float64(cumulative[i]))
	}
	p.Sample(name+"_bucket", []Label{{"le", "+Inf"}}, float64(count))
	p.Sample(name+"_sum", nil, sum)
	p.Sample(name+"_count", nil, float64(count))
}

// Flush drains the buffer and reports the first error of the whole
// write sequence.
func (p *PromWriter) Flush() error {
	if p.err != nil {
		return p.err
	}
	return p.w.Flush()
}

// ---- Exposition linting -------------------------------------------
//
// LintExposition is the shared validity check behind the CI smoke step
// (cmd/promcheck) and the service's exposition test: a strict-enough
// parser for the text format that catches the ways a hand-rolled
// /metrics endpoint actually breaks — malformed lines, bad metric
// names, unparsable values, samples without a TYPE, interleaved
// families, and non-cumulative histogram buckets.

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// baseFamily strips the histogram/summary sample suffixes so _bucket,
// _sum and _count lines attach to their declared family.
func baseFamily(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

// parseSampleLine splits `name[{labels}] value` and returns the metric
// name, the le label value if present ("" otherwise), and the value.
func parseSampleLine(line string) (name, le string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		name = line[:i]
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return "", "", 0, fmt.Errorf("unbalanced label braces")
		}
		labels := line[i+1 : j]
		rest = strings.TrimSpace(line[j+1:])
		for _, pair := range splitLabels(labels) {
			eq := strings.IndexByte(pair, '=')
			if eq < 0 {
				return "", "", 0, fmt.Errorf("label %q missing '='", pair)
			}
			ln, lv := strings.TrimSpace(pair[:eq]), strings.TrimSpace(pair[eq+1:])
			if !validMetricName(ln) {
				return "", "", 0, fmt.Errorf("bad label name %q", ln)
			}
			unq, uerr := strconv.Unquote(lv)
			if uerr != nil {
				return "", "", 0, fmt.Errorf("label %s value %s not a quoted string", ln, lv)
			}
			if ln == "le" {
				le = unq
			}
		}
	} else {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return "", "", 0, fmt.Errorf("want 'name value'")
		}
		name = fields[0]
		rest = strings.Join(fields[1:], " ")
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional trailing timestamp
		return "", "", 0, fmt.Errorf("want 'value [timestamp]' after name, got %q", rest)
	}
	value, err = parsePromValue(fields[0])
	if err != nil {
		return "", "", 0, err
	}
	return name, le, value, nil
}

// splitLabels splits a label body on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	depth := false // inside quotes
	last := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++ // skip escaped char
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[last:i])
				last = i + 1
			}
		}
	}
	if strings.TrimSpace(s[last:]) != "" {
		out = append(out, s[last:])
	}
	return out
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// LintExposition validates a text-format exposition and returns every
// violation found (nil = clean). samples reports the number of sample
// lines, so callers can additionally require a minimum.
func LintExposition(r io.Reader) (samples int, errs []error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	typeOf := map[string]string{}  // family -> declared TYPE
	closed := map[string]bool{}    // family -> samples ended (interleave check)
	var curFamily string           // family of the current sample run
	lastLe := map[string]float64{} // family -> last cumulative bucket value
	lastLeBound := map[string]float64{}
	lineNo := 0
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf("line %d: %s", lineNo, fmt.Sprintf(format, args...)))
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), " \t")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				// Other comments are legal and ignored.
				if len(fields) >= 2 && (fields[1] == "HELP" || fields[1] == "TYPE") {
					fail("truncated %s comment", fields[1])
				}
				continue
			}
			name := fields[2]
			if !validMetricName(name) {
				fail("bad metric name %q in %s", name, fields[1])
				continue
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					fail("TYPE wants exactly one type, got %q", line)
					continue
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					fail("unknown TYPE %q for %s", fields[3], name)
				}
				if _, dup := typeOf[name]; dup {
					fail("duplicate TYPE for %s", name)
				}
				if closed[name] {
					fail("TYPE for %s after its samples ended", name)
				}
				typeOf[name] = fields[3]
			}
			continue
		}
		name, le, value, err := parseSampleLine(line)
		if err != nil {
			fail("bad sample %q: %v", line, err)
			continue
		}
		if !validMetricName(name) {
			fail("bad metric name %q", name)
			continue
		}
		fam := baseFamily(name)
		if _, ok := typeOf[fam]; !ok {
			// An untyped bare sample is legal Prometheus, but this
			// endpoint declares everything; treat it as drift.
			fail("sample %s has no preceding # TYPE", name)
		}
		if fam != curFamily {
			if curFamily != "" {
				closed[curFamily] = true
			}
			if closed[fam] {
				fail("family %s interleaved with other families", fam)
			}
			curFamily = fam
		}
		if typeOf[fam] == "counter" && value < 0 {
			fail("counter %s is negative (%g)", name, value)
		}
		if strings.HasSuffix(name, "_bucket") && le != "" {
			bound, berr := parsePromValue(le)
			if berr != nil {
				fail("bucket %s has unparsable le=%q", name, le)
			} else {
				if prevB, ok := lastLeBound[fam]; ok && bound <= prevB {
					fail("bucket %s le=%q not increasing", name, le)
				}
				if prev, ok := lastLe[fam]; ok && value < prev {
					fail("bucket %s le=%q count %g below previous bucket %g (not cumulative)", name, le, value, prev)
				}
				lastLe[fam] = value
				lastLeBound[fam] = bound
			}
		}
		samples++
	}
	if err := sc.Err(); err != nil {
		errs = append(errs, fmt.Errorf("reading exposition: %w", err))
	}
	return samples, errs
}
