// Package obs is the service's observability kit: per-request span
// tracing, a flight recorder retaining recent and slowest traces, and
// a dependency-free Prometheus text-format exposition writer (plus the
// matching linter cmd/promcheck and the CI smoke test reuse).
//
// # Tracing
//
// A Trace is one request's span recorder: a process-unique hex id, the
// endpoint label, and a bounded list of named child spans (queue-wait,
// cache-lookup, workspace-checkout, solve, per-round, encode — the
// service decides the names). Traces ride the request context:
//
//	tr := obs.NewTrace("POST /v1/solve")
//	ctx = obs.With(ctx, tr)
//	...
//	sp := obs.From(ctx).StartSpan("solve")
//	... work ...
//	sp.End()
//	...
//	tr.Finish(200)
//	recorder.Record(tr.Snapshot())
//
// Every method is nil-receiver safe, so disabled tracing is a nil
// *Trace and instrumentation points pay one pointer check. Span
// recording is allocation-conscious: the span list is grown in place
// under one mutex, capped at maxSpans (overflow is counted, not
// stored), and StartSpan handles are values. Traces are mutable until
// Finish and frozen after it; Snapshot returns a plain value safe to
// retain and marshal.
package obs

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// maxSpans bounds the spans one trace retains. A pathological request
// (a many-round solve, a huge batch) overflows into Truncated instead
// of growing without bound.
const maxSpans = 128

// traceBase seeds the process's trace-id sequence with real entropy so
// ids from different daemon runs don't collide; traceCtr makes every id
// unique within the run without a syscall per request.
var (
	traceBase = func() uint64 {
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			panic(fmt.Sprintf("obs: trace id entropy: %v", err))
		}
		return binary.LittleEndian.Uint64(b[:])
	}()
	traceCtr atomic.Uint64
)

// newTraceID returns a 16-hex-digit id: the random process base mixed
// with a per-trace counter through a splitmix64 finalizer, so ids look
// uniform but cost no entropy syscall per request.
func newTraceID() string {
	z := traceBase + traceCtr.Add(1)*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return fmt.Sprintf("%016x", z)
}

// Span is one named interval inside a trace. StartUs is the offset from
// the trace's start; both fields are microseconds so the JSON is
// directly human-readable next to elapsed_ms response fields.
type Span struct {
	Name    string  `json:"name"`
	StartUs float64 `json:"start_us"`
	DurUs   float64 `json:"dur_us"`
}

// Trace records one request's spans. Create with NewTrace, propagate
// via With/From, close with Finish. All methods are safe on a nil
// receiver (they no-op) and safe for concurrent use — request handling
// fans out across worker goroutines.
type Trace struct {
	id       string
	endpoint string
	start    time.Time

	mu        sync.Mutex
	spans     []Span
	truncated int
	rounds    int
	roundNs   int64
	detail    string
	done      bool
	end       time.Time
	status    int
}

// NewTrace starts a trace for the named endpoint.
func NewTrace(endpoint string) *Trace {
	return &Trace{
		id:       newTraceID(),
		endpoint: endpoint,
		start:    time.Now(),
		spans:    make([]Span, 0, 8),
	}
}

// ID returns the trace id ("" on nil) — the X-Hypermis-Trace value.
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// SpanHandle ends one in-flight span. The zero value (from a nil
// trace) ends nothing.
type SpanHandle struct {
	t     *Trace
	name  string
	start time.Time
}

// StartSpan opens a named span; call End on the handle when the
// interval closes.
func (t *Trace) StartSpan(name string) SpanHandle {
	if t == nil {
		return SpanHandle{}
	}
	return SpanHandle{t: t, name: name, start: time.Now()}
}

// End closes the span and records it on its trace.
func (h SpanHandle) End() {
	if h.t == nil {
		return
	}
	h.t.AddSpan(h.name, h.start, time.Since(h.start))
}

// AddSpan records an externally measured interval (e.g. queue wait,
// whose start the enqueuer stamped and whose end the worker observes).
// Spans landing after Finish are dropped: the trace was already
// snapshotted into the recorder, and a straggling worker (client gone,
// solve still unwinding) must not mutate it.
func (t *Trace) AddSpan(name string, start time.Time, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return
	}
	if len(t.spans) >= maxSpans {
		t.truncated++
		return
	}
	t.spans = append(t.spans, Span{
		Name:    name,
		StartUs: float64(start.Sub(t.start)) / float64(time.Microsecond),
		DurUs:   float64(d) / float64(time.Microsecond),
	})
}

// AddRound accumulates one solver round into the trace's round tally —
// cheaper than a span per round and never truncated, so the totals stay
// exact even when the span list overflows. The first few rounds are
// additionally recorded as spans by the caller if it wants them.
func (t *Trace) AddRound(elapsed time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if !t.done {
		t.rounds++
		t.roundNs += int64(elapsed)
	}
	t.mu.Unlock()
}

// SetDetail attaches a short free-form annotation (e.g. "algo=luby
// n=1000 cached=true"); the last call wins.
func (t *Trace) SetDetail(format string, args ...any) {
	if t == nil {
		return
	}
	s := fmt.Sprintf(format, args...)
	t.mu.Lock()
	if !t.done {
		t.detail = s
	}
	t.mu.Unlock()
}

// Finish freezes the trace with the response status. Idempotent — the
// first call wins.
func (t *Trace) Finish(status int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if !t.done {
		t.done = true
		t.end = time.Now()
		t.status = status
	}
	t.mu.Unlock()
}

// TraceRecord is the immutable, JSON-ready form of a finished trace —
// what the flight recorder stores and GET /v1/debug/requests returns.
type TraceRecord struct {
	TraceID    string    `json:"trace_id"`
	Endpoint   string    `json:"endpoint"`
	Start      time.Time `json:"start"`
	DurationMs float64   `json:"duration_ms"`
	Status     int       `json:"status"`
	Detail     string    `json:"detail,omitempty"`
	Rounds     int       `json:"rounds,omitempty"`
	RoundsMs   float64   `json:"rounds_ms,omitempty"`
	Truncated  int       `json:"spans_truncated,omitempty"`
	Spans      []Span    `json:"spans"`
}

// Snapshot captures the trace as a record. Call after Finish; an
// unfinished trace snapshots with its duration so far and status 0.
func (t *Trace) Snapshot() TraceRecord {
	if t == nil {
		return TraceRecord{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	end := t.end
	if !t.done {
		end = time.Now()
	}
	return TraceRecord{
		TraceID:    t.id,
		Endpoint:   t.endpoint,
		Start:      t.start,
		DurationMs: float64(end.Sub(t.start)) / float64(time.Millisecond),
		Status:     t.status,
		Detail:     t.detail,
		Rounds:     t.rounds,
		RoundsMs:   float64(t.roundNs) / float64(time.Millisecond),
		Truncated:  t.truncated,
		Spans:      append([]Span(nil), t.spans...),
	}
}
