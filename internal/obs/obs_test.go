package obs

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestTraceSpansAndSnapshot(t *testing.T) {
	tr := NewTrace("POST /v1/solve")
	if tr.ID() == "" || len(tr.ID()) != 16 {
		t.Fatalf("trace id %q, want 16 hex digits", tr.ID())
	}
	sp := tr.StartSpan("decode")
	time.Sleep(time.Millisecond)
	sp.End()
	tr.AddSpan("queue-wait", time.Now().Add(-2*time.Millisecond), 2*time.Millisecond)
	tr.AddRound(300 * time.Microsecond)
	tr.AddRound(200 * time.Microsecond)
	tr.SetDetail("algo=%s cached=%t", "luby", false)
	tr.Finish(200)

	rec := tr.Snapshot()
	if rec.TraceID != tr.ID() || rec.Endpoint != "POST /v1/solve" || rec.Status != 200 {
		t.Fatalf("snapshot header mismatch: %+v", rec)
	}
	if len(rec.Spans) != 2 {
		t.Fatalf("got %d spans, want 2: %+v", len(rec.Spans), rec.Spans)
	}
	if rec.Spans[0].Name != "decode" || rec.Spans[0].DurUs < 900 {
		t.Errorf("decode span %+v, want ≥900µs", rec.Spans[0])
	}
	if rec.Rounds != 2 || rec.RoundsMs < 0.4 {
		t.Errorf("rounds %d / %.3fms, want 2 / ≥0.5ms", rec.Rounds, rec.RoundsMs)
	}
	if rec.Detail != "algo=luby cached=false" {
		t.Errorf("detail %q", rec.Detail)
	}
	if rec.DurationMs <= 0 {
		t.Errorf("duration %.3fms, want > 0", rec.DurationMs)
	}

	// Post-finish mutation is dropped: the snapshot already escaped.
	tr.AddSpan("late", time.Now(), time.Millisecond)
	tr.AddRound(time.Millisecond)
	if after := tr.Snapshot(); len(after.Spans) != 2 || after.Rounds != 2 {
		t.Errorf("post-finish mutation leaked: %d spans, %d rounds", len(after.Spans), after.Rounds)
	}
}

func TestTraceNilSafety(t *testing.T) {
	var tr *Trace
	if tr.ID() != "" {
		t.Error("nil trace has an id")
	}
	tr.StartSpan("x").End()
	tr.AddSpan("y", time.Now(), time.Second)
	tr.AddRound(time.Second)
	tr.SetDetail("z")
	tr.Finish(500)
	if rec := tr.Snapshot(); rec.TraceID != "" {
		t.Errorf("nil snapshot: %+v", rec)
	}
	ctx := With(context.Background(), nil)
	if From(ctx) != nil {
		t.Error("nil trace attached to context")
	}
}

func TestTraceContextRoundTrip(t *testing.T) {
	tr := NewTrace("x")
	ctx := With(context.Background(), tr)
	if From(ctx) != tr {
		t.Fatal("trace lost in context")
	}
	if From(context.Background()) != nil {
		t.Fatal("phantom trace in empty context")
	}
}

func TestTraceIDsUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 10000; i++ {
		id := NewTrace("x").ID()
		if seen[id] {
			t.Fatalf("duplicate trace id %s after %d traces", id, i)
		}
		seen[id] = true
	}
}

func TestTraceSpanCap(t *testing.T) {
	tr := NewTrace("x")
	for i := 0; i < maxSpans+10; i++ {
		tr.AddSpan("s", time.Now(), time.Microsecond)
	}
	tr.Finish(200)
	rec := tr.Snapshot()
	if len(rec.Spans) != maxSpans || rec.Truncated != 10 {
		t.Fatalf("got %d spans / %d truncated, want %d / 10", len(rec.Spans), rec.Truncated, maxSpans)
	}
}

func TestTraceConcurrentSpans(t *testing.T) {
	tr := NewTrace("x")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.StartSpan("s").End()
				tr.AddRound(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	tr.Finish(200)
	rec := tr.Snapshot()
	if rec.Rounds != 800 {
		t.Fatalf("rounds %d, want 800", rec.Rounds)
	}
	if len(rec.Spans)+rec.Truncated != 800 {
		t.Fatalf("spans %d + truncated %d != 800", len(rec.Spans), rec.Truncated)
	}
}

func recordWith(dur float64, endpoint, id string) TraceRecord {
	return TraceRecord{TraceID: id, Endpoint: endpoint, DurationMs: dur}
}

func TestRecorderRingAndSlowest(t *testing.T) {
	r := NewRecorder(4, 2)
	for i := 1; i <= 10; i++ {
		r.Record(recordWith(float64(i), "POST /v1/solve", fmt.Sprintf("t%02d", i)))
	}
	recent, slowest := r.Snapshot(Filter{})
	if len(recent) != 4 {
		t.Fatalf("recent holds %d, want ring size 4", len(recent))
	}
	// Newest first: t10, t09, t08, t07.
	for i, want := range []string{"t10", "t09", "t08", "t07"} {
		if recent[i].TraceID != want {
			t.Errorf("recent[%d] = %s, want %s", i, recent[i].TraceID, want)
		}
	}
	if len(slowest) != 2 || slowest[0].TraceID != "t10" || slowest[1].TraceID != "t09" {
		t.Fatalf("slowest = %+v, want t10 then t09", slowest)
	}
	if r.Recorded() != 10 {
		t.Errorf("recorded %d, want 10", r.Recorded())
	}
}

func TestRecorderSlowestSurvivesFastBurst(t *testing.T) {
	r := NewRecorder(4, 2)
	r.Record(recordWith(500, "POST /v1/solve", "slow"))
	for i := 0; i < 100; i++ {
		r.Record(recordWith(0.1, "POST /v1/solve", fmt.Sprintf("f%d", i)))
	}
	recent, slowest := r.Snapshot(Filter{})
	for _, rec := range recent {
		if rec.TraceID == "slow" {
			t.Fatal("slow trace still in the 4-deep ring after 100 fast traces")
		}
	}
	if len(slowest) == 0 || slowest[0].TraceID != "slow" {
		t.Fatalf("slowest lost the 500ms trace: %+v", slowest)
	}
}

func TestRecorderFilter(t *testing.T) {
	r := NewRecorder(16, 4)
	r.Record(recordWith(1, "POST /v1/solve", "a"))
	r.Record(recordWith(50, "POST /v1/batch", "b"))
	r.Record(recordWith(200, "POST /v1/solve", "c"))

	recent, _ := r.Snapshot(Filter{MinDurationMs: 40})
	if len(recent) != 2 || recent[0].TraceID != "c" || recent[1].TraceID != "b" {
		t.Fatalf("min-duration filter: %+v", recent)
	}
	recent, _ = r.Snapshot(Filter{Endpoint: "batch"})
	if len(recent) != 1 || recent[0].TraceID != "b" {
		t.Fatalf("endpoint filter: %+v", recent)
	}
	recent, slowest := r.Snapshot(Filter{TraceID: "c"})
	if len(recent) != 1 || recent[0].TraceID != "c" {
		t.Fatalf("trace-id filter: %+v", recent)
	}
	if len(slowest) != 1 || slowest[0].TraceID != "c" {
		t.Fatalf("trace-id filter (slowest): %+v", slowest)
	}
}

func TestRecorderNilSafety(t *testing.T) {
	var r *Recorder
	r.Record(TraceRecord{})
	if n := r.Recorded(); n != 0 {
		t.Fatal("nil recorder recorded something")
	}
	if recent, slowest := r.Snapshot(Filter{}); recent != nil || slowest != nil {
		t.Fatal("nil recorder returned traces")
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(64, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Record(recordWith(float64(i%50), "x", fmt.Sprintf("g%d-%d", g, i)))
				if i%20 == 0 {
					r.Snapshot(Filter{MinDurationMs: 10})
				}
			}
		}(g)
	}
	wg.Wait()
	if r.Recorded() != 1600 {
		t.Fatalf("recorded %d, want 1600", r.Recorded())
	}
}
