package greedy

import (
	"testing"
	"testing/quick"

	"repro/internal/hypergraph"
	"repro/internal/rng"
)

func TestRunTriangle(t *testing.T) {
	h := hypergraph.NewBuilder(3).AddEdge(0, 1, 2).MustBuild()
	res := Run(h, nil)
	if err := hypergraph.VerifyMIS(h, res.InIS); err != nil {
		t.Fatal(err)
	}
	// Greedy in order 0,1,2 adds 0 and 1, rejects 2.
	if !res.InIS[0] || !res.InIS[1] || res.InIS[2] {
		t.Fatalf("got %v", res.InIS)
	}
	if res.Size != 2 || res.Rejected != 1 {
		t.Fatalf("size=%d rejected=%d", res.Size, res.Rejected)
	}
}

func TestRunSingletonEdgeBlocks(t *testing.T) {
	h := hypergraph.NewBuilder(3).AddEdge(1).MustBuild()
	res := Run(h, nil)
	if res.InIS[1] {
		t.Fatal("vertex with singleton edge joined the IS")
	}
	if !res.InIS[0] || !res.InIS[2] {
		t.Fatal("free vertices must join")
	}
}

func TestRunEdgeless(t *testing.T) {
	h := hypergraph.NewBuilder(5).MustBuild()
	res := Run(h, nil)
	if res.Size != 5 {
		t.Fatalf("size = %d", res.Size)
	}
	if err := hypergraph.VerifyMIS(h, res.InIS); err != nil {
		t.Fatal(err)
	}
}

func TestRunAlwaysMIS(t *testing.T) {
	s := rng.New(1)
	for trial := 0; trial < 40; trial++ {
		n := 10 + s.Intn(60)
		m := s.Intn(120)
		h := hypergraph.RandomMixed(s, n, m+1, 2, 5)
		res := Run(h, nil)
		if err := hypergraph.VerifyMIS(h, res.InIS); err != nil {
			t.Fatalf("trial %d (%v): %v", trial, h, err)
		}
	}
}

func TestRunPermAlwaysMIS(t *testing.T) {
	s := rng.New(2)
	for trial := 0; trial < 40; trial++ {
		n := 10 + s.Intn(60)
		h := hypergraph.RandomMixed(s, n, 1+s.Intn(100), 2, 4)
		res := RunPerm(h, nil, s)
		if err := hypergraph.VerifyMIS(h, res.InIS); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestRunActiveSubset(t *testing.T) {
	// Edge {0,1}; only vertex 0 active: 0 joins (1 can't complete the edge).
	h := hypergraph.NewBuilder(2).AddEdge(0, 1).MustBuild()
	active := []bool{true, false}
	res := Run(h, active)
	if !res.InIS[0] {
		t.Fatal("active vertex with uncompletable edge rejected")
	}
	if res.InIS[1] {
		t.Fatal("inactive vertex added")
	}
}

func TestRunActiveEdgeInside(t *testing.T) {
	// Edge {0,1} with both active: second is rejected.
	h := hypergraph.NewBuilder(3).AddEdge(0, 1).MustBuild()
	active := []bool{true, true, false}
	res := Run(h, active)
	if !res.InIS[0] || res.InIS[1] {
		t.Fatalf("got %v", res.InIS)
	}
}

func TestRunOrderRespectsOrder(t *testing.T) {
	h := hypergraph.NewBuilder(2).AddEdge(0, 1).MustBuild()
	res := RunOrder(h, nil, []hypergraph.V{1, 0})
	if !res.InIS[1] || res.InIS[0] {
		t.Fatalf("order ignored: %v", res.InIS)
	}
}

func TestGreedyIndependenceProperty(t *testing.T) {
	s := rng.New(3)
	check := func(seed uint16) bool {
		st := s.Child(uint64(seed))
		h := hypergraph.RandomMixed(st, 30, 50, 2, 4)
		res := RunPerm(h, nil, st)
		return hypergraph.VerifyMIS(h, res.InIS) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyDeterministic(t *testing.T) {
	s := rng.New(4)
	h := hypergraph.RandomMixed(s, 50, 80, 2, 4)
	a := RunPerm(h, nil, rng.New(7))
	b := RunPerm(h, nil, rng.New(7))
	for i := range a.InIS {
		if a.InIS[i] != b.InIS[i] {
			t.Fatal("same seed, different MIS")
		}
	}
}

func TestCompleteHypergraphISSize(t *testing.T) {
	// Complete 3-uniform on 6 vertices: any 2 vertices independent, any 3
	// contain an edge → MIS size exactly 2.
	h := hypergraph.Complete(6, 6, 3)
	res := Run(h, nil)
	if res.Size != 2 {
		t.Fatalf("MIS of complete 3-uniform K6 has size %d, want 2", res.Size)
	}
	if err := hypergraph.VerifyMIS(h, res.InIS); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGreedy(b *testing.B) {
	s := rng.New(1)
	h := hypergraph.RandomMixed(s, 10000, 20000, 2, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(h, nil)
	}
}
