// Package greedy implements sequential maximal-independent-set
// construction for hypergraphs: the "algorithm that takes time linear in
// the number of vertices" the paper invokes as the terminal solver once
// SBL has shrunk the instance below 1/p² vertices, and the reference
// oracle the parallel solvers are tested against.
//
// Greedy scans vertices in a given order and adds a vertex unless doing
// so would complete an edge (all other vertices of the edge already
// chosen). The result is always a maximal independent set. On a uniform
// random order this is also the sequential simulation of the
// random-permutation algorithm of Beame and Luby, conjectured in [2] to
// be parallelizable in RNC (the Shachnai–Srinivasan line of analysis).
package greedy

import (
	"repro/internal/hypergraph"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/solver"
)

// Result reports the constructed MIS and basic counters.
type Result struct {
	InIS     []bool // membership mask over the vertex universe
	Size     int    // number of vertices in the MIS
	Rejected int    // vertices that would have completed an edge
}

func init() {
	solver.Register(solver.Descriptor{
		Algo: solver.Greedy,
		Name: "greedy",
		Solve: func(req solver.Request) (solver.Outcome, error) {
			r := RunIn(req.H, nil, req.Ws)
			return solver.Outcome{InIS: r.InIS}, nil
		},
	})
}

// Run computes a MIS of h restricted to the active vertices, scanning in
// increasing vertex order. Inactive vertices are ignored entirely (not
// in the set, not blocking). active == nil means all vertices active.
// Edges containing inactive vertices can never be completed and are
// skipped via the same counting logic.
func Run(h *hypergraph.Hypergraph, active []bool) *Result {
	return RunIn(h, active, nil)
}

// RunIn is Run drawing its scan-order and per-edge counting buffers
// from a workspace (nil = fresh buffers), so repeated solves — SBL's
// greedy tail, pooled service jobs — allocate only the returned mask.
// Greedy is sequential by definition, so the workspace is reset to the
// inline engine rather than inheriting whatever degree the workspace's
// previous job ran at.
func RunIn(h *hypergraph.Hypergraph, active []bool, ws *solver.Workspace) *Result {
	if ws == nil {
		ws = solver.NewWorkspace()
	}
	ws.Reset(h.N(), par.Engine{P: 1})
	order := ws.Verts(0, h.N())[:0]
	for v := 0; v < h.N(); v++ {
		if active == nil || active[v] {
			order = append(order, hypergraph.V(v))
		}
	}
	return runOrder(h, active, order, ws)
}

// RunPerm computes a MIS scanning active vertices in a uniformly random
// order drawn from s.
func RunPerm(h *hypergraph.Hypergraph, active []bool, s *rng.Stream) *Result {
	var candidates []hypergraph.V
	for v := 0; v < h.N(); v++ {
		if active == nil || active[v] {
			candidates = append(candidates, hypergraph.V(v))
		}
	}
	perm := s.Perm(len(candidates))
	order := make([]hypergraph.V, len(candidates))
	for i, pi := range perm {
		order[i] = candidates[pi]
	}
	return RunOrder(h, active, order)
}

// RunOrder computes the greedy MIS over the given scan order. Every
// vertex in order must be active; vertices outside order are treated as
// permanently out of the set. The scan costs O(Σ|e| + n).
func RunOrder(h *hypergraph.Hypergraph, active []bool, order []hypergraph.V) *Result {
	return runOrder(h, active, order, solver.NewWorkspace())
}

// runOrder is RunOrder over workspace-supplied counting buffers.
func runOrder(h *hypergraph.Hypergraph, active []bool, order []hypergraph.V, ws *solver.Workspace) *Result {
	n := h.N()
	inIS := make([]bool, n)
	isActive := func(v hypergraph.V) bool { return active == nil || active[v] }

	// chosen[e] counts vertices of edge e already in the IS. An edge can
	// only ever be completed if all its vertices are active.
	edges := h.Edges()
	chosen := ws.Int32s(0, len(edges))
	completable := ws.Bools(0, len(edges))
	if active == nil {
		for i := range completable {
			completable[i] = true
		}
	} else {
		for i, e := range edges {
			completable[i] = true
			for _, v := range e {
				if !active[v] {
					completable[i] = false
					break
				}
			}
		}
	}
	inc := h.Incidence()

	res := &Result{InIS: inIS}
	for _, v := range order {
		if !isActive(v) {
			continue
		}
		ok := true
		for _, ei := range inc[v] {
			if completable[ei] && int(chosen[ei]) == len(edges[ei])-1 {
				ok = false
				break
			}
		}
		if !ok {
			res.Rejected++
			continue
		}
		inIS[v] = true
		res.Size++
		for _, ei := range inc[v] {
			chosen[ei]++
		}
	}
	return res
}
