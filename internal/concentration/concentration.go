// Package concentration implements the probabilistic machinery of
// Sections 3–4 of the paper: Kelsen's polynomial concentration setting,
// his Theorem 1 (the paper's Theorem 3) tail bound, the cleaner
// Corollary 1 form, the Kim–Vu style sharpening of Section 4
// (Corollaries 3 and 4), and Monte-Carlo estimation of the true tails so
// experiments T9 and F2 can compare measured behaviour against every
// bound.
//
// The object of study is the edge polynomial of a weighted hypergraph
// (H, w) under independent vertex coloring: each vertex v is blue with
// probability p (indicator C_v), and
//
//	S(H,w,p) = Σ_{e ∈ E} w(e) · Π_{v∈e} C_v.
//
// The bounds are phrased against the maximum partial-derivative
// expectation
//
//	P(H,w,p,x) = Σ_{e ⊇ x} w(e) · p^{|e|−|x|}
//	D(H,w,p)   = max_{x ⊆ V} P(H,w,p,x)    (x = ∅ gives E[S]).
package concentration

import (
	"math"

	"repro/internal/hypergraph"
	"repro/internal/mathx"
	"repro/internal/rng"
)

// Weighted is a weighted hypergraph (H, w): the carrier of the edge
// polynomial S(H, w, p). Weights must be positive.
type Weighted struct {
	N       int
	Edges   []hypergraph.Edge
	Weights []float64
}

// FromHypergraph wraps h with unit weights.
func FromHypergraph(h *hypergraph.Hypergraph) *Weighted {
	w := make([]float64, h.M())
	for i := range w {
		w[i] = 1
	}
	return &Weighted{N: h.N(), Edges: h.Edges(), Weights: w}
}

// Dim returns the dimension of the weighted hypergraph.
func (w *Weighted) Dim() int {
	d := 0
	for _, e := range w.Edges {
		if len(e) > d {
			d = len(e)
		}
	}
	return d
}

// Evaluate computes S for a concrete coloring: the weighted count of
// fully-blue edges.
func (w *Weighted) Evaluate(blue []bool) float64 {
	total := 0.0
	for i, e := range w.Edges {
		all := true
		for _, v := range e {
			if !blue[v] {
				all = false
				break
			}
		}
		if all {
			total += w.Weights[i]
		}
	}
	return total
}

// Expectation returns E[S(H,w,p)] = Σ w(e)·p^{|e|} = P(H,w,p,∅).
func (w *Weighted) Expectation(p float64) float64 {
	total := 0.0
	for i, e := range w.Edges {
		total += w.Weights[i] * mathx.PowInt(p, len(e))
	}
	return total
}

// PartialExpectation returns P(H,w,p,x) for a sorted vertex set x: the
// expected weighted count of fully-blue edges around x given that x is
// already blue.
func (w *Weighted) PartialExpectation(p float64, x hypergraph.Edge) float64 {
	total := 0.0
	for i, e := range w.Edges {
		if hypergraph.ContainsSorted(e, x) {
			total += w.Weights[i] * mathx.PowInt(p, len(e)-len(x))
		}
	}
	return total
}

// D returns D(H,w,p) = max over all x ⊆ V of P(H,w,p,x). Only subsets
// of edges (and ∅) can attain the maximum, so those are enumerated —
// Θ(m·2^d), the regime these analyses live in.
func (w *Weighted) D(p float64) float64 {
	best := w.Expectation(p) // x = ∅
	// Accumulate P(x) for every nonempty subset x of every edge.
	acc := make(map[string]float64)
	var scratch hypergraph.Edge
	for i, e := range w.Edges {
		k := len(e)
		for mask := uint32(1); mask < uint32(1)<<uint(k); mask++ {
			scratch = scratch[:0]
			for b := 0; b < k; b++ {
				if mask&(1<<uint(b)) != 0 {
					scratch = append(scratch, e[b])
				}
			}
			acc[edgeKey(scratch)] += w.Weights[i] * mathx.PowInt(p, k-len(scratch))
		}
	}
	for _, v := range acc {
		if v > best {
			best = v
		}
	}
	return best
}

func edgeKey(x hypergraph.Edge) string {
	buf := make([]byte, 0, 4*len(x))
	for _, v := range x {
		buf = append(buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	}
	return string(buf)
}

// TailResult summarizes a Monte-Carlo tail estimate.
type TailResult struct {
	Trials    int
	Exceed    int     // trials with S > Threshold
	Threshold float64 //
	Mean      float64 // empirical mean of S
	Max       float64 // empirical max of S
}

// Probability returns the empirical exceedance probability.
func (t TailResult) Probability() float64 {
	if t.Trials == 0 {
		return 0
	}
	return float64(t.Exceed) / float64(t.Trials)
}

// MonteCarloTail estimates Pr[S(H,w,p) > threshold] over the given
// number of independent colorings.
func MonteCarloTail(w *Weighted, p, threshold float64, trials int, s *rng.Stream) TailResult {
	blue := make([]bool, w.N)
	res := TailResult{Trials: trials, Threshold: threshold}
	sum := 0.0
	for t := 0; t < trials; t++ {
		ts := s.Child(uint64(t))
		for v := range blue {
			blue[v] = ts.Child(uint64(v)).Bernoulli(p)
		}
		val := w.Evaluate(blue)
		sum += val
		if val > threshold {
			res.Exceed++
		}
		if val > res.Max {
			res.Max = val
		}
	}
	if trials > 0 {
		res.Mean = sum / float64(trials)
	}
	return res
}

// --- Kelsen's Theorem 1 ([5]; the paper's Theorem 3) ---

// KelsenK returns k(H) = (log n + 2)^{2^d − 1} · δ^{2^d − 1}: the
// multiple of D(H,w,p) the tail is measured against.
func KelsenK(n, d int, delta float64) float64 {
	exp := math.Pow(2, float64(d)) - 1
	return math.Pow(mathx.Log2(float64(n))+2, exp) * math.Pow(delta, exp)
}

// KelsenTailProb returns p(H) = (2^d·⌈log n⌉·m)^{d−1} · log n ·
// (4e/δ)^{(δ−1)/4}: the probability bound of Theorem 3. Values above 1
// mean the bound is vacuous at these parameters (common at small n —
// that emptiness is itself reported in experiment T9).
func KelsenTailProb(n, d, m int, delta float64) float64 {
	if delta <= 1 {
		return 1
	}
	logn := mathx.Log2(float64(n))
	base := math.Pow(2, float64(d)) * math.Ceil(logn) * float64(m)
	lead := math.Pow(base, float64(d-1)) * logn
	tail := math.Pow(4*math.E/delta, (delta-1)/4)
	return lead * tail
}

// KelsenCorollary1Threshold returns the (log n)^{2^{d+1}}·D threshold of
// Corollary 1 (δ = log² n), whose failure probability is
// n^{−Θ(log n·log log n)}.
func KelsenCorollary1Threshold(n, d int, dVal float64) float64 {
	return math.Pow(mathx.Log2(float64(n)), math.Pow(2, float64(d+1))) * dVal
}

// --- Section 4: Kim–Vu sharpening ---

// KimVuA returns a_r = 8^r·(r!)^{1/2} (the constant of Corollary 3 with
// r = k−j).
func KimVuA(r int) float64 {
	return math.Pow(8, float64(r)) * math.Sqrt(mathx.Factorial(r))
}

// KimVuThresholdFactor returns 1 + a_{k−j}·λ^{k−j}: the multiple of
// (Δ_{|X|+k})^j in Corollary 3.
func KimVuThresholdFactor(kMinusJ int, lambda float64) float64 {
	return 1 + KimVuA(kMinusJ)*mathx.PowInt(lambda, kMinusJ)
}

// KimVuTailProb returns 2e²·e^{−λ}·n^{k−j−1}: the failure probability of
// Corollary 3.
func KimVuTailProb(n int, kMinusJ int, lambda float64) float64 {
	return 2 * math.E * math.E * math.Exp(-lambda) * mathx.PowInt(float64(n), kMinusJ-1)
}

// --- Migration bounds (Corollary 2 vs Corollary 4) ---

// KelsenMigrationFactor returns (log n)^{2^{k−j}+1}: Kelsen's per-stage
// bound on the increase of d_{j−|X|} contributed by dimension-k edges,
// as a multiple of Δ_k(H) (Corollary 2).
func KelsenMigrationFactor(n, k, j int) float64 {
	return math.Pow(mathx.Log2(float64(n)), math.Pow(2, float64(k-j))+1)
}

// KimVuMigrationFactor returns (log n)^{2(k−j)}: the paper's sharpened
// bound (Corollary 4), "much smaller" than Kelsen's for k−j ≥ 2.
func KimVuMigrationFactor(n, k, j int) float64 {
	return math.Pow(mathx.Log2(float64(n)), 2*float64(k-j))
}

// --- The migration polynomial of Section 3 ---

// MigrationPolynomial constructs the weighted hypergraph (H', w') the
// analysis bounds edge migration with. Given a set X and levels
// j < k ≤ d−|X|: the edges of H' are all (k−j)-subsets Y of the petals
// Z ∈ N_k(X, H) ("all the potential ways in which an edge of size
// |X|+k can lose k−j vertices"), and w'(Y) counts the edges Z ∈
// N_k(X,H) containing Y — the number of size-|X|+j edges around X that
// appear if Y is fully added to the MIS. S(H',w',p) then upper-bounds
// the one-stage increase of |N_j(X,H)|.
func MigrationPolynomial(h *hypergraph.Hypergraph, x hypergraph.Edge, j, k int) *Weighted {
	acc := make(map[string]float64)
	var keys []string
	for _, e := range h.Edges() {
		if len(e) != len(x)+k || !hypergraph.ContainsSorted(e, x) {
			continue
		}
		z := hypergraph.DiffSorted(e, x) // the petal, |z| = k
		// Enumerate (k−j)-subsets of z.
		var sub hypergraph.Edge
		kk := len(z)
		for mask := uint32(1); mask < uint32(1)<<uint(kk); mask++ {
			if popcount(mask) != k-j {
				continue
			}
			sub = sub[:0]
			for b := 0; b < kk; b++ {
				if mask&(1<<uint(b)) != 0 {
					sub = append(sub, z[b])
				}
			}
			key := edgeKey(sub)
			if _, seen := acc[key]; !seen {
				keys = append(keys, key)
			}
			acc[key]++
		}
	}
	w := &Weighted{N: h.N()}
	for _, key := range keys {
		w.Edges = append(w.Edges, decodeEdgeKey(key))
		w.Weights = append(w.Weights, acc[key])
	}
	return w
}

func decodeEdgeKey(key string) hypergraph.Edge {
	e := make(hypergraph.Edge, len(key)/4)
	for i := range e {
		e[i] = hypergraph.V(uint32(key[4*i])<<24 | uint32(key[4*i+1])<<16 |
			uint32(key[4*i+2])<<8 | uint32(key[4*i+3]))
	}
	return e
}

func popcount(x uint32) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

// Lemma4Bound returns (Δ_{|X|+k}(H))^j — Kelsen's Lemma 3 ([5] Lemma 3,
// the paper's Lemma 4) upper bound on D(H',w',p) for the migration
// polynomial.
func Lemma4Bound(tab *hypergraph.DegreeTable, xLen, j, k int) float64 {
	return mathx.PowInt(tab.DeltaI(xLen+k), j)
}
