package concentration

import (
	"math"
	"testing"

	"repro/internal/hypergraph"
	"repro/internal/rng"
)

func TestEvaluateCountsBlueEdges(t *testing.T) {
	h := hypergraph.NewBuilder(4).AddEdge(0, 1).AddEdge(2, 3).MustBuild()
	w := FromHypergraph(h)
	blue := []bool{true, true, true, false}
	if got := w.Evaluate(blue); got != 1 {
		t.Fatalf("S = %v, want 1", got)
	}
	blue[3] = true
	if got := w.Evaluate(blue); got != 2 {
		t.Fatalf("S = %v, want 2", got)
	}
}

func TestExpectationSimple(t *testing.T) {
	// Two disjoint edges of size 2: E[S] = 2p².
	h := hypergraph.NewBuilder(4).AddEdge(0, 1).AddEdge(2, 3).MustBuild()
	w := FromHypergraph(h)
	p := 0.3
	if got, want := w.Expectation(p), 2*p*p; math.Abs(got-want) > 1e-12 {
		t.Fatalf("E[S] = %v, want %v", got, want)
	}
}

func TestPartialExpectation(t *testing.T) {
	// Edges {0,1,2} and {0,1,3}: P({0,1}) = 2p.
	h := hypergraph.NewBuilder(4).AddEdge(0, 1, 2).AddEdge(0, 1, 3).MustBuild()
	w := FromHypergraph(h)
	p := 0.25
	if got := w.PartialExpectation(p, hypergraph.Edge{0, 1}); math.Abs(got-2*p) > 1e-12 {
		t.Fatalf("P({0,1}) = %v, want %v", got, 2*p)
	}
	// P(∅) = E[S].
	if got := w.PartialExpectation(p, nil); math.Abs(got-w.Expectation(p)) > 1e-12 {
		t.Fatal("P(∅) != E[S]")
	}
}

func TestDExceedsExpectation(t *testing.T) {
	s := rng.New(1)
	h := hypergraph.RandomMixed(s, 20, 30, 2, 4)
	w := FromHypergraph(h)
	for _, p := range []float64{0.1, 0.3, 0.7} {
		if w.D(p) < w.Expectation(p)-1e-12 {
			t.Fatalf("D < E[S] at p=%v", p)
		}
	}
}

func TestDIsMaxOfPartials(t *testing.T) {
	h := hypergraph.NewBuilder(5).
		AddEdge(0, 1, 2).AddEdge(0, 1, 3).AddEdge(0, 1, 4).MustBuild()
	w := FromHypergraph(h)
	p := 0.1
	// x may be a full edge, giving P(x) = w(e) = 1, which dominates
	// P({0,1}) = 3p = 0.3, E[S] = 3p³, and the singletons (3p²). This is
	// why D(H,w,p) ≥ max_e w(e) always.
	if got := w.D(p); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("D = %v, want 1", got)
	}
	// The {0,1} partial is still what dominates among *proper* subsets.
	if got := w.PartialExpectation(p, hypergraph.Edge{0, 1}); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("P({0,1}) = %v, want 0.3", got)
	}
}

func TestMonteCarloTailMatchesBinomial(t *testing.T) {
	// Single edge {0}: S = C_0, so Pr[S > 0.5] = p exactly.
	h := hypergraph.NewBuilder(1).AddEdge(0).MustBuild()
	w := FromHypergraph(h)
	res := MonteCarloTail(w, 0.3, 0.5, 50000, rng.New(2))
	if math.Abs(res.Probability()-0.3) > 0.01 {
		t.Fatalf("tail = %v, want ≈ 0.3", res.Probability())
	}
	if math.Abs(res.Mean-0.3) > 0.01 {
		t.Fatalf("mean = %v", res.Mean)
	}
}

func TestMonteCarloMeanMatchesExpectation(t *testing.T) {
	s := rng.New(3)
	h := hypergraph.RandomMixed(s, 15, 25, 2, 3)
	w := FromHypergraph(h)
	p := 0.4
	res := MonteCarloTail(w, p, math.Inf(1), 40000, rng.New(4))
	want := w.Expectation(p)
	if math.Abs(res.Mean-want) > 0.05*want+0.02 {
		t.Fatalf("empirical mean %v vs E[S] %v", res.Mean, want)
	}
	if res.Exceed != 0 {
		t.Fatal("nothing exceeds +Inf")
	}
}

func TestKelsenBoundHoldsEmpirically(t *testing.T) {
	// The Theorem 3 threshold k(H)·D is enormous; empirically S must
	// essentially never exceed it.
	s := rng.New(5)
	h := hypergraph.RandomUniform(s, 30, 60, 3)
	w := FromHypergraph(h)
	p := 0.2
	threshold := KelsenK(30, 3, 2) * w.D(p)
	res := MonteCarloTail(w, p, threshold, 5000, rng.New(6))
	if res.Exceed != 0 {
		t.Fatalf("S exceeded the Kelsen threshold %v in %d/%d trials (max %v)",
			threshold, res.Exceed, res.Trials, res.Max)
	}
}

func TestKelsenTailProbShape(t *testing.T) {
	// Larger δ → smaller tail probability.
	a := KelsenTailProb(1024, 3, 100, 8)
	b := KelsenTailProb(1024, 3, 100, 64)
	if b >= a {
		t.Fatalf("tail prob not decreasing in δ: %v vs %v", a, b)
	}
	if KelsenTailProb(1024, 3, 100, 0.5) != 1 {
		t.Fatal("δ ≤ 1 should yield the vacuous bound 1")
	}
}

func TestKimVuFactorGrowth(t *testing.T) {
	if KimVuA(1) != 8 {
		t.Fatalf("a_1 = %v", KimVuA(1))
	}
	if got, want := KimVuA(2), 64*math.Sqrt(2); math.Abs(got-want) > 1e-9 {
		t.Fatalf("a_2 = %v, want %v", got, want)
	}
	f := KimVuThresholdFactor(2, 3)
	if f <= 1 {
		t.Fatalf("factor = %v", f)
	}
}

func TestKimVuTailDecaysInLambda(t *testing.T) {
	a := KimVuTailProb(1024, 2, 5)
	b := KimVuTailProb(1024, 2, 50)
	if b >= a {
		t.Fatal("Kim–Vu tail not decaying in λ")
	}
}

func TestMigrationFactorComparison(t *testing.T) {
	// The paper's claim: (log n)^{2(k−j)} ≪ (log n)^{2^{k−j}+1} once
	// k−j ≥ 2 (strictly smaller exponent: 2r < 2^r+1 for r ≥ 2... equal
	// at r=2? 4 vs 5 — smaller; r=3: 6 vs 9).
	n := 1 << 16
	for _, r := range []int{2, 3, 4} {
		kel := KelsenMigrationFactor(n, r+2, 2)
		kv := KimVuMigrationFactor(n, r+2, 2)
		if kv >= kel {
			t.Fatalf("k−j=%d: Kim–Vu factor %v not smaller than Kelsen %v", r, kv, kel)
		}
	}
}

func TestMigrationPolynomialSunflower(t *testing.T) {
	// Sunflower with core {c0,c1} and 5 petals of size 3 (edges size 5).
	// X = core, k = 3, j = 1: edges of H' are 2-subsets of each petal
	// (3 per petal, disjoint petals → 15 edges), each with weight 1.
	s := rng.New(7)
	h := hypergraph.Sunflower(s, 60, 2, 3, 5)
	core := hypergraph.Edge(nil)
	// Recover the core as the intersection of the first two edges.
	e0, e1 := h.Edge(0), h.Edge(1)
	for _, v := range e0 {
		if hypergraph.ContainsSorted(e1, hypergraph.Edge{v}) {
			core = append(core, v)
		}
	}
	if len(core) != 2 {
		t.Fatalf("core recovery failed: %v", core)
	}
	w := MigrationPolynomial(h, core, 1, 3)
	if len(w.Edges) != 15 {
		t.Fatalf("|E'| = %d, want 15", len(w.Edges))
	}
	for i, wt := range w.Weights {
		if wt != 1 {
			t.Fatalf("weight[%d] = %v, want 1 (disjoint petals)", i, wt)
		}
		if len(w.Edges[i]) != 2 {
			t.Fatalf("edge size %d, want k−j = 2", len(w.Edges[i]))
		}
	}
}

func TestMigrationPolynomialSharedPetals(t *testing.T) {
	// Two edges sharing X = {0} and overlapping petals:
	// {0,1,2} and {0,1,3}, k = 2, j = 1: Y runs over 1-subsets of
	// petals; Y={1} has weight 2 (both petals contain it).
	h := hypergraph.NewBuilder(4).AddEdge(0, 1, 2).AddEdge(0, 1, 3).MustBuild()
	w := MigrationPolynomial(h, hypergraph.Edge{0}, 1, 2)
	var w1 float64
	for i, e := range w.Edges {
		if len(e) == 1 && e[0] == 1 {
			w1 = w.Weights[i]
		}
	}
	if w1 != 2 {
		t.Fatalf("w'({1}) = %v, want 2", w1)
	}
}

func TestLemma4BoundDominatesD(t *testing.T) {
	// Lemma 4: D(H',w',p) ≤ (Δ_{|X|+k}(H))^j for the migration
	// polynomial with p below BL's marking probability.
	s := rng.New(8)
	h := hypergraph.LayeredMigration(s, 80, 1, 4, 5, 12)
	tab := hypergraph.BuildDegreeTable(h)
	x := hypergraph.Edge{h.Edge(0)[0]} // a core vertex
	j, k := 1, 3
	if len(x)+k > h.Dim() {
		t.Skip("instance too shallow")
	}
	w := MigrationPolynomial(h, x, j, k)
	if len(w.Edges) == 0 {
		t.Skip("empty migration polynomial")
	}
	d := h.Dim()
	p := 1.0 / (math.Pow(2, float64(d+1)) * tab.Delta())
	dVal := w.D(p)
	bound := Lemma4Bound(tab, len(x), j, k)
	if dVal > bound+1e-9 {
		t.Fatalf("D(H',w',p) = %v exceeds Lemma 4 bound %v", dVal, bound)
	}
}

func TestWeightedDim(t *testing.T) {
	h := hypergraph.NewBuilder(5).AddEdge(0, 1).AddEdge(1, 2, 3).MustBuild()
	if got := FromHypergraph(h).Dim(); got != 3 {
		t.Fatalf("dim = %d", got)
	}
}
