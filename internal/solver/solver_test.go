package solver

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/par"
)

// Fake algorithm ids well clear of the real constants so the test
// registrations never collide with solver packages (which are not
// imported by this test binary anyway).
const (
	testAlgoA Algorithm = 100 + iota
	testAlgoB
	testAlgoC
)

func testRegister(t *testing.T, d Descriptor) {
	t.Helper()
	if d.Solve == nil {
		d.Solve = func(Request) (Outcome, error) { return Outcome{}, nil }
	}
	Register(d)
	t.Cleanup(func() {
		delete(registry, d.Algo)
		for i := range ordered {
			if ordered[i].Algo == d.Algo {
				ordered = append(ordered[:i], ordered[i+1:]...)
				break
			}
		}
	})
}

func TestRegistryLookupAndNames(t *testing.T) {
	testRegister(t, Descriptor{Algo: testAlgoB, Name: "zzz-b"})
	testRegister(t, Descriptor{Algo: testAlgoA, Name: "zzz-a"})

	if d, ok := Lookup(testAlgoA); !ok || d.Name != "zzz-a" {
		t.Fatalf("Lookup(testAlgoA) = %+v, %t", d, ok)
	}
	if d, ok := LookupName("zzz-b"); !ok || d.Algo != testAlgoB {
		t.Fatalf("LookupName(zzz-b) = %+v, %t", d, ok)
	}
	if _, ok := LookupName("nope"); ok {
		t.Fatal("LookupName(nope) succeeded")
	}
	// Descriptors/Names are ordered by Algorithm value regardless of
	// registration order.
	names := Names()
	ia, ib := -1, -1
	for i, n := range names {
		switch n {
		case "zzz-a":
			ia = i
		case "zzz-b":
			ib = i
		}
	}
	if ia < 0 || ib < 0 || ia > ib {
		t.Fatalf("Names() order wrong: %v", names)
	}
	if testAlgoA.String() != "zzz-a" {
		t.Fatalf("String() = %q", testAlgoA.String())
	}
	if Auto.String() != "auto" {
		t.Fatalf("Auto.String() = %q", Auto.String())
	}
}

func TestRegisterRejectsDuplicatesAndReservedNames(t *testing.T) {
	testRegister(t, Descriptor{Algo: testAlgoA, Name: "zzz-a"})
	mustPanic := func(name string, d Descriptor) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: Register did not panic", name)
			}
		}()
		Register(d)
	}
	mustPanic("dup algo", Descriptor{Algo: testAlgoA, Name: "other", Solve: func(Request) (Outcome, error) { return Outcome{}, nil }})
	mustPanic("dup name", Descriptor{Algo: testAlgoB, Name: "zzz-a", Solve: func(Request) (Outcome, error) { return Outcome{}, nil }})
	mustPanic("reserved", Descriptor{Algo: testAlgoB, Name: "auto", Solve: func(Request) (Outcome, error) { return Outcome{}, nil }})
	mustPanic("nil solve", Descriptor{Algo: testAlgoB, Name: "zzz-b"})
}

func TestResolveUsesAutoRoles(t *testing.T) {
	testRegister(t, Descriptor{Algo: testAlgoA, Name: "zzz-a", AutoMaxDim: 2})
	testRegister(t, Descriptor{Algo: testAlgoB, Name: "zzz-b", AutoMaxDim: 5})
	testRegister(t, Descriptor{Algo: testAlgoC, Name: "zzz-c", AutoDefault: true})

	cases := []struct {
		dim  int
		want Algorithm
	}{
		{0, testAlgoA}, {1, testAlgoA}, {2, testAlgoA},
		{3, testAlgoB}, {5, testAlgoB},
		{6, testAlgoC}, {40, testAlgoC},
	}
	for _, c := range cases {
		if got := Resolve(c.dim, Auto); got != c.want {
			t.Errorf("Resolve(dim=%d, Auto) = %v, want %v", c.dim, got, c.want)
		}
	}
	// Non-auto algorithms pass through untouched.
	if got := Resolve(40, testAlgoA); got != testAlgoA {
		t.Errorf("Resolve(non-auto) = %v", got)
	}
}

func TestLoopBudgetAndRounds(t *testing.T) {
	limit := errors.New("limit hit")
	lp := &Loop{MaxRounds: 3, LimitErr: limit, Unit: "stage"}
	for i := 0; i < 3; i++ {
		if err := lp.Begin(10-i, 5, 3); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		lp.End(1)
	}
	if lp.Rounds() != 3 {
		t.Fatalf("Rounds() = %d", lp.Rounds())
	}
	err := lp.Begin(7, 5, 3)
	if !errors.Is(err, limit) {
		t.Fatalf("budget error = %v, want wrapped sentinel", err)
	}
}

func TestLoopContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	lp := &Loop{Ctx: ctx, MaxRounds: 100, LimitErr: errors.New("x")}
	if err := lp.Begin(1, 1, 1); err != nil {
		t.Fatal(err)
	}
	lp.End(0)
	cancel()
	if err := lp.Check(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Check() = %v", err)
	}
	if err := lp.Begin(1, 1, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("Begin() = %v", err)
	}
}

func TestLoopObserverRecords(t *testing.T) {
	var got []Round
	lp := &Loop{MaxRounds: 10, LimitErr: errors.New("x"), Observer: func(r Round) { got = append(got, r) }}
	if err := lp.Begin(9, 4, 3); err != nil {
		t.Fatal(err)
	}
	lp.Note(2, 2)
	lp.End(5)
	if err := lp.Begin(4, 2, 2); err != nil {
		t.Fatal(err)
	}
	lp.End(4)
	if len(got) != 2 {
		t.Fatalf("observer saw %d rounds", len(got))
	}
	want0 := Round{Round: 0, N: 9, M: 2, Dim: 2, Decided: 5, Elapsed: got[0].Elapsed}
	if got[0] != want0 {
		t.Fatalf("round 0 = %+v, want %+v", got[0], want0)
	}
	if got[1].Round != 1 || got[1].N != 4 || got[1].Decided != 4 {
		t.Fatalf("round 1 = %+v", got[1])
	}
	if got[0].Elapsed < 0 || got[0].Elapsed > time.Minute {
		t.Fatalf("implausible elapsed %v", got[0].Elapsed)
	}
}

func TestTee(t *testing.T) {
	if Tee(nil, nil) != nil {
		t.Fatal("Tee(nil, nil) != nil")
	}
	calls := 0
	one := RoundObserver(func(Round) { calls++ })
	Tee(one, nil)(Round{})
	Tee(nil, one)(Round{})
	Tee(one, one)(Round{})
	if calls != 4 {
		t.Fatalf("calls = %d, want 4", calls)
	}
}

func TestWorkspaceBuffersZeroedAtCheckout(t *testing.T) {
	ws := NewWorkspace()
	ws.Reset(130, par.Engine{P: 1})
	b := ws.Bits(0)
	b.Add(5)
	b.Add(129)
	ints := ws.Ints(0, 40)
	ints[7] = 9
	bools := ws.Bools(0, 40)
	bools[3] = true
	verts := ws.Verts(0, 16)
	verts[2] = 11

	ws.Poison()

	if got := ws.Bits(0); got.Count() != 0 {
		t.Fatalf("Bits not zeroed after poison: %d set", got.Count())
	}
	for i, v := range ws.Ints(0, 40) {
		if v != 0 {
			t.Fatalf("Ints[%d] = %d after poison", i, v)
		}
	}
	for i, v := range ws.Bools(0, 40) {
		if v {
			t.Fatalf("Bools[%d] true after poison", i)
		}
	}
	for i, v := range ws.Verts(0, 16) {
		if v != 0 {
			t.Fatalf("Verts[%d] = %d after poison", i, v)
		}
	}
	// Distinct slots are distinct buffers.
	a, c := ws.Ints(1, 8), ws.Ints(2, 8)
	a[0] = 1
	if c[0] != 0 {
		t.Fatal("slots share storage")
	}
	// Sub-workspaces are distinct from their parents.
	if ws.Sub() == ws || ws.Sub() != ws.Sub() {
		t.Fatal("Sub() identity broken")
	}
	sb := ws.Sub()
	sb.Reset(64, par.Engine{})
	if &sb.Scratch == &ws.Scratch {
		t.Fatal("sub shares scratch")
	}
}

func TestPoolBounded(t *testing.T) {
	p := NewPool(2)
	a, b, c := NewWorkspace(), NewWorkspace(), NewWorkspace()
	p.Put(a)
	p.Put(b)
	p.Put(c) // dropped: pool full
	if p.Len() != 2 {
		t.Fatalf("Len = %d, want 2", p.Len())
	}
	g1, g2 := p.Get(), p.Get()
	if g1 != a || g2 != b {
		t.Fatal("pool is not FIFO over its retained workspaces")
	}
	if p.Len() != 0 {
		t.Fatalf("Len = %d, want 0", p.Len())
	}
	if p.Get() == nil {
		t.Fatal("empty pool must mint a workspace")
	}
	p.Put(nil) // must not panic or park a nil
	if p.Len() != 0 {
		t.Fatal("nil was parked")
	}
}
