package solver

import (
	"context"
	"fmt"
	"time"

	"repro/internal/par"
)

// Round is one per-round telemetry record emitted by the Loop driver.
// N, M and Dim describe the residual instance entering the round;
// Decided counts the vertices the round colored (into or out of the
// IS); Elapsed is the round's wall time. The JSON shape is the
// ?trace=1 payload of the service's solve endpoint.
type Round struct {
	Round   int           `json:"round"`
	N       int           `json:"n"`
	M       int           `json:"m"`
	Dim     int           `json:"dim"`
	Decided int           `json:"decided"`
	Elapsed time.Duration `json:"elapsed_ns"`
}

// RoundObserver receives one Round record as each round completes.
// Observers run on the solver goroutine and must be cheap; they see
// telemetry only and can never influence results.
type RoundObserver func(Round)

// Tee composes observers, skipping nil ones. It returns nil when both
// are nil, so callers can chain unconditionally.
func Tee(a, b RoundObserver) RoundObserver {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return func(r Round) {
		a(r)
		b(r)
	}
}

// Loop drives one solver run's outer round loop: the context check at
// the top of every round, the round counter, the MaxRounds/MaxStages
// budget, and the telemetry emission every solver previously
// hand-rolled. The cost accumulator rides along so round bodies charge
// through one handle.
//
// Usage per round:
//
//	for {
//	    ... (optionally lp.Check() before the residual shape is known)
//	    if <terminal> { break }
//	    if err := lp.Begin(n, m, dim); err != nil { return nil, err }
//	    ... round body ...
//	    lp.End(decided)
//	}
//	res.Rounds = lp.Rounds()
type Loop struct {
	// Ctx, if non-nil, is checked by Check and Begin; the loop returns
	// ctx.Err() as soon as the context is done.
	Ctx context.Context
	// Cost is the run's PRAM cost accumulator (may be nil).
	Cost *par.Cost
	// MaxRounds bounds the rounds Begin admits; exceeding it returns
	// LimitErr wrapped with context. Callers default it before
	// constructing the loop, so 0 here means "no rounds allowed".
	MaxRounds int
	// LimitErr is the sentinel wrapped into the budget error.
	LimitErr error
	// Unit names a round in the budget error ("round", "stage").
	Unit string
	// Observer, if non-nil, receives a Round record at every End.
	Observer RoundObserver

	round   int
	cur     Round
	started time.Time
}

// Check is the bare context check, for loops whose residual shape is
// not yet known at the top of the round (KUW runs its filter phase
// first). Begin also checks, so loops that know their shape up front
// never need Check.
func (l *Loop) Check() error {
	if l.Ctx != nil {
		if err := l.Ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Begin opens the next round over a residual instance of n undecided
// vertices, m edges and dimension dim: it checks the context, then the
// round budget, and opens the telemetry record.
func (l *Loop) Begin(n, m, dim int) error {
	if err := l.Check(); err != nil {
		return err
	}
	if l.round >= l.MaxRounds {
		unit := l.Unit
		if unit == "" {
			unit = "round"
		}
		return fmt.Errorf("%w after %d %ss (%d undecided)", l.LimitErr, l.round, unit, n)
	}
	l.cur = Round{Round: l.round, N: n, M: m, Dim: dim}
	if l.Observer != nil {
		l.started = time.Now()
	}
	return nil
}

// Note records the residual edge count and dimension for loops that
// only learn them mid-round (Luby counts live edges in its degree
// pass).
func (l *Loop) Note(m, dim int) {
	l.cur.M = m
	l.cur.Dim = dim
}

// End closes the round opened by Begin with its decided-vertex count,
// emitting the telemetry record and advancing the round counter.
func (l *Loop) End(decided int) {
	if l.Observer != nil {
		l.cur.Decided = decided
		l.cur.Elapsed = time.Since(l.started)
		l.Observer(l.cur)
	}
	l.round++
}

// Rounds returns the number of completed (Begin…End) rounds.
func (l *Loop) Rounds() int { return l.round }
