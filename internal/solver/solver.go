// Package solver is the shared runtime layer under the five MIS
// solvers (SBL, BL, KUW, Luby, PermBL) and the sequential greedy
// baseline. The algorithms differ, but their operational skeleton is
// identical — a per-round residual shrink driven by decision masks
// under a round budget — and this package owns everything that
// skeleton needs:
//
//   - Registry: each solver package registers a Descriptor (name,
//     dimension constraints, auto-selection role, entry point) at init
//     time, and the public hypermis API dispatches through Lookup /
//     Resolve instead of a hand-maintained switch. A new algorithm is
//     a new Register call, not a sixth copy of the dispatch.
//   - Loop (loop.go): the round-loop driver centralizing context
//     checks, round counting, MaxRounds/MaxStages budgets and the
//     per-round telemetry hook.
//   - Workspace / Pool (workspace.go): pooled per-job buffers — CSR
//     round arenas, bitset masks, decision slices — so a steady-state
//     service job allocates ~zero arena memory.
//
// Import discipline: the solver packages import this one (for
// Workspace, Loop and registration); this package imports only the
// data layers (hypergraph, bitset, par, rng). The public hypermis
// package sits on top and re-exports the types that appear in its API.
package solver

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/hypergraph"
	"repro/internal/par"
	"repro/internal/rng"
)

// Algorithm identifies an MIS solver. The hypermis package aliases
// this type and re-exports the constants as AlgAuto, AlgSBL, … — the
// values here are the single source of truth.
type Algorithm int

const (
	// Auto is not a solver: Resolve maps it to a registered algorithm
	// by the instance's dimension (see Descriptor.AutoMaxDim).
	Auto Algorithm = iota
	// SBL is the paper's sampling algorithm (Algorithm 1).
	SBL
	// BL is the Beame–Luby marking algorithm (Algorithm 2).
	BL
	// KUW is the Karp–Upfal–Wigderson O(√n)-round algorithm.
	KUW
	// Luby is Luby's graph algorithm (dimension ≤ 2).
	Luby
	// Greedy is the sequential linear-time baseline.
	Greedy
	// PermBL is the random-permutation Beame–Luby algorithm.
	PermBL
)

// String names the algorithm via the registry ("auto" for Auto).
func (a Algorithm) String() string {
	if a == Auto {
		return "auto"
	}
	if d, ok := Lookup(a); ok {
		return d.Name
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Request is the uniform solver invocation the registry dispatches:
// everything a registered entry point needs, algorithm-specific knobs
// included (solvers ignore the ones that do not apply to them).
type Request struct {
	// H is the input hypergraph; solvers run on all its vertices.
	H *hypergraph.Hypergraph
	// Stream provides all randomness for the run.
	Stream *rng.Stream
	// Cost, if non-nil, accumulates idealized PRAM work/depth charges.
	Cost *par.Cost
	// Ws is the run's workspace. The dispatcher always supplies one
	// (callers without a pooled workspace get a fresh one).
	Ws *Workspace
	// Ctx, if non-nil, cancels the run cooperatively at round
	// boundaries.
	Ctx context.Context
	// Par bounds worker parallelism (zero value = whole machine).
	Par par.Engine
	// Observer, if non-nil, receives one telemetry record per outer
	// round of the top-level solver.
	Observer RoundObserver

	// Alpha is SBL's sampling exponent (0 = default).
	Alpha float64
	// GreedyTail makes SBL finish with the sequential solver.
	GreedyTail bool
}

// Outcome is the uniform result of a registered solve.
type Outcome struct {
	// InIS is the maximal independent set as a vertex mask.
	InIS []bool
	// Rounds is the solver's outer round/stage count (0 for greedy).
	Rounds int
}

// SolveFunc is a registered solver entry point.
type SolveFunc func(Request) (Outcome, error)

// Descriptor declares a solver to the registry.
type Descriptor struct {
	// Algo is the algorithm constant this descriptor serves.
	Algo Algorithm
	// Name is the canonical lowercase name (ParseAlgorithm accepts it,
	// Algorithm.String returns it).
	Name string
	// MaxDim restricts admissible inputs: instances with dimension
	// greater than MaxDim are rejected before dispatch (0 = unbounded).
	MaxDim int
	// AutoMaxDim gives the solver a role in auto-selection: Resolve
	// picks the registered solver with the smallest nonzero AutoMaxDim
	// that is ≥ the instance dimension (0 = no auto role).
	AutoMaxDim int
	// AutoDefault marks the fallback Resolve uses when no AutoMaxDim
	// admits the instance. Exactly one registered solver sets it.
	AutoDefault bool
	// Solve is the entry point.
	Solve SolveFunc
}

// registry is populated by the solver packages' init functions and
// read-only afterwards, so lookups need no locking. ordered mirrors it
// sorted by Algorithm value, maintained at Register time so the
// dispatch-path helpers (Resolve, LookupName, Descriptors) never
// allocate or re-sort per call.
var (
	registry = map[Algorithm]Descriptor{}
	ordered  []Descriptor
)

// Register installs a solver descriptor. It panics on a duplicate
// Algo or Name, or a nil entry point — registration bugs are
// programmer errors and should fail loudly at init.
func Register(d Descriptor) {
	if d.Solve == nil {
		panic(fmt.Sprintf("solver: Register(%q) with nil Solve", d.Name))
	}
	if d.Name == "" || d.Name == "auto" {
		panic(fmt.Sprintf("solver: Register with reserved name %q", d.Name))
	}
	if prev, dup := registry[d.Algo]; dup {
		panic(fmt.Sprintf("solver: duplicate registration for %q/%q", prev.Name, d.Name))
	}
	for _, other := range registry {
		if other.Name == d.Name {
			panic(fmt.Sprintf("solver: duplicate name %q", d.Name))
		}
	}
	registry[d.Algo] = d
	ordered = append(ordered, d)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Algo < ordered[j].Algo })
}

// Lookup returns the descriptor registered for a.
func Lookup(a Algorithm) (Descriptor, bool) {
	d, ok := registry[a]
	return d, ok
}

// LookupName returns the descriptor registered under name.
func LookupName(name string) (Descriptor, bool) {
	for _, d := range ordered {
		if d.Name == name {
			return d, true
		}
	}
	return Descriptor{}, false
}

// Descriptors returns every registered descriptor ordered by
// Algorithm value (the menu order of the public constants). The slice
// is the registry's own ordering — callers must not modify it.
func Descriptors() []Descriptor {
	return ordered
}

// Names returns the registered algorithm names in Descriptors order.
func Names() []string {
	ds := Descriptors()
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = d.Name
	}
	return out
}

// Resolve maps Auto to the concrete algorithm for an instance of the
// given dimension — the registered solver with the smallest nonzero
// AutoMaxDim admitting it, else the AutoDefault solver. Any other
// algorithm is returned unchanged.
func Resolve(dim int, a Algorithm) Algorithm {
	if a != Auto {
		return a
	}
	best, fallback := Algorithm(-1), Algorithm(-1)
	bestCap := int(^uint(0) >> 1)
	for _, d := range Descriptors() {
		if d.AutoMaxDim > 0 && d.AutoMaxDim >= dim && d.AutoMaxDim < bestCap {
			best, bestCap = d.Algo, d.AutoMaxDim
		}
		if d.AutoDefault && fallback < 0 {
			fallback = d.Algo
		}
	}
	if best >= 0 {
		return best
	}
	return fallback
}
