package solver

import (
	"repro/internal/bitset"
	"repro/internal/hypergraph"
	"repro/internal/par"
)

// Workspace bundles every reusable buffer a solver run needs: the CSR
// round arenas (hypergraph.RoundScratch), the packed decision masks,
// and the per-vertex decision/order slices. Buffers are grow-only, so
// a workspace recycled across jobs of similar size reaches a steady
// state where a full solve allocates ~nothing.
//
// Checkout discipline: a run calls Reset(n, eng) once, then draws
// buffers through the slot-indexed accessors. Every accessor returns
// its buffer zeroed, so a recycled workspace can never leak one job's
// decisions into the next — the pooling property test poisons
// workspaces between checkouts to enforce exactly this. Distinct slots
// of one family are distinct buffers; calling an accessor again for
// the same slot re-zeroes and returns the same buffer.
//
// A workspace must not be shared by concurrent runs. Solvers that
// invoke other solvers (SBL runs BL every round and KUW as its tail)
// pass Sub() — a dedicated child workspace recycled with its parent —
// so the caller's masks stay live across the subcall.
type Workspace struct {
	// Scratch is the double-buffered CSR arena set of the fused round
	// pipeline. Reset installs the run's engine into it.
	Scratch hypergraph.RoundScratch

	n     int
	bits  []bitset.Set
	bools [][]bool
	ints  [][]int
	i8s   [][]int8
	i32s  [][]int32
	verts [][]hypergraph.V
	rows  [][][]hypergraph.V
	shard []bitset.Set
	sub   *Workspace
}

// NewWorkspace returns an empty workspace. The zero value is also
// ready; this exists for symmetry with the public hypermis re-export.
func NewWorkspace() *Workspace { return &Workspace{} }

// Reset prepares the workspace for a run over n vertices under eng:
// it sizes the bitset accessors and installs the engine into the round
// scratch. Buffer contents are zeroed lazily at checkout, not here.
func (ws *Workspace) Reset(n int, eng par.Engine) {
	ws.n = n
	ws.Scratch.Eng = eng
}

// Sub returns the workspace for subordinate solver runs (SBL's BL
// rounds and KUW tail), created on first use and recycled with the
// parent. The child shares no buffers with the parent, so the parent's
// masks and round arenas stay valid across the subcall.
func (ws *Workspace) Sub() *Workspace {
	if ws.sub == nil {
		ws.sub = &Workspace{}
	}
	return ws.sub
}

// grow returns bufs[slot] resized to n and zeroed, growing the slot
// table and reallocating only when capacity is insufficient.
func grow[T any](bufs *[][]T, slot, n int) []T {
	for len(*bufs) <= slot {
		*bufs = append(*bufs, nil)
	}
	b := (*bufs)[slot]
	if cap(b) < n {
		b = make([]T, n)
	} else {
		b = b[:n]
		clear(b)
	}
	(*bufs)[slot] = b
	return b
}

// Bits returns the slot-th vertex mask — a zeroed bitset over the n
// vertices Reset declared.
func (ws *Workspace) Bits(slot int) bitset.Set {
	for len(ws.bits) <= slot {
		ws.bits = append(ws.bits, nil)
	}
	ws.bits[slot] = ws.bits[slot].Grow(ws.n)
	return ws.bits[slot]
}

// Bools returns the slot-th boolean buffer, zeroed, of length n.
func (ws *Workspace) Bools(slot, n int) []bool { return grow(&ws.bools, slot, n) }

// Ints returns the slot-th int buffer, zeroed, of length n.
func (ws *Workspace) Ints(slot, n int) []int { return grow(&ws.ints, slot, n) }

// Int8s returns the slot-th int8 buffer, zeroed, of length n.
func (ws *Workspace) Int8s(slot, n int) []int8 { return grow(&ws.i8s, slot, n) }

// Int32s returns the slot-th int32 buffer, zeroed, of length n.
func (ws *Workspace) Int32s(slot, n int) []int32 { return grow(&ws.i32s, slot, n) }

// Verts returns the slot-th vertex buffer, zeroed, of length n. Pass
// n = 0 for an empty append target with recycled capacity (candidate
// lists).
func (ws *Workspace) Verts(slot, n int) []hypergraph.V { return grow(&ws.verts, slot, n) }

// AdjRows returns the adjacency-row buffer, zeroed, of length n (one
// slice header per vertex; Luby's CSR adjacency points them into a
// Verts arena).
func (ws *Workspace) AdjRows(n int) [][]hypergraph.V { return grow(&ws.rows, 0, n) }

// ShardSets returns the per-shard bitset pool for parallel scatter
// writes (bitset.UnionShards grows and zeroes the sets it uses, so no
// checkout zeroing is needed).
func (ws *Workspace) ShardSets() *[]bitset.Set { return &ws.shard }

// Poison overwrites every buffer the workspace has ever handed out
// with garbage (and recurses into the sub-workspace and the round
// scratch). Tests call it between pool checkouts: because accessors
// zero at checkout and the round pipeline fully writes its arenas, a
// poisoned workspace must still produce bit-identical results — any
// difference is a cross-job contamination bug.
func (ws *Workspace) Poison() {
	for _, b := range ws.bits {
		for i := range b {
			b[i] = 0xDEADBEEFDEADBEEF
		}
	}
	for _, b := range ws.bools {
		for i := range b {
			b[i] = true
		}
	}
	for _, b := range ws.ints {
		for i := range b {
			b[i] = -0x5EED
		}
	}
	for _, b := range ws.i8s {
		for i := range b {
			b[i] = -86
		}
	}
	for _, b := range ws.i32s {
		for i := range b {
			b[i] = -0x5EED
		}
	}
	for _, b := range ws.verts {
		for i := range b {
			b[i] = hypergraph.V(-1)
		}
	}
	for _, rows := range ws.rows {
		for i := range rows {
			rows[i] = nil
		}
	}
	for _, b := range ws.shard {
		for i := range b {
			b[i] = 0xDEADBEEFDEADBEEF
		}
	}
	ws.Scratch.Poison()
	if ws.sub != nil {
		ws.sub.Poison()
	}
}

// Pool is a bounded free list of workspaces. The service sizes it by
// its parallelism token pool — the number of jobs that can hold a
// workspace simultaneously — so steady-state traffic recycles a fixed
// set of warm workspaces instead of growing one per request. Get never
// blocks (an empty pool hands out a fresh workspace) and Put never
// blocks (a full pool drops the workspace for the GC).
type Pool struct {
	free chan *Workspace
}

// NewPool returns a pool retaining at most size workspaces (size < 1
// is treated as 1).
func NewPool(size int) *Pool {
	if size < 1 {
		size = 1
	}
	return &Pool{free: make(chan *Workspace, size)}
}

// Get checks out a workspace, creating one if the pool is empty.
func (p *Pool) Get() *Workspace {
	select {
	case ws := <-p.free:
		return ws
	default:
		return NewWorkspace()
	}
}

// Put returns a workspace to the pool; if the pool is already full the
// workspace is dropped. The caller must not use ws afterwards.
func (p *Pool) Put(ws *Workspace) {
	if ws == nil {
		return
	}
	select {
	case p.free <- ws:
	default:
	}
}

// Len reports how many workspaces are currently parked in the pool.
func (p *Pool) Len() int { return len(p.free) }
