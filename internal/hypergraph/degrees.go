package hypergraph

import (
	"encoding/binary"
	"math"

	"repro/internal/par"
)

// This file computes the degree structures from Section 3 of the paper.
// For a nonempty vertex set x and 1 ≤ j ≤ d − |x|:
//
//	N_j(x,H) = { y ⊆ V : x ∪ y ∈ E, x ∩ y = ∅, |y| = j }
//	d_j(x,H) = |N_j(x,H)|^{1/j}            (normalized degree)
//	Δ_i(H)   = max{ d_{i−|x|}(x,H) : x ⊆ V, 0 < |x| < i }
//	Δ(H)     = max{ Δ_i(H) : 2 ≤ i ≤ d }
//
// Only subsets x that are contained in at least one edge can have a
// nonzero degree, so the table enumerates, for every edge e, every
// nonempty proper subset x ⊂ e, and counts edges of each size that
// contain x. This is Θ(m·2^d) work, which is the regime BL operates in
// (d ≤ log log n / (4 log log log n), so 2^d is polylogarithmic).

// maxEnumerableDim bounds the edge size for subset enumeration; above
// this, 2^d blows up and the degree table refuses to build.
const maxEnumerableDim = 22

// subsetKey canonically encodes a sorted vertex set. It survives only
// as the key of the brute-force reference DeltaDirect; the production
// structures (DegreeTable, Working, RemoveSupersets) key on hashEdge
// instead, which does not allocate.
func subsetKey(x Edge) string {
	buf := make([]byte, 4*len(x))
	for i, v := range x {
		binary.BigEndian.PutUint32(buf[4*i:], uint32(v))
	}
	return string(buf)
}

// DegreeTable holds, for every vertex subset x contained in some edge,
// the counts |N_j(x,H)| for each j ≥ 1. It answers the Δ queries used by
// the BL marking probability p = 1/(2^{d+1}·Δ(H)).
//
// Entries live in flat struct-of-arrays storage: subsets are spans of
// one []V arena, count rows are spans of one []int32 arena, and the
// shared edgeIndex chains hash-colliding entries. Iteration over all
// entries is therefore a linear arena walk, not a map traversal.
type DegreeTable struct {
	dim int
	ix  edgeIndex // hashEdge(x) → chain of entry ids
	// Per-entry arenas, indexed by entry id:
	xoff   []int32 // len entries+1; entry i's subset is xs[xoff[i]:xoff[i+1]]
	xs     []V     // subset vertex arena
	counts []int32 // row i is counts[i*(dim+1):(i+1)*(dim+1)]; index 0 unused
	zeros  []int32 // dim+1 zeros, appended to counts on insert
}

func newDegreeTable(dim int, capHint int) *DegreeTable {
	return &DegreeTable{
		dim:   dim,
		ix:    newEdgeIndex(capHint),
		xoff:  append(make([]int32, 0, capHint+1), 0),
		zeros: make([]int32, dim+1),
	}
}

// entries returns the number of distinct subsets recorded.
func (t *DegreeTable) entries() int { return t.ix.size() }

// subset returns entry i's vertex set (a view into the arena).
func (t *DegreeTable) subset(i int32) Edge { return t.xs[t.xoff[i]:t.xoff[i+1]] }

// row returns entry i's count vector (index j = |N_j(x,H)|).
func (t *DegreeTable) row(i int32) []int32 {
	w := t.dim + 1
	return t.counts[int(i)*w : (int(i)+1)*w]
}

// lookup returns the entry id for subset x, or -1.
func (t *DegreeTable) lookup(x Edge) int32 {
	return t.ix.find(hashEdge(x), func(id int32) bool { return equalEdge(t.subset(id), x) })
}

// getOrAdd returns the entry id for subset x under the given hash,
// inserting a fresh zero-count entry if absent. The hash is a parameter
// (rather than computed here) so callers that already have it avoid
// rehashing and tests can force collision chains.
func (t *DegreeTable) getOrAdd(hash uint64, x Edge) int32 {
	if id := t.ix.find(hash, func(id int32) bool { return equalEdge(t.subset(id), x) }); id >= 0 {
		return id
	}
	id := int32(t.ix.size())
	t.xs = append(t.xs, x...)
	t.xoff = append(t.xoff, int32(len(t.xs)))
	t.counts = append(t.counts, t.zeros...)
	t.ix.add(hash, id)
	return id
}

// scan enumerates the proper nonempty subsets of edges [lo, hi) and
// accumulates their counts.
func (t *DegreeTable) scan(h *Hypergraph, lo, hi int) {
	var scratch Edge
	for _, e := range h.edges[lo:hi] {
		k := len(e)
		full := uint32(1)<<uint(k) - 1
		for mask := uint32(1); mask < full; mask++ {
			scratch = scratch[:0]
			for b := 0; b < k; b++ {
				if mask&(1<<uint(b)) != 0 {
					scratch = append(scratch, e[b])
				}
			}
			j := k - len(scratch)
			t.row(t.getOrAdd(hashEdge(scratch), scratch))[j]++
		}
	}
}

// merge folds other's entries into t.
func (t *DegreeTable) merge(other *DegreeTable) {
	for i := 0; i < other.entries(); i++ {
		x := other.subset(int32(i))
		dst := t.row(t.getOrAdd(hashEdge(x), x))
		for j, c := range other.row(int32(i)) {
			dst[j] += c
		}
	}
}

// buildShardThreshold is the subset-enumeration work (m·2^d) below
// which a sharded build is not worth the merge cost.
const buildShardThreshold = 1 << 15

// BuildDegreeTable enumerates all edge subsets on the whole machine;
// BuildDegreeTableOn takes an explicit engine. It panics if the
// dimension exceeds maxEnumerableDim (callers control dimension: BL is
// only invoked on small-dimension hypergraphs, by construction in SBL).
func BuildDegreeTable(h *Hypergraph) *DegreeTable {
	return BuildDegreeTableOn(h, par.Engine{})
}

// BuildDegreeTableOn builds the degree table on an explicit engine,
// sharding the subset scan when the m·2^d work is large enough to pay
// for it (the shard count scales with the per-edge 2^d work, so small
// edge lists of large dimension still fan out). Per-shard tables are
// combined by parallel pairwise merging — ceil(log2 shards) rounds —
// since counts are additive. The table's query results (counts, Δ
// vectors) are identical for any engine; only entry iteration order
// can differ between shard counts.
func BuildDegreeTableOn(h *Hypergraph, eng par.Engine) *DegreeTable {
	if h.Dim() > maxEnumerableDim {
		panic("hypergraph: dimension too large for degree enumeration")
	}
	m := len(h.edges)
	perItem := 1 << uint(h.Dim()) // Dim ≤ maxEnumerableDim, checked above
	work := m * perItem
	shards := eng.ShardsFor(m, perItem)
	if shards <= 1 || work < buildShardThreshold {
		t := newDegreeTable(h.Dim(), m)
		t.scan(h, 0, m)
		return t
	}
	locals := make([]*DegreeTable, shards)
	eng.ForShardsWork(nil, m, perItem, shards, func(s, lo, hi int) {
		lt := newDegreeTable(h.Dim(), hi-lo)
		lt.scan(h, lo, hi)
		locals[s] = lt
	})
	// Parallel pairwise merge: in round k, table i absorbs table i+2^k.
	// Each pair merges independently, so the round fans out over the
	// engine; the fold order is fixed by the index arithmetic, not by
	// scheduling.
	for step := 1; step < shards; step <<= 1 {
		pairs := 0
		for i := 0; i+step < shards; i += 2 * step {
			pairs++
		}
		eng.ForShardsWork(nil, pairs, perItem*(m/max(pairs, 1)+1), pairs, func(_, lo, hi int) {
			for p := lo; p < hi; p++ {
				i := p * 2 * step
				a, b := locals[i], locals[i+step]
				switch {
				case a == nil:
					locals[i] = b
				case b == nil:
					// nothing to fold
				default:
					a.merge(b)
				}
			}
		})
	}
	t := locals[0]
	if t == nil {
		t = newDegreeTable(h.Dim(), 0)
	}
	return t
}

// NCount returns |N_j(x,H)| for the sorted set x.
func (t *DegreeTable) NCount(x Edge, j int) int {
	if j < 1 || j > t.dim {
		return 0
	}
	id := t.lookup(x)
	if id < 0 {
		return 0
	}
	return int(t.row(id)[j])
}

// NormDegree returns d_j(x,H) = |N_j(x,H)|^{1/j}.
func (t *DegreeTable) NormDegree(x Edge, j int) float64 {
	c := t.NCount(x, j)
	if c == 0 {
		return 0
	}
	return math.Pow(float64(c), 1/float64(j))
}

// DeltaI returns Δ_i(H): the maximum normalized degree with respect to
// dimension-i edges, i.e. max over subsets x with 0 < |x| < i of
// d_{i−|x|}(x,H). Returns 0 when i < 2 or i > dim.
func (t *DegreeTable) DeltaI(i int) float64 {
	if i < 2 || i > t.dim {
		return 0
	}
	best := 0.0
	for id := 0; id < t.entries(); id++ {
		xlen := int(t.xoff[id+1] - t.xoff[id])
		j := i - xlen
		if j < 1 || j > t.dim {
			continue
		}
		c := t.row(int32(id))[j]
		if c == 0 {
			continue
		}
		d := math.Pow(float64(c), 1/float64(j))
		if d > best {
			best = d
		}
	}
	return best
}

// Delta returns Δ(H) = max_{2 ≤ i ≤ d} Δ_i(H) — the maximum entry of
// AllDeltas. For an edgeless hypergraph it returns 0.
func (t *DegreeTable) Delta() float64 {
	best := 0.0
	for _, d := range t.AllDeltas() {
		if d > best {
			best = d
		}
	}
	return best
}

// AllDeltas returns the vector [Δ_2(H), …, Δ_d(H)] indexed by i
// (index < 2 unused). Computed in one pass over the table.
func (t *DegreeTable) AllDeltas() []float64 {
	deltas := make([]float64, t.dim+1)
	for id := 0; id < t.entries(); id++ {
		xlen := int(t.xoff[id+1] - t.xoff[id])
		row := t.row(int32(id))
		for j := 1; j < len(row); j++ {
			if row[j] == 0 {
				continue
			}
			i := xlen + j
			if i < 2 || i > t.dim {
				continue
			}
			d := math.Pow(float64(row[j]), 1/float64(j))
			if d > deltas[i] {
				deltas[i] = d
			}
		}
	}
	return deltas
}

// MaxDegreeSet returns a subset x and level j attaining d_j(x,H) ≥
// threshold, or nil if none exists. Used by the degree-collapse
// experiment (T6) to locate high-degree witnesses.
func (t *DegreeTable) MaxDegreeSet(threshold float64) (Edge, int) {
	for id := 0; id < t.entries(); id++ {
		row := t.row(int32(id))
		for j := 1; j < len(row); j++ {
			if row[j] == 0 {
				continue
			}
			if math.Pow(float64(row[j]), 1/float64(j)) >= threshold {
				return append(Edge(nil), t.subset(int32(id))...), j
			}
		}
	}
	return nil, 0
}

// NjDirect computes |N_j(x,H)| by scanning all edges — the reference
// implementation the table is property-tested against.
func NjDirect(h *Hypergraph, x Edge, j int) int {
	count := 0
	for _, e := range h.edges {
		if len(e) == len(x)+j && ContainsSorted(e, x) {
			count++
		}
	}
	return count
}

// DeltaDirect computes Δ(H) by brute force over all subsets of all
// edges, independently of DegreeTable (including its hashing);
// reference for property tests.
func DeltaDirect(h *Hypergraph) float64 {
	if h.Dim() > maxEnumerableDim {
		panic("hypergraph: dimension too large")
	}
	seen := make(map[string]bool)
	best := 0.0
	var scratch Edge
	for _, e := range h.edges {
		k := len(e)
		full := uint32(1)<<uint(k) - 1
		for mask := uint32(1); mask < full; mask++ {
			scratch = scratch[:0]
			for b := 0; b < k; b++ {
				if mask&(1<<uint(b)) != 0 {
					scratch = append(scratch, e[b])
				}
			}
			key := subsetKey(scratch)
			if seen[key] {
				continue
			}
			seen[key] = true
			for j := 1; j <= h.Dim()-len(scratch); j++ {
				c := NjDirect(h, scratch, j)
				if c == 0 {
					continue
				}
				i := len(scratch) + j
				if i < 2 {
					continue
				}
				d := math.Pow(float64(c), 1/float64(j))
				if d > best {
					best = d
				}
			}
		}
	}
	return best
}
