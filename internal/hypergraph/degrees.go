package hypergraph

import (
	"encoding/binary"
	"math"
)

// This file computes the degree structures from Section 3 of the paper.
// For a nonempty vertex set x and 1 ≤ j ≤ d − |x|:
//
//	N_j(x,H) = { y ⊆ V : x ∪ y ∈ E, x ∩ y = ∅, |y| = j }
//	d_j(x,H) = |N_j(x,H)|^{1/j}            (normalized degree)
//	Δ_i(H)   = max{ d_{i−|x|}(x,H) : x ⊆ V, 0 < |x| < i }
//	Δ(H)     = max{ Δ_i(H) : 2 ≤ i ≤ d }
//
// Only subsets x that are contained in at least one edge can have a
// nonzero degree, so the table enumerates, for every edge e, every
// nonempty proper subset x ⊂ e, and counts edges of each size that
// contain x. This is Θ(m·2^d) work, which is the regime BL operates in
// (d ≤ log log n / (4 log log log n), so 2^d is polylogarithmic).

// maxEnumerableDim bounds the edge size for subset enumeration; above
// this, 2^d blows up and the degree table refuses to build.
const maxEnumerableDim = 22

// subsetKey canonically encodes a sorted vertex set.
func subsetKey(x Edge) string {
	buf := make([]byte, 4*len(x))
	for i, v := range x {
		binary.BigEndian.PutUint32(buf[4*i:], uint32(v))
	}
	return string(buf)
}

// DegreeTable holds, for every vertex subset x contained in some edge,
// the counts |N_j(x,H)| for each j ≥ 1. It answers the Δ queries used by
// the BL marking probability p = 1/(2^{d+1}·Δ(H)).
type DegreeTable struct {
	dim int
	// counts[key][j] = |N_j(x,H)| where key encodes x; index 0 unused.
	counts map[string][]int32
}

// BuildDegreeTable enumerates all edge subsets. It panics if the
// dimension exceeds maxEnumerableDim (callers control dimension: BL is
// only invoked on small-dimension hypergraphs, by construction in SBL).
func BuildDegreeTable(h *Hypergraph) *DegreeTable {
	if h.Dim() > maxEnumerableDim {
		panic("hypergraph: dimension too large for degree enumeration")
	}
	t := &DegreeTable{dim: h.Dim(), counts: make(map[string][]int32)}
	var scratch Edge
	for _, e := range h.edges {
		k := len(e)
		// Enumerate nonempty proper subsets x of e by bitmask.
		full := uint32(1)<<uint(k) - 1
		for mask := uint32(1); mask < full; mask++ {
			scratch = scratch[:0]
			for b := 0; b < k; b++ {
				if mask&(1<<uint(b)) != 0 {
					scratch = append(scratch, e[b])
				}
			}
			j := k - len(scratch)
			key := subsetKey(scratch)
			row := t.counts[key]
			if row == nil {
				row = make([]int32, t.dim+1)
				t.counts[key] = row
			}
			row[j]++
		}
	}
	return t
}

// NCount returns |N_j(x,H)| for the sorted set x.
func (t *DegreeTable) NCount(x Edge, j int) int {
	if j < 1 || j > t.dim {
		return 0
	}
	row := t.counts[subsetKey(x)]
	if row == nil {
		return 0
	}
	return int(row[j])
}

// NormDegree returns d_j(x,H) = |N_j(x,H)|^{1/j}.
func (t *DegreeTable) NormDegree(x Edge, j int) float64 {
	c := t.NCount(x, j)
	if c == 0 {
		return 0
	}
	return math.Pow(float64(c), 1/float64(j))
}

// DeltaI returns Δ_i(H): the maximum normalized degree with respect to
// dimension-i edges, i.e. max over subsets x with 0 < |x| < i of
// d_{i−|x|}(x,H). Returns 0 when i < 2 or i > dim.
func (t *DegreeTable) DeltaI(i int) float64 {
	if i < 2 || i > t.dim {
		return 0
	}
	best := 0.0
	for key, row := range t.counts {
		xlen := len(key) / 4
		j := i - xlen
		if j < 1 || j > t.dim || row[j] == 0 {
			continue
		}
		d := math.Pow(float64(row[j]), 1/float64(j))
		if d > best {
			best = d
		}
	}
	return best
}

// Delta returns Δ(H) = max_{2 ≤ i ≤ d} Δ_i(H). For an edgeless
// hypergraph it returns 0.
func (t *DegreeTable) Delta() float64 {
	best := 0.0
	for key, row := range t.counts {
		xlen := len(key) / 4
		for j := 1; j <= t.dim-0; j++ {
			if j >= len(row) || row[j] == 0 {
				continue
			}
			i := xlen + j
			if i < 2 || i > t.dim {
				continue
			}
			d := math.Pow(float64(row[j]), 1/float64(j))
			if d > best {
				best = d
			}
		}
	}
	return best
}

// AllDeltas returns the vector [Δ_2(H), …, Δ_d(H)] indexed by i
// (index < 2 unused). Computed in one pass over the table.
func (t *DegreeTable) AllDeltas() []float64 {
	deltas := make([]float64, t.dim+1)
	for key, row := range t.counts {
		xlen := len(key) / 4
		for j := 1; j < len(row); j++ {
			if row[j] == 0 {
				continue
			}
			i := xlen + j
			if i < 2 || i > t.dim {
				continue
			}
			d := math.Pow(float64(row[j]), 1/float64(j))
			if d > deltas[i] {
				deltas[i] = d
			}
		}
	}
	return deltas
}

// MaxDegreeSet returns a subset x and level j attaining d_j(x,H) ≥
// threshold, or nil if none exists. Used by the degree-collapse
// experiment (T6) to locate high-degree witnesses.
func (t *DegreeTable) MaxDegreeSet(threshold float64) (Edge, int) {
	for key, row := range t.counts {
		for j := 1; j < len(row); j++ {
			if row[j] == 0 {
				continue
			}
			if math.Pow(float64(row[j]), 1/float64(j)) >= threshold {
				return decodeKey(key), j
			}
		}
	}
	return nil, 0
}

func decodeKey(key string) Edge {
	x := make(Edge, len(key)/4)
	for i := range x {
		x[i] = V(binary.BigEndian.Uint32([]byte(key[4*i : 4*i+4])))
	}
	return x
}

// NjDirect computes |N_j(x,H)| by scanning all edges — the reference
// implementation the table is property-tested against.
func NjDirect(h *Hypergraph, x Edge, j int) int {
	count := 0
	for _, e := range h.edges {
		if len(e) == len(x)+j && ContainsSorted(e, x) {
			count++
		}
	}
	return count
}

// DeltaDirect computes Δ(H) by brute force over all subsets of all
// edges, independently of DegreeTable; reference for property tests.
func DeltaDirect(h *Hypergraph) float64 {
	if h.Dim() > maxEnumerableDim {
		panic("hypergraph: dimension too large")
	}
	seen := make(map[string]bool)
	best := 0.0
	var scratch Edge
	for _, e := range h.edges {
		k := len(e)
		full := uint32(1)<<uint(k) - 1
		for mask := uint32(1); mask < full; mask++ {
			scratch = scratch[:0]
			for b := 0; b < k; b++ {
				if mask&(1<<uint(b)) != 0 {
					scratch = append(scratch, e[b])
				}
			}
			key := subsetKey(scratch)
			if seen[key] {
				continue
			}
			seen[key] = true
			for j := 1; j <= h.Dim()-len(scratch); j++ {
				c := NjDirect(h, scratch, j)
				if c == 0 {
					continue
				}
				i := len(scratch) + j
				if i < 2 {
					continue
				}
				d := math.Pow(float64(c), 1/float64(j))
				if d > best {
					best = d
				}
			}
		}
	}
	return best
}
