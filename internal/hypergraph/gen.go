package hypergraph

import (
	"fmt"
	"sort"

	"repro/internal/rng"
)

// This file provides the instance generators used by the test suite and
// the experiment harness. There is no public corpus of hard parallel
// hypergraph-MIS instances (the paper is purely theoretical), so each
// generator targets the regime a specific lemma or experiment stresses;
// see DESIGN.md §1 for the substitution rationale.

// sampleDistinct draws k distinct vertices from [0, n) into a sorted edge.
func sampleDistinct(s *rng.Stream, n, k int) Edge {
	if k > n {
		panic(fmt.Sprintf("hypergraph: cannot sample %d distinct of %d", k, n))
	}
	// For small k relative to n, rejection sampling is fast.
	if k*4 <= n {
		e := make(Edge, 0, k)
		if k <= 16 {
			// Duplicate check by linear scan of the partial edge: for the
			// small edge sizes the generators draw, this beats a map and
			// allocates nothing beyond the edge itself.
			for len(e) < k {
				v := V(s.Intn(n))
				dup := false
				for _, u := range e {
					if u == v {
						dup = true
						break
					}
				}
				if !dup {
					e = append(e, v)
				}
			}
		} else {
			seen := make(map[V]bool, k)
			for len(e) < k {
				v := V(s.Intn(n))
				if !seen[v] {
					seen[v] = true
					e = append(e, v)
				}
			}
		}
		sortEdge(e)
		return e
	}
	// Otherwise partial Fisher–Yates over the universe.
	perm := s.Perm(n)
	e := make(Edge, k)
	for i := 0; i < k; i++ {
		e[i] = V(perm[i])
	}
	sortEdge(e)
	return e
}

// RandomUniform generates a hypergraph with m random d-uniform edges on
// n vertices (duplicates dropped, so M() ≤ m).
func RandomUniform(s *rng.Stream, n, m, d int) *Hypergraph {
	b := NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdgeSlice(sampleDistinct(s, n, d))
	}
	return b.MustBuild()
}

// RandomMixed generates m edges whose sizes are uniform in
// [minSize, maxSize]. This is the "general hypergraph" input for SBL:
// the input dimension is unrestricted (only the sampled sub-hypergraph
// needs small dimension).
func RandomMixed(s *rng.Stream, n, m, minSize, maxSize int) *Hypergraph {
	if minSize < 1 || maxSize < minSize || maxSize > n {
		panic("hypergraph: bad size range")
	}
	b := NewBuilder(n)
	for i := 0; i < m; i++ {
		k := minSize + s.Intn(maxSize-minSize+1)
		b.AddEdgeSlice(sampleDistinct(s, n, k))
	}
	return b.MustBuild()
}

// RandomGraph generates an ordinary graph (2-uniform hypergraph) with m
// random edges; the d = 2 special case solved by Luby's algorithm.
func RandomGraph(s *rng.Stream, n, m int) *Hypergraph {
	return RandomUniform(s, n, m, 2)
}

// Linear generates a linear hypergraph: any two edges intersect in at
// most one vertex (the Łuczak–Szymańska class, in RNC). Edges are drawn
// d-uniform and rejected if they violate linearity; generation aborts
// with fewer edges if the space is exhausted (attempts capped).
func Linear(s *rng.Stream, n, m, d int) *Hypergraph {
	b := NewBuilder(n)
	var accepted []Edge
	attempts := 0
	maxAttempts := 50*m + 1000
	for len(accepted) < m && attempts < maxAttempts {
		attempts++
		e := sampleDistinct(s, n, d)
		ok := true
		for _, f := range accepted {
			if IntersectionSize(e, f) > 1 {
				ok = false
				break
			}
		}
		if ok {
			accepted = append(accepted, e)
			b.AddEdgeSlice(e)
		}
	}
	return b.MustBuild()
}

// PlantedMIS generates an instance with a planted independent set:
// vertices [0, plantedSize) are the plant, and every edge includes at
// least one non-plant vertex, so the plant is independent by
// construction. Used to validate that solvers find *some* MIS and to
// give tests a known independent certificate.
func PlantedMIS(s *rng.Stream, n, m, d, plantedSize int) *Hypergraph {
	if plantedSize >= n {
		panic("hypergraph: planted set must leave outside vertices")
	}
	b := NewBuilder(n)
	for i := 0; i < m; i++ {
		e := sampleDistinct(s, n, d)
		inPlant := true
		for _, v := range e {
			if int(v) >= plantedSize {
				inPlant = false
				break
			}
		}
		if inPlant {
			// Swap one vertex for a non-plant vertex.
			e[len(e)-1] = V(plantedSize + s.Intn(n-plantedSize))
			sort.Slice(e, func(a, c int) bool { return e[a] < e[c] })
			// Dedup in case of collision.
			w := 1
			for j := 1; j < len(e); j++ {
				if e[j] != e[j-1] {
					e[w] = e[j]
					w++
				}
			}
			e = e[:w]
		}
		b.AddEdgeSlice(e)
	}
	return b.MustBuild()
}

// Sunflower generates a sunflower: `petals` edges, each the union of a
// common core of size coreSize and a private petal of size petalSize.
// This is the edge-migration adversary: when petal vertices enter the
// independent set, all edges simultaneously shrink toward the core,
// spiking N_j(core) for small j — the phenomenon Kelsen's Corollary 2
// and the paper's Corollary 4 bound (experiment F2).
func Sunflower(s *rng.Stream, n, coreSize, petalSize, petals int) *Hypergraph {
	need := coreSize + petals*petalSize
	if need > n {
		panic(fmt.Sprintf("hypergraph: sunflower needs %d vertices, have %d", need, n))
	}
	perm := s.Perm(n)
	core := make(Edge, coreSize)
	for i := range core {
		core[i] = V(perm[i])
	}
	b := NewBuilder(n)
	next := coreSize
	for p := 0; p < petals; p++ {
		e := append(Edge(nil), core...)
		for j := 0; j < petalSize; j++ {
			e = append(e, V(perm[next]))
			next++
		}
		b.AddEdgeSlice(e)
	}
	return b.MustBuild()
}

// LayeredMigration builds a hypergraph with edges of sizes k = lo..hi,
// countPer of each, all sharing a common core of size coreSize, with
// petals drawn from disjoint vertex pools per layer when possible. It
// stresses migration from many dimensions at once (experiment F2/T7).
func LayeredMigration(s *rng.Stream, n, coreSize, lo, hi, countPer int) *Hypergraph {
	if lo <= coreSize {
		panic("hypergraph: layer size must exceed core size")
	}
	perm := s.Perm(n)
	core := make(Edge, coreSize)
	for i := range core {
		core[i] = V(perm[i])
	}
	rest := perm[coreSize:]
	b := NewBuilder(n)
	for k := lo; k <= hi; k++ {
		for c := 0; c < countPer; c++ {
			e := append(Edge(nil), core...)
			for j := 0; j < k-coreSize; j++ {
				e = append(e, V(rest[s.Intn(len(rest))]))
			}
			b.AddEdgeSlice(e)
		}
	}
	return b.MustBuild()
}

// BlockPartition divides vertices into blocks of the given size and adds
// every within-block d-subset as an edge (up to perBlock edges sampled
// per block). MIS structure is then per-block, giving instances with
// many independent local subproblems — good for speedup benches.
func BlockPartition(s *rng.Stream, n, blockSize, d, perBlock int) *Hypergraph {
	if blockSize < d {
		panic("hypergraph: block smaller than edge size")
	}
	b := NewBuilder(n)
	for start := 0; start+blockSize <= n; start += blockSize {
		for c := 0; c < perBlock; c++ {
			local := sampleDistinct(s, blockSize, d)
			e := make(Edge, d)
			for i, v := range local {
				e[i] = v + V(start)
			}
			b.AddEdgeSlice(e)
		}
	}
	return b.MustBuild()
}

// Complete builds the complete d-uniform hypergraph on the first k
// vertices of an n-vertex universe: every d-subset of [0,k) is an edge.
// A MIS of it is any (d-1)-subset of [0,k) together with all vertices
// ≥ k. Exponential in k; keep k small. Used as a worst-density test.
func Complete(n, k, d int) *Hypergraph {
	if d > k {
		panic("hypergraph: d > k")
	}
	b := NewBuilder(n)
	idx := make([]int, d)
	for i := range idx {
		idx[i] = i
	}
	for {
		e := make(Edge, d)
		for i, x := range idx {
			e[i] = V(x)
		}
		b.AddEdgeSlice(e)
		// Next combination.
		i := d - 1
		for i >= 0 && idx[i] == k-d+i {
			i--
		}
		if i < 0 {
			break
		}
		idx[i]++
		for j := i + 1; j < d; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
	return b.MustBuild()
}

// Star places every edge through a single hub vertex 0 with d−1 random
// others: a degenerate high-degree instance (Δ concentrates on the hub).
func Star(s *rng.Stream, n, m, d int) *Hypergraph {
	b := NewBuilder(n)
	for i := 0; i < m; i++ {
		others := sampleDistinct(s, n-1, d-1)
		e := make(Edge, 0, d)
		e = append(e, 0)
		for _, v := range others {
			e = append(e, v+1)
		}
		b.AddEdgeSlice(e)
	}
	return b.MustBuild()
}
