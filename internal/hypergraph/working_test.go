package hypergraph

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// pipelineReference applies the pure-function pipeline equivalent to
// Working.Commit: kill red-touching edges, shrink by blue, restore the
// antichain.
func pipelineReference(h *Hypergraph, blue, red []V) (*Hypergraph, int) {
	isRed := MaskFromList(h.N(), red)
	isBlue := MaskFromList(h.N(), blue)
	out := DiscardTouching(h, func(v V) bool { return isRed[v] })
	out, emptied := Shrink(out, func(v V) bool { return isBlue[v] })
	out = RemoveSupersets(out)
	return out, emptied
}

func sameEdgeSets(t *testing.T, a, b *Hypergraph) bool {
	t.Helper()
	if a.M() != b.M() {
		return false
	}
	for i := range a.Edges() {
		if !equalEdge(a.Edge(i), b.Edge(i)) {
			return false
		}
	}
	return true
}

func TestWorkingMatchesPipelineProperty(t *testing.T) {
	s := rng.New(1)
	check := func(seed uint16) bool {
		st := s.Child(uint64(seed))
		h := RandomMixed(st, 25+st.Intn(30), 1+st.Intn(80), 2, 5)
		// Random disjoint blue/red sets.
		var blue, red []V
		for v := 0; v < h.N(); v++ {
			switch st.Intn(5) {
			case 0:
				blue = append(blue, V(v))
			case 1:
				red = append(red, V(v))
			}
		}
		w := NewWorking(h)
		gotEmptied := w.Commit(blue, red)
		// The reference pipeline starts from the same normalized state.
		norm := RemoveSupersets(h)
		want, wantEmptied := pipelineReference(norm, blue, red)
		if gotEmptied != wantEmptied {
			t.Logf("seed %d: emptied %d vs %d", seed, gotEmptied, wantEmptied)
			return false
		}
		if !sameEdgeSets(t, w.Snapshot(), want) {
			t.Logf("seed %d: edge sets differ:\n got %v\nwant %v",
				seed, w.Snapshot().Edges(), want.Edges())
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestWorkingMultiRoundReplay(t *testing.T) {
	// Replay several rounds of random commits; Working and the pure
	// pipeline must agree at every step.
	s := rng.New(2)
	for trial := 0; trial < 15; trial++ {
		h := RandomMixed(s, 60, 140, 2, 6)
		w := NewWorking(h)
		ref := RemoveSupersets(h)
		for round := 0; round < 6 && ref.M() > 0; round++ {
			var blue, red []V
			for v := 0; v < h.N(); v++ {
				switch s.Intn(8) {
				case 0:
					blue = append(blue, V(v))
				case 1:
					red = append(red, V(v))
				}
			}
			w.Commit(blue, red)
			ref, _ = pipelineReference(ref, blue, red)
			// Singleton cleanup on both sides.
			blocked := w.RemoveSingletons()
			var refBlocked []V
			ref, refBlocked = RemoveSingletons(ref)
			blockedSet := MaskFromList(h.N(), refBlocked)
			ref = DiscardTouching(ref, func(v V) bool { return blockedSet[v] })
			if len(blocked) != len(refBlocked) {
				t.Fatalf("trial %d round %d: blocked %d vs %d", trial, round, len(blocked), len(refBlocked))
			}
			if !sameEdgeSets(t, w.Snapshot(), ref) {
				t.Fatalf("trial %d round %d: divergence\n got %v\nwant %v",
					trial, round, w.Snapshot().Edges(), ref.Edges())
			}
		}
	}
}

func TestWorkingBasics(t *testing.T) {
	h := NewBuilder(5).AddEdge(0, 1).AddEdge(0, 1, 2).AddEdge(2, 3, 4).MustBuild()
	w := NewWorking(h)
	// Normalization drops the superset {0,1,2}.
	if w.M() != 2 {
		t.Fatalf("M = %d after normalization", w.M())
	}
	if w.N() != 5 {
		t.Fatalf("N = %d", w.N())
	}
	if w.Dim() != 3 {
		t.Fatalf("Dim = %d", w.Dim())
	}
}

func TestWorkingCommitShrinkCreatesDomination(t *testing.T) {
	// {0,1,2} and {1,2,3}: blue {0} shrinks the first to {1,2}, which
	// dominates... nothing ({1,2,3} ⊋ {1,2} → {1,2,3} dies).
	h := NewBuilder(4).AddEdge(0, 1, 2).AddEdge(1, 2, 3).MustBuild()
	w := NewWorking(h)
	emptied := w.Commit([]V{0}, nil)
	if emptied != 0 {
		t.Fatalf("emptied = %d", emptied)
	}
	snap := w.Snapshot()
	if snap.M() != 1 || !snap.HasEdge(1, 2) {
		t.Fatalf("got %v", snap.Edges())
	}
}

func TestWorkingCommitEmptied(t *testing.T) {
	h := NewBuilder(3).AddEdge(0, 1).MustBuild()
	w := NewWorking(h)
	if emptied := w.Commit([]V{0, 1}, nil); emptied != 1 {
		t.Fatalf("emptied = %d", emptied)
	}
	if w.M() != 0 {
		t.Fatalf("M = %d", w.M())
	}
}

func TestWorkingRedKills(t *testing.T) {
	h := NewBuilder(4).AddEdge(0, 1).AddEdge(2, 3).MustBuild()
	w := NewWorking(h)
	w.Commit(nil, []V{0})
	snap := w.Snapshot()
	if snap.M() != 1 || !snap.HasEdge(2, 3) {
		t.Fatalf("got %v", snap.Edges())
	}
}

func TestWorkingSingletons(t *testing.T) {
	// {0,1} shrinks to {1} when 0 goes blue; then singleton cleanup
	// blocks 1 and kills {1,2,3} through it.
	h := NewBuilder(4).AddEdge(0, 1).AddEdge(1, 2, 3).MustBuild()
	w := NewWorking(h)
	w.Commit([]V{0}, nil)
	blocked := w.RemoveSingletons()
	if len(blocked) != 1 || blocked[0] != 1 {
		t.Fatalf("blocked = %v", blocked)
	}
	if w.M() != 0 {
		t.Fatalf("M = %d: %v", w.M(), w.Snapshot().Edges())
	}
}

func TestWorkingDuplicateMerge(t *testing.T) {
	// Both edges shrink to {2,3}: one survives.
	h := NewBuilder(5).AddEdge(0, 2, 3).AddEdge(1, 2, 3).MustBuild()
	w := NewWorking(h)
	w.Commit([]V{0, 1}, nil)
	snap := w.Snapshot()
	if snap.M() != 1 || !snap.HasEdge(2, 3) {
		t.Fatalf("got %v", snap.Edges())
	}
}

func TestWorkingUsedVertices(t *testing.T) {
	h := NewBuilder(4).AddEdge(1, 2).MustBuild()
	w := NewWorking(h)
	used := w.UsedVertices()
	if used[0] || !used[1] || !used[2] || used[3] {
		t.Fatalf("used = %v", used)
	}
}

func BenchmarkWorkingCommit(b *testing.B) {
	s := rng.New(1)
	h := RandomMixed(s, 5000, 10000, 2, 6)
	blue := make([]V, 0, 200)
	for v := V(0); v < 200; v++ {
		blue = append(blue, v*7%5000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		w := NewWorking(h)
		b.StartTimer()
		w.Commit(blue, nil)
	}
}

func BenchmarkPipelineCommit(b *testing.B) {
	s := rng.New(1)
	h := RandomMixed(s, 5000, 10000, 2, 6)
	isBlue := make([]bool, 5000)
	for v := 0; v < 200; v++ {
		isBlue[v*7%5000] = true
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _ := Shrink(h, func(v V) bool { return isBlue[v] })
		RemoveSupersets(out)
	}
}
