package hypergraph

import "testing"

func TestSteinerRejectsBadN(t *testing.T) {
	for _, n := range []int{0, 1, 2, 4, 6, 7, 13, 100} {
		if _, err := SteinerTripleSystem(n); err == nil {
			t.Fatalf("n=%d accepted", n)
		}
	}
}

func TestSteinerSmallest(t *testing.T) {
	// STS(3) is a single triple.
	h, err := SteinerTripleSystem(3)
	if err != nil {
		t.Fatal(err)
	}
	if h.M() != 1 || h.Dim() != 3 {
		t.Fatalf("STS(3): %v", h)
	}
}

func TestSteinerDesignProperties(t *testing.T) {
	for _, n := range []int{9, 15, 21, 33, 63} {
		h, err := SteinerTripleSystem(n)
		if err != nil {
			t.Fatal(err)
		}
		// Exactly n(n−1)/6 triples.
		if want := n * (n - 1) / 6; h.M() != want {
			t.Fatalf("STS(%d): m = %d, want %d", n, h.M(), want)
		}
		// Every pair covered exactly once.
		pairCount := make(map[[2]V]int)
		for _, e := range h.Edges() {
			if len(e) != 3 {
				t.Fatalf("STS(%d): non-triple edge %v", n, e)
			}
			for i := 0; i < 3; i++ {
				for j := i + 1; j < 3; j++ {
					pairCount[[2]V{e[i], e[j]}]++
				}
			}
		}
		if len(pairCount) != n*(n-1)/2 {
			t.Fatalf("STS(%d): %d pairs covered, want %d", n, len(pairCount), n*(n-1)/2)
		}
		for pair, c := range pairCount {
			if c != 1 {
				t.Fatalf("STS(%d): pair %v covered %d times", n, pair, c)
			}
		}
		// Every vertex in exactly (n−1)/2 triples.
		for v, d := range h.VertexDegrees() {
			if d != (n-1)/2 {
				t.Fatalf("STS(%d): vertex %d degree %d, want %d", n, v, d, (n-1)/2)
			}
		}
	}
}

func TestSteinerIsLinear(t *testing.T) {
	h, err := SteinerTripleSystem(21)
	if err != nil {
		t.Fatal(err)
	}
	edges := h.Edges()
	for i := range edges {
		for j := i + 1; j < len(edges); j++ {
			if IntersectionSize(edges[i], edges[j]) > 1 {
				t.Fatalf("triples %v and %v share 2+ vertices", edges[i], edges[j])
			}
		}
	}
}
