package hypergraph

import (
	"repro/internal/par"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestIsTransversal(t *testing.T) {
	h := NewBuilder(4).AddEdge(0, 1).AddEdge(2, 3).MustBuild()
	if !IsTransversal(h, []bool{true, false, true, false}) {
		t.Fatal("valid transversal rejected")
	}
	if IsTransversal(h, []bool{true, false, false, false}) {
		t.Fatal("non-transversal accepted")
	}
	// Empty set is a transversal of an edgeless hypergraph.
	if !IsTransversal(NewBuilder(3).MustBuild(), []bool{false, false, false}) {
		t.Fatal("vacuous transversal rejected")
	}
}

func TestVerifyMinimalTransversal(t *testing.T) {
	h := NewBuilder(4).AddEdge(0, 1).AddEdge(2, 3).MustBuild()
	if err := VerifyMinimalTransversal(h, []bool{true, false, true, false}); err != nil {
		t.Fatal(err)
	}
	// Redundant vertex: 1 covers nothing essential ({0,1} already hit by 0).
	if err := VerifyMinimalTransversal(h, []bool{true, true, true, false}); err == nil {
		t.Fatal("redundant transversal accepted as minimal")
	}
	// Uncovered edge.
	if err := VerifyMinimalTransversal(h, []bool{true, false, false, false}); err == nil {
		t.Fatal("non-covering set accepted")
	}
	// Wrong length.
	if err := VerifyMinimalTransversal(h, []bool{true}); err == nil {
		t.Fatal("wrong-length set accepted")
	}
}

func TestComplementMask(t *testing.T) {
	got := ComplementMask([]bool{true, false})
	if got[0] || !got[1] {
		t.Fatal("complement broken")
	}
}

func TestMISTransversalDuality(t *testing.T) {
	// The central identity: complement of a maximal independent set is a
	// minimal transversal, across random instances.
	s := rng.New(1)
	check := func(seed uint16) bool {
		st := s.Child(uint64(seed))
		h := RandomMixed(st, 20+st.Intn(40), 1+st.Intn(80), 2, 4)
		// Build a MIS greedily (inline, to keep this package test local).
		in := make([]bool, h.N())
		for v := 0; v < h.N(); v++ {
			in[v] = true
			if firstContainedEdge(h, in, par.Engine{}) != -1 {
				in[v] = false
			}
		}
		if VerifyMIS(h, in) != nil {
			return false
		}
		tr, err := MinimalTransversalFromMIS(h, in)
		if err != nil {
			return false
		}
		return VerifyMinimalTransversal(h, tr) == nil && IsTransversal(h, tr)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMinimalTransversalFromMISRejectsNonMIS(t *testing.T) {
	h := NewBuilder(3).AddEdge(0, 1, 2).MustBuild()
	if _, err := MinimalTransversalFromMIS(h, []bool{true, true, true}); err == nil {
		t.Fatal("dependent set accepted")
	}
}

func TestDualityIsolatedVertices(t *testing.T) {
	// Isolated vertex 2 must be in every MIS, hence never in the
	// minimal transversal.
	h := NewBuilder(3).AddEdge(0, 1).MustBuild()
	mis := []bool{true, false, true}
	tr, err := MinimalTransversalFromMIS(h, mis)
	if err != nil {
		t.Fatal(err)
	}
	if tr[2] {
		t.Fatal("isolated vertex in minimal transversal")
	}
	if !tr[1] {
		t.Fatal("vertex 1 must be in the transversal")
	}
}
