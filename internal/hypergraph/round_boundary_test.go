package hypergraph

import (
	"fmt"
	"testing"

	"repro/internal/bitset"
	"repro/internal/par"
)

// These tests pin the sequential/sharded switchover exactly at the
// parallelScanThreshold boundary: instances whose CSR arena holds
// threshold−1, threshold, and threshold+1 vertices take different code
// paths (the classify/scatter passes shard at ≥ threshold), and the
// outputs must be identical on both sides, for the func- and
// bitset-flavoured transforms, at every engine degree.

// boundaryInstance builds a hypergraph whose arena holds exactly
// arenaLen vertices: size-2 edges over a large vertex universe, plus
// one size-3 edge when arenaLen is odd.
func boundaryInstance(arenaLen int) *Hypergraph {
	n := arenaLen + 8
	b := NewBuilder(n)
	used := 0
	v := V(0)
	if arenaLen%2 == 1 {
		b.AddEdge(v, v+1, v+2)
		v += 3
		used += 3
	}
	for ; used < arenaLen; used += 2 {
		b.AddEdge(v, v+1)
		v += 2
	}
	h := b.MustBuild()
	if h.ArenaLen() != arenaLen {
		panic(fmt.Sprintf("boundaryInstance(%d) built arena %d", arenaLen, h.ArenaLen()))
	}
	return h
}

// boundaryColors deterministically colors a sprinkling of vertices red
// and blue (disjoint).
func boundaryColors(n int) (red, blue bitset.Set) {
	red, blue = bitset.New(n), bitset.New(n)
	for v := 0; v < n; v++ {
		switch v % 17 {
		case 3:
			red.Add(v)
		case 5, 11:
			blue.Add(v)
		}
	}
	return
}

func sameEdges(t *testing.T, label string, a, b *Hypergraph) {
	t.Helper()
	if a.M() != b.M() {
		t.Fatalf("%s: %d edges vs %d", label, a.M(), b.M())
	}
	for i := range a.Edges() {
		if !equalEdge(a.Edge(i), b.Edge(i)) {
			t.Fatalf("%s: edge %d: %v vs %v", label, i, a.Edge(i), b.Edge(i))
		}
	}
}

// TestNextRoundParityAtScanThreshold compares the fused round transform
// against the pure DiscardTouching→Shrink pipeline at arena sizes
// threshold−1 / threshold / threshold+1, where the implementation
// switches from the sequential loops to the sharded passes, across
// engine degrees 1, 2 and 8.
func TestNextRoundParityAtScanThreshold(t *testing.T) {
	for _, arena := range []int{parallelScanThreshold - 1, parallelScanThreshold, parallelScanThreshold + 1} {
		h := boundaryInstance(arena)
		red, blue := boundaryColors(h.N())
		isRed := func(v V) bool { return red.Has(int(v)) }
		isBlue := func(v V) bool { return blue.Has(int(v)) }

		// Pure-pipeline reference.
		ref, refEmptied := Shrink(DiscardTouching(h, isRed), isBlue)

		for _, p := range []int{1, 2, 8} {
			label := fmt.Sprintf("arena=%d P=%d", arena, p)

			scr := &RoundScratch{Eng: par.Engine{P: p}}
			got, emptied := NextRound(h, isRed, isBlue, scr)
			if emptied != refEmptied {
				t.Fatalf("%s: NextRound emptied %d want %d", label, emptied, refEmptied)
			}
			sameEdges(t, label+" func", ref, got)

			scrB := &RoundScratch{Eng: par.Engine{P: p}}
			gotB, emptiedB := NextRoundBits(h, red, blue, scrB)
			if emptiedB != refEmptied {
				t.Fatalf("%s: NextRoundBits emptied %d want %d", label, emptiedB, refEmptied)
			}
			sameEdges(t, label+" bits", ref, gotB)
		}
	}
}

// TestInduceParityAtScanThreshold does the same for the induce
// transform against the pure Induced.
func TestInduceParityAtScanThreshold(t *testing.T) {
	for _, arena := range []int{parallelScanThreshold - 1, parallelScanThreshold, parallelScanThreshold + 1} {
		h := boundaryInstance(arena)
		in := bitset.New(h.N())
		for v := 0; v < h.N(); v++ {
			if v%3 != 1 {
				in.Add(v)
			}
		}
		pred := func(v V) bool { return in.Has(int(v)) }
		ref := Induced(h, pred)

		for _, p := range []int{1, 2, 8} {
			label := fmt.Sprintf("arena=%d P=%d", arena, p)
			scr := &RoundScratch{Eng: par.Engine{P: p}}
			sameEdges(t, label+" func", ref, InduceInto(h, pred, scr))
			scrB := &RoundScratch{Eng: par.Engine{P: p}}
			sameEdges(t, label+" bits", ref, InduceIntoBits(h, in, scrB))
		}
	}
}

// TestAssignSlotsParityAtEdgeCountThreshold targets the slot-assignment
// scan's own switchover, which triggers on edge count rather than arena
// size: m = threshold ± 1 edges, verified against the pure pipeline at
// several degrees.
func TestAssignSlotsParityAtEdgeCountThreshold(t *testing.T) {
	for _, m := range []int{parallelScanThreshold - 1, parallelScanThreshold, parallelScanThreshold + 1} {
		h := boundaryInstance(2 * m) // m size-2 edges
		if h.M() != m {
			t.Fatalf("instance has %d edges, want %d", h.M(), m)
		}
		red, blue := boundaryColors(h.N())
		ref, _ := Shrink(DiscardTouching(h, func(v V) bool { return red.Has(int(v)) }),
			func(v V) bool { return blue.Has(int(v)) })
		for _, p := range []int{1, 3, 8} {
			scr := &RoundScratch{Eng: par.Engine{P: p}}
			got, _ := NextRoundBits(h, red, blue, scr)
			sameEdges(t, fmt.Sprintf("m=%d P=%d", m, p), ref, got)
		}
	}
}
