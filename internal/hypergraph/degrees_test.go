package hypergraph

import (
	"math"
	"runtime"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestNCountSimple(t *testing.T) {
	// Edges {0,1,2}, {0,1,3}, {0,4}: N_1({0,1}) has {2},{3} → 2;
	// N_1({0}) has {4} → 1; N_2({0}) has {1,2},{1,3} → 2.
	h := NewBuilder(5).AddEdge(0, 1, 2).AddEdge(0, 1, 3).AddEdge(0, 4).MustBuild()
	tab := BuildDegreeTable(h)
	if got := tab.NCount(Edge{0, 1}, 1); got != 2 {
		t.Fatalf("N_1({0,1}) = %d, want 2", got)
	}
	if got := tab.NCount(Edge{0}, 1); got != 1 {
		t.Fatalf("N_1({0}) = %d, want 1", got)
	}
	if got := tab.NCount(Edge{0}, 2); got != 2 {
		t.Fatalf("N_2({0}) = %d, want 2", got)
	}
	if got := tab.NCount(Edge{4}, 1); got != 1 {
		t.Fatalf("N_1({4}) = %d, want 1", got)
	}
	if got := tab.NCount(Edge{2, 3}, 1); got != 0 {
		t.Fatalf("N_1({2,3}) = %d, want 0", got)
	}
}

func TestNCountOutOfRangeJ(t *testing.T) {
	h := NewBuilder(3).AddEdge(0, 1).MustBuild()
	tab := BuildDegreeTable(h)
	if tab.NCount(Edge{0}, 0) != 0 || tab.NCount(Edge{0}, 5) != 0 {
		t.Fatal("out-of-range j should give 0")
	}
}

func TestNormDegree(t *testing.T) {
	// 4 edges of size 3 containing {0}: d_2({0}) = 4^{1/2} = 2.
	h := NewBuilder(9).
		AddEdge(0, 1, 2).AddEdge(0, 3, 4).AddEdge(0, 5, 6).AddEdge(0, 7, 8).
		MustBuild()
	tab := BuildDegreeTable(h)
	if got := tab.NormDegree(Edge{0}, 2); math.Abs(got-2) > 1e-12 {
		t.Fatalf("d_2({0}) = %v, want 2", got)
	}
}

func TestDeltaMatchesDirect(t *testing.T) {
	s := rng.New(11)
	for trial := 0; trial < 20; trial++ {
		n := 10 + s.Intn(20)
		m := 5 + s.Intn(25)
		d := 2 + s.Intn(3)
		h := RandomMixed(s, n, m, 2, d+1)
		tab := BuildDegreeTable(h)
		got := tab.Delta()
		want := DeltaDirect(h)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d (%v): Delta table %v != direct %v", trial, h, got, want)
		}
	}
}

func TestNCountMatchesDirectProperty(t *testing.T) {
	s := rng.New(13)
	check := func(seed uint16) bool {
		st := s.Child(uint64(seed))
		h := RandomMixed(st, 15, 20, 2, 4)
		tab := BuildDegreeTable(h)
		// For every subset of every edge, table and direct must agree.
		for _, e := range h.Edges() {
			k := len(e)
			for mask := uint32(1); mask < uint32(1)<<uint(k)-1; mask++ {
				var x Edge
				for b := 0; b < k; b++ {
					if mask&(1<<uint(b)) != 0 {
						x = append(x, e[b])
					}
				}
				for j := 1; j <= h.Dim(); j++ {
					if tab.NCount(x, j) != NjDirect(h, x, j) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaIValues(t *testing.T) {
	// Star with hub 0: m edges of size 3 through 0.
	s := rng.New(17)
	h := Star(s, 60, 16, 3)
	tab := BuildDegreeTable(h)
	d3 := tab.DeltaI(3)
	// d_2({0}) = m^{1/2} = 4 dominates Δ_3 (pairs have degree ≤ small).
	if math.Abs(d3-math.Sqrt(float64(h.M()))) > 1e-9 {
		t.Fatalf("Δ_3 = %v, want sqrt(%d)", d3, h.M())
	}
	if tab.DeltaI(1) != 0 || tab.DeltaI(99) != 0 {
		t.Fatal("Δ_i out of range should be 0")
	}
}

func TestAllDeltasConsistent(t *testing.T) {
	s := rng.New(19)
	h := RandomMixed(s, 40, 60, 2, 5)
	tab := BuildDegreeTable(h)
	deltas := tab.AllDeltas()
	for i := 2; i <= h.Dim(); i++ {
		if math.Abs(deltas[i]-tab.DeltaI(i)) > 1e-9 {
			t.Fatalf("AllDeltas[%d]=%v, DeltaI=%v", i, deltas[i], tab.DeltaI(i))
		}
	}
	// Delta() must equal max of AllDeltas.
	best := 0.0
	for _, d := range deltas {
		if d > best {
			best = d
		}
	}
	if math.Abs(best-tab.Delta()) > 1e-9 {
		t.Fatalf("Delta=%v, max(AllDeltas)=%v", tab.Delta(), best)
	}
}

func TestMaxDegreeSet(t *testing.T) {
	s := rng.New(23)
	h := Star(s, 60, 25, 3)
	tab := BuildDegreeTable(h)
	x, j := tab.MaxDegreeSet(4.0) // hub has d_2 = 5
	if x == nil {
		t.Fatal("no high-degree set found")
	}
	if tab.NormDegree(x, j) < 4.0 {
		t.Fatalf("witness %v,%d has degree %v < 4", x, j, tab.NormDegree(x, j))
	}
	if x, _ := tab.MaxDegreeSet(1e9); x != nil {
		t.Fatal("impossible threshold produced a witness")
	}
}

func TestEmptyTable(t *testing.T) {
	h := NewBuilder(5).MustBuild()
	tab := BuildDegreeTable(h)
	if tab.Delta() != 0 {
		t.Fatalf("Delta of edgeless = %v", tab.Delta())
	}
}

func TestHashedKeyCollisionChain(t *testing.T) {
	// The hashed index must never trust the hash alone: distinct subsets
	// forced into the same bucket chain and resolve by vertex-set
	// equality. getOrAdd takes the hash as a parameter precisely so this
	// worst case is testable.
	tab := newDegreeTable(4, 0)
	a, b, c := Edge{0, 7}, Edge{1 << 20}, Edge{0, 7, 9}
	const clash = uint64(0xdeadbeef)
	ia := tab.getOrAdd(clash, a)
	ib := tab.getOrAdd(clash, b)
	ic := tab.getOrAdd(clash, c)
	if ia == ib || ib == ic || ia == ic {
		t.Fatalf("colliding subsets shared an entry: %d %d %d", ia, ib, ic)
	}
	if got := tab.getOrAdd(clash, b); got != ib {
		t.Fatalf("re-lookup of chained subset gave %d, want %d", got, ib)
	}
	for i, want := range []Edge{a, b, c} {
		if !equalEdge(tab.subset(int32(i)), want) {
			t.Fatalf("entry %d stores %v, want %v", i, tab.subset(int32(i)), want)
		}
	}
}

func TestHashEdgeDistinguishesSets(t *testing.T) {
	// Not a collision-freeness claim (collisions are legal and chained),
	// just a smoke test that the hash actually varies with content and
	// is deterministic.
	sets := []Edge{{0}, {1}, {0, 1}, {1, 2}, {0, 1, 2}, {2, 1<<20 + 1}}
	seen := make(map[uint64]Edge)
	for _, x := range sets {
		h := hashEdge(x)
		if h != hashEdge(x) {
			t.Fatalf("hashEdge(%v) not deterministic", x)
		}
		if prev, ok := seen[h]; ok {
			t.Fatalf("surprising collision between %v and %v", prev, x)
		}
		seen[h] = x
	}
}

func BenchmarkBuildDegreeTable(b *testing.B) {
	s := rng.New(1)
	h := RandomUniform(s, 1000, 2000, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildDegreeTable(h)
	}
}

// TestBuildDegreeTableShardedMatchesSerial forces the sharded build
// (several workers, per-shard tables merged) and checks it against a
// serial build of the same instance.
func TestBuildDegreeTableShardedMatchesSerial(t *testing.T) {
	s := rng.New(46)
	h := RandomUniform(s, 2000, 3*2048, 4)
	serial := newDegreeTable(h.Dim(), h.M())
	serial.scan(h, 0, h.M())

	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	sharded := BuildDegreeTable(h)

	if sharded.entries() != serial.entries() {
		t.Fatalf("sharded build has %d entries, serial %d", sharded.entries(), serial.entries())
	}
	for id := 0; id < serial.entries(); id++ {
		x := serial.subset(int32(id))
		other := sharded.lookup(x)
		if other < 0 {
			t.Fatalf("subset %v missing from sharded table", x)
		}
		wantRow := serial.row(int32(id))
		gotRow := sharded.row(other)
		for j := range wantRow {
			if gotRow[j] != wantRow[j] {
				t.Fatalf("subset %v level %d: count %d, want %d", x, j, gotRow[j], wantRow[j])
			}
		}
	}
	if got, want := sharded.Delta(), serial.Delta(); got != want {
		t.Fatalf("Delta %v, want %v", got, want)
	}
}
