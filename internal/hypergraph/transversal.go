package hypergraph

import "fmt"

// This file implements the classical duality the MIS problem lives in:
// S is an independent set of H iff its complement V\S is a transversal
// (hitting set) of H — every edge has a vertex outside S — and S is a
// *maximal* independent set iff V\S is a *minimal* transversal. The
// parallel MIS algorithms of the paper therefore double as parallel
// minimal-hitting-set algorithms, which is how several applications
// consume them.

// IsTransversal reports whether the set {v : in[v]} intersects every
// edge of h.
func IsTransversal(h *Hypergraph, in []bool) bool {
	for _, e := range h.edges {
		hit := false
		for _, v := range e {
			if in[v] {
				hit = true
				break
			}
		}
		if !hit {
			return false
		}
	}
	return true
}

// VerifyMinimalTransversal checks that the set is a transversal and
// that removing any of its vertices leaves some edge unhit. Returns nil
// on success or a descriptive error with a witness.
//
// Note that minimality here is with respect to the *covering* property
// only: vertices that belong to no edge are never needed, so a minimal
// transversal must not contain them.
func VerifyMinimalTransversal(h *Hypergraph, in []bool) error {
	if len(in) != h.n {
		return fmt.Errorf("transversal: set has length %d, hypergraph has %d vertices", len(in), h.n)
	}
	// Coverage, and per-edge count of chosen vertices (an edge hit
	// exactly once pins its chosen vertex as essential).
	essential := make([]bool, h.n)
	for i, e := range h.edges {
		hits := 0
		last := -1
		for _, v := range e {
			if in[v] {
				hits++
				last = int(v)
			}
		}
		if hits == 0 {
			return fmt.Errorf("transversal: edge #%d %v not hit", i, e)
		}
		if hits == 1 {
			essential[last] = true
		}
	}
	for v := 0; v < h.n; v++ {
		if in[v] && !essential[v] {
			return fmt.Errorf("transversal: vertex %d is redundant (every edge through it is multiply covered)", v)
		}
	}
	return nil
}

// ComplementMask returns the complement of a vertex mask.
func ComplementMask(in []bool) []bool {
	out := make([]bool, len(in))
	for i, b := range in {
		out[i] = !b
	}
	return out
}

// MinimalTransversalFromMIS converts a maximal independent set into the
// dual minimal transversal (its complement). The duality only holds for
// hypergraphs with no empty edge, which the Builder already guarantees.
func MinimalTransversalFromMIS(h *Hypergraph, mis []bool) ([]bool, error) {
	if err := VerifyMIS(h, mis); err != nil {
		return nil, fmt.Errorf("transversal: input is not a MIS: %w", err)
	}
	return ComplementMask(mis), nil
}
