package hypergraph

import (
	"sort"

	"repro/internal/bitset"
)

// Working is a mutable hypergraph maintaining the normal form the BL
// and SBL loops need — an antichain of nonempty edges (no edge contains
// another, no duplicates) — under the loops' three mutations: committing
// blue vertices (edges shrink), committing red vertices (edges die),
// and deleting singleton edges. Each mutation costs time proportional
// to the structures touched rather than a full rebuild, via incidence
// lists and a hashed canonical index (64-bit hashEdge keys with
// collision chains verified against the stored vertex sets — no string
// keys, no per-lookup allocation).
//
// Semantics are *identical* to the pure pipeline
// DiscardTouching → Shrink → RemoveSupersets → RemoveSingletons on the
// same hypergraph (property-tested): both produce the set of minimal
// edges of the residual edge multiset. Working exists because the pure
// pipeline rebuilds O(m) state per round, which dominates solver time
// on large instances with local updates.
type Working struct {
	n     int
	verts [][]V     // edge id → sorted vertices (nil = dead)
	inc   [][]int   // vertex → edge ids ever incident (may be stale)
	ix    edgeIndex // hashEdge → chain of live edge ids
	alive int

	// Commit scratch, reused across calls so a round allocates nothing
	// once warm. Both sets are packed bitsets: touched covers edge ids
	// (regrown as the id space extends), blueMark covers vertices and is
	// cleared bit-by-bit after each Commit.
	touched  bitset.Set
	blueMark bitset.Set
	ids      []int
}

// NewWorking initializes from h, normalizing to the antichain form
// (supersets and duplicates dropped; h is not modified).
func NewWorking(h *Hypergraph) *Working {
	norm := RemoveSupersets(h)
	w := &Working{
		n:        h.N(),
		inc:      make([][]int, h.N()),
		ix:       newEdgeIndex(norm.M()),
		blueMark: bitset.New(h.N()),
	}
	for _, e := range norm.Edges() {
		w.insert(append(Edge(nil), e...))
	}
	return w
}

// find returns the live edge id whose vertex set equals e, or -1. The
// hash is only a bucket selector: equality against the stored vertex
// set decides.
func (w *Working) find(e Edge) int32 {
	return w.ix.find(hashEdge(e), func(id int32) bool { return equalEdge(w.verts[id], e) })
}

// insert registers a live edge (assumed sorted, not present, not
// dominated — callers maintain the invariant).
func (w *Working) insert(e Edge) int {
	id := len(w.verts)
	w.verts = append(w.verts, e)
	w.ix.add(hashEdge(e), int32(id))
	for _, v := range e {
		w.inc[v] = append(w.inc[v], id)
	}
	w.alive++
	return id
}

// kill removes edge id from the live set (incidence lists stay stale).
func (w *Working) kill(id int) {
	if w.verts[id] == nil {
		return
	}
	w.ix.unlink(hashEdge(w.verts[id]), int32(id))
	w.verts[id] = nil
	w.alive--
}

// N returns the vertex-universe size.
func (w *Working) N() int { return w.n }

// M returns the number of live edges.
func (w *Working) M() int { return w.alive }

// Dim returns the current dimension (scan over live edges).
func (w *Working) Dim() int {
	d := 0
	for _, e := range w.verts {
		if len(e) > d {
			d = len(e)
		}
	}
	return d
}

// Snapshot materializes the current edge set as a canonical Hypergraph.
func (w *Working) Snapshot() *Hypergraph {
	edges := make([]Edge, 0, w.alive)
	for _, e := range w.verts {
		if e != nil {
			edges = append(edges, e)
		}
	}
	return fromCanon(w.n, edges)
}

// liveEdgesWith returns the live edge ids incident to v (filtering
// stale entries in place to keep future scans cheap).
func (w *Working) liveEdgesWith(v V) []int {
	lst := w.inc[v]
	out := lst[:0]
	for _, id := range lst {
		if e := w.verts[id]; e != nil && ContainsSorted(e, Edge{v}) {
			out = append(out, id)
		}
	}
	w.inc[v] = out
	return out
}

// Commit applies one solver round: every edge touching a red vertex
// dies (it can never be completed); every surviving edge shrinks by its
// blue vertices; the antichain normal form is restored incrementally.
// Returns the number of edges that would have become empty — an
// independence violation that the caller must treat as fatal (those
// edges are dropped).
func (w *Working) Commit(blue, red []V) (emptied int) {
	// Phase 1: red kills.
	for _, v := range red {
		for _, id := range w.liveEdgesWith(v) {
			w.kill(id)
		}
	}
	// Phase 2: collect the edges to shrink (dedup ids via the touched
	// bitset). The touched set and blue mask are scratch state owned by
	// w, reset before return.
	w.touched = w.touched.Grow(len(w.verts))
	ids := w.ids[:0]
	for _, v := range blue {
		for _, id := range w.liveEdgesWith(v) {
			if !w.touched.Has(id) {
				w.touched.Add(id)
				ids = append(ids, id)
			}
		}
	}
	w.ids = ids
	if len(ids) == 0 {
		return 0
	}
	for _, v := range blue {
		w.blueMark.Add(int(v))
	}
	defer func() {
		for _, v := range blue {
			w.blueMark.Del(int(v))
		}
	}()
	// Phase 3: shrink each touched edge and restore the antichain.
	sort.Ints(ids) // deterministic processing order
	for _, id := range ids {
		old := w.verts[id]
		if old == nil {
			continue // killed meanwhile as a superset
		}
		shrunk := make(Edge, 0, len(old))
		for _, v := range old {
			if !w.blueMark.Has(int(v)) {
				shrunk = append(shrunk, v)
			}
		}
		if len(shrunk) == len(old) {
			continue // stale incidence; edge unchanged
		}
		w.kill(id)
		if len(shrunk) == 0 {
			emptied++
			continue
		}
		w.integrate(shrunk)
	}
	return emptied
}

// integrate inserts a shrunk edge, restoring the antichain invariant:
// drop it if a duplicate or a live subset exists; otherwise kill every
// live proper superset, then insert.
func (w *Working) integrate(e Edge) {
	if w.find(e) >= 0 {
		return
	}
	// A live subset of e dominates it. Only subsets of e can be edges;
	// enumerate them when cheap, otherwise scan incidences.
	if len(e) <= maxEnumerableDim {
		var scratch Edge
		full := uint32(1)<<uint(len(e)) - 1
		for mask := uint32(1); mask < full; mask++ {
			scratch = scratch[:0]
			for b := 0; b < len(e); b++ {
				if mask&(1<<uint(b)) != 0 {
					scratch = append(scratch, e[b])
				}
			}
			if w.find(scratch) >= 0 {
				return // dominated
			}
		}
	} else {
		// A subset of e contains at least one vertex of e, but not
		// necessarily e[0]: scan the incidences of every vertex of e.
		for _, v := range e {
			for _, id := range w.liveEdgesWith(v) {
				f := w.verts[id]
				if len(f) < len(e) && ContainsSorted(e, f) {
					return
				}
			}
		}
	}
	// Kill live supersets of e: all of them contain e[0].
	for _, id := range w.liveEdgesWith(e[0]) {
		f := w.verts[id]
		if len(f) > len(e) && ContainsSorted(f, e) {
			w.kill(id)
		}
	}
	w.insert(e)
}

// RemoveSingletons deletes every singleton edge, returning its vertex,
// and kills all remaining edges incident to those vertices (the
// vertices are permanently blocked, so edges through them can never be
// completed). Mirrors the BL cleanup semantics.
func (w *Working) RemoveSingletons() []V {
	var blocked []V
	for id, e := range w.verts {
		if e != nil && len(e) == 1 {
			blocked = append(blocked, e[0])
			w.kill(id)
		}
	}
	for _, v := range blocked {
		for _, id := range w.liveEdgesWith(v) {
			w.kill(id)
		}
	}
	return blocked
}

// UsedVertices returns the mask of vertices on at least one live edge.
func (w *Working) UsedVertices() []bool {
	used := make([]bool, w.n)
	for _, e := range w.verts {
		for _, v := range e {
			used[v] = true
		}
	}
	return used
}
