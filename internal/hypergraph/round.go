package hypergraph

import (
	"sort"

	"repro/internal/par"
)

// This file implements the allocation-free round pipeline: the
// per-round hypergraph transforms of the SBL/BL/KUW loops, fused into
// single passes over the flat CSR arenas and double-buffered through a
// caller-owned RoundScratch so that a round costs zero heap allocations
// once the buffers are warm. Results are edge-set-identical to the pure
// pipeline in ops.go (property-tested in round_test.go).

// parallelScanThreshold is the arena size above which the per-edge
// classification and scatter passes are sharded over the worker pool.
// Below it the sequential loop wins (and allocates nothing at all).
const parallelScanThreshold = 1 << 14

// csrBuf is one reusable CSR arena plus the Hypergraph header served
// from it.
type csrBuf struct {
	verts []V
	off   []int32
	edges []Edge
	hg    Hypergraph
}

// grow reslices the buffer's arrays to the requested sizes, reallocating
// only when capacity is insufficient.
func (b *csrBuf) grow(nVerts, nEdges int) {
	if cap(b.verts) < nVerts {
		b.verts = make([]V, nVerts)
	} else {
		b.verts = b.verts[:nVerts]
	}
	if cap(b.off) < nEdges+1 {
		b.off = make([]int32, nEdges+1)
	} else {
		b.off = b.off[:nEdges+1]
	}
	if cap(b.edges) < nEdges {
		b.edges = make([]Edge, nEdges)
	} else {
		b.edges = b.edges[:nEdges]
	}
}

// finish rebuilds the edge headers from off/verts and installs the
// Hypergraph header.
func (b *csrBuf) finish(n, dim int) *Hypergraph {
	for i := range b.edges {
		b.edges[i] = b.verts[b.off[i]:b.off[i+1]:b.off[i+1]]
	}
	b.hg = Hypergraph{n: n, dim: dim, verts: b.verts, off: b.off, edges: b.edges}
	return &b.hg
}

// RoundScratch holds the reusable arenas of the fused round pipeline.
// NextRound double-buffers through ring: each call writes the buffer
// the input does not occupy, so the result of call k is valid exactly
// until call k+2 — callers thread `cur = NextRound(cur, …)` and must
// not retain older rounds (Clone what must survive). InduceInto has a
// dedicated buffer, overwritten by the next InduceInto only, so an
// induced sub-hypergraph stays valid across interleaved NextRound
// calls. The zero value is ready to use; a RoundScratch must not be
// shared between concurrent solvers.
type RoundScratch struct {
	ring    [2]csrBuf
	ringIdx int
	sample  csrBuf
	keep    []int32 // per input edge: output edge index, or -1 dropped
	pos     []int32 // per input edge: output arena offset
	spill   []V     // reorder arena for the rare out-of-order repack
	stage   edgeSorter
}

// edgeSorter sorts edge headers lexicographically; kept in the scratch
// so sort.Sort receives a persistent interface value (no allocation).
type edgeSorter struct{ edges []Edge }

func (s *edgeSorter) Len() int           { return len(s.edges) }
func (s *edgeSorter) Less(i, j int) bool { return lessEdge(s.edges[i], s.edges[j]) }
func (s *edgeSorter) Swap(i, j int)      { s.edges[i], s.edges[j] = s.edges[j], s.edges[i] }

// target returns the ring buffer NextRound may write: the one cur does
// not occupy.
func (scr *RoundScratch) target(cur *Hypergraph) *csrBuf {
	idx := scr.ringIdx
	if cur == &scr.ring[idx].hg {
		idx = 1 - idx
	}
	scr.ringIdx = idx
	return &scr.ring[idx]
}

func (scr *RoundScratch) growClassify(m int) {
	if cap(scr.keep) < m {
		scr.keep = make([]int32, m)
		scr.pos = make([]int32, m)
	} else {
		scr.keep = scr.keep[:m]
		scr.pos = scr.pos[:m]
	}
}

// InduceInto is Induced on scratch storage: it returns the
// sub-hypergraph of h restricted to edges fully inside {v : in(v)},
// built in the scratch's dedicated sample buffer. The result is valid
// until the next InduceInto call on the same scratch and must not be
// retained beyond it. h must not itself be the previous InduceInto
// result.
func InduceInto(h *Hypergraph, in func(V) bool, scr *RoundScratch) *Hypergraph {
	m := len(h.edges)
	scr.growClassify(m)
	keep, pos := scr.keep, scr.pos
	if len(h.verts) >= parallelScanThreshold {
		par.ForBlocked(nil, m, func(lo, hi int) { induceClassify(h, in, keep, lo, hi) })
	} else {
		induceClassify(h, in, keep, 0, m)
	}
	// Exclusive scan: assign output slots. Kept edges preserve canonical
	// order, so no re-sort is needed.
	outEdges, outVerts, dim := 0, 0, 0
	for i := 0; i < m; i++ {
		if keep[i] < 0 {
			continue
		}
		keep[i] = int32(outEdges)
		pos[i] = int32(outVerts)
		outEdges++
		k := len(h.edges[i])
		outVerts += k
		if k > dim {
			dim = k
		}
	}
	dst := &scr.sample
	dst.grow(outVerts, outEdges)
	if outVerts >= parallelScanThreshold {
		par.ForBlocked(nil, m, func(lo, hi int) { induceScatter(h, keep, pos, dst, lo, hi) })
	} else {
		induceScatter(h, keep, pos, dst, 0, m)
	}
	dst.off[outEdges] = int32(outVerts)
	return dst.finish(h.n, dim)
}

// induceClassify marks edges [lo, hi): keep[i] = 1 if edge i lies fully
// inside the induced set, else -1.
func induceClassify(h *Hypergraph, in func(V) bool, keep []int32, lo, hi int) {
	for i := lo; i < hi; i++ {
		keep[i] = 1
		for _, v := range h.edges[i] {
			if !in(v) {
				keep[i] = -1
				break
			}
		}
	}
}

// induceScatter copies surviving edges of [lo, hi) into their assigned
// arena slots.
func induceScatter(h *Hypergraph, keep, pos []int32, dst *csrBuf, lo, hi int) {
	for i := lo; i < hi; i++ {
		if keep[i] < 0 {
			continue
		}
		dst.off[keep[i]] = pos[i]
		copy(dst.verts[pos[i]:], h.edges[i])
	}
}

// NextRound applies one fused solver round to cur: edges touching a red
// vertex die (DiscardTouching), surviving edges shrink by the blue
// vertices (Shrink), and the result is re-canonicalized — all in single
// passes over the CSR arena into the scratch's other ring buffer. The
// second return value counts edges that became empty (fully blue), an
// independence violation for a correct pipeline.
//
// The returned hypergraph occupies scratch storage: it is valid until
// the next-but-one NextRound call on the same scratch (double
// buffering), so callers thread it as the next round's cur and never
// retain older rounds. isRed and isBlue must be disjoint.
func NextRound(cur *Hypergraph, isRed, isBlue func(V) bool, scr *RoundScratch) (*Hypergraph, int) {
	m := len(cur.edges)
	scr.growClassify(m)
	keep, pos := scr.keep, scr.pos
	// Pass 1: classify every edge — dead on a red vertex, else its
	// post-shrink size (0 = emptied).
	if len(cur.verts) >= parallelScanThreshold {
		par.ForBlocked(nil, m, func(lo, hi int) { roundClassify(cur, isRed, isBlue, keep, lo, hi) })
	} else {
		roundClassify(cur, isRed, isBlue, keep, 0, m)
	}
	// Scan: slot assignment plus the emptied count and dimension.
	outEdges, outVerts, dim, emptied := 0, 0, 0, 0
	for i := 0; i < m; i++ {
		switch {
		case keep[i] < 0:
			continue
		case keep[i] == 0:
			emptied++
			keep[i] = -1
			continue
		}
		k := int(keep[i])
		keep[i] = int32(outEdges)
		pos[i] = int32(outVerts)
		outEdges++
		outVerts += k
		if k > dim {
			dim = k
		}
	}
	dst := scr.target(cur)
	dst.grow(outVerts, outEdges)
	// Pass 2: scatter surviving vertices.
	if outVerts >= parallelScanThreshold {
		par.ForBlocked(nil, m, func(lo, hi int) { roundScatter(cur, isBlue, keep, pos, dst, lo, hi) })
	} else {
		roundScatter(cur, isBlue, keep, pos, dst, 0, m)
	}
	dst.off[outEdges] = int32(outVerts)
	next := dst.finish(cur.n, dim)
	// Shrinking can break the lexicographic edge order and create
	// duplicate edges; detect in one comparison pass and
	// re-canonicalize only then (blue-free rounds skip this entirely).
	sorted := true
	for i := 1; i < outEdges; i++ {
		if !lessEdge(next.edges[i-1], next.edges[i]) {
			sorted = false
			break
		}
	}
	if !sorted {
		scr.recanonicalize(dst)
		next = &dst.hg
	}
	return next, emptied
}

// roundClassify computes, for each edge of [lo, hi), -1 if it touches a
// red vertex, else its post-shrink size (0 = would become empty).
func roundClassify(cur *Hypergraph, isRed, isBlue func(V) bool, keep []int32, lo, hi int) {
	for i := lo; i < hi; i++ {
		size := int32(0)
		for _, v := range cur.edges[i] {
			if isRed(v) {
				size = -1
				break
			}
			if !isBlue(v) {
				size++
			}
		}
		keep[i] = size
	}
}

// roundScatter writes the non-blue vertices of surviving edges of
// [lo, hi) into their assigned arena slots.
func roundScatter(cur *Hypergraph, isBlue func(V) bool, keep, pos []int32, dst *csrBuf, lo, hi int) {
	for i := lo; i < hi; i++ {
		if keep[i] < 0 {
			continue
		}
		dst.off[keep[i]] = pos[i]
		w := pos[i]
		for _, v := range cur.edges[i] {
			if !isBlue(v) {
				dst.verts[w] = v
				w++
			}
		}
	}
}

// recanonicalize restores canonical edge order in dst: sort the
// headers, drop duplicates, then repack the arena in sorted order via
// the spill buffer (swapped back in — no allocation once warm).
func (scr *RoundScratch) recanonicalize(dst *csrBuf) {
	scr.stage.edges = dst.edges
	sort.Sort(&scr.stage)
	edges := dst.edges
	w := 0
	for i := range edges {
		if i == 0 || !equalEdge(edges[i], edges[i-1]) {
			edges[w] = edges[i]
			w++
		}
	}
	edges = edges[:w]
	total := 0
	for _, e := range edges {
		total += len(e)
	}
	if cap(scr.spill) < total {
		scr.spill = make([]V, total)
	} else {
		scr.spill = scr.spill[:total]
	}
	if cap(dst.off) < w+1 {
		dst.off = make([]int32, w+1)
	} else {
		dst.off = dst.off[:w+1]
	}
	pos := 0
	for i, e := range edges {
		dst.off[i] = int32(pos)
		copy(scr.spill[pos:], e)
		pos += len(e)
	}
	dst.off[w] = int32(total)
	// Swap arenas: the spill becomes the buffer's arena and the old
	// arena becomes the next spill.
	dst.verts, scr.spill = scr.spill, dst.verts
	dst.edges = dst.edges[:w]
	for i := range dst.edges {
		dst.edges[i] = dst.verts[dst.off[i]:dst.off[i+1]:dst.off[i+1]]
	}
	dst.hg.verts = dst.verts
	dst.hg.off = dst.off
	dst.hg.edges = dst.edges
}
