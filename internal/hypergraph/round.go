package hypergraph

import (
	"sort"

	"repro/internal/bitset"
	"repro/internal/par"
)

// This file implements the allocation-free round pipeline: the
// per-round hypergraph transforms of the SBL/BL/KUW loops, fused into
// single passes over the flat CSR arenas and double-buffered through a
// caller-owned RoundScratch so that a round costs zero heap allocations
// once the buffers are warm. Results are edge-set-identical to the pure
// pipeline in ops.go (property-tested in round_test.go).
//
// Every pass is sharded over the scratch's engine when the arena is
// large enough to pay for dispatch: classification and scatter split
// the edge list into blocks, and slot assignment runs as per-shard
// tallies + an exact prefix sum over the shards, so the assigned slots
// — and therefore the output arenas — are bit-identical to the
// sequential scan for any worker count.

// parallelScanThreshold is the arena size above which the per-edge
// classification and scatter passes are sharded over the worker pool.
// Below it the sequential loop wins (and allocates nothing at all).
const parallelScanThreshold = 1 << 14

// csrBuf is one reusable CSR arena plus the Hypergraph header served
// from it.
type csrBuf struct {
	verts []V
	off   []int32
	edges []Edge
	hg    Hypergraph
}

// grow reslices the buffer's arrays to the requested sizes, reallocating
// only when capacity is insufficient.
func (b *csrBuf) grow(nVerts, nEdges int) {
	if cap(b.verts) < nVerts {
		b.verts = make([]V, nVerts)
	} else {
		b.verts = b.verts[:nVerts]
	}
	if cap(b.off) < nEdges+1 {
		b.off = make([]int32, nEdges+1)
	} else {
		b.off = b.off[:nEdges+1]
	}
	if cap(b.edges) < nEdges {
		b.edges = make([]Edge, nEdges)
	} else {
		b.edges = b.edges[:nEdges]
	}
}

// finish rebuilds the edge headers from off/verts and installs the
// Hypergraph header.
func (b *csrBuf) finish(n, dim int) *Hypergraph {
	for i := range b.edges {
		b.edges[i] = b.verts[b.off[i]:b.off[i+1]:b.off[i+1]]
	}
	b.hg = Hypergraph{n: n, dim: dim, verts: b.verts, off: b.off, edges: b.edges}
	return &b.hg
}

// RoundScratch holds the reusable arenas of the fused round pipeline.
// NextRound double-buffers through ring: each call writes the buffer
// the input does not occupy, so the result of call k is valid exactly
// until call k+2 — callers thread `cur = NextRound(cur, …)` and must
// not retain older rounds (Clone what must survive). InduceInto has a
// dedicated buffer, overwritten by the next InduceInto only, so an
// induced sub-hypergraph stays valid across interleaved NextRound
// calls. The zero value is ready to use; a RoundScratch must not be
// shared between concurrent solvers.
//
// Eng bounds the parallelism of the sharded passes (zero value = whole
// machine); outputs are bit-identical for any engine, so Eng is purely
// a scheduling knob — the service sets it to the degree the job was
// granted.
type RoundScratch struct {
	Eng par.Engine

	ring    [2]csrBuf
	ringIdx int
	sample  csrBuf
	keep    []int32 // per input edge: output edge index, or -1 dropped
	pos     []int32 // per input edge: output arena offset
	spill   []V     // reorder arena for the rare out-of-order repack
	stage   edgeSorter

	// Per-shard slot-assignment tallies (edges, verts, dim, emptied).
	tallyE, tallyV, tallyD, tallyZ []int32
}

// Poison overwrites every arena the scratch has ever grown with
// garbage. The round pipeline fully rewrites whatever it reads back
// (classify writes every keep/pos slot, grow+scatter+finish write
// every arena cell of the output shape), so a poisoned scratch must
// still produce identical rounds — the workspace-pooling property
// tests call this between jobs to prove no stale state leaks through.
// Hypergraphs previously served from the scratch are invalidated.
func (scr *RoundScratch) Poison() {
	bufs := []*csrBuf{&scr.ring[0], &scr.ring[1], &scr.sample}
	for _, b := range bufs {
		for i := range b.verts {
			b.verts[i] = V(-1)
		}
		for i := range b.off {
			b.off[i] = -1
		}
		for i := range b.edges {
			b.edges[i] = nil
		}
	}
	for i := range scr.keep {
		scr.keep[i] = -7
	}
	for i := range scr.pos {
		scr.pos[i] = -7
	}
	for i := range scr.spill {
		scr.spill[i] = V(-1)
	}
	for _, t := range [][]int32{scr.tallyE, scr.tallyV, scr.tallyD, scr.tallyZ} {
		for i := range t {
			t[i] = -7
		}
	}
}

// edgeSorter sorts edge headers lexicographically; kept in the scratch
// so sort.Sort receives a persistent interface value (no allocation).
type edgeSorter struct{ edges []Edge }

func (s *edgeSorter) Len() int           { return len(s.edges) }
func (s *edgeSorter) Less(i, j int) bool { return lessEdge(s.edges[i], s.edges[j]) }
func (s *edgeSorter) Swap(i, j int)      { s.edges[i], s.edges[j] = s.edges[j], s.edges[i] }

// target returns the ring buffer NextRound may write: the one cur does
// not occupy.
func (scr *RoundScratch) target(cur *Hypergraph) *csrBuf {
	idx := scr.ringIdx
	if cur == &scr.ring[idx].hg {
		idx = 1 - idx
	}
	scr.ringIdx = idx
	return &scr.ring[idx]
}

func (scr *RoundScratch) growClassify(m int) {
	if cap(scr.keep) < m {
		scr.keep = make([]int32, m)
		scr.pos = make([]int32, m)
	} else {
		scr.keep = scr.keep[:m]
		scr.pos = scr.pos[:m]
	}
}

// growTallies sizes and zeroes the per-shard tally slots. Zeroing
// matters: trailing shards whose block is empty are never invoked by
// ForShards, and the prefix sum reads every slot — a recycled slot
// must not leak a previous round's counts.
func (scr *RoundScratch) growTallies(shards int) {
	if cap(scr.tallyE) < shards {
		scr.tallyE = make([]int32, shards)
		scr.tallyV = make([]int32, shards)
		scr.tallyD = make([]int32, shards)
		scr.tallyZ = make([]int32, shards)
		return
	}
	scr.tallyE = scr.tallyE[:shards]
	scr.tallyV = scr.tallyV[:shards]
	scr.tallyD = scr.tallyD[:shards]
	scr.tallyZ = scr.tallyZ[:shards]
	for i := 0; i < shards; i++ {
		scr.tallyE[i], scr.tallyV[i], scr.tallyD[i], scr.tallyZ[i] = 0, 0, 0, 0
	}
}

// assignSlots turns the classify pass's keep array (−1 = dead, else
// post-transform size; 0 counts as emptied and is demoted to −1) into
// output slot assignments: keep[i] becomes the output edge index and
// pos[i] the output arena offset for every surviving edge. It returns
// the output shape. Large edge lists run as per-shard tallies plus an
// exact prefix sum over the shards, which assigns the same slots as
// the sequential scan for any worker count.
func (scr *RoundScratch) assignSlots(m int) (outEdges, outVerts, dim, emptied int) {
	keep, pos := scr.keep, scr.pos
	shards := scr.Eng.NumShards(m)
	if m < parallelScanThreshold || shards <= 1 {
		for i := 0; i < m; i++ {
			k := keep[i]
			switch {
			case k < 0:
				continue
			case k == 0:
				emptied++
				keep[i] = -1
				continue
			}
			keep[i] = int32(outEdges)
			pos[i] = int32(outVerts)
			outEdges++
			outVerts += int(k)
			if int(k) > dim {
				dim = int(k)
			}
		}
		return
	}
	scr.growTallies(shards)
	tE, tV, tD, tZ := scr.tallyE, scr.tallyV, scr.tallyD, scr.tallyZ
	scr.Eng.ForShards(nil, m, shards, func(s, lo, hi int) {
		var e, v, d, z int32
		for i := lo; i < hi; i++ {
			k := keep[i]
			switch {
			case k < 0:
				continue
			case k == 0:
				z++
				keep[i] = -1
				continue
			}
			e++
			v += k
			if k > d {
				d = k
			}
		}
		tE[s], tV[s], tD[s], tZ[s] = e, v, d, z
	})
	// Exact exclusive prefix over the shard tallies (shards are few).
	var baseE, baseV int32
	for s := 0; s < shards; s++ {
		e, v := tE[s], tV[s]
		tE[s], tV[s] = baseE, baseV
		baseE += e
		baseV += v
		if int(tD[s]) > dim {
			dim = int(tD[s])
		}
		emptied += int(tZ[s])
	}
	outEdges, outVerts = int(baseE), int(baseV)
	scr.Eng.ForShards(nil, m, shards, func(s, lo, hi int) {
		e, v := tE[s], tV[s]
		for i := lo; i < hi; i++ {
			k := keep[i]
			if k < 0 {
				continue
			}
			keep[i] = e
			pos[i] = v
			e++
			v += k
		}
	})
	return
}

// InduceInto is Induced on scratch storage: it returns the
// sub-hypergraph of h restricted to edges fully inside {v : in(v)},
// built in the scratch's dedicated sample buffer. The result is valid
// until the next InduceInto call on the same scratch and must not be
// retained beyond it. h must not itself be the previous InduceInto
// result.
func InduceInto(h *Hypergraph, in func(V) bool, scr *RoundScratch) *Hypergraph {
	m := len(h.edges)
	scr.growClassify(m)
	keep := scr.keep
	if len(h.verts) >= parallelScanThreshold {
		scr.Eng.ForBlocked(nil, m, func(lo, hi int) { induceClassify(h, in, keep, lo, hi) })
	} else {
		induceClassify(h, in, keep, 0, m)
	}
	return scr.induceFinish(h)
}

// InduceIntoBits is InduceInto with the induced set given as a bitset:
// the classification pass tests membership with branch-free word
// probes instead of an indirect call per vertex.
func InduceIntoBits(h *Hypergraph, in bitset.Set, scr *RoundScratch) *Hypergraph {
	m := len(h.edges)
	scr.growClassify(m)
	keep := scr.keep
	if len(h.verts) >= parallelScanThreshold {
		scr.Eng.ForBlocked(nil, m, func(lo, hi int) { induceClassifyBits(h, in, keep, lo, hi) })
	} else {
		induceClassifyBits(h, in, keep, 0, m)
	}
	return scr.induceFinish(h)
}

// induceFinish runs the shared slot-assignment and scatter phases of
// InduceInto/InduceIntoBits.
func (scr *RoundScratch) induceFinish(h *Hypergraph) *Hypergraph {
	m := len(h.edges)
	outEdges, outVerts, dim, _ := scr.assignSlots(m)
	dst := &scr.sample
	dst.grow(outVerts, outEdges)
	keep, pos := scr.keep, scr.pos
	if outVerts >= parallelScanThreshold {
		scr.Eng.ForBlocked(nil, m, func(lo, hi int) { induceScatter(h, keep, pos, dst, lo, hi) })
	} else {
		induceScatter(h, keep, pos, dst, 0, m)
	}
	dst.off[outEdges] = int32(outVerts)
	return dst.finish(h.n, dim)
}

// induceClassify marks edges [lo, hi): keep[i] = the edge's size if it
// lies fully inside the induced set, else -1.
func induceClassify(h *Hypergraph, in func(V) bool, keep []int32, lo, hi int) {
	for i := lo; i < hi; i++ {
		e := h.edges[i]
		keep[i] = int32(len(e))
		for _, v := range e {
			if !in(v) {
				keep[i] = -1
				break
			}
		}
	}
}

// induceClassifyBits is induceClassify against a bitset.
func induceClassifyBits(h *Hypergraph, in bitset.Set, keep []int32, lo, hi int) {
	for i := lo; i < hi; i++ {
		e := h.edges[i]
		keep[i] = int32(len(e))
		for _, v := range e {
			if !in.Has(int(v)) {
				keep[i] = -1
				break
			}
		}
	}
}

// induceScatter copies surviving edges of [lo, hi) into their assigned
// arena slots.
func induceScatter(h *Hypergraph, keep, pos []int32, dst *csrBuf, lo, hi int) {
	for i := lo; i < hi; i++ {
		if keep[i] < 0 {
			continue
		}
		dst.off[keep[i]] = pos[i]
		copy(dst.verts[pos[i]:], h.edges[i])
	}
}

// NextRound applies one fused solver round to cur: edges touching a red
// vertex die (DiscardTouching), surviving edges shrink by the blue
// vertices (Shrink), and the result is re-canonicalized — all in single
// passes over the CSR arena into the scratch's other ring buffer. The
// second return value counts edges that became empty (fully blue), an
// independence violation for a correct pipeline.
//
// The returned hypergraph occupies scratch storage: it is valid until
// the next-but-one NextRound call on the same scratch (double
// buffering), so callers thread it as the next round's cur and never
// retain older rounds. isRed and isBlue must be disjoint.
func NextRound(cur *Hypergraph, isRed, isBlue func(V) bool, scr *RoundScratch) (*Hypergraph, int) {
	m := len(cur.edges)
	scr.growClassify(m)
	keep := scr.keep
	// Pass 1: classify every edge — dead on a red vertex, else its
	// post-shrink size (0 = emptied).
	if len(cur.verts) >= parallelScanThreshold {
		scr.Eng.ForBlocked(nil, m, func(lo, hi int) { roundClassify(cur, isRed, isBlue, keep, lo, hi) })
	} else {
		roundClassify(cur, isRed, isBlue, keep, 0, m)
	}
	return scr.roundFinish(cur, isBlue, nil)
}

// NextRoundBits is NextRound with the red and blue sets given as
// bitsets; a nil red set means no vertex is red (the BL stages), blue
// must be non-nil. The classification and scatter passes test
// membership with word probes.
func NextRoundBits(cur *Hypergraph, red, blue bitset.Set, scr *RoundScratch) (*Hypergraph, int) {
	m := len(cur.edges)
	scr.growClassify(m)
	keep := scr.keep
	if len(cur.verts) >= parallelScanThreshold {
		scr.Eng.ForBlocked(nil, m, func(lo, hi int) { roundClassifyBits(cur, red, blue, keep, lo, hi) })
	} else {
		roundClassifyBits(cur, red, blue, keep, 0, m)
	}
	return scr.roundFinish(cur, nil, blue)
}

// roundFinish runs the shared slot-assignment, scatter and
// re-canonicalization phases of NextRound/NextRoundBits. Exactly one of
// isBlue and blue is non-nil and selects the scatter flavor; the
// sequential path calls the scatter loops directly so a warm round
// allocates nothing.
func (scr *RoundScratch) roundFinish(cur *Hypergraph, isBlue func(V) bool, blue bitset.Set) (*Hypergraph, int) {
	m := len(cur.edges)
	outEdges, outVerts, dim, emptied := scr.assignSlots(m)
	dst := scr.target(cur)
	dst.grow(outVerts, outEdges)
	keep, pos := scr.keep, scr.pos
	// Pass 2: scatter surviving vertices.
	switch {
	case outVerts >= parallelScanThreshold && blue != nil:
		scr.Eng.ForBlocked(nil, m, func(lo, hi int) { roundScatterBits(cur, blue, keep, pos, dst, lo, hi) })
	case outVerts >= parallelScanThreshold:
		scr.Eng.ForBlocked(nil, m, func(lo, hi int) { roundScatter(cur, isBlue, keep, pos, dst, lo, hi) })
	case blue != nil:
		roundScatterBits(cur, blue, keep, pos, dst, 0, m)
	default:
		roundScatter(cur, isBlue, keep, pos, dst, 0, m)
	}
	dst.off[outEdges] = int32(outVerts)
	next := dst.finish(cur.n, dim)
	// Shrinking can break the lexicographic edge order and create
	// duplicate edges; detect in one comparison pass and
	// re-canonicalize only then (blue-free rounds skip this entirely).
	sorted := true
	for i := 1; i < outEdges; i++ {
		if !lessEdge(next.edges[i-1], next.edges[i]) {
			sorted = false
			break
		}
	}
	if !sorted {
		scr.recanonicalize(dst)
		next = &dst.hg
	}
	return next, emptied
}

// roundClassify computes, for each edge of [lo, hi), -1 if it touches a
// red vertex, else its post-shrink size (0 = would become empty).
func roundClassify(cur *Hypergraph, isRed, isBlue func(V) bool, keep []int32, lo, hi int) {
	for i := lo; i < hi; i++ {
		size := int32(0)
		for _, v := range cur.edges[i] {
			if isRed(v) {
				size = -1
				break
			}
			if !isBlue(v) {
				size++
			}
		}
		keep[i] = size
	}
}

// roundClassifyBits is roundClassify against bitsets; a nil red set
// skips the red test entirely.
func roundClassifyBits(cur *Hypergraph, red, blue bitset.Set, keep []int32, lo, hi int) {
	if red == nil {
		for i := lo; i < hi; i++ {
			size := int32(0)
			for _, v := range cur.edges[i] {
				if !blue.Has(int(v)) {
					size++
				}
			}
			keep[i] = size
		}
		return
	}
	for i := lo; i < hi; i++ {
		size := int32(0)
		for _, v := range cur.edges[i] {
			if red.Has(int(v)) {
				size = -1
				break
			}
			if !blue.Has(int(v)) {
				size++
			}
		}
		keep[i] = size
	}
}

// roundScatter writes the non-blue vertices of surviving edges of
// [lo, hi) into their assigned arena slots.
func roundScatter(cur *Hypergraph, isBlue func(V) bool, keep, pos []int32, dst *csrBuf, lo, hi int) {
	for i := lo; i < hi; i++ {
		if keep[i] < 0 {
			continue
		}
		dst.off[keep[i]] = pos[i]
		w := pos[i]
		for _, v := range cur.edges[i] {
			if !isBlue(v) {
				dst.verts[w] = v
				w++
			}
		}
	}
}

// roundScatterBits is roundScatter against a blue bitset.
func roundScatterBits(cur *Hypergraph, blue bitset.Set, keep, pos []int32, dst *csrBuf, lo, hi int) {
	for i := lo; i < hi; i++ {
		if keep[i] < 0 {
			continue
		}
		dst.off[keep[i]] = pos[i]
		w := pos[i]
		for _, v := range cur.edges[i] {
			if !blue.Has(int(v)) {
				dst.verts[w] = v
				w++
			}
		}
	}
}

// recanonicalize restores canonical edge order in dst: sort the
// headers, drop duplicates, then repack the arena in sorted order via
// the spill buffer (swapped back in — no allocation once warm).
func (scr *RoundScratch) recanonicalize(dst *csrBuf) {
	scr.stage.edges = dst.edges
	sort.Sort(&scr.stage)
	edges := dst.edges
	w := 0
	for i := range edges {
		if i == 0 || !equalEdge(edges[i], edges[i-1]) {
			edges[w] = edges[i]
			w++
		}
	}
	edges = edges[:w]
	total := 0
	for _, e := range edges {
		total += len(e)
	}
	if cap(scr.spill) < total {
		scr.spill = make([]V, total)
	} else {
		scr.spill = scr.spill[:total]
	}
	if cap(dst.off) < w+1 {
		dst.off = make([]int32, w+1)
	} else {
		dst.off = dst.off[:w+1]
	}
	pos := 0
	for i, e := range edges {
		dst.off[i] = int32(pos)
		copy(scr.spill[pos:], e)
		pos += len(e)
	}
	dst.off[w] = int32(total)
	// Swap arenas: the spill becomes the buffer's arena and the old
	// arena becomes the next spill.
	dst.verts, scr.spill = scr.spill, dst.verts
	dst.edges = dst.edges[:w]
	for i := range dst.edges {
		dst.edges[i] = dst.verts[dst.off[i]:dst.off[i+1]:dst.off[i+1]]
	}
	dst.hg.verts = dst.verts
	dst.hg.off = dst.off
	dst.hg.edges = dst.edges
}
