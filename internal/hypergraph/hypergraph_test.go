package hypergraph

import (
	"testing"

	"repro/internal/rng"
)

func TestBuilderCanonicalizes(t *testing.T) {
	h, err := NewBuilder(10).
		AddEdge(3, 1, 2).
		AddEdge(2, 1, 3). // duplicate after sorting
		AddEdge(5, 5, 6). // duplicate vertex inside edge
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if h.M() != 2 {
		t.Fatalf("expected 2 canonical edges, got %d: %v", h.M(), h.Edges())
	}
	if !h.HasEdge(1, 2, 3) {
		t.Fatal("missing canonical edge {1,2,3}")
	}
	if !h.HasEdge(5, 6) {
		t.Fatal("edge {5,5,6} should canonicalize to {5,6}")
	}
	if h.Dim() != 3 {
		t.Fatalf("dim = %d", h.Dim())
	}
}

func TestBuilderRejectsEmptyEdge(t *testing.T) {
	if _, err := NewBuilder(5).AddEdge().Build(); err == nil {
		t.Fatal("empty edge accepted")
	}
}

func TestBuilderRejectsOutOfRange(t *testing.T) {
	if _, err := NewBuilder(5).AddEdge(0, 5).Build(); err == nil {
		t.Fatal("out-of-range vertex accepted")
	}
	if _, err := NewBuilder(5).AddEdge(-1, 2).Build(); err == nil {
		t.Fatal("negative vertex accepted")
	}
}

func TestEmptyHypergraph(t *testing.T) {
	h := NewBuilder(7).MustBuild()
	if h.N() != 7 || h.M() != 0 || h.Dim() != 0 {
		t.Fatalf("bad empty hypergraph: %v", h)
	}
	all := make([]bool, 7)
	for i := range all {
		all[i] = true
	}
	if err := VerifyMIS(h, all); err != nil {
		t.Fatalf("full set must be the MIS of an edgeless hypergraph: %v", err)
	}
}

func TestIncidence(t *testing.T) {
	h := NewBuilder(5).AddEdge(0, 1).AddEdge(1, 2, 3).MustBuild()
	inc := h.Incidence()
	if len(inc[1]) != 2 {
		t.Fatalf("vertex 1 should touch 2 edges, got %d", len(inc[1]))
	}
	if len(inc[4]) != 0 {
		t.Fatal("vertex 4 should be isolated")
	}
	deg := h.VertexDegrees()
	if deg[1] != 2 || deg[0] != 1 || deg[4] != 0 {
		t.Fatalf("degrees wrong: %v", deg)
	}
}

func TestDimHistogram(t *testing.T) {
	h := NewBuilder(6).AddEdge(0, 1).AddEdge(2, 3).AddEdge(0, 1, 2).MustBuild()
	hist := h.DimHistogram()
	if hist[2] != 2 || hist[3] != 1 {
		t.Fatalf("hist = %v", hist)
	}
}

func TestContainsSorted(t *testing.T) {
	e := Edge{1, 3, 5, 7}
	cases := []struct {
		x    Edge
		want bool
	}{
		{Edge{}, true},
		{Edge{1}, true},
		{Edge{7}, true},
		{Edge{3, 5}, true},
		{Edge{1, 3, 5, 7}, true},
		{Edge{2}, false},
		{Edge{1, 2}, false},
		{Edge{1, 3, 5, 7, 9}, false},
	}
	for _, c := range cases {
		if got := ContainsSorted(e, c.x); got != c.want {
			t.Fatalf("ContainsSorted(%v, %v) = %v", e, c.x, got)
		}
	}
}

func TestIntersectionSize(t *testing.T) {
	if got := IntersectionSize(Edge{1, 2, 3}, Edge{2, 3, 4}); got != 2 {
		t.Fatalf("got %d", got)
	}
	if got := IntersectionSize(Edge{1}, Edge{2}); got != 0 {
		t.Fatalf("got %d", got)
	}
	if got := IntersectionSize(Edge{}, Edge{1, 2}); got != 0 {
		t.Fatalf("got %d", got)
	}
}

func TestDiffSorted(t *testing.T) {
	got := DiffSorted(Edge{1, 2, 3, 4}, Edge{2, 4})
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("got %v", got)
	}
	got = DiffSorted(Edge{1, 2}, Edge{})
	if len(got) != 2 {
		t.Fatalf("got %v", got)
	}
	got = DiffSorted(Edge{1, 2}, Edge{1, 2})
	if len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	h := NewBuilder(4).AddEdge(0, 1, 2).MustBuild()
	c := h.Clone()
	c.edges[0][0] = 3
	if h.edges[0][0] != 0 {
		t.Fatal("Clone shares edge storage")
	}
}

func TestVerifyMISPositive(t *testing.T) {
	// Triangle hypergraph {0,1,2}; MIS examples: {0,1,3} on 4 vertices.
	h := NewBuilder(4).AddEdge(0, 1, 2).MustBuild()
	in := []bool{true, true, false, true}
	if err := VerifyMIS(h, in); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyMISNotIndependent(t *testing.T) {
	h := NewBuilder(3).AddEdge(0, 1, 2).MustBuild()
	in := []bool{true, true, true}
	if err := VerifyMIS(h, in); err == nil {
		t.Fatal("accepted dependent set")
	}
}

func TestVerifyMISNotMaximal(t *testing.T) {
	h := NewBuilder(4).AddEdge(0, 1, 2).MustBuild()
	in := []bool{true, false, false, true} // vertex 1 addable
	if err := VerifyMIS(h, in); err == nil {
		t.Fatal("accepted non-maximal set")
	}
}

func TestVerifyMISIsolatedVertexMustBeIn(t *testing.T) {
	h := NewBuilder(3).AddEdge(0, 1).MustBuild()
	in := []bool{true, false, false} // vertex 2 isolated, must be in
	if err := VerifyMIS(h, in); err == nil {
		t.Fatal("isolated vertex omitted but set accepted")
	}
	in[2] = true
	if err := VerifyMIS(h, in); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyMISWrongLength(t *testing.T) {
	h := NewBuilder(3).AddEdge(0, 1).MustBuild()
	if err := VerifyMIS(h, []bool{true}); err == nil {
		t.Fatal("wrong-length mask accepted")
	}
}

func TestMaskListRoundTrip(t *testing.T) {
	vs := []V{1, 4, 5}
	mask := MaskFromList(8, vs)
	back := ListFromMask(mask)
	if len(back) != 3 || back[0] != 1 || back[1] != 4 || back[2] != 5 {
		t.Fatalf("round trip gave %v", back)
	}
}

func TestInduced(t *testing.T) {
	h := NewBuilder(6).AddEdge(0, 1).AddEdge(1, 2).AddEdge(3, 4, 5).MustBuild()
	in := map[V]bool{0: true, 1: true, 2: true}
	sub := Induced(h, func(v V) bool { return in[v] })
	if sub.M() != 2 {
		t.Fatalf("induced should keep 2 edges, got %d", sub.M())
	}
	if sub.N() != h.N() {
		t.Fatal("induced must preserve the vertex universe")
	}
	if !sub.HasEdge(0, 1) || !sub.HasEdge(1, 2) {
		t.Fatalf("wrong edges: %v", sub.Edges())
	}
}

func TestDiscardTouching(t *testing.T) {
	h := NewBuilder(5).AddEdge(0, 1).AddEdge(2, 3).MustBuild()
	got := DiscardTouching(h, func(v V) bool { return v == 1 })
	if got.M() != 1 || !got.HasEdge(2, 3) {
		t.Fatalf("got %v", got.Edges())
	}
}

func TestShrink(t *testing.T) {
	h := NewBuilder(5).AddEdge(0, 1, 2).AddEdge(3, 4).MustBuild()
	got, emptied := Shrink(h, func(v V) bool { return v == 1 })
	if emptied != 0 {
		t.Fatalf("emptied = %d", emptied)
	}
	if !got.HasEdge(0, 2) || !got.HasEdge(3, 4) {
		t.Fatalf("got %v", got.Edges())
	}
}

func TestShrinkReportsEmptied(t *testing.T) {
	h := NewBuilder(3).AddEdge(0, 1).MustBuild()
	_, emptied := Shrink(h, func(v V) bool { return true })
	if emptied != 1 {
		t.Fatalf("emptied = %d, want 1", emptied)
	}
}

func TestShrinkMergesDuplicates(t *testing.T) {
	// {0,1,2} and {0,1,3} both shrink to {0,1} when 2,3 drop; dedup to one.
	h := NewBuilder(4).AddEdge(0, 1, 2).AddEdge(0, 1, 3).MustBuild()
	got, _ := Shrink(h, func(v V) bool { return v >= 2 })
	if got.M() != 1 || !got.HasEdge(0, 1) {
		t.Fatalf("got %v", got.Edges())
	}
}

func TestRemoveSupersets(t *testing.T) {
	h := NewBuilder(5).AddEdge(0, 1).AddEdge(0, 1, 2).AddEdge(2, 3, 4).MustBuild()
	got := RemoveSupersets(h)
	if got.M() != 2 {
		t.Fatalf("got %d edges: %v", got.M(), got.Edges())
	}
	if got.HasEdge(0, 1, 2) {
		t.Fatal("superset {0,1,2} of {0,1} survived")
	}
}

func TestRemoveSupersetsKeepsIncomparable(t *testing.T) {
	h := NewBuilder(6).AddEdge(0, 1, 2).AddEdge(1, 2, 3).AddEdge(3, 4).MustBuild()
	got := RemoveSupersets(h)
	if got.M() != 3 {
		t.Fatalf("incomparable edges dropped: %v", got.Edges())
	}
}

func TestRemoveSingletons(t *testing.T) {
	h := NewBuilder(5).AddEdge(2).AddEdge(0, 1).AddEdge(3).MustBuild()
	got, blocked := RemoveSingletons(h)
	if got.M() != 1 || !got.HasEdge(0, 1) {
		t.Fatalf("got %v", got.Edges())
	}
	if len(blocked) != 2 {
		t.Fatalf("blocked = %v", blocked)
	}
	seen := map[V]bool{}
	for _, v := range blocked {
		seen[v] = true
	}
	if !seen[2] || !seen[3] {
		t.Fatalf("blocked = %v", blocked)
	}
}

func TestRemoveSingletonsNoop(t *testing.T) {
	h := NewBuilder(4).AddEdge(0, 1).MustBuild()
	got, blocked := RemoveSingletons(h)
	if got != h || blocked != nil {
		t.Fatal("no-singleton case should return the same hypergraph")
	}
}

func TestUsedVertices(t *testing.T) {
	h := NewBuilder(4).AddEdge(1, 2).MustBuild()
	used := h.UsedVertices()
	want := []bool{false, true, true, false}
	for i := range want {
		if used[i] != want[i] {
			t.Fatalf("used = %v", used)
		}
	}
}

// --- generator validity ---

func TestRandomUniformShape(t *testing.T) {
	s := rng.New(1)
	h := RandomUniform(s, 100, 200, 3)
	if h.N() != 100 {
		t.Fatalf("n = %d", h.N())
	}
	if h.M() == 0 || h.M() > 200 {
		t.Fatalf("m = %d", h.M())
	}
	for _, e := range h.Edges() {
		if len(e) != 3 {
			t.Fatalf("non-uniform edge %v", e)
		}
		for i := 1; i < len(e); i++ {
			if e[i] <= e[i-1] {
				t.Fatalf("edge not strictly sorted: %v", e)
			}
		}
	}
}

func TestRandomMixedSizes(t *testing.T) {
	s := rng.New(2)
	h := RandomMixed(s, 200, 300, 2, 6)
	for _, e := range h.Edges() {
		if len(e) < 2 || len(e) > 6 {
			t.Fatalf("edge size %d out of [2,6]", len(e))
		}
	}
	if h.Dim() > 6 {
		t.Fatalf("dim = %d", h.Dim())
	}
}

func TestLinearIsLinear(t *testing.T) {
	s := rng.New(3)
	h := Linear(s, 300, 80, 3)
	edges := h.Edges()
	for i := range edges {
		for j := i + 1; j < len(edges); j++ {
			if IntersectionSize(edges[i], edges[j]) > 1 {
				t.Fatalf("edges %v and %v intersect in >1 vertex", edges[i], edges[j])
			}
		}
	}
	if h.M() < 40 {
		t.Fatalf("linear generator produced too few edges: %d", h.M())
	}
}

func TestPlantedMISIsIndependent(t *testing.T) {
	s := rng.New(4)
	const n, planted = 120, 40
	h := PlantedMIS(s, n, 250, 3, planted)
	mask := make([]bool, n)
	for i := 0; i < planted; i++ {
		mask[i] = true
	}
	if !IsIndependent(h, mask) {
		t.Fatal("planted set is not independent")
	}
}

func TestSunflowerStructure(t *testing.T) {
	s := rng.New(5)
	h := Sunflower(s, 100, 2, 3, 8)
	if h.M() != 8 {
		t.Fatalf("m = %d", h.M())
	}
	edges := h.Edges()
	// Any two edges intersect exactly in the core (size 2).
	for i := range edges {
		if len(edges[i]) != 5 {
			t.Fatalf("edge size %d, want 5", len(edges[i]))
		}
		for j := i + 1; j < len(edges); j++ {
			if IntersectionSize(edges[i], edges[j]) != 2 {
				t.Fatalf("edges intersect in %d, want core size 2",
					IntersectionSize(edges[i], edges[j]))
			}
		}
	}
}

func TestLayeredMigrationSizes(t *testing.T) {
	s := rng.New(6)
	h := LayeredMigration(s, 500, 2, 4, 7, 5)
	if h.Dim() != 7 {
		t.Fatalf("dim = %d", h.Dim())
	}
	hist := h.DimHistogram()
	for k := 4; k <= 7; k++ {
		if hist[k] == 0 {
			t.Fatalf("no edges of size %d: %v", k, hist)
		}
	}
}

func TestBlockPartitionLocality(t *testing.T) {
	s := rng.New(7)
	h := BlockPartition(s, 100, 10, 3, 4)
	for _, e := range h.Edges() {
		block := e[0] / 10
		for _, v := range e {
			if v/10 != block {
				t.Fatalf("edge %v crosses blocks", e)
			}
		}
	}
}

func TestCompleteCount(t *testing.T) {
	h := Complete(10, 5, 3)
	if h.M() != 10 { // C(5,3)
		t.Fatalf("m = %d, want 10", h.M())
	}
	// MIS: any 2 of the first 5 plus all of 5..9.
	mask := []bool{true, true, false, false, false, true, true, true, true, true}
	if err := VerifyMIS(h, mask); err != nil {
		t.Fatal(err)
	}
}

func TestStarHub(t *testing.T) {
	s := rng.New(8)
	h := Star(s, 50, 30, 3)
	for _, e := range h.Edges() {
		if e[0] != 0 {
			t.Fatalf("edge %v misses hub", e)
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	h1 := RandomUniform(rng.New(99), 64, 100, 3)
	h2 := RandomUniform(rng.New(99), 64, 100, 3)
	if h1.M() != h2.M() {
		t.Fatal("same seed, different edge count")
	}
	for i := range h1.Edges() {
		if !equalEdge(h1.Edge(i), h2.Edge(i)) {
			t.Fatalf("edge %d differs", i)
		}
	}
}
