// Package hypergraph implements the hypergraph representation shared by
// every algorithm in this repository, together with the structural
// quantities Kelsen's analysis of the Beame–Luby algorithm is phrased in
// (the neighbourhood counts N_j(x,H), normalized degrees d_j(x,H) and
// maximum normalized degrees Δ_i(H), Δ(H)), the trimming operations the
// SBL and BL loops perform each round, random instance generators, and
// verification of independence and maximality.
//
// Terminology follows the paper: a hypergraph H = (V, E) has n vertices
// and m edges, each edge being a subset of V; the dimension is the
// maximum edge size. A vertex set is independent if it contains no edge,
// and a maximal independent set (MIS) is an independent set contained in
// no larger one.
//
// # Representation
//
// A Hypergraph stores its edges in flat CSR (compressed sparse row)
// form: one contiguous vertex arena and an offsets array, with the
// public Edge values served as subslices of the arena:
//
//	verts []V      one arena holding every edge's vertices back to back
//	off   []int32  len M()+1; edge i is verts[off[i]:off[i+1]]
//	edges []Edge   cached three-index subslice headers into verts
//
// Edges are kept in canonical order (lexicographically sorted,
// deduplicated, each edge internally sorted and strictly increasing),
// so edge i < edge i+1 under lessEdge and binary search over the edge
// list is valid.
//
// Ownership rules: a Hypergraph and everything reachable from Edges()
// is immutable after construction — callers must never write through
// the returned slices, and the package never does. The pure
// transformations in ops.go always copy surviving vertices into a
// fresh arena, so their results share no storage with their inputs.
// The scratch-based round pipeline in round.go is the one exception:
// it recycles caller-owned arenas (see RoundScratch for its aliasing
// contract).
package hypergraph

import (
	"fmt"
	"sort"
)

// V is a vertex identifier: an index in [0, N).
type V = int32

// Edge is a set of vertices stored as a strictly increasing slice.
type Edge []V

// Hypergraph is an immutable hypergraph on the vertex set {0, …, N-1}.
// Edges are deduplicated, sorted subslices of one flat CSR vertex arena
// (see the package comment for the layout). Construct via Builder or
// the generator functions; algorithms never mutate a Hypergraph in
// place.
type Hypergraph struct {
	n     int
	dim   int
	verts []V     // CSR arena: all edges' vertices, back to back
	off   []int32 // len(edges)+1; edge i is verts[off[i]:off[i+1]]
	edges []Edge  // cached headers into verts, canonical order
}

// packCanon copies an already-canonical edge list (each edge sorted and
// strictly increasing, list lex-sorted and deduplicated) into a fresh
// CSR arena. The input edges are only read.
func packCanon(n int, canon []Edge) *Hypergraph {
	total, dim := 0, 0
	for _, e := range canon {
		total += len(e)
		if len(e) > dim {
			dim = len(e)
		}
	}
	verts := make([]V, total)
	off := make([]int32, len(canon)+1)
	edges := make([]Edge, len(canon))
	pos := 0
	for i, e := range canon {
		off[i] = int32(pos)
		copy(verts[pos:], e)
		pos += len(e)
	}
	off[len(canon)] = int32(total)
	for i := range edges {
		edges[i] = verts[off[i]:off[i+1]:off[i+1]]
	}
	return &Hypergraph{n: n, dim: dim, verts: verts, off: off, edges: edges}
}

// NewBuilder returns a builder for a hypergraph on n vertices.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("hypergraph: negative vertex count")
	}
	return &Builder{n: n}
}

// Builder accumulates edges and produces a canonical Hypergraph. Edges
// are canonicalized (sorted, duplicate vertices within an edge removed)
// and duplicate edges are dropped. Empty edges are rejected at Build
// time: an empty edge makes every set dependent and no MIS exists.
type Builder struct {
	n     int
	edges []Edge
}

// AddEdge appends an edge given as vertex list. Vertices out of range
// cause Build to fail.
func (b *Builder) AddEdge(vs ...V) *Builder {
	e := make(Edge, len(vs))
	copy(e, vs)
	b.edges = append(b.edges, e)
	return b
}

// AddEdgeSlice appends an edge, taking ownership of the slice.
func (b *Builder) AddEdgeSlice(e Edge) *Builder {
	b.edges = append(b.edges, e)
	return b
}

// Build canonicalizes and validates the accumulated edges.
func (b *Builder) Build() (*Hypergraph, error) {
	canon := make([]Edge, 0, len(b.edges))
	for _, e := range b.edges {
		if len(e) == 0 {
			return nil, fmt.Errorf("hypergraph: empty edge (no independent set can exist)")
		}
		c := append(Edge(nil), e...)
		sortEdge(c)
		// Remove duplicate vertices within the edge.
		w := 1
		for i := 1; i < len(c); i++ {
			if c[i] != c[i-1] {
				c[w] = c[i]
				w++
			}
		}
		c = c[:w]
		for _, v := range c {
			if v < 0 || int(v) >= b.n {
				return nil, fmt.Errorf("hypergraph: vertex %d out of range [0,%d)", v, b.n)
			}
		}
		canon = append(canon, c)
	}
	return packCanon(b.n, dedupEdges(canon)), nil
}

// sortEdge sorts a vertex slice ascending. Small edges (the common
// case: dimension is polylogarithmic) use insertion sort, which does
// not allocate; sort.Slice is kept for pathological sizes.
func sortEdge(e Edge) {
	if len(e) <= 32 {
		for i := 1; i < len(e); i++ {
			v := e[i]
			j := i - 1
			for j >= 0 && e[j] > v {
				e[j+1] = e[j]
				j--
			}
			e[j+1] = v
		}
		return
	}
	sort.Slice(e, func(i, j int) bool { return e[i] < e[j] })
}

// MustBuild is Build that panics on error; for tests and generators
// whose construction cannot fail.
func (b *Builder) MustBuild() *Hypergraph {
	h, err := b.Build()
	if err != nil {
		panic(err)
	}
	return h
}

// dedupEdges sorts edges lexicographically and removes exact duplicates.
func dedupEdges(edges []Edge) []Edge {
	sort.Slice(edges, func(i, j int) bool { return lessEdge(edges[i], edges[j]) })
	out := edges[:0]
	for i, e := range edges {
		if i == 0 || !equalEdge(e, edges[i-1]) {
			out = append(out, e)
		}
	}
	return out
}

func lessEdge(a, b Edge) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func equalEdge(a, b Edge) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FromEdges builds a hypergraph directly from edges assumed owned by the
// caller; they are canonicalized like Builder does.
func FromEdges(n int, edges []Edge) (*Hypergraph, error) {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdgeSlice(e)
	}
	return b.Build()
}

// N returns the number of vertices.
func (h *Hypergraph) N() int { return h.n }

// M returns the number of edges.
func (h *Hypergraph) M() int { return len(h.edges) }

// Dim returns the dimension (maximum edge size); 0 if there are no edges.
func (h *Hypergraph) Dim() int { return h.dim }

// Edges returns the canonical edge list. Callers must not mutate it.
func (h *Hypergraph) Edges() []Edge { return h.edges }

// ArenaLen returns the total number of vertex slots over all edges (the
// CSR arena length) — the cost of one full edge-list pass, which the
// solvers use to decide whether a pass is worth sharding.
func (h *Hypergraph) ArenaLen() int { return len(h.verts) }

// Edge returns the i-th canonical edge. Callers must not mutate it.
func (h *Hypergraph) Edge(i int) Edge { return h.edges[i] }

// HasEdge reports whether the exact edge (as a vertex set) is present.
// The canonical edge list is lex-sorted, so this is a binary search:
// O(d·log m) rather than a scan of every edge.
func (h *Hypergraph) HasEdge(vs ...V) bool {
	e := append(Edge(nil), vs...)
	sortEdge(e)
	i := sort.Search(len(h.edges), func(i int) bool { return !lessEdge(h.edges[i], e) })
	return i < len(h.edges) && equalEdge(h.edges[i], e)
}

// Incidence returns, for each vertex, the indices of edges containing
// it. The per-vertex rows are subslices of one flat backing array (CSR
// over vertices), so the whole structure costs three allocations.
func (h *Hypergraph) Incidence() [][]int32 {
	inc := make([][]int32, h.n)
	deg := make([]int32, h.n+1)
	for _, v := range h.verts {
		deg[v+1]++
	}
	for v := 1; v <= h.n; v++ {
		deg[v] += deg[v-1]
	}
	flat := make([]int32, len(h.verts))
	for i, e := range h.edges {
		for _, v := range e {
			flat[deg[v]] = int32(i)
			deg[v]++
		}
	}
	start := int32(0)
	for v := 0; v < h.n; v++ {
		inc[v] = flat[start:deg[v]:deg[v]]
		start = deg[v]
	}
	return inc
}

// VertexDegrees returns the number of edges containing each vertex.
func (h *Hypergraph) VertexDegrees() []int {
	deg := make([]int, h.n)
	for _, e := range h.edges {
		for _, v := range e {
			deg[v]++
		}
	}
	return deg
}

// DimHistogram returns counts of edges by size, indexed by size
// (index 0 unused).
func (h *Hypergraph) DimHistogram() []int {
	hist := make([]int, h.dim+1)
	for _, e := range h.edges {
		hist[len(e)]++
	}
	return hist
}

// String summarizes the hypergraph.
func (h *Hypergraph) String() string {
	return fmt.Sprintf("Hypergraph{n=%d, m=%d, dim=%d}", h.n, len(h.edges), h.dim)
}

// Clone returns a deep copy. Useful when callers need to hold onto a
// hypergraph across mutating pipelines built from raw edge slices.
func (h *Hypergraph) Clone() *Hypergraph {
	verts := append([]V(nil), h.verts...)
	off := append([]int32(nil), h.off...)
	edges := make([]Edge, len(h.edges))
	for i := range edges {
		edges[i] = verts[off[i]:off[i+1]:off[i+1]]
	}
	return &Hypergraph{n: h.n, dim: h.dim, verts: verts, off: off, edges: edges}
}

// ContainsSorted reports whether sorted edge e contains sorted subset x.
func ContainsSorted(e, x Edge) bool {
	if len(x) > len(e) {
		return false
	}
	i := 0
	for _, v := range x {
		for i < len(e) && e[i] < v {
			i++
		}
		if i >= len(e) || e[i] != v {
			return false
		}
		i++
	}
	return true
}

// IntersectionSize returns |a ∩ b| for sorted edges.
func IntersectionSize(a, b Edge) int {
	i, j, c := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c
}

// DiffSorted returns e \ s for sorted slices, allocating a new slice.
func DiffSorted(e, s Edge) Edge {
	out := make(Edge, 0, len(e))
	j := 0
	for _, v := range e {
		for j < len(s) && s[j] < v {
			j++
		}
		if j < len(s) && s[j] == v {
			continue
		}
		out = append(out, v)
	}
	return out
}
