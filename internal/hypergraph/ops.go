package hypergraph

import (
	"repro/internal/bitset"
	"repro/internal/par"
)

// This file implements the structural transformations the SBL and BL
// loops apply between rounds. All of them preserve canonical form
// (sorted, deduplicated edges) without re-running the Builder, and all
// of them copy surviving edges into a fresh CSR arena — outputs never
// alias their inputs. The scratch-based, allocation-free variants the
// solver round loops use live in round.go.

// fromCanon assembles a hypergraph from edges that are already sorted
// internally; it deduplicates the edge list, recomputes the dimension,
// and packs the result into a fresh CSR arena.
func fromCanon(n int, edges []Edge) *Hypergraph {
	return packCanon(n, dedupEdges(edges))
}

// Induced returns the hypergraph H' = (V', E') of the paper's SBL round:
// same vertex universe, but only edges entirely contained in the set
// {v : in(v)}. (Vertices outside the set simply have no incident edges;
// identity of vertex IDs is preserved so colorings transfer back.)
func Induced(h *Hypergraph, in func(V) bool) *Hypergraph {
	return FilterEdges(h, func(e Edge) bool {
		for _, v := range e {
			if !in(v) {
				return false
			}
		}
		return true
	})
}

// FilterEdges keeps only edges satisfying keep. A subset of a canonical
// edge list is itself canonical, so the survivors are packed directly.
func FilterEdges(h *Hypergraph, keep func(Edge) bool) *Hypergraph {
	kept := make([]Edge, 0, len(h.edges))
	for _, e := range h.edges {
		if keep(e) {
			kept = append(kept, e)
		}
	}
	return packCanon(h.n, kept)
}

// DiscardTouching removes every edge containing at least one vertex with
// touch(v) true. This is SBL line 13–17: edges meeting a red vertex
// (V' \ I') can never become fully blue and are dropped.
func DiscardTouching(h *Hypergraph, touch func(V) bool) *Hypergraph {
	return FilterEdges(h, func(e Edge) bool {
		for _, v := range e {
			if touch(v) {
				return false
			}
		}
		return true
	})
}

// Shrink removes the vertices with drop(v) true from every edge (SBL
// line 18–20 and BL line 13–15: e ← e \ I'). Edges that would become
// empty are reported via the second return value; for a correct MIS
// pipeline this never happens (an edge fully inside the independent set
// would contradict independence), so callers treat emptied > 0 as an
// invariant violation.
func Shrink(h *Hypergraph, drop func(V) bool) (*Hypergraph, int) {
	// Stage shrunk edges into one arena; removing vertices can break the
	// lexicographic edge order and create duplicates, so fromCanon
	// re-canonicalizes the staged headers.
	arena := make([]V, 0, len(h.verts))
	kept := make([]Edge, 0, len(h.edges))
	emptied := 0
	for _, e := range h.edges {
		start := len(arena)
		for _, v := range e {
			if !drop(v) {
				arena = append(arena, v)
			}
		}
		if len(arena) == start {
			emptied++
			continue
		}
		kept = append(kept, arena[start:len(arena):len(arena)])
	}
	return fromCanon(h.n, kept), emptied
}

// RemoveSupersets discards every edge that strictly contains another
// edge (BL line 16–20). Such supersets are redundant: any set containing
// the smaller edge already fails independence. It runs on the whole
// machine; RemoveSupersetsOn takes an explicit engine.
//
// For enumerable dimensions the check is: e survives iff no proper
// nonempty subset of e is an edge. That costs m·2^d set lookups, which
// is the regime BL runs in. Beyond maxEnumerableDim a pairwise check is
// used instead.
func RemoveSupersets(h *Hypergraph) *Hypergraph {
	return RemoveSupersetsOn(h, par.Engine{})
}

// RemoveSupersetsOn is RemoveSupersets on an explicit engine: the
// m·2^d dominated-edge checks shard over the engine's workers (the
// hashed edge index they probe is built once and read-only). The
// result is identical for any engine.
func RemoveSupersetsOn(h *Hypergraph, eng par.Engine) *Hypergraph {
	if h.Dim() <= maxEnumerableDim {
		m := len(h.edges)
		present := newEdgeIndex(m)
		for i, e := range h.edges {
			present.add(hashEdge(e), int32(i))
		}
		lookup := func(x Edge) bool {
			return present.find(hashEdge(x), func(id int32) bool { return equalEdge(h.edges[id], x) }) >= 0
		}
		dominated := make([]bool, m)
		perItem := 1 << uint(min(h.Dim(), 30))
		shards := eng.ShardsFor(m, perItem)
		eng.ForShardsWork(nil, m, perItem, shards, func(_, lo, hi int) {
			var scratch Edge
			for i := lo; i < hi; i++ {
				e := h.edges[i]
				k := len(e)
				full := uint32(1)<<uint(k) - 1
				for mask := uint32(1); mask < full; mask++ {
					scratch = scratch[:0]
					for b := 0; b < k; b++ {
						if mask&(1<<uint(b)) != 0 {
							scratch = append(scratch, e[b])
						}
					}
					if lookup(scratch) {
						dominated[i] = true
						break
					}
				}
			}
		})
		kept := make([]Edge, 0, m)
		for i, e := range h.edges {
			if !dominated[i] {
				kept = append(kept, e)
			}
		}
		return packCanon(h.n, kept)
	}
	// Pairwise fallback for very large dimension.
	kept := make([]Edge, 0, len(h.edges))
	for i, e := range h.edges {
		dominated := false
		for j, f := range h.edges {
			if i == j || len(f) >= len(e) {
				continue
			}
			if ContainsSorted(e, f) {
				dominated = true
				break
			}
		}
		if !dominated {
			kept = append(kept, e)
		}
	}
	return packCanon(h.n, kept)
}

// RemoveSingletons drops every singleton edge {v} and returns the
// affected vertices (BL line 21–24). A singleton edge means v can never
// join any independent set extension, so BL colors it red and removes it
// from the working vertex set.
func RemoveSingletons(h *Hypergraph) (*Hypergraph, []V) {
	var blocked []V
	kept := make([]Edge, 0, len(h.edges))
	for _, e := range h.edges {
		if len(e) == 1 {
			blocked = append(blocked, e[0])
			continue
		}
		kept = append(kept, e)
	}
	if len(blocked) == 0 {
		return h, nil
	}
	// Any surviving edge containing a blocked vertex can never be fully
	// blue either; BL's next rounds would discard it when the vertex is
	// removed from V'. We keep such edges (they are harmless: the
	// blocked vertex is never marked again), matching the pseudocode,
	// which only deletes the singleton edges themselves.
	return packCanon(h.n, kept), blocked
}

// Restrict removes all edges incident to any vertex with gone(v) true.
// Used when a set of vertices leaves the working universe entirely.
func Restrict(h *Hypergraph, gone func(V) bool) *Hypergraph {
	return DiscardTouching(h, gone)
}

// UsedVertices returns a mask of vertices appearing in at least one edge.
func (h *Hypergraph) UsedVertices() []bool {
	used := make([]bool, h.n)
	for _, v := range h.verts {
		used[v] = true
	}
	return used
}

// UsedVerticesInto writes the set of vertices appearing in at least one
// edge into dst (regrown to n bits), for callers that recycle the set
// across rounds.
func (h *Hypergraph) UsedVerticesInto(dst bitset.Set) bitset.Set {
	dst = dst.Grow(h.n)
	for _, v := range h.verts {
		dst.Add(int(v))
	}
	return dst
}
