package hypergraph

import (
	"runtime"
	"testing"

	"repro/internal/rng"
)

// randomRoundInstance builds a fuzzed instance for the pipeline
// equivalence tests: mixed edge sizes starting at 1 (singleton edges
// included), and with extra proper subsets of existing edges injected
// so the superset/subset structure the antichain machinery cares about
// is exercised.
func randomRoundInstance(st *rng.Stream) *Hypergraph {
	n := 5 + st.Intn(60)
	m := 1 + st.Intn(90)
	maxSize := 2 + st.Intn(4) // up to 5
	b := NewBuilder(n)
	var edges []Edge
	for i := 0; i < m; i++ {
		k := 1 + st.Intn(maxSize)
		e := sampleDistinct(st, n, k)
		edges = append(edges, e)
		b.AddEdgeSlice(e)
	}
	// Inject proper subsets of some existing edges (superset cases).
	for _, e := range edges {
		if len(e) < 2 || st.Intn(3) != 0 {
			continue
		}
		sub := append(Edge(nil), e[:1+st.Intn(len(e)-1)]...)
		b.AddEdgeSlice(sub)
	}
	return b.MustBuild()
}

// randomColors draws disjoint red/blue masks over the universe.
func randomColors(st *rng.Stream, n int) (isRed, isBlue []bool) {
	isRed = make([]bool, n)
	isBlue = make([]bool, n)
	for v := 0; v < n; v++ {
		switch st.Intn(5) {
		case 0:
			isBlue[v] = true
		case 1:
			isRed[v] = true
		}
	}
	return
}

func requireSameHypergraph(t *testing.T, seed, round int, got, want *Hypergraph) {
	t.Helper()
	if got.N() != want.N() || got.M() != want.M() || got.Dim() != want.Dim() {
		t.Fatalf("seed %d round %d: shape (n,m,dim)=(%d,%d,%d), want (%d,%d,%d)",
			seed, round, got.N(), got.M(), got.Dim(), want.N(), want.M(), want.Dim())
	}
	for i := range want.Edges() {
		if !equalEdge(got.Edge(i), want.Edge(i)) {
			t.Fatalf("seed %d round %d: edge %d = %v, want %v",
				seed, round, i, got.Edge(i), want.Edge(i))
		}
	}
}

// TestNextRoundMatchesPurePipeline is the acceptance property for the
// fused CSR round: on ≥100 fuzzed instances (mixed dimensions,
// singleton edges, superset structure), chained over several rounds of
// one reused scratch, NextRound produces exactly the canonical edge set
// of the seed's pure DiscardTouching → Shrink pipeline, with the same
// emptied count.
func TestNextRoundMatchesPurePipeline(t *testing.T) {
	s := rng.New(42)
	scr := &RoundScratch{} // reused across all instances: exercises buffer recycling
	instances := 120
	for seed := 0; seed < instances; seed++ {
		st := s.Child(uint64(seed))
		h := randomRoundInstance(st)
		cur := h
		ref := h
		for round := 0; round < 4; round++ {
			isRed, isBlue := randomColors(st, h.N())
			red := func(v V) bool { return isRed[v] }
			blue := func(v V) bool { return isBlue[v] }

			wantNext := DiscardTouching(ref, red)
			wantNext, wantEmptied := Shrink(wantNext, blue)

			gotNext, gotEmptied := NextRound(cur, red, blue, scr)
			if gotEmptied != wantEmptied {
				t.Fatalf("seed %d round %d: emptied %d, want %d", seed, round, gotEmptied, wantEmptied)
			}
			requireSameHypergraph(t, seed, round, gotNext, wantNext)
			cur, ref = gotNext, wantNext
			if ref.M() == 0 {
				break
			}
		}
	}
}

// TestInduceIntoMatchesInduced checks the scratch-buffered induction
// against the pure Induced, including interleaving with NextRound on
// the same scratch (the SBL loop's access pattern).
func TestInduceIntoMatchesInduced(t *testing.T) {
	s := rng.New(43)
	scr := &RoundScratch{}
	for seed := 0; seed < 120; seed++ {
		st := s.Child(uint64(seed))
		h := randomRoundInstance(st)
		cur := h
		for round := 0; round < 3 && cur.M() > 0; round++ {
			in := make([]bool, h.N())
			for v := range in {
				in[v] = st.Intn(3) != 0
			}
			want := Induced(cur, func(v V) bool { return in[v] })
			got := InduceInto(cur, func(v V) bool { return in[v] }, scr)
			requireSameHypergraph(t, seed, round, got, want)

			// Advance cur through the fused round to interleave the two
			// scratch consumers like the SBL loop does; the sub result
			// must survive the NextRound call (dedicated buffer).
			isRed, isBlue := randomColors(st, h.N())
			next, _ := NextRound(cur, func(v V) bool { return isRed[v] },
				func(v V) bool { return isBlue[v] }, scr)
			requireSameHypergraph(t, seed, round, got, want) // still intact
			cur = next
		}
	}
}

// TestNextRoundZeroAllocSteadyState pins the tentpole claim: once the
// scratch arenas are warm and no re-canonicalization is needed (a
// red-only round preserves canonical order), a fused round performs
// zero heap allocations.
func TestNextRoundZeroAllocSteadyState(t *testing.T) {
	st := rng.New(7)
	h := RandomMixed(st, 400, 800, 2, 5)
	scr := &RoundScratch{}
	isRed := make([]bool, h.N())
	for v := 0; v < h.N(); v += 17 {
		isRed[v] = true
	}
	red := func(v V) bool { return isRed[v] }
	blue := func(v V) bool { return false }
	// Warm-up: size the arenas.
	if next, _ := NextRound(h, red, blue, scr); next.M() == 0 {
		t.Fatal("degenerate warm-up instance")
	}
	allocs := testing.AllocsPerRun(20, func() {
		NextRound(h, red, blue, scr)
	})
	if allocs != 0 {
		t.Fatalf("steady-state NextRound allocated %v times per round, want 0", allocs)
	}
	in := make([]bool, h.N())
	for v := range in {
		in[v] = v%3 != 0
	}
	inF := func(v V) bool { return in[v] }
	InduceInto(h, inF, scr)
	allocs = testing.AllocsPerRun(20, func() {
		InduceInto(h, inF, scr)
	})
	if allocs != 0 {
		t.Fatalf("steady-state InduceInto allocated %v times per round, want 0", allocs)
	}
}

// TestWorkingAndFusedAgainstSeedReference is the differential test
// pinning both incremental engines — Working and the fused CSR round —
// against the seed's pure DiscardTouching → Shrink → RemoveSupersets
// reference on fuzzed instances.
func TestWorkingAndFusedAgainstSeedReference(t *testing.T) {
	s := rng.New(44)
	scr := &RoundScratch{}
	for seed := 0; seed < 110; seed++ {
		st := s.Child(uint64(seed))
		h := randomRoundInstance(st)
		var blue, red []V
		isRed := make([]bool, h.N())
		isBlue := make([]bool, h.N())
		for v := 0; v < h.N(); v++ {
			switch st.Intn(5) {
			case 0:
				blue = append(blue, V(v))
				isBlue[v] = true
			case 1:
				red = append(red, V(v))
				isRed[v] = true
			}
		}
		norm := RemoveSupersets(h)
		want := DiscardTouching(norm, func(v V) bool { return isRed[v] })
		want, wantEmptied := Shrink(want, func(v V) bool { return isBlue[v] })
		want = RemoveSupersets(want)

		w := NewWorking(h)
		gotEmptied := w.Commit(blue, red)
		if gotEmptied != wantEmptied {
			t.Fatalf("seed %d: Working emptied %d, want %d", seed, gotEmptied, wantEmptied)
		}
		requireSameHypergraph(t, seed, 0, w.Snapshot(), want)

		fused, fusedEmptied := NextRound(norm, func(v V) bool { return isRed[v] },
			func(v V) bool { return isBlue[v] }, scr)
		if fusedEmptied != wantEmptied {
			t.Fatalf("seed %d: fused emptied %d, want %d", seed, fusedEmptied, wantEmptied)
		}
		requireSameHypergraph(t, seed, 0, RemoveSupersets(fused), want)
	}
}

// TestNextRoundParallelShards forces the sharded classify/scatter paths
// (arena above parallelScanThreshold, several workers) even on a
// single-CPU host, and checks the fused results against the pure
// pipeline.
func TestNextRoundParallelShards(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	s := rng.New(45)
	scr := &RoundScratch{}
	for seed := 0; seed < 3; seed++ {
		st := s.Child(uint64(seed))
		h := RandomMixed(st, 4000, 8000, 2, 6)
		if len(h.verts) < parallelScanThreshold {
			t.Fatalf("instance too small to exercise the parallel path: %d", len(h.verts))
		}
		isRed, isBlue := randomColors(st, h.N())
		red := func(v V) bool { return isRed[v] }
		blue := func(v V) bool { return isBlue[v] }

		want := DiscardTouching(h, red)
		want, wantEmptied := Shrink(want, blue)
		got, gotEmptied := NextRound(h, red, blue, scr)
		if gotEmptied != wantEmptied {
			t.Fatalf("seed %d: emptied %d, want %d", seed, gotEmptied, wantEmptied)
		}
		requireSameHypergraph(t, seed, 0, got, want)

		in := make([]bool, h.N())
		for v := range in {
			in[v] = st.Intn(4) != 0
		}
		wantInd := Induced(h, func(v V) bool { return in[v] })
		gotInd := InduceInto(h, func(v V) bool { return in[v] }, scr)
		requireSameHypergraph(t, seed, 0, gotInd, wantInd)
	}
}
