package hypergraph

// This file implements the one hashed edge-set index the package's
// keyed structures share: 64-bit hashEdge keys into a bucket map, with
// colliding entries chained through a per-id link array and always
// verified against the stored vertex sets (the hash is an accelerator,
// never an identity). Consumers — RemoveSupersets, DegreeTable,
// Working — store their vertex sets in their own arenas and walk
// chains with head/next; the insertion and unlink logic that is easy
// to get wrong lives here once.

// hashEdge returns a 64-bit hash of a sorted vertex set (SplitMix64-style
// mixing per element, seeded by the length). Distinct sets can collide,
// so every consumer verifies equality on lookup and chains colliding
// entries.
func hashEdge(e Edge) uint64 {
	h := uint64(len(e))*0x9e3779b97f4a7c15 + 0x94d049bb133111eb
	for _, v := range e {
		h ^= uint64(uint32(v))
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 29
	}
	h ^= h >> 32
	h *= 0xd6e8feb86659fd93
	return h ^ h>>29
}

// edgeIndex maps hashes to chains of integer ids. Ids are assigned by
// the consumer, sequentially from 0 (add's id must equal the number of
// prior add calls), and name entries in the consumer's own storage.
type edgeIndex struct {
	idx  map[uint64]int32
	next []int32 // chain link per id; -1 terminates
}

func newEdgeIndex(capHint int) edgeIndex {
	return edgeIndex{idx: make(map[uint64]int32, capHint), next: make([]int32, 0, capHint)}
}

// head returns the first id of the hash's chain, or -1.
func (ix *edgeIndex) head(hash uint64) int32 {
	id, ok := ix.idx[hash]
	if !ok {
		return -1
	}
	return id
}

// find walks the hash's chain and returns the first id whose stored
// vertex set eq accepts, or -1. eq is only called, never retained, so
// callers' closures stay on the stack.
func (ix *edgeIndex) find(hash uint64, eq func(id int32) bool) int32 {
	for id := ix.head(hash); id >= 0; id = ix.next[id] {
		if eq(id) {
			return id
		}
	}
	return -1
}

// add prepends id to the hash's chain. id must equal the number of
// prior add calls (ids are dense).
func (ix *edgeIndex) add(hash uint64, id int32) {
	head, ok := ix.idx[hash]
	if !ok {
		head = -1
	}
	ix.next = append(ix.next, head)
	ix.idx[hash] = id
}

// unlink removes id from the hash's chain (no-op if absent).
func (ix *edgeIndex) unlink(hash uint64, id int32) {
	head, ok := ix.idx[hash]
	if !ok {
		return
	}
	if head == id {
		if ix.next[id] < 0 {
			delete(ix.idx, hash)
		} else {
			ix.idx[hash] = ix.next[id]
		}
		return
	}
	for p := head; p >= 0; p = ix.next[p] {
		if ix.next[p] == id {
			ix.next[p] = ix.next[id]
			return
		}
	}
}

// size returns the number of ids ever added.
func (ix *edgeIndex) size() int { return len(ix.next) }
