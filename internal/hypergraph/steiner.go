package hypergraph

import "fmt"

// SteinerTripleSystem constructs STS(n) — a 3-uniform hypergraph on n
// vertices in which every pair of vertices lies in exactly one triple —
// via the Bose construction, defined for n ≡ 3 (mod 6). An STS is the
// extreme linear hypergraph (pairwise edge intersections ≤ 1 with
// perfect pair coverage), which makes it the canonical structured
// instance for the Łuczak–Szymańska RNC class experiments: m = n(n−1)/6
// exactly, every vertex has degree (n−1)/2.
//
// Bose construction: let n = 3(2s+1), q = 2s+1, and identify vertices
// with pairs (i, k) ∈ Z_q × {0,1,2} encoded as 3i+k. The triples are
//
//	{(i,0), (i,1), (i,2)}                    for every i ∈ Z_q
//	{(i,k), (j,k), ((i+j)·2⁻¹ mod q, k+1)}   for i < j, k ∈ {0,1,2}
//
// where 2⁻¹ = (q+1)/2 is the inverse of 2 modulo the odd q.
func SteinerTripleSystem(n int) (*Hypergraph, error) {
	if n < 3 || n%6 != 3 {
		return nil, fmt.Errorf("hypergraph: Bose STS needs n ≡ 3 (mod 6), got %d", n)
	}
	q := n / 3 // odd
	halfInv := (q + 1) / 2
	vid := func(i, k int) V { return V(3*i + k) }

	b := NewBuilder(n)
	for i := 0; i < q; i++ {
		b.AddEdge(vid(i, 0), vid(i, 1), vid(i, 2))
	}
	for i := 0; i < q; i++ {
		for j := i + 1; j < q; j++ {
			mid := ((i + j) * halfInv) % q
			for k := 0; k < 3; k++ {
				b.AddEdge(vid(i, k), vid(j, k), vid(mid, (k+1)%3))
			}
		}
	}
	return b.Build()
}
