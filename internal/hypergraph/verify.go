package hypergraph

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/par"
)

// verifyParThreshold is the scan work (total arena vertices) above
// which the verification passes shard over the engine; below it the
// sequential loops win.
const verifyParThreshold = 1 << 14

// IsIndependent reports whether the vertex set {v : in[v]} contains no
// edge of h. in must have length h.N().
func IsIndependent(h *Hypergraph, in []bool) bool {
	return firstContainedEdge(h, in, par.Engine{}) == -1
}

// firstContainedEdge returns the smallest index of an edge fully inside
// the set, or -1. Large instances shard the scan; the smallest matching
// index across shards is returned, so the witness is identical for any
// engine.
func firstContainedEdge(h *Hypergraph, in []bool, eng par.Engine) int {
	m := len(h.edges)
	contained := func(e Edge) bool {
		for _, v := range e {
			if !in[v] {
				return false
			}
		}
		return true
	}
	shards := eng.NumShards(m)
	if len(h.verts) < verifyParThreshold || shards <= 1 {
		for i, e := range h.edges {
			if contained(e) {
				return i
			}
		}
		return -1
	}
	firsts := make([]int, shards)
	// Pre-fill with the no-witness sentinel: shards whose block is
	// empty are never invoked, and a zero there would read as "edge #0
	// fully contained".
	for s := range firsts {
		firsts[s] = -1
	}
	eng.ForShards(nil, m, shards, func(s, lo, hi int) {
		for i := lo; i < hi; i++ {
			if contained(h.edges[i]) {
				firsts[s] = i
				return
			}
		}
	})
	for _, f := range firsts {
		if f >= 0 {
			return f
		}
	}
	return -1
}

// IsMaximalIndependent reports whether the set is independent and
// maximal: adding any vertex outside the set creates a fully-contained
// edge. Note a vertex with no incident edges must always be in a MIS.
func IsMaximalIndependent(h *Hypergraph, in []bool) bool {
	return VerifyMIS(h, in) == nil
}

// VerifyMIS checks independence and maximality and returns a descriptive
// error naming the violated invariant and a witness, or nil if the set
// is a maximal independent set of h. It runs on the whole machine;
// VerifyMISOn takes an explicit engine.
func VerifyMIS(h *Hypergraph, in []bool) error {
	return VerifyMISOn(h, in, par.Engine{})
}

// VerifyMISOn is VerifyMIS on an explicit engine. Large instances shard
// both passes: the independence scan reduces to the smallest witness
// index, and the maximality pass accumulates per-shard "completable"
// bitsets that are OR-merged word-parallel — so the verdict and the
// reported witness are identical for any engine.
func VerifyMISOn(h *Hypergraph, in []bool, eng par.Engine) error {
	if len(in) != h.n {
		return fmt.Errorf("verify: set has length %d, hypergraph has %d vertices", len(in), h.n)
	}
	if i := firstContainedEdge(h, in, eng); i != -1 {
		return fmt.Errorf("verify: not independent: edge #%d %v fully contained", i, h.edges[i])
	}
	// Maximality: for each vertex u not in the set, adding u must make
	// some edge fully contained; equivalently some edge e ∋ u has all
	// other vertices in the set.
	m := len(h.edges)
	markCompletes := func(completes bitset.Set, lo, hi int) {
		for _, e := range h.edges[lo:hi] {
			missing := -1
			count := 0
			for _, v := range e {
				if !in[v] {
					count++
					missing = int(v)
					if count > 1 {
						break
					}
				}
			}
			if count == 1 {
				completes.Add(missing)
			}
		}
	}
	completes := bitset.New(h.n)
	shards := eng.NumShards(m)
	if len(h.verts) < verifyParThreshold {
		shards = 1
	}
	bitset.UnionShards(eng, completes, h.n, m, shards, nil, markCompletes)
	for v := 0; v < h.n; v++ {
		if !in[v] && !completes.Has(v) {
			return fmt.Errorf("verify: not maximal: vertex %d can be added without creating a contained edge", v)
		}
	}
	return nil
}

// MaskFromList converts a vertex list into a boolean mask of length n.
func MaskFromList(n int, vs []V) []bool {
	mask := make([]bool, n)
	for _, v := range vs {
		mask[v] = true
	}
	return mask
}

// ListFromMask converts a boolean mask into a sorted vertex list.
func ListFromMask(mask []bool) []V {
	var vs []V
	for v, ok := range mask {
		if ok {
			vs = append(vs, V(v))
		}
	}
	return vs
}
