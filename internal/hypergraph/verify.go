package hypergraph

import "fmt"

// IsIndependent reports whether the vertex set {v : in[v]} contains no
// edge of h. in must have length h.N().
func IsIndependent(h *Hypergraph, in []bool) bool {
	return firstContainedEdge(h, in) == -1
}

// firstContainedEdge returns the index of an edge fully inside the set,
// or -1.
func firstContainedEdge(h *Hypergraph, in []bool) int {
	for i, e := range h.edges {
		inside := true
		for _, v := range e {
			if !in[v] {
				inside = false
				break
			}
		}
		if inside {
			return i
		}
	}
	return -1
}

// IsMaximalIndependent reports whether the set is independent and
// maximal: adding any vertex outside the set creates a fully-contained
// edge. Note a vertex with no incident edges must always be in a MIS.
func IsMaximalIndependent(h *Hypergraph, in []bool) bool {
	return VerifyMIS(h, in) == nil
}

// VerifyMIS checks independence and maximality and returns a descriptive
// error naming the violated invariant and a witness, or nil if the set
// is a maximal independent set of h.
func VerifyMIS(h *Hypergraph, in []bool) error {
	if len(in) != h.n {
		return fmt.Errorf("verify: set has length %d, hypergraph has %d vertices", len(in), h.n)
	}
	if i := firstContainedEdge(h, in); i != -1 {
		return fmt.Errorf("verify: not independent: edge #%d %v fully contained", i, h.edges[i])
	}
	// Maximality: for each vertex u not in the set, adding u must make
	// some edge fully contained; equivalently some edge e ∋ u has all
	// other vertices in the set.
	completes := make([]bool, h.n)
	for _, e := range h.edges {
		missing := -1
		count := 0
		for _, v := range e {
			if !in[v] {
				count++
				missing = int(v)
				if count > 1 {
					break
				}
			}
		}
		if count == 1 {
			completes[missing] = true
		}
	}
	for v := 0; v < h.n; v++ {
		if !in[v] && !completes[v] {
			return fmt.Errorf("verify: not maximal: vertex %d can be added without creating a contained edge", v)
		}
	}
	return nil
}

// MaskFromList converts a vertex list into a boolean mask of length n.
func MaskFromList(n int, vs []V) []bool {
	mask := make([]bool, n)
	for _, v := range vs {
		mask[v] = true
	}
	return mask
}

// ListFromMask converts a boolean mask into a sorted vertex list.
func ListFromMask(mask []bool) []V {
	var vs []V
	for v, ok := range mask {
		if ok {
			vs = append(vs, V(v))
		}
	}
	return vs
}
