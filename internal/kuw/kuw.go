// Package kuw implements the Karp–Upfal–Wigderson style parallel MIS
// algorithm for general hypergraphs: the O(√n)-round baseline the paper
// compares SBL against, and SBL's terminal solver once the residual
// instance has fewer than 1/p² vertices.
//
// Karp, Upfal and Wigderson (JCSS 1988) work in an independence-oracle
// model; the paper notes their algorithm "can be adapted to run in time
// O(√n)·(log n + log m) with high probability on mn processors". This
// package is that adaptation, using random-order prefix maximality:
//
// Each round has two phases, both essential to the O(√n) behaviour:
//
// Filter. Every candidate vertex v whose admission is already blocked —
// some residual edge has shrunk to the singleton {v}, i.e. S ∪ {v}
// would contain an edge — is discarded *in bulk*. (Without this step a
// blocked vertex would cost one round each and the round count would
// degrade to Θ(n − |MIS|).) The singleton edge is the maximality
// witness: all its other vertices are already in S.
//
// Extend. A uniform random order is drawn on the surviving candidates;
// in parallel over edges, the round finds the first position at which
// the prefix of the order, together with S, would fully contain an
// edge. All vertices strictly before that position join S (no edge
// completes inside the prefix, by minimality), and the vertex *at* the
// blocking position is discarded (its witness edge is in S ∪ prefix
// except for itself — the same certificate as the filter phase).
//
// With random orders the accepted prefix is ~k/√q for k candidates and
// q live edges, giving the O(√n·polylog) round behaviour measured in
// experiment F1. Per-round depth is O(log n + log m): a permutation, a
// per-edge max, and a min-reduction, all EREW-implementable.
package kuw

import (
	"context"
	"errors"
	"fmt"
	"math/bits"

	"repro/internal/bitset"
	"repro/internal/hypergraph"
	"repro/internal/par"
	"repro/internal/rng"
)

// Options configures a KUW run.
type Options struct {
	// Ctx, if non-nil, is checked at the top of every round; the run
	// returns ctx.Err() as soon as the context is done.
	Ctx context.Context

	// Par bounds the worker parallelism of the per-round passes (zero
	// value = whole machine). Output is identical for any engine.
	Par par.Engine

	// MaxRounds aborts the run when exceeded (0 = default 10·n + 100).
	MaxRounds int
	// CollectStats records per-round counters.
	CollectStats bool
}

// RoundStat records one round.
type RoundStat struct {
	Round     int // 0-based round index
	Undecided int // undecided vertices entering the round
	Edges     int // live edges entering the round
	Filtered  int // vertices bulk-discarded in the filter phase
	Accepted  int // vertices added to the IS (the safe prefix)
	Discarded int // vertices discarded red by the blocker step (0 or 1)
}

// Result of a KUW run.
type Result struct {
	InIS   []bool
	Red    []bool
	Rounds int
	Stats  []RoundStat
}

// ErrRoundLimit is returned when MaxRounds is exceeded.
var ErrRoundLimit = errors.New("kuw: round limit exceeded")

// Run executes the algorithm on the sub-hypergraph induced by active
// (nil = all vertices). Edges of h must consist of active vertices only.
func Run(h *hypergraph.Hypergraph, active []bool, s *rng.Stream, cost *par.Cost, opts Options) (*Result, error) {
	n := h.N()
	eng := opts.Par
	if opts.MaxRounds == 0 {
		opts.MaxRounds = 10*n + 100
	}
	live := bitset.New(n)
	if active == nil {
		live.SetAll(n)
	} else {
		for i, a := range active {
			if a {
				live.Add(i)
			}
		}
	}
	par.ChargeStep(cost, n)
	for _, e := range h.Edges() {
		for _, v := range e {
			if !live.Has(int(v)) {
				return nil, fmt.Errorf("kuw: edge %v contains inactive vertex %d", e, v)
			}
		}
	}

	res := &Result{
		InIS: make([]bool, n),
		Red:  make([]bool, n),
	}
	// Cumulative colorings, packed: the fused end-of-round transform
	// tests membership by word probe.
	inISBits := bitset.New(n)
	redBits := bitset.New(n)
	words := len(live)
	cur := h
	pos := make([]int, n)         // position of each vertex in this round's order
	var candidates []hypergraph.V // reused across rounds
	// Double-buffered CSR arenas for the fused end-of-round update.
	scratch := &hypergraph.RoundScratch{Eng: eng}

	for round := 0; ; round++ {
		if opts.Ctx != nil {
			if err := opts.Ctx.Err(); err != nil {
				return nil, err
			}
		}
		st := RoundStat{Round: round}

		// Filter phase: bulk-discard every candidate already blocked by
		// a singleton residual edge, then drop edges touching them.
		var blocked []hypergraph.V
		cur, blocked = hypergraph.RemoveSingletons(cur)
		if len(blocked) > 0 {
			for _, v := range blocked {
				if live.Has(int(v)) {
					live.Del(int(v))
					res.Red[v] = true
					redBits.Add(int(v))
					st.Filtered++
				}
			}
			cur = hypergraph.DiscardTouching(cur, func(v hypergraph.V) bool { return res.Red[v] })
			par.ChargeStep(cost, cur.M())
		}

		// Candidate list: the live set, ascending (stream compaction).
		candidates = candidates[:0]
		live.ForEach(func(v int) { candidates = append(candidates, hypergraph.V(v)) })
		par.ChargeReduce(cost, n) // flag+scan+scatter compaction
		k := len(candidates)
		if k == 0 {
			res.Rounds = round
			return res, nil
		}
		if round >= opts.MaxRounds {
			return nil, fmt.Errorf("%w after %d rounds (%d undecided)", ErrRoundLimit, round, k)
		}

		st.Undecided = k
		st.Edges = cur.M()

		// No live edges: everything remaining is independent.
		if cur.M() == 0 {
			for _, v := range candidates {
				res.InIS[v] = true
			}
			live.Reset()
			par.ChargeStep(cost, k)
			st.Accepted = k
			if opts.CollectStats {
				res.Stats = append(res.Stats, st)
			}
			res.Rounds = round + 1
			return res, nil
		}

		// Random order on candidates; pos[v] = rank. A permutation is
		// O(log n) depth on an EREW PRAM (sort of random keys).
		perm := s.Child(uint64(round)).Perm(k)
		eng.For(cost, k, func(i int) {
			pos[candidates[perm[i]]] = i
		})
		par.ChargeAux(cost, int64(k), int64(log2(k))) // permutation generation

		// Activation position of each edge: the rank of its last vertex.
		// Edges here contain only undecided vertices (S-vertices were
		// shrunk away, red-touching edges discarded).
		edges := cur.Edges()
		act := par.MapOn(eng, cost, edges, func(e hypergraph.Edge) int {
			m := -1
			for _, v := range e {
				if pos[v] > m {
					m = pos[v]
				}
			}
			return m
		})
		minAct := par.ReduceOn(eng, cost, act, k, func(a, b int) int {
			if a < b {
				return a
			}
			return b
		})

		// Accept the safe prefix [0, minAct); discard the blocker. Each
		// worker owns a disjoint word range of every vertex-indexed set,
		// so the parallel pass is write-race-free and deterministic.
		eng.ForBlocked(nil, words, func(lo, hi int) {
			for wi := lo; wi < hi; wi++ {
				lw := live[wi]
				base := wi << 6
				for w := lw; w != 0; w &= w - 1 {
					v := base + bits.TrailingZeros64(w)
					switch {
					case pos[v] < minAct:
						res.InIS[v] = true
						inISBits.Add(v)
						live.Del(v)
					case pos[v] == minAct:
						res.Red[v] = true
						redBits.Add(v)
						live.Del(v)
					}
				}
			}
		})
		par.ChargeStep(cost, k)
		st.Accepted = minAct
		if minAct < k {
			st.Discarded = 1
		}

		// Update the working hypergraph: discard red-touching edges and
		// shrink the survivors by the accepted prefix, fused into one
		// scratch-buffered pass. (A fully-accepted edge cannot touch a
		// red vertex — each vertex gets one color — so the emptied count
		// matches the unfused Shrink→DiscardTouching order.)
		next, emptied := hypergraph.NextRoundBits(cur, redBits, inISBits, scratch)
		if emptied > 0 {
			return nil, fmt.Errorf("kuw: %d edges fully accepted at round %d (independence broken)", emptied, round)
		}
		par.ChargeStep(cost, cur.M())
		cur = next

		if opts.CollectStats {
			res.Stats = append(res.Stats, st)
		}
	}
}

func log2(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}
