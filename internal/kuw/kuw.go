// Package kuw implements the Karp–Upfal–Wigderson style parallel MIS
// algorithm for general hypergraphs: the O(√n)-round baseline the paper
// compares SBL against, and SBL's terminal solver once the residual
// instance has fewer than 1/p² vertices.
//
// Karp, Upfal and Wigderson (JCSS 1988) work in an independence-oracle
// model; the paper notes their algorithm "can be adapted to run in time
// O(√n)·(log n + log m) with high probability on mn processors". This
// package is that adaptation, using random-order prefix maximality:
//
// Each round has two phases, both essential to the O(√n) behaviour:
//
// Filter. Every candidate vertex v whose admission is already blocked —
// some residual edge has shrunk to the singleton {v}, i.e. S ∪ {v}
// would contain an edge — is discarded *in bulk*. (Without this step a
// blocked vertex would cost one round each and the round count would
// degrade to Θ(n − |MIS|).) The singleton edge is the maximality
// witness: all its other vertices are already in S.
//
// Extend. A uniform random order is drawn on the surviving candidates;
// in parallel over edges, the round finds the first position at which
// the prefix of the order, together with S, would fully contain an
// edge. All vertices strictly before that position join S (no edge
// completes inside the prefix, by minimality), and the vertex *at* the
// blocking position is discarded (its witness edge is in S ∪ prefix
// except for itself — the same certificate as the filter phase).
//
// With random orders the accepted prefix is ~k/√q for k candidates and
// q live edges, giving the O(√n·polylog) round behaviour measured in
// experiment F1. Per-round depth is O(log n + log m): a permutation, a
// per-edge max, and a min-reduction, all EREW-implementable.
//
// The round loop runs on the shared solver runtime: context checks,
// the round budget and per-round telemetry go through solver.Loop, and
// every buffer — colorings, the order/activation arrays, the CSR round
// arenas — is drawn from a solver.Workspace, so pooled service jobs
// and SBL's tail calls stop paying per-run arena allocations.
package kuw

import (
	"context"
	"errors"
	"fmt"
	"math/bits"

	"repro/internal/hypergraph"
	"repro/internal/mathx"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/solver"
)

// Options configures a KUW run.
type Options struct {
	// Ctx, if non-nil, is checked at the top of every round; the run
	// returns ctx.Err() as soon as the context is done.
	Ctx context.Context

	// Par bounds the worker parallelism of the per-round passes (zero
	// value = whole machine). Output is identical for any engine.
	Par par.Engine

	// MaxRounds aborts the run when exceeded (0 = default 10·n + 100).
	MaxRounds int
	// CollectStats records per-round counters.
	CollectStats bool

	// Ws, if non-nil, supplies the run's reusable buffers (nil = a
	// fresh workspace). Must not be shared with a concurrent run.
	Ws *solver.Workspace

	// Observer, if non-nil, receives one telemetry record per round.
	Observer solver.RoundObserver
}

// RoundStat records one round.
type RoundStat struct {
	Round     int // 0-based round index
	Undecided int // undecided vertices entering the round
	Edges     int // live edges entering the round
	Filtered  int // vertices bulk-discarded in the filter phase
	Accepted  int // vertices added to the IS (the safe prefix)
	Discarded int // vertices discarded red by the blocker step (0 or 1)
}

// Result of a KUW run.
type Result struct {
	InIS   []bool
	Red    []bool
	Rounds int
	Stats  []RoundStat
}

// ErrRoundLimit is returned when MaxRounds is exceeded.
var ErrRoundLimit = errors.New("kuw: round limit exceeded")

func init() {
	solver.Register(solver.Descriptor{
		Algo: solver.KUW,
		Name: "kuw",
		Solve: func(req solver.Request) (solver.Outcome, error) {
			r, err := Run(req.H, nil, req.Stream, req.Cost, Options{
				Ctx: req.Ctx, Par: req.Par, Ws: req.Ws, Observer: req.Observer,
			})
			if err != nil {
				return solver.Outcome{}, err
			}
			return solver.Outcome{InIS: r.InIS, Rounds: r.Rounds}, nil
		},
	})
}

// Run executes the algorithm on the sub-hypergraph induced by active
// (nil = all vertices). Edges of h must consist of active vertices only.
func Run(h *hypergraph.Hypergraph, active []bool, s *rng.Stream, cost *par.Cost, opts Options) (*Result, error) {
	n := h.N()
	eng := opts.Par
	if opts.MaxRounds == 0 {
		opts.MaxRounds = 10*n + 100
	}
	ws := opts.Ws
	if ws == nil {
		ws = solver.NewWorkspace()
	}
	ws.Reset(n, eng)
	live := ws.Bits(0)
	if active == nil {
		live.SetAll(n)
	} else {
		for i, a := range active {
			if a {
				live.Add(i)
			}
		}
	}
	par.ChargeStep(cost, n)
	for _, e := range h.Edges() {
		for _, v := range e {
			if !live.Has(int(v)) {
				return nil, fmt.Errorf("kuw: edge %v contains inactive vertex %d", e, v)
			}
		}
	}

	res := &Result{
		InIS: make([]bool, n),
		Red:  make([]bool, n),
	}
	// Cumulative colorings, packed: the fused end-of-round transform
	// tests membership by word probe.
	inISBits := ws.Bits(1)
	redBits := ws.Bits(2)
	words := len(live)
	cur := h
	pos := ws.Ints(0, n)             // position of each vertex in this round's order
	candidates := ws.Verts(0, n)[:0] // reused across rounds; cap n, so appends never grow it
	// Double-buffered CSR arenas for the fused end-of-round update.
	scratch := &ws.Scratch

	lp := &solver.Loop{
		Ctx:       opts.Ctx,
		Cost:      cost,
		MaxRounds: opts.MaxRounds,
		LimitErr:  ErrRoundLimit,
		Unit:      "round",
		Observer:  opts.Observer,
	}
	for {
		if err := lp.Check(); err != nil {
			return nil, err
		}
		st := RoundStat{Round: lp.Rounds()}

		// Filter phase: bulk-discard every candidate already blocked by
		// a singleton residual edge, then drop edges touching them.
		var blocked []hypergraph.V
		cur, blocked = hypergraph.RemoveSingletons(cur)
		if len(blocked) > 0 {
			for _, v := range blocked {
				if live.Has(int(v)) {
					live.Del(int(v))
					res.Red[v] = true
					redBits.Add(int(v))
					st.Filtered++
				}
			}
			cur = hypergraph.DiscardTouching(cur, func(v hypergraph.V) bool { return res.Red[v] })
			par.ChargeStep(cost, cur.M())
		}

		// Candidate list: the live set, ascending (stream compaction).
		candidates = candidates[:0]
		live.ForEach(func(v int) { candidates = append(candidates, hypergraph.V(v)) })
		par.ChargeReduce(cost, n) // flag+scan+scatter compaction
		k := len(candidates)
		if k == 0 {
			res.Rounds = lp.Rounds()
			return res, nil
		}
		if err := lp.Begin(k, cur.M(), cur.Dim()); err != nil {
			return nil, err
		}

		st.Undecided = k
		st.Edges = cur.M()

		// No live edges: everything remaining is independent.
		if cur.M() == 0 {
			for _, v := range candidates {
				res.InIS[v] = true
			}
			live.Reset()
			par.ChargeStep(cost, k)
			st.Accepted = k
			if opts.CollectStats {
				res.Stats = append(res.Stats, st)
			}
			lp.End(st.Filtered + k)
			res.Rounds = lp.Rounds()
			return res, nil
		}

		// Random order on candidates; pos[v] = rank. A permutation is
		// O(log n) depth on an EREW PRAM (sort of random keys). The
		// identity-fill + Fisher–Yates pass below draws exactly what
		// Stream.Perm would, into a workspace buffer.
		perm := ws.Ints(1, k)
		for i := range perm {
			perm[i] = i
		}
		s.Child(uint64(st.Round)).Shuffle(perm)
		eng.For(cost, k, func(i int) {
			pos[candidates[perm[i]]] = i
		})
		par.ChargeAux(cost, int64(k), int64(mathx.ILog2(k))) // permutation generation

		// Activation position of each edge: the rank of its last vertex.
		// Edges here contain only undecided vertices (S-vertices were
		// shrunk away, red-touching edges discarded).
		edges := cur.Edges()
		act := ws.Ints(2, len(edges))
		eng.ForBlocked(cost, len(edges), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				m := -1
				for _, v := range edges[i] {
					if pos[v] > m {
						m = pos[v]
					}
				}
				act[i] = m
			}
		})
		minAct := par.ReduceOn(eng, cost, act, k, func(a, b int) int {
			if a < b {
				return a
			}
			return b
		})

		// Accept the safe prefix [0, minAct); discard the blocker. Each
		// worker owns a disjoint word range of every vertex-indexed set,
		// so the parallel pass is write-race-free and deterministic.
		eng.ForBlocked(nil, words, func(lo, hi int) {
			for wi := lo; wi < hi; wi++ {
				lw := live[wi]
				base := wi << 6
				for w := lw; w != 0; w &= w - 1 {
					v := base + bits.TrailingZeros64(w)
					switch {
					case pos[v] < minAct:
						res.InIS[v] = true
						inISBits.Add(v)
						live.Del(v)
					case pos[v] == minAct:
						res.Red[v] = true
						redBits.Add(v)
						live.Del(v)
					}
				}
			}
		})
		par.ChargeStep(cost, k)
		st.Accepted = minAct
		if minAct < k {
			st.Discarded = 1
		}

		// Update the working hypergraph: discard red-touching edges and
		// shrink the survivors by the accepted prefix, fused into one
		// scratch-buffered pass. (A fully-accepted edge cannot touch a
		// red vertex — each vertex gets one color — so the emptied count
		// matches the unfused Shrink→DiscardTouching order.)
		next, emptied := hypergraph.NextRoundBits(cur, redBits, inISBits, scratch)
		if emptied > 0 {
			return nil, fmt.Errorf("kuw: %d edges fully accepted at round %d (independence broken)", emptied, st.Round)
		}
		par.ChargeStep(cost, cur.M())
		cur = next

		if opts.CollectStats {
			res.Stats = append(res.Stats, st)
		}
		lp.End(st.Filtered + st.Accepted + st.Discarded)
	}
}
