package kuw

import (
	"errors"
	"testing"

	"repro/internal/hypergraph"
	"repro/internal/par"
	"repro/internal/rng"
)

func run(t *testing.T, h *hypergraph.Hypergraph, seed uint64) *Result {
	t.Helper()
	res, err := Run(h, nil, rng.New(seed), nil, Options{})
	if err != nil {
		t.Fatalf("KUW failed: %v", err)
	}
	return res
}

func TestKUWTriangle(t *testing.T) {
	h := hypergraph.NewBuilder(3).AddEdge(0, 1, 2).MustBuild()
	res := run(t, h, 1)
	if err := hypergraph.VerifyMIS(h, res.InIS); err != nil {
		t.Fatal(err)
	}
	size := 0
	for _, in := range res.InIS {
		if in {
			size++
		}
	}
	if size != 2 {
		t.Fatalf("triangle MIS size %d, want 2", size)
	}
}

func TestKUWEdgeless(t *testing.T) {
	h := hypergraph.NewBuilder(8).MustBuild()
	res := run(t, h, 2)
	for v, in := range res.InIS {
		if !in {
			t.Fatalf("vertex %d missing from MIS of edgeless hypergraph", v)
		}
	}
	if res.Rounds != 1 {
		t.Fatalf("rounds = %d", res.Rounds)
	}
}

func TestKUWSingleton(t *testing.T) {
	h := hypergraph.NewBuilder(3).AddEdge(1).MustBuild()
	res := run(t, h, 3)
	if res.InIS[1] {
		t.Fatal("singleton-edge vertex joined")
	}
	if err := hypergraph.VerifyMIS(h, res.InIS); err != nil {
		t.Fatal(err)
	}
}

func TestKUWAlwaysMIS(t *testing.T) {
	s := rng.New(4)
	for trial := 0; trial < 40; trial++ {
		n := 10 + s.Intn(60)
		h := hypergraph.RandomMixed(s, n, 1+s.Intn(100), 2, 5)
		res := run(t, h, uint64(trial))
		if err := hypergraph.VerifyMIS(h, res.InIS); err != nil {
			t.Fatalf("trial %d (%v): %v", trial, h, err)
		}
	}
}

func TestKUWBlueRedPartition(t *testing.T) {
	s := rng.New(5)
	h := hypergraph.RandomUniform(s, 50, 80, 3)
	res := run(t, h, 6)
	for v := 0; v < 50; v++ {
		if res.InIS[v] && res.Red[v] {
			t.Fatalf("vertex %d both blue and red", v)
		}
		if !res.InIS[v] && !res.Red[v] {
			t.Fatalf("vertex %d undecided at termination", v)
		}
	}
}

func TestKUWActiveSubset(t *testing.T) {
	s := rng.New(6)
	full := hypergraph.RandomUniform(s, 40, 60, 3)
	active := make([]bool, 40)
	for v := 0; v < 20; v++ {
		active[v] = true
	}
	sub := hypergraph.Induced(full, func(v hypergraph.V) bool { return active[v] })
	res, err := Run(sub, active, rng.New(7), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v := 20; v < 40; v++ {
		if res.InIS[v] || res.Red[v] {
			t.Fatalf("inactive vertex %d decided", v)
		}
	}
	if !hypergraph.IsIndependent(sub, res.InIS) {
		t.Fatal("not independent")
	}
}

func TestKUWRejectsForeignEdge(t *testing.T) {
	h := hypergraph.NewBuilder(3).AddEdge(0, 2).MustBuild()
	active := []bool{true, true, false}
	if _, err := Run(h, active, rng.New(1), nil, Options{}); err == nil {
		t.Fatal("edge with inactive vertex accepted")
	}
}

func TestKUWDeterministic(t *testing.T) {
	s := rng.New(8)
	h := hypergraph.RandomMixed(s, 60, 90, 2, 4)
	a := run(t, h, 55)
	b := run(t, h, 55)
	for v := range a.InIS {
		if a.InIS[v] != b.InIS[v] {
			t.Fatal("same seed, different output")
		}
	}
}

func TestKUWRoundLimit(t *testing.T) {
	s := rng.New(9)
	h := hypergraph.RandomUniform(s, 60, 100, 3)
	_, err := Run(h, nil, rng.New(2), nil, Options{MaxRounds: 1})
	if err == nil {
		t.Skip("finished in one round (rare)")
	}
	if !errors.Is(err, ErrRoundLimit) {
		t.Fatalf("wrong error: %v", err)
	}
}

func TestKUWStats(t *testing.T) {
	s := rng.New(10)
	h := hypergraph.RandomUniform(s, 60, 100, 3)
	res, err := Run(h, nil, rng.New(3), nil, Options{CollectStats: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats) != res.Rounds {
		t.Fatalf("stats %d != rounds %d", len(res.Stats), res.Rounds)
	}
	decided := 0
	for _, st := range res.Stats {
		if st.Accepted+st.Discarded+st.Filtered == 0 {
			t.Fatalf("round %d decided nothing", st.Round)
		}
		decided += st.Accepted + st.Discarded + st.Filtered
	}
	if decided != 60 {
		t.Fatalf("decided %d of 60 vertices", decided)
	}
}

func TestKUWProgressEachRound(t *testing.T) {
	// MaxRounds = n always suffices: every round decides ≥ 1 vertex.
	s := rng.New(11)
	for trial := 0; trial < 10; trial++ {
		h := hypergraph.RandomMixed(s, 40, 80, 2, 5)
		if _, err := Run(h, nil, rng.New(uint64(trial)), nil, Options{MaxRounds: 41}); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestKUWCost(t *testing.T) {
	s := rng.New(12)
	h := hypergraph.RandomUniform(s, 50, 70, 3)
	var cost par.Cost
	if _, err := Run(h, nil, rng.New(4), &cost, Options{}); err != nil {
		t.Fatal(err)
	}
	if cost.Work() == 0 || cost.Depth() == 0 || cost.Work() < cost.Depth() {
		t.Fatalf("bad cost: work=%d depth=%d", cost.Work(), cost.Depth())
	}
}

func TestKUWCompleteHypergraph(t *testing.T) {
	h := hypergraph.Complete(10, 10, 4)
	res := run(t, h, 13)
	if err := hypergraph.VerifyMIS(h, res.InIS); err != nil {
		t.Fatal(err)
	}
	size := 0
	for _, in := range res.InIS {
		if in {
			size++
		}
	}
	if size != 3 {
		t.Fatalf("MIS of complete 4-uniform K10 has size %d, want 3", size)
	}
}

func BenchmarkKUW(b *testing.B) {
	s := rng.New(1)
	h := hypergraph.RandomMixed(s, 2000, 4000, 2, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(h, nil, rng.New(uint64(i)), nil, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
