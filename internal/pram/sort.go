package pram

// Bitonic sort as an EREW PRAM program: the machine-level sorting
// primitive underlying the "random permutation in O(log n) parallel
// time" steps of KUW and the permutation algorithm (sorting random keys
// is the standard EREW realization of drawing a permutation). The
// network is Batcher's bitonic sorter: O(log² n) synchronous steps of
// n/2 disjoint compare-exchanges — every step trivially EREW because
// each cell belongs to exactly one compared pair.

import "math"

// sentinel pads non-power-of-two inputs; it sorts after every real key.
const sortSentinel = math.MaxInt64

// BitonicSort sorts cells [off, off+n) ascending, using scratch cells
// [scratch, scratch+SortScratch(n)). The ranges must be disjoint.
// Depth is O(log² n); the auditor verifies the EREW discipline.
func BitonicSort(m *Machine, off, n, scratch int) {
	if n <= 1 {
		return
	}
	p := roundUpPow2(n)
	// Load into the padded scratch area: one step for the copy, one for
	// the sentinel fill (disjoint cells each).
	copyCells(m, off, scratch, n)
	if p > n {
		m.Step(p-n, func(pr *Proc) {
			pr.Write(scratch+n+pr.ID(), sortSentinel)
		})
	}
	// Batcher's network: for each phase k, sub-steps j = k/2 … 1.
	for k := 2; k <= p; k *= 2 {
		for j := k / 2; j >= 1; j /= 2 {
			kk, jj := k, j
			m.Step(p/2, func(pr *Proc) {
				// Enumerate the pairs (i, i|jj) with i&jj == 0.
				id := pr.ID()
				// The id-th index with bit jj clear: spread the high
				// bits of id one position left, keep the low bits.
				low := ((id &^ (jj - 1)) << 1) | (id & (jj - 1))
				high := low | jj
				a := pr.Read(scratch + low)
				b := pr.Read(scratch + high)
				ascending := low&kk == 0
				if (a > b) == ascending {
					pr.Write(scratch+low, b)
					pr.Write(scratch+high, a)
				}
			})
		}
	}
	copyCells(m, scratch, off, n)
}

// SortScratch returns the scratch cells BitonicSort needs for n keys.
func SortScratch(n int) int { return roundUpPow2(n) }
