package pram

import (
	"testing"

	"repro/internal/hypergraph"
	"repro/internal/rng"
)

// referenceStage computes one BL marking stage directly: unmark every
// vertex of a fully-marked edge, survivors = marked ∧ ¬unmarked ∧ live.
func referenceStage(h *hypergraph.Hypergraph, live, marks []bool) map[hypergraph.V]bool {
	unmark := make([]bool, h.N())
	for _, e := range h.Edges() {
		all := true
		for _, v := range e {
			if !(marks[v] && live[v]) {
				all = false
				break
			}
		}
		if all {
			for _, v := range e {
				unmark[v] = true
			}
		}
	}
	out := map[hypergraph.V]bool{}
	for v := 0; v < h.N(); v++ {
		if live[v] && marks[v] && !unmark[v] {
			out[hypergraph.V(v)] = true
		}
	}
	return out
}

func TestBLKernelMatchesReference(t *testing.T) {
	s := rng.New(1)
	for trial := 0; trial < 25; trial++ {
		n := 10 + s.Intn(40)
		h := hypergraph.RandomMixed(s, n, 1+s.Intn(60), 2, 5)
		live := make([]bool, n)
		marks := make([]bool, n)
		for v := 0; v < n; v++ {
			live[v] = s.Bernoulli(0.9)
			marks[v] = s.Bernoulli(0.4)
		}
		// The kernel assumes edges over live vertices only; restrict.
		sub := hypergraph.Induced(h, func(v hypergraph.V) bool { return live[v] })

		m := NewMachine(1)
		layout := BuildBLLayout(m, sub)
		layout.LoadState(m, live)
		added := layout.RunStage(m, marks)

		want := referenceStage(sub, live, marks)
		if len(added) != len(want) {
			t.Fatalf("trial %d: kernel added %d, reference %d", trial, len(added), len(want))
		}
		for _, v := range added {
			if !want[v] {
				t.Fatalf("trial %d: kernel added %d not in reference", trial, v)
			}
		}
		if len(m.Violations()) != 0 {
			t.Fatalf("trial %d: EREW violation: %v", trial, m.Violations()[0])
		}
	}
}

func TestBLKernelDepthLogarithmic(t *testing.T) {
	s := rng.New(2)
	h := hypergraph.RandomUniform(s, 2000, 4000, 4)
	m := NewMachine(1)
	layout := BuildBLLayout(m, h)
	live := make([]bool, 2000)
	marks := make([]bool, 2000)
	for v := range live {
		live[v] = true
		marks[v] = s.Bernoulli(0.3)
	}
	layout.LoadState(m, live)
	layout.RunStage(m, marks)
	// Depth per stage is O(log maxdeg + log d): generously, under 64
	// machine steps at this scale (vs thousands of vertices).
	if m.Steps() > 64 {
		t.Fatalf("stage depth %d not logarithmic", m.Steps())
	}
	if len(m.Violations()) != 0 {
		t.Fatalf("EREW violation: %v", m.Violations()[0])
	}
}

func TestRunBLOnMachineProducesMIS(t *testing.T) {
	s := rng.New(3)
	for trial := 0; trial < 8; trial++ {
		n := 20 + s.Intn(60)
		h := hypergraph.RandomMixed(s, n, 1+s.Intn(90), 2, 4)
		res, err := RunBLOnMachine(h, rng.New(uint64(trial)), 0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := hypergraph.VerifyMIS(h, res.InIS); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Violations != 0 {
			t.Fatalf("trial %d: %d EREW violations", trial, res.Violations)
		}
		if res.Depth <= 0 || res.Work < res.Depth {
			t.Fatalf("trial %d: depth=%d work=%d", trial, res.Depth, res.Work)
		}
	}
}

func TestRunBLOnMachineEdgeless(t *testing.T) {
	h := hypergraph.NewBuilder(7).MustBuild()
	res, err := RunBLOnMachine(h, rng.New(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range res.InIS {
		if !in {
			t.Fatal("all vertices of an edgeless hypergraph must join")
		}
	}
}

func TestRunBLOnMachineSingleton(t *testing.T) {
	h := hypergraph.NewBuilder(3).AddEdge(1).MustBuild()
	res, err := RunBLOnMachine(h, rng.New(2), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.InIS[1] {
		t.Fatal("singleton-edge vertex joined")
	}
	if err := hypergraph.VerifyMIS(h, res.InIS); err != nil {
		t.Fatal(err)
	}
}

func TestRunBLOnMachineDeterministic(t *testing.T) {
	s := rng.New(4)
	h := hypergraph.RandomUniform(s, 60, 100, 3)
	a, err := RunBLOnMachine(h, rng.New(9), 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBLOnMachine(h, rng.New(9), 0)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.InIS {
		if a.InIS[v] != b.InIS[v] {
			t.Fatal("same seed, different MIS")
		}
	}
	if a.Depth != b.Depth || a.Stages != b.Stages {
		t.Fatal("same seed, different machine profile")
	}
}

func TestRunBLOnMachineStageLimit(t *testing.T) {
	s := rng.New(5)
	h := hypergraph.RandomUniform(s, 60, 120, 3)
	if _, err := RunBLOnMachine(h, rng.New(1), 1); err == nil {
		t.Skip("finished in one stage (rare)")
	}
}

func BenchmarkBLKernelStage(b *testing.B) {
	s := rng.New(1)
	h := hypergraph.RandomUniform(s, 1000, 2000, 3)
	m := NewMachine(1)
	m.SetAudit(false)
	layout := BuildBLLayout(m, h)
	live := make([]bool, 1000)
	marks := make([]bool, 1000)
	for v := range live {
		live[v] = true
		marks[v] = s.Bernoulli(0.2)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		layout.LoadState(m, live)
		layout.RunStage(m, marks)
	}
}
