package pram

// The full Beame–Luby loop driven over the machine kernel: the marking
// stage (the EREW-delicate part) executes on the simulated machine; the
// host performs the inter-stage structural cleanup (edge shrinking,
// superset and singleton removal — standard compaction whose EREW
// realization is routine) and rebuilds the kernel layout when the
// structure changes. Machine counters accumulate the audited depth of
// every stage, giving a measured "stages × O(log)" depth profile.

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/hypergraph"
	"repro/internal/rng"
)

// BLMachineResult reports a machine-hosted BL run.
type BLMachineResult struct {
	InIS       []bool
	Stages     int
	Depth      int64 // machine steps consumed by stage kernels
	Work       int64 // machine work consumed by stage kernels
	Violations int   // EREW violations observed (must be 0)
}

// ErrMachineStageLimit mirrors bl.ErrStageLimit for the machine driver.
var ErrMachineStageLimit = errors.New("pram: BL stage limit exceeded")

// RunBLOnMachine computes a MIS of h with the Beame–Luby algorithm whose
// marking stages run on a freshly created EREW machine. Randomness comes
// from s (the host writes each stage's coin flips into the machine's
// random tape, modelling processor-local coins). maxStages guards
// non-termination (0 = 100000).
func RunBLOnMachine(h *hypergraph.Hypergraph, s *rng.Stream, maxStages int) (*BLMachineResult, error) {
	if maxStages == 0 {
		maxStages = 100000
	}
	n := h.N()
	res := &BLMachineResult{InIS: make([]bool, n)}
	live := make([]bool, n)
	for v := range live {
		live[v] = true
	}

	m := NewMachine(1)
	cur := hypergraph.RemoveSupersets(h)
	cur = dropSingletonsHost(cur, live, res)
	marks := make([]bool, n)

	for stage := 0; ; stage++ {
		liveCount := 0
		for v := 0; v < n; v++ {
			if live[v] {
				liveCount++
			}
		}
		if liveCount == 0 {
			res.Stages = stage
			break
		}
		if stage >= maxStages {
			return nil, fmt.Errorf("%w after %d stages", ErrMachineStageLimit, stage)
		}
		// Free vertices join immediately once no edges remain.
		if cur.M() == 0 {
			for v := 0; v < n; v++ {
				if live[v] {
					res.InIS[v] = true
					live[v] = false
				}
			}
			res.Stages = stage + 1
			break
		}

		// Marking probability from the degree structure (host-side
		// analysis, as in package bl).
		tab := hypergraph.BuildDegreeTable(cur)
		delta := tab.Delta()
		d := cur.Dim()
		p := 1.0
		if delta > 0 {
			p = 1.0 / (math.Pow(2, float64(minI(d+1, 62))) * delta)
		}
		if p > 1 {
			p = 1
		}

		// Kernel on the machine.
		layout := BuildBLLayout(m, cur)
		layout.LoadState(m, live)
		stageStream := s.Child(uint64(stage))
		for v := 0; v < n; v++ {
			marks[v] = live[v] && stageStream.Child(uint64(v)).Bernoulli(p)
		}
		added := layout.RunStage(m, marks)

		// Commit and clean up host-side.
		for _, v := range added {
			res.InIS[v] = true
			live[v] = false
		}
		if len(added) > 0 {
			next, emptied := hypergraph.Shrink(cur, func(v hypergraph.V) bool { return res.InIS[v] })
			if emptied > 0 {
				return nil, fmt.Errorf("pram: %d edges fully blue at stage %d", emptied, stage)
			}
			next = hypergraph.RemoveSupersets(next)
			next = dropSingletonsHost(next, live, res)
			cur = next
		}
	}
	res.Depth = m.Steps()
	res.Work = m.Work()
	res.Violations = len(m.Violations())
	return res, nil
}

// dropSingletonsHost mirrors bl.dropSingletons for the machine driver:
// singleton edges block their vertex permanently.
func dropSingletonsHost(cur *hypergraph.Hypergraph, live []bool, res *BLMachineResult) *hypergraph.Hypergraph {
	next, blocked := hypergraph.RemoveSingletons(cur)
	if len(blocked) == 0 {
		return next
	}
	for _, v := range blocked {
		live[v] = false
	}
	return hypergraph.DiscardTouching(next, func(v hypergraph.V) bool {
		return !live[v] && !res.InIS[v]
	})
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}
