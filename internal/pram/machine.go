// Package pram implements a simulated EREW PRAM: the model of
// computation the paper states its results in ("EREW PRAM with
// poly(m,n) processors").
//
// A Machine owns a shared memory of int64 cells and executes
// synchronous parallel steps. In each step a caller-chosen number of
// processors run the same program function; all reads observe memory as
// of the start of the step and all writes are applied together at the
// end of the step (standard synchronous PRAM semantics). The machine
// records the *work* (total processor-operations), the *depth* (number
// of steps), and the peak processor count — the three quantities in
// which Theorems 1 and 2 are phrased.
//
// The machine also audits the EREW (exclusive-read exclusive-write)
// discipline: if two processors touch the same cell in the same step —
// even two reads — a violation is recorded with the step, address, and
// processor pair. Algorithms claimed to be EREW can therefore be
// executed and *checked*, not merely asserted; see ops.go for
// EREW-compliant broadcast/reduce/scan building blocks.
//
// The simulator executes processors sequentially within a step. That is
// deliberate: the point of this substrate is exact accounting and
// reproducibility of the cost model, not wall-clock speed (the native
// goroutine path in internal/par provides real parallelism). Results
// are identical regardless of host parallelism.
package pram

import "fmt"

// Violation records a breach of the EREW discipline.
type Violation struct {
	Step   int64 // step index at which the conflict occurred
	Addr   int   // memory address involved
	ProcA  int   // first processor to touch the address in the step
	ProcB  int   // offending processor
	Writes bool  // whether at least one access was a write
}

func (v Violation) String() string {
	kind := "read/read"
	if v.Writes {
		kind = "write conflict"
	}
	return fmt.Sprintf("EREW violation at step %d addr %d procs (%d,%d): %s",
		v.Step, v.Addr, v.ProcA, v.ProcB, kind)
}

// Machine is a simulated EREW PRAM. Create with NewMachine.
type Machine struct {
	mem []int64

	steps    int64
	work     int64
	maxProcs int

	auditing   bool
	violations []Violation
	maxViol    int

	// Per-step scratch, reused across steps.
	writes  []pendingWrite
	touched map[int]accessRecord
}

type pendingWrite struct {
	addr int
	val  int64
	proc int
}

type accessRecord struct {
	proc  int
	write bool
}

// NewMachine returns a machine with the given number of memory cells,
// all zero. Auditing is enabled by default.
func NewMachine(cells int) *Machine {
	return &Machine{
		mem:      make([]int64, cells),
		auditing: true,
		maxViol:  64,
		touched:  make(map[int]accessRecord),
	}
}

// SetAudit enables or disables EREW conflict auditing. Disabling makes
// large simulations faster; costs are still recorded.
func (m *Machine) SetAudit(on bool) { m.auditing = on }

// MemSize returns the number of memory cells.
func (m *Machine) MemSize() int { return len(m.mem) }

// Grow extends memory to at least cells cells (never shrinks).
func (m *Machine) Grow(cells int) {
	if cells > len(m.mem) {
		grown := make([]int64, cells)
		copy(grown, m.mem)
		m.mem = grown
	}
}

// Load reads a cell outside any step (host access, not charged).
func (m *Machine) Load(addr int) int64 { return m.mem[addr] }

// Store writes a cell outside any step (host access, not charged).
func (m *Machine) Store(addr int, v int64) { m.mem[addr] = v }

// StoreSlice copies vs into memory starting at addr (host access).
func (m *Machine) StoreSlice(addr int, vs []int64) {
	copy(m.mem[addr:addr+len(vs)], vs)
}

// LoadSlice copies cells [addr, addr+k) out of memory (host access).
func (m *Machine) LoadSlice(addr, k int) []int64 {
	out := make([]int64, k)
	copy(out, m.mem[addr:addr+k])
	return out
}

// Steps returns the depth executed so far (number of synchronous steps).
func (m *Machine) Steps() int64 { return m.steps }

// Work returns total processor-operations (Σ over steps of processors).
func (m *Machine) Work() int64 { return m.work }

// MaxProcs returns the largest processor count used in any step.
func (m *Machine) MaxProcs() int { return m.maxProcs }

// Violations returns the recorded EREW violations (capped).
func (m *Machine) Violations() []Violation { return m.violations }

// ResetCounters zeroes step/work/processor counters and violations but
// leaves memory intact.
func (m *Machine) ResetCounters() {
	m.steps, m.work, m.maxProcs = 0, 0, 0
	m.violations = nil
}

// Proc is the view a single processor has during one step: its identity
// plus mediated memory access. Reads see the memory as of step start;
// writes are buffered and applied when the step ends.
type Proc struct {
	id int
	m  *Machine
}

// ID returns the processor index in [0, procs).
func (p *Proc) ID() int { return p.id }

// Read returns the value of addr as of the start of the step.
func (p *Proc) Read(addr int) int64 {
	p.m.recordAccess(p.id, addr, false)
	return p.m.mem[addr]
}

// Write buffers a write of v to addr, applied at the end of the step.
func (p *Proc) Write(addr int, v int64) {
	p.m.recordAccess(p.id, addr, true)
	p.m.writes = append(p.m.writes, pendingWrite{addr: addr, val: v, proc: p.id})
}

func (m *Machine) recordAccess(proc, addr int, write bool) {
	if !m.auditing {
		return
	}
	if prev, ok := m.touched[addr]; ok {
		if prev.proc != proc {
			if len(m.violations) < m.maxViol {
				m.violations = append(m.violations, Violation{
					Step: m.steps, Addr: addr,
					ProcA: prev.proc, ProcB: proc,
					Writes: write || prev.write,
				})
			}
			if write && !prev.write {
				m.touched[addr] = accessRecord{proc: prev.proc, write: true}
			}
			return
		}
		if write && !prev.write {
			m.touched[addr] = accessRecord{proc: proc, write: true}
		}
		return
	}
	m.touched[addr] = accessRecord{proc: proc, write: write}
}

// Step executes one synchronous parallel step with procs processors all
// running body. It charges procs work and 1 depth. Writes become
// visible only after every processor has run; if two processors write
// the same cell, the violation is recorded and the write by the
// highest-numbered processor wins (deterministic arbitrary-CRCW
// fallback, so buggy programs still behave reproducibly).
func (m *Machine) Step(procs int, body func(p *Proc)) {
	if procs <= 0 {
		return
	}
	m.steps++
	m.work += int64(procs)
	if procs > m.maxProcs {
		m.maxProcs = procs
	}
	m.writes = m.writes[:0]
	clear(m.touched)
	pr := Proc{m: m}
	for id := 0; id < procs; id++ {
		pr.id = id
		body(&pr)
	}
	for _, w := range m.writes {
		m.mem[w.addr] = w.val
	}
}
