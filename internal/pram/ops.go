package pram

// EREW-compliant library routines. Each routine is a PRAM program in the
// textbook sense: a sequence of synchronous steps whose access pattern
// never touches a cell from two processors in the same step. They are
// the building blocks the paper's "can be implemented on EREW PRAM"
// claims rely on: broadcast in O(log p) (no concurrent read!), balanced
// binary-tree reduction in O(log n), and two-phase prefix sums in
// O(log n). Every routine's EREW discipline is verified in tests by the
// machine's auditor.

// Broadcast copies the value at src into cells [dst, dst+count) in
// O(log count) steps using recursive doubling: step k has 2^k
// processors, each copying from a distinct already-written cell into a
// distinct new cell. (A naive "everyone reads src" would be a CREW
// concurrent read.)
func Broadcast(m *Machine, src, dst, count int) {
	if count <= 0 {
		return
	}
	m.Step(1, func(p *Proc) {
		p.Write(dst, p.Read(src))
	})
	done := 1
	for done < count {
		batch := done
		if done+batch > count {
			batch = count - done
		}
		base := done
		m.Step(batch, func(p *Proc) {
			p.Write(dst+base+p.ID(), p.Read(dst+p.ID()))
		})
		done += batch
	}
}

// ReduceSum computes the sum of cells [src, src+n) into cell dst in
// O(log n) steps via a balanced binary tree, using [scratch,
// scratch+n) as workspace (must not overlap src unless identical; if
// scratch == src the input is destroyed).
func ReduceSum(m *Machine, src, n, dst, scratch int) {
	if n <= 0 {
		m.Step(1, func(p *Proc) { p.Write(dst, 0) })
		return
	}
	if scratch != src {
		copyCells(m, src, scratch, n)
	}
	width := n
	for width > 1 {
		half := width / 2
		m.Step(half, func(p *Proc) {
			// p and width-1-p are always distinct for p < width/2, so
			// every processor touches its own disjoint pair of cells.
			a := p.Read(scratch + p.ID())
			b := p.Read(scratch + width - 1 - p.ID())
			p.Write(scratch+p.ID(), a+b)
		})
		width = (width + 1) / 2
	}
	m.Step(1, func(p *Proc) { p.Write(dst, p.Read(scratch)) })
}

// copyCells copies [src, src+n) to [dst, dst+n) in one step with n
// processors (disjoint cells, EREW-safe given the ranges don't overlap).
func copyCells(m *Machine, src, dst, n int) {
	if n <= 0 {
		return
	}
	m.Step(n, func(p *Proc) {
		p.Write(dst+p.ID(), p.Read(src+p.ID()))
	})
}

// PrefixSumExclusive computes exclusive prefix sums of [src, src+n) into
// [dst, dst+n), and the total into dst+n, using the Blelloch two-phase
// scan. The input is padded to the next power of two N, so the scratch
// area must have at least ScanScratch(n) = N cells. O(log n) depth,
// O(n) work per phase. src, dst, scratch must be pairwise disjoint.
func PrefixSumExclusive(m *Machine, src, n, dst, scratch int) {
	if n <= 0 {
		return
	}
	pow := roundUpPow2(n)
	copyCells(m, src, scratch, n)
	if pow > n {
		// Zero the padding cells in one step (disjoint addresses).
		m.Step(pow-n, func(p *Proc) {
			p.Write(scratch+n+p.ID(), 0)
		})
	}
	// Upsweep: each step combines disjoint (left,right) pairs, EREW-safe.
	for stride := 1; stride < pow; stride *= 2 {
		s := stride
		m.Step(pow/(2*s), func(p *Proc) {
			right := (p.ID()+1)*2*s - 1
			left := right - s
			a := p.Read(scratch + left)
			b := p.Read(scratch + right)
			p.Write(scratch+right, a+b)
		})
	}
	// Zero the root.
	m.Step(1, func(p *Proc) {
		p.Write(scratch+pow-1, 0)
	})
	// Downsweep.
	for stride := pow / 2; stride >= 1; stride /= 2 {
		s := stride
		m.Step(pow/(2*s), func(p *Proc) {
			right := (p.ID()+1)*2*s - 1
			left := right - s
			t := p.Read(scratch + left)
			r := p.Read(scratch + right)
			p.Write(scratch+left, r)
			p.Write(scratch+right, t+r)
		})
	}
	copyCells(m, scratch, dst, n)
	// total = last exclusive prefix + last input element.
	m.Step(1, func(p *Proc) {
		p.Write(dst+n, p.Read(dst+n-1)+p.Read(src+n-1))
	})
}

// ScanScratch returns the scratch size PrefixSumExclusive needs for n
// elements: the next power of two ≥ n.
func ScanScratch(n int) int { return roundUpPow2(n) }

func roundUpPow2(n int) int {
	p := 1
	for p < n {
		p *= 2
	}
	return p
}
