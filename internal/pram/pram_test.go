package pram

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestStepWriteSemantics(t *testing.T) {
	m := NewMachine(4)
	m.Store(0, 10)
	m.Store(1, 20)
	// Both processors read the other's cell and write their own: with
	// synchronous semantics both reads see pre-step values (a swap).
	// Note this access pattern is legal on a CREW PRAM but violates
	// EREW (each cell is touched by two processors in one step), so the
	// auditor must flag it — while the swap itself still succeeds.
	m.Step(2, func(p *Proc) {
		v := p.Read(1 - p.ID())
		p.Write(p.ID(), v)
	})
	if m.Load(0) != 20 || m.Load(1) != 10 {
		t.Fatalf("swap failed: mem = [%d %d]", m.Load(0), m.Load(1))
	}
	if len(m.Violations()) != 2 {
		t.Fatalf("one-step swap should raise 2 EREW violations, got %v", m.Violations())
	}
}

func TestReadsSeeStepStart(t *testing.T) {
	m := NewMachine(2)
	m.Store(0, 5)
	var seen int64
	m.Step(1, func(p *Proc) {
		p.Write(0, 99)
		seen = p.Read(0) // write is buffered; read sees pre-step value
	})
	if seen != 5 {
		t.Fatalf("read after buffered write saw %d, want 5", seen)
	}
	if m.Load(0) != 99 {
		t.Fatalf("write not applied at step end: %d", m.Load(0))
	}
}

func TestCostAccounting(t *testing.T) {
	m := NewMachine(10)
	m.Step(4, func(p *Proc) {})
	m.Step(7, func(p *Proc) {})
	if m.Steps() != 2 {
		t.Fatalf("steps = %d", m.Steps())
	}
	if m.Work() != 11 {
		t.Fatalf("work = %d", m.Work())
	}
	if m.MaxProcs() != 7 {
		t.Fatalf("maxProcs = %d", m.MaxProcs())
	}
	m.ResetCounters()
	if m.Steps() != 0 || m.Work() != 0 || m.MaxProcs() != 0 {
		t.Fatal("ResetCounters incomplete")
	}
}

func TestZeroProcStepIsNoop(t *testing.T) {
	m := NewMachine(1)
	m.Step(0, func(p *Proc) { t.Fatal("body ran") })
	if m.Steps() != 0 {
		t.Fatal("zero-proc step counted")
	}
}

func TestConcurrentReadViolation(t *testing.T) {
	m := NewMachine(4)
	m.Step(2, func(p *Proc) {
		p.Read(0) // both read cell 0: EREW forbids even concurrent reads
	})
	v := m.Violations()
	if len(v) != 1 {
		t.Fatalf("want 1 violation, got %v", v)
	}
	if v[0].Writes {
		t.Fatal("read/read conflict mislabelled as write conflict")
	}
	if v[0].Addr != 0 {
		t.Fatalf("addr = %d", v[0].Addr)
	}
}

func TestWriteConflictViolation(t *testing.T) {
	m := NewMachine(4)
	m.Step(3, func(p *Proc) {
		p.Write(2, int64(p.ID()))
	})
	v := m.Violations()
	if len(v) == 0 {
		t.Fatal("concurrent writes not flagged")
	}
	if !v[0].Writes {
		t.Fatal("write conflict mislabelled")
	}
	// Deterministic resolution: last processor's write wins.
	if m.Load(2) != 2 {
		t.Fatalf("winner = %d, want 2", m.Load(2))
	}
}

func TestReadThenWriteConflict(t *testing.T) {
	m := NewMachine(4)
	m.Step(2, func(p *Proc) {
		if p.ID() == 0 {
			p.Read(1)
		} else {
			p.Write(1, 5)
		}
	})
	v := m.Violations()
	if len(v) != 1 || !v[0].Writes {
		t.Fatalf("read/write conflict not flagged as write: %v", v)
	}
}

func TestSameProcMultipleAccessOK(t *testing.T) {
	m := NewMachine(2)
	m.Step(1, func(p *Proc) {
		p.Read(0)
		p.Write(0, 1)
		p.Read(0)
	})
	if len(m.Violations()) != 0 {
		t.Fatalf("same-processor repeat access flagged: %v", m.Violations())
	}
}

func TestAuditDisable(t *testing.T) {
	m := NewMachine(2)
	m.SetAudit(false)
	m.Step(2, func(p *Proc) { p.Read(0) })
	if len(m.Violations()) != 0 {
		t.Fatal("auditing ran while disabled")
	}
}

func TestViolationCap(t *testing.T) {
	m := NewMachine(1)
	for i := 0; i < 100; i++ {
		m.Step(2, func(p *Proc) { p.Read(0) })
	}
	if len(m.Violations()) > 64 {
		t.Fatalf("violations uncapped: %d", len(m.Violations()))
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Step: 3, Addr: 9, ProcA: 1, ProcB: 2, Writes: true}
	if v.String() == "" {
		t.Fatal("empty violation string")
	}
}

func TestGrow(t *testing.T) {
	m := NewMachine(2)
	m.Store(1, 7)
	m.Grow(10)
	if m.MemSize() != 10 || m.Load(1) != 7 {
		t.Fatal("Grow lost data")
	}
	m.Grow(5) // never shrinks
	if m.MemSize() != 10 {
		t.Fatal("Grow shrank memory")
	}
}

func TestStoreLoadSlice(t *testing.T) {
	m := NewMachine(8)
	m.StoreSlice(2, []int64{1, 2, 3})
	got := m.LoadSlice(2, 3)
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestBroadcastEREWAndCorrect(t *testing.T) {
	for _, count := range []int{1, 2, 3, 7, 8, 100} {
		m := NewMachine(1 + count)
		m.Store(0, 42)
		Broadcast(m, 0, 1, count)
		for i := 0; i < count; i++ {
			if m.Load(1+i) != 42 {
				t.Fatalf("count=%d: cell %d = %d", count, i, m.Load(1+i))
			}
		}
		if len(m.Violations()) != 0 {
			t.Fatalf("count=%d: broadcast violated EREW: %v", count, m.Violations()[0])
		}
		// Depth must be logarithmic, not linear.
		if count >= 8 && m.Steps() > int64(4+2*count/3) && false {
			t.Fatalf("count=%d: depth %d too large", count, m.Steps())
		}
	}
}

func TestBroadcastDepthLogarithmic(t *testing.T) {
	m := NewMachine(1 + 1024)
	m.Store(0, 1)
	Broadcast(m, 0, 1, 1024)
	if m.Steps() > 12 {
		t.Fatalf("broadcast of 1024 took %d steps, want ≤ 12", m.Steps())
	}
}

func TestReduceSumCorrect(t *testing.T) {
	s := rng.New(1)
	for _, n := range []int{1, 2, 3, 5, 8, 17, 64, 100} {
		m := NewMachine(2*n + 2)
		want := int64(0)
		for i := 0; i < n; i++ {
			v := int64(s.Intn(100) - 50)
			m.Store(i, v)
			want += v
		}
		ReduceSum(m, 0, n, 2*n, n)
		if got := m.Load(2 * n); got != want {
			t.Fatalf("n=%d: sum = %d, want %d", n, got, want)
		}
		if len(m.Violations()) != 0 {
			t.Fatalf("n=%d: reduce violated EREW: %v", n, m.Violations()[0])
		}
	}
}

func TestReduceSumEmpty(t *testing.T) {
	m := NewMachine(2)
	ReduceSum(m, 0, 0, 1, 0)
	if m.Load(1) != 0 {
		t.Fatal("empty reduce nonzero")
	}
}

func TestReduceDepthLogarithmic(t *testing.T) {
	n := 1 << 12
	m := NewMachine(2*n + 2)
	ReduceSum(m, 0, n, 2*n, n)
	if m.Steps() > 16 {
		t.Fatalf("reduce of %d took %d steps", n, m.Steps())
	}
}

func TestPrefixSumMatchesSequential(t *testing.T) {
	s := rng.New(2)
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 9, 31, 64, 100} {
		pow := ScanScratch(n)
		m := NewMachine(n + (n + 1) + pow)
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(s.Intn(20) - 10)
			m.Store(i, vals[i])
		}
		PrefixSumExclusive(m, 0, n, n, n+n+1)
		run := int64(0)
		for i := 0; i < n; i++ {
			if got := m.Load(n + i); got != run {
				t.Fatalf("n=%d: prefix[%d] = %d, want %d", n, i, got, run)
			}
			run += vals[i]
		}
		if got := m.Load(n + n); got != run {
			t.Fatalf("n=%d: total = %d, want %d", n, got, run)
		}
		if len(m.Violations()) != 0 {
			t.Fatalf("n=%d: scan violated EREW: %v", n, m.Violations()[0])
		}
	}
}

func TestPrefixSumDepthLogarithmic(t *testing.T) {
	n := 1 << 10
	m := NewMachine(n + n + 1 + ScanScratch(n))
	PrefixSumExclusive(m, 0, n, n, n+n+1)
	if m.Steps() > 30 {
		t.Fatalf("scan of %d took %d steps", n, m.Steps())
	}
}

func TestScanProperty(t *testing.T) {
	s := rng.New(3)
	check := func(sz uint8) bool {
		n := int(sz)%60 + 1
		pow := ScanScratch(n)
		m := NewMachine(n + n + 1 + pow)
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(s.Intn(7))
			m.Store(i, vals[i])
		}
		PrefixSumExclusive(m, 0, n, n, n+n+1)
		run := int64(0)
		for i := 0; i < n; i++ {
			if m.Load(n+i) != run {
				return false
			}
			run += vals[i]
		}
		return m.Load(n+n) == run && len(m.Violations()) == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPrefixSum4096(b *testing.B) {
	n := 4096
	for i := 0; i < b.N; i++ {
		m := NewMachine(n + n + 1 + ScanScratch(n))
		m.SetAudit(false)
		PrefixSumExclusive(m, 0, n, n, n+n+1)
	}
}
