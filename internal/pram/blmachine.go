package pram

// This file implements the Beame–Luby marking stage as an actual
// program on the simulated EREW machine — the strongest grounding of
// the paper's "can be implemented on EREW PRAM" claims (Theorem 2).
// The delicate part of an EREW realization is that the naive stage is
// full of concurrent reads: every edge wants to read the mark bits of
// its vertices, and every vertex wants to read the fully-marked flags
// of its edges. The standard resolution, implemented here:
//
//  1. Mark: one processor per vertex writes its mark bit (host supplies
//     the random tape; a randomized PRAM's coins are processor-local).
//  2. Fan-out marks: each vertex *broadcasts* its mark bit into one
//     private cell per (edge, slot) incidence via recursive doubling
//     over its own incidence list — O(log maxdeg) steps, never two
//     processors on one cell.
//  3. Edge AND: each edge tree-reduces its private slot cells to decide
//     "fully marked" — O(log d) steps over disjoint segments.
//  4. Fan-out unmarks: each fully-marked edge broadcasts its flag back
//     into a second set of private slot cells — O(log d).
//  5. Vertex OR: each vertex gathers its private unmark cells (one
//     exclusive read each) and tree-reduces the OR — O(log maxdeg).
//  6. Update: one processor per vertex commits marked ∧ ¬unmarked into
//     the IS and clears liveness.
//
// The access pattern is static, so the (src, dst) pairs of every
// doubling/reduction round are precomputed by the host when the layout
// is built ("program loading"); the machine then executes the stage in
// O(log(maxdeg) + log d) audited steps. Structural cleanup between
// stages (edge shrinking, superset and singleton removal) is standard
// sorting/compaction whose EREW costs are charged analytically in
// package bl; this kernel is the part where EREW discipline is actually
// at risk, hence the part run on the machine.

import (
	"fmt"

	"repro/internal/hypergraph"
)

// pair is one (src, dst) cell copy executed by one processor in one step.
type pair struct{ src, dst int }

// binop is one (left, right → dst) combine executed by one processor.
type binop struct{ a, b, dst int }

// BLLayout is a hypergraph laid out in machine memory together with the
// precomputed step schedules of one marking stage.
type BLLayout struct {
	N, M int

	// Memory map (cell offsets).
	randOff   int // n cells: host-written random tape (0/1)
	liveOff   int // n cells
	markedOff int // n cells
	unmarkOff int // n cells
	inISOff   int // n cells
	slotMark  int // S cells: per-(edge,slot) private mark copies
	slotUnmk  int // S cells: per-(edge,slot) private unmark copies
	edgeFull  int // m cells: edge fully-marked flags
	gatherOff int // S cells: per-vertex contiguous gather area
	Size      int // total cells

	// Precomputed schedules.
	markPairs    []pair    // randOff → markedOff, masked by live (step 1)
	bcastRounds  [][]pair  // step 2: vertex → slots, doubling rounds
	andRounds    [][]binop // step 3: per-edge AND trees (in slotMark)
	edgeOutPairs []pair    // slotMark head → edgeFull
	ubcastRounds [][]pair  // step 4: edgeFull → slotUnmk, doubling
	gatherPairs  []pair    // step 5a: slotUnmk → per-vertex gather area
	orRounds     [][]binop // step 5b: per-vertex OR trees (in gather)
	orOutPairs   []pair    // gather head → unmarkOff
}

// BuildBLLayout lays h out in machine memory (growing it as needed) and
// precomputes the stage schedules. Host-side setup is not charged to
// the machine: it is the static program, not the computation.
func BuildBLLayout(m *Machine, h *hypergraph.Hypergraph) *BLLayout {
	n := h.N()
	edges := h.Edges()
	S := 0
	for _, e := range edges {
		S += len(e)
	}
	L := &BLLayout{N: n, M: len(edges)}
	off := 0
	alloc := func(k int) int { o := off; off += k; return o }
	L.randOff = alloc(n)
	L.liveOff = alloc(n)
	L.markedOff = alloc(n)
	L.unmarkOff = alloc(n)
	L.inISOff = alloc(n)
	L.slotMark = alloc(S)
	L.slotUnmk = alloc(S)
	L.edgeFull = alloc(L.M)
	L.gatherOff = alloc(S)
	L.Size = off
	m.Grow(off)

	// Slot positions: edge e owns slots [start[e], start[e]+|e|).
	start := make([]int, len(edges)+1)
	for i, e := range edges {
		start[i+1] = start[i] + len(e)
	}
	// Vertex incidence → slot positions, and the gather area mapping.
	vertSlots := make([][]int, n)
	for ei, e := range edges {
		for si, v := range e {
			vertSlots[v] = append(vertSlots[v], start[ei]+si)
		}
	}
	incStart := make([]int, n+1)
	for v := 0; v < n; v++ {
		incStart[v+1] = incStart[v] + len(vertSlots[v])
	}

	// Step 1: marking (rand → marked) is one elementwise step.
	for v := 0; v < n; v++ {
		L.markPairs = append(L.markPairs, pair{L.randOff + v, L.markedOff + v})
	}

	// Step 2: per-vertex doubling broadcast marked[v] → slotMark[pos…].
	maxDeg := 0
	for v := 0; v < n; v++ {
		if len(vertSlots[v]) > maxDeg {
			maxDeg = len(vertSlots[v])
		}
	}
	// Round -1 (seed): marked[v] → first slot. Folded into round 0 list.
	var seed []pair
	for v := 0; v < n; v++ {
		if len(vertSlots[v]) > 0 {
			seed = append(seed, pair{L.markedOff + v, L.slotMark + vertSlots[v][0]})
		}
	}
	L.bcastRounds = append(L.bcastRounds, seed)
	for done := 1; done < maxDeg; done *= 2 {
		var round []pair
		for v := 0; v < n; v++ {
			g := len(vertSlots[v])
			for i := done; i < g && i < 2*done; i++ {
				round = append(round, pair{
					L.slotMark + vertSlots[v][i-done],
					L.slotMark + vertSlots[v][i],
				})
			}
		}
		if len(round) > 0 {
			L.bcastRounds = append(L.bcastRounds, round)
		}
	}

	// Step 3: per-edge AND trees over slotMark segments (in place,
	// pairing i with width-1-i as in ReduceSum).
	maxEdge := h.Dim()
	widths := make([]int, len(edges))
	for i, e := range edges {
		widths[i] = len(e)
	}
	for level := maxEdge; level > 1; level = (level + 1) / 2 {
		var round []binop
		for ei := range edges {
			w := widths[ei]
			if w <= 1 {
				continue
			}
			half := w / 2
			base := L.slotMark + start[ei]
			for i := 0; i < half; i++ {
				round = append(round, binop{base + i, base + w - 1 - i, base + i})
			}
			widths[ei] = (w + 1) / 2
		}
		if len(round) > 0 {
			L.andRounds = append(L.andRounds, round)
		}
	}
	for ei := range edges {
		L.edgeOutPairs = append(L.edgeOutPairs, pair{L.slotMark + start[ei], L.edgeFull + ei})
	}

	// Step 4: per-edge doubling broadcast edgeFull[e] → slotUnmk segment.
	var useed []pair
	for ei := range edges {
		useed = append(useed, pair{L.edgeFull + ei, L.slotUnmk + start[ei]})
	}
	L.ubcastRounds = append(L.ubcastRounds, useed)
	for done := 1; done < maxEdge; done *= 2 {
		var round []pair
		for ei, e := range edges {
			g := len(e)
			base := L.slotUnmk + start[ei]
			for i := done; i < g && i < 2*done; i++ {
				round = append(round, pair{base + i - done, base + i})
			}
		}
		if len(round) > 0 {
			L.ubcastRounds = append(L.ubcastRounds, round)
		}
	}

	// Step 5a: gather slotUnmk into each vertex's contiguous area.
	for v := 0; v < n; v++ {
		for i, pos := range vertSlots[v] {
			L.gatherPairs = append(L.gatherPairs, pair{
				L.slotUnmk + pos,
				L.gatherOff + incStart[v] + i,
			})
		}
	}
	// Step 5b: per-vertex OR trees over the gather segments.
	gw := make([]int, n)
	for v := 0; v < n; v++ {
		gw[v] = len(vertSlots[v])
	}
	for level := maxDeg; level > 1; level = (level + 1) / 2 {
		var round []binop
		for v := 0; v < n; v++ {
			w := gw[v]
			if w <= 1 {
				continue
			}
			half := w / 2
			base := L.gatherOff + incStart[v]
			for i := 0; i < half; i++ {
				round = append(round, binop{base + i, base + w - 1 - i, base + i})
			}
			gw[v] = (w + 1) / 2
		}
		if len(round) > 0 {
			L.orRounds = append(L.orRounds, round)
		}
	}
	for v := 0; v < n; v++ {
		if len(vertSlots[v]) > 0 {
			L.orOutPairs = append(L.orOutPairs, pair{L.gatherOff + incStart[v], L.unmarkOff + v})
		}
	}
	return L
}

// LoadState writes the live mask into machine memory and clears the
// stage-local arrays (host access, not charged).
func (L *BLLayout) LoadState(m *Machine, live []bool) {
	for v := 0; v < L.N; v++ {
		m.Store(L.liveOff+v, boolCell(live[v]))
		m.Store(L.inISOff+v, 0)
		m.Store(L.unmarkOff+v, 0)
	}
}

// RunStage executes one marking stage: the host provides the random
// tape (marks[v] = coin for vertex v, already multiplied by the marking
// probability), the machine decides the survivors. Returns the set of
// vertices added to the IS this stage. The machine's Steps/Work counters
// advance by the stage's audited cost.
func (L *BLLayout) RunStage(m *Machine, marks []bool) []hypergraph.V {
	if len(marks) != L.N {
		panic(fmt.Sprintf("pram: marks length %d, want %d", len(marks), L.N))
	}
	// Host writes the random tape.
	for v := 0; v < L.N; v++ {
		m.Store(L.randOff+v, boolCell(marks[v]))
	}
	// Clear slot areas (host; a real machine would fold clearing into
	// the writes below — charging it would only add O(1) steps).
	for i := L.slotMark; i < L.slotUnmk; i++ {
		m.Store(i, 0)
	}
	for i := L.slotUnmk; i < L.edgeFull; i++ {
		m.Store(i, 0)
	}
	for v := 0; v < L.N; v++ {
		m.Store(L.unmarkOff+v, 0)
	}

	// Step 1: marked[v] = rand[v] ∧ live[v].
	mp := L.markPairs
	live := L.liveOff
	m.Step(len(mp), func(p *Proc) {
		pr := mp[p.ID()]
		v := pr.src - L.randOff
		if p.Read(live+v) != 0 && p.Read(pr.src) != 0 {
			p.Write(pr.dst, 1)
		} else {
			p.Write(pr.dst, 0)
		}
	})

	// Step 2: fan-out marks.
	for _, round := range L.bcastRounds {
		r := round
		m.Step(len(r), func(p *Proc) {
			pr := r[p.ID()]
			p.Write(pr.dst, p.Read(pr.src))
		})
	}
	// Step 3: edge AND trees.
	for _, round := range L.andRounds {
		r := round
		m.Step(len(r), func(p *Proc) {
			op := r[p.ID()]
			a := p.Read(op.a)
			b := p.Read(op.b)
			p.Write(op.dst, a&b)
		})
	}
	eo := L.edgeOutPairs
	m.Step(len(eo), func(p *Proc) {
		pr := eo[p.ID()]
		p.Write(pr.dst, p.Read(pr.src))
	})
	// Step 4: fan-out unmark flags.
	for _, round := range L.ubcastRounds {
		r := round
		m.Step(len(r), func(p *Proc) {
			pr := r[p.ID()]
			p.Write(pr.dst, p.Read(pr.src))
		})
	}
	// Step 5a: gather.
	gp := L.gatherPairs
	m.Step(len(gp), func(p *Proc) {
		pr := gp[p.ID()]
		p.Write(pr.dst, p.Read(pr.src))
	})
	// Step 5b: vertex OR trees.
	for _, round := range L.orRounds {
		r := round
		m.Step(len(r), func(p *Proc) {
			op := r[p.ID()]
			a := p.Read(op.a)
			b := p.Read(op.b)
			p.Write(op.dst, a|b)
		})
	}
	oo := L.orOutPairs
	m.Step(len(oo), func(p *Proc) {
		pr := oo[p.ID()]
		p.Write(pr.dst, p.Read(pr.src))
	})

	// Step 6: commit survivors.
	n := L.N
	m.Step(n, func(p *Proc) {
		v := p.ID()
		if p.Read(L.liveOff+v) != 0 && p.Read(L.markedOff+v) != 0 && p.Read(L.unmarkOff+v) == 0 {
			p.Write(L.inISOff+v, 1)
			p.Write(L.liveOff+v, 0)
		}
	})

	// Host reads the outcome.
	var added []hypergraph.V
	for v := 0; v < n; v++ {
		if m.Load(L.inISOff+v) != 0 {
			added = append(added, hypergraph.V(v))
		}
	}
	return added
}

func boolCell(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
