package pram

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func runBitonic(t *testing.T, vals []int64) []int64 {
	t.Helper()
	n := len(vals)
	m := NewMachine(n + SortScratch(n))
	m.StoreSlice(0, vals)
	BitonicSort(m, 0, n, n)
	if len(m.Violations()) != 0 {
		t.Fatalf("bitonic sort violated EREW: %v", m.Violations()[0])
	}
	return m.LoadSlice(0, n)
}

func TestBitonicSortSmall(t *testing.T) {
	got := runBitonic(t, []int64{5, 1, 4, 2, 3})
	for i, want := range []int64{1, 2, 3, 4, 5} {
		if got[i] != want {
			t.Fatalf("got %v", got)
		}
	}
}

func TestBitonicSortEdgeCases(t *testing.T) {
	if got := runBitonic(t, []int64{7}); got[0] != 7 {
		t.Fatal("singleton broken")
	}
	got := runBitonic(t, []int64{2, 1})
	if got[0] != 1 || got[1] != 2 {
		t.Fatalf("pair broken: %v", got)
	}
	// Already sorted, reverse sorted, all equal.
	for _, in := range [][]int64{{1, 2, 3, 4}, {4, 3, 2, 1}, {5, 5, 5, 5}} {
		got := runBitonic(t, append([]int64(nil), in...))
		want := append([]int64(nil), in...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("in=%v got=%v", in, got)
			}
		}
	}
}

func TestBitonicSortProperty(t *testing.T) {
	s := rng.New(1)
	check := func(sz uint8) bool {
		n := int(sz)%100 + 1
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(s.Intn(1000) - 500)
		}
		want := append([]int64(nil), vals...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		m := NewMachine(n + SortScratch(n))
		m.StoreSlice(0, vals)
		BitonicSort(m, 0, n, n)
		if len(m.Violations()) != 0 {
			return false
		}
		got := m.LoadSlice(0, n)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBitonicSortDepthPolylog(t *testing.T) {
	n := 1 << 12
	m := NewMachine(n + SortScratch(n))
	s := rng.New(2)
	for i := 0; i < n; i++ {
		m.Store(i, int64(s.Intn(1<<30)))
	}
	BitonicSort(m, 0, n, n)
	// log²(4096) = 144 network steps plus O(1) copies.
	if m.Steps() > 160 {
		t.Fatalf("depth %d exceeds O(log² n)", m.Steps())
	}
	if len(m.Violations()) != 0 {
		t.Fatalf("EREW violation: %v", m.Violations()[0])
	}
}

func BenchmarkBitonicSort4096(b *testing.B) {
	n := 1 << 12
	s := rng.New(3)
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(s.Intn(1 << 30))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewMachine(n + SortScratch(n))
		m.SetAudit(false)
		m.StoreSlice(0, vals)
		BitonicSort(m, 0, n, n)
	}
}
