package permbl

import (
	"testing"
	"testing/quick"

	"repro/internal/greedy"
	"repro/internal/hypergraph"
	"repro/internal/par"
	"repro/internal/rng"
)

func run(t *testing.T, h *hypergraph.Hypergraph, seed uint64) *Result {
	t.Helper()
	res, err := Run(h, nil, rng.New(seed), nil, Options{})
	if err != nil {
		t.Fatalf("permbl failed: %v", err)
	}
	return res
}

func TestPermBLTriangle(t *testing.T) {
	h := hypergraph.NewBuilder(3).AddEdge(0, 1, 2).MustBuild()
	res := run(t, h, 1)
	if err := hypergraph.VerifyMIS(h, res.InIS); err != nil {
		t.Fatal(err)
	}
}

func TestPermBLEdgeless(t *testing.T) {
	h := hypergraph.NewBuilder(5).MustBuild()
	res := run(t, h, 2)
	for _, in := range res.InIS {
		if !in {
			t.Fatal("all isolated vertices must join")
		}
	}
	if res.Rounds != 1 {
		t.Fatalf("edgeless run took %d rounds", res.Rounds)
	}
}

func TestPermBLSingleton(t *testing.T) {
	h := hypergraph.NewBuilder(3).AddEdge(1).MustBuild()
	res := run(t, h, 3)
	if res.InIS[1] {
		t.Fatal("singleton vertex joined")
	}
	if err := hypergraph.VerifyMIS(h, res.InIS); err != nil {
		t.Fatal(err)
	}
}

func TestPermBLAlwaysMIS(t *testing.T) {
	s := rng.New(4)
	for trial := 0; trial < 40; trial++ {
		n := 10 + s.Intn(60)
		h := hypergraph.RandomMixed(s, n, 1+s.Intn(100), 2, 5)
		res := run(t, h, uint64(trial))
		if err := hypergraph.VerifyMIS(h, res.InIS); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// The defining property: the parallel simulation must output exactly the
// sequential greedy MIS on the same permutation.
func TestPermBLMatchesSequentialGreedy(t *testing.T) {
	s := rng.New(5)
	check := func(seed uint16) bool {
		st := s.Child(uint64(seed))
		h := hypergraph.RandomMixed(st, 30, 60, 2, 4)
		// Reconstruct the same permutation permbl derives from the seed.
		runSeed := uint64(seed) + 1000
		res, err := Run(h, nil, rng.New(runSeed), nil, Options{})
		if err != nil {
			return false
		}
		perm := rng.New(runSeed).Perm(h.N())
		order := make([]hypergraph.V, h.N())
		for i, pi := range perm {
			order[i] = hypergraph.V(pi)
		}
		g := greedy.RunOrder(h, nil, order)
		for v := 0; v < h.N(); v++ {
			if res.InIS[v] != g.InIS[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPermBLDependencyDepthLogarithmicOnGraphs(t *testing.T) {
	// For graphs the greedy dependency depth is O(log n) w.h.p.
	s := rng.New(6)
	h := hypergraph.RandomGraph(s, 4000, 12000)
	res := run(t, h, 7)
	if res.Rounds > 60 {
		t.Fatalf("dependency depth %d on a graph with n=4000", res.Rounds)
	}
}

func TestPermBLActiveSubset(t *testing.T) {
	s := rng.New(8)
	full := hypergraph.RandomUniform(s, 40, 60, 3)
	active := make([]bool, 40)
	for v := 0; v < 20; v++ {
		active[v] = true
	}
	sub := hypergraph.Induced(full, func(v hypergraph.V) bool { return active[v] })
	res, err := Run(sub, active, rng.New(9), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v := 20; v < 40; v++ {
		if res.InIS[v] {
			t.Fatalf("inactive vertex %d joined", v)
		}
	}
	if !hypergraph.IsIndependent(sub, res.InIS) {
		t.Fatal("not independent")
	}
}

func TestPermBLRejectsForeignEdge(t *testing.T) {
	h := hypergraph.NewBuilder(3).AddEdge(0, 2).MustBuild()
	active := []bool{true, true, false}
	if _, err := Run(h, active, rng.New(1), nil, Options{}); err == nil {
		t.Fatal("edge with inactive vertex accepted")
	}
}

func TestPermBLDeterministic(t *testing.T) {
	s := rng.New(10)
	h := hypergraph.RandomMixed(s, 80, 120, 2, 4)
	a := run(t, h, 11)
	b := run(t, h, 11)
	for v := range a.InIS {
		if a.InIS[v] != b.InIS[v] {
			t.Fatal("same seed, different MIS")
		}
	}
	if a.Rounds != b.Rounds {
		t.Fatal("same seed, different rounds")
	}
}

func TestPermBLStats(t *testing.T) {
	s := rng.New(12)
	h := hypergraph.RandomUniform(s, 100, 200, 3)
	res, err := Run(h, nil, rng.New(13), nil, Options{CollectStats: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats) != res.Rounds {
		t.Fatalf("stats %d != rounds %d", len(res.Stats), res.Rounds)
	}
	total := 0
	for _, st := range res.Stats {
		if st.Decided <= 0 {
			t.Fatalf("round %d decided nothing", st.Round)
		}
		total += st.Decided
	}
	if total != 100 {
		t.Fatalf("decided %d of 100", total)
	}
}

func TestPermBLCost(t *testing.T) {
	s := rng.New(14)
	h := hypergraph.RandomUniform(s, 60, 90, 3)
	var cost par.Cost
	if _, err := Run(h, nil, rng.New(15), &cost, Options{}); err != nil {
		t.Fatal(err)
	}
	if cost.Work() == 0 || cost.Depth() == 0 {
		t.Fatal("no cost recorded")
	}
}

func BenchmarkPermBL(b *testing.B) {
	s := rng.New(1)
	h := hypergraph.RandomMixed(s, 2000, 4000, 2, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(h, nil, rng.New(uint64(i)), nil, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
