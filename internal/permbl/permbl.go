// Package permbl implements the random-permutation MIS algorithm — the
// "other appealing algorithm" of Beame and Luby the paper's introduction
// discusses: draw a uniform random order π on the vertices and take the
// greedy MIS along π. Beame and Luby conjectured the natural parallel
// simulation works in RNC; Shachnai and Srinivasan (SIAM J. Discrete
// Math. 2004) made partial progress, and the question remains open —
// which makes its *measured* round complexity interesting (experiment
// material and a baseline for SBL).
//
// The output is by definition the sequential greedy MIS on π, computed
// here by parallel dependency resolution: a vertex's greedy decision
// depends only on the decisions of earlier vertices in its edges, so
// each round decides, in parallel, every vertex whose relevant
// predecessors are all decided. The number of rounds is the depth of
// the greedy dependency chain — the quantity the RNC conjecture is
// about (for graphs it is Θ(log n) w.h.p. by Blelloch–Fineman–Shun;
// for hypergraphs the answer is open).
//
// Decision rule being simulated (greedy along π): vertex v joins the IS
// unless some edge e ∋ v has every other vertex before v in π and all
// of them in the IS.
//
// The resolution loop runs on the shared solver runtime: context
// checks, the round budget and per-round telemetry go through
// solver.Loop, and the order/state arrays are drawn from a
// solver.Workspace.
package permbl

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/hypergraph"
	"repro/internal/mathx"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/solver"
)

// Options configures a run.
type Options struct {
	// Ctx, if non-nil, is checked at the top of every resolution round;
	// the run returns ctx.Err() as soon as the context is done.
	Ctx context.Context

	// Par bounds the worker parallelism of the resolution rounds (zero
	// value = whole machine). Output is identical for any engine.
	Par par.Engine

	// MaxRounds aborts when exceeded (0 = default n+1; the dependency
	// depth can never exceed n).
	MaxRounds int
	// CollectStats records per-round decided counts.
	CollectStats bool

	// Ws, if non-nil, supplies the run's reusable buffers (nil = a
	// fresh workspace). Must not be shared with a concurrent run.
	Ws *solver.Workspace

	// Observer, if non-nil, receives one telemetry record per round.
	Observer solver.RoundObserver
}

// RoundStat records one resolution round.
type RoundStat struct {
	Round   int
	Pending int // undecided vertices entering the round
	Decided int // vertices decided this round
}

// Result of a run.
type Result struct {
	InIS   []bool
	Rounds int // dependency-resolution rounds (the parallel depth)
	Stats  []RoundStat
}

// ErrRoundLimit is returned when MaxRounds is exceeded (cannot happen
// with the default limit: every round decides ≥ 1 vertex).
var ErrRoundLimit = errors.New("permbl: round limit exceeded")

func init() {
	solver.Register(solver.Descriptor{
		Algo: solver.PermBL,
		Name: "permbl",
		Solve: func(req solver.Request) (solver.Outcome, error) {
			r, err := Run(req.H, nil, req.Stream, req.Cost, Options{
				Ctx: req.Ctx, Par: req.Par, Ws: req.Ws, Observer: req.Observer,
			})
			if err != nil {
				return solver.Outcome{}, err
			}
			return solver.Outcome{InIS: r.InIS, Rounds: r.Rounds}, nil
		},
	})
}

// Run executes the permutation algorithm on the sub-hypergraph induced
// by active (nil = all). Edges must consist of active vertices only.
func Run(h *hypergraph.Hypergraph, active []bool, s *rng.Stream, cost *par.Cost, opts Options) (*Result, error) {
	n := h.N()
	if opts.MaxRounds == 0 {
		opts.MaxRounds = n + 1
	}
	ws := opts.Ws
	if ws == nil {
		ws = solver.NewWorkspace()
	}
	ws.Reset(n, opts.Par)
	act := func(v hypergraph.V) bool { return active == nil || active[v] }
	for _, e := range h.Edges() {
		for _, v := range e {
			if !act(v) {
				return nil, fmt.Errorf("permbl: edge %v contains inactive vertex %d", e, v)
			}
		}
	}

	// Random priorities: pos[v] = rank of v in π among active vertices.
	candidates := ws.Verts(0, n)[:0]
	for v := 0; v < n; v++ {
		if act(hypergraph.V(v)) {
			candidates = append(candidates, hypergraph.V(v))
		}
	}
	perm := ws.Ints(1, len(candidates))
	for i := range perm {
		perm[i] = i
	}
	s.Shuffle(perm)
	pos := ws.Ints(0, n)
	for i := range pos {
		pos[i] = -1
	}
	for i, pi := range perm {
		pos[candidates[pi]] = i
	}
	par.ChargeAux(cost, int64(len(candidates)), int64(mathx.ILog2(len(candidates)+1)))

	const (
		undecided = 0
		inSet     = 1
		outSet    = 2
	)
	state := ws.Int8s(0, n)
	inc := h.Incidence()
	edges := h.Edges()

	res := &Result{InIS: make([]bool, n)}
	eng := opts.Par
	next := ws.Int8s(1, n) // per-round decisions, reused across rounds
	pending := len(candidates)
	lp := &solver.Loop{
		Ctx:       opts.Ctx,
		Cost:      cost,
		MaxRounds: opts.MaxRounds,
		LimitErr:  ErrRoundLimit,
		Unit:      "round",
		Observer:  opts.Observer,
	}
	for pending > 0 {
		if err := lp.Begin(pending, h.M(), h.Dim()); err != nil {
			return nil, err
		}
		round := lp.Rounds()
		st := RoundStat{Round: round, Pending: pending}

		// For each undecided vertex, try to resolve its greedy decision
		// from the already-decided prefix-predecessors. next[v]:
		//  +1 join, -1 blocked, 0 still unknown.
		eng.For(cost, n, func(vi int) {
			next[vi] = 0
			v := hypergraph.V(vi)
			if !act(v) || state[vi] != undecided {
				return
			}
			decision := int8(1) // join unless blocked or unknown
			for _, ei := range inc[vi] {
				e := edges[ei]
				// Classify this edge's predecessors of v.
				allPredIn := true  // every other vertex precedes v and is in the IS
				knownSafe := false // some predecessor is decided out, or some other vertex follows v
				unknown := false   // some predecessor still undecided
				for _, u := range e {
					if u == v {
						continue
					}
					if pos[u] > pos[v] {
						knownSafe = true
						continue
					}
					switch state[u] {
					case inSet:
						// contributes to allPredIn
					case outSet:
						knownSafe = true
						allPredIn = false
					default:
						unknown = true
						allPredIn = false
					}
				}
				if len(e) == 1 {
					// Singleton edge: v is blocked outright.
					decision = -1
					break
				}
				if knownSafe {
					continue // this edge can never block v
				}
				if allPredIn {
					decision = -1 // greedy would reject v here
					break
				}
				if unknown {
					decision = 0 // must wait for predecessors
				}
			}
			next[vi] = decision
		})

		decided := 0
		for v := 0; v < n; v++ {
			if state[v] != undecided || !act(hypergraph.V(v)) {
				continue
			}
			switch next[v] {
			case 1:
				state[v] = inSet
				res.InIS[v] = true
				decided++
			case -1:
				state[v] = outSet
				decided++
			}
		}
		par.ChargeStep(cost, n)
		pending -= decided
		st.Decided = decided
		if opts.CollectStats {
			res.Stats = append(res.Stats, st)
		}
		lp.End(decided)
		if decided == 0 && pending > 0 {
			return nil, fmt.Errorf("permbl: deadlock with %d pending (impossible: the minimum-position pending vertex is always decidable)", pending)
		}
	}
	res.Rounds = lp.Rounds()
	return res, nil
}
