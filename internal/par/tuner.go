package par

import (
	"sync/atomic"
	"time"
)

// Shard-grain autotuning. The grain — the minimum number of
// elementwise operations each worker's chunk must amortize — decides
// when a pass fans out and how many workers it gets. A static grain is
// wrong in both directions: cheap bitset passes need huge chunks
// before a handoff pays for itself, while expensive per-edge passes
// (2^d subset enumerations) are worth splitting at a few hundred
// items. The Tuner learns ns/op per pass class from the dispatch
// timings the engine already takes, and converts a target chunk
// duration into a grain. A second input — per-round wall times fed by
// the solver's RoundObserver plumbing — collapses dispatch to serial
// when rounds get so short that any fan-out is overhead (the endgame
// of a solve, when the residual instance is tiny).
//
// The tuner adjusts only worker counts, never block partitions or
// results: NumShards/ShardsFor outputs change, but every caller sizes
// its per-shard accumulators from the same call it passes to
// ForShards, and the (n, shards) partition stays a pure function. The
// determinism property tests pin this.

const (
	// defaultGrain is the grain used with no tuner or before the first
	// sample — the historical static constant.
	defaultGrain = 2048
	// minGrain bounds how small a learned grain may get; below this,
	// per-block closure overhead dominates even for expensive items.
	minGrain = 256
	// maxGrain is the collapse-to-serial grain: larger than any
	// realistic pass, so workersFor yields 1.
	maxGrain = 1 << 21

	// targetChunkNs is how much work a handoff should buy: with ~1µs
	// to wake a parked worker, 25µs chunks keep dispatch overhead in
	// the few-percent range.
	targetChunkNs = 25_000
	// tunerFix is the fixed-point scale for the stored ns/op EWMAs
	// (sub-nanosecond per-op costs are the common case).
	tunerFix = 1024
	// measureFloor is the minimum total ops before a dispatch timing
	// is fed to the tuner; timing tinier passes measures the clock.
	measureFloor = 1 << 12

	// shortRoundNs classifies a solver round as "short": a round whose
	// whole wall time is under this is pure overhead territory.
	shortRoundNs = 100_000
	// shortRoundStreak is how many consecutive short rounds trigger
	// the collapse to serial. One long round resets the streak.
	shortRoundStreak = 3
)

// Pass classes bucket per-item work so cheap elementwise passes and
// expensive per-edge passes learn separate ns/op estimates.
const (
	classElem  = iota // perItem == 1: bitset words, flag scans
	classMid          // perItem in [2, 64): short adjacency walks
	classHeavy        // perItem >= 64: subset enumeration, heavy edges
	numClasses
)

func classOf(perItem int) int {
	switch {
	case perItem <= 1:
		return classElem
	case perItem < 64:
		return classMid
	default:
		return classHeavy
	}
}

// Tuner adapts the shard grain of the engines it is attached to
// (Engine.WithTuner). Create one per solve: grain estimates are
// per-(algorithm, run), and round feedback only makes sense within one
// round loop. The zero value is NOT meaningful; use NewTuner. All
// methods are safe for concurrent use and nil-safe; updates are
// intentionally lossy under contention (the tuner is a heuristic,
// never a correctness input).
type Tuner struct {
	// nsPerOp[class] is an EWMA of serial ns/op × tunerFix; 0 means no
	// sample yet.
	nsPerOp [numClasses]atomic.Int64
	// short is the current consecutive-short-round streak.
	short   atomic.Int32
	samples atomic.Int64
	rounds  atomic.Int64
}

// NewTuner returns a tuner with no samples: engines behave exactly as
// with the static default grain until measurements arrive.
func NewTuner() *Tuner { return &Tuner{} }

// grainFor returns the current grain for a pass class.
func (t *Tuner) grainFor(class int) int {
	if t == nil {
		return defaultGrain
	}
	if t.short.Load() >= shortRoundStreak {
		return maxGrain
	}
	ns := t.nsPerOp[class].Load()
	if ns == 0 {
		return defaultGrain
	}
	g := int(int64(targetChunkNs) * tunerFix / ns)
	if g < minGrain {
		return minGrain
	}
	if g > maxGrain {
		return maxGrain
	}
	return g
}

// observe folds one timed dispatch into the class EWMA: ops operations
// took elapsed wall nanoseconds spread over w workers, so serial ns/op
// is estimated as elapsed·w/ops.
func (t *Tuner) observe(class int, ops, elapsedNs int64, w int) {
	if t == nil || ops <= 0 || elapsedNs <= 0 {
		return
	}
	sample := elapsedNs * int64(w) * tunerFix / ops
	if sample < 1 {
		sample = 1
	}
	old := t.nsPerOp[class].Load()
	if old == 0 {
		t.nsPerOp[class].Store(sample)
	} else {
		t.nsPerOp[class].Store(old + (sample-old)/8)
	}
	t.samples.Add(1)
}

// ObserveRound feeds one completed solver round's wall time. Wire it
// into the solve's RoundObserver chain; shortRoundStreak consecutive
// rounds under shortRoundNs collapse subsequent dispatch to serial,
// and any long round restores fan-out.
func (t *Tuner) ObserveRound(d time.Duration) {
	if t == nil {
		return
	}
	t.rounds.Add(1)
	if d > 0 && d < shortRoundNs*time.Nanosecond {
		if s := t.short.Add(1); s > 1<<20 {
			// Clamp a pathological streak so it can never wrap.
			t.short.Store(shortRoundStreak)
		}
	} else {
		t.short.Store(0)
	}
}

// Collapsed reports whether the tuner is currently forcing serial
// dispatch because of a short-round streak.
func (t *Tuner) Collapsed() bool {
	return t != nil && t.short.Load() >= shortRoundStreak
}

// Samples returns how many dispatch timings have been folded in.
func (t *Tuner) Samples() int64 {
	if t == nil {
		return 0
	}
	return t.samples.Load()
}

// Rounds returns how many round timings have been observed.
func (t *Tuner) Rounds() int64 {
	if t == nil {
		return 0
	}
	return t.rounds.Load()
}
