package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolDispatchCoversAllWorkers: every worker index in [0, w) runs
// exactly once per dispatch, for degrees above and below the pool size.
func TestPoolDispatchCoversAllWorkers(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for _, w := range []int{1, 2, 4, 7, 16} {
		var hits [16]atomic.Int32
		p.run(w, func(g int) { hits[g].Add(1) })
		for g := 0; g < w; g++ {
			if got := hits[g].Load(); got != 1 {
				t.Fatalf("w=%d: worker %d ran %d times", w, g, got)
			}
		}
		for g := w; g < len(hits); g++ {
			if hits[g].Load() != 0 {
				t.Fatalf("w=%d: phantom worker %d ran", w, g)
			}
		}
	}
}

// TestPoolEngineDeterminism: primitives on a pooled engine must return
// bit-identical results to the inline engine at any degree.
func TestPoolEngineDeterminism(t *testing.T) {
	p := NewPool(8)
	defer p.Close()
	const n = 100_000
	in := make([]int, n)
	for i := range in {
		in[i] = (i*2654435761 + 12345) % 1000
	}
	sum := func(a, b int) int { return a + b }
	ref := ReduceOn(Engine{P: 1}, nil, in, 0, sum)
	refScan, refTotal := ExclusiveScanOn(Engine{P: 1}, nil, in)
	refPack := PackIndicesOn(Engine{P: 1}, nil, n, func(i int) bool { return in[i]%7 == 0 })
	for _, deg := range []int{1, 2, 3, 8, 64} {
		e := p.Engine(deg).WithTuner(NewTuner())
		if got := ReduceOn(e, nil, in, 0, sum); got != ref {
			t.Fatalf("deg=%d: reduce %d want %d", deg, got, ref)
		}
		scan, total := ExclusiveScanOn(e, nil, in)
		if total != refTotal {
			t.Fatalf("deg=%d: scan total %d want %d", deg, total, refTotal)
		}
		for i := range scan {
			if scan[i] != refScan[i] {
				t.Fatalf("deg=%d: scan[%d]=%d want %d", deg, i, scan[i], refScan[i])
			}
		}
		pack := PackIndicesOn(e, nil, n, func(i int) bool { return in[i]%7 == 0 })
		if len(pack) != len(refPack) {
			t.Fatalf("deg=%d: pack len %d want %d", deg, len(pack), len(refPack))
		}
		for i := range pack {
			if pack[i] != refPack[i] {
				t.Fatalf("deg=%d: pack[%d]=%d want %d", deg, i, pack[i], refPack[i])
			}
		}
	}
}

// TestPoolSharedByConcurrentEngines is the -race stress test: many
// engines of mixed degree hammer one pool concurrently; every result
// must still be exact.
func TestPoolSharedByConcurrentEngines(t *testing.T) {
	p := NewPool(runtime.GOMAXPROCS(0))
	defer p.Close()
	const n = 20_000
	in := make([]int, n)
	want := 0
	for i := range in {
		in[i] = i % 97
		want += in[i]
	}
	var wg sync.WaitGroup
	errs := make(chan int, 64)
	for i := 0; i < 16; i++ {
		deg := 1 + i%8
		wg.Add(1)
		go func(deg int) {
			defer wg.Done()
			e := p.Engine(deg).WithTuner(NewTuner())
			for iter := 0; iter < 30; iter++ {
				if got := ReduceOn(e, nil, in, 0, func(a, b int) int { return a + b }); got != want {
					errs <- got
					return
				}
				if got := e.Count(nil, n, func(i int) bool { return in[i] == 0 }); got != (n+96)/97 {
					errs <- got
					return
				}
			}
		}(deg)
	}
	wg.Wait()
	close(errs)
	for got := range errs {
		t.Fatalf("concurrent engine returned %d", got)
	}
}

// TestPoolCloseInlineFallback: dispatch after Close must still cover
// every worker index (inline on the caller) rather than hang or drop.
func TestPoolCloseInlineFallback(t *testing.T) {
	p := NewPool(2)
	p.Close()
	p.Close() // idempotent
	var hits [4]atomic.Int32
	p.run(4, func(g int) { hits[g].Add(1) })
	for g := range hits {
		if hits[g].Load() != 1 {
			t.Fatalf("post-close worker %d ran %d times", g, hits[g].Load())
		}
	}
	if st := p.Stats(); st.Handoffs != 0 || st.Inline != 1 {
		t.Fatalf("post-close stats: %+v", st)
	}
}

// TestPoolNoGoroutineLeak: Close returns the process to its goroutine
// baseline (goleak-style manual check with retries for runtime lag).
func TestPoolNoGoroutineLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	p := NewPool(8)
	e := p.Engine(8)
	e.For(nil, 1<<16, func(int) {})
	if runtime.NumGoroutine() <= base {
		t.Fatalf("pool started no goroutines (base %d)", base)
	}
	p.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines %d > baseline %d after Close", runtime.NumGoroutine(), base)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestPoolStatsCounters: handoffs accrue on pooled dispatch, inline on
// degree-1-effective passes through a closed or saturated pool.
func TestPoolStatsCounters(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	if st := p.Stats(); st.Workers != 4 || st.Busy != 0 {
		t.Fatalf("fresh stats: %+v", st)
	}
	for i := 0; i < 50; i++ {
		p.run(4, func(g int) { time.Sleep(10 * time.Microsecond) })
	}
	st := p.Stats()
	if st.Handoffs+st.Inline == 0 {
		t.Fatalf("no dispatch recorded: %+v", st)
	}
	if st.Busy != 0 {
		t.Fatalf("busy gauge stuck at %d", st.Busy)
	}
}

// TestTunerGrainFromSamples: the grain tracks learned ns/op — cheap ops
// push it up from the default, expensive ops pull it down — and stays
// clamped.
func TestTunerGrainFromSamples(t *testing.T) {
	tu := NewTuner()
	if g := tu.grainFor(classElem); g != defaultGrain {
		t.Fatalf("no-sample grain %d want %d", g, defaultGrain)
	}
	// ~0.5ns/op elementwise work: grain should rise well above default.
	for i := 0; i < 20; i++ {
		tu.observe(classElem, 1_000_000, 500_000, 1)
	}
	if g := tu.grainFor(classElem); g <= defaultGrain {
		t.Fatalf("cheap-op grain %d, want > %d", g, defaultGrain)
	}
	// ~1µs/op heavy work in a different class: grain collapses to min.
	for i := 0; i < 20; i++ {
		tu.observe(classHeavy, 10_000, 10_000_000, 1)
	}
	if g := tu.grainFor(classHeavy); g != minGrain {
		t.Fatalf("heavy-op grain %d want %d", g, minGrain)
	}
	// Classes are independent.
	if g := tu.grainFor(classElem); g <= defaultGrain {
		t.Fatalf("classElem grain disturbed: %d", g)
	}
	// nil tuner is always the default.
	var nilT *Tuner
	if g := nilT.grainFor(classMid); g != defaultGrain {
		t.Fatalf("nil tuner grain %d", g)
	}
}

// TestTunerShortRoundCollapse: a streak of short rounds collapses
// dispatch to serial; one long round restores it.
func TestTunerShortRoundCollapse(t *testing.T) {
	tu := NewTuner()
	e := Engine{P: 8}.WithTuner(tu)
	n := 1 << 20
	if w := e.workersFor(n, 1); w <= 1 {
		t.Fatalf("pre-collapse workers %d", w)
	}
	for i := 0; i < shortRoundStreak; i++ {
		tu.ObserveRound(10 * time.Microsecond)
	}
	if !tu.Collapsed() {
		t.Fatal("not collapsed after short-round streak")
	}
	if w := e.workersFor(n, 1); w != 1 {
		t.Fatalf("collapsed workers %d want 1", w)
	}
	tu.ObserveRound(50 * time.Millisecond)
	if tu.Collapsed() {
		t.Fatal("long round did not reset the streak")
	}
	if w := e.workersFor(n, 1); w <= 1 {
		t.Fatalf("post-reset workers %d", w)
	}
	if tu.Rounds() != shortRoundStreak+1 {
		t.Fatalf("rounds %d", tu.Rounds())
	}
}

// TestClassOf pins the pass-class bucketing.
func TestClassOf(t *testing.T) {
	cases := map[int]int{0: classElem, 1: classElem, 2: classMid, 63: classMid, 64: classHeavy, 4096: classHeavy}
	for perItem, want := range cases {
		if got := classOf(perItem); got != want {
			t.Fatalf("classOf(%d)=%d want %d", perItem, got, want)
		}
	}
}
