package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a set of long-lived worker goroutines that engines dispatch
// parallel passes onto. Solvers run thousands of short sharded passes
// per solve; spawning goroutines per pass pays scheduler wakeup and
// stack setup every time, while a pool parks its workers on a task
// channel once and reuses them for every round. One Pool can back any
// number of Engines concurrently (the service shares one across jobs).
//
// Handing work to the pool never blocks: if no worker is parked when a
// pass is dispatched, the dispatching goroutine runs the remaining
// blocks itself. That makes dispatch deadlock-free by construction —
// including against a concurrent Close — and means an undersized pool
// degrades to inline execution rather than queueing.
//
// The pool is pure scheduling: which goroutine runs a block never
// affects the block partition or any result (see the package comment's
// determinism contract).
type Pool struct {
	workers int
	tasks   chan *task
	stop    chan struct{}
	wg      sync.WaitGroup
	once    sync.Once

	busy     atomic.Int64
	handoffs atomic.Int64
	inline   atomic.Int64
}

// task is one dispatched parallel pass. Worker indices in [1, w) are
// claimed from next by whoever is running — parked pool workers that
// received the task, and the dispatcher itself once its own block is
// done — so a slow wakeup never stalls the pass.
type task struct {
	body func(g int)
	w    int
	next atomic.Int64
	done sync.WaitGroup
}

// run claims unclaimed worker indices until none remain.
func (t *task) run() {
	for {
		g := int(t.next.Add(1))
		if g >= t.w {
			return
		}
		t.body(g)
		t.done.Done()
	}
}

// NewPool starts a pool of the given number of worker goroutines.
// workers <= 0 means runtime.GOMAXPROCS. Callers own the pool's
// lifetime and must Close it to release the workers.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		workers: workers,
		tasks:   make(chan *task),
		stop:    make(chan struct{}),
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// Engine returns an engine of parallelism degree deg whose primitives
// dispatch onto the pool. deg <= 0 means GOMAXPROCS, as in Engine{P: deg}.
func (p *Pool) Engine(deg int) Engine { return Engine{P: deg, pool: p} }

// Workers returns the number of worker goroutines the pool was started
// with.
func (p *Pool) Workers() int { return p.workers }

// Close releases the worker goroutines and waits for them to exit.
// Workers finish the pass they are on; passes dispatched after Close
// run inline on their caller. Close is idempotent.
func (p *Pool) Close() {
	p.once.Do(func() { close(p.stop) })
	p.wg.Wait()
}

// PoolStats is a snapshot of pool activity counters.
type PoolStats struct {
	Workers  int   // pool size
	Busy     int64 // workers currently running a pass (gauge)
	Handoffs int64 // blocks handed to parked workers (cumulative)
	Inline   int64 // multi-worker passes that found no parked worker (cumulative)
}

// Stats returns a snapshot of the pool's activity counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Workers:  p.workers,
		Busy:     p.busy.Load(),
		Handoffs: p.handoffs.Load(),
		Inline:   p.inline.Load(),
	}
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		select {
		case t := <-p.tasks:
			p.busy.Add(1)
			t.run()
			p.busy.Add(-1)
		case <-p.stop:
			return
		}
	}
}

// run executes body(g) for every g in [0, w), with the calling
// goroutine acting as worker 0. It offers the task to up to w-1 parked
// workers without blocking, runs its own block, then claims whatever
// blocks no worker picked up, and finally waits for the claimed blocks
// to finish.
func (p *Pool) run(w int, body func(g int)) {
	t := &task{body: body, w: w}
	t.done.Add(w - 1)
	handed := 0
	for i := 1; i < w; i++ {
		if !p.trySubmit(t) {
			break
		}
		handed++
	}
	if handed > 0 {
		p.handoffs.Add(int64(handed))
	} else {
		p.inline.Add(1)
	}
	body(0)
	t.run()
	t.done.Wait()
}

// trySubmit offers t to a parked worker; it never blocks, and always
// fails once the pool is closed.
func (p *Pool) trySubmit(t *task) bool {
	select {
	case <-p.stop:
		return false
	default:
	}
	select {
	case p.tasks <- t:
		return true
	default:
		return false
	}
}
