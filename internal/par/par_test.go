package par

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 7, defaultGrain - 1, defaultGrain, defaultGrain + 1, 10 * defaultGrain} {
		hit := make([]bool, n)
		For(nil, n, func(i int) { hit[i] = true })
		for i, h := range hit {
			if !h {
				t.Fatalf("n=%d: index %d not visited", n, i)
			}
		}
	}
}

func TestForBlockedCoversDisjointly(t *testing.T) {
	for _, n := range []int{0, 1, 100, 3 * defaultGrain} {
		count := make([]int, n)
		ForBlocked(nil, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				count[i]++
			}
		})
		for i, c := range count {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestMap(t *testing.T) {
	in := make([]int, 5000)
	for i := range in {
		in[i] = i
	}
	out := Map(nil, in, func(x int) int { return x * 2 })
	for i, v := range out {
		if v != 2*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestReduceMatchesSequential(t *testing.T) {
	s := rng.New(1)
	check := func(seed uint32, sz uint16) bool {
		n := int(sz % 5000)
		in := make([]int, n)
		for i := range in {
			in[i] = s.Intn(1000) - 500
		}
		want := 0
		for _, v := range in {
			want += v
		}
		return SumInt(nil, in) == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReduceEmpty(t *testing.T) {
	if got := SumInt(nil, nil); got != 0 {
		t.Fatalf("sum of empty = %d", got)
	}
	if got := MaxInt(nil, nil, -7); got != -7 {
		t.Fatalf("max of empty = %d, want identity -7", got)
	}
}

func TestMaxInt(t *testing.T) {
	in := make([]int, 10000)
	for i := range in {
		in[i] = i % 997
	}
	in[7777] = 100000
	if got := MaxInt(nil, in, 0); got != 100000 {
		t.Fatalf("MaxInt = %d", got)
	}
}

func TestCount(t *testing.T) {
	n := 12345
	got := Count(nil, n, func(i int) bool { return i%3 == 0 })
	want := (n + 2) / 3
	if got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}
}

func TestExclusiveScanMatchesSequential(t *testing.T) {
	s := rng.New(2)
	for _, n := range []int{0, 1, 2, 17, defaultGrain, defaultGrain*4 + 3} {
		in := make([]int, n)
		for i := range in {
			in[i] = s.Intn(9) - 4
		}
		out, total := ExclusiveScan(nil, in)
		run := 0
		for i := 0; i < n; i++ {
			if out[i] != run {
				t.Fatalf("n=%d: out[%d]=%d want %d", n, i, out[i], run)
			}
			run += in[i]
		}
		if total != run {
			t.Fatalf("n=%d: total=%d want %d", n, total, run)
		}
	}
}

func TestPackPreservesOrder(t *testing.T) {
	n := 3*defaultGrain + 11
	in := make([]int, n)
	for i := range in {
		in[i] = i
	}
	out := Pack(nil, in, func(i int) bool { return i%5 == 2 })
	prev := -1
	for _, v := range out {
		if v%5 != 2 {
			t.Fatalf("kept wrong element %d", v)
		}
		if v <= prev {
			t.Fatalf("order not preserved: %d after %d", v, prev)
		}
		prev = v
	}
	want := 0
	for i := 0; i < n; i++ {
		if i%5 == 2 {
			want++
		}
	}
	if len(out) != want {
		t.Fatalf("len = %d want %d", len(out), want)
	}
}

func TestPackIndices(t *testing.T) {
	got := PackIndices(nil, 10, func(i int) bool { return i%2 == 0 })
	want := []int{0, 2, 4, 6, 8}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestPackAllNone(t *testing.T) {
	in := []int{1, 2, 3}
	if got := Pack(nil, in, func(int) bool { return true }); len(got) != 3 {
		t.Fatalf("keep-all gave %v", got)
	}
	if got := Pack(nil, in, func(int) bool { return false }); len(got) != 0 {
		t.Fatalf("keep-none gave %v", got)
	}
}

func TestFill(t *testing.T) {
	dst := make([]int, 5000)
	Fill(nil, dst, 42)
	for i, v := range dst {
		if v != 42 {
			t.Fatalf("dst[%d]=%d", i, v)
		}
	}
}

func TestAndOr(t *testing.T) {
	if !And(nil, 100, func(i int) bool { return i < 100 }) {
		t.Fatal("And should be true")
	}
	if And(nil, 100, func(i int) bool { return i != 50 }) {
		t.Fatal("And should be false")
	}
	if !Or(nil, 100, func(i int) bool { return i == 99 }) {
		t.Fatal("Or should be true")
	}
	if Or(nil, 100, func(i int) bool { return false }) {
		t.Fatal("Or should be false")
	}
	if And(nil, 0, func(int) bool { return false }) != true {
		t.Fatal("vacuous And should be true")
	}
	if Or(nil, 0, func(int) bool { return true }) != false {
		t.Fatal("vacuous Or should be false")
	}
}

func TestCostAccounting(t *testing.T) {
	var c Cost
	For(&c, 1000, func(int) {})
	if c.Work() != 1000 || c.Depth() != 1 || c.Steps() != 1 {
		t.Fatalf("For cost: work=%d depth=%d steps=%d", c.Work(), c.Depth(), c.Steps())
	}
	c.Reset()
	in := make([]int, 1024)
	SumInt(&c, in)
	if c.Work() != 1024 || c.Depth() != 10 {
		t.Fatalf("Reduce cost: work=%d depth=%d", c.Work(), c.Depth())
	}
	c.Reset()
	ExclusiveScan(&c, in)
	if c.Work() != 2048 || c.Depth() != 20 {
		t.Fatalf("Scan cost: work=%d depth=%d", c.Work(), c.Depth())
	}
}

func TestCostNilSafe(t *testing.T) {
	var c *Cost
	c.Charge(1, 1)
	c.Add(nil)
	c.Reset()
	if c.Work() != 0 || c.Depth() != 0 || c.Steps() != 0 {
		t.Fatal("nil Cost should report zeros")
	}
}

func TestCostAdd(t *testing.T) {
	var a, b Cost
	a.Charge(10, 2)
	b.Charge(5, 3)
	a.Add(&b)
	if a.Work() != 15 || a.Depth() != 5 || a.Steps() != 2 {
		t.Fatalf("Add: work=%d depth=%d steps=%d", a.Work(), a.Depth(), a.Steps())
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int]int64{0: 0, 1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := log2Ceil(n); got != want {
			t.Fatalf("log2Ceil(%d) = %d want %d", n, got, want)
		}
	}
}

func BenchmarkScan1M(b *testing.B) {
	in := make([]int, 1<<20)
	for i := range in {
		in[i] = i & 7
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExclusiveScan(nil, in)
	}
}

func BenchmarkReduce1M(b *testing.B) {
	in := make([]int, 1<<20)
	for i := range in {
		in[i] = i & 7
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SumInt(nil, in)
	}
}

func TestForShardsCoversDisjointly(t *testing.T) {
	for _, n := range []int{0, 1, 7, defaultGrain, 10 * defaultGrain} {
		seen := make([]int32, n)
		shards := NumShards(n)
		hit := make([]bool, shards)
		ForShards(nil, n, shards, func(s, lo, hi int) {
			if s < 0 || s >= shards {
				t.Errorf("shard index %d out of [0,%d)", s, shards)
			}
			hit[s] = true
			for i := lo; i < hi; i++ {
				seen[i]++
			}
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d covered %d times", n, i, c)
			}
		}
		if n > 0 && !hit[0] {
			t.Fatalf("n=%d: shard 0 never ran", n)
		}
	}
}

func TestForShardsRespectsShardBound(t *testing.T) {
	// The explicit shards parameter must bound the indices even when the
	// worker count at run time exceeds the caller's sizing (the
	// GOMAXPROCS-raced case the parameter exists for).
	old := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(old)
	n := 10 * defaultGrain
	const shards = 2
	seen := make([]int32, n)
	ForShards(nil, n, shards, func(s, lo, hi int) {
		if s < 0 || s >= shards {
			t.Errorf("shard index %d out of [0,%d)", s, shards)
		}
		for i := lo; i < hi; i++ {
			seen[i]++
		}
	})
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d covered %d times", i, c)
		}
	}
}

// --- Engine tests -----------------------------------------------------

func TestEngineProcsBound(t *testing.T) {
	if got := (Engine{P: 3}).Procs(); got != 3 {
		t.Fatalf("Procs=%d want 3", got)
	}
	if got := (Engine{}).Procs(); got < 1 {
		t.Fatalf("default Procs=%d", got)
	}
	if got := (Engine{P: -2}).Procs(); got < 1 {
		t.Fatalf("negative P Procs=%d", got)
	}
}

// TestEngineDeterminism: every primitive must return bit-identical
// results for any worker bound.
func TestEngineDeterminism(t *testing.T) {
	const n = 100_000
	in := make([]int, n)
	for i := range in {
		in[i] = (i*2654435761 + 12345) % 1000
	}
	ref := ReduceOn(Engine{P: 1}, nil, in, 0, func(a, b int) int { return a + b })
	refScan, refTotal := ExclusiveScanOn(Engine{P: 1}, nil, in)
	refPack := PackIndicesOn(Engine{P: 1}, nil, n, func(i int) bool { return in[i]%7 == 0 })
	for _, p := range []int{2, 3, 8, 64} {
		e := Engine{P: p}
		if got := ReduceOn(e, nil, in, 0, func(a, b int) int { return a + b }); got != ref {
			t.Fatalf("P=%d: reduce %d want %d", p, got, ref)
		}
		scan, total := ExclusiveScanOn(e, nil, in)
		if total != refTotal {
			t.Fatalf("P=%d: scan total %d want %d", p, total, refTotal)
		}
		for i := range scan {
			if scan[i] != refScan[i] {
				t.Fatalf("P=%d: scan[%d]=%d want %d", p, i, scan[i], refScan[i])
			}
		}
		pack := PackIndicesOn(e, nil, n, func(i int) bool { return in[i]%7 == 0 })
		if len(pack) != len(refPack) {
			t.Fatalf("P=%d: pack len %d want %d", p, len(pack), len(refPack))
		}
		for i := range pack {
			if pack[i] != refPack[i] {
				t.Fatalf("P=%d: pack[%d]=%d want %d", p, i, pack[i], refPack[i])
			}
		}
		if got := e.Count(nil, n, func(i int) bool { return in[i] < 500 }); got != (Engine{P: 1}).Count(nil, n, func(i int) bool { return in[i] < 500 }) {
			t.Fatalf("P=%d: count mismatch", p)
		}
	}
}

// TestEngineP1Inline: a degree-1 engine must never spawn goroutines —
// bodies observe a single contiguous block.
func TestEngineP1Inline(t *testing.T) {
	e := Engine{P: 1}
	calls := 0
	e.ForBlocked(nil, 1_000_000, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 1_000_000 {
			t.Fatalf("P=1 block [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("P=1 invoked %d blocks", calls)
	}
	shards := e.NumShards(1 << 20)
	if shards != 1 {
		t.Fatalf("P=1 NumShards=%d", shards)
	}
}

// TestShardsForWorkHint: expensive items shard even when n is small.
func TestShardsForWorkHint(t *testing.T) {
	e := Engine{P: 8}
	if got := e.NumShards(100); got != 1 {
		t.Fatalf("NumShards(100)=%d want 1 (below defaultGrain)", got)
	}
	if got := e.ShardsFor(100, 1<<12); got != 8 {
		t.Fatalf("ShardsFor(100, 4096)=%d want 8", got)
	}
	// ForShardsWork must respect the shard bound and cover the range.
	var mu sync.Mutex
	seen := make([]bool, 100)
	maxShard := 0
	e.ForShardsWork(nil, 100, 1<<12, 8, func(s, lo, hi int) {
		mu.Lock()
		defer mu.Unlock()
		if s > maxShard {
			maxShard = s
		}
		for i := lo; i < hi; i++ {
			if seen[i] {
				t.Errorf("index %d covered twice", i)
			}
			seen[i] = true
		}
	})
	if maxShard >= 8 {
		t.Fatalf("shard index %d out of bound", maxShard)
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("index %d not covered", i)
		}
	}
}
