// Package par implements the data-parallel primitives the paper's PRAM
// algorithms are expressed in: parallel for, map, reduce, prefix sums
// (scan), and stream compaction (pack/filter).
//
// Each primitive has two roles:
//
//  1. It executes on real goroutines, chunked over a worker pool, so
//     the solvers get genuine multicore speedups.
//  2. It charges an idealized EREW PRAM cost to an optional Cost
//     accumulator: Work is the total number of primitive operations and
//     Depth is the parallel time assuming one processor per element
//     (O(1) for elementwise steps, O(log n) for reductions and scans).
//
// The cost model is the standard work-depth model; combined with Brent's
// theorem it reproduces the "time T on poly(m,n) processors" statements
// in the paper. Goroutine scheduling never affects results: primitives
// are deterministic functions of their inputs, and every result is
// bit-identical for any worker count (reductions over integers are
// exact, prefix sums are exact, and shard boundaries only partition
// work, never reorder it).
//
// # Engines
//
// An Engine bounds how many worker goroutines the primitives may use.
// The zero Engine uses runtime.GOMAXPROCS — the whole machine — which
// is what the package-level functions run on. Multi-tenant callers
// (the service scheduler) construct one Engine per job with the degree
// the scheduler granted, so concurrent jobs never oversubscribe the
// host; Engine{P: 1} makes every primitive run inline with no
// goroutines at all.
//
// # Dispatch
//
// Multi-worker passes run on a persistent Pool when the engine carries
// one (Pool.Engine): long-lived workers parked on a task channel take
// closures by handoff instead of a fresh goroutine per pass, which
// amortizes spawn cost across the thousands of short rounds a solve
// executes. Engines without a pool (plain Engine{P: n} literals) fall
// back to spawning, with the calling goroutine always acting as worker
// 0. How many workers a pass gets is decided by the grain — minimum
// operations per chunk — which is either the static default or, when a
// Tuner is attached (Engine.WithTuner), learned per pass class from
// dispatch timings and per-round wall times. None of this affects
// results: pool, tuner, and worker count are scheduling decisions
// only, and the block partition stays a pure function of (n, shards).
package par

import (
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Cost accumulates work-depth charges across primitive invocations. The
// zero value is ready to use. Cost methods are safe for concurrent use by
// the primitives themselves (each primitive performs one atomic update).
type Cost struct {
	work  atomic.Int64
	depth atomic.Int64
	steps atomic.Int64
}

// Charge adds a parallel step of the given work and depth.
func (c *Cost) Charge(work, depth int64) {
	if c == nil {
		return
	}
	c.work.Add(work)
	c.depth.Add(depth)
	c.steps.Add(1)
}

// Work returns total accumulated work (operation count).
func (c *Cost) Work() int64 {
	if c == nil {
		return 0
	}
	return c.work.Load()
}

// Depth returns total accumulated parallel depth (time on unboundedly
// many processors).
func (c *Cost) Depth() int64 {
	if c == nil {
		return 0
	}
	return c.depth.Load()
}

// Steps returns the number of charged primitive invocations.
func (c *Cost) Steps() int64 {
	if c == nil {
		return 0
	}
	return c.steps.Load()
}

// Add merges another cost into c.
func (c *Cost) Add(o *Cost) {
	if c == nil || o == nil {
		return
	}
	c.work.Add(o.Work())
	c.depth.Add(o.Depth())
	c.steps.Add(o.Steps())
}

// Reset zeroes the accumulator.
func (c *Cost) Reset() {
	if c == nil {
		return
	}
	c.work.Store(0)
	c.depth.Store(0)
	c.steps.Store(0)
}

// log2Ceil returns ceil(log2(n)) for n >= 1, and 0 for n <= 1.
func log2Ceil(n int) int64 {
	if n <= 1 {
		return 0
	}
	return int64(bits.Len(uint(n - 1)))
}

// Engine bounds the parallelism of the primitives. P is the maximum
// number of worker goroutines; P <= 0 means runtime.GOMAXPROCS. The
// zero value is ready to use and runs on the whole machine. Engines
// are values: copy freely, no state is shared beyond the optional
// pool/tuner they reference.
//
// Results never depend on P, on whether a pool or tuner is attached,
// or on scheduling — primitives partition work without reordering it —
// so an Engine choice is purely a scheduling decision.
type Engine struct {
	P int

	// pool, when set, supplies persistent workers for multi-worker
	// dispatch (see Pool.Engine). nil engines spawn per pass.
	pool *Pool
	// tune, when set, adapts the shard grain (see Tuner). nil engines
	// use the static defaultGrain.
	tune *Tuner
}

// WithTuner returns a copy of the engine whose shard grain is driven
// by t. A nil t returns the engine unchanged.
func (e Engine) WithTuner(t *Tuner) Engine {
	if t != nil {
		e.tune = t
	}
	return e
}

// Procs returns the engine's parallelism bound.
func (e Engine) Procs() int {
	if e.P > 0 {
		return e.P
	}
	return runtime.GOMAXPROCS(0)
}

// workersFor returns the number of workers to use for n items whose
// per-item cost is roughly perItem elementwise operations. Workers are
// capped so each processes at least ~grain operations, where the grain
// is the tuner's current estimate for the pass class (or the static
// default without a tuner).
func (e Engine) workersFor(n, perItem int) int {
	w := e.Procs()
	if w <= 1 {
		return 1
	}
	if perItem < 1 {
		perItem = 1
	}
	grain := e.tune.grainFor(classOf(perItem))
	minPer := 1
	if perItem < grain {
		minPer = grain / perItem
	}
	if max := (n + minPer - 1) / minPer; w > max {
		w = max
	}
	if w < 1 {
		w = 1
	}
	return w
}

// dispatch runs body(g) for every g in [0, w): on the persistent pool
// when the engine has one, otherwise spawning w-1 goroutines. The
// calling goroutine is always worker 0; w <= 1 runs inline.
func (e Engine) dispatch(w int, body func(g int)) {
	if w <= 1 {
		body(0)
		return
	}
	if e.pool != nil {
		e.pool.run(w, body)
		return
	}
	var wg sync.WaitGroup
	wg.Add(w - 1)
	for g := 1; g < w; g++ {
		go func(g int) {
			defer wg.Done()
			body(g)
		}(g)
	}
	body(0)
	wg.Wait()
}

// timed is dispatch plus tuner feedback: when a tuner is attached and
// the pass is large enough to time meaningfully, the measured wall
// time is folded into the pass class's ns/op estimate.
func (e Engine) timed(n, perItem, w int, body func(g int)) {
	ops := int64(n) * int64(perItem)
	if e.tune == nil || ops < measureFloor {
		e.dispatch(w, body)
		return
	}
	start := time.Now()
	e.dispatch(w, body)
	e.tune.observe(classOf(perItem), ops, time.Since(start).Nanoseconds(), w)
}

// NumShards returns the recommended number of blocks for ForShards
// over n elementwise items — the same worker count the other
// primitives use. Callers size their per-shard accumulator slices with
// it and pass the same value to ForShards.
func (e Engine) NumShards(n int) int { return e.workersFor(n, 1) }

// ShardsFor is NumShards with a per-item work hint: use it when each
// of the n items costs far more than one operation (e.g. 2^d subset
// enumerations per edge), so that small n still shards when the total
// work is large.
func (e Engine) ShardsFor(n, perItem int) int { return e.workersFor(n, perItem) }

// For runs body(i) for every i in [0, n), in parallel. It charges n work
// and depth 1 (an elementwise PRAM step). body must not write to shared
// locations indexed by anything other than i (EREW discipline); the pram
// package's auditor can verify this for instrumented programs.
func (e Engine) For(c *Cost, n int, body func(i int)) {
	c.Charge(int64(n), 1)
	w := e.workersFor(n, 1)
	if w == 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	chunk := (n + w - 1) / w
	e.timed(n, 1, w, func(g int) {
		lo := g * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForBlocked runs body(lo, hi) over disjoint contiguous blocks covering
// [0, n). It charges the same PRAM cost as For; it exists so callers can
// amortize per-element closure overhead when the body is tiny. The
// block partitioner is ForShards with the shard index dropped; the
// single-worker case runs body inline over the whole range without
// wrapping it (the wrapper closure would heap-allocate on every call —
// measurable across thousands of solver rounds at degree 1).
func (e Engine) ForBlocked(c *Cost, n int, body func(lo, hi int)) {
	w := e.workersFor(n, 1)
	if w <= 1 {
		c.Charge(int64(n), 1)
		if n > 0 {
			body(0, n)
		}
		return
	}
	e.ForShards(c, n, w, func(_, lo, hi int) { body(lo, hi) })
}

// ForShards runs body(shard, lo, hi) over disjoint contiguous blocks
// covering [0, n), passing the block index so callers can write to
// per-shard accumulators without synchronization. The partition is a
// pure function of (n, shards) — block s is [s·ceil(n/shards),
// (s+1)·ceil(n/shards)) clamped to n — and every non-empty block is
// invoked exactly once, regardless of how many goroutines actually run
// (the engine only decides how blocks are distributed over workers).
// Two ForShards calls with equal (n, shards) therefore see identical
// boundaries even if GOMAXPROCS changes between them, which the
// two-pass tally/assign callers rely on. Trailing shards are empty
// (and not invoked) only when s·ceil(n/shards) ≥ n. Charges like an
// elementwise step.
func (e Engine) ForShards(c *Cost, n, shards int, body func(shard, lo, hi int)) {
	c.Charge(int64(n), 1)
	e.runShards(n, 1, shards, body)
}

// ForShardsWork is ForShards for items whose per-item cost is roughly
// perItem elementwise operations: the worker count scales with total
// work, so a short slice of expensive items still fans out. The block
// partition is the same pure function of (n, shards).
func (e Engine) ForShardsWork(c *Cost, n, perItem, shards int, body func(shard, lo, hi int)) {
	if perItem < 1 {
		perItem = 1
	}
	c.Charge(int64(n)*int64(perItem), 1)
	e.runShards(n, perItem, shards, body)
}

// runShards invokes body over the deterministic (n, shards) block
// partition, distributing blocks round-robin over up to
// workersFor(n, perItem) workers.
func (e Engine) runShards(n, perItem, shards int, body func(shard, lo, hi int)) {
	if shards < 1 {
		shards = 1
	}
	chunk := (n + shards - 1) / shards
	if chunk < 1 {
		chunk = 1
	}
	w := e.workersFor(n, perItem)
	if w > shards {
		w = shards
	}
	if w <= 1 {
		for s := 0; s < shards; s++ {
			lo := s * chunk
			if lo >= n {
				break
			}
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			body(s, lo, hi)
		}
		return
	}
	e.timed(n, perItem, w, func(g int) {
		for s := g; s < shards; s += w {
			lo := s * chunk
			if lo >= n {
				return
			}
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			body(s, lo, hi)
		}
	})
}

// Count returns the number of indices in [0, n) for which pred holds.
// Charges like a reduction.
func (e Engine) Count(c *Cost, n int, pred func(i int) bool) int {
	c.Charge(int64(n), log2Ceil(n))
	w := e.workersFor(n, 1)
	if w == 1 {
		total := 0
		for i := 0; i < n; i++ {
			if pred(i) {
				total++
			}
		}
		return total
	}
	partial := make([]int, w)
	chunk := (n + w - 1) / w
	e.timed(n, 1, w, func(g int) {
		lo := g * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		t := 0
		for i := lo; i < hi; i++ {
			if pred(i) {
				t++
			}
		}
		partial[g] = t
	})
	total := 0
	for _, t := range partial {
		total += t
	}
	return total
}

// And reports whether pred holds for all i in [0, n). Cost of a
// reduction. (No short-circuiting across blocks: PRAM ANDs are
// single-step reductions, and determinism matters more than the
// constant factor here.)
func (e Engine) And(c *Cost, n int, pred func(i int) bool) bool {
	return e.Count(c, n, func(i int) bool { return !pred(i) }) == 0
}

// Or reports whether pred holds for any i in [0, n).
func (e Engine) Or(c *Cost, n int, pred func(i int) bool) bool {
	return e.Count(c, n, pred) > 0
}

// MapOn applies f elementwise on engine e producing a new slice.
// Charges n work, depth 1.
func MapOn[T, U any](e Engine, c *Cost, in []T, f func(T) U) []U {
	out := make([]U, len(in))
	e.ForBlocked(c, len(in), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = f(in[i])
		}
	})
	return out
}

// ReduceOn combines the elements of in with an associative operation op
// and identity id on engine e. Charges n work and ceil(log2 n) depth,
// matching a balanced binary reduction tree on an EREW PRAM.
func ReduceOn[T any](e Engine, c *Cost, in []T, id T, op func(a, b T) T) T {
	n := len(in)
	c.Charge(int64(n), log2Ceil(n))
	if n == 0 {
		return id
	}
	w := e.workersFor(n, 1)
	if w == 1 {
		acc := id
		for _, v := range in {
			acc = op(acc, v)
		}
		return acc
	}
	partial := make([]T, w)
	chunk := (n + w - 1) / w
	e.timed(n, 1, w, func(g int) {
		lo := g * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		acc := id
		for i := lo; i < hi; i++ {
			acc = op(acc, in[i])
		}
		partial[g] = acc
	})
	acc := id
	for g := 0; g < w; g++ {
		if g*chunk >= n {
			break
		}
		acc = op(acc, partial[g])
	}
	return acc
}

// ExclusiveScanOn computes the exclusive prefix sums of in on engine e:
// out[i] = in[0] + ... + in[i-1], and returns (out, total). Charges 2n
// work and 2*ceil(log2 n) depth — the standard two-phase
// (upsweep/downsweep) EREW scan.
func ExclusiveScanOn(e Engine, c *Cost, in []int) ([]int, int) {
	n := len(in)
	c.Charge(2*int64(n), 2*log2Ceil(n))
	out := make([]int, n)
	if n == 0 {
		return out, 0
	}
	w := e.workersFor(n, 1)
	if w == 1 {
		run := 0
		for i, v := range in {
			out[i] = run
			run += v
		}
		return out, run
	}
	// Phase 1: per-block sums.
	chunk := (n + w - 1) / w
	blockSum := make([]int, w)
	e.timed(n, 1, w, func(g int) {
		lo := g * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		s := 0
		for i := lo; i < hi; i++ {
			s += in[i]
		}
		blockSum[g] = s
	})
	// Phase 2: sequential scan of block sums (w is tiny).
	run := 0
	blockOff := make([]int, w)
	for g := 0; g < w; g++ {
		blockOff[g] = run
		run += blockSum[g]
	}
	// Phase 3: per-block exclusive scans with offsets.
	e.dispatch(w, func(g int) {
		lo := g * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		s := blockOff[g]
		for i := lo; i < hi; i++ {
			out[i] = s
			s += in[i]
		}
	})
	return out, run
}

// PackOn returns the elements of in whose index satisfies keep,
// preserving order, on engine e. This is stream compaction: flag, scan,
// scatter. Charges accordingly (one elementwise pass plus a scan plus a
// scatter).
func PackOn[T any](e Engine, c *Cost, in []T, keep func(i int) bool) []T {
	n := len(in)
	flags := make([]int, n)
	e.ForBlocked(c, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if keep(i) {
				flags[i] = 1
			}
		}
	})
	off, total := ExclusiveScanOn(e, c, flags)
	out := make([]T, total)
	e.ForBlocked(c, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if flags[i] == 1 {
				out[off[i]] = in[i]
			}
		}
	})
	return out
}

// PackIndicesOn returns the indices in [0, n) satisfying pred,
// ascending, on engine e.
func PackIndicesOn(e Engine, c *Cost, n int, pred func(i int) bool) []int {
	idx := make([]int, n)
	e.ForBlocked(c, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			idx[i] = i
		}
	})
	return PackOn(e, c, idx, pred)
}

// FillOn sets dst[i] = v for all i on engine e.
func FillOn[T any](e Engine, c *Cost, dst []T, v T) {
	e.ForBlocked(c, len(dst), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = v
		}
	})
}

// ----------------------------------------------------------------------
// Package-level wrappers: the historical API, running on the zero
// Engine (whole machine). New code that must respect a per-job
// parallelism degree calls the Engine methods / *On functions instead.

// For runs body(i) for every i in [0, n) on the default engine.
func For(c *Cost, n int, body func(i int)) { Engine{}.For(c, n, body) }

// ForBlocked runs body(lo, hi) over blocks covering [0, n) on the
// default engine.
func ForBlocked(c *Cost, n int, body func(lo, hi int)) { Engine{}.ForBlocked(c, n, body) }

// NumShards returns the default engine's recommended shard count for n
// elements.
func NumShards(n int) int { return Engine{}.NumShards(n) }

// ForShards runs body over disjoint blocks with shard indices on the
// default engine.
func ForShards(c *Cost, n, shards int, body func(shard, lo, hi int)) {
	Engine{}.ForShards(c, n, shards, body)
}

// Map applies f elementwise producing a new slice. Charges n work,
// depth 1.
func Map[T, U any](c *Cost, in []T, f func(T) U) []U { return MapOn(Engine{}, c, in, f) }

// Reduce combines the elements of in with an associative operation op
// and identity id.
func Reduce[T any](c *Cost, in []T, id T, op func(a, b T) T) T {
	return ReduceOn(Engine{}, c, in, id, op)
}

// SumInt is Reduce specialized to integer addition.
func SumInt(c *Cost, in []int) int {
	return Reduce(c, in, 0, func(a, b int) int { return a + b })
}

// MaxInt returns the maximum of in, or identity if empty.
func MaxInt(c *Cost, in []int, identity int) int {
	return Reduce(c, in, identity, func(a, b int) int {
		if a > b {
			return a
		}
		return b
	})
}

// Count returns the number of indices in [0, n) for which pred holds.
func Count(c *Cost, n int, pred func(i int) bool) int { return Engine{}.Count(c, n, pred) }

// ExclusiveScan computes the exclusive prefix sums of in.
func ExclusiveScan(c *Cost, in []int) ([]int, int) { return ExclusiveScanOn(Engine{}, c, in) }

// Pack returns the elements of in whose index satisfies keep, preserving
// order.
func Pack[T any](c *Cost, in []T, keep func(i int) bool) []T { return PackOn(Engine{}, c, in, keep) }

// PackIndices returns the indices in [0, n) satisfying pred, ascending.
func PackIndices(c *Cost, n int, pred func(i int) bool) []int {
	return PackIndicesOn(Engine{}, c, n, pred)
}

// Fill sets dst[i] = v for all i.
func Fill[T any](c *Cost, dst []T, v T) { FillOn(Engine{}, c, dst, v) }

// And reports whether pred holds for all i in [0, n).
func And(c *Cost, n int, pred func(i int) bool) bool { return Engine{}.And(c, n, pred) }

// Or reports whether pred holds for any i in [0, n).
func Or(c *Cost, n int, pred func(i int) bool) bool { return Engine{}.Or(c, n, pred) }

// ChargeStep records the cost of one elementwise parallel step over n
// items that the caller performed inline (outside the primitives).
func ChargeStep(c *Cost, n int) { c.Charge(int64(n), 1) }

// ChargeReduce records the cost of one reduction over n items performed
// inline (e.g. a bitset population count standing in for a Count).
func ChargeReduce(c *Cost, n int) { c.Charge(int64(n), log2Ceil(n)) }

// ChargeAux records an arbitrary work/depth charge for an operation
// performed outside the primitives (e.g. hash-table or degree-table
// builds whose PRAM realization is a known sorting/hashing routine).
func ChargeAux(c *Cost, work, depth int64) { c.Charge(work, depth) }
