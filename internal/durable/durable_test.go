package durable

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
	"time"

	hypermis "repro"
	"repro/internal/faultinject"
)

// testResult builds a deterministic result whose mask has n vertices
// with every (i*7+seed)%3 == 0 vertex in the set.
func testResult(n, seed int) *hypermis.Result {
	mask := make([]bool, n)
	size := 0
	for i := range mask {
		if (i*7+seed)%3 == 0 {
			mask[i] = true
			size++
		}
	}
	return &hypermis.Result{
		MIS:       mask,
		Size:      size,
		Algorithm: hypermis.AlgGreedy,
		Rounds:    seed + 1,
		Depth:     int64(seed * 10),
		Work:      int64(n),
	}
}

func sameResult(t *testing.T, got, want *hypermis.Result) {
	t.Helper()
	if got == nil {
		t.Fatal("got nil result")
	}
	if len(got.MIS) != len(want.MIS) {
		t.Fatalf("mask length %d, want %d", len(got.MIS), len(want.MIS))
	}
	for i := range got.MIS {
		if got.MIS[i] != want.MIS[i] {
			t.Fatalf("mask differs at vertex %d", i)
		}
	}
	if got.Size != want.Size || got.Algorithm != want.Algorithm ||
		got.Rounds != want.Rounds || got.Depth != want.Depth || got.Work != want.Work {
		t.Fatalf("metadata round-trip: got %+v, want %+v", got, want)
	}
}

func openTest(t *testing.T, cfg Config) *Store {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := openTest(t, Config{})
	want := testResult(100, 1)
	s.Put("key-1", want)
	s.Flush()
	got, ok := s.Get("key-1")
	if !ok {
		t.Fatal("Get after Put+Flush missed")
	}
	sameResult(t, got, want)
	if _, ok := s.Get("absent"); ok {
		t.Fatal("Get of absent key hit")
	}
	c := s.Counters()
	if c.Hits != 1 || c.Misses != 1 || c.Writes != 1 || c.Entries != 1 {
		t.Fatalf("counters = %+v, want 1 hit / 1 miss / 1 write / 1 entry", c)
	}
}

func TestReopenRecovers(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, Config{Dir: dir})
	results := map[string]*hypermis.Result{}
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("key-%d", i)
		results[key] = testResult(50+i, i)
		s.Put(key, results[key])
	}
	s.Flush()
	s.Close()

	s2 := openTest(t, Config{Dir: dir})
	c := s2.Counters()
	if c.Recovered != 20 || c.Entries != 20 || c.CorruptSkipped != 0 {
		t.Fatalf("recovery counters = %+v, want 20 recovered / 20 entries / 0 corrupt", c)
	}
	for key, want := range results {
		got, ok := s2.Get(key)
		if !ok {
			t.Fatalf("key %q lost across reopen", key)
		}
		sameResult(t, got, want)
	}
}

func TestLastWriteWins(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, Config{Dir: dir})
	s.Put("dup", testResult(30, 1))
	s.Flush()
	want := testResult(30, 2)
	s.Put("dup", want)
	s.Flush()
	got, ok := s.Get("dup")
	if !ok {
		t.Fatal("dup key missed")
	}
	sameResult(t, got, want)
	s.Close()

	// The later record must also win during the recovery replay.
	s2 := openTest(t, Config{Dir: dir})
	got, ok = s2.Get("dup")
	if !ok {
		t.Fatal("dup key lost across reopen")
	}
	sameResult(t, got, want)
}

func TestTornTailTruncatedAndRepaired(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, Config{Dir: dir})
	want := testResult(40, 3)
	s.Put("whole", want)
	s.Flush()
	s.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if len(segs) != 1 {
		t.Fatalf("got %d segments, want 1", len(segs))
	}
	intact, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Append a second frame header that promises more payload than
	// exists — exactly what a crash mid-append leaves behind.
	torn := append(append([]byte{}, intact...), frameMagic...)
	torn = binary.LittleEndian.AppendUint32(torn, 10_000)
	torn = binary.LittleEndian.AppendUint32(torn, 0xdeadbeef)
	torn = append(torn, "partial payload"...)
	if err := os.WriteFile(segs[0], torn, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openTest(t, Config{Dir: dir})
	c := s2.Counters()
	if c.Recovered != 1 {
		t.Fatalf("recovered = %d, want 1 (the intact prefix)", c.Recovered)
	}
	if c.CorruptSkipped != 0 {
		t.Fatalf("corrupt_skipped = %d, want 0 — a torn tail is not corruption", c.CorruptSkipped)
	}
	got, ok := s2.Get("whole")
	if !ok {
		t.Fatal("intact record lost to a torn tail")
	}
	sameResult(t, got, want)
	// The tear must be physically repaired, not re-skipped every boot.
	repaired, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(repaired) != len(intact) {
		t.Fatalf("segment is %d bytes after repair, want %d (tail truncated)", len(repaired), len(intact))
	}
}

func TestCorruptRecordSkippedOthersSurvive(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, Config{Dir: dir})
	for i := 0; i < 3; i++ {
		s.Put(fmt.Sprintf("key-%d", i), testResult(40, i))
	}
	s.Flush()
	s.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the middle record's payload (well past the
	// first frame, well before the last byte).
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openTest(t, Config{Dir: dir})
	c := s2.Counters()
	if c.CorruptSkipped == 0 {
		t.Fatal("corrupt_skipped = 0, want > 0 after flipping a payload byte")
	}
	if c.Recovered != 2 {
		t.Fatalf("recovered = %d, want 2 (records on either side of the corruption)", c.Recovered)
	}
	hits := 0
	for i := 0; i < 3; i++ {
		if res, ok := s2.Get(fmt.Sprintf("key-%d", i)); ok {
			sameResult(t, res, testResult(40, i))
			hits++
		}
	}
	if hits != 2 {
		t.Fatalf("%d of 3 keys survived, want exactly 2", hits)
	}
}

func TestRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	// ~160-byte records, 1 KiB segments, 4 KiB budget: plenty of
	// rotations and forced compactions.
	s := openTest(t, Config{Dir: dir, SegmentBytes: 1 << 10, MaxBytes: 4 << 10})
	for i := 0; i < 200; i++ {
		s.Put(fmt.Sprintf("key-%d", i), testResult(64, i))
	}
	s.Flush()
	c := s.Counters()
	if c.Compactions == 0 {
		t.Fatal("no compactions despite exceeding the byte budget")
	}
	if c.Bytes > (4<<10)+(1<<10) {
		t.Fatalf("store holds %d bytes, want ≤ budget + one segment", c.Bytes)
	}
	// Recent keys must still be present; compacted ones must miss
	// cleanly (not error).
	if _, ok := s.Get("key-199"); !ok {
		t.Fatal("most recent key lost")
	}
	if _, ok := s.Get("key-0"); ok {
		t.Fatal("oldest key survived compaction past the budget")
	}
	s.Close()

	// On-disk layout must agree after reopen.
	s2 := openTest(t, Config{Dir: dir, SegmentBytes: 1 << 10, MaxBytes: 4 << 10})
	if _, ok := s2.Get("key-199"); !ok {
		t.Fatal("most recent key lost across reopen")
	}
}

func TestTracedResultsNotPersisted(t *testing.T) {
	s := openTest(t, Config{})
	res := testResult(20, 1)
	res.Trace = []hypermis.RoundTrace{{}}
	s.Put("traced", res)
	s.Flush()
	if _, ok := s.Get("traced"); ok {
		t.Fatal("traced result was persisted; traces are memory-only")
	}
	if c := s.Counters(); c.Writes != 0 || c.WriteErrors != 0 {
		t.Fatalf("counters = %+v, want a silent skip (no write, no error)", c)
	}
}

func TestFsyncPolicies(t *testing.T) {
	for _, policy := range []string{FsyncNever, FsyncInterval, FsyncAlways} {
		dir := t.TempDir()
		s := openTest(t, Config{Dir: dir, Fsync: policy, FsyncInterval: 10 * time.Millisecond})
		s.Put("k", testResult(10, 1))
		s.Flush()
		if _, ok := s.Get("k"); !ok {
			t.Fatalf("fsync=%s: Get missed after Flush", policy)
		}
	}
	if _, err := Open(Config{Dir: t.TempDir(), Fsync: "sometimes"}); err == nil {
		t.Fatal("Open accepted an unknown fsync policy")
	}
	if _, err := Open(Config{}); err == nil {
		t.Fatal("Open accepted an empty Dir")
	}
}

func TestNilStoreIsSafe(t *testing.T) {
	var s *Store
	if _, ok := s.Get("k"); ok {
		t.Fatal("nil store hit")
	}
	s.Put("k", testResult(10, 1)) // must not panic
	s.MarkVerifyFailed("k")
	s.Flush()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if c := s.Counters(); c != (Counters{}) {
		t.Fatalf("nil store counters = %+v, want zero", c)
	}
	if s.Len() != 0 {
		t.Fatal("nil store Len != 0")
	}
}

func TestMarkVerifyFailedDropsEntry(t *testing.T) {
	s := openTest(t, Config{})
	s.Put("bad", testResult(20, 1))
	s.Flush()
	s.MarkVerifyFailed("bad")
	if _, ok := s.Get("bad"); ok {
		t.Fatal("entry served after MarkVerifyFailed")
	}
	if c := s.Counters(); c.VerifyFailed != 1 {
		t.Fatalf("verify_failed = %d, want 1", c.VerifyFailed)
	}
}

func TestChaosWriteErrorsCountedNotStored(t *testing.T) {
	s := openTest(t, Config{
		Faults: faultinject.New(faultinject.Config{DiskWriteErrorRate: 1, Seed: 5}),
	})
	s.Put("k", testResult(20, 1))
	s.Flush()
	if _, ok := s.Get("k"); ok {
		t.Fatal("record stored despite a 100% write-error rate")
	}
	if c := s.Counters(); c.WriteErrors == 0 || c.Writes != 0 {
		t.Fatalf("counters = %+v, want write_errors > 0 and writes == 0", c)
	}
}

func TestChaosShortWriteTearsFrameRecoverably(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, Config{
		Dir:    dir,
		Faults: faultinject.New(faultinject.Config{DiskShortWriteRate: 1, Seed: 5}),
	})
	s.Put("torn", testResult(20, 1))
	s.Flush()
	if _, ok := s.Get("torn"); ok {
		t.Fatal("short-written record was indexed")
	}
	if c := s.Counters(); c.WriteErrors == 0 {
		t.Fatalf("counters = %+v, want write_errors > 0 for a short write", c)
	}
	s.Close()

	// The torn frame on disk must not poison recovery.
	s2 := openTest(t, Config{Dir: dir})
	if c := s2.Counters(); c.Recovered != 0 {
		t.Fatalf("recovered = %d torn records, want 0", c.Recovered)
	}
}

func TestChaosBitFlipRejectedAtRead(t *testing.T) {
	s := openTest(t, Config{
		Faults: faultinject.New(faultinject.Config{DiskBitFlipRate: 1, Seed: 5}),
	})
	s.Put("k", testResult(100, 1))
	s.Flush()
	if _, ok := s.Get("k"); ok {
		t.Fatal("bit-flipped payload served — CRC recheck at read time failed to reject")
	}
	c := s.Counters()
	if c.CorruptSkipped == 0 || c.Hits != 0 {
		t.Fatalf("counters = %+v, want corrupt_skipped > 0 and zero hits", c)
	}
	// The poisoned entry is dropped: the next Get is a clean miss.
	if _, ok := s.Get("k"); ok {
		t.Fatal("dropped entry served on second read")
	}
}

func TestDecodeRejectsMalformedPayloads(t *testing.T) {
	good := encodePayload("key", testResult(20, 1))
	if _, _, err := decodePayload(good); err != nil {
		t.Fatalf("round-trip decode failed: %v", err)
	}
	cases := map[string][]byte{
		"empty":         {},
		"bad version":   append([]byte{99}, good[1:]...),
		"truncated":     good[:len(good)/2],
		"oversized key": binary.AppendUvarint([]byte{recordVersion}, maxKeyBytes+1),
	}
	// A cardinality that disagrees with the mask must be rejected even
	// though every field parses.
	bad := testResult(20, 1)
	bad.Size++
	cases["size mismatch"] = encodePayload("key", bad)
	for name, p := range cases {
		if _, _, err := decodePayload(p); err == nil {
			t.Errorf("decodePayload accepted %s payload", name)
		}
	}
}

func TestRecoverScanEmptyAndGarbage(t *testing.T) {
	if recs, n, corrupt := recoverScan(nil); len(recs) != 0 || n != 0 || corrupt != 0 {
		t.Fatalf("empty scan = (%d recs, %d, %d), want zeros", len(recs), n, corrupt)
	}
	// Pure garbage with no magic: nothing valid, nothing recovered.
	recs, n, _ := recoverScan(bytes.Repeat([]byte{0x5a}, 4096))
	if len(recs) != 0 || n != 0 {
		t.Fatalf("garbage scan = (%d recs, validLen %d), want none", len(recs), n)
	}
}

func TestRecoverScanResyncsAcrossCorruptLength(t *testing.T) {
	// Two valid frames with the first frame's length field smashed: the
	// scan must not trust the bogus length and must still find frame 2.
	frame := func(key string, seed int) []byte {
		p := encodePayload(key, testResult(20, seed))
		b := []byte(frameMagic)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(p)))
		b = binary.LittleEndian.AppendUint32(b, crc32.Checksum(p, castagnoli))
		return append(b, p...)
	}
	data := append(frame("first", 1), frame("second", 2)...)
	binary.LittleEndian.PutUint32(data[4:8], maxRecordBytes+100)
	recs, _, corrupt := recoverScan(data)
	if len(recs) != 1 || recs[0].key != "second" {
		t.Fatalf("recovered %d records, want exactly the second frame", len(recs))
	}
	if corrupt == 0 {
		t.Fatal("smashed length field not counted as corruption")
	}
}
