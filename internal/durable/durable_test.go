package durable

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
	"time"

	hypermis "repro"
	"repro/internal/faultinject"
)

// testResult builds a deterministic result whose mask has n vertices
// with every (i*7+seed)%3 == 0 vertex in the set.
func testResult(n, seed int) *hypermis.Result {
	mask := make([]bool, n)
	size := 0
	for i := range mask {
		if (i*7+seed)%3 == 0 {
			mask[i] = true
			size++
		}
	}
	return &hypermis.Result{
		MIS:       mask,
		Size:      size,
		Algorithm: hypermis.AlgGreedy,
		Rounds:    seed + 1,
		Depth:     int64(seed * 10),
		Work:      int64(n),
	}
}

func sameResult(t *testing.T, got, want *hypermis.Result) {
	t.Helper()
	if got == nil {
		t.Fatal("got nil result")
	}
	if len(got.MIS) != len(want.MIS) {
		t.Fatalf("mask length %d, want %d", len(got.MIS), len(want.MIS))
	}
	for i := range got.MIS {
		if got.MIS[i] != want.MIS[i] {
			t.Fatalf("mask differs at vertex %d", i)
		}
	}
	if got.Size != want.Size || got.Algorithm != want.Algorithm ||
		got.Rounds != want.Rounds || got.Depth != want.Depth || got.Work != want.Work {
		t.Fatalf("metadata round-trip: got %+v, want %+v", got, want)
	}
}

func openTest(t *testing.T, cfg Config) *Store {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := openTest(t, Config{})
	want := testResult(100, 1)
	s.Put("key-1", want)
	s.Flush()
	got, ok := s.Get("key-1")
	if !ok {
		t.Fatal("Get after Put+Flush missed")
	}
	sameResult(t, got, want)
	if _, ok := s.Get("absent"); ok {
		t.Fatal("Get of absent key hit")
	}
	c := s.Counters()
	if c.Hits != 1 || c.Misses != 1 || c.Writes != 1 || c.Entries != 1 {
		t.Fatalf("counters = %+v, want 1 hit / 1 miss / 1 write / 1 entry", c)
	}
}

func TestReopenRecovers(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, Config{Dir: dir})
	results := map[string]*hypermis.Result{}
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("key-%d", i)
		results[key] = testResult(50+i, i)
		s.Put(key, results[key])
	}
	s.Flush()
	s.Close()

	s2 := openTest(t, Config{Dir: dir})
	c := s2.Counters()
	if c.Recovered != 20 || c.Entries != 20 || c.CorruptSkipped != 0 {
		t.Fatalf("recovery counters = %+v, want 20 recovered / 20 entries / 0 corrupt", c)
	}
	for key, want := range results {
		got, ok := s2.Get(key)
		if !ok {
			t.Fatalf("key %q lost across reopen", key)
		}
		sameResult(t, got, want)
	}
}

func TestLastWriteWins(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, Config{Dir: dir})
	s.Put("dup", testResult(30, 1))
	s.Flush()
	want := testResult(30, 2)
	s.Put("dup", want)
	s.Flush()
	got, ok := s.Get("dup")
	if !ok {
		t.Fatal("dup key missed")
	}
	sameResult(t, got, want)
	s.Close()

	// The later record must also win during the recovery replay.
	s2 := openTest(t, Config{Dir: dir})
	got, ok = s2.Get("dup")
	if !ok {
		t.Fatal("dup key lost across reopen")
	}
	sameResult(t, got, want)
}

func TestTornTailTruncatedAndRepaired(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, Config{Dir: dir})
	want := testResult(40, 3)
	s.Put("whole", want)
	s.Flush()
	s.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if len(segs) != 1 {
		t.Fatalf("got %d segments, want 1", len(segs))
	}
	intact, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Append a second frame header that promises more payload than
	// exists — exactly what a crash mid-append leaves behind.
	torn := append(append([]byte{}, intact...), frameMagic...)
	torn = binary.LittleEndian.AppendUint32(torn, 10_000)
	torn = binary.LittleEndian.AppendUint32(torn, 0xdeadbeef)
	torn = append(torn, "partial payload"...)
	if err := os.WriteFile(segs[0], torn, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openTest(t, Config{Dir: dir})
	c := s2.Counters()
	if c.Recovered != 1 {
		t.Fatalf("recovered = %d, want 1 (the intact prefix)", c.Recovered)
	}
	if c.CorruptSkipped != 0 {
		t.Fatalf("corrupt_skipped = %d, want 0 — a torn tail is not corruption", c.CorruptSkipped)
	}
	got, ok := s2.Get("whole")
	if !ok {
		t.Fatal("intact record lost to a torn tail")
	}
	sameResult(t, got, want)
	// The tear must be physically repaired, not re-skipped every boot.
	repaired, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(repaired) != len(intact) {
		t.Fatalf("segment is %d bytes after repair, want %d (tail truncated)", len(repaired), len(intact))
	}
}

func TestCorruptRecordSkippedOthersSurvive(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, Config{Dir: dir})
	for i := 0; i < 3; i++ {
		s.Put(fmt.Sprintf("key-%d", i), testResult(40, i))
	}
	s.Flush()
	s.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the middle record's payload (well past the
	// first frame, well before the last byte).
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openTest(t, Config{Dir: dir})
	c := s2.Counters()
	if c.CorruptSkipped == 0 {
		t.Fatal("corrupt_skipped = 0, want > 0 after flipping a payload byte")
	}
	if c.Recovered != 2 {
		t.Fatalf("recovered = %d, want 2 (records on either side of the corruption)", c.Recovered)
	}
	hits := 0
	for i := 0; i < 3; i++ {
		if res, ok := s2.Get(fmt.Sprintf("key-%d", i)); ok {
			sameResult(t, res, testResult(40, i))
			hits++
		}
	}
	if hits != 2 {
		t.Fatalf("%d of 3 keys survived, want exactly 2", hits)
	}
}

func TestRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	// ~160-byte records, 1 KiB segments, 4 KiB budget: plenty of
	// rotations and forced compactions.
	s := openTest(t, Config{Dir: dir, SegmentBytes: 1 << 10, MaxBytes: 4 << 10})
	for i := 0; i < 200; i++ {
		s.Put(fmt.Sprintf("key-%d", i), testResult(64, i))
	}
	s.Flush()
	c := s.Counters()
	if c.Compactions == 0 {
		t.Fatal("no compactions despite exceeding the byte budget")
	}
	if c.Bytes > (4<<10)+(1<<10) {
		t.Fatalf("store holds %d bytes, want ≤ budget + one segment", c.Bytes)
	}
	// Recent keys must still be present; compacted ones must miss
	// cleanly (not error).
	if _, ok := s.Get("key-199"); !ok {
		t.Fatal("most recent key lost")
	}
	if _, ok := s.Get("key-0"); ok {
		t.Fatal("oldest key survived compaction past the budget")
	}
	s.Close()

	// On-disk layout must agree after reopen.
	s2 := openTest(t, Config{Dir: dir, SegmentBytes: 1 << 10, MaxBytes: 4 << 10})
	if _, ok := s2.Get("key-199"); !ok {
		t.Fatal("most recent key lost across reopen")
	}
}

func TestTracedResultsNotPersisted(t *testing.T) {
	s := openTest(t, Config{})
	res := testResult(20, 1)
	res.Trace = []hypermis.RoundTrace{{}}
	s.Put("traced", res)
	s.Flush()
	if _, ok := s.Get("traced"); ok {
		t.Fatal("traced result was persisted; traces are memory-only")
	}
	if c := s.Counters(); c.Writes != 0 || c.WriteErrors != 0 {
		t.Fatalf("counters = %+v, want a silent skip (no write, no error)", c)
	}
}

func TestFsyncPolicies(t *testing.T) {
	for _, policy := range []string{FsyncNever, FsyncInterval, FsyncAlways} {
		dir := t.TempDir()
		s := openTest(t, Config{Dir: dir, Fsync: policy, FsyncInterval: 10 * time.Millisecond})
		s.Put("k", testResult(10, 1))
		s.Flush()
		if _, ok := s.Get("k"); !ok {
			t.Fatalf("fsync=%s: Get missed after Flush", policy)
		}
	}
	if _, err := Open(Config{Dir: t.TempDir(), Fsync: "sometimes"}); err == nil {
		t.Fatal("Open accepted an unknown fsync policy")
	}
	if _, err := Open(Config{}); err == nil {
		t.Fatal("Open accepted an empty Dir")
	}
}

func TestNilStoreIsSafe(t *testing.T) {
	var s *Store
	if _, ok := s.Get("k"); ok {
		t.Fatal("nil store hit")
	}
	s.Put("k", testResult(10, 1)) // must not panic
	s.MarkVerifyFailed("k")
	s.Flush()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if c := s.Counters(); c != (Counters{}) {
		t.Fatalf("nil store counters = %+v, want zero", c)
	}
	if s.Len() != 0 {
		t.Fatal("nil store Len != 0")
	}
}

func TestMarkVerifyFailedDropsEntry(t *testing.T) {
	s := openTest(t, Config{})
	s.Put("bad", testResult(20, 1))
	s.Flush()
	s.MarkVerifyFailed("bad")
	if _, ok := s.Get("bad"); ok {
		t.Fatal("entry served after MarkVerifyFailed")
	}
	if c := s.Counters(); c.VerifyFailed != 1 {
		t.Fatalf("verify_failed = %d, want 1", c.VerifyFailed)
	}
}

func TestChaosWriteErrorsCountedNotStored(t *testing.T) {
	s := openTest(t, Config{
		Faults: faultinject.New(faultinject.Config{DiskWriteErrorRate: 1, Seed: 5}),
	})
	s.Put("k", testResult(20, 1))
	s.Flush()
	if _, ok := s.Get("k"); ok {
		t.Fatal("record stored despite a 100% write-error rate")
	}
	if c := s.Counters(); c.WriteErrors == 0 || c.Writes != 0 {
		t.Fatalf("counters = %+v, want write_errors > 0 and writes == 0", c)
	}
}

func TestChaosShortWriteTearsFrameRecoverably(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, Config{
		Dir:    dir,
		Faults: faultinject.New(faultinject.Config{DiskShortWriteRate: 1, Seed: 5}),
	})
	s.Put("torn", testResult(20, 1))
	s.Flush()
	if _, ok := s.Get("torn"); ok {
		t.Fatal("short-written record was indexed")
	}
	if c := s.Counters(); c.WriteErrors == 0 {
		t.Fatalf("counters = %+v, want write_errors > 0 for a short write", c)
	}
	s.Close()

	// The torn frame on disk must not poison recovery.
	s2 := openTest(t, Config{Dir: dir})
	if c := s2.Counters(); c.Recovered != 0 {
		t.Fatalf("recovered = %d torn records, want 0", c.Recovered)
	}
}

func TestChaosBitFlipRejectedAtRead(t *testing.T) {
	s := openTest(t, Config{
		Faults: faultinject.New(faultinject.Config{DiskBitFlipRate: 1, Seed: 5}),
	})
	s.Put("k", testResult(100, 1))
	s.Flush()
	if _, ok := s.Get("k"); ok {
		t.Fatal("bit-flipped payload served — CRC recheck at read time failed to reject")
	}
	c := s.Counters()
	if c.CorruptSkipped == 0 || c.Hits != 0 {
		t.Fatalf("counters = %+v, want corrupt_skipped > 0 and zero hits", c)
	}
	// The poisoned entry is dropped: the next Get is a clean miss.
	if _, ok := s.Get("k"); ok {
		t.Fatal("dropped entry served on second read")
	}
}

func TestDecodeRejectsMalformedPayloads(t *testing.T) {
	good := encodePayload("key", testResult(20, 1))
	if _, _, err := decodePayload(good); err != nil {
		t.Fatalf("round-trip decode failed: %v", err)
	}
	cases := map[string][]byte{
		"empty":         {},
		"bad version":   append([]byte{99}, good[1:]...),
		"truncated":     good[:len(good)/2],
		"oversized key": binary.AppendUvarint([]byte{recordVersion}, maxKeyBytes+1),
	}
	// A cardinality that disagrees with the mask must be rejected even
	// though every field parses.
	bad := testResult(20, 1)
	bad.Size++
	cases["size mismatch"] = encodePayload("key", bad)
	for name, p := range cases {
		if _, _, err := decodePayload(p); err == nil {
			t.Errorf("decodePayload accepted %s payload", name)
		}
	}
}

// testTransversalResult complements testResult's mask: the stored
// transversal is exactly what MinimalTransversalFromMIS would produce
// from it.
func testTransversalResult(n, seed int) *hypermis.TransversalResult {
	base := testResult(n, seed)
	mask := make([]bool, n)
	size := 0
	for i, in := range base.MIS {
		if !in {
			mask[i] = true
			size++
		}
	}
	return &hypermis.TransversalResult{
		Transversal: mask,
		Size:        size,
		MISSize:     n - size,
		Algorithm:   base.Algorithm,
		Rounds:      base.Rounds,
		Depth:       base.Depth,
		Work:        base.Work,
	}
}

// testColorResult builds a deterministic 3-coloring telemetry record.
func testColorResult(n, seed int) *hypermis.ColorResult {
	colors := make([]int, n)
	sizes := make([]int, 3)
	for i := range colors {
		colors[i] = (i + seed) % 3
		sizes[colors[i]]++
	}
	classes := make([]hypermis.ColorClass, 3)
	rem := n
	total := 0
	for c := range classes {
		classes[c] = hypermis.ColorClass{Size: sizes[c], N: rem, M: rem / 2, Rounds: c + seed + 1}
		rem -= sizes[c]
		total += classes[c].Rounds
	}
	return &hypermis.ColorResult{
		Colors:     colors,
		NumColors:  3,
		ClassSizes: sizes,
		Algorithm:  hypermis.AlgGreedy,
		Rounds:     total,
		Classes:    classes,
	}
}

func sameTransversal(t *testing.T, got, want *hypermis.TransversalResult) {
	t.Helper()
	if got == nil {
		t.Fatal("got nil transversal result")
	}
	if len(got.Transversal) != len(want.Transversal) {
		t.Fatalf("mask length %d, want %d", len(got.Transversal), len(want.Transversal))
	}
	for i := range got.Transversal {
		if got.Transversal[i] != want.Transversal[i] {
			t.Fatalf("mask differs at vertex %d", i)
		}
	}
	if got.Size != want.Size || got.MISSize != want.MISSize || got.Algorithm != want.Algorithm ||
		got.Rounds != want.Rounds || got.Depth != want.Depth || got.Work != want.Work {
		t.Fatalf("metadata round-trip: got %+v, want %+v", got, want)
	}
}

func sameColor(t *testing.T, got, want *hypermis.ColorResult) {
	t.Helper()
	if got == nil {
		t.Fatal("got nil color result")
	}
	if len(got.Colors) != len(want.Colors) || got.NumColors != want.NumColors {
		t.Fatalf("shape (%d colors over %d vertices), want (%d over %d)",
			got.NumColors, len(got.Colors), want.NumColors, len(want.Colors))
	}
	for i := range got.Colors {
		if got.Colors[i] != want.Colors[i] {
			t.Fatalf("color differs at vertex %d", i)
		}
	}
	if got.Algorithm != want.Algorithm || got.Rounds != want.Rounds {
		t.Fatalf("metadata round-trip: got %+v, want %+v", got, want)
	}
	if len(got.Classes) != len(want.Classes) {
		t.Fatalf("%d classes, want %d", len(got.Classes), len(want.Classes))
	}
	for c := range got.Classes {
		g, w := got.Classes[c], want.Classes[c]
		if g.Size != w.Size || g.N != w.N || g.M != w.M || g.Rounds != w.Rounds {
			t.Fatalf("class %d round-trip: got %+v, want %+v", c, g, w)
		}
		if got.ClassSizes[c] != want.ClassSizes[c] {
			t.Fatalf("class size %d differs", c)
		}
	}
}

func TestTransversalPutGetRoundTrip(t *testing.T) {
	s := openTest(t, Config{})
	want := testTransversalResult(100, 1)
	s.PutTransversal("t-1", want)
	s.Flush()
	got, ok := s.GetTransversal("t-1")
	if !ok {
		t.Fatal("GetTransversal after Put+Flush missed")
	}
	sameTransversal(t, got, want)
	if got.MISSize+got.Size != len(got.Transversal) {
		t.Fatal("MISSize + Size != n — the complement invariant broke in the codec")
	}
}

func TestColorPutGetRoundTrip(t *testing.T) {
	s := openTest(t, Config{})
	want := testColorResult(90, 2)
	s.PutColor("c-1", want)
	s.Flush()
	got, ok := s.GetColor("c-1")
	if !ok {
		t.Fatal("GetColor after Put+Flush missed")
	}
	sameColor(t, got, want)
}

// TestDurableKindConfusion is the kind-safety acceptance test: a record
// of one workload kind must never be served by another kind's getter,
// and the mismatch must be a clean miss — not corruption, and not a
// dropped entry.
func TestDurableKindConfusion(t *testing.T) {
	s := openTest(t, Config{})
	solve := testResult(60, 1)
	trans := testTransversalResult(60, 2)
	color := testColorResult(60, 3)
	s.Put("solve-key", solve)
	s.PutTransversal("trans-key", trans)
	s.PutColor("color-key", color)
	s.Flush()

	if _, ok := s.Get("trans-key"); ok {
		t.Fatal("Get served a transversal record")
	}
	if _, ok := s.Get("color-key"); ok {
		t.Fatal("Get served a color record")
	}
	if _, ok := s.GetTransversal("solve-key"); ok {
		t.Fatal("GetTransversal served a solve record")
	}
	if _, ok := s.GetTransversal("color-key"); ok {
		t.Fatal("GetTransversal served a color record")
	}
	if _, ok := s.GetColor("solve-key"); ok {
		t.Fatal("GetColor served a solve record")
	}
	if _, ok := s.GetColor("trans-key"); ok {
		t.Fatal("GetColor served a transversal record")
	}
	c := s.Counters()
	if c.CorruptSkipped != 0 {
		t.Fatalf("corrupt_skipped = %d after kind mismatches, want 0 — wrong kind is a miss, not corruption", c.CorruptSkipped)
	}
	if c.Misses != 6 {
		t.Fatalf("misses = %d, want 6 (one per cross-kind probe)", c.Misses)
	}
	// The entries survive the cross-kind probes: each kind's own getter
	// still hits.
	if got, ok := s.Get("solve-key"); !ok {
		t.Fatal("solve record dropped by cross-kind probes")
	} else {
		sameResult(t, got, solve)
	}
	if got, ok := s.GetTransversal("trans-key"); !ok {
		t.Fatal("transversal record dropped by cross-kind probes")
	} else {
		sameTransversal(t, got, trans)
	}
	if got, ok := s.GetColor("color-key"); !ok {
		t.Fatal("color record dropped by cross-kind probes")
	} else {
		sameColor(t, got, color)
	}
}

func TestReopenRecoversAllKinds(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, Config{Dir: dir})
	solve := testResult(50, 1)
	trans := testTransversalResult(50, 2)
	color := testColorResult(50, 3)
	s.Put("solve-key", solve)
	s.PutTransversal("trans-key", trans)
	s.PutColor("color-key", color)
	s.Flush()
	s.Close()

	s2 := openTest(t, Config{Dir: dir})
	c := s2.Counters()
	if c.Recovered != 3 || c.CorruptSkipped != 0 {
		t.Fatalf("recovery counters = %+v, want 3 recovered / 0 corrupt", c)
	}
	got, ok := s2.Get("solve-key")
	if !ok {
		t.Fatal("solve record lost across reopen")
	}
	sameResult(t, got, solve)
	gotT, ok := s2.GetTransversal("trans-key")
	if !ok {
		t.Fatal("transversal record lost across reopen")
	}
	sameTransversal(t, gotT, trans)
	gotC, ok := s2.GetColor("color-key")
	if !ok {
		t.Fatal("color record lost across reopen")
	}
	sameColor(t, gotC, color)
}

func TestColorTracedResultsNotPersisted(t *testing.T) {
	s := openTest(t, Config{})
	res := testColorResult(30, 1)
	res.Classes[1].Trace = []hypermis.RoundTrace{{}}
	s.PutColor("traced", res)
	trans := testTransversalResult(30, 1)
	trans.Trace = []hypermis.RoundTrace{{}}
	s.PutTransversal("traced-t", trans)
	s.Flush()
	if _, ok := s.GetColor("traced"); ok {
		t.Fatal("traced color result was persisted; traces are memory-only")
	}
	if _, ok := s.GetTransversal("traced-t"); ok {
		t.Fatal("traced transversal result was persisted; traces are memory-only")
	}
	if c := s.Counters(); c.Writes != 0 || c.WriteErrors != 0 {
		t.Fatalf("counters = %+v, want a silent skip (no write, no error)", c)
	}
}

func TestColorDecodeRejectsTamperedPayloads(t *testing.T) {
	good := encodeColorPayload("key", testColorResult(20, 1))
	if _, _, err := decodeColorPayload(good); err != nil {
		t.Fatalf("round-trip decode failed: %v", err)
	}
	cases := map[string]*hypermis.ColorResult{}
	// A vertex colored outside the palette.
	bad := testColorResult(20, 1)
	bad.Colors[5] = bad.NumColors
	cases["color out of range"] = bad
	// A class whose declared size disagrees with the color vector.
	bad = testColorResult(20, 1)
	bad.Classes[0].Size++
	cases["class size mismatch"] = bad
	for name, res := range cases {
		if _, _, err := decodeColorPayload(encodeColorPayload("key", res)); err == nil {
			t.Errorf("decodeColorPayload accepted a payload with %s", name)
		}
	}
	if _, _, err := decodeColorPayload(good[:len(good)/2]); err == nil {
		t.Error("decodeColorPayload accepted a truncated payload")
	}
	if _, _, err := decodeColorPayload(nil); err == nil {
		t.Error("decodeColorPayload accepted an empty payload")
	}
}

func TestTransversalDecodeRejectsMalformedPayloads(t *testing.T) {
	good := encodeTransversalPayload("key", testTransversalResult(20, 1))
	if _, _, err := decodeTransversalPayload(good); err != nil {
		t.Fatalf("round-trip decode failed: %v", err)
	}
	bad := testTransversalResult(20, 1)
	bad.Size++
	if _, _, err := decodeTransversalPayload(encodeTransversalPayload("key", bad)); err == nil {
		t.Error("decodeTransversalPayload accepted a cardinality mismatch")
	}
	if _, _, err := decodeTransversalPayload(good[:len(good)/2]); err == nil {
		t.Error("decodeTransversalPayload accepted a truncated payload")
	}
}

func TestRecoverScanEmptyAndGarbage(t *testing.T) {
	if recs, n, corrupt := recoverScan(nil); len(recs) != 0 || n != 0 || corrupt != 0 {
		t.Fatalf("empty scan = (%d recs, %d, %d), want zeros", len(recs), n, corrupt)
	}
	// Pure garbage with no magic: nothing valid, nothing recovered.
	recs, n, _ := recoverScan(bytes.Repeat([]byte{0x5a}, 4096))
	if len(recs) != 0 || n != 0 {
		t.Fatalf("garbage scan = (%d recs, validLen %d), want none", len(recs), n)
	}
}

func TestRecoverScanResyncsAcrossCorruptLength(t *testing.T) {
	// Two valid frames with the first frame's length field smashed: the
	// scan must not trust the bogus length and must still find frame 2.
	frame := func(key string, seed int) []byte {
		p := encodePayload(key, testResult(20, seed))
		b := []byte(frameMagic)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(p)))
		b = binary.LittleEndian.AppendUint32(b, crc32.Checksum(p, castagnoli))
		return append(b, p...)
	}
	data := append(frame("first", 1), frame("second", 2)...)
	binary.LittleEndian.PutUint32(data[4:8], maxRecordBytes+100)
	recs, _, corrupt := recoverScan(data)
	if len(recs) != 1 || recs[0].key != "second" {
		t.Fatalf("recovered %d records, want exactly the second frame", len(recs))
	}
	if corrupt == 0 {
		t.Fatal("smashed length field not counted as corruption")
	}
}
