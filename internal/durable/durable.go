// Package durable is the disk tier of the result cache: an append-only,
// content-addressed store of solve results that survives restarts,
// crashes, and deploys, so a rebooted hypermisd keeps the hit rate its
// predecessor earned. It sits behind the in-memory LRU in
// internal/service — lookup order is memory → durable → solve, and both
// tiers fill on a miss.
//
// # Record format
//
// A store is a directory of segment files (seg-<id>.log). Each segment
// is a sequence of CRC-framed records:
//
//	magic "HMR1" (4 bytes)
//	payload length (uint32 LE)
//	CRC32C of the payload (uint32 LE)
//	payload
//
// The payload is a versioned, varint-encoded tuple whose leading
// version byte doubles as the workload-kind discriminator:
//
//   - version 1 (solve): the canonical service key (instance digest +
//     canonicalized options), the resolved algorithm name, round count,
//     MIS cardinality, PRAM depth/work, the mask length n, and the MIS
//     itself in the hgio.WriteVertexSet encoding (one vertex id per
//     line) — the same certificate format the CLI reads and writes, so
//     a segment record is inspectable with standard tools.
//   - version 2 (transversal): byte-identical layout to version 1 with
//     the transversal mask and its cardinality in place of the MIS
//     (the complementary MIS size is n − size, so it is not stored).
//   - version 3 (coloring): key, algorithm name, total rounds, the
//     color count, n, the n per-vertex colors as uvarints, and one
//     (size, n, m, rounds) tuple per color class in peel order.
//
// Kinds never cross: the typed getters (Get, GetTransversal, GetColor)
// treat a record of any other version under the requested key as a
// clean miss — not corruption — and the service's cache keys are
// kind-prefixed anyway, so a solve key can never name a color record.
// Records carrying a per-round trace are never persisted: traces are
// telemetry, and a key with trace=t demands one, so such results stay
// memory-only.
//
// # Write path
//
// Put never blocks the solve hot path: records are handed to a bounded
// write-behind queue drained by one writer goroutine. A full queue
// drops the record (counted in write_errors) — the durable tier is a
// cache, and losing a fill costs a future miss, not correctness. The
// writer appends to the active segment, rotates it at SegmentBytes, and
// compacts (deletes) whole oldest segments while the store exceeds
// MaxBytes. Fsync policy is configurable: "never" trusts the OS,
// "interval" syncs at most every FsyncInterval, "always" syncs after
// every record (the crash-proof setting the CI kill -9 smoke uses).
//
// # Recovery
//
// Open scans every segment sequentially. A frame whose payload falls
// off the end of the file is a torn tail — the segment is truncated
// there and the scan keeps the prefix. A frame with a bad magic,
// implausible length, CRC mismatch, or undecodable payload is skipped
// (corrupt_skipped counts it) and the scan resynchronizes on the next
// magic, so one flipped byte costs one record, not the segment. Reads
// CRC-check again at Get time (disk can rot after boot), and the
// service can additionally re-verify a recovered MIS against the
// submitted instance before serving (-cacheverify). A corrupt store can
// therefore never produce a wrong answer — only a cache miss.
package durable

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	hypermis "repro"
	"repro/internal/faultinject"
	"repro/internal/hgio"
)

// Fsync policies for Config.Fsync.
const (
	FsyncNever    = "never"
	FsyncInterval = "interval"
	FsyncAlways   = "always"
)

const (
	frameMagic = "HMR1"
	headerSize = 12 // magic(4) + payload length(4) + CRC32C(4)
	// Record versions double as workload-kind discriminators — see the
	// package comment.
	recordVersion            = 1 // solve (MIS) record
	recordVersionTransversal = 2
	recordVersionColor       = 3
	// maxRecordBytes bounds a single record's payload; a length field
	// beyond it is treated as corruption, not an allocation request.
	maxRecordBytes = 64 << 20
	// maxRecordVertices bounds the declared mask length for the same
	// reason (the service caps instances far lower).
	maxRecordVertices = 64 << 20
	// maxKeyBytes bounds the embedded JobKey (real keys are ~120 bytes).
	maxKeyBytes = 4096
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

var errBadRecord = errors.New("durable: bad record")

// Config sizes a Store. The zero value of any field selects its
// default.
type Config struct {
	// Dir is the segment directory (created if absent). Required.
	Dir string
	// MaxBytes is the on-disk byte budget across all segments (default
	// 256 MiB). When exceeded, whole oldest segments are deleted.
	MaxBytes int64
	// SegmentBytes is the rotation threshold for the active segment
	// (default 8 MiB).
	SegmentBytes int64
	// Fsync is the durability policy: FsyncNever, FsyncInterval
	// (default), or FsyncAlways.
	Fsync string
	// FsyncInterval is the sync cadence under FsyncInterval (default 1s).
	FsyncInterval time.Duration
	// QueueDepth bounds the write-behind queue (default 256); a full
	// queue drops the write rather than blocking the solve path.
	QueueDepth int
	// Faults, when non-nil, injects disk faults (failed writes, short
	// writes, read bit-flips) — see internal/faultinject. Nil injects
	// nothing.
	Faults *faultinject.Injector
}

func (c Config) withDefaults() (Config, error) {
	if c.Dir == "" {
		return c, errors.New("durable: Config.Dir is required")
	}
	if c.MaxBytes <= 0 {
		c.MaxBytes = 256 << 20
	}
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 8 << 20
	}
	if c.Fsync == "" {
		c.Fsync = FsyncInterval
	}
	switch c.Fsync {
	case FsyncNever, FsyncInterval, FsyncAlways:
	default:
		return c, fmt.Errorf("durable: unknown fsync policy %q (want %s, %s or %s)",
			c.Fsync, FsyncNever, FsyncInterval, FsyncAlways)
	}
	if c.FsyncInterval <= 0 {
		c.FsyncInterval = time.Second
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	return c, nil
}

// segment is one on-disk log file. r stays open for pread-style Gets
// for the segment's whole lifetime; w is non-nil only on the active
// (append) segment.
type segment struct {
	id   uint64
	path string
	size int64
	r    *os.File
	w    *os.File
}

// recRef locates one record's payload: the segment, the payload's file
// offset and length, and the CRC the payload must still match at read
// time.
type recRef struct {
	seg *segment
	off int64
	n   uint32
	crc uint32
}

type writeReq struct {
	key     string
	payload []byte
	crc     uint32
	flush   chan struct{} // non-nil: sync and ack instead of writing
}

// Store is the durable result cache. Open creates one; Close flushes
// the write-behind queue and releases the files. All methods are safe
// for concurrent use, and every method on a nil *Store is a no-op miss,
// so callers can thread an optional store without nil checks.
type Store struct {
	cfg Config

	mu         sync.Mutex
	idx        map[string]recRef
	segs       []*segment // oldest → newest; the last may be active
	nextID     uint64
	totalBytes int64
	dirty      bool // unsynced appends on the active segment

	writeCh   chan writeReq
	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	hits           atomic.Int64
	misses         atomic.Int64
	writes         atomic.Int64
	writeErrors    atomic.Int64
	recovered      atomic.Int64
	corruptSkipped atomic.Int64
	compactions    atomic.Int64
	verifyFailed   atomic.Int64
}

// Counters is a snapshot of the store's lifetime counters and current
// occupancy — the source of the service's durable_* stats.
type Counters struct {
	Hits           int64
	Misses         int64
	Writes         int64
	WriteErrors    int64
	Recovered      int64
	CorruptSkipped int64
	Compactions    int64
	VerifyFailed   int64
	Entries        int
	Segments       int
	Bytes          int64
}

// Open recovers the store in cfg.Dir (creating it if absent) and starts
// the write-behind goroutine. Recovery is tolerant by construction:
// torn tails truncate, corrupt frames skip-and-resync, and nothing read
// from disk is trusted past its CRC — see the package comment.
func Open(cfg Config) (*Store, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	s := &Store{
		cfg:     cfg,
		idx:     make(map[string]recRef),
		writeCh: make(chan writeReq, cfg.QueueDepth),
		closed:  make(chan struct{}),
		nextID:  1,
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.compactLocked()
	s.mu.Unlock()
	s.wg.Add(1)
	go s.writer()
	return s, nil
}

// recover scans existing segments oldest-first, building the index
// (later records win for duplicate keys) and repairing torn tails.
func (s *Store) recover() error {
	entries, err := os.ReadDir(s.cfg.Dir)
	if err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	var ids []uint64
	for _, e := range entries {
		var id uint64
		if _, err := fmt.Sscanf(e.Name(), "seg-%016x.log", &id); err == nil {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		path := filepath.Join(s.cfg.Dir, fmt.Sprintf("seg-%016x.log", id))
		data, err := os.ReadFile(path)
		if err != nil {
			// An unreadable segment is total corruption of that segment:
			// count it once and move on — degradation, not refusal to boot.
			s.corruptSkipped.Add(1)
			continue
		}
		recs, validLen, corrupt := recoverScan(data)
		s.corruptSkipped.Add(corrupt)
		if validLen < int64(len(data)) {
			// Torn tail (or trailing garbage): cut it so the tear is
			// repaired once, not re-reported every boot.
			_ = os.Truncate(path, validLen)
		}
		if validLen == 0 {
			_ = os.Remove(path)
			if id >= s.nextID {
				s.nextID = id + 1
			}
			continue
		}
		r, err := os.Open(path)
		if err != nil {
			s.corruptSkipped.Add(1)
			continue
		}
		seg := &segment{id: id, path: path, size: validLen, r: r}
		s.segs = append(s.segs, seg)
		s.totalBytes += validLen
		for _, rec := range recs {
			s.idx[rec.key] = recRef{seg: seg, off: rec.off, n: rec.n, crc: rec.crc}
		}
		s.recovered.Add(int64(len(recs)))
		if id >= s.nextID {
			s.nextID = id + 1
		}
	}
	return nil
}

// recoveredRecord is one intact record found by recoverScan: its key
// and the payload's offset, length and CRC within the segment.
type recoveredRecord struct {
	key string
	off int64
	n   uint32
	crc uint32
}

// recoverScan walks one segment's raw bytes. It returns the intact
// records; validLen, the length of the prefix ending at the last intact
// record (anything after it that failed to parse — a torn tail or
// trailing corruption — should be truncated away); and the count of
// corrupt regions skipped. A bad frame never ends the scan if a later
// frame magic exists: corruption is skipped by resynchronizing on the
// magic rather than trusting the (possibly corrupt) length field, so
// one flipped byte costs one record. A frame that simply runs off the
// end of the file with no magic after it is a torn tail, not
// corruption — crashes mid-append are expected and not counted. It
// never panics on arbitrary input — FuzzRecoverSegment holds it to
// that.
func recoverScan(data []byte) (recs []recoveredRecord, validLen int64, corrupt int64) {
	magic := []byte(frameMagic)
	pos, lastGood := 0, 0
	// resync advances pos to the next frame magic at or after from,
	// reporting whether one was found.
	resync := func(from int) bool {
		if from > len(data) {
			return false
		}
		i := bytes.Index(data[from:], magic)
		if i < 0 {
			return false
		}
		pos = from + i
		return true
	}
	for pos+headerSize <= len(data) {
		if !bytes.Equal(data[pos:pos+4], magic) {
			corrupt++
			if !resync(pos + 1) {
				break
			}
			continue
		}
		n := binary.LittleEndian.Uint32(data[pos+4 : pos+8])
		crc := binary.LittleEndian.Uint32(data[pos+8 : pos+12])
		end := pos + headerSize + int(n)
		if n <= maxRecordBytes && end <= len(data) {
			payload := data[pos+headerSize : end]
			if crc32.Checksum(payload, castagnoli) == crc {
				if key, err := decodeRecordKey(payload); err == nil {
					recs = append(recs, recoveredRecord{key: key, off: int64(pos + headerSize), n: n, crc: crc})
					pos = end
					lastGood = pos
					continue
				}
			}
		}
		// The frame at pos is bad: implausible length, overrun, CRC
		// mismatch, or undecodable payload. Its own magic was valid, so
		// resync strictly past it.
		if !resync(pos + 4) {
			if n <= maxRecordBytes && end > len(data) {
				// Overran the end with nothing after: torn tail, the
				// normal crash-mid-append artifact — repaired by
				// truncation, not counted as corruption.
				break
			}
			corrupt++
			break
		}
		corrupt++
	}
	return recs, int64(lastGood), corrupt
}

// getPayload fetches and integrity-checks the raw payload for key: the
// bytes are CRC-checked again at read time (and run through the chaos
// bit-flip hook first); any mismatch drops the entry and reports a
// miss — corruption degrades, it never serves.
func (s *Store) getPayload(key string) ([]byte, recRef, bool) {
	s.mu.Lock()
	ref, ok := s.idx[key]
	s.mu.Unlock()
	if !ok {
		s.misses.Add(1)
		return nil, recRef{}, false
	}
	buf := make([]byte, ref.n)
	if _, err := ref.seg.r.ReadAt(buf, ref.off); err != nil {
		s.dropRef(key, ref)
		s.corruptSkipped.Add(1)
		s.misses.Add(1)
		return nil, recRef{}, false
	}
	s.cfg.Faults.DiskBitFlip(buf)
	if crc32.Checksum(buf, castagnoli) != ref.crc {
		s.dropRef(key, ref)
		s.corruptSkipped.Add(1)
		s.misses.Add(1)
		return nil, recRef{}, false
	}
	return buf, ref, true
}

// wrongKind counts a kind mismatch: the record under key is intact but
// belongs to a different workload. That is a clean miss, not
// corruption — the entry is NOT dropped, because the record is a valid
// answer for its own kind's getter.
func (s *Store) wrongKind() {
	s.misses.Add(1)
}

// corruptPayload drops key (it decoded wrong despite a matching CRC)
// and reports a miss.
func (s *Store) corruptPayload(key string, ref recRef) {
	s.dropRef(key, ref)
	s.corruptSkipped.Add(1)
	s.misses.Add(1)
}

// Get returns the stored solve result for key. A record of a different
// workload kind under the key is a clean miss; an undecodable payload
// drops the entry.
func (s *Store) Get(key string) (*hypermis.Result, bool) {
	if s == nil {
		return nil, false
	}
	buf, ref, ok := s.getPayload(key)
	if !ok {
		return nil, false
	}
	if len(buf) > 0 && (buf[0] == recordVersionTransversal || buf[0] == recordVersionColor) {
		s.wrongKind()
		return nil, false
	}
	gotKey, res, err := decodePayload(buf)
	if err != nil || gotKey != key {
		s.corruptPayload(key, ref)
		return nil, false
	}
	s.hits.Add(1)
	return res, true
}

// GetTransversal returns the stored minimal-transversal result for key,
// with the same kind-safety as Get.
func (s *Store) GetTransversal(key string) (*hypermis.TransversalResult, bool) {
	if s == nil {
		return nil, false
	}
	buf, ref, ok := s.getPayload(key)
	if !ok {
		return nil, false
	}
	if len(buf) > 0 && (buf[0] == recordVersion || buf[0] == recordVersionColor) {
		s.wrongKind()
		return nil, false
	}
	gotKey, res, err := decodeTransversalPayload(buf)
	if err != nil || gotKey != key {
		s.corruptPayload(key, ref)
		return nil, false
	}
	s.hits.Add(1)
	return res, true
}

// GetColor returns the stored coloring result for key, with the same
// kind-safety as Get.
func (s *Store) GetColor(key string) (*hypermis.ColorResult, bool) {
	if s == nil {
		return nil, false
	}
	buf, ref, ok := s.getPayload(key)
	if !ok {
		return nil, false
	}
	if len(buf) > 0 && (buf[0] == recordVersion || buf[0] == recordVersionTransversal) {
		s.wrongKind()
		return nil, false
	}
	gotKey, res, err := decodeColorPayload(buf)
	if err != nil || gotKey != key {
		s.corruptPayload(key, ref)
		return nil, false
	}
	s.hits.Add(1)
	return res, true
}

// Put schedules key → res for persistence on the write-behind queue.
// It never blocks: a full queue drops the record (a future miss, not an
// error the caller can act on) and counts it in write_errors. Traced
// results are skipped entirely — see the package comment.
func (s *Store) Put(key string, res *hypermis.Result) {
	if s == nil || res == nil || len(res.Trace) > 0 || len(key) > maxKeyBytes {
		return
	}
	s.putPayload(key, encodePayload(key, res))
}

// PutTransversal schedules a minimal-transversal record, with the same
// never-block, skip-traced semantics as Put.
func (s *Store) PutTransversal(key string, res *hypermis.TransversalResult) {
	if s == nil || res == nil || len(res.Trace) > 0 || len(key) > maxKeyBytes {
		return
	}
	s.putPayload(key, encodeTransversalPayload(key, res))
}

// PutColor schedules a coloring record, with the same never-block
// semantics as Put. A result whose classes carry per-round traces is
// telemetry and is skipped, like a traced solve.
func (s *Store) PutColor(key string, res *hypermis.ColorResult) {
	if s == nil || res == nil || len(key) > maxKeyBytes {
		return
	}
	for _, c := range res.Classes {
		if len(c.Trace) > 0 {
			return
		}
	}
	s.putPayload(key, encodeColorPayload(key, res))
}

func (s *Store) putPayload(key string, payload []byte) {
	select {
	case <-s.closed:
		return
	default:
	}
	req := writeReq{key: key, payload: payload, crc: crc32.Checksum(payload, castagnoli)}
	select {
	case s.writeCh <- req:
	default:
		s.writeErrors.Add(1)
	}
}

// MarkVerifyFailed records that a served-from-disk MIS failed
// verification against its instance and drops the entry so it cannot
// be served again. The service calls it on -cacheverify rejections.
func (s *Store) MarkVerifyFailed(key string) {
	if s == nil {
		return
	}
	s.verifyFailed.Add(1)
	s.mu.Lock()
	delete(s.idx, key)
	s.mu.Unlock()
}

// dropRef removes key from the index iff it still points at ref (a
// concurrent rewrite of the key must not be clobbered).
func (s *Store) dropRef(key string, ref recRef) {
	s.mu.Lock()
	if cur, ok := s.idx[key]; ok && cur == ref {
		delete(s.idx, key)
	}
	s.mu.Unlock()
}

// Flush blocks until every record queued before the call is on disk
// (synced under FsyncAlways/FsyncInterval semantics: Flush always ends
// with a sync of the active segment).
func (s *Store) Flush() {
	if s == nil {
		return
	}
	done := make(chan struct{})
	select {
	case s.writeCh <- writeReq{flush: done}:
		select {
		case <-done:
		case <-s.closed:
			// Closing: Close drains the queue and syncs before
			// returning, so there is nothing left to wait for here.
		}
	case <-s.closed:
	}
}

// Close flushes the queue, syncs, and releases every file handle. Gets
// after Close degrade to misses. Safe to call more than once; nil-safe.
func (s *Store) Close() error {
	if s == nil {
		return nil
	}
	s.closeOnce.Do(func() { close(s.closed) })
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, seg := range s.segs {
		if seg.w != nil {
			_ = seg.w.Sync()
			_ = seg.w.Close()
			seg.w = nil
		}
		_ = seg.r.Close()
	}
	return nil
}

// Counters snapshots the store's counters and occupancy.
func (s *Store) Counters() Counters {
	if s == nil {
		return Counters{}
	}
	s.mu.Lock()
	entries := len(s.idx)
	segments := len(s.segs)
	bytes := s.totalBytes
	s.mu.Unlock()
	return Counters{
		Hits:           s.hits.Load(),
		Misses:         s.misses.Load(),
		Writes:         s.writes.Load(),
		WriteErrors:    s.writeErrors.Load(),
		Recovered:      s.recovered.Load(),
		CorruptSkipped: s.corruptSkipped.Load(),
		Compactions:    s.compactions.Load(),
		VerifyFailed:   s.verifyFailed.Load(),
		Entries:        entries,
		Segments:       segments,
		Bytes:          bytes,
	}
}

// Len reports the number of indexed entries.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.idx)
}

// writer is the single write-behind goroutine: it drains the queue,
// applies the fsync policy, rotates the active segment, and compacts
// against the byte budget. On close it drains whatever is queued, then
// syncs and exits.
func (s *Store) writer() {
	defer s.wg.Done()
	var tickC <-chan time.Time
	if s.cfg.Fsync == FsyncInterval {
		t := time.NewTicker(s.cfg.FsyncInterval)
		defer t.Stop()
		tickC = t.C
	}
	for {
		select {
		case req := <-s.writeCh:
			s.handleWrite(req)
		case <-tickC:
			s.syncActive()
		case <-s.closed:
			for {
				select {
				case req := <-s.writeCh:
					s.handleWrite(req)
				default:
					s.syncActive()
					return
				}
			}
		}
	}
}

func (s *Store) handleWrite(req writeReq) {
	if req.flush != nil {
		s.syncActive()
		close(req.flush)
		return
	}
	if err := s.cfg.Faults.DiskWriteError(); err != nil {
		s.writeErrors.Add(1)
		return
	}
	s.mu.Lock()
	seg, err := s.activeLocked()
	s.mu.Unlock()
	if err != nil {
		s.writeErrors.Add(1)
		return
	}
	frame := make([]byte, 0, headerSize+len(req.payload))
	frame = append(frame, frameMagic...)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(req.payload)))
	frame = binary.LittleEndian.AppendUint32(frame, req.crc)
	frame = append(frame, req.payload...)
	want := len(frame)
	// The short-write fault truncates the frame mid-record, tearing it
	// exactly the way a crash between write() calls would.
	attempt := s.cfg.Faults.DiskShortWrite(want)
	n, werr := seg.w.Write(frame[:attempt])
	s.mu.Lock()
	payloadOff := seg.size + int64(headerSize)
	seg.size += int64(n)
	s.totalBytes += int64(n)
	if werr != nil || n < want {
		s.writeErrors.Add(1)
	} else {
		s.idx[req.key] = recRef{seg: seg, off: payloadOff, n: uint32(len(req.payload)), crc: req.crc}
		s.writes.Add(1)
		s.dirty = true
	}
	if seg.size >= s.cfg.SegmentBytes {
		s.rotateLocked()
	}
	s.compactLocked()
	s.mu.Unlock()
	if s.cfg.Fsync == FsyncAlways {
		s.syncActive()
	}
}

// activeLocked returns the append segment, creating it lazily (a boot
// that never writes leaves no empty files behind).
func (s *Store) activeLocked() (*segment, error) {
	if len(s.segs) > 0 {
		if last := s.segs[len(s.segs)-1]; last.w != nil {
			return last, nil
		}
	}
	id := s.nextID
	s.nextID++
	path := filepath.Join(s.cfg.Dir, fmt.Sprintf("seg-%016x.log", id))
	w, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	r, err := os.Open(path)
	if err != nil {
		_ = w.Close()
		return nil, err
	}
	seg := &segment{id: id, path: path, r: r, w: w}
	s.segs = append(s.segs, seg)
	return seg, nil
}

// rotateLocked seals the active segment: sync, close the write handle,
// and let the next write open a fresh one.
func (s *Store) rotateLocked() {
	if len(s.segs) == 0 {
		return
	}
	last := s.segs[len(s.segs)-1]
	if last.w == nil {
		return
	}
	_ = last.w.Sync()
	_ = last.w.Close()
	last.w = nil
	s.dirty = false
}

// compactLocked deletes whole oldest segments while the store exceeds
// its byte budget. The active segment is never deleted — rotation
// bounds it, so the budget is enforced to within one segment.
func (s *Store) compactLocked() {
	for s.totalBytes > s.cfg.MaxBytes && len(s.segs) > 1 {
		old := s.segs[0]
		for key, ref := range s.idx {
			if ref.seg == old {
				delete(s.idx, key)
			}
		}
		_ = old.r.Close()
		_ = os.Remove(old.path)
		s.totalBytes -= old.size
		s.segs = s.segs[1:]
		s.compactions.Add(1)
	}
}

// syncActive fsyncs the active segment if it has unsynced appends.
func (s *Store) syncActive() {
	s.mu.Lock()
	var w *os.File
	if s.dirty && len(s.segs) > 0 {
		w = s.segs[len(s.segs)-1].w
		s.dirty = false
	}
	s.mu.Unlock()
	if w != nil {
		_ = w.Sync()
	}
}

// encodePayload serializes one record's payload — see the package
// comment for the layout. The MIS mask reuses the hgio vertex-set
// encoding, byte-for-byte what `hypermis solve -out` writes.
func encodePayload(key string, res *hypermis.Result) []byte {
	var vs bytes.Buffer
	_ = hgio.WriteVertexSet(&vs, res.MIS) // a bytes.Buffer write cannot fail
	name := res.Algorithm.String()
	b := make([]byte, 0, 1+2*binary.MaxVarintLen64+len(key)+len(name)+4*binary.MaxVarintLen64+vs.Len())
	b = append(b, recordVersion)
	b = binary.AppendUvarint(b, uint64(len(key)))
	b = append(b, key...)
	b = binary.AppendUvarint(b, uint64(len(name)))
	b = append(b, name...)
	b = binary.AppendUvarint(b, uint64(res.Rounds))
	b = binary.AppendUvarint(b, uint64(res.Size))
	b = binary.AppendUvarint(b, uint64(res.Depth))
	b = binary.AppendUvarint(b, uint64(res.Work))
	b = binary.AppendUvarint(b, uint64(len(res.MIS)))
	b = append(b, vs.Bytes()...)
	return b
}

// payloadReader is the shared varint cursor the per-kind decoders use.
type payloadReader struct {
	p   []byte
	pos int
}

func (r *payloadReader) readU() (uint64, bool) {
	v, n := binary.Uvarint(r.p[r.pos:])
	if n <= 0 {
		return 0, false
	}
	r.pos += n
	return v, true
}

func (r *payloadReader) readStr(max int) (string, bool) {
	l, ok := r.readU()
	if !ok || l > uint64(max) || uint64(len(r.p)-r.pos) < l {
		return "", false
	}
	v := string(r.p[r.pos : r.pos+int(l)])
	r.pos += int(l)
	return v, true
}

// readHeader reads the key and algorithm-name fields every kind's
// payload starts with (after the version byte).
func (r *payloadReader) readHeader() (key string, algo hypermis.Algorithm, ok bool) {
	key, ok = r.readStr(maxKeyBytes)
	if !ok || key == "" {
		return "", 0, false
	}
	name, ok := r.readStr(64)
	if !ok {
		return "", 0, false
	}
	a, err := hypermis.ParseAlgorithm(name)
	if err != nil {
		return "", 0, false
	}
	return key, a, true
}

// decodeMaskTail reads the (size, mask-length, mask) tail shared by the
// solve and transversal layouts, validating that the mask's cardinality
// matches the declared size.
func (r *payloadReader) decodeMaskTail(size uint64) ([]bool, bool) {
	n, ok := r.readU()
	if !ok || n > maxRecordVertices || size > n {
		return nil, false
	}
	mask, err := hgio.ReadVertexSet(bytes.NewReader(r.p[r.pos:]), int(n))
	if err != nil {
		return nil, false
	}
	card := 0
	for _, in := range mask {
		if in {
			card++
		}
	}
	if uint64(card) != size {
		return nil, false
	}
	return mask, true
}

// decodeRecordKey extracts the key from a payload of any known kind,
// running the kind's full decode so recovery only indexes records that
// will later serve. It is what recoverScan trusts.
func decodeRecordKey(p []byte) (string, error) {
	if len(p) == 0 {
		return "", errBadRecord
	}
	switch p[0] {
	case recordVersion:
		key, _, err := decodePayload(p)
		return key, err
	case recordVersionTransversal:
		key, _, err := decodeTransversalPayload(p)
		return key, err
	case recordVersionColor:
		key, _, err := decodeColorPayload(p)
		return key, err
	}
	return "", errBadRecord
}

// decodePayload parses one solve record's payload back into its key and
// result, rejecting anything malformed — wrong version, truncated
// varints, out-of-range lengths, a cardinality that disagrees with the
// mask, or an algorithm name the registry no longer knows.
func decodePayload(p []byte) (string, *hypermis.Result, error) {
	if len(p) == 0 || p[0] != recordVersion {
		return "", nil, errBadRecord
	}
	r := &payloadReader{p: p, pos: 1}
	key, algo, ok := r.readHeader()
	if !ok {
		return "", nil, errBadRecord
	}
	rounds, ok1 := r.readU()
	size, ok2 := r.readU()
	depth, ok3 := r.readU()
	work, ok4 := r.readU()
	if !ok1 || !ok2 || !ok3 || !ok4 {
		return "", nil, errBadRecord
	}
	mask, ok := r.decodeMaskTail(size)
	if !ok {
		return "", nil, errBadRecord
	}
	return key, &hypermis.Result{
		MIS:       mask,
		Size:      int(size),
		Algorithm: algo,
		Rounds:    int(rounds),
		Depth:     int64(depth),
		Work:      int64(work),
	}, nil
}

// encodeTransversalPayload serializes a minimal-transversal record:
// the version-1 layout with the transversal mask and its cardinality in
// place of the MIS (the MIS size is n − size, so it is derived on
// decode rather than stored).
func encodeTransversalPayload(key string, res *hypermis.TransversalResult) []byte {
	var vs bytes.Buffer
	_ = hgio.WriteVertexSet(&vs, res.Transversal)
	name := res.Algorithm.String()
	b := make([]byte, 0, 1+2*binary.MaxVarintLen64+len(key)+len(name)+4*binary.MaxVarintLen64+vs.Len())
	b = append(b, recordVersionTransversal)
	b = binary.AppendUvarint(b, uint64(len(key)))
	b = append(b, key...)
	b = binary.AppendUvarint(b, uint64(len(name)))
	b = append(b, name...)
	b = binary.AppendUvarint(b, uint64(res.Rounds))
	b = binary.AppendUvarint(b, uint64(res.Size))
	b = binary.AppendUvarint(b, uint64(res.Depth))
	b = binary.AppendUvarint(b, uint64(res.Work))
	b = binary.AppendUvarint(b, uint64(len(res.Transversal)))
	b = append(b, vs.Bytes()...)
	return b
}

func decodeTransversalPayload(p []byte) (string, *hypermis.TransversalResult, error) {
	if len(p) == 0 || p[0] != recordVersionTransversal {
		return "", nil, errBadRecord
	}
	r := &payloadReader{p: p, pos: 1}
	key, algo, ok := r.readHeader()
	if !ok {
		return "", nil, errBadRecord
	}
	rounds, ok1 := r.readU()
	size, ok2 := r.readU()
	depth, ok3 := r.readU()
	work, ok4 := r.readU()
	if !ok1 || !ok2 || !ok3 || !ok4 {
		return "", nil, errBadRecord
	}
	mask, ok := r.decodeMaskTail(size)
	if !ok {
		return "", nil, errBadRecord
	}
	return key, &hypermis.TransversalResult{
		Transversal: mask,
		Size:        int(size),
		MISSize:     len(mask) - int(size),
		Algorithm:   algo,
		Rounds:      int(rounds),
		Depth:       int64(depth),
		Work:        int64(work),
	}, nil
}

// encodeColorPayload serializes a coloring record: key, algorithm,
// total rounds, color count, n, the n per-vertex colors, and one
// (size, n, m, rounds) telemetry tuple per color class in peel order.
func encodeColorPayload(key string, res *hypermis.ColorResult) []byte {
	name := res.Algorithm.String()
	b := make([]byte, 0, 1+len(key)+len(name)+(len(res.Colors)+4*len(res.Classes)+8)*binary.MaxVarintLen64)
	b = append(b, recordVersionColor)
	b = binary.AppendUvarint(b, uint64(len(key)))
	b = append(b, key...)
	b = binary.AppendUvarint(b, uint64(len(name)))
	b = append(b, name...)
	b = binary.AppendUvarint(b, uint64(res.Rounds))
	b = binary.AppendUvarint(b, uint64(res.NumColors))
	b = binary.AppendUvarint(b, uint64(len(res.Colors)))
	for _, c := range res.Colors {
		b = binary.AppendUvarint(b, uint64(c))
	}
	for _, cl := range res.Classes {
		b = binary.AppendUvarint(b, uint64(cl.Size))
		b = binary.AppendUvarint(b, uint64(cl.N))
		b = binary.AppendUvarint(b, uint64(cl.M))
		b = binary.AppendUvarint(b, uint64(cl.Rounds))
	}
	return b
}

// decodeColorPayload parses and cross-validates a coloring record: one
// class tuple per color, every vertex's color in range, and every
// class's declared size equal to the recomputed count of its color —
// tampering that keeps the CRC intact still cannot smuggle an
// inconsistent coloring past recovery.
func decodeColorPayload(p []byte) (string, *hypermis.ColorResult, error) {
	if len(p) == 0 || p[0] != recordVersionColor {
		return "", nil, errBadRecord
	}
	r := &payloadReader{p: p, pos: 1}
	key, algo, ok := r.readHeader()
	if !ok {
		return "", nil, errBadRecord
	}
	rounds, ok1 := r.readU()
	numColors, ok2 := r.readU()
	n, ok3 := r.readU()
	if !ok1 || !ok2 || !ok3 || n > maxRecordVertices || numColors > n {
		return "", nil, errBadRecord
	}
	colors := make([]int, n)
	counts := make([]int, numColors)
	for i := range colors {
		c, ok := r.readU()
		if !ok || c >= numColors {
			return "", nil, errBadRecord
		}
		colors[i] = int(c)
		counts[c]++
	}
	classes := make([]hypermis.ColorClass, numColors)
	sizes := make([]int, numColors)
	for i := range classes {
		size, ok1 := r.readU()
		cn, ok2 := r.readU()
		m, ok3 := r.readU()
		crounds, ok4 := r.readU()
		if !ok1 || !ok2 || !ok3 || !ok4 ||
			size != uint64(counts[i]) || cn > n || m > maxRecordVertices {
			return "", nil, errBadRecord
		}
		classes[i] = hypermis.ColorClass{Size: int(size), N: int(cn), M: int(m), Rounds: int(crounds)}
		sizes[i] = int(size)
	}
	return key, &hypermis.ColorResult{
		Colors:     colors,
		NumColors:  int(numColors),
		ClassSizes: sizes,
		Algorithm:  algo,
		Rounds:     int(rounds),
		Classes:    classes,
	}, nil
}
