package durable

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"

	hypermis "repro"
)

// FuzzRecoverSegment throws arbitrary bytes at the recovery scan — the
// one code path that must digest whatever a crash, a torn write, or rot
// left on disk. Invariants: no panic, validLen within bounds, every
// reported record's frame decodes to the key the scan indexed, and the
// scan of the validLen prefix is a fixed point (truncation repairs the
// file once, it does not change what is recovered).
func FuzzRecoverSegment(f *testing.F) {
	frame := func(key string, res *hypermis.Result) []byte {
		p := encodePayload(key, res)
		b := append([]byte{}, frameMagic...)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(p)))
		b = binary.LittleEndian.AppendUint32(b, crc32.Checksum(p, castagnoli))
		return append(b, p...)
	}
	mk := func(n, seed int) *hypermis.Result {
		mask := make([]bool, n)
		size := 0
		for i := range mask {
			if (i+seed)%3 == 0 {
				mask[i] = true
				size++
			}
		}
		return &hypermis.Result{MIS: mask, Size: size, Algorithm: hypermis.AlgGreedy, Rounds: 1}
	}

	valid := append(frame("alpha", mk(16, 0)), frame("beta", mk(32, 1))...)
	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:len(valid)-7]) // torn tail
	flipped := append([]byte{}, valid...)
	flipped[len(flipped)/2] ^= 0x40 // payload corruption
	f.Add(flipped)
	smashed := append([]byte{}, valid...)
	binary.LittleEndian.PutUint32(smashed[4:8], 1<<31) // absurd length
	f.Add(smashed)
	f.Add(append(bytes.Repeat([]byte{0xaa}, 64), valid...))   // garbage prefix
	f.Add([]byte(frameMagic))                                 // bare magic
	f.Add(append([]byte(frameMagic), 0, 0, 0, 0, 0, 0, 0, 0)) // empty frame, zero CRC

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, validLen, corrupt := recoverScan(data)
		if validLen < 0 || validLen > int64(len(data)) {
			t.Fatalf("validLen %d out of [0, %d]", validLen, len(data))
		}
		if corrupt < 0 {
			t.Fatalf("negative corrupt count %d", corrupt)
		}
		for _, r := range recs {
			end := r.off + int64(r.n)
			if r.off < headerSize || end > int64(len(data)) {
				t.Fatalf("record [%d, %d) outside data of %d bytes", r.off, end, len(data))
			}
			payload := data[r.off:end]
			if crc32.Checksum(payload, castagnoli) != r.crc {
				t.Fatal("reported record fails its own CRC")
			}
			key, res, err := decodePayload(payload)
			if err != nil {
				t.Fatalf("reported record does not decode: %v", err)
			}
			if key != r.key {
				t.Fatalf("indexed key %q, payload decodes to %q", r.key, key)
			}
			if res == nil || len(res.MIS) < res.Size {
				t.Fatal("decoded record with impossible mask/size")
			}
		}
		// Rescanning the kept prefix must reproduce the same records —
		// this is the invariant that makes boot-time truncation safe.
		recs2, validLen2, _ := recoverScan(data[:validLen])
		if validLen2 != validLen || len(recs2) != len(recs) {
			t.Fatalf("rescan of valid prefix: %d records, validLen %d; first scan: %d, %d",
				len(recs2), validLen2, len(recs), validLen)
		}
	})
}
