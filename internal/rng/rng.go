// Package rng provides deterministic, splittable pseudo-random number
// generation for parallel algorithms.
//
// The MIS algorithms in this repository (SBL, BL, KUW, Luby) all make
// per-vertex independent random choices inside parallel rounds. To keep
// runs reproducible regardless of goroutine scheduling, randomness is
// organized as a tree of streams: a root stream derived from a seed, and
// child streams derived deterministically from (parent state, index).
// Two vertices marking themselves in the same round therefore draw from
// unrelated streams whose values do not depend on execution order.
//
// The generator is xoshiro256** seeded via SplitMix64, the construction
// recommended by the xoshiro authors. It is not cryptographically secure,
// which is irrelevant here; the algorithms only require limited
// independence (the analyses in the paper use pairwise/Chernoff-style
// arguments).
package rng

import (
	"math"
	"math/bits"
)

// Stream is a deterministic pseudo-random stream. The zero value is not
// valid; use New, NewFromState, or a parent stream's Child/Split.
type Stream struct {
	s0, s1, s2, s3 uint64
}

// splitmix64 advances a SplitMix64 state and returns the next output.
// It is used for seeding and for deriving child streams.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a stream seeded from seed. Distinct seeds yield streams
// that are, for all practical purposes, independent.
func New(seed uint64) *Stream {
	st := seed
	return &Stream{
		s0: splitmix64(&st),
		s1: splitmix64(&st),
		s2: splitmix64(&st),
		s3: splitmix64(&st),
	}
}

// At returns the i-th child stream of s by value: the same stream
// Child(i) returns, but stack-allocatable, for callers that draw one
// value per index inside a hot loop (see Float64At, BernoulliAt).
func (s *Stream) At(i uint64) Stream {
	// Fold the parent state and index into a single 64-bit seed, then
	// expand. The multiplications by large odd constants decorrelate the
	// four state words before folding.
	st := s.s0*0x9e3779b97f4a7c15 ^ s.s1*0xc2b2ae3d27d4eb4f ^
		s.s2*0x165667b19e3779f9 ^ s.s3 ^ (i+1)*0xd6e8feb86659fd93
	return Stream{
		s0: splitmix64(&st),
		s1: splitmix64(&st),
		s2: splitmix64(&st),
		s3: splitmix64(&st),
	}
}

// Child derives the i-th child stream of s without advancing s. The
// derivation mixes the parent's state with the child index through
// SplitMix64, so Child(i) and Child(j) are unrelated for i != j and are
// stable across calls.
func (s *Stream) Child(i uint64) *Stream {
	c := s.At(i)
	return &c
}

// Float64At returns exactly the value Child(i).Float64() would return,
// without allocating a child stream. The per-vertex coin flips of the
// parallel rounds draw through this: one stream construction per round
// on the stack instead of n on the heap.
func (s *Stream) Float64At(i uint64) float64 {
	c := s.At(i)
	return c.Float64()
}

// BernoulliAt reports exactly what Child(i).Bernoulli(p) would, without
// allocating a child stream.
func (s *Stream) BernoulliAt(i uint64, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64At(i) < p
}

// Split advances s once and returns a new stream seeded from the
// pre-advance state. Unlike Child, successive Split calls return
// different streams.
func (s *Stream) Split() *Stream {
	c := s.Child(s.Uint64())
	return c
}

// Uint64 returns the next value of the stream (xoshiro256**).
func (s *Stream) Uint64() uint64 {
	result := bits.RotateLeft64(s.s1*5, 7) * 9
	t := s.s1 << 17
	s.s2 ^= s.s0
	s.s3 ^= s.s1
	s.s1 ^= s.s2
	s.s0 ^= s.s3
	s.s2 ^= t
	s.s3 = bits.RotateLeft64(s.s3, 45)
	return result
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bernoulli reports true with probability p. Values of p outside [0,1]
// are clamped.
func (s *Stream) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	// Lemire's nearly-divisionless bounded generation.
	bound := uint64(n)
	x := s.Uint64()
	hi, lo := bits.Mul64(x, bound)
	if lo < bound {
		threshold := -bound % bound
		for lo < threshold {
			x = s.Uint64()
			hi, lo = bits.Mul64(x, bound)
		}
	}
	return int(hi)
}

// Perm returns a uniform random permutation of [0, n) as a slice.
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.Shuffle(p)
	return p
}

// Shuffle permutes p uniformly at random in place (Fisher–Yates).
func (s *Stream) Shuffle(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Exp returns an exponentially distributed value with rate 1, via
// inversion. Used by KUW for random priorities with continuous ties.
func (s *Stream) Exp() float64 {
	// -log(1-u); avoid log(0) by nudging u away from 1.
	u := s.Float64()
	if u >= 1 {
		u = 1 - 1e-16
	}
	return -math.Log(1 - u)
}
