package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with same seed diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct seeds produced %d identical outputs", same)
	}
}

func TestChildStable(t *testing.T) {
	s := New(7)
	c1 := s.Child(5)
	c2 := s.Child(5)
	for i := 0; i < 50; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatalf("Child(5) not stable at step %d", i)
		}
	}
}

func TestChildIndependentOfParentAdvance(t *testing.T) {
	s := New(7)
	before := s.Child(3)
	s.Uint64() // advance parent
	after := s.Child(3)
	// Child derives from parent *state*, which changed; verify documented
	// semantics: Child does not advance parent, but advancing the parent
	// legitimately changes future Child derivations. What must hold is
	// that calling Child twice with no intervening advance matches.
	_ = after
	s2 := New(7)
	ref := s2.Child(3)
	for i := 0; i < 20; i++ {
		if before.Uint64() != ref.Uint64() {
			t.Fatalf("Child(3) on fresh equal parents diverged at %d", i)
		}
	}
}

func TestChildrenDiffer(t *testing.T) {
	s := New(99)
	c0, c1 := s.Child(0), s.Child(1)
	same := 0
	for i := 0; i < 64; i++ {
		if c0.Uint64() == c1.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("sibling child streams too correlated: %d matches", same)
	}
}

func TestSplitAdvances(t *testing.T) {
	s := New(11)
	a := s.Split()
	b := s.Split()
	if a.Uint64() == b.Uint64() {
		t.Fatal("successive Split streams start identically")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(5)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestBernoulliFrequency(t *testing.T) {
	s := New(8)
	for _, p := range []float64{0.1, 0.5, 0.9} {
		hits := 0
		const n = 100000
		for i := 0; i < n; i++ {
			if s.Bernoulli(p) {
				hits++
			}
		}
		freq := float64(hits) / n
		if math.Abs(freq-p) > 0.01 {
			t.Fatalf("Bernoulli(%v) frequency %v", p, freq)
		}
	}
}

func TestBernoulliEdges(t *testing.T) {
	s := New(1)
	for i := 0; i < 100; i++ {
		if s.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !s.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if s.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !s.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(17)
	for _, n := range []int{1, 2, 3, 10, 1000} {
		for i := 0; i < 1000; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniform(t *testing.T) {
	s := New(23)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[s.Intn(n)]++
	}
	for v, c := range counts {
		freq := float64(c) / trials
		if math.Abs(freq-1.0/n) > 0.01 {
			t.Fatalf("Intn(%d): value %d frequency %v", n, v, freq)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(31)
	check := func(n uint8) bool {
		m := int(n%50) + 1
		p := s.Perm(m)
		if len(p) != m {
			return false
		}
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleUniformFirstElement(t *testing.T) {
	s := New(37)
	const n, trials = 5, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		p := s.Perm(n)
		counts[p[0]]++
	}
	for v, c := range counts {
		freq := float64(c) / trials
		if math.Abs(freq-1.0/n) > 0.01 {
			t.Fatalf("Perm(%d)[0]=%d frequency %v", n, v, freq)
		}
	}
}

func TestExpMean(t *testing.T) {
	s := New(41)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := s.Exp()
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1.0) > 0.02 {
		t.Fatalf("Exp mean %v too far from 1", mean)
	}
}

// The vertex-stream construction used by the solvers: stream per (round,
// vertex). Verify schedule independence: deriving children in any order
// yields the same values.
func TestChildOrderIndependence(t *testing.T) {
	s := New(53)
	round := s.Child(4)
	forward := make([]uint64, 10)
	for i := range forward {
		forward[i] = round.Child(uint64(i)).Uint64()
	}
	backward := make([]uint64, 10)
	for i := 9; i >= 0; i-- {
		backward[i] = round.Child(uint64(i)).Uint64()
	}
	for i := range forward {
		if forward[i] != backward[i] {
			t.Fatalf("child %d depends on derivation order", i)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkChild(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Child(uint64(i))
	}
}

func TestAtMatchesChild(t *testing.T) {
	s := New(99)
	for i := uint64(0); i < 200; i++ {
		c := s.Child(i)
		a := s.At(i)
		for k := 0; k < 4; k++ {
			if got, want := a.Uint64(), c.Uint64(); got != want {
				t.Fatalf("At(%d) draw %d = %d, want Child value %d", i, k, got, want)
			}
		}
	}
}

func TestFloat64AtMatchesChild(t *testing.T) {
	s := New(7).Child(3)
	for i := uint64(0); i < 500; i++ {
		if got, want := s.Float64At(i), s.Child(i).Float64(); got != want {
			t.Fatalf("Float64At(%d) = %v, want %v", i, got, want)
		}
	}
}

func TestBernoulliAtMatchesChild(t *testing.T) {
	s := New(11)
	ps := []float64{-0.5, 0, 1e-9, 0.25, 0.5, 0.999999, 1, 2}
	for _, p := range ps {
		for i := uint64(0); i < 300; i++ {
			if got, want := s.BernoulliAt(i, p), s.Child(i).Bernoulli(p); got != want {
				t.Fatalf("BernoulliAt(%d, %v) = %v, want %v", i, p, got, want)
			}
		}
	}
}

func TestBernoulliAtDoesNotAllocate(t *testing.T) {
	s := New(13)
	i := uint64(0)
	allocs := testing.AllocsPerRun(1000, func() {
		s.BernoulliAt(i, 0.5)
		i++
	})
	if allocs != 0 {
		t.Fatalf("BernoulliAt allocated %v times per call, want 0", allocs)
	}
}

func BenchmarkBernoulliAt(b *testing.B) {
	s := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.BernoulliAt(uint64(i), 0.3)
	}
}
