// Package luby implements Luby's classic RNC maximal-independent-set
// algorithm for graphs — the dimension-2 special case of the hypergraph
// problem, which the paper's introduction cites as the well-understood
// baseline ("fast parallel algorithms for constructing maximal
// independent sets in graphs are well studied and very efficient").
//
// Each round, every live vertex marks itself with probability
// 1/(2·deg(v)); for every edge with both endpoints marked, the endpoint
// of smaller degree (ties by smaller id) is unmarked; marked survivors
// join the independent set, and they and their neighbours leave the
// graph. Degree-0 vertices join immediately. The expected number of
// rounds is O(log n).
//
// The package doubles as the d=2 correctness oracle for the general
// solvers in experiment T12: on graph inputs BL, KUW, SBL and Luby must
// all produce valid (generally different) MISs.
package luby

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/hypergraph"
	"repro/internal/par"
	"repro/internal/rng"
)

// Options configures a run.
type Options struct {
	// Ctx, if non-nil, is checked at the top of every round; the run
	// returns ctx.Err() as soon as the context is done.
	Ctx context.Context

	// MaxRounds aborts when exceeded (0 = default 10·log₂n + 50).
	MaxRounds int
	// CollectStats records per-round counters.
	CollectStats bool
}

// RoundStat records one round.
type RoundStat struct {
	Round   int
	Live    int // live vertices entering the round
	Edges   int // live edges entering the round
	Marked  int
	Added   int
	Removed int // neighbours eliminated (red)
}

// Result of a run.
type Result struct {
	InIS   []bool
	Red    []bool
	Rounds int
	Stats  []RoundStat
}

// ErrRoundLimit is returned when MaxRounds is exceeded.
var ErrRoundLimit = errors.New("luby: round limit exceeded")

// ErrNotGraph is returned when the input has dimension > 2.
var ErrNotGraph = errors.New("luby: input has dimension > 2")

// Run executes Luby's algorithm on a hypergraph of dimension ≤ 2.
// Singleton edges block their vertex (it is red from the start), exactly
// as in the general problem. active == nil means all vertices.
func Run(h *hypergraph.Hypergraph, active []bool, s *rng.Stream, cost *par.Cost, opts Options) (*Result, error) {
	if h.Dim() > 2 {
		return nil, fmt.Errorf("%w (dim=%d)", ErrNotGraph, h.Dim())
	}
	n := h.N()
	if opts.MaxRounds == 0 {
		opts.MaxRounds = 10*bitLen(n) + 50
	}
	live := make([]bool, n)
	if active == nil {
		par.Fill(cost, live, true)
	} else {
		copy(live, active)
	}
	res := &Result{InIS: make([]bool, n), Red: make([]bool, n)}

	// Adjacency among active vertices, in CSR form (per-vertex rows are
	// subslices of one flat backing array); singleton edges block
	// immediately.
	adj := make([][]hypergraph.V, n)
	cnt := make([]int32, n+1)
	for _, e := range h.Edges() {
		for _, v := range e {
			if !live[v] {
				return nil, fmt.Errorf("luby: edge %v contains inactive vertex %d", e, v)
			}
		}
		if len(e) == 1 {
			v := e[0]
			if live[v] {
				live[v] = false
				res.Red[v] = true
			}
			continue
		}
		cnt[e[0]+1]++
		cnt[e[1]+1]++
	}
	for v := 1; v <= n; v++ {
		cnt[v] += cnt[v-1]
	}
	flat := make([]hypergraph.V, cnt[n])
	for _, e := range h.Edges() {
		if len(e) != 2 {
			continue
		}
		u, v := e[0], e[1]
		flat[cnt[u]] = v
		cnt[u]++
		flat[cnt[v]] = u
		cnt[v]++
	}
	start := int32(0)
	for v := 0; v < n; v++ {
		adj[v] = flat[start:cnt[v]:cnt[v]]
		start = cnt[v]
	}
	deg := make([]int, n)
	marked := make([]bool, n)
	losers := make([]bool, n)

	for round := 0; ; round++ {
		if opts.Ctx != nil {
			if err := opts.Ctx.Err(); err != nil {
				return nil, err
			}
		}
		liveCount := par.Count(cost, n, func(i int) bool { return live[i] })
		if liveCount == 0 {
			res.Rounds = round
			return res, nil
		}
		if round >= opts.MaxRounds {
			return nil, fmt.Errorf("%w after %d rounds (%d live)", ErrRoundLimit, round, liveCount)
		}
		st := RoundStat{Round: round, Live: liveCount}

		// Current degrees among live vertices.
		par.For(cost, n, func(v int) {
			d := 0
			if live[v] {
				for _, u := range adj[v] {
					if live[u] {
						d++
					}
				}
			}
			deg[v] = d
		})
		liveEdges := 0
		for v := 0; v < n; v++ {
			liveEdges += deg[v]
		}
		st.Edges = liveEdges / 2

		roundStream := s.Child(uint64(round))
		par.For(cost, n, func(v int) {
			losers[v] = false
			switch {
			case !live[v]:
				marked[v] = false
			case deg[v] == 0:
				marked[v] = true // isolated: joins for free
			default:
				marked[v] = roundStream.BernoulliAt(uint64(v), 1.0/(2.0*float64(deg[v])))
			}
		})
		st.Marked = par.Count(cost, n, func(i int) bool { return marked[i] })

		// Conflict resolution: for each live edge with both endpoints
		// marked, the smaller-degree endpoint (ties: smaller id) yields.
		// Evaluated against the round's original marking; the winner
		// relation is antisymmetric so survivors are pairwise
		// non-adjacent. (losers was reset in the marking pass.)
		par.For(cost, n, func(v int) {
			if !live[v] || !marked[v] {
				return
			}
			for _, u := range adj[v] {
				if live[u] && marked[u] && beats(u, hypergraph.V(v), deg) {
					losers[v] = true
					return
				}
			}
		})

		// Survivors join; their neighbours are eliminated.
		added, removed := 0, 0
		for v := 0; v < n; v++ {
			if live[v] && marked[v] && !losers[v] {
				res.InIS[v] = true
				live[v] = false
				added++
			}
		}
		par.ChargeStep(cost, n)
		for v := 0; v < n; v++ {
			if !res.InIS[v] {
				continue
			}
			for _, u := range adj[v] {
				if live[u] {
					live[u] = false
					res.Red[u] = true
					removed++
				}
			}
		}
		par.ChargeStep(cost, n)
		st.Added = added
		st.Removed = removed
		if opts.CollectStats {
			res.Stats = append(res.Stats, st)
		}
	}
}

// beats reports whether u's mark dominates v's in conflict resolution:
// higher degree wins, ties broken by higher id.
func beats(u, v hypergraph.V, deg []int) bool {
	if deg[u] != deg[v] {
		return deg[u] > deg[v]
	}
	return u > v
}

func bitLen(n int) int {
	l := 0
	for n > 0 {
		n >>= 1
		l++
	}
	return l
}
