// Package luby implements Luby's classic RNC maximal-independent-set
// algorithm for graphs — the dimension-2 special case of the hypergraph
// problem, which the paper's introduction cites as the well-understood
// baseline ("fast parallel algorithms for constructing maximal
// independent sets in graphs are well studied and very efficient").
//
// Each round, every live vertex marks itself with probability
// 1/(2·deg(v)); for every edge with both endpoints marked, the endpoint
// of smaller degree (ties by smaller id) is unmarked; marked survivors
// join the independent set, and they and their neighbours leave the
// graph. Degree-0 vertices join immediately. The expected number of
// rounds is O(log n).
//
// The package doubles as the d=2 correctness oracle for the general
// solvers in experiment T12: on graph inputs BL, KUW, SBL and Luby must
// all produce valid (generally different) MISs.
//
// The round loop runs on the shared solver runtime: context checks,
// the round budget and per-round telemetry go through solver.Loop, and
// the adjacency arena, degree array and round masks are drawn from a
// solver.Workspace, so pooled service jobs stop paying the per-run
// adjacency allocations.
package luby

import (
	"context"
	"errors"
	"fmt"
	"math/bits"

	"repro/internal/hypergraph"
	"repro/internal/mathx"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/solver"
)

// Options configures a run.
type Options struct {
	// Ctx, if non-nil, is checked at the top of every round; the run
	// returns ctx.Err() as soon as the context is done.
	Ctx context.Context

	// Par bounds the worker parallelism of the per-round passes (zero
	// value = whole machine). Output is identical for any engine.
	Par par.Engine

	// MaxRounds aborts when exceeded (0 = default 10·log₂n + 50).
	MaxRounds int
	// CollectStats records per-round counters.
	CollectStats bool

	// Ws, if non-nil, supplies the run's reusable buffers (nil = a
	// fresh workspace). Must not be shared with a concurrent run.
	Ws *solver.Workspace

	// Observer, if non-nil, receives one telemetry record per round.
	Observer solver.RoundObserver
}

// RoundStat records one round.
type RoundStat struct {
	Round   int
	Live    int // live vertices entering the round
	Edges   int // live edges entering the round
	Marked  int
	Added   int
	Removed int // neighbours eliminated (red)
}

// Result of a run.
type Result struct {
	InIS   []bool
	Red    []bool
	Rounds int
	Stats  []RoundStat
}

// ErrRoundLimit is returned when MaxRounds is exceeded.
var ErrRoundLimit = errors.New("luby: round limit exceeded")

// ErrNotGraph is returned when the input has dimension > 2.
var ErrNotGraph = errors.New("luby: input has dimension > 2")

func init() {
	solver.Register(solver.Descriptor{
		Algo:       solver.Luby,
		Name:       "luby",
		MaxDim:     2,
		AutoMaxDim: 2,
		Solve: func(req solver.Request) (solver.Outcome, error) {
			r, err := Run(req.H, nil, req.Stream, req.Cost, Options{
				Ctx: req.Ctx, Par: req.Par, Ws: req.Ws, Observer: req.Observer,
			})
			if err != nil {
				return solver.Outcome{}, err
			}
			return solver.Outcome{InIS: r.InIS, Rounds: r.Rounds}, nil
		},
	})
}

// Run executes Luby's algorithm on a hypergraph of dimension ≤ 2.
// Singleton edges block their vertex (it is red from the start), exactly
// as in the general problem. active == nil means all vertices.
func Run(h *hypergraph.Hypergraph, active []bool, s *rng.Stream, cost *par.Cost, opts Options) (*Result, error) {
	if h.Dim() > 2 {
		return nil, fmt.Errorf("%w (dim=%d)", ErrNotGraph, h.Dim())
	}
	n := h.N()
	eng := opts.Par
	if opts.MaxRounds == 0 {
		opts.MaxRounds = 10*mathx.BitLen(n) + 50
	}
	ws := opts.Ws
	if ws == nil {
		ws = solver.NewWorkspace()
	}
	ws.Reset(n, eng)
	live := ws.Bits(0)
	if active == nil {
		live.SetAll(n)
	} else {
		for i, a := range active {
			if a {
				live.Add(i)
			}
		}
	}
	par.ChargeStep(cost, n)
	res := &Result{InIS: make([]bool, n), Red: make([]bool, n)}

	// Adjacency among active vertices, in CSR form (per-vertex rows are
	// subslices of one flat workspace arena); singleton edges block
	// immediately.
	adj := ws.AdjRows(n)
	cnt := ws.Int32s(0, n+1)
	for _, e := range h.Edges() {
		for _, v := range e {
			if !live.Has(int(v)) {
				return nil, fmt.Errorf("luby: edge %v contains inactive vertex %d", e, v)
			}
		}
		if len(e) == 1 {
			v := e[0]
			if live.Has(int(v)) {
				live.Del(int(v))
				res.Red[v] = true
			}
			continue
		}
		cnt[e[0]+1]++
		cnt[e[1]+1]++
	}
	for v := 1; v <= n; v++ {
		cnt[v] += cnt[v-1]
	}
	flat := ws.Verts(0, int(cnt[n]))
	for _, e := range h.Edges() {
		if len(e) != 2 {
			continue
		}
		u, v := e[0], e[1]
		flat[cnt[u]] = v
		cnt[u]++
		flat[cnt[v]] = u
		cnt[v]++
	}
	start := int32(0)
	for v := 0; v < n; v++ {
		adj[v] = flat[start:cnt[v]:cnt[v]]
		start = cnt[v]
	}
	deg := ws.Ints(0, n)
	marked := ws.Bits(1)
	losers := ws.Bits(2)
	words := len(live)
	addedList := ws.Verts(1, n)[:0] // this round's new IS vertices, reused

	lp := &solver.Loop{
		Ctx:       opts.Ctx,
		Cost:      cost,
		MaxRounds: opts.MaxRounds,
		LimitErr:  ErrRoundLimit,
		Unit:      "round",
		Observer:  opts.Observer,
	}
	for {
		if err := lp.Check(); err != nil {
			return nil, err
		}
		liveCount := live.Count()
		par.ChargeReduce(cost, n)
		if liveCount == 0 {
			res.Rounds = lp.Rounds()
			return res, nil
		}
		if err := lp.Begin(liveCount, 0, 2); err != nil {
			return nil, err
		}
		round := lp.Rounds()
		st := RoundStat{Round: round, Live: liveCount}

		// Current degrees among live vertices; the neighbour tests are
		// bitset word probes. Workers own disjoint vertex ranges.
		eng.ForBlocked(nil, n, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				d := 0
				if live.Has(v) {
					for _, u := range adj[v] {
						if live.Has(int(u)) {
							d++
						}
					}
				}
				deg[v] = d
			}
		})
		par.ChargeStep(cost, n)
		liveEdges := 0
		for v := 0; v < n; v++ {
			liveEdges += deg[v]
		}
		st.Edges = liveEdges / 2
		lp.Note(st.Edges, 2)

		// Marking: only live vertices draw (isolated ones join for
		// free), through index-addressed per-vertex streams — the same
		// draws for any engine. Each worker owns a word range of the
		// marked set, so the parallel pass is write-race-free.
		roundStream := s.Child(uint64(round))
		eng.ForBlocked(nil, words, func(lo, hi int) {
			for wi := lo; wi < hi; wi++ {
				lw := live[wi]
				var mw uint64
				base := wi << 6
				for w := lw; w != 0; w &= w - 1 {
					b := bits.TrailingZeros64(w)
					v := base + b
					if deg[v] == 0 || roundStream.BernoulliAt(uint64(v), 1.0/(2.0*float64(deg[v]))) {
						mw |= 1 << uint(b)
					}
				}
				marked[wi] = mw
			}
		})
		losers.Reset()
		par.ChargeStep(cost, n)
		st.Marked = marked.Count()
		par.ChargeReduce(cost, n)

		// Conflict resolution: for each live edge with both endpoints
		// marked, the smaller-degree endpoint (ties: smaller id) yields.
		// Evaluated against the round's original marking; the winner
		// relation is antisymmetric so survivors are pairwise
		// non-adjacent. Workers own disjoint word ranges of losers.
		eng.ForBlocked(nil, words, func(lo, hi int) {
			for wi := lo; wi < hi; wi++ {
				mw := live[wi] & marked[wi]
				base := wi << 6
				for w := mw; w != 0; w &= w - 1 {
					v := base + bits.TrailingZeros64(w)
					for _, u := range adj[v] {
						if live.Has(int(u)) && marked.Has(int(u)) && beats(u, hypergraph.V(v), deg) {
							losers.Add(v)
							break
						}
					}
				}
			}
		})
		par.ChargeStep(cost, n)

		// Survivors join; their neighbours are eliminated.
		added, removed := 0, 0
		addedList = addedList[:0]
		for wi := 0; wi < words; wi++ {
			sw := live[wi] & marked[wi] &^ losers[wi]
			base := wi << 6
			for w := sw; w != 0; w &= w - 1 {
				v := base + bits.TrailingZeros64(w)
				res.InIS[v] = true
				addedList = append(addedList, hypergraph.V(v))
				added++
			}
			live[wi] &^= sw
		}
		par.ChargeStep(cost, n)
		for _, v := range addedList {
			for _, u := range adj[v] {
				if live.Has(int(u)) {
					live.Del(int(u))
					res.Red[u] = true
					removed++
				}
			}
		}
		par.ChargeStep(cost, n)
		st.Added = added
		st.Removed = removed
		if opts.CollectStats {
			res.Stats = append(res.Stats, st)
		}
		lp.End(added + removed)
	}
}

// beats reports whether u's mark dominates v's in conflict resolution:
// higher degree wins, ties broken by higher id.
func beats(u, v hypergraph.V, deg []int) bool {
	if deg[u] != deg[v] {
		return deg[u] > deg[v]
	}
	return u > v
}
