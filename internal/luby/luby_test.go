package luby

import (
	"errors"
	"testing"

	"repro/internal/hypergraph"
	"repro/internal/rng"
)

func run(t *testing.T, h *hypergraph.Hypergraph, seed uint64) *Result {
	t.Helper()
	res, err := Run(h, nil, rng.New(seed), nil, Options{})
	if err != nil {
		t.Fatalf("luby failed: %v", err)
	}
	return res
}

func TestLubyPath(t *testing.T) {
	// Path 0-1-2-3: MIS is {0,2}, {0,3}, {1,3}.
	h := hypergraph.NewBuilder(4).AddEdge(0, 1).AddEdge(1, 2).AddEdge(2, 3).MustBuild()
	res := run(t, h, 1)
	if err := hypergraph.VerifyMIS(h, res.InIS); err != nil {
		t.Fatal(err)
	}
}

func TestLubyRejectsHypergraph(t *testing.T) {
	h := hypergraph.NewBuilder(3).AddEdge(0, 1, 2).MustBuild()
	if _, err := Run(h, nil, rng.New(1), nil, Options{}); !errors.Is(err, ErrNotGraph) {
		t.Fatalf("got %v, want ErrNotGraph", err)
	}
}

func TestLubySingletonBlocks(t *testing.T) {
	h := hypergraph.NewBuilder(3).AddEdge(1).AddEdge(0, 2).MustBuild()
	res := run(t, h, 2)
	if res.InIS[1] {
		t.Fatal("singleton vertex joined")
	}
	if err := hypergraph.VerifyMIS(h, res.InIS); err != nil {
		t.Fatal(err)
	}
}

func TestLubyEdgeless(t *testing.T) {
	h := hypergraph.NewBuilder(6).MustBuild()
	res := run(t, h, 3)
	for _, in := range res.InIS {
		if !in {
			t.Fatal("isolated vertex missing")
		}
	}
}

func TestLubyAlwaysMIS(t *testing.T) {
	s := rng.New(4)
	for trial := 0; trial < 40; trial++ {
		n := 10 + s.Intn(80)
		h := hypergraph.RandomGraph(s, n, 1+s.Intn(3*n))
		res := run(t, h, uint64(trial))
		if err := hypergraph.VerifyMIS(h, res.InIS); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestLubyRoundsLogarithmic(t *testing.T) {
	s := rng.New(5)
	h := hypergraph.RandomGraph(s, 2000, 6000)
	res := run(t, h, 6)
	if res.Rounds > 40 {
		t.Fatalf("luby took %d rounds on n=2000", res.Rounds)
	}
}

func TestLubyDeterministic(t *testing.T) {
	s := rng.New(7)
	h := hypergraph.RandomGraph(s, 100, 250)
	a := run(t, h, 9)
	b := run(t, h, 9)
	for v := range a.InIS {
		if a.InIS[v] != b.InIS[v] {
			t.Fatal("same seed, different output")
		}
	}
}

func TestLubyStats(t *testing.T) {
	s := rng.New(8)
	h := hypergraph.RandomGraph(s, 200, 500)
	res, err := Run(h, nil, rng.New(1), nil, Options{CollectStats: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats) != res.Rounds {
		t.Fatalf("stats %d != rounds %d", len(res.Stats), res.Rounds)
	}
}

func TestLubyCompleteGraph(t *testing.T) {
	// K5: MIS has exactly one vertex.
	b := hypergraph.NewBuilder(5)
	for i := hypergraph.V(0); i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			b.AddEdge(i, j)
		}
	}
	h := b.MustBuild()
	res := run(t, h, 10)
	size := 0
	for _, in := range res.InIS {
		if in {
			size++
		}
	}
	if size != 1 {
		t.Fatalf("K5 MIS size %d", size)
	}
	if err := hypergraph.VerifyMIS(h, res.InIS); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLuby(b *testing.B) {
	s := rng.New(1)
	h := hypergraph.RandomGraph(s, 5000, 15000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(h, nil, rng.New(uint64(i)), nil, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
