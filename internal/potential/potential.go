// Package potential implements the potential-function machinery of
// Kelsen's analysis and the paper's Section 3.1 modification of it: the
// recurrences f and F, the per-dimension values v_i(H) with thresholds
// T_j, the stage counts q_j, and the feasibility inequalities that
// decide whether the induction goes through — including the paper's
// demonstration that Kelsen's original constant (+7) *fails* for
// super-constant dimension while the modified constant (+d²) succeeds,
// and the Section 4.1 lower-bound argument that F must stay roughly
// factorial no matter how sharp the concentration bound is.
//
// Everything here is numeric (no randomness): experiment T8 sweeps these
// functions over n and d and regenerates the paper's inequalities as
// tables.
package potential

import (
	"math"

	"repro/internal/mathx"
)

// FTable holds the recurrence values f(i) and their partial sums
// F(i) = Σ_{j=2..i} f(j), indexed by i (entries 0 and 1 are zero;
// F(1) = 0 by convention).
type FTable struct {
	Constant float64   // the additive constant: 7 (Kelsen) or d² (paper)
	F        []float64 // F[i], i = 0..d
	FVals    []float64 // f[i], i = 0..d
}

// NewFTable builds the recurrence f(2) = c, f(i) = (i−1)·Σ_{j<i} f(j) + c
// up to dimension d. Equivalently F(i) = i·F(i−1) + c with F(1) = 0.
// Values grow factorially and may overflow to +Inf for large d; that is
// the honest value of the bound at those parameters.
func NewFTable(d int, c float64) *FTable {
	t := &FTable{Constant: c, F: make([]float64, d+1), FVals: make([]float64, d+1)}
	for i := 2; i <= d; i++ {
		t.FVals[i] = float64(i-1)*t.F[i-1] + c
		t.F[i] = t.F[i-1] + t.FVals[i]
	}
	return t
}

// KelsenTable returns Kelsen's original recurrence (+7).
func KelsenTable(d int) *FTable { return NewFTable(d, 7) }

// PaperTable returns the paper's modified recurrence (+d²).
func PaperTable(d int) *FTable { return NewFTable(d, float64(d*d)) }

// Lambda returns λ(n) = 2·log log n / log n — the slack factor in
// Lemma 5's threshold v_j(H_s) ≤ T_j·(1+λ(n)).
func Lambda(n float64) float64 {
	return 2 * mathx.LogLog2(n) / mathx.Log2(n)
}

// MigrationExponent returns the exponent of log n in the k-summand of
// the feasibility claim:
//
//	2^{k−j+1} + 2 − c + F(j) − F(k−1)
//
// where c is the recurrence constant (via F(j) = j·F(j−1) + c this
// equals the paper's 2^{k−j+1} + F(j−1)·j − F(k−1) + 2 form). For the
// induction to go through the sum of (log n)^exponent over k > j,
// multiplied by 2^{d(d+1)}, must stay below 2/(log n + 2·log log n).
func (t *FTable) MigrationExponent(j, k int) float64 {
	return math.Pow(2, float64(k-j+1)) + 2 - t.Constant + t.F[j] - t.F[k-1]
}

// Lemma6Holds verifies the paper's Lemma 6 for this table: for every
// j ≥ 2 and k > j+1 (up to dimension d), the migration exponent is at
// most 6 − c, i.e. the k = j+1 term dominates the sum. It returns the
// first violating pair, or (0,0) when the lemma holds.
func (t *FTable) Lemma6Holds(d int) (ok bool, badJ, badK int) {
	limit := 6 - t.Constant
	for j := 2; j <= d; j++ {
		for k := j + 2; k <= d; k++ {
			if t.MigrationExponent(j, k) > limit+1e-9 {
				return false, j, k
			}
		}
	}
	return true, 0, 0
}

// FeasibilityLHS returns the left-hand side of the induction claim for
// level j at size n with logN = log₂ n:
//
//	2^{d(d+1)} · Σ_{k=j+1..d} (log n)^{MigrationExponent(j,k)}
//
// computed in log₂-space to survive the astronomical intermediate
// values, returned as log₂(LHS). Taking logN (not n) keeps the sweep
// meaningful in the asymptotic regime where n itself overflows float64.
func (t *FTable) FeasibilityLHS(logN float64, d, j int) float64 {
	logLogN := math.Log2(math.Max(logN, 2))
	// log2 of each summand: exponent · log2(log n).
	maxTerm := math.Inf(-1)
	var terms []float64
	for k := j + 1; k <= d; k++ {
		lt := t.MigrationExponent(j, k) * logLogN
		terms = append(terms, lt)
		if lt > maxTerm {
			maxTerm = lt
		}
	}
	if len(terms) == 0 {
		return math.Inf(-1)
	}
	// log-sum-exp in base 2.
	sum := 0.0
	for _, lt := range terms {
		sum += math.Exp2(lt - maxTerm)
	}
	logSum := maxTerm + math.Log2(sum)
	return float64(d*(d+1)) + logSum
}

// FeasibilityRHS returns log₂ of the right-hand side
// 2/(log n + 2·log log n), given logN = log₂ n.
func FeasibilityRHS(logN float64) float64 {
	logLogN := math.Log2(math.Max(logN, 2))
	return 1 - math.Log2(logN+2*logLogN)
}

// Feasible reports whether the induction inequality holds for every
// j ∈ [2, d): LHS ≤ RHS (both in log₂-space), given logN = log₂ n.
func (t *FTable) Feasible(logN float64, d int) bool {
	rhs := FeasibilityRHS(logN)
	for j := 2; j < d; j++ {
		if t.FeasibilityLHS(logN, d, j) > rhs {
			return false
		}
	}
	return true
}

// KelsenBreakpoint evaluates the inequality the paper shows fails for
// Kelsen's constant at k = j+1: with the +7 recurrence the k = j+1
// exponent is −1 and the claim reduces to
//
//	2^{d(d+1)} ≤ log n / (log n + 2·log log n) < 1,
//
// which is false for every d ≥ 1. Returns true when the reduced claim
// holds (it never does for d ≥ 1 — the point of the paper's fix).
// logN = log₂ n.
func KelsenBreakpoint(logN float64, d int) bool {
	logLogN := math.Log2(math.Max(logN, 2))
	lhs := float64(d * (d + 1)) // log2 of 2^{d(d+1)}
	rhs := math.Log2(logN / (logN + 2*logLogN))
	return lhs <= rhs
}

// DimensionCondition checks d(d+1) ≤ (log log n)·(d² − 8): the final
// inequality in the proof of Theorem 2, which holds for
// d < log(2)n/(4·log(3)n) (and requires d ≥ 3 for a positive RHS).
// logN = log₂ n.
func DimensionCondition(logN float64, d int) bool {
	logLogN := math.Log2(math.Max(logN, 2))
	return float64(d*(d+1)) <= logLogN*float64(d*d-8)
}

// TheoremDBound returns the paper's dimension cap log(2)n/(4·log(3)n)
// for logN = log₂ n.
func TheoremDBound(logN float64) float64 {
	logLogN := math.Max(math.Log2(math.Max(logN, 2)), 1)
	logLogLogN := math.Max(math.Log2(logLogN), 1)
	return logLogN / (4 * logLogLogN)
}

// FactorialBoundHolds verifies F(i) ≤ d²·(i+2)! for all i ≤ d — the
// inductive step used to conclude q_d ≤ (log n)^{(d+4)!−1}.
func (t *FTable) FactorialBoundHolds(d int) bool {
	dd := t.Constant // for the paper's table c = d²
	for i := 2; i <= d; i++ {
		bound := dd * mathx.Factorial(i+2)
		if !(t.F[i] <= bound || math.IsInf(bound, 1)) {
			return false
		}
	}
	return true
}

// StageBoundLog returns log₂ of the Theorem 2 stage bound
// (log n)^{(d+4)!} — astronomically loose by design; experiments report
// it alongside measured stages.
func StageBoundLog(n float64, d int) float64 {
	return mathx.Factorial(d+4) * math.Log2(mathx.Log2(n))
}

// QStagesLog returns log₂ of q_j = 2^{d(d+1)}·(log log n)·
// (log n)^{F(j−1)·(j−1)+2}: the number of stages after which a large
// normalized degree at level j has collapsed w.h.p.
func (t *FTable) QStagesLog(n float64, d, j int) float64 {
	return float64(d*(d+1)) + math.Log2(mathx.LogLog2(n)) +
		(t.F[j-1]*float64(j-1)+2)*math.Log2(mathx.Log2(n))
}

// --- v_i values and thresholds (computed in log₂-space) ---

// VValuesLog computes log₂ v_i(H) for i = 2..d from the measured
// normalized degrees Δ_i(H) (deltas indexed by i, as returned by
// hypergraph.(*DegreeTable).AllDeltas):
//
//	v_d = Δ_d,   v_i = max(Δ_i, (log n)^{f(i)}·v_{i+1}).
//
// Zero deltas contribute log₂ 0 = −Inf. The returned slice is indexed
// by i with entries below 2 set to −Inf.
func (t *FTable) VValuesLog(n float64, deltas []float64) []float64 {
	d := len(deltas) - 1
	out := make([]float64, d+1)
	for i := range out {
		out[i] = math.Inf(-1)
	}
	logLogN := math.Log2(mathx.Log2(n))
	if d >= 2 {
		out[d] = math.Log2(deltas[d])
	}
	for i := d - 1; i >= 2; i-- {
		cand := t.FVals[i]*logLogN + out[i+1]
		di := math.Log2(deltas[i])
		if di > cand {
			out[i] = di
		} else {
			out[i] = cand
		}
	}
	return out
}

// ThresholdsLog returns log₂ T_j = log₂ v₂ − F(j−1)·log₂ log n for
// j = 2..d, given log₂ v₂.
func (t *FTable) ThresholdsLog(n float64, logV2 float64, d int) []float64 {
	out := make([]float64, d+1)
	logLogN := math.Log2(mathx.Log2(n))
	for j := 2; j <= d; j++ {
		out[j] = logV2 - t.F[j-1]*logLogN
	}
	return out
}

// Section41MinimalF reports the §4.1 lower-bound argument: even with the
// Kim–Vu migration factor (log n)^{2(k−j)}, the feasibility claim forces
// F(j) ≥ F(j−1)·j + 5. Given a candidate F table, it returns the first
// level j at which the table violates that necessary condition (0 if
// none). Tables growing slower than factorially (e.g. polynomial F)
// always violate it — the paper's point that no improvement to the
// concentration bound alone can beat roughly-factorial exponents.
func Section41MinimalF(F []float64) (badJ int) {
	for j := 3; j < len(F); j++ {
		if F[j] < F[j-1]*float64(j)+5 {
			return j
		}
	}
	return 0
}
