package potential

import (
	"math"
	"testing"
)

func TestKelsenTableValues(t *testing.T) {
	// f(2) = 7, F(2) = 7; f(3) = 2·7 + 7 = 21, F(3) = 28;
	// f(4) = 3·28 + 7 = 91, F(4) = 119. (F(i) = i·F(i−1)+7.)
	tab := KelsenTable(4)
	if tab.FVals[2] != 7 || tab.F[2] != 7 {
		t.Fatalf("f(2)=%v F(2)=%v", tab.FVals[2], tab.F[2])
	}
	if tab.FVals[3] != 21 || tab.F[3] != 28 {
		t.Fatalf("f(3)=%v F(3)=%v", tab.FVals[3], tab.F[3])
	}
	if tab.FVals[4] != 91 || tab.F[4] != 119 {
		t.Fatalf("f(4)=%v F(4)=%v", tab.FVals[4], tab.F[4])
	}
}

func TestFRecurrenceIdentity(t *testing.T) {
	// F(i) = i·F(i−1) + c for both tables.
	for _, tab := range []*FTable{KelsenTable(8), PaperTable(8)} {
		for i := 2; i <= 8; i++ {
			want := float64(i)*tab.F[i-1] + tab.Constant
			if math.Abs(tab.F[i]-want) > 1e-6*want {
				t.Fatalf("c=%v: F(%d)=%v, want %v", tab.Constant, i, tab.F[i], want)
			}
		}
	}
}

func TestPaperTableConstant(t *testing.T) {
	tab := PaperTable(5)
	if tab.Constant != 25 {
		t.Fatalf("constant = %v, want d²=25", tab.Constant)
	}
}

func TestLambdaShrinks(t *testing.T) {
	if Lambda(1<<30) >= Lambda(1<<10) {
		t.Fatal("λ(n) must shrink with n")
	}
	if Lambda(1<<20) <= 0 {
		t.Fatal("λ must be positive")
	}
}

func TestMigrationExponentKelsenAtAdjacentLevels(t *testing.T) {
	// The paper: with the +7 recurrence, k = j+1 gives exponent −1.
	tab := KelsenTable(10)
	for j := 2; j < 10; j++ {
		got := tab.MigrationExponent(j, j+1)
		if math.Abs(got-(-1)) > 1e-9 {
			t.Fatalf("j=%d: exponent = %v, want −1", j, got)
		}
	}
}

func TestMigrationExponentPaperAtAdjacentLevels(t *testing.T) {
	// With +d²: k = j+1 gives 2² + 2 − d² + F(j) − F(j) = 6 − d².
	d := 6
	tab := PaperTable(d)
	for j := 2; j < d; j++ {
		got := tab.MigrationExponent(j, j+1)
		want := 6 - float64(d*d)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("j=%d: exponent = %v, want %v", j, got, want)
		}
	}
}

func TestLemma6HoldsForPaperTable(t *testing.T) {
	for _, d := range []int{4, 5, 6, 8, 10} {
		tab := PaperTable(d)
		ok, j, k := tab.Lemma6Holds(d)
		if !ok {
			t.Fatalf("d=%d: Lemma 6 violated at (j,k)=(%d,%d)", d, j, k)
		}
	}
}

func TestKelsenBreakpointAlwaysFails(t *testing.T) {
	// 2^{d(d+1)} ≤ logn/(logn+2loglogn) < 1 is false for every d ≥ 1 —
	// the reason the paper replaces the constant. Arguments are log₂n.
	for _, logN := range []float64{10, 20, 100, 1 << 20} {
		for _, d := range []int{1, 3, 6} {
			if KelsenBreakpoint(logN, d) {
				t.Fatalf("logN=%v d=%d: Kelsen reduced claim unexpectedly holds", logN, d)
			}
		}
	}
}

func TestDimensionCondition(t *testing.T) {
	// d(d+1) ≤ loglog n · (d²−8). For d=4: 20 ≤ 8·loglog n needs
	// loglog n ≥ 2.5, i.e. log n ≥ 2^2.5 ≈ 5.7 — easily satisfied.
	if !DimensionCondition(200, 4) {
		t.Fatal("d=4 at log n=200 should satisfy the condition")
	}
	// For d=3 the RHS is loglog n·1: fails when loglog n < 12.
	if DimensionCondition(4, 3) {
		t.Fatal("d=3 at log n=4 should fail (12 > 2)")
	}
	// d ≤ 2 makes d²−8 negative: must fail.
	if DimensionCondition(100, 2) {
		t.Fatal("d=2 must fail (negative RHS)")
	}
}

func TestTheoremDBoundGrows(t *testing.T) {
	if TheoremDBound(1e30) <= TheoremDBound(100) {
		t.Fatal("dimension cap must grow with n")
	}
}

func TestFactorialBoundHolds(t *testing.T) {
	for _, d := range []int{3, 5, 8, 12} {
		tab := PaperTable(d)
		if !tab.FactorialBoundHolds(d) {
			t.Fatalf("d=%d: F(i) ≤ d²(i+2)! violated", d)
		}
	}
}

func TestFeasibilityLogSpace(t *testing.T) {
	// Verify the inequality mechanics at log n = 4096 and d = 4: the
	// paper's LHS must be far below Kelsen's, and Kelsen's claim fails.
	logN := 4096.0
	dp := PaperTable(4)
	dk := KelsenTable(4)
	lhsP := dp.FeasibilityLHS(logN, 4, 2)
	lhsK := dk.FeasibilityLHS(logN, 4, 2)
	if lhsP >= lhsK {
		t.Fatalf("paper LHS (log₂=%v) not below Kelsen LHS (log₂=%v)", lhsP, lhsK)
	}
	// At k = j+1 Kelsen's exponent is −1, so its LHS ≈ 2^{d(d+1)}/log n:
	// log₂ ≈ 20 − 12 = 8 > RHS (negative). The claim fails for Kelsen.
	if dk.Feasible(logN, 4) {
		t.Fatal("Kelsen table should be infeasible at d=4")
	}
}

func TestFeasiblePaperAtLargeScale(t *testing.T) {
	// The paper's induction needs (log n)^{d²−6} to beat 2^{d(d+1)}·d.
	// For d=4: exponent d²−6 = 10, and log n = 4096 gives 10·12 = 120
	// bits ≫ the 20+2 bits of 2^{d(d+1)}·d. Must be feasible.
	if !PaperTable(4).Feasible(4096, 4) {
		t.Fatal("paper table should be feasible at d=4, log n = 4096")
	}
	// At small log n the claim can still fail: for d=3 the dominant
	// exponent is 6−d² = −3, so the LHS is 2^{12}/(log n)³ — at
	// log n = 8 that is 2^{12−9} = 8 ≫ RHS. The asymptotic nature of
	// Theorem 2, made quantitative.
	if PaperTable(3).Feasible(8, 3) {
		t.Fatal("paper table should be infeasible at d=3, log n = 8")
	}
}

func TestQStagesMonotoneInJ(t *testing.T) {
	tab := PaperTable(6)
	n := float64(1 << 20)
	prev := math.Inf(-1)
	for j := 2; j <= 6; j++ {
		q := tab.QStagesLog(n, 6, j)
		if q < prev {
			t.Fatalf("q_j not nondecreasing at j=%d", j)
		}
		prev = q
	}
}

func TestStageBoundLogAstronomical(t *testing.T) {
	// (log n)^{(d+4)!} for d=4, n=2^16: log₂ = 8!·log₂16 = 40320·4.
	got := StageBoundLog(1<<16, 4)
	if math.Abs(got-40320*4) > 1 {
		t.Fatalf("got %v", got)
	}
}

func TestVValuesLogChain(t *testing.T) {
	// deltas: Δ_2 = 4, Δ_3 = 2, d = 3, n = 2^16 (log n = 16, log₂ log n = 4).
	tab := PaperTable(3)
	deltas := []float64{0, 0, 4, 2}
	v := tab.VValuesLog(1<<16, deltas)
	if math.Abs(v[3]-1) > 1e-9 { // log2(2)
		t.Fatalf("v_3 = %v", v[3])
	}
	// v_2 = max(Δ_2, (log n)^{f(2)}·v_3): f(2) = 9 (d²=9), so candidate
	// log₂ = 9·4 + 1 = 37 ≫ log₂4 = 2.
	if math.Abs(v[2]-37) > 1e-9 {
		t.Fatalf("v_2 = %v, want 37", v[2])
	}
}

func TestVValuesLogZeroDeltas(t *testing.T) {
	tab := PaperTable(3)
	v := tab.VValuesLog(1<<16, []float64{0, 0, 0, 0})
	if !math.IsInf(v[2], -1) || !math.IsInf(v[3], -1) {
		t.Fatalf("zero deltas should give −Inf: %v", v)
	}
}

func TestThresholdsLogDecrease(t *testing.T) {
	tab := PaperTable(5)
	th := tab.ThresholdsLog(1<<20, 100, 5)
	for j := 3; j <= 5; j++ {
		if th[j] >= th[j-1] {
			t.Fatalf("T_j not decreasing at j=%d: %v", j, th)
		}
	}
}

func TestSection41MinimalF(t *testing.T) {
	// Factorial-type tables satisfy F(j) ≥ j·F(j−1)+5.
	if bad := Section41MinimalF(PaperTable(8).F); bad != 0 {
		t.Fatalf("paper table violates §4.1 condition at j=%d", bad)
	}
	if bad := Section41MinimalF(KelsenTable(8).F); bad != 0 {
		t.Fatalf("Kelsen table violates §4.1 condition at j=%d", bad)
	}
	// Polynomial growth violates it immediately.
	poly := make([]float64, 9)
	for i := range poly {
		poly[i] = float64(i * i)
	}
	if bad := Section41MinimalF(poly); bad == 0 {
		t.Fatal("quadratic F should violate the §4.1 necessary condition")
	}
}
