// Package bitset implements packed vertex sets: one bit per vertex in
// a []uint64, so membership tests are branch-free word probes and the
// set algebra the round engine needs (union, intersection, difference,
// population count) runs word-parallel — 64 vertices per machine
// operation, an ~8× smaller working set than the []bool masks it
// replaces.
//
// A Set is just a word slice; hot loops are free to index the words
// directly (the solvers' marking passes do, skipping zero words). All
// operations are deterministic and none allocate except New and Grow.
//
// Concurrency: distinct words may be written by distinct goroutines
// (the parallel passes split sets at word boundaries); writes to bits
// of the same word must be serialized by the caller — per-shard sets
// merged with Or are the package's answer to parallel scatter writes.
package bitset

import (
	"math/bits"

	"repro/internal/par"
)

// Set is a packed bitset. Bit i lives in word i/64. The value is a
// plain slice: assignment shares storage, and the zero value is an
// empty set over zero vertices.
type Set []uint64

// Words returns the number of 64-bit words needed for n bits.
func Words(n int) int { return (n + 63) >> 6 }

// New returns a zeroed set with capacity for n bits.
func New(n int) Set { return make(Set, Words(n)) }

// Grow returns s resliced (reallocating only if needed) to hold n bits,
// zeroing every word. Use to recycle a scratch set across rounds.
func (s Set) Grow(n int) Set {
	w := Words(n)
	if cap(s) < w {
		return make(Set, w)
	}
	s = s[:w]
	s.Reset()
	return s
}

// Has reports whether bit i is set.
func (s Set) Has(i int) bool { return s[i>>6]&(1<<(uint(i)&63)) != 0 }

// Add sets bit i.
func (s Set) Add(i int) { s[i>>6] |= 1 << (uint(i) & 63) }

// Del clears bit i.
func (s Set) Del(i int) { s[i>>6] &^= 1 << (uint(i) & 63) }

// Reset clears every bit.
func (s Set) Reset() {
	for i := range s {
		s[i] = 0
	}
}

// SetAll sets bits [0, n) and clears the tail of the last word, so
// Count returns exactly n afterwards.
func (s Set) SetAll(n int) {
	full := n >> 6
	for i := 0; i < full; i++ {
		s[i] = ^uint64(0)
	}
	for i := full; i < len(s); i++ {
		s[i] = 0
	}
	if rem := uint(n) & 63; rem != 0 {
		s[full] = 1<<rem - 1
	}
}

// Count returns the number of set bits (population count).
func (s Set) Count() int {
	c := 0
	for _, w := range s {
		c += bits.OnesCount64(w)
	}
	return c
}

// CountRange returns the number of set bits among words [lo, hi) —
// i.e. bits [64·lo, 64·hi). Used by sharded reductions.
func (s Set) CountRange(lo, hi int) int {
	c := 0
	for _, w := range s[lo:hi] {
		c += bits.OnesCount64(w)
	}
	return c
}

// Or unions o into s (s |= o). Lengths must match.
func (s Set) Or(o Set) {
	for i, w := range o {
		s[i] |= w
	}
}

// OrRange unions words [lo, hi) of o into s; the word-range form the
// parallel shard reduction uses (each worker owns a disjoint range).
func (s Set) OrRange(o Set, lo, hi int) {
	for i := lo; i < hi; i++ {
		s[i] |= o[i]
	}
}

// And intersects s with o (s &= o).
func (s Set) And(o Set) {
	for i, w := range o {
		s[i] &= w
	}
}

// AndNot removes o's bits from s (s &^= o).
func (s Set) AndNot(o Set) {
	for i, w := range o {
		s[i] &^= w
	}
}

// Copy overwrites s with o. Lengths must match.
func (s Set) Copy(o Set) { copy(s, o) }

// Any reports whether at least one bit is set.
func (s Set) Any() bool {
	for _, w := range s {
		if w != 0 {
			return true
		}
	}
	return false
}

// AndCount returns |s ∩ o| without materializing the intersection.
func AndCount(a, b Set) int {
	c := 0
	for i, w := range a {
		c += bits.OnesCount64(w & b[i])
	}
	return c
}

// AndNotCount returns |a \ b|.
func AndNotCount(a, b Set) int {
	c := 0
	for i, w := range a {
		c += bits.OnesCount64(w &^ b[i])
	}
	return c
}

// OrCount unions o into s (s |= o) and returns the resulting
// population count in the same pass — the fused Or+Count form for mark
// passes that need the union's size, halving the memory traffic of a
// separate Count sweep.
func (s Set) OrCount(o Set) int {
	c := 0
	for i, w := range o {
		nw := s[i] | w
		s[i] = nw
		c += bits.OnesCount64(nw)
	}
	return c
}

// AndNotInto writes a \ b into dst and returns its population count —
// the fused Copy+AndNot+Count form (three sweeps → one) for
// mark/discard steps that materialize a difference and immediately
// need its size. dst may alias a (the in-place discard case). Lengths
// must match.
func AndNotInto(dst, a, b Set) int {
	c := 0
	for i, w := range a {
		nw := w &^ b[i]
		dst[i] = nw
		c += bits.OnesCount64(nw)
	}
	return c
}

// ForEach calls f for every set bit in ascending order.
func (s Set) ForEach(f func(i int)) {
	s.ForEachInWords(0, len(s), f)
}

// ForEachInWords calls f for every set bit of words [lo, hi) in
// ascending order. The word-range form lets parallel passes iterate
// disjoint blocks; f receives absolute bit indices.
func (s Set) ForEachInWords(lo, hi int, f func(i int)) {
	for wi := lo; wi < hi; wi++ {
		w := s[wi]
		base := wi << 6
		for w != 0 {
			f(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// UnionShards is the parallel-scatter idiom for bit writes: body(local,
// lo, hi) marks, in an n-bit shard-private set, whatever items [lo, hi)
// of some m-item collection produce, and the shard sets are OR-merged
// word-parallel into dst (a union is order-independent, so the result
// is deterministic for any engine). With shards ≤ 1 the body writes
// dst directly — no scratch, no merge. pool recycles the shard sets
// across calls; pass nil to allocate fresh ones.
func UnionShards(eng par.Engine, dst Set, n, m, shards int, pool *[]Set, body func(local Set, lo, hi int)) {
	if shards <= 1 {
		body(dst, 0, m)
		return
	}
	var locals []Set
	if pool != nil {
		if cap(*pool) < shards {
			*pool = make([]Set, shards)
		}
		*pool = (*pool)[:shards]
		locals = *pool
	} else {
		locals = make([]Set, shards)
	}
	eng.ForShards(nil, m, shards, func(s, lo, hi int) {
		local := locals[s]
		if local == nil {
			local = New(n)
			locals[s] = local
		} else {
			local = local.Grow(n)
			locals[s] = local
		}
		body(local, lo, hi)
	})
	// Merge only the shards whose block is non-empty (ForShards'
	// partition is ceil(m/shards)-sized blocks, so these are exactly
	// the invoked ones): a pooled set of an uninvoked trailing shard
	// still holds a previous call's bits and must not leak in.
	chunk := (m + shards - 1) / shards
	if chunk < 1 {
		chunk = 1
	}
	invoked := (m + chunk - 1) / chunk
	if invoked > shards {
		invoked = shards
	}
	eng.ForBlocked(nil, len(dst), func(lo, hi int) {
		for s := 0; s < invoked; s++ {
			if locals[s] != nil {
				dst.OrRange(locals[s], lo, hi)
			}
		}
	})
}

// FromBools packs a []bool mask.
func FromBools(mask []bool) Set {
	s := New(len(mask))
	for i, b := range mask {
		if b {
			s.Add(i)
		}
	}
	return s
}

// WriteBools unpacks s into mask (true where the bit is set, false
// elsewhere). len(mask) bits are read.
func (s Set) WriteBools(mask []bool) {
	for i := range mask {
		mask[i] = s.Has(i)
	}
}
