package bitset

import (
	"math/rand"

	"repro/internal/par"
	"testing"
)

func TestBasicOps(t *testing.T) {
	s := New(200)
	if len(s) != Words(200) || Words(200) != 4 {
		t.Fatalf("Words(200)=%d len=%d", Words(200), len(s))
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 199} {
		if s.Has(i) {
			t.Fatalf("fresh set has bit %d", i)
		}
		s.Add(i)
		if !s.Has(i) {
			t.Fatalf("Add(%d) not visible", i)
		}
	}
	if got := s.Count(); got != 8 {
		t.Fatalf("Count=%d want 8", got)
	}
	s.Del(64)
	if s.Has(64) || s.Count() != 7 {
		t.Fatalf("Del(64): has=%v count=%d", s.Has(64), s.Count())
	}
	s.Reset()
	if s.Any() || s.Count() != 0 {
		t.Fatal("Reset left bits")
	}
}

func TestSetAllTail(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 100, 128, 200} {
		s := New(n)
		s.SetAll(n)
		if got := s.Count(); got != n {
			t.Fatalf("SetAll(%d): count %d", n, got)
		}
		for i := 0; i < n; i++ {
			if !s.Has(i) {
				t.Fatalf("SetAll(%d): bit %d clear", n, i)
			}
		}
	}
}

// TestAgainstBools drives the set algebra against a []bool reference
// over random operations.
func TestAgainstBools(t *testing.T) {
	const n = 517 // non-multiple of 64 on purpose
	r := rand.New(rand.NewSource(42))
	a, b := New(n), New(n)
	ra, rb := make([]bool, n), make([]bool, n)
	for i := 0; i < n; i++ {
		if r.Intn(2) == 0 {
			a.Add(i)
			ra[i] = true
		}
		if r.Intn(3) == 0 {
			b.Add(i)
			rb[i] = true
		}
	}
	check := func(name string, s Set, ref []bool) {
		t.Helper()
		cnt := 0
		for i := 0; i < n; i++ {
			if s.Has(i) != ref[i] {
				t.Fatalf("%s: bit %d = %v want %v", name, i, s.Has(i), ref[i])
			}
			if ref[i] {
				cnt++
			}
		}
		if s.Count() != cnt {
			t.Fatalf("%s: count %d want %d", name, s.Count(), cnt)
		}
	}
	andc, andnotc := 0, 0
	for i := 0; i < n; i++ {
		if ra[i] && rb[i] {
			andc++
		}
		if ra[i] && !rb[i] {
			andnotc++
		}
	}
	if got := AndCount(a, b); got != andc {
		t.Fatalf("AndCount=%d want %d", got, andc)
	}
	if got := AndNotCount(a, b); got != andnotc {
		t.Fatalf("AndNotCount=%d want %d", got, andnotc)
	}

	u := New(n)
	u.Copy(a)
	u.Or(b)
	refU := make([]bool, n)
	for i := range refU {
		refU[i] = ra[i] || rb[i]
	}
	check("or", u, refU)

	d := New(n)
	d.Copy(a)
	d.AndNot(b)
	refD := make([]bool, n)
	for i := range refD {
		refD[i] = ra[i] && !rb[i]
	}
	check("andnot", d, refD)

	x := New(n)
	x.Copy(a)
	x.And(b)
	refX := make([]bool, n)
	for i := range refX {
		refX[i] = ra[i] && rb[i]
	}
	check("and", x, refX)

	if got := FromBools(ra); got.Count() != a.Count() {
		t.Fatalf("FromBools count %d want %d", got.Count(), a.Count())
	}
	back := make([]bool, n)
	a.WriteBools(back)
	for i := range back {
		if back[i] != ra[i] {
			t.Fatalf("WriteBools bit %d", i)
		}
	}
}

func TestForEachOrder(t *testing.T) {
	s := New(300)
	want := []int{0, 5, 63, 64, 130, 191, 192, 299}
	for _, i := range want {
		s.Add(i)
	}
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %d bits, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach[%d]=%d want %d (ascending order)", i, got[i], want[i])
		}
	}
	// Word-range form sees exactly the bits of its words.
	var mid []int
	s.ForEachInWords(1, 3, func(i int) { mid = append(mid, i) })
	wantMid := []int{64, 130, 191}
	if len(mid) != len(wantMid) {
		t.Fatalf("ForEachInWords got %v want %v", mid, wantMid)
	}
	for i := range wantMid {
		if mid[i] != wantMid[i] {
			t.Fatalf("ForEachInWords got %v want %v", mid, wantMid)
		}
	}
}

func TestGrow(t *testing.T) {
	s := New(64)
	s.Add(3)
	s = s.Grow(1000) // reallocates
	if len(s) != Words(1000) || s.Any() {
		t.Fatalf("Grow(1000): len=%d any=%v", len(s), s.Any())
	}
	s.Add(999)
	s = s.Grow(100) // reslices and zeroes
	if len(s) != Words(100) || s.Any() {
		t.Fatalf("Grow(100): len=%d any=%v", len(s), s.Any())
	}
	if got := s.CountRange(0, len(s)); got != 0 {
		t.Fatalf("CountRange=%d", got)
	}
}

// TestUnionShards drives the parallel-scatter helper against a direct
// union, including pooled reuse where stale shard sets must not leak.
func TestUnionShards(t *testing.T) {
	const n, m = 500, 3000
	item := func(i int) int { return (i * 7) % n } // item i marks vertex (7i mod n)
	for _, shards := range []int{1, 2, 5, 16} {
		var pool []Set
		for call := 0; call < 3; call++ {
			// Shrinking m across calls leaves trailing pooled shards
			// uninvoked — their old bits must not appear in the union.
			mCall := m / (call + 1)
			want := New(n)
			for i := 0; i < mCall; i++ {
				want.Add(item(i))
			}
			got := New(n)
			UnionShards(par.Engine{P: 4}, got, n, mCall, shards, &pool, func(local Set, lo, hi int) {
				for i := lo; i < hi; i++ {
					local.Add(item(i))
				}
			})
			for v := 0; v < n; v++ {
				if got.Has(v) != want.Has(v) {
					t.Fatalf("shards=%d call=%d: bit %d = %v want %v", shards, call, v, got.Has(v), want.Has(v))
				}
			}
		}
	}
}

// TestFusedKernels checks OrCount and AndNotInto against their
// unfused equivalents, including the dst==a aliasing case AndNotInto
// documents.
func TestFusedKernels(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 63, 64, 65, 500, 4096} {
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			if r.Intn(3) != 0 {
				a.Add(i)
			}
			if r.Intn(2) == 0 {
				b.Add(i)
			}
		}
		// OrCount: union in place, count of the result.
		u := New(n)
		u.Copy(a)
		u.Or(b)
		wantUnion := u.Count()
		got := New(n)
		got.Copy(a)
		if c := got.OrCount(b); c != wantUnion {
			t.Fatalf("n=%d: OrCount=%d want %d", n, c, wantUnion)
		}
		for i := range got {
			if got[i] != u[i] {
				t.Fatalf("n=%d: OrCount word %d = %#x want %#x", n, i, got[i], u[i])
			}
		}
		// AndNotInto with a distinct destination.
		wantDiff := AndNotCount(a, b)
		d := New(n)
		if c := AndNotInto(d, a, b); c != wantDiff {
			t.Fatalf("n=%d: AndNotInto=%d want %d", n, c, wantDiff)
		}
		for i := range d {
			if d[i] != a[i]&^b[i] {
				t.Fatalf("n=%d: AndNotInto word %d wrong", n, i)
			}
		}
		// Aliased in-place form (dst == a).
		inPlace := New(n)
		inPlace.Copy(a)
		if c := AndNotInto(inPlace, inPlace, b); c != wantDiff {
			t.Fatalf("n=%d: aliased AndNotInto=%d want %d", n, c, wantDiff)
		}
		for i := range inPlace {
			if inPlace[i] != d[i] {
				t.Fatalf("n=%d: aliased AndNotInto word %d wrong", n, i)
			}
		}
	}
}

func benchPair(n int) (Set, Set) {
	a, b := New(n), New(n)
	for i := 0; i < n; i += 3 {
		a.Add(i)
	}
	for i := 0; i < n; i += 2 {
		b.Add(i)
	}
	return a, b
}

func BenchmarkOrThenCount1M(b *testing.B) {
	x, y := benchPair(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Or(y)
		_ = x.Count()
	}
}

func BenchmarkOrCount1M(b *testing.B) {
	x, y := benchPair(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.OrCount(y)
	}
}

func BenchmarkCopyAndNotCount1M(b *testing.B) {
	x, y := benchPair(1 << 20)
	dst := New(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst.Copy(x)
		dst.AndNot(y)
		_ = dst.Count()
	}
}

func BenchmarkAndNotInto1M(b *testing.B) {
	x, y := benchPair(1 << 20)
	dst := New(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = AndNotInto(dst, x, y)
	}
}
