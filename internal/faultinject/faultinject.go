// Package faultinject is the service's chaos hook: an Injector that,
// with configured probabilities, fails solves, adds latency, or
// forces queue-full rejections. It exists so the overload tests and
// `hypermisd -chaos` can exercise every degradation path — shed,
// retry, error accounting, drain under pressure — on demand instead
// of waiting for production to produce the conditions.
//
// Rolls are derived from a seed and an atomic sequence number through
// a splitmix64 finalizer, so a fixed seed yields a reproducible fault
// schedule per call order (not wall time), and the injector is safe
// for concurrent use without locks. A nil *Injector injects nothing —
// the disabled path is a nil check, no configuration object needed.
package faultinject

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// ErrInjected is the error every injected solve failure wraps; callers
// (and tests) identify chaos failures with errors.Is.
var ErrInjected = errors.New("faultinject: injected fault")

// Config sets the fault probabilities. All rates are in [0, 1]; zero
// disables that fault kind.
type Config struct {
	// ErrorRate is the probability a solve fails with ErrInjected.
	ErrorRate float64
	// Latency is the extra delay injected before a solve runs, applied
	// with probability LatencyRate.
	Latency     time.Duration
	LatencyRate float64
	// QueueFullRate is the probability an enqueue is rejected as if the
	// queue were full, exercising the shed/backoff path at any load.
	QueueFullRate float64
	// DiskWriteErrorRate is the probability a durable-cache write fails
	// outright with ErrInjected (the record is never persisted).
	DiskWriteErrorRate float64
	// DiskShortWriteRate is the probability a durable-cache write is
	// truncated partway through its frame, leaving a torn record on
	// disk for the recovery scan to step over.
	DiskShortWriteRate float64
	// DiskBitFlipRate is the probability a durable-cache read comes
	// back with one bit flipped, exercising the CRC-reject path.
	DiskBitFlipRate float64
	// Seed fixes the fault schedule; equal seeds and call orders inject
	// identical fault sequences.
	Seed uint64
}

// Injector injects faults per Config. Create with New; methods on a
// nil receiver are no-ops that inject nothing.
type Injector struct {
	cfg Config
	seq atomic.Uint64

	errs   atomic.Int64
	delays atomic.Int64
	fulls  atomic.Int64

	diskErrs   atomic.Int64
	diskShorts atomic.Int64
	diskFlips  atomic.Int64
}

// New returns an injector for cfg, or nil when cfg injects nothing —
// so a zero Config naturally resolves to the disabled injector.
func New(cfg Config) *Injector {
	if cfg.ErrorRate <= 0 && (cfg.LatencyRate <= 0 || cfg.Latency <= 0) && cfg.QueueFullRate <= 0 &&
		cfg.DiskWriteErrorRate <= 0 && cfg.DiskShortWriteRate <= 0 && cfg.DiskBitFlipRate <= 0 {
		return nil
	}
	return &Injector{cfg: cfg}
}

// Config reports the injector's configuration (zero for nil).
func (in *Injector) Config() Config {
	if in == nil {
		return Config{}
	}
	return in.cfg
}

// roll draws the next deterministic uniform in [0, 1).
func (in *Injector) roll() float64 {
	z := in.cfg.Seed + in.seq.Add(1)*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// SolveError reports the fault to inject into the current solve: nil,
// or an error wrapping ErrInjected.
func (in *Injector) SolveError() error {
	if in == nil || in.cfg.ErrorRate <= 0 || in.roll() >= in.cfg.ErrorRate {
		return nil
	}
	in.errs.Add(1)
	return ErrInjected
}

// Delay sleeps the configured injected latency (with its configured
// probability), returning early if ctx expires first.
func (in *Injector) Delay(ctx context.Context) {
	if in == nil || in.cfg.Latency <= 0 || in.cfg.LatencyRate <= 0 || in.roll() >= in.cfg.LatencyRate {
		return
	}
	in.delays.Add(1)
	t := time.NewTimer(in.cfg.Latency)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// QueueFull reports whether to reject the current enqueue as if the
// queue were at capacity.
func (in *Injector) QueueFull() bool {
	if in == nil || in.cfg.QueueFullRate <= 0 || in.roll() >= in.cfg.QueueFullRate {
		return false
	}
	in.fulls.Add(1)
	return true
}

// DiskWriteError reports the fault to inject into the current
// durable-cache write: nil, or an error wrapping ErrInjected (the
// write must be abandoned and counted, never partially applied).
func (in *Injector) DiskWriteError() error {
	if in == nil || in.cfg.DiskWriteErrorRate <= 0 || in.roll() >= in.cfg.DiskWriteErrorRate {
		return nil
	}
	in.diskErrs.Add(1)
	return ErrInjected
}

// DiskShortWrite reports how many of n bytes the current durable-cache
// write should actually persist: n normally, roughly half when the
// short-write fault fires — a torn frame for recovery to step over.
func (in *Injector) DiskShortWrite(n int) int {
	if in == nil || in.cfg.DiskShortWriteRate <= 0 || in.roll() >= in.cfg.DiskShortWriteRate {
		return n
	}
	in.diskShorts.Add(1)
	return n / 2
}

// DiskBitFlip flips one bit of buf (at a schedule-determined position)
// when the read-corruption fault fires, reporting whether it did. The
// durable store calls it on every payload read, so a nonzero rate makes
// CRC rejection happen on demand.
func (in *Injector) DiskBitFlip(buf []byte) bool {
	if in == nil || len(buf) == 0 || in.cfg.DiskBitFlipRate <= 0 || in.roll() >= in.cfg.DiskBitFlipRate {
		return false
	}
	bit := int(in.roll() * float64(len(buf)*8))
	if bit >= len(buf)*8 {
		bit = len(buf)*8 - 1
	}
	buf[bit/8] ^= 1 << (bit % 8)
	in.diskFlips.Add(1)
	return true
}

// Counts reports how many faults of each kind have been injected.
func (in *Injector) Counts() (errs, delays, queueFulls int64) {
	if in == nil {
		return 0, 0, 0
	}
	return in.errs.Load(), in.delays.Load(), in.fulls.Load()
}

// DiskCounts reports how many disk faults of each kind have been
// injected: failed writes, truncated writes, and read bit-flips.
func (in *Injector) DiskCounts() (writeErrs, shortWrites, bitFlips int64) {
	if in == nil {
		return 0, 0, 0
	}
	return in.diskErrs.Load(), in.diskShorts.Load(), in.diskFlips.Load()
}
