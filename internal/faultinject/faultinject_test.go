package faultinject

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestNilAndZeroConfigInjectNothing(t *testing.T) {
	var in *Injector
	if err := in.SolveError(); err != nil {
		t.Fatal("nil injector injected an error")
	}
	if in.QueueFull() {
		t.Fatal("nil injector forced queue-full")
	}
	in.Delay(context.Background()) // must not panic or sleep
	if e, d, f := in.Counts(); e+d+f != 0 {
		t.Fatal("nil injector counted faults")
	}
	if New(Config{}) != nil {
		t.Fatal("zero config should resolve to the nil injector")
	}
	// Latency without a rate (and vice versa) is still disabled.
	if New(Config{Latency: time.Second}) != nil || New(Config{LatencyRate: 1}) != nil {
		t.Fatal("half-configured latency should resolve to the nil injector")
	}
}

// TestErrorRateConverges: over many rolls the injected-error fraction
// tracks the configured rate, and every injected error wraps
// ErrInjected.
func TestErrorRateConverges(t *testing.T) {
	in := New(Config{ErrorRate: 0.3, Seed: 42})
	const n = 20000
	hits := 0
	for i := 0; i < n; i++ {
		if err := in.SolveError(); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("injected error %v does not wrap ErrInjected", err)
			}
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.27 || frac > 0.33 {
		t.Fatalf("injected fraction %.3f, want ≈0.30", frac)
	}
	if e, _, _ := in.Counts(); e != int64(hits) {
		t.Fatalf("Counts errs = %d, want %d", e, hits)
	}
}

// TestDeterministicSchedule: equal seeds and call orders produce the
// identical fault sequence.
func TestDeterministicSchedule(t *testing.T) {
	seq := func() []bool {
		in := New(Config{QueueFullRate: 0.5, Seed: 7})
		out := make([]bool, 200)
		for i := range out {
			out[i] = in.QueueFull()
		}
		return out
	}
	a, b := seq(), seq()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at roll %d", i)
		}
	}
}

func TestDelayHonorsContext(t *testing.T) {
	in := New(Config{Latency: 10 * time.Second, LatencyRate: 1, Seed: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	in.Delay(ctx)
	if d := time.Since(start); d > time.Second {
		t.Fatalf("Delay ignored the canceled context (%v)", d)
	}
	if _, delays, _ := in.Counts(); delays != 1 {
		t.Fatalf("delays = %d, want 1 (counted even when cut short)", delays)
	}
}

// TestDiskFaultsInject: the disk knobs fire at rate 1, are nil-safe,
// and a bit-flip changes exactly one bit of the buffer.
func TestDiskFaultsInject(t *testing.T) {
	var nilIn *Injector
	if nilIn.DiskWriteError() != nil || nilIn.DiskShortWrite(100) != 100 || nilIn.DiskBitFlip(make([]byte, 8)) {
		t.Fatal("nil injector injected a disk fault")
	}
	if we, sw, bf := nilIn.DiskCounts(); we+sw+bf != 0 {
		t.Fatal("nil injector counted disk faults")
	}
	if New(Config{DiskBitFlipRate: 1}) == nil {
		t.Fatal("disk-only config should enable the injector")
	}

	in := New(Config{DiskWriteErrorRate: 1, Seed: 9})
	if err := in.DiskWriteError(); !errors.Is(err, ErrInjected) {
		t.Fatalf("DiskWriteError at rate 1 = %v, want ErrInjected", err)
	}

	in = New(Config{DiskShortWriteRate: 1, Seed: 9})
	if got := in.DiskShortWrite(100); got != 50 {
		t.Fatalf("DiskShortWrite(100) at rate 1 = %d, want 50", got)
	}

	in = New(Config{DiskBitFlipRate: 1, Seed: 9})
	buf := make([]byte, 32)
	orig := make([]byte, 32)
	copy(orig, buf)
	if !in.DiskBitFlip(buf) {
		t.Fatal("DiskBitFlip at rate 1 did not fire")
	}
	diffBits := 0
	for i := range buf {
		for b := 0; b < 8; b++ {
			if (buf[i]^orig[i])>>b&1 == 1 {
				diffBits++
			}
		}
	}
	if diffBits != 1 {
		t.Fatalf("bit-flip changed %d bits, want exactly 1", diffBits)
	}
	if in.DiskBitFlip(nil) {
		t.Fatal("empty buffer must not flip")
	}
	if we, sw, bf := in.DiskCounts(); we != 0 || sw != 0 || bf != 1 {
		t.Fatalf("DiskCounts = (%d, %d, %d), want (0, 0, 1)", we, sw, bf)
	}
}

// TestConcurrentRolls: the injector is safe under concurrent use and
// loses no counts (run with -race in CI).
func TestConcurrentRolls(t *testing.T) {
	in := New(Config{ErrorRate: 0.5, QueueFullRate: 0.5, Seed: 3})
	var wg sync.WaitGroup
	var errHits, fullHits sync.Map
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			e, f := 0, 0
			for i := 0; i < 1000; i++ {
				if in.SolveError() != nil {
					e++
				}
				if in.QueueFull() {
					f++
				}
			}
			errHits.Store(g, e)
			fullHits.Store(g, f)
		}(g)
	}
	wg.Wait()
	sum := func(m *sync.Map) int64 {
		var n int64
		m.Range(func(_, v any) bool { n += int64(v.(int)); return true })
		return n
	}
	e, _, f := in.Counts()
	if e != sum(&errHits) || f != sum(&fullHits) {
		t.Fatalf("counts (%d, %d) disagree with observed (%d, %d)",
			e, f, sum(&errHits), sum(&fullHits))
	}
}
