// Package benchdefs declares the solver micro-benchmark workloads in
// one place, shared by the root bench_test.go and cmd/benchjson, so the
// tracked BENCH_solvers.json always measures exactly the corpus that
// `go test -bench Solve` runs.
//
// Five measured bodies share each workload: RunCase (fresh buffers
// per solve — the historical baseline), RunCaseWs (one reused
// hypermis.Workspace — the steady state a pooled service job reaches),
// RunServiceSolve (the full uncached service job path: queue,
// scheduler grant, pooled workspace, observer), and the HTTP pair
// RunServiceHTTPSolve / RunServiceHTTPBatch (the daemon round trip per
// solve, one request per solve versus NDJSON /v1/batch requests of
// HTTPBatchSize items). RunServiceHTTPColor and
// RunServiceHTTPTransversal measure the sibling workload endpoints the
// same way — one uncached POST round trip per iteration.
package benchdefs

import (
	"bytes"
	"context"
	"encoding/base64"
	"fmt"
	"io"
	"net/http/httptest"
	"strconv"
	"testing"

	hypermis "repro"
	"repro/internal/hgio"
	"repro/internal/service"
)

// Case is one solver micro-benchmark: the Benchmark function's name
// suffix, the algorithm, and the instance constructor (deterministic
// seed — every call builds the identical instance).
type Case struct {
	Name string
	Algo hypermis.Algorithm
	New  func() *hypermis.Hypergraph
	// Tracked cases are emitted into BENCH_solvers.json by
	// cmd/benchjson; the large scale cases are benchmark-only.
	Tracked bool
}

// Solver returns the solver benchmark corpus.
func Solver() []Case {
	return []Case{
		{"SolveSBL_n1000", hypermis.AlgSBL,
			func() *hypermis.Hypergraph { return hypermis.RandomMixed(1, 1000, 2000, 2, 12) }, true},
		{"SolveBL_n1000_d3", hypermis.AlgBL,
			func() *hypermis.Hypergraph { return hypermis.RandomUniform(2, 1000, 2000, 3) }, true},
		{"SolveKUW_n1000", hypermis.AlgKUW,
			func() *hypermis.Hypergraph { return hypermis.RandomMixed(3, 1000, 2000, 2, 12) }, true},
		{"SolveLuby_n1000", hypermis.AlgLuby,
			func() *hypermis.Hypergraph { return hypermis.RandomGraph(4, 1000, 3000) }, true},
		{"SolveGreedy_n1000", hypermis.AlgGreedy,
			func() *hypermis.Hypergraph { return hypermis.RandomMixed(5, 1000, 2000, 2, 12) }, true},
		// Scale cases: n=50k/m=100k, above the sharded-scan thresholds.
		{"SolveSBL_n50000", hypermis.AlgSBL,
			func() *hypermis.Hypergraph { return hypermis.RandomMixed(7, 50000, 100000, 2, 12) }, false},
		{"SolveGreedy_n50000", hypermis.AlgGreedy,
			func() *hypermis.Hypergraph { return hypermis.RandomMixed(8, 50000, 100000, 2, 12) }, false},
		{"SolveLuby_n50000", hypermis.AlgLuby,
			func() *hypermis.Hypergraph { return hypermis.RandomGraph(9, 50000, 100000) }, false},
	}
}

// Find returns the case with the given name.
func Find(name string) (Case, bool) {
	for _, c := range Solver() {
		if c.Name == name {
			return c, true
		}
	}
	return Case{}, false
}

// VerifyInstance returns the VerifyMIS benchmark workload: a mixed
// instance with a greedy-computed MIS mask.
func VerifyInstance() (*hypermis.Hypergraph, []bool, error) {
	h := hypermis.RandomMixed(6, 10000, 20000, 2, 6)
	res, err := hypermis.Solve(h, hypermis.Options{Algorithm: hypermis.AlgGreedy})
	if err != nil {
		return nil, nil, err
	}
	return h, res.MIS, nil
}

// RunCase is the measured benchmark body for a solver case — the one
// loop both `go test -bench Solve` and cmd/benchjson time, so the
// tracked numbers cannot drift from the test benchmarks.
func RunCase(b *testing.B, c Case) {
	h := c.New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := hypermis.Solve(h, hypermis.Options{Algorithm: c.Algo, Seed: uint64(i), Alpha: 0.3})
		if err != nil {
			b.Fatal(err)
		}
		if res.Size == 0 && h.N() > 0 {
			b.Fatal("empty MIS")
		}
	}
}

// RunCaseWs is RunCase solving through one reused Workspace — the
// steady-state allocation profile of a pooled service job. The delta
// against RunCase is exactly what workspace pooling saves.
func RunCaseWs(b *testing.B, c Case) {
	h := c.New()
	ws := hypermis.NewWorkspace()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := hypermis.Solve(h, hypermis.Options{
			Algorithm: c.Algo, Seed: uint64(i), Alpha: 0.3, Workspace: ws,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Size == 0 && h.N() > 0 {
			b.Fatal("empty MIS")
		}
	}
}

// RunServiceSolve is the measured body of the service-level benchmark:
// every iteration is one uncached solve job through the scheduler
// (cache disabled, distinct seeds would miss anyway), so allocs/op is
// the end-to-end cost of a cache-miss request minus HTTP decoding.
func RunServiceSolve(b *testing.B, c Case) {
	h := c.New()
	srv := service.New(service.Config{Workers: 1, CacheSize: -1})
	defer srv.Close()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, cached, err := srv.Solve(ctx, h, hypermis.Options{
			Algorithm: c.Algo, Seed: uint64(i), Alpha: 0.3,
		})
		if err != nil {
			b.Fatal(err)
		}
		if cached {
			b.Fatal("unexpected cache hit with caching disabled")
		}
		if res.Size == 0 && h.N() > 0 {
			b.Fatal("empty MIS")
		}
	}
}

// HTTPBatchSize is the items-per-request grouping of the HTTP batch
// benchmark — the daemon-side analogue of `hypermisload -mode=batch
// -batch 32`.
const HTTPBatchSize = 32

// newHTTPBench builds the shared fixture of the HTTP-path benchmarks:
// an uncached single-worker daemon behind httptest and the case's
// instance in binary form (plus its base64, the batch-item encoding of
// the same bytes). Both paths send the identical instance codec and
// both prebuild their payload template, so every request pays the full
// parse + solve and the single/batch delta is per-request overhead
// (connection handling, HTTP framing, handler dispatch) against
// per-item overhead (JSON framing, base64 decode, fan-out
// bookkeeping).
func newHTTPBench(b *testing.B, c Case, disableTracing bool) (ts *httptest.Server, done func(), bin []byte, b64 string) {
	h := c.New()
	var buf bytes.Buffer
	if err := hgio.WriteBinary(&buf, h); err != nil {
		b.Fatal(err)
	}
	srv := service.New(service.Config{
		Workers: 1, CacheSize: -1, MaxBatchItems: 1 << 20,
		DisableTracing: disableTracing,
	})
	ts = httptest.NewServer(service.NewHandler(srv))
	bin = buf.Bytes()
	return ts, func() { ts.Close(); srv.Close() }, bin, base64.StdEncoding.EncodeToString(bin)
}

// RunServiceHTTPSolve measures the full single-shot serving path: one
// POST /v1/solve round trip per solve, request tracing on (the daemon
// default). Compare against RunServiceHTTPBatch at equal b.N — the
// delta is what batching amortizes away — and against
// RunServiceHTTPSolveNoTrace, whose delta is the tracing overhead the
// observability layer must keep negligible.
func RunServiceHTTPSolve(b *testing.B, c Case) { runServiceHTTPSolve(b, c, false) }

// RunServiceHTTPSolveNoTrace is RunServiceHTTPSolve with tracing and
// the flight recorder disabled — the guard row that keeps the span
// plumbing honest.
func RunServiceHTTPSolveNoTrace(b *testing.B, c Case) { runServiceHTTPSolve(b, c, true) }

func runServiceHTTPSolve(b *testing.B, c Case, disableTracing bool) {
	runServiceHTTPWork(b, c, "/v1/solve", disableTracing)
}

// RunServiceHTTPColor measures the coloring serving path: one POST
// /v1/color round trip per iteration, each running the whole MIS-peeling
// pipeline as one scheduled job (distinct seeds, so nothing caches).
// ns/op is per coloring — expect a multiple of the solve row, roughly
// the instance's peeling number.
func RunServiceHTTPColor(b *testing.B, c Case) {
	runServiceHTTPWork(b, c, "/v1/color", false)
}

// RunServiceHTTPTransversal measures the minimal-transversal serving
// path: one POST /v1/transversal round trip per iteration — one solve
// plus the verified complement, so the delta against the solve row is
// the duality overhead.
func RunServiceHTTPTransversal(b *testing.B, c Case) {
	runServiceHTTPWork(b, c, "/v1/transversal", false)
}

// runServiceHTTPWork is the shared measured body of the synchronous
// HTTP workload benchmarks: one POST round trip to the given endpoint
// per iteration, distinct seeds so every request is a cache miss.
func runServiceHTTPWork(b *testing.B, c Case, path string, disableTracing bool) {
	ts, done, bin, _ := newHTTPBench(b, c, disableTracing)
	defer done()
	client := ts.Client()
	algo := c.Algo.String()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		url := fmt.Sprintf("%s%s?algo=%s&seed=%d&alpha=0.3", ts.URL, path, algo, i)
		resp, err := client.Post(url, service.ContentTypeBinary, bytes.NewReader(bin))
		if err != nil {
			b.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			b.Fatalf("status %d: %s", resp.StatusCode, raw)
		}
	}
}

// RunServiceHTTPBatch measures the batch serving path at the same
// granularity — ns/op is still per solve: b.N items grouped into NDJSON
// POST /v1/batch requests of HTTPBatchSize. Tracing is on, as in the
// daemon default; RunServiceHTTPBatchNoTrace is the disabled baseline.
func RunServiceHTTPBatch(b *testing.B, c Case) { runServiceHTTPBatch(b, c, false) }

// RunServiceHTTPBatchNoTrace is RunServiceHTTPBatch without tracing —
// paired with it, the two rows bound the per-item observability cost.
func RunServiceHTTPBatchNoTrace(b *testing.B, c Case) { runServiceHTTPBatch(b, c, true) }

func runServiceHTTPBatch(b *testing.B, c Case, disableTracing bool) {
	ts, done, _, b64 := newHTTPBench(b, c, disableTracing)
	defer done()
	client := ts.Client()
	algo := c.Algo.String()
	// The first item of each request carries the instance (base64 never
	// needs JSON escaping, so the line is assembled directly); the rest
	// ref it, which is how a batch client amortizes both transfer and
	// server-side parsing across the items.
	firstPrefix := `{"id":"h","algo":"` + algo + `","alpha":0.3,"instance_b64":"` + b64 + `","seed":`
	refPrefix := `{"ref":"h","algo":"` + algo + `","alpha":0.3,"seed":`
	b.ReportAllocs()
	b.ResetTimer()
	for sent := 0; sent < b.N; {
		k := HTTPBatchSize
		if rest := b.N - sent; k > rest {
			k = rest
		}
		var body bytes.Buffer
		body.Grow(len(firstPrefix) + k*(len(refPrefix)+16))
		for j := 0; j < k; j++ {
			if j == 0 {
				body.WriteString(firstPrefix)
			} else {
				body.WriteString(refPrefix)
			}
			body.WriteString(strconv.Itoa(sent + j))
			body.WriteString("}\n")
		}
		resp, err := client.Post(ts.URL+"/v1/batch", service.ContentTypeNDJSON, &body)
		if err != nil {
			b.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			b.Fatalf("status %d: %s", resp.StatusCode, raw)
		}
		if lines := bytes.Count(raw, []byte("\n")); lines != k {
			b.Fatalf("batch returned %d result lines for %d items: %s", lines, k, raw[:min(len(raw), 400)])
		}
		sent += k
	}
}

// RunVerify is the measured body of the VerifyMIS benchmark.
func RunVerify(b *testing.B) {
	h, mis, err := VerifyInstance()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := hypermis.VerifyMIS(h, mis); err != nil {
			b.Fatal(err)
		}
	}
}
