package bl

import (
	"errors"
	"testing"

	"repro/internal/hypergraph"
	"repro/internal/par"
	"repro/internal/rng"
)

func run(t *testing.T, h *hypergraph.Hypergraph, seed uint64) *Result {
	t.Helper()
	res, err := Run(h, nil, rng.New(seed), nil, DefaultOptions())
	if err != nil {
		t.Fatalf("BL failed: %v", err)
	}
	return res
}

func TestBLTriangle(t *testing.T) {
	h := hypergraph.NewBuilder(3).AddEdge(0, 1, 2).MustBuild()
	res := run(t, h, 1)
	if err := hypergraph.VerifyMIS(h, res.InIS); err != nil {
		t.Fatal(err)
	}
}

func TestBLEdgeless(t *testing.T) {
	h := hypergraph.NewBuilder(10).MustBuild()
	res := run(t, h, 2)
	for v := 0; v < 10; v++ {
		if !res.InIS[v] {
			t.Fatal("edgeless hypergraph: every vertex must be blue")
		}
	}
	if res.Stages != 1 {
		t.Fatalf("edgeless run took %d stages", res.Stages)
	}
}

func TestBLSingletonEdge(t *testing.T) {
	h := hypergraph.NewBuilder(4).AddEdge(2).MustBuild()
	res := run(t, h, 3)
	if res.InIS[2] {
		t.Fatal("vertex with singleton edge became blue")
	}
	if !res.Red[2] {
		t.Fatal("singleton vertex not colored red")
	}
	if err := hypergraph.VerifyMIS(h, res.InIS); err != nil {
		t.Fatal(err)
	}
}

func TestBLAlwaysMIS(t *testing.T) {
	s := rng.New(10)
	for trial := 0; trial < 30; trial++ {
		n := 15 + s.Intn(50)
		h := hypergraph.RandomMixed(s, n, 1+s.Intn(80), 2, 4)
		res := run(t, h, uint64(trial))
		if err := hypergraph.VerifyMIS(h, res.InIS); err != nil {
			t.Fatalf("trial %d (%v): %v", trial, h, err)
		}
	}
}

func TestBLColorsPartitionActive(t *testing.T) {
	s := rng.New(11)
	h := hypergraph.RandomUniform(s, 40, 60, 3)
	res := run(t, h, 5)
	for v := 0; v < 40; v++ {
		if res.InIS[v] && res.Red[v] {
			t.Fatalf("vertex %d both blue and red", v)
		}
		if !res.InIS[v] && !res.Red[v] {
			// Red is only set for singleton-deleted vertices; other
			// non-IS vertices are simply not blue. Recompute: every
			// active vertex must be decided, i.e. not live. The Result
			// encodes decided-ness as InIS ∨ ¬InIS — what we really
			// check is that the run terminated, which Run guarantees.
			continue
		}
	}
}

func TestBLActiveSubset(t *testing.T) {
	s := rng.New(12)
	full := hypergraph.RandomUniform(s, 30, 40, 3)
	active := make([]bool, 30)
	for v := 0; v < 15; v++ {
		active[v] = true
	}
	sub := hypergraph.Induced(full, func(v hypergraph.V) bool { return active[v] })
	res, err := Run(sub, active, rng.New(1), nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for v := 15; v < 30; v++ {
		if res.InIS[v] {
			t.Fatalf("inactive vertex %d joined the IS", v)
		}
	}
	// Result restricted to active set must be a MIS of the induced
	// sub-hypergraph among the active vertices.
	if !hypergraph.IsIndependent(sub, res.InIS) {
		t.Fatal("not independent in induced hypergraph")
	}
}

func TestBLRejectsForeignEdges(t *testing.T) {
	h := hypergraph.NewBuilder(4).AddEdge(0, 3).MustBuild()
	active := []bool{true, true, true, false}
	if _, err := Run(h, active, rng.New(1), nil, DefaultOptions()); err == nil {
		t.Fatal("edge with inactive vertex accepted")
	}
}

func TestBLDeterministic(t *testing.T) {
	s := rng.New(13)
	h := hypergraph.RandomMixed(s, 60, 90, 2, 4)
	a := run(t, h, 77)
	b := run(t, h, 77)
	for v := range a.InIS {
		if a.InIS[v] != b.InIS[v] {
			t.Fatal("same seed, different output")
		}
	}
	if a.Stages != b.Stages {
		t.Fatal("same seed, different stage count")
	}
}

func TestBLStageLimit(t *testing.T) {
	s := rng.New(14)
	h := hypergraph.RandomUniform(s, 50, 80, 3)
	opts := DefaultOptions()
	opts.MaxStages = 1
	_, err := Run(h, nil, rng.New(1), nil, opts)
	if err == nil {
		t.Skip("finished within 1 stage (possible but vanishingly rare)")
	}
	if !errors.Is(err, ErrStageLimit) {
		t.Fatalf("wrong error: %v", err)
	}
}

func TestBLStatsCollected(t *testing.T) {
	s := rng.New(15)
	h := hypergraph.RandomUniform(s, 50, 70, 3)
	opts := DefaultOptions()
	opts.CollectStats = true
	res, err := Run(h, nil, rng.New(2), nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats) != res.Stages {
		t.Fatalf("stats rows %d != stages %d", len(res.Stats), res.Stages)
	}
	for i, st := range res.Stats {
		if st.Stage != i {
			t.Fatalf("stage index %d at row %d", st.Stage, i)
		}
		if st.Marked < st.Added {
			t.Fatalf("stage %d: added %d > marked %d", i, st.Added-st.Isolated, st.Marked)
		}
		if st.Emptied != 0 {
			t.Fatalf("stage %d emptied %d edges", i, st.Emptied)
		}
		if st.P <= 0 || st.P > 1 {
			t.Fatalf("stage %d: p = %v", i, st.P)
		}
	}
}

func TestBLMigrationMatrixConsistent(t *testing.T) {
	s := rng.New(16)
	h := hypergraph.LayeredMigration(s, 120, 2, 4, 6, 10)
	opts := DefaultOptions()
	opts.CollectStats = true
	res, err := Run(h, nil, rng.New(3), nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range res.Stats {
		for k, row := range st.Migration {
			for j, c := range row {
				if c < 0 {
					t.Fatalf("negative migration count at [%d][%d]", k, j)
				}
				if c > 0 && j >= k {
					t.Fatalf("migration to larger size: %d→%d", k, j)
				}
			}
		}
	}
}

func TestBLFixedPVariant(t *testing.T) {
	s := rng.New(17)
	h := hypergraph.RandomUniform(s, 40, 50, 3)
	opts := DefaultOptions()
	opts.RecomputeDelta = false
	res, err := Run(h, nil, rng.New(4), nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := hypergraph.VerifyMIS(h, res.InIS); err != nil {
		t.Fatal(err)
	}
}

func TestBLNoIsolatedFastPath(t *testing.T) {
	s := rng.New(18)
	h := hypergraph.RandomUniform(s, 30, 30, 3)
	opts := DefaultOptions()
	opts.AddIsolatedImmediately = false
	res, err := Run(h, nil, rng.New(5), nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := hypergraph.VerifyMIS(h, res.InIS); err != nil {
		t.Fatal(err)
	}
}

func TestBLCostAccounting(t *testing.T) {
	s := rng.New(19)
	h := hypergraph.RandomUniform(s, 40, 60, 3)
	var cost par.Cost
	if _, err := Run(h, nil, rng.New(6), &cost, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	if cost.Work() == 0 || cost.Depth() == 0 {
		t.Fatal("no cost recorded")
	}
	if cost.Work() < cost.Depth() {
		t.Fatalf("work %d < depth %d", cost.Work(), cost.Depth())
	}
}

func TestBLSunflower(t *testing.T) {
	s := rng.New(20)
	h := hypergraph.Sunflower(s, 100, 2, 3, 10)
	res := run(t, h, 7)
	if err := hypergraph.VerifyMIS(h, res.InIS); err != nil {
		t.Fatal(err)
	}
}

func TestBLCompleteSmall(t *testing.T) {
	h := hypergraph.Complete(8, 8, 3)
	res := run(t, h, 8)
	if err := hypergraph.VerifyMIS(h, res.InIS); err != nil {
		t.Fatal(err)
	}
	size := 0
	for _, in := range res.InIS {
		if in {
			size++
		}
	}
	if size != 2 {
		t.Fatalf("MIS of complete 3-uniform K8 has size %d, want 2", size)
	}
}

func TestBLStagesReasonable(t *testing.T) {
	// Theorem 2 promises polylog stages; at n=200, d=3 the run should
	// finish within a small constant times log² n ≈ 60 stages. Use a
	// generous cap to keep the test robust.
	s := rng.New(21)
	h := hypergraph.RandomUniform(s, 200, 400, 3)
	res := run(t, h, 9)
	if res.Stages > 200 {
		t.Fatalf("BL took %d stages on n=200, d=3", res.Stages)
	}
}

func BenchmarkBLUniform3(b *testing.B) {
	s := rng.New(1)
	h := hypergraph.RandomUniform(s, 2000, 4000, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(h, nil, rng.New(uint64(i)), nil, DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}
