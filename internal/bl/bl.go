// Package bl implements the Beame–Luby (BL) marking algorithm for
// hypergraph MIS (Algorithm 2 of the paper, originally from Beame &
// Luby, SODA 1990), with the per-stage instrumentation Kelsen's analysis
// — and Theorem 2's extension of it to super-constant dimension — is
// phrased in.
//
// Each stage:
//
//  1. every live vertex marks itself independently with probability
//     p = 1/(2^{d+1}·Δ(H)), where Δ(H) is the maximum normalized degree;
//  2. every fully-marked edge unmarks all of its vertices;
//  3. surviving marked vertices join the independent set and leave the
//     vertex set; edges shrink by the new IS vertices;
//  4. cleanup: edges that now contain another edge are discarded, and
//     singleton edges delete their vertex (it can never join the IS).
//
// The package records, per stage, the quantities the analysis tracks:
// Δ_i(H), the edge-migration matrix (how many edges moved from size k to
// size j, the phenomenon bounded by Kelsen's Corollary 2 and sharpened
// by the paper's Corollary 4), mark/unmark counts, and survival
// statistics for Lemma 2 (Pr[E_X | C_X] < 1/2).
//
// Implementation note: stages in which no vertex joins the set leave the
// hypergraph untouched, so the degree structures are cached and only
// recomputed after stages that made progress. This changes nothing
// observable (the stage sequence and randomness are identical) but
// removes the dominant cost in the small-p regime, where most stages are
// empty coin-flip rounds.
package bl

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/hypergraph"
	"repro/internal/par"
	"repro/internal/rng"
)

// Options configures a BL run.
type Options struct {
	// Ctx, if non-nil, is checked at the top of every stage; the run
	// returns ctx.Err() as soon as the context is done. Completed stages
	// are not rolled back — the partial coloring is simply discarded.
	Ctx context.Context

	// MaxStages aborts the run when exceeded (0 = default 1000000).
	// Theorem 2 guarantees O((log n)^{(d+4)!}) stages w.h.p.; the cap
	// exists to convert an analysis failure into an error instead of an
	// unbounded loop.
	MaxStages int

	// RecomputeDelta recomputes Δ(H) — and hence the marking probability
	// — after every stage that changed the hypergraph (Kelsen's
	// per-stage p = 1/(a·Δ)). When false, the initial probability is
	// used throughout, exactly as in the pseudocode of Algorithm 2.
	// Recomputation is the default: it is the variant the analysis of
	// Section 3.1 tracks and it terminates much faster at finite n.
	RecomputeDelta bool

	// AddIsolatedImmediately moves vertices with no incident edges into
	// the IS as soon as they become isolated instead of waiting for them
	// to be marked. This does not change the output distribution's
	// support (isolated vertices always eventually join) but removes a
	// Θ(1/p)-stage coupon-collector tail irrelevant to the analysis.
	// Disable for pseudocode-exact staging.
	AddIsolatedImmediately bool

	// CollectStats enables the per-stage instrumentation (degree
	// vectors, migration matrices).
	CollectStats bool

	// Scratch, if non-nil, provides the reusable CSR arenas for the
	// per-stage fused shrink. Callers that invoke BL repeatedly (SBL's
	// sampling rounds) pass one scratch so stages stop allocating
	// across calls; it must not be shared with a concurrent run. nil =
	// a fresh scratch per run.
	Scratch *hypergraph.RoundScratch
}

// DefaultOptions is the configuration used by SBL and the experiments.
func DefaultOptions() Options {
	return Options{
		MaxStages:              1000000,
		RecomputeDelta:         true,
		AddIsolatedImmediately: true,
	}
}

// StageStat records one stage of the algorithm.
type StageStat struct {
	Stage      int       // 0-based stage index
	LiveBefore int       // live vertices entering the stage
	Edges      int       // edges entering the stage
	Dim        int       // dimension entering the stage
	Delta      float64   // Δ(H) used for the marking probability
	P          float64   // marking probability
	Marked     int       // vertices marked (C_v = 1)
	Unmarked   int       // vertices unmarked by fully-marked edges (E_v = 1)
	Added      int       // vertices added to the IS this stage (A_v = 1)
	Isolated   int       // isolated vertices fast-pathed into the IS
	Singletons int       // vertices deleted red via singleton edges
	Supersets  int       // edges discarded as supersets
	Emptied    int       // edges that became empty when shrinking (invariant: 0)
	Deltas     []float64 // Δ_i(H) by dimension i (CollectStats only)
	// Migration[k][j] counts edges that entered the stage with size k
	// and left with size j < k (CollectStats only, nil on empty stages).
	Migration [][]int
}

// Result of a BL run.
type Result struct {
	InIS   []bool      // blue vertices (the MIS of the input)
	Red    []bool      // vertices decided out (red)
	Stages int         // stages executed
	Stats  []StageStat // per-stage records if Options.CollectStats
}

// ErrStageLimit is returned when MaxStages is exceeded.
var ErrStageLimit = errors.New("bl: stage limit exceeded")

// Run executes BL on the sub-hypergraph of h induced by the active
// vertices. Every edge of h must consist solely of active vertices
// (callers pass the already-induced hypergraph; SBL does). On return
// every active vertex is colored: blue (InIS) or red.
//
// The stream s provides all randomness; cost, if non-nil, accumulates
// the work-depth charges of the parallel primitives used by one
// EREW-implementable staging of the algorithm.
func Run(h *hypergraph.Hypergraph, active []bool, s *rng.Stream, cost *par.Cost, opts Options) (*Result, error) {
	n := h.N()
	if opts.MaxStages == 0 {
		opts.MaxStages = 1000000
	}
	if active == nil {
		active = make([]bool, n)
		par.Fill(cost, active, true)
	} else {
		a := make([]bool, n)
		copy(a, active)
		active = a
	}
	for _, e := range h.Edges() {
		for _, v := range e {
			if !active[v] {
				return nil, fmt.Errorf("bl: edge %v contains inactive vertex %d", e, v)
			}
		}
	}

	res := &Result{
		InIS: make([]bool, n),
		Red:  make([]bool, n),
	}
	live := make([]bool, n)
	copy(live, active)

	// Normalize the input once: discard supersets, then delete singleton
	// edges (their vertices are red) and edges touching those vertices.
	// The per-stage cleanup maintains this normal form thereafter.
	cur := hypergraph.RemoveSupersets(h)
	cur, _ = dropSingletons(cur, live, res)
	par.ChargeAux(cost, int64(h.M())<<uint(minInt(h.Dim(), 30)), 1)

	marked := make([]bool, n)
	unmark := make([]bool, n)
	// Scratch arenas for the fused per-stage shrink; the result is
	// consumed (copied) by RemoveSupersets before the next stage writes
	// the buffers again, so reuse across runs is safe.
	scratch := opts.Scratch
	if scratch == nil {
		scratch = &hypergraph.RoundScratch{}
	}
	noRed := func(hypergraph.V) bool { return false }

	// Cached degree structure; rebuilt only after stages that changed
	// the hypergraph.
	dirty := true
	var cachedDelta float64
	var cachedDeltas []float64
	var usedMask []bool
	p := 1.0

	for stage := 0; ; stage++ {
		if opts.Ctx != nil {
			if err := opts.Ctx.Err(); err != nil {
				return nil, err
			}
		}
		liveCount := par.Count(cost, n, func(i int) bool { return live[i] })
		if liveCount == 0 {
			res.Stages = stage
			return res, nil
		}
		if stage >= opts.MaxStages {
			return nil, fmt.Errorf("%w after %d stages (%d vertices live)", ErrStageLimit, stage, liveCount)
		}

		st := StageStat{
			Stage:      stage,
			LiveBefore: liveCount,
			Edges:      cur.M(),
			Dim:        cur.Dim(),
		}

		// Fast path: if no edges remain, every live vertex is free.
		if cur.M() == 0 {
			par.For(cost, n, func(i int) {
				if live[i] {
					res.InIS[i] = true
					live[i] = false
				}
			})
			st.Added = liveCount
			st.Isolated = liveCount
			if opts.CollectStats {
				res.Stats = append(res.Stats, st)
			}
			res.Stages = stage + 1
			return res, nil
		}

		// Optional isolated-vertex fast path. The isolated set can only
		// change when the edge set changed.
		if opts.AddIsolatedImmediately {
			if dirty || usedMask == nil {
				usedMask = cur.UsedVertices()
			}
			iso := 0
			for v := 0; v < n; v++ {
				if live[v] && !usedMask[v] {
					res.InIS[v] = true
					live[v] = false
					iso++
				}
			}
			par.ChargeStep(cost, n)
			st.Isolated = iso
		}

		// Marking probability from the degree structure. With
		// RecomputeDelta (the analyzed variant) Δ and p follow the
		// current hypergraph; otherwise the stage-0 values persist,
		// matching Algorithm 2's pseudocode.
		if dirty && (opts.RecomputeDelta || stage == 0 || opts.CollectStats) {
			tab := hypergraph.BuildDegreeTable(cur)
			cachedDelta = tab.Delta()
			cachedDeltas = tab.AllDeltas()
			if opts.RecomputeDelta || stage == 0 {
				d := cur.Dim()
				p = 1.0
				if cachedDelta > 0 {
					a := float64(int64(1) << uint(minInt(d+1, 62)))
					p = 1.0 / (a * cachedDelta)
				}
				if p > 1 {
					p = 1
				}
			}
			// Charge the degree-table build: O(m·2^d) work, O(log) depth
			// on a PRAM (per-subset counting via sorting/hashing).
			par.ChargeAux(cost, int64(cur.M())<<uint(minInt(cur.Dim(), 30)), 1)
		}
		dirty = false
		st.Delta = cachedDelta
		st.P = p
		if opts.CollectStats {
			st.Deltas = cachedDeltas
		}

		// Step 1: independent marking. Randomness is drawn from a
		// per-(stage, vertex) child stream so results are independent of
		// iteration order; BernoulliAt derives the per-vertex child on
		// the stack, so a stage constructs one heap stream, not n.
		stageStream := s.Child(uint64(stage))
		par.For(cost, n, func(i int) {
			marked[i] = live[i] && stageStream.BernoulliAt(uint64(i), p)
			unmark[i] = false
		})
		st.Marked = par.Count(cost, n, func(i int) bool { return marked[i] })

		// Step 2: unmark every vertex of every fully-marked edge,
		// evaluated against the original marking (parallel semantics:
		// E_v is a function of the C_u's).
		edges := cur.Edges()
		if st.Marked > 0 {
			par.For(cost, len(edges), func(ei int) {
				e := edges[ei]
				for _, v := range e {
					if !marked[v] {
						return
					}
				}
				for _, v := range e {
					unmark[v] = true
				}
			})
			st.Unmarked = par.Count(cost, n, func(i int) bool { return marked[i] && unmark[i] })
		}

		// Step 3: survivors join the IS.
		added := 0
		for v := 0; v < n; v++ {
			if marked[v] && !unmark[v] {
				res.InIS[v] = true
				live[v] = false
				added++
			}
		}
		par.ChargeStep(cost, n)
		st.Added += added

		// A stage with no survivors leaves the hypergraph untouched:
		// skip the structural updates entirely.
		if added == 0 {
			if opts.CollectStats {
				res.Stats = append(res.Stats, st)
			}
			continue
		}

		// Shrink edges by the new IS vertices, tracking migration.
		if opts.CollectStats {
			migration := make([][]int, cur.Dim()+1)
			for k := range migration {
				migration[k] = make([]int, cur.Dim()+1)
			}
			for _, e := range edges {
				k := len(e)
				j := 0
				for _, v := range e {
					if !(marked[v] && !unmark[v]) {
						j++
					}
				}
				if j < k {
					migration[k][j]++
				}
			}
			st.Migration = migration
		}
		next, emptied := hypergraph.NextRound(cur, noRed, func(v hypergraph.V) bool {
			return marked[v] && !unmark[v]
		}, scratch)
		st.Emptied = emptied
		if emptied > 0 {
			return nil, fmt.Errorf("bl: %d edges became fully blue at stage %d (independence broken)", emptied, stage)
		}

		// Cleanup: discard supersets, then delete singleton edges and
		// their vertices (red).
		mBefore := next.M()
		next = hypergraph.RemoveSupersets(next)
		st.Supersets = mBefore - next.M()
		par.ChargeAux(cost, int64(mBefore)<<uint(minInt(next.Dim(), 30)), 1)

		var newlyRed int
		next, newlyRed = dropSingletons(next, live, res)
		st.Singletons = newlyRed
		par.ChargeStep(cost, next.M())

		cur = next
		dirty = true
		if opts.CollectStats {
			res.Stats = append(res.Stats, st)
		}
	}
}

// dropSingletons removes singleton edges, colors their vertices red
// (removing them from live), and discards edges touching those vertices
// (BL lines 21–24: V' ← V' \ {v}).
func dropSingletons(cur *hypergraph.Hypergraph, live []bool, res *Result) (*hypergraph.Hypergraph, int) {
	next, blocked := hypergraph.RemoveSingletons(cur)
	if len(blocked) == 0 {
		return next, 0
	}
	newlyRed := 0
	for _, v := range blocked {
		if live[v] {
			live[v] = false
			res.Red[v] = true
			newlyRed++
		}
	}
	return hypergraph.DiscardTouching(next, func(v hypergraph.V) bool {
		return !live[v] && !res.InIS[v]
	}), newlyRed
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
