// Package bl implements the Beame–Luby (BL) marking algorithm for
// hypergraph MIS (Algorithm 2 of the paper, originally from Beame &
// Luby, SODA 1990), with the per-stage instrumentation Kelsen's analysis
// — and Theorem 2's extension of it to super-constant dimension — is
// phrased in.
//
// Each stage:
//
//  1. every live vertex marks itself independently with probability
//     p = 1/(2^{d+1}·Δ(H)), where Δ(H) is the maximum normalized degree;
//  2. every fully-marked edge unmarks all of its vertices;
//  3. surviving marked vertices join the independent set and leave the
//     vertex set; edges shrink by the new IS vertices;
//  4. cleanup: edges that now contain another edge are discarded, and
//     singleton edges delete their vertex (it can never join the IS).
//
// The package records, per stage, the quantities the analysis tracks:
// Δ_i(H), the edge-migration matrix (how many edges moved from size k to
// size j, the phenomenon bounded by Kelsen's Corollary 2 and sharpened
// by the paper's Corollary 4), mark/unmark counts, and survival
// statistics for Lemma 2 (Pr[E_X | C_X] < 1/2).
//
// Implementation notes: stages in which no vertex joins the set leave
// the hypergraph untouched, so the degree structures are cached and only
// recomputed after stages that made progress. The live/marked/unmarked
// vertex sets are packed bitsets — the marking pass skips dead words
// and counts are popcounts — and every structural pass (degree table,
// superset removal, the fused shrink) shards over Options.Par's worker
// pool. Neither changes anything observable: the stage sequence and the
// per-vertex randomness (index-addressed rng.At draws) are identical
// for any engine, so a fixed seed produces bit-identical output at any
// parallelism degree.
//
// The stage loop runs on the shared solver runtime: context checks,
// the stage budget and per-stage telemetry go through solver.Loop, and
// every buffer (masks, shard sets, CSR round arenas) is drawn from a
// solver.Workspace so repeated runs — SBL's per-round subcalls, pooled
// service jobs — allocate nothing once the buffers are warm.
package bl

import (
	"context"
	"errors"
	"fmt"
	"math/bits"

	"repro/internal/bitset"
	"repro/internal/hypergraph"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/solver"
)

// Options configures a BL run.
type Options struct {
	// Ctx, if non-nil, is checked at the top of every stage; the run
	// returns ctx.Err() as soon as the context is done. Completed stages
	// are not rolled back — the partial coloring is simply discarded.
	Ctx context.Context

	// Par bounds the worker parallelism of the per-stage passes (zero
	// value = whole machine). Output is identical for any engine.
	Par par.Engine

	// MaxStages aborts the run when exceeded (0 = default 1000000).
	// Theorem 2 guarantees O((log n)^{(d+4)!}) stages w.h.p.; the cap
	// exists to convert an analysis failure into an error instead of an
	// unbounded loop.
	MaxStages int

	// RecomputeDelta recomputes Δ(H) — and hence the marking probability
	// — after every stage that changed the hypergraph (Kelsen's
	// per-stage p = 1/(a·Δ)). When false, the initial probability is
	// used throughout, exactly as in the pseudocode of Algorithm 2.
	// Recomputation is the default: it is the variant the analysis of
	// Section 3.1 tracks and it terminates much faster at finite n.
	RecomputeDelta bool

	// AddIsolatedImmediately moves vertices with no incident edges into
	// the IS as soon as they become isolated instead of waiting for them
	// to be marked. This does not change the output distribution's
	// support (isolated vertices always eventually join) but removes a
	// Θ(1/p)-stage coupon-collector tail irrelevant to the analysis.
	// Disable for pseudocode-exact staging.
	AddIsolatedImmediately bool

	// CollectStats enables the per-stage instrumentation (degree
	// vectors, migration matrices).
	CollectStats bool

	// Ws, if non-nil, supplies every reusable buffer of the run — the
	// stage masks, the per-shard unmark sets and the CSR round arenas.
	// Callers that invoke BL repeatedly (SBL's sampling rounds, pooled
	// service jobs) pass one workspace so stages stop allocating across
	// calls; it must not be shared with a concurrent run. nil = a fresh
	// workspace per run.
	Ws *solver.Workspace

	// Observer, if non-nil, receives one telemetry record per stage
	// (residual shape, decided count, stage wall time).
	Observer solver.RoundObserver
}

// DefaultOptions is the configuration used by SBL and the experiments.
func DefaultOptions() Options {
	return Options{
		MaxStages:              1000000,
		RecomputeDelta:         true,
		AddIsolatedImmediately: true,
	}
}

// StageStat records one stage of the algorithm.
type StageStat struct {
	Stage      int       // 0-based stage index
	LiveBefore int       // live vertices entering the stage
	Edges      int       // edges entering the stage
	Dim        int       // dimension entering the stage
	Delta      float64   // Δ(H) used for the marking probability
	P          float64   // marking probability
	Marked     int       // vertices marked (C_v = 1)
	Unmarked   int       // vertices unmarked by fully-marked edges (E_v = 1)
	Added      int       // vertices added to the IS this stage (A_v = 1)
	Isolated   int       // isolated vertices fast-pathed into the IS
	Singletons int       // vertices deleted red via singleton edges
	Supersets  int       // edges discarded as supersets
	Emptied    int       // edges that became empty when shrinking (invariant: 0)
	Deltas     []float64 // Δ_i(H) by dimension i (CollectStats only)
	// Migration[k][j] counts edges that entered the stage with size k
	// and left with size j < k (CollectStats only, nil on empty stages).
	Migration [][]int
}

// Result of a BL run.
type Result struct {
	InIS   []bool      // blue vertices (the MIS of the input)
	Red    []bool      // vertices decided out (red)
	Stages int         // stages executed
	Stats  []StageStat // per-stage records if Options.CollectStats
}

// ErrStageLimit is returned when MaxStages is exceeded.
var ErrStageLimit = errors.New("bl: stage limit exceeded")

// unmarkShardThreshold is the arena size (total edge-list vertices)
// above which the fully-marked-edge pass fans out over per-shard unmark
// bitsets merged by a word-parallel OR.
const unmarkShardThreshold = 1 << 14

func init() {
	solver.Register(solver.Descriptor{
		Algo:       solver.BL,
		Name:       "bl",
		AutoMaxDim: 5,
		Solve: func(req solver.Request) (solver.Outcome, error) {
			opts := DefaultOptions()
			opts.Ctx = req.Ctx
			opts.Par = req.Par
			opts.Ws = req.Ws
			opts.Observer = req.Observer
			r, err := Run(req.H, nil, req.Stream, req.Cost, opts)
			if err != nil {
				return solver.Outcome{}, err
			}
			return solver.Outcome{InIS: r.InIS, Rounds: r.Stages}, nil
		},
	})
}

// Run executes BL on the sub-hypergraph of h induced by the active
// vertices. Every edge of h must consist solely of active vertices
// (callers pass the already-induced hypergraph; SBL does). On return
// every active vertex is colored: blue (InIS) or red.
//
// The stream s provides all randomness; cost, if non-nil, accumulates
// the work-depth charges of the parallel primitives used by one
// EREW-implementable staging of the algorithm.
func Run(h *hypergraph.Hypergraph, active []bool, s *rng.Stream, cost *par.Cost, opts Options) (*Result, error) {
	n := h.N()
	eng := opts.Par
	if opts.MaxStages == 0 {
		opts.MaxStages = 1000000
	}
	ws := opts.Ws
	if ws == nil {
		ws = solver.NewWorkspace()
	}
	ws.Reset(n, eng)
	live := ws.Bits(0)
	if active == nil {
		live.SetAll(n)
		par.ChargeStep(cost, n)
	} else {
		for i, a := range active {
			if a {
				live.Add(i)
			}
		}
		par.ChargeStep(cost, n)
	}
	for _, e := range h.Edges() {
		for _, v := range e {
			if !live.Has(int(v)) {
				return nil, fmt.Errorf("bl: edge %v contains inactive vertex %d", e, v)
			}
		}
	}

	res := &Result{
		InIS: make([]bool, n),
		Red:  make([]bool, n),
	}

	// Normalize the input once: discard supersets, then delete singleton
	// edges (their vertices are red) and edges touching those vertices.
	// The per-stage cleanup maintains this normal form thereafter.
	cur := hypergraph.RemoveSupersetsOn(h, eng)
	cur, _ = dropSingletons(cur, live, res, eng)
	par.ChargeAux(cost, int64(h.M())<<uint(min(h.Dim(), 30)), 1)

	marked := ws.Bits(1)
	unmark := ws.Bits(2)
	blue := ws.Bits(3)
	words := len(live)
	// Scratch arenas for the fused per-stage shrink; the result is
	// consumed (copied) by RemoveSupersets before the next stage writes
	// the buffers again, so reuse across runs is safe.
	scratch := &ws.Scratch
	// Per-shard unmark sets for the parallel fully-marked-edge pass.
	shardUnmark := ws.ShardSets()

	// Cached degree structure; rebuilt only after stages that changed
	// the hypergraph.
	dirty := true
	var cachedDelta float64
	var cachedDeltas []float64
	usedBits := ws.Bits(4)
	p := 1.0

	lp := &solver.Loop{
		Ctx:       opts.Ctx,
		Cost:      cost,
		MaxRounds: opts.MaxStages,
		LimitErr:  ErrStageLimit,
		Unit:      "stage",
		Observer:  opts.Observer,
	}
	for {
		if err := lp.Check(); err != nil {
			return nil, err
		}
		liveCount := live.Count()
		par.ChargeReduce(cost, n)
		if liveCount == 0 {
			res.Stages = lp.Rounds()
			return res, nil
		}
		if err := lp.Begin(liveCount, cur.M(), cur.Dim()); err != nil {
			return nil, err
		}
		stage := lp.Rounds()

		st := StageStat{
			Stage:      stage,
			LiveBefore: liveCount,
			Edges:      cur.M(),
			Dim:        cur.Dim(),
		}

		// Fast path: if no edges remain, every live vertex is free.
		if cur.M() == 0 {
			live.ForEach(func(v int) { res.InIS[v] = true })
			live.Reset()
			par.ChargeStep(cost, n)
			st.Added = liveCount
			st.Isolated = liveCount
			if opts.CollectStats {
				res.Stats = append(res.Stats, st)
			}
			lp.End(liveCount)
			res.Stages = lp.Rounds()
			return res, nil
		}

		// Optional isolated-vertex fast path. The isolated set can only
		// change when the edge set changed.
		if opts.AddIsolatedImmediately {
			if dirty {
				usedBits = cur.UsedVerticesInto(usedBits)
			}
			iso := 0
			for wi := 0; wi < words; wi++ {
				cand := live[wi] &^ usedBits[wi]
				if cand == 0 {
					continue
				}
				iso += bits.OnesCount64(cand)
				base := wi << 6
				for w := cand; w != 0; w &= w - 1 {
					res.InIS[base+bits.TrailingZeros64(w)] = true
				}
				live[wi] &^= cand
			}
			par.ChargeStep(cost, n)
			st.Isolated = iso
		}

		// Marking probability from the degree structure. With
		// RecomputeDelta (the analyzed variant) Δ and p follow the
		// current hypergraph; otherwise the stage-0 values persist,
		// matching Algorithm 2's pseudocode.
		if dirty && (opts.RecomputeDelta || stage == 0 || opts.CollectStats) {
			tab := hypergraph.BuildDegreeTableOn(cur, eng)
			cachedDelta = tab.Delta()
			cachedDeltas = tab.AllDeltas()
			if opts.RecomputeDelta || stage == 0 {
				d := cur.Dim()
				p = 1.0
				if cachedDelta > 0 {
					a := float64(int64(1) << uint(min(d+1, 62)))
					p = 1.0 / (a * cachedDelta)
				}
				if p > 1 {
					p = 1
				}
			}
			// Charge the degree-table build: O(m·2^d) work, O(log) depth
			// on a PRAM (per-subset counting via sorting/hashing).
			par.ChargeAux(cost, int64(cur.M())<<uint(min(cur.Dim(), 30)), 1)
		}
		dirty = false
		st.Delta = cachedDelta
		st.P = p
		if opts.CollectStats {
			st.Deltas = cachedDeltas
		}

		// Step 1: independent marking. Randomness is drawn from a
		// per-(stage, vertex) child stream so results are independent of
		// iteration order; BernoulliAt derives the per-vertex child on
		// the stack, so a stage constructs one heap stream, not n. Only
		// live vertices draw (dead words are skipped), exactly the draws
		// the mask-based staging performed. Workers own disjoint word
		// ranges, so the parallel pass is write-race-free and the marks
		// are identical for any engine.
		stageStream := s.Child(uint64(stage))
		eng.ForBlocked(nil, words, func(lo, hi int) {
			for wi := lo; wi < hi; wi++ {
				lw := live[wi]
				var mw uint64
				base := wi << 6
				for w := lw; w != 0; w &= w - 1 {
					b := bits.TrailingZeros64(w)
					if stageStream.BernoulliAt(uint64(base+b), p) {
						mw |= 1 << uint(b)
					}
				}
				marked[wi] = mw
			}
		})
		par.ChargeStep(cost, n)
		st.Marked = marked.Count()
		par.ChargeReduce(cost, n)

		// Step 2: unmark every vertex of every fully-marked edge,
		// evaluated against the original marking (parallel semantics:
		// E_v is a function of the C_u's).
		edges := cur.Edges()
		unmark.Reset()
		if st.Marked > 0 {
			m := len(edges)
			shards := eng.NumShards(m)
			if cur.ArenaLen() < unmarkShardThreshold {
				shards = 1
			}
			// Per-shard scratch sets, OR-merged word-parallel (the union
			// is order-independent, so the result is identical to the
			// sequential pass); shards==1 writes unmark directly.
			bitset.UnionShards(eng, unmark, n, m, shards, shardUnmark, func(local bitset.Set, lo, hi int) {
				markFullEdges(edges[lo:hi], marked, local)
			})
			par.ChargeStep(cost, len(edges))
			st.Unmarked = bitset.AndCount(marked, unmark)
			par.ChargeReduce(cost, n)
		}

		// Step 3: survivors join the IS. blue = marked \ unmark and its
		// size come out of one fused sweep (Copy+AndNot+Count would walk
		// the words three times).
		added := bitset.AndNotInto(blue, marked, unmark)
		blue.ForEach(func(v int) {
			res.InIS[v] = true
		})
		live.AndNot(blue)
		par.ChargeStep(cost, n)
		st.Added += added

		// A stage with no survivors leaves the hypergraph untouched:
		// skip the structural updates entirely.
		if added == 0 {
			if opts.CollectStats {
				res.Stats = append(res.Stats, st)
			}
			lp.End(st.Isolated)
			continue
		}

		// Shrink edges by the new IS vertices, tracking migration.
		if opts.CollectStats {
			migration := make([][]int, cur.Dim()+1)
			for k := range migration {
				migration[k] = make([]int, cur.Dim()+1)
			}
			for _, e := range edges {
				k := len(e)
				j := 0
				for _, v := range e {
					if !blue.Has(int(v)) {
						j++
					}
				}
				if j < k {
					migration[k][j]++
				}
			}
			st.Migration = migration
		}
		next, emptied := hypergraph.NextRoundBits(cur, nil, blue, scratch)
		st.Emptied = emptied
		if emptied > 0 {
			return nil, fmt.Errorf("bl: %d edges became fully blue at stage %d (independence broken)", emptied, stage)
		}

		// Cleanup: discard supersets, then delete singleton edges and
		// their vertices (red).
		mBefore := next.M()
		next = hypergraph.RemoveSupersetsOn(next, eng)
		st.Supersets = mBefore - next.M()
		par.ChargeAux(cost, int64(mBefore)<<uint(min(next.Dim(), 30)), 1)

		var newlyRed int
		next, newlyRed = dropSingletons(next, live, res, eng)
		st.Singletons = newlyRed
		par.ChargeStep(cost, next.M())

		cur = next
		dirty = true
		if opts.CollectStats {
			res.Stats = append(res.Stats, st)
		}
		lp.End(st.Isolated + added + newlyRed)
	}
}

// markFullEdges sets, in unmark, every vertex of every fully-marked
// edge of the slice.
func markFullEdges(edges []hypergraph.Edge, marked, unmark bitset.Set) {
	for _, e := range edges {
		full := true
		for _, v := range e {
			if !marked.Has(int(v)) {
				full = false
				break
			}
		}
		if full {
			for _, v := range e {
				unmark.Add(int(v))
			}
		}
	}
}

// dropSingletons removes singleton edges, colors their vertices red
// (removing them from live), and discards edges touching those vertices
// (BL lines 21–24: V' ← V' \ {v}).
func dropSingletons(cur *hypergraph.Hypergraph, live bitset.Set, res *Result, eng par.Engine) (*hypergraph.Hypergraph, int) {
	next, blocked := hypergraph.RemoveSingletons(cur)
	if len(blocked) == 0 {
		return next, 0
	}
	newlyRed := 0
	for _, v := range blocked {
		if live.Has(int(v)) {
			live.Del(int(v))
			res.Red[v] = true
			newlyRed++
		}
	}
	return hypergraph.DiscardTouching(next, func(v hypergraph.V) bool {
		return !live.Has(int(v)) && !res.InIS[v]
	}), newlyRed
}
