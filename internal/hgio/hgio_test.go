package hgio

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/hypergraph"
	"repro/internal/rng"
)

func roundTripText(t *testing.T, h *hypergraph.Hypergraph) *hypergraph.Hypergraph {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteText(&buf, h); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func roundTripBinary(t *testing.T, h *hypergraph.Hypergraph) *hypergraph.Hypergraph {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, h); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func equalHypergraphs(a, b *hypergraph.Hypergraph) bool {
	if a.N() != b.N() || a.M() != b.M() || a.Dim() != b.Dim() {
		return false
	}
	for i := range a.Edges() {
		ea, eb := a.Edge(i), b.Edge(i)
		if len(ea) != len(eb) {
			return false
		}
		for j := range ea {
			if ea[j] != eb[j] {
				return false
			}
		}
	}
	return true
}

func TestTextRoundTrip(t *testing.T) {
	h := hypergraph.NewBuilder(10).AddEdge(0, 5).AddEdge(1, 2, 9).MustBuild()
	if !equalHypergraphs(h, roundTripText(t, h)) {
		t.Fatal("text round trip mismatch")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	h := hypergraph.NewBuilder(10).AddEdge(0, 5).AddEdge(1, 2, 9).MustBuild()
	if !equalHypergraphs(h, roundTripBinary(t, h)) {
		t.Fatal("binary round trip mismatch")
	}
}

func TestRoundTripProperty(t *testing.T) {
	s := rng.New(1)
	check := func(seed uint16) bool {
		st := s.Child(uint64(seed))
		h := hypergraph.RandomMixed(st, 20+st.Intn(60), 1+st.Intn(80), 2, 5)
		return equalHypergraphs(h, roundTripText(t, h)) &&
			equalHypergraphs(h, roundTripBinary(t, h))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyHypergraphRoundTrip(t *testing.T) {
	h := hypergraph.NewBuilder(5).MustBuild()
	if got := roundTripText(t, h); got.N() != 5 || got.M() != 0 {
		t.Fatal("empty text round trip")
	}
	if got := roundTripBinary(t, h); got.N() != 5 || got.M() != 0 {
		t.Fatal("empty binary round trip")
	}
}

func TestReadTextComments(t *testing.T) {
	in := "hypergraph 4 2\n# comment\n0 1\n\n2 3\n"
	h, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if h.M() != 2 {
		t.Fatalf("m = %d", h.M())
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := []string{
		"",                         // empty
		"nonsense\n",               // bad header
		"hypergraph 3 2\n0 1\n",    // count mismatch
		"hypergraph 3 1\n0 x\n",    // bad vertex
		"hypergraph 3 1\n0 1 99\n", // out of range (builder rejects)
	}
	for _, in := range cases {
		if _, err := ReadText(strings.NewReader(in)); err == nil {
			t.Fatalf("input %q accepted", in)
		}
	}
}

func TestReadBinaryErrors(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("NOPE")); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := ReadBinary(strings.NewReader("HGB1")); err == nil {
		t.Fatal("truncated stream accepted")
	}
	// Valid magic, absurd n.
	var buf bytes.Buffer
	buf.WriteString("HGB1")
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}) // huge uvarint
	buf.WriteByte(0)
	if _, err := ReadBinary(&buf); err == nil {
		t.Fatal("implausible n accepted")
	}
}

func TestBinarySmallerThanText(t *testing.T) {
	s := rng.New(2)
	h := hypergraph.RandomUniform(s, 5000, 8000, 4)
	var tb, bb bytes.Buffer
	if err := WriteText(&tb, h); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&bb, h); err != nil {
		t.Fatal(err)
	}
	if bb.Len() >= tb.Len() {
		t.Fatalf("binary (%d) not smaller than text (%d)", bb.Len(), tb.Len())
	}
}

func TestVertexSetRoundTrip(t *testing.T) {
	mask := []bool{true, false, true, true, false}
	var buf bytes.Buffer
	if err := WriteVertexSet(&buf, mask); err != nil {
		t.Fatal(err)
	}
	got, err := ReadVertexSet(&buf, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range mask {
		if got[i] != mask[i] {
			t.Fatalf("mask mismatch at %d", i)
		}
	}
}

func TestReadVertexSetErrors(t *testing.T) {
	if _, err := ReadVertexSet(strings.NewReader("abc\n"), 3); err == nil {
		t.Fatal("bad id accepted")
	}
	if _, err := ReadVertexSet(strings.NewReader("7\n"), 3); err == nil {
		t.Fatal("out-of-range id accepted")
	}
	got, err := ReadVertexSet(strings.NewReader("# only a comment\n"), 3)
	if err != nil || got[0] || got[1] || got[2] {
		t.Fatal("comment-only set should be empty")
	}
}

// failAfterWriter errors once n bytes have been accepted — an
// out-of-space disk for the vertex-set writer.
type failAfterWriter struct {
	n   int
	err error
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, w.err
	}
	if len(p) > w.n {
		n := w.n
		w.n = 0
		return n, w.err
	}
	w.n -= len(p)
	return len(p), nil
}

// failAfterReader yields data, then a read error — a device failing
// mid-stream rather than at a clean EOF.
type failAfterReader struct {
	data []byte
	err  error
}

func (r *failAfterReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, r.err
	}
	n := copy(p, r.data)
	r.data = r.data[n:]
	return n, nil
}

// oneByteReader returns at most one byte per Read call, forcing every
// short-read path in the scanner.
type oneByteReader struct{ data []byte }

func (r *oneByteReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, io.EOF
	}
	p[0] = r.data[0]
	r.data = r.data[1:]
	return 1, nil
}

// TestWriteVertexSetErrorPropagation: durable records reuse this
// encoding, so a write error must surface — both mid-stream once the
// bufio buffer spills, and at the final Flush for small sets.
func TestWriteVertexSetErrorPropagation(t *testing.T) {
	boom := errors.New("disk full")
	// Large set: the buffered writer spills during the loop and the
	// Fprintln error return must propagate.
	big := make([]bool, 8192)
	for i := range big {
		big[i] = true
	}
	if err := WriteVertexSet(&failAfterWriter{n: 100, err: boom}, big); !errors.Is(err, boom) {
		t.Fatalf("mid-stream write error = %v, want %v", err, boom)
	}
	// Small set: everything fits in the bufio buffer, so the error can
	// only surface at Flush — it still must.
	small := []bool{true, true, true}
	if err := WriteVertexSet(&failAfterWriter{n: 0, err: boom}, small); !errors.Is(err, boom) {
		t.Fatalf("flush-time write error = %v, want %v", err, boom)
	}
	// An all-false mask writes nothing and cannot fail.
	if err := WriteVertexSet(&failAfterWriter{n: 0, err: boom}, make([]bool, 10)); err != nil {
		t.Fatalf("empty set write = %v, want nil (nothing to write)", err)
	}
}

// TestReadVertexSetReaderFailure: an error from the underlying reader
// (as opposed to malformed content) must be returned, not swallowed
// into a partial mask.
func TestReadVertexSetReaderFailure(t *testing.T) {
	boom := errors.New("I/O error")
	mask, err := ReadVertexSet(&failAfterReader{data: []byte("0\n1\n"), err: boom}, 5)
	if !errors.Is(err, boom) {
		t.Fatalf("reader failure = %v, want %v", err, boom)
	}
	if mask != nil {
		t.Fatal("partial mask returned alongside a reader error")
	}
}

// TestReadVertexSetShortReads: one byte per Read must decode
// identically to one big read — ids split across Read calls, the final
// line unterminated.
func TestReadVertexSetShortReads(t *testing.T) {
	const n = 1200
	want := make([]bool, n)
	var buf bytes.Buffer
	for v := 0; v < n; v += 7 {
		want[v] = true
		fmt.Fprintln(&buf, v)
	}
	data := bytes.TrimSuffix(buf.Bytes(), []byte("\n")) // unterminated tail line
	got, err := ReadVertexSet(&oneByteReader{data: data}, n)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("short-read decode differs at vertex %d", v)
		}
	}
}

// TestReadVertexSetRejectsNegative: "-1" is out of range, not a
// roll-over.
func TestReadVertexSetRejectsNegative(t *testing.T) {
	if _, err := ReadVertexSet(strings.NewReader("-1\n"), 3); err == nil {
		t.Fatal("negative id accepted")
	}
}

func TestDigestMatchesWriteBinary(t *testing.T) {
	for _, h := range []*hypergraph.Hypergraph{
		hypergraph.NewBuilder(5).MustBuild(),
		hypergraph.NewBuilder(6).AddEdge(0, 3, 5).AddEdge(1, 2).AddEdge(4).MustBuild(),
		hypergraph.RandomMixed(rng.New(3), 200, 400, 2, 7),
		// Large enough that the chunked writers flush mid-encoding.
		hypergraph.RandomMixed(rng.New(4), 5000, 12000, 2, 8),
	} {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, h); err != nil {
			t.Fatal(err)
		}
		sum := sha256.Sum256(buf.Bytes())
		if got, want := Digest(h), hex.EncodeToString(sum[:]); got != want {
			t.Fatalf("Digest = %s, want sha256 of WriteBinary output %s", got, want)
		}
	}
}
