package hgio

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"repro/internal/hypergraph"
	"repro/internal/rng"
)

// FuzzTextBinaryRoundTrip feeds arbitrary bytes through the text
// parser; whenever they parse, the canonical hypergraph must survive
// text→binary→text unchanged, and its digest must be format-invariant.
func FuzzTextBinaryRoundTrip(f *testing.F) {
	f.Add("hypergraph 4 2\n0 1\n2 3\n")
	f.Add("hypergraph 6 3\n0 1 2\n2 3 4\n1 4 5\n")
	f.Add("hypergraph 5 0\n")
	f.Add("hypergraph 3 1\n# comment\n0 1 2\n")
	f.Add("hypergraph 10 2\n9 0\n5 5 5\n") // unsorted + duplicate vertices: canonicalized
	var seedText bytes.Buffer
	if err := WriteText(&seedText, hypergraph.RandomMixed(rng.New(3), 40, 60, 2, 5)); err != nil {
		f.Fatal(err)
	}
	f.Add(seedText.String())

	f.Fuzz(func(t *testing.T, in string) {
		h, err := ReadText(strings.NewReader(in))
		if err != nil {
			return // malformed input: rejection is the correct behaviour
		}
		var text1 bytes.Buffer
		if err := WriteText(&text1, h); err != nil {
			t.Fatalf("WriteText: %v", err)
		}
		var bin bytes.Buffer
		if err := WriteBinary(&bin, h); err != nil {
			t.Fatalf("WriteBinary: %v", err)
		}
		h2, err := ReadBinary(bytes.NewReader(bin.Bytes()))
		if err != nil {
			t.Fatalf("ReadBinary of own output: %v", err)
		}
		var text2 bytes.Buffer
		if err := WriteText(&text2, h2); err != nil {
			t.Fatalf("WriteText after binary trip: %v", err)
		}
		if text1.String() != text2.String() {
			t.Fatalf("text→binary→text not identity:\n%q\nvs\n%q", text1.String(), text2.String())
		}
		if d1, d2 := Digest(h), Digest(h2); d1 != d2 {
			t.Fatalf("digest changed across binary trip: %s vs %s", d1, d2)
		}
	})
}

// TestMalformedHeaders is the rejection table for both formats' headers.
func TestMalformedHeaders(t *testing.T) {
	textCases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"whitespace only", "   \n"},
		{"wrong keyword", "graph 3 1\n0 1\n"},
		{"missing counts", "hypergraph\n"},
		{"one count", "hypergraph 3\n"},
		{"non-numeric n", "hypergraph x 1\n0 1\n"},
		{"non-numeric m", "hypergraph 3 y\n0 1\n"},
		{"negative n", "hypergraph -3 1\n0 1\n"},
		{"declared too many", "hypergraph 3 2\n0 1\n"},
		{"declared too few", "hypergraph 3 1\n0 1\n1 2\n"},
	}
	for _, tc := range textCases {
		if _, err := ReadText(strings.NewReader(tc.in)); err == nil {
			t.Errorf("text %s: %q accepted", tc.name, tc.in)
		}
	}

	binCases := []struct {
		name string
		in   []byte
	}{
		{"empty", nil},
		{"short magic", []byte("HG")},
		{"wrong magic", []byte("HGB2....")},
		{"magic only", []byte("HGB1")},
		{"n without m", append([]byte("HGB1"), 5)},
		{"huge n", append([]byte("HGB1"), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01, 0)},
		{"edge size zero", append([]byte("HGB1"), 3, 1, 0)},
		{"edge size over n", append([]byte("HGB1"), 3, 1, 9, 0, 0, 0, 0, 0, 0, 0, 0, 0)},
		{"truncated edge", append([]byte("HGB1"), 3, 1, 2, 0)},
	}
	for _, tc := range binCases {
		if _, err := ReadBinary(bytes.NewReader(tc.in)); err == nil {
			t.Errorf("binary %s: accepted", tc.name)
		}
	}
}

// TestReadBinaryHugeDeclaredEdge: a tiny stream declaring a gigantic
// edge must fail on read without first allocating the declared size.
func TestReadBinaryHugeDeclaredEdge(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("HGB1")
	var tmp [10]byte
	for _, x := range []uint64{1 << 30 /* n */, 1 /* m */, 1 << 29 /* k */} {
		k := binary.PutUvarint(tmp[:], x)
		buf.Write(tmp[:k])
	}
	// No vertex data follows: the reader must hit EOF, not OOM.
	if _, err := ReadBinary(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("truncated huge-edge stream accepted")
	}
}

// TestDigest pins the digest's semantics: equal instances digest equal,
// any change to n or the edge set changes it.
func TestDigest(t *testing.T) {
	h1 := hypergraph.NewBuilder(6).AddEdge(0, 1, 2).AddEdge(2, 3).MustBuild()
	h2 := hypergraph.NewBuilder(6).AddEdge(2, 3).AddEdge(2, 1, 0).MustBuild() // same set, different build order
	if Digest(h1) != Digest(h2) {
		t.Fatal("equal instances digest differently")
	}
	h3 := hypergraph.NewBuilder(7).AddEdge(0, 1, 2).AddEdge(2, 3).MustBuild() // extra vertex
	if Digest(h1) == Digest(h3) {
		t.Fatal("different n, same digest")
	}
	h4 := hypergraph.NewBuilder(6).AddEdge(0, 1, 2).AddEdge(2, 4).MustBuild() // different edge
	if Digest(h1) == Digest(h4) {
		t.Fatal("different edges, same digest")
	}
	if len(Digest(h1)) != 64 {
		t.Fatalf("digest length %d, want 64 hex chars", len(Digest(h1)))
	}
}
