// Package hgio serializes hypergraphs and vertex sets. Two formats:
//
// Text (the CLI interchange format): line-oriented, human-editable.
//
//	hypergraph <n> <m>
//	v1 v2 v3        # one edge per line, space-separated vertex ids
//	...
//
// Binary: a compact varint encoding for large instances (magic "HGB1",
// then n, m, then each edge as a length-prefixed delta-encoded vertex
// list). Canonical form (sorted edges) makes delta encoding effective.
//
// Vertex-set files (MIS certificates) are one vertex id per line.
package hgio

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"

	"repro/internal/hypergraph"
)

// encodeBufs pools the binary-encoding chunk buffers Digest and
// WriteBinary use, so the service's per-request cache-key and response
// encodings stop allocating once warm. Encoding is chunked (flushed
// every encodeChunk bytes), so buffers stay small regardless of
// instance size; maxPooledEncodeBuf is a backstop against pathological
// single-edge encodings pinning large buffers in the pool.
var encodeBufs = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

const (
	encodeChunk        = 1 << 15
	maxPooledEncodeBuf = 1 << 20
)

func putEncodeBuf(bp *[]byte) {
	if cap(*bp) <= maxPooledEncodeBuf {
		encodeBufs.Put(bp)
	}
}

// Digest returns the canonical instance digest: the hex SHA-256 of the
// binary encoding. Hypergraphs are canonical by construction (sorted,
// deduplicated edges), so two instances digest equal iff they have the
// same vertex count and edge set — the property result caches key on.
// The encoding streams through a pooled chunk buffer, never
// materializing more than encodeChunk bytes at once.
func Digest(h *hypergraph.Hypergraph) string {
	d := sha256.New()
	bp := encodeBufs.Get().(*[]byte)
	b := appendHeader((*bp)[:0], h)
	for _, e := range h.Edges() {
		if len(b) >= encodeChunk {
			d.Write(b)
			b = b[:0]
		}
		b = appendEdge(b, e)
	}
	d.Write(b)
	*bp = b[:0]
	putEncodeBuf(bp)
	return hex.EncodeToString(d.Sum(nil))
}

// appendHeader appends the encoding header: magic, n, m.
func appendHeader(b []byte, h *hypergraph.Hypergraph) []byte {
	b = append(b, binaryMagic...)
	b = binary.AppendUvarint(b, uint64(h.N()))
	return binary.AppendUvarint(b, uint64(h.M()))
}

// appendEdge appends one edge as a length-prefixed vertex list with
// delta encoding (sortedness makes the first vertex absolute and the
// rest gaps ≥ 1).
func appendEdge(b []byte, e hypergraph.Edge) []byte {
	b = binary.AppendUvarint(b, uint64(len(e)))
	prev := uint64(0)
	for i, v := range e {
		cur := uint64(v)
		if i == 0 {
			b = binary.AppendUvarint(b, cur)
		} else {
			b = binary.AppendUvarint(b, cur-prev)
		}
		prev = cur
	}
	return b
}

// WriteText emits the text format.
func WriteText(w io.Writer, h *hypergraph.Hypergraph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "hypergraph %d %d\n", h.N(), h.M()); err != nil {
		return err
	}
	for _, e := range h.Edges() {
		for i, v := range e {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.Itoa(int(v))); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText parses the text format. Blank lines and '#' comments are
// permitted after the header. The edge count in the header must match.
func ReadText(r io.Reader) (*hypergraph.Hypergraph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("hgio: empty input")
	}
	var n, m int
	if _, err := fmt.Sscanf(strings.TrimSpace(sc.Text()), "hypergraph %d %d", &n, &m); err != nil {
		return nil, fmt.Errorf("hgio: bad header %q: %w", sc.Text(), err)
	}
	if n < 0 || m < 0 {
		return nil, fmt.Errorf("hgio: bad header %q: negative counts", sc.Text())
	}
	b := hypergraph.NewBuilder(n)
	edges := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		e := make(hypergraph.Edge, 0, len(fields))
		for _, f := range fields {
			v, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("hgio: bad vertex %q", f)
			}
			e = append(e, hypergraph.V(v))
		}
		b.AddEdgeSlice(e)
		edges++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if edges != m {
		return nil, fmt.Errorf("hgio: header declares %d edges, found %d", m, edges)
	}
	return b.Build()
}

// binaryMagic identifies the binary format, versioned.
const binaryMagic = "HGB1"

// WriteBinary emits the compact varint format through a pooled chunk
// buffer (the encoder — appendHeader/appendEdge — is shared with
// Digest so the two cannot drift).
func WriteBinary(w io.Writer, h *hypergraph.Hypergraph) error {
	bp := encodeBufs.Get().(*[]byte)
	b := appendHeader((*bp)[:0], h)
	defer func() {
		*bp = b[:0]
		putEncodeBuf(bp)
	}()
	for _, e := range h.Edges() {
		if len(b) >= encodeChunk {
			if _, err := w.Write(b); err != nil {
				return err
			}
			b = b[:0]
		}
		b = appendEdge(b, e)
	}
	_, err := w.Write(b)
	return err
}

// ReadBinary parses the binary format.
func ReadBinary(r io.Reader) (*hypergraph.Hypergraph, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("hgio: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("hgio: bad magic %q", magic)
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	m, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if n > 1<<31 || m > 1<<31 {
		return nil, fmt.Errorf("hgio: implausible sizes n=%d m=%d", n, m)
	}
	b := hypergraph.NewBuilder(int(n))
	for i := uint64(0); i < m; i++ {
		k, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("hgio: edge %d size: %w", i, err)
		}
		if k == 0 || k > n {
			return nil, fmt.Errorf("hgio: edge %d has implausible size %d", i, k)
		}
		// Grow the edge as bytes actually arrive instead of trusting the
		// declared size k up front: a truncated stream with a huge k must
		// fail on read, not allocate gigabytes first.
		e := make(hypergraph.Edge, 0, min(k, 1<<16))
		prev := uint64(0)
		for j := uint64(0); j < k; j++ {
			d, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("hgio: edge %d vertex %d: %w", i, j, err)
			}
			if j == 0 {
				prev = d
			} else {
				prev += d
			}
			e = append(e, hypergraph.V(prev))
		}
		b.AddEdgeSlice(e)
	}
	return b.Build()
}

// WriteVertexSet emits a vertex mask as one id per line (ascending).
func WriteVertexSet(w io.Writer, mask []bool) error {
	bw := bufio.NewWriter(w)
	for v, in := range mask {
		if in {
			if _, err := fmt.Fprintln(bw, v); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadVertexSet parses one id per line into a mask of length n.
func ReadVertexSet(r io.Reader, n int) ([]bool, error) {
	mask := make([]bool, n)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		v, err := strconv.Atoi(line)
		if err != nil {
			return nil, fmt.Errorf("hgio: bad vertex %q", line)
		}
		if v < 0 || v >= n {
			return nil, fmt.Errorf("hgio: vertex %d out of range [0,%d)", v, n)
		}
		mask[v] = true
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return mask, nil
}
