// Package hgio serializes hypergraphs and vertex sets. Two formats:
//
// Text (the CLI interchange format): line-oriented, human-editable.
//
//	hypergraph <n> <m>
//	v1 v2 v3        # one edge per line, space-separated vertex ids
//	...
//
// Binary: a compact varint encoding for large instances (magic "HGB1",
// then n, m, then each edge as a length-prefixed delta-encoded vertex
// list). Canonical form (sorted edges) makes delta encoding effective.
//
// Vertex-set files (MIS certificates) are one vertex id per line.
package hgio

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/hypergraph"
)

// Digest returns the canonical instance digest: the hex SHA-256 of the
// binary encoding. Hypergraphs are canonical by construction (sorted,
// deduplicated edges), so two instances digest equal iff they have the
// same vertex count and edge set — the property result caches key on.
func Digest(h *hypergraph.Hypergraph) string {
	hsh := sha256.New()
	// WriteBinary to a hash never fails: sha256 Write cannot error.
	_ = WriteBinary(hsh, h)
	return hex.EncodeToString(hsh.Sum(nil))
}

// WriteText emits the text format.
func WriteText(w io.Writer, h *hypergraph.Hypergraph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "hypergraph %d %d\n", h.N(), h.M()); err != nil {
		return err
	}
	for _, e := range h.Edges() {
		for i, v := range e {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.Itoa(int(v))); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText parses the text format. Blank lines and '#' comments are
// permitted after the header. The edge count in the header must match.
func ReadText(r io.Reader) (*hypergraph.Hypergraph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("hgio: empty input")
	}
	var n, m int
	if _, err := fmt.Sscanf(strings.TrimSpace(sc.Text()), "hypergraph %d %d", &n, &m); err != nil {
		return nil, fmt.Errorf("hgio: bad header %q: %w", sc.Text(), err)
	}
	if n < 0 || m < 0 {
		return nil, fmt.Errorf("hgio: bad header %q: negative counts", sc.Text())
	}
	b := hypergraph.NewBuilder(n)
	edges := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		e := make(hypergraph.Edge, 0, len(fields))
		for _, f := range fields {
			v, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("hgio: bad vertex %q", f)
			}
			e = append(e, hypergraph.V(v))
		}
		b.AddEdgeSlice(e)
		edges++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if edges != m {
		return nil, fmt.Errorf("hgio: header declares %d edges, found %d", m, edges)
	}
	return b.Build()
}

// binaryMagic identifies the binary format, versioned.
const binaryMagic = "HGB1"

// WriteBinary emits the compact varint format.
func WriteBinary(w io.Writer, h *hypergraph.Hypergraph) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(x uint64) error {
		k := binary.PutUvarint(buf[:], x)
		_, err := bw.Write(buf[:k])
		return err
	}
	if err := putUvarint(uint64(h.N())); err != nil {
		return err
	}
	if err := putUvarint(uint64(h.M())); err != nil {
		return err
	}
	for _, e := range h.Edges() {
		if err := putUvarint(uint64(len(e))); err != nil {
			return err
		}
		prev := uint64(0)
		for i, v := range e {
			// Delta encoding exploits sortedness: first vertex absolute,
			// the rest as gaps ≥ 1.
			cur := uint64(v)
			if i == 0 {
				if err := putUvarint(cur); err != nil {
					return err
				}
			} else {
				if err := putUvarint(cur - prev); err != nil {
					return err
				}
			}
			prev = cur
		}
	}
	return bw.Flush()
}

// ReadBinary parses the binary format.
func ReadBinary(r io.Reader) (*hypergraph.Hypergraph, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("hgio: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("hgio: bad magic %q", magic)
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	m, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if n > 1<<31 || m > 1<<31 {
		return nil, fmt.Errorf("hgio: implausible sizes n=%d m=%d", n, m)
	}
	b := hypergraph.NewBuilder(int(n))
	for i := uint64(0); i < m; i++ {
		k, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("hgio: edge %d size: %w", i, err)
		}
		if k == 0 || k > n {
			return nil, fmt.Errorf("hgio: edge %d has implausible size %d", i, k)
		}
		// Grow the edge as bytes actually arrive instead of trusting the
		// declared size k up front: a truncated stream with a huge k must
		// fail on read, not allocate gigabytes first.
		e := make(hypergraph.Edge, 0, min(k, 1<<16))
		prev := uint64(0)
		for j := uint64(0); j < k; j++ {
			d, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("hgio: edge %d vertex %d: %w", i, j, err)
			}
			if j == 0 {
				prev = d
			} else {
				prev += d
			}
			e = append(e, hypergraph.V(prev))
		}
		b.AddEdgeSlice(e)
	}
	return b.Build()
}

// WriteVertexSet emits a vertex mask as one id per line (ascending).
func WriteVertexSet(w io.Writer, mask []bool) error {
	bw := bufio.NewWriter(w)
	for v, in := range mask {
		if in {
			if _, err := fmt.Fprintln(bw, v); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadVertexSet parses one id per line into a mask of length n.
func ReadVertexSet(r io.Reader, n int) ([]bool, error) {
	mask := make([]bool, n)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		v, err := strconv.Atoi(line)
		if err != nil {
			return nil, fmt.Errorf("hgio: bad vertex %q", line)
		}
		if v < 0 || v >= n {
			return nil, fmt.Errorf("hgio: vertex %d out of range [0,%d)", v, n)
		}
		mask[v] = true
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return mask, nil
}
