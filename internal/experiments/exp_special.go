package experiments

import (
	"repro/internal/bl"
	"repro/internal/core"
	"repro/internal/greedy"
	"repro/internal/harness"
	"repro/internal/hypergraph"
	"repro/internal/kuw"
	"repro/internal/luby"
	"repro/internal/rng"
	"repro/internal/stats"
)

// T12 — special classes and cross-solver sanity: linear hypergraphs
// (the Łuczak–Szymańska RNC class), graphs (d = 2, Luby's regime), and
// general instances. Every solver must produce a valid MIS; sizes and
// round counts are compared.
func init() {
	harness.Register(harness.Experiment{
		ID:    "t12",
		Title: "Special classes and cross-solver comparison (§1 related work)",
		Claim: "d=2 (graphs) and linear hypergraphs are known-RNC classes; all solvers agree on validity",
		Run:   runT12,
	})
}

func runT12(cfg harness.Config) []*harness.Table {
	trials := trialsOr(cfg.Trials, 5)
	n := 1024
	if cfg.Quick {
		n = 512
	}
	type inst struct {
		name string
		gen  func(seed uint64) *hypergraph.Hypergraph
	}
	instances := []inst{
		{"graph m=3n (d=2)", func(seed uint64) *hypergraph.Hypergraph {
			return hypergraph.RandomGraph(rng.New(seed), n, 3*n)
		}},
		{"linear 3-uniform", func(seed uint64) *hypergraph.Hypergraph {
			return hypergraph.Linear(rng.New(seed), n, n/2, 3)
		}},
		{"Steiner STS", func(seed uint64) *hypergraph.Hypergraph {
			// Deterministic design; capped: STS density is Θ(n²) edges,
			// so the design instance stays at ≤ 255 vertices (m ≈ 10.8k).
			np := n
			if np > 255 {
				np = 255
			}
			for np%6 != 3 {
				np--
			}
			sts, err := hypergraph.SteinerTripleSystem(np)
			if err != nil {
				panic(err)
			}
			return sts
		}},
		{"general mixed 2-6", func(seed uint64) *hypergraph.Hypergraph {
			return hypergraph.RandomMixed(rng.New(seed), n, 2*n, 2, 6)
		}},
		{"sunflower core2", func(seed uint64) *hypergraph.Hypergraph {
			return hypergraph.Sunflower(rng.New(seed), n, 2, 3, (n-2)/3)
		}},
	}
	tab := &harness.Table{
		ID:      "t12",
		Title:   "MIS size and rounds by solver (mean over trials; all outputs verified)",
		Note:    "solvers produce different MISs; validity is the invariant, size the quality signal",
		Columns: []string{"instance", "solver", "MIS size", "rounds/stages", "valid"},
	}
	for _, in := range instances {
		var gSize, bSize, kSize, sSize, lSize []float64
		var bSt, kRd, sRd, lRd []float64
		gValid, bValid, kValid, sValid, lValid := true, true, true, true, true
		isGraph := true
		for t := 0; t < trials; t++ {
			seed := cfg.Seed + uint64(t)
			h := in.gen(seed + 991)
			if h.Dim() > 2 {
				isGraph = false
			}
			g := greedy.Run(h, nil)
			if hypergraph.VerifyMIS(h, g.InIS) != nil {
				gValid = false
			}
			gSize = append(gSize, float64(g.Size))

			if b, err := bl.Run(h, nil, rng.New(seed), nil, bl.DefaultOptions()); err == nil {
				if hypergraph.VerifyMIS(h, b.InIS) != nil {
					bValid = false
				}
				bSize = append(bSize, float64(count(b.InIS)))
				bSt = append(bSt, float64(b.Stages))
			} else {
				bValid = false
			}
			if k, err := kuw.Run(h, nil, rng.New(seed), nil, kuw.Options{}); err == nil {
				if hypergraph.VerifyMIS(h, k.InIS) != nil {
					kValid = false
				}
				kSize = append(kSize, float64(count(k.InIS)))
				kRd = append(kRd, float64(k.Rounds))
			} else {
				kValid = false
			}
			if s, err := core.Run(h, rng.New(seed), nil, core.Options{Alpha: sblAlpha}); err == nil {
				if hypergraph.VerifyMIS(h, s.InIS) != nil {
					sValid = false
				}
				sSize = append(sSize, float64(count(s.InIS)))
				// Small-dimension instances take Algorithm 1's direct-BL
				// branch (line 26); report the BL stage count then, so
				// the column is comparable.
				if s.DirectBL {
					sRd = append(sRd, float64(s.TailRounds))
				} else {
					sRd = append(sRd, float64(s.Rounds))
				}
			} else {
				sValid = false
			}
			if h.Dim() <= 2 {
				if l, err := luby.Run(h, nil, rng.New(seed), nil, luby.Options{}); err == nil {
					if hypergraph.VerifyMIS(h, l.InIS) != nil {
						lValid = false
					}
					lSize = append(lSize, float64(count(l.InIS)))
					lRd = append(lRd, float64(l.Rounds))
				} else {
					lValid = false
				}
			}
		}
		row := func(solver string, sizes, rounds []float64, valid bool) {
			r := "-"
			if len(rounds) > 0 {
				r = fmtF(stats.Summarize(rounds).Mean)
			}
			tab.AddRow(in.name, solver, fmtF(stats.Summarize(sizes).Mean), r, boolCell(valid))
		}
		row("greedy", gSize, nil, gValid)
		row("BL", bSize, bSt, bValid)
		row("KUW", kSize, kRd, kValid)
		row("SBL", sSize, sRd, sValid)
		if isGraph {
			row("Luby", lSize, lRd, lValid)
		}
		cfg.Logf("t12: %s done", in.name)
	}
	return []*harness.Table{tab}
}

func count(mask []bool) int {
	c := 0
	for _, b := range mask {
		if b {
			c++
		}
	}
	return c
}
