package experiments

import (
	"math"

	"repro/internal/bl"
	"repro/internal/harness"
	"repro/internal/hypergraph"
	"repro/internal/mathx"
	"repro/internal/potential"
	"repro/internal/rng"
	"repro/internal/stats"
)

// T4 — Theorem 2: BL terminates in O((log n)^{(d+4)!}) stages for
// d ≤ log(2)n/(4·log(3)n). The bound is astronomically loose by design;
// the measurable content is that stages grow polylogarithmically — we
// fit stages against log n and report the exponent alongside the bound.
func init() {
	harness.Register(harness.Experiment{
		ID:    "t4",
		Title: "BL stage counts vs dimension (Theorem 2)",
		Claim: "BL terminates in O((log n)^{(d+4)!}) stages w.h.p. for d ≤ log(2)n/(4·log(3)n)",
		Run:   runT4,
	})
}

func runT4(cfg harness.Config) []*harness.Table {
	trials := trialsOr(cfg.Trials, 3)
	sizes := sweepSizes(cfg.Quick)
	dims := []int{2, 3, 4, 5}
	if cfg.Quick {
		dims = []int{2, 3}
	}
	tab := &harness.Table{
		ID:      "t4",
		Title:   "BL stages on random d-uniform hypergraphs (m = 2n)",
		Note:    "measured stages must stay polylog; the (d+4)! bound is reported as log₂ for scale (vacuously loose)",
		Columns: []string{"d", "n", "stages mean", "stages max", "polylog fit e: stages~(logn)^e", "log₂ bound (logn)^{(d+4)!}"},
	}
	for _, d := range dims {
		var logns, st []float64
		rows := make([][2]float64, 0, len(sizes))
		var maxByN []float64
		for _, n := range sizes {
			var stages []float64
			for t := 0; t < trials; t++ {
				h := hypergraph.RandomUniform(rng.New(cfg.Seed+uint64(7000*n+100*d+t)), n, 2*n, d)
				res, err := bl.Run(h, nil, rng.New(cfg.Seed+uint64(t)), nil, bl.DefaultOptions())
				if err != nil {
					cfg.Logf("t4: d=%d n=%d: %v", d, n, err)
					continue
				}
				stages = append(stages, float64(res.Stages))
			}
			if len(stages) == 0 {
				continue
			}
			s := stats.Summarize(stages)
			rows = append(rows, [2]float64{float64(n), s.Mean})
			maxByN = append(maxByN, s.Max)
			logns = append(logns, mathx.Log2(float64(n)))
			st = append(st, s.Mean)
		}
		fit := stats.GrowthExponent(logns, st)
		for i, r := range rows {
			n := int(r[0])
			fitCell := ""
			if i == len(rows)-1 {
				fitCell = fmtF(fit.Slope)
			}
			tab.AddRow(fmtI(d), fmtI(n), fmtF(r[1]), fmtF(maxByN[i]), fitCell,
				fmtF(potential.StageBoundLog(float64(n), d)))
		}
		cfg.Logf("t4: d=%d done", d)
	}
	return []*harness.Table{tab}
}

// T5 — Lemma 2 ([2] Lemma 1): conditioned on a set X being fully
// marked, the probability that any of its vertices is unmarked by a
// fully-marked edge is < 1/2, i.e. marked sets survive into the IS with
// probability > 1/2. Measured by forcing C_X = 1 and simulating.
func init() {
	harness.Register(harness.Experiment{
		ID:    "t5",
		Title: "Survival probability of marked sets (Lemma 2)",
		Claim: "Pr[E_X | C_X] < 1/2 whenever |X| < d and no edge is inside X",
		Run:   runT5,
	})
}

func runT5(cfg harness.Config) []*harness.Table {
	trials := trialsOr(cfg.Trials, 4000)
	n := 512
	if cfg.Quick {
		n, trials = 256, 1000
	}
	tab := &harness.Table{
		ID:      "t5",
		Title:   "Pr[E_X | C_X] at BL's marking probability p = 1/(2^{d+1}Δ)",
		Note:    "every measured probability must sit strictly below 0.5 — the engine of per-stage progress",
		Columns: []string{"d", "|X|", "p", "Pr[E_X|C_X] measured", "bound"},
	}
	for _, d := range []int{3, 4, 5} {
		h := hypergraph.RandomUniform(rng.New(cfg.Seed+uint64(100*d)), n, 2*n, d)
		tabDeg := hypergraph.BuildDegreeTable(h)
		delta := tabDeg.Delta()
		p := 1.0 / (math.Pow(2, float64(d+1)) * delta)
		if p > 1 {
			p = 1
		}
		edges := h.Edges()
		for _, xLen := range []int{1, 2} {
			if xLen >= d {
				continue
			}
			s := rng.New(cfg.Seed + uint64(d*10+xLen))
			hits, total := 0, 0
			marked := make([]bool, n)
			for t := 0; t < trials; t++ {
				// Pick X as a random subset of a random edge (guaranteed
				// to be a candidate set with no contained edge, since
				// proper subsets of minimal edges are not edges after
				// superset removal; random uniform instances rarely have
				// nested edges at all).
				e := edges[s.Intn(len(edges))]
				x := e[:xLen]
				ts := s.Child(uint64(t))
				for v := range marked {
					marked[v] = ts.Child(uint64(v)).Bernoulli(p)
				}
				for _, v := range x {
					marked[v] = true // condition on C_X
				}
				// E_X: some vertex of X belongs to a fully-marked edge.
				ex := false
				for _, f := range edges {
					all := true
					touchesX := false
					for _, v := range f {
						if !marked[v] {
							all = false
							break
						}
					}
					if !all {
						continue
					}
					for _, v := range f {
						for _, xv := range x {
							if v == xv {
								touchesX = true
							}
						}
					}
					if touchesX {
						ex = true
						break
					}
				}
				total++
				if ex {
					hits++
				}
			}
			tab.AddRow(fmtI(d), fmtI(xLen), fmtF(p),
				fmtF(float64(hits)/float64(total)), "0.5")
		}
		cfg.Logf("t5: d=%d done", d)
	}
	return []*harness.Table{tab}
}

// T6 — Lemma 3 ([2] Lemma 2): if d_j(X,H) ≥ εΔ then with probability
// ≥ ¼(ε/a)^j some Y ∈ N_j(X,H) is fully added to the IS in one stage
// (collapsing X's degree). Measured on star instances where the hub has
// the extreme degree.
func init() {
	harness.Register(harness.Experiment{
		ID:    "t6",
		Title: "Degree collapse probability (Lemma 3)",
		Claim: "d_j(X) ≥ εΔ ⟹ Pr[∃Y ∈ N_j(X): A_Y] ≥ ¼(ε/a)^j with a = 2^{d+1}",
		Run:   runT6,
	})
}

func runT6(cfg harness.Config) []*harness.Table {
	trials := trialsOr(cfg.Trials, 3000)
	n := 512
	if cfg.Quick {
		n, trials = 256, 800
	}
	tab := &harness.Table{
		ID:      "t6",
		Title:   "One-stage collapse frequency for the maximum-degree set (star instances)",
		Note:    "measured frequency must dominate the ¼(ε/a)^j lower bound",
		Columns: []string{"d", "j", "eps", "bound ¼(ε/a)^j", "measured", "ratio"},
	}
	for _, d := range []int{3, 4} {
		m := 4 * n / d
		h := hypergraph.Star(rng.New(cfg.Seed+uint64(d)), n, m, d)
		tabDeg := hypergraph.BuildDegreeTable(h)
		delta := tabDeg.Delta()
		a := math.Pow(2, float64(d+1))
		p := 1.0 / (a * delta)
		x := hypergraph.Edge{0} // the hub
		j := d - 1
		dj := tabDeg.NormDegree(x, j)
		eps := dj / delta
		bound := 0.25 * math.Pow(eps/a, float64(j))
		edges := h.Edges()
		s := rng.New(cfg.Seed + uint64(31*d))
		marked := make([]bool, n)
		unmark := make([]bool, n)
		hits := 0
		for t := 0; t < trials; t++ {
			ts := s.Child(uint64(t))
			for v := range marked {
				marked[v] = ts.Child(uint64(v)).Bernoulli(p)
				unmark[v] = false
			}
			for _, f := range edges {
				all := true
				for _, v := range f {
					if !marked[v] {
						all = false
						break
					}
				}
				if all {
					for _, v := range f {
						unmark[v] = true
					}
				}
			}
			// Collapse: some petal Y (edge minus hub) fully added.
			for _, f := range edges {
				y := f[1:] // hub is vertex 0, first in sorted order
				allIn := true
				for _, v := range y {
					if !(marked[v] && !unmark[v]) {
						allIn = false
						break
					}
				}
				if allIn {
					hits++
					break
				}
			}
		}
		measured := float64(hits) / float64(trials)
		ratio := math.Inf(1)
		if bound > 0 {
			ratio = measured / bound
		}
		tab.AddRow(fmtI(d), fmtI(j), fmtF(eps), fmtF(bound), fmtF(measured), fmtF(ratio))
		cfg.Logf("t6: d=%d done", d)
	}
	return []*harness.Table{tab}
}

// T7 — Lemma 5: within (log n)^r stages, v₂(H_s) stays ≤ v₂·(1+o(1));
// more precisely v_j(H_s) ≤ T_j·(1+λ(n)). We track the v_j trajectory
// (log₂-space, paper recurrence) across a BL run on migration-heavy
// instances.
func init() {
	harness.Register(harness.Experiment{
		ID:    "t7",
		Title: "Potential-function trajectory v_j(H_s) (Lemma 5)",
		Claim: "v_j(H_s) ≤ T_j·(1+λ(n)) throughout; v₂ decreases by a constant factor every q_d stages",
		Run:   runT7,
	})
}

func runT7(cfg harness.Config) []*harness.Table {
	n := 1024
	if cfg.Quick {
		n = 512
	}
	h := hypergraph.LayeredMigration(rng.New(cfg.Seed+3), n, 2, 4, 6, n/16)
	opts := bl.DefaultOptions()
	opts.CollectStats = true
	res, err := bl.Run(h, nil, rng.New(cfg.Seed), nil, opts)
	tab := &harness.Table{
		ID:      "t7",
		Title:   "log₂ v_j across BL stages (layered-migration instance, paper recurrence f(+d²))",
		Note:    "v₂ must be non-increasing up to the (1+λ) slack; λ(n) = 2·loglog n/log n",
		Columns: []string{"stage", "edges", "dim", "Δ(H)", "log₂v₂", "log₂v₃", "log₂v₄", "added"},
	}
	if err != nil {
		cfg.Logf("t7: %v", err)
		return []*harness.Table{tab}
	}
	d := h.Dim()
	ft := potential.PaperTable(d)
	logCell := func(v []float64, j int) string {
		if j < len(v) && !math.IsInf(v[j], -1) {
			return fmtF(v[j])
		}
		return "-inf"
	}
	// Sample at most ~24 stages evenly to keep the table readable.
	step := 1
	if len(res.Stats) > 24 {
		step = len(res.Stats) / 24
	}
	prevV2 := math.Inf(1)
	violations := 0
	lambda := potential.Lambda(float64(n))
	slackLog := math.Log2(1 + lambda)
	for i, st := range res.Stats {
		if st.Deltas == nil {
			continue
		}
		v := ft.VValuesLog(float64(n), st.Deltas)
		v2 := math.Inf(-1)
		if len(v) > 2 {
			v2 = v[2]
		}
		if v2 > prevV2+slackLog+1e-9 {
			violations++
		}
		if v2 < prevV2 {
			prevV2 = v2
		}
		if i%step == 0 || i == len(res.Stats)-1 {
			tab.AddRow(fmtI(st.Stage), fmtI(st.Edges), fmtI(st.Dim), fmtF(st.Delta),
				logCell(v, 2), logCell(v, 3), logCell(v, 4), fmtI(st.Added))
		}
	}
	sum := &harness.Table{
		ID: "t7", Title: "Trajectory summary",
		Columns: []string{"stages", "λ(n)", "v₂ slack violations", "verdict"},
	}
	verdict := "monotone within (1+λ) slack"
	if violations > 0 {
		verdict = "VIOLATIONS — investigate"
	}
	sum.AddRow(fmtI(res.Stages), fmtF(lambda), fmtI(violations), verdict)
	return []*harness.Table{tab, sum}
}
