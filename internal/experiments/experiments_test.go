package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/harness"
	"repro/internal/hypergraph"
	"repro/internal/rng"
)

// TestRegistryComplete asserts every experiment in DESIGN.md §5 is
// registered.
func TestRegistryComplete(t *testing.T) {
	want := []string{"t1", "t2", "t3", "t4", "t5", "t6", "t7", "t8", "t9",
		"t10", "t11", "t12", "t13", "t14", "t15", "f1", "f2"}
	for _, id := range want {
		if _, ok := harness.Get(id); !ok {
			t.Fatalf("experiment %s not registered", id)
		}
	}
}

// TestAllExperimentsSmoke runs every experiment in quick mode with
// minimal trials: every one must produce at least one table with rows
// and render without panicking.
func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke runs take ~1 min")
	}
	cfg := harness.Config{Seed: 7, Trials: 1, Quick: true}
	for _, e := range harness.All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			tables := e.Run(cfg)
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			var buf bytes.Buffer
			rows := 0
			for _, tab := range tables {
				tab.Render(&buf)
				rows += len(tab.Rows)
			}
			if rows == 0 {
				t.Fatalf("%s produced no rows", e.ID)
			}
			if !strings.Contains(buf.String(), strings.ToUpper(e.ID)) {
				t.Fatalf("%s render missing id header", e.ID)
			}
		})
	}
}

func TestGeneralInstanceWithinEdgeBudget(t *testing.T) {
	h := generalInstance(rng.New(1), 1024, 10, 2)
	if h.N() != 1024 {
		t.Fatalf("n = %d", h.N())
	}
	if h.M() == 0 || h.M() > 2048 {
		t.Fatalf("m = %d", h.M())
	}
	if h.Dim() > 10 {
		t.Fatalf("dim = %d", h.Dim())
	}
}

func TestRunDepthHelpers(t *testing.T) {
	h := generalInstance(rng.New(2), 128, 6, 2)
	d, w, _, _, err := runSBLDepth(h, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 || w < d {
		t.Fatalf("depth=%d work=%d", d, w)
	}
	dk, wk, rk, err := runKUWDepth(h, 4)
	if err != nil {
		t.Fatal(err)
	}
	if dk <= 0 || wk < dk || rk <= 0 {
		t.Fatalf("kuw depth=%d work=%d rounds=%d", dk, wk, rk)
	}
	g, err := runGreedyDepth(h)
	if err != nil {
		t.Fatal(err)
	}
	if g < int64(h.N()) {
		t.Fatalf("greedy work %d below n", g)
	}
}

func TestFmtHelpers(t *testing.T) {
	cases := map[float64]string{}
	_ = cases
	if fmtF(1.0/3) == "" || fmtI(7) != "7" {
		t.Fatal("formatting broken")
	}
	if got := fmtF(1e9); !strings.Contains(got, "e+") {
		t.Fatalf("large float format: %s", got)
	}
}

func TestGeoMean(t *testing.T) {
	if g := geoMean([]float64{2, 8}); g < 3.99 || g > 4.01 {
		t.Fatalf("geoMean = %v", g)
	}
	if geoMean(nil) != 0 {
		t.Fatal("empty geoMean")
	}
}

func TestCountHelper(t *testing.T) {
	if count([]bool{true, false, true}) != 2 {
		t.Fatal("count broken")
	}
}

func TestBoolCell(t *testing.T) {
	if boolCell(true) != "yes" || boolCell(false) != "no" {
		t.Fatal("boolCell broken")
	}
}

var _ = hypergraph.Edge{} // keep the import used under future edits
