// Package experiments implements every experiment in DESIGN.md §5 —
// one per analytical claim of the paper, each regenerating a table or
// figure-series via the harness registry. The paper itself (a theory
// result) reports no measurements; these experiments turn its theorems,
// lemmas and inequalities into measurable quantities and record
// paper-vs-measured in EXPERIMENTS.md.
//
// Import this package for the side effect of registering experiments:
//
//	_ "repro/internal/experiments"
package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/greedy"
	"repro/internal/hypergraph"
	"repro/internal/kuw"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/stats"
)

// fmtF renders a float compactly for table cells.
func fmtF(x float64) string {
	switch {
	case math.IsInf(x, 1):
		return "+inf"
	case math.IsInf(x, -1):
		return "-inf"
	case math.IsNaN(x):
		return "nan"
	case x != 0 && (math.Abs(x) >= 1e6 || math.Abs(x) < 1e-4):
		return fmt.Sprintf("%.3g", x)
	default:
		return fmt.Sprintf("%.4g", x)
	}
}

func fmtI(x int) string { return fmt.Sprintf("%d", x) }

// sweepSizes returns the instance sizes for scaling sweeps.
func sweepSizes(quick bool) []int {
	if quick {
		return []int{256, 512, 1024}
	}
	return []int{256, 512, 1024, 2048, 4096, 8192}
}

// trialsOr returns cfg-specified trials or the default.
func trialsOr(t, def int) int {
	if t > 0 {
		return t
	}
	return def
}

// generalInstance builds the standard "general hypergraph" workload for
// the SBL experiments: mixed edge sizes 2..maxEdge, m = factor·n edges —
// comfortably within the paper's edge budget n^β at these scales.
func generalInstance(s *rng.Stream, n int, maxEdge int, factor float64) *hypergraph.Hypergraph {
	m := int(factor * float64(n))
	if m < 1 {
		m = 1
	}
	return hypergraph.RandomMixed(s, n, m, 2, maxEdge)
}

// sblAlpha is the sampling exponent used by the measurable-regime
// experiments (the paper's α = 1/log(3)n degenerates at finite n; see
// core.PaperParams).
const sblAlpha = 0.3

// runSBLDepth runs SBL and returns (depth, work, rounds, tailRounds).
func runSBLDepth(h *hypergraph.Hypergraph, seed uint64) (int64, int64, int, int, error) {
	var cost par.Cost
	res, err := core.Run(h, rng.New(seed), &cost, core.Options{Alpha: sblAlpha})
	if err != nil {
		return 0, 0, 0, 0, err
	}
	if err := hypergraph.VerifyMIS(h, res.InIS); err != nil {
		return 0, 0, 0, 0, err
	}
	return cost.Depth(), cost.Work(), res.Rounds, res.TailRounds, nil
}

// runKUWDepth runs KUW and returns (depth, work, rounds).
func runKUWDepth(h *hypergraph.Hypergraph, seed uint64) (int64, int64, int, error) {
	var cost par.Cost
	res, err := kuw.Run(h, nil, rng.New(seed), &cost, kuw.Options{})
	if err != nil {
		return 0, 0, 0, err
	}
	if err := hypergraph.VerifyMIS(h, res.InIS); err != nil {
		return 0, 0, 0, err
	}
	return cost.Depth(), cost.Work(), res.Rounds, nil
}

// runGreedyDepth runs sequential greedy; its "depth" is its work (one
// processor), the baseline the parallel algorithms are measured against.
func runGreedyDepth(h *hypergraph.Hypergraph) (int64, error) {
	res := greedy.Run(h, nil)
	if err := hypergraph.VerifyMIS(h, res.InIS); err != nil {
		return 0, err
	}
	// Greedy's sequential cost: one step per vertex plus edge updates.
	work := int64(h.N())
	for _, e := range h.Edges() {
		work += int64(len(e))
	}
	return work, nil
}

// geoMean returns the geometric mean of positive values.
func geoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// fitExponent fits y ~ n^e over a sweep and formats it.
func fitExponent(ns []int, ys []float64) string {
	xs := make([]float64, len(ns))
	for i, n := range ns {
		xs[i] = float64(n)
	}
	f := stats.GrowthExponent(xs, ys)
	return fmt.Sprintf("%.3f (R²=%.3f)", f.Slope, f.R2)
}
