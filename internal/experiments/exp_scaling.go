package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/mathx"
	"repro/internal/rng"
	"repro/internal/stats"
)

// T1 — Theorem 1: SBL total parallel time n^{o(1)}. We measure the PRAM
// depth of SBL across a size sweep and fit the growth exponent; the
// claim's finite-n shadow is an exponent visibly below KUW's ~0.5 and
// shrinking as n grows.
func init() {
	harness.Register(harness.Experiment{
		ID:    "t1",
		Title: "SBL depth scaling (Theorem 1: total time n^{o(1)})",
		Claim: "SBL runs in n^{o(1)} parallel time on EREW PRAM with poly(m,n) processors",
		Run:   runT1,
	})
}

func runT1(cfg harness.Config) []*harness.Table {
	trials := trialsOr(cfg.Trials, 3)
	sizes := sweepSizes(cfg.Quick)
	tab := &harness.Table{
		ID:      "t1",
		Title:   "SBL PRAM depth vs n (mixed edges 2–14, m = 2n, α = 0.3)",
		Note:    "Theorem 1 predicts depth n^{o(1)}: the fitted exponent must sit below KUW's ≈ ½ and shrink with scale",
		Columns: []string{"n", "m", "depth(mean)", "depth/log²n", "rounds(mean)", "work(mean)"},
	}
	var ns []int
	var depths []float64
	for _, n := range sizes {
		var ds, ws, rs []float64
		for t := 0; t < trials; t++ {
			h := generalInstance(rng.New(cfg.Seed+uint64(1000*n+t)), n, 14, 2)
			d, w, r, _, err := runSBLDepth(h, cfg.Seed+uint64(t))
			if err != nil {
				cfg.Logf("t1: n=%d trial %d: %v", n, t, err)
				continue
			}
			ds = append(ds, float64(d))
			ws = append(ws, float64(w))
			rs = append(rs, float64(r))
		}
		if len(ds) == 0 {
			continue
		}
		sd := stats.Summarize(ds)
		logn := mathx.Log2(float64(n))
		tab.AddRow(fmtI(n), fmtI(2*n), fmtF(sd.Mean),
			fmtF(sd.Mean/(logn*logn)),
			fmtF(stats.Summarize(rs).Mean), fmtF(stats.Summarize(ws).Mean))
		ns = append(ns, n)
		depths = append(depths, sd.Mean)
		cfg.Logf("t1: n=%d done", n)
	}
	fit := &harness.Table{
		ID: "t1", Title: "Fitted depth growth exponent",
		Note:    "paper: o(1) asymptotically; at finite n the α=0.3 parameterization bounds rounds by 2·n^0.3·log n",
		Columns: []string{"series", "exponent e in depth ~ n^e"},
	}
	fit.AddRow("SBL depth", fitExponent(ns, depths))
	return []*harness.Table{tab, fit}
}

// T2 — the round bound of Section 2.2 claim (1): SBL executes at most
// r = 2·log(n)/p rounds w.h.p., because each round colors ≥ p·n_i/2
// vertices except with probability e^{−1/(8p)} (event A).
func init() {
	harness.Register(harness.Experiment{
		ID:    "t2",
		Title: "SBL round count vs the 2·log(n)/p bound (claim 1, §2.2)",
		Claim: "rounds ≤ 2·log(n)/p w.h.p.; per-round removals ≥ p·n_i/2 (Chernoff, Lemma 1)",
		Run:   runT2,
	})
}

func runT2(cfg harness.Config) []*harness.Table {
	trials := trialsOr(cfg.Trials, 5)
	sizes := sweepSizes(cfg.Quick)
	tab := &harness.Table{
		ID:      "t2",
		Title:   "SBL rounds: measured vs bound (α = 0.3)",
		Note:    "every row must satisfy max(rounds) ≤ bound; eventA counts rounds that removed < p·n_i/2 vertices",
		Columns: []string{"n", "p", "bound 2logn/p", "rounds mean", "rounds max", "eventA rounds", "total rounds"},
	}
	for _, n := range sizes {
		prm := core.DeriveParams(n, 2*n, sblAlpha)
		bound := core.ExpectedRounds(n, prm.P)
		var rounds []float64
		eventA, total := 0, 0
		for t := 0; t < trials; t++ {
			h := generalInstance(rng.New(cfg.Seed+uint64(2000*n+t)), n, 14, 2)
			res, err := core.Run(h, rng.New(cfg.Seed+uint64(t)), nil,
				core.Options{Alpha: sblAlpha, CollectStats: true})
			if err != nil {
				cfg.Logf("t2: n=%d trial %d: %v", n, t, err)
				continue
			}
			rounds = append(rounds, float64(res.Rounds))
			for _, st := range res.Stats {
				total++
				if st.EventA {
					eventA++
				}
			}
		}
		if len(rounds) == 0 {
			continue
		}
		s := stats.Summarize(rounds)
		tab.AddRow(fmtI(n), fmtF(prm.P), fmtF(bound), fmtF(s.Mean), fmtF(s.Max),
			fmtI(eventA), fmtI(total))
		cfg.Logf("t2: n=%d done", n)
	}
	return []*harness.Table{tab}
}

// T11 — work bound: Theorem 1 claims poly(m,n) processors; measured
// total work and its growth exponent confirm polynomial (in fact
// near-linear-per-round) work for all solvers.
func init() {
	harness.Register(harness.Experiment{
		ID:    "t11",
		Title: "PRAM work bounds across solvers (poly(m,n) processors)",
		Claim: "SBL and its subroutines use poly(m,n) processors / work",
		Run:   runT11,
	})
}

func runT11(cfg harness.Config) []*harness.Table {
	trials := trialsOr(cfg.Trials, 3)
	sizes := sweepSizes(cfg.Quick)
	tab := &harness.Table{
		ID:      "t11",
		Title:   "Total PRAM work and parallelism (work/depth)",
		Note:    "polynomial work exponents certify the poly(m,n) processor bound; work/depth is the average usable parallelism",
		Columns: []string{"n", "SBL work", "SBL work/depth", "KUW work", "KUW work/depth", "greedy work(seq)"},
	}
	var ns []int
	var sblW, kuwW []float64
	for _, n := range sizes {
		var sw, sd, kw, kd, gw []float64
		for t := 0; t < trials; t++ {
			h := generalInstance(rng.New(cfg.Seed+uint64(3000*n+t)), n, 14, 2)
			d, w, _, _, err := runSBLDepth(h, cfg.Seed+uint64(t))
			if err == nil {
				sw = append(sw, float64(w))
				sd = append(sd, float64(d))
			}
			dk, wk, _, err := runKUWDepth(h, cfg.Seed+uint64(t))
			if err == nil {
				kw = append(kw, float64(wk))
				kd = append(kd, float64(dk))
			}
			if g, err := runGreedyDepth(h); err == nil {
				gw = append(gw, float64(g))
			}
		}
		if len(sw) == 0 || len(kw) == 0 {
			continue
		}
		msw, msd := stats.Summarize(sw).Mean, stats.Summarize(sd).Mean
		mkw, mkd := stats.Summarize(kw).Mean, stats.Summarize(kd).Mean
		tab.AddRow(fmtI(n), fmtF(msw), fmtF(msw/msd), fmtF(mkw), fmtF(mkw/mkd),
			fmtF(stats.Summarize(gw).Mean))
		ns = append(ns, n)
		sblW = append(sblW, msw)
		kuwW = append(kuwW, mkw)
		cfg.Logf("t11: n=%d done", n)
	}
	fit := &harness.Table{
		ID: "t11", Title: "Work growth exponents",
		Columns: []string{"series", "exponent e in work ~ n^e"},
	}
	fit.AddRow("SBL", fitExponent(ns, sblW))
	fit.AddRow("KUW", fitExponent(ns, kuwW))
	return []*harness.Table{tab, fit}
}

// F1 — the headline comparison: SBL's depth grows as n^{o(1)} against
// KUW's O(√n·(log n + log m)). We produce the log-log series for both
// (plus the sequential baseline) and the fitted exponents; "who wins and
// where the crossover falls" is the figure the paper's introduction
// implies.
func init() {
	harness.Register(harness.Experiment{
		ID:    "f1",
		Title: "Depth crossover: SBL vs KUW vs sequential (headline, §1)",
		Claim: "SBL is the first o(√n)-time algorithm for general hypergraphs with m ≤ n^{log(2)n/(8(log(3)n)²)}",
		Run:   runF1,
	})
}

func runF1(cfg harness.Config) []*harness.Table {
	trials := trialsOr(cfg.Trials, 3)
	sizes := sweepSizes(cfg.Quick)
	tab := &harness.Table{
		ID:      "f1",
		Title:   "Depth series (log-log figure data; mixed edges 2–14, m = 2n)",
		Note:    "KUW's exponent should sit near ½ (its Θ(√m) blocking behaviour); SBL's below it — the paper's separation",
		Columns: []string{"n", "SBL depth", "KUW depth", "greedy time", "SBL rounds", "KUW rounds"},
	}
	var ns []int
	var sblD, kuwD, sblR, kuwR []float64
	for _, n := range sizes {
		var sd, kd, gd, sr, kr []float64
		for t := 0; t < trials; t++ {
			h := generalInstance(rng.New(cfg.Seed+uint64(4000*n+t)), n, 14, 2)
			d, _, r, _, err := runSBLDepth(h, cfg.Seed+uint64(t))
			if err != nil {
				cfg.Logf("f1: sbl n=%d: %v", n, err)
				continue
			}
			dk, _, rk, err := runKUWDepth(h, cfg.Seed+uint64(t)+7)
			if err != nil {
				continue
			}
			g, err := runGreedyDepth(h)
			if err != nil {
				continue
			}
			sd = append(sd, float64(d))
			kd = append(kd, float64(dk))
			gd = append(gd, float64(g))
			sr = append(sr, float64(r))
			kr = append(kr, float64(rk))
		}
		if len(sd) == 0 {
			continue
		}
		tab.AddRow(fmtI(n),
			fmtF(stats.Summarize(sd).Mean), fmtF(stats.Summarize(kd).Mean),
			fmtF(stats.Summarize(gd).Mean),
			fmtF(stats.Summarize(sr).Mean), fmtF(stats.Summarize(kr).Mean))
		ns = append(ns, n)
		sblD = append(sblD, stats.Summarize(sd).Mean)
		kuwD = append(kuwD, stats.Summarize(kd).Mean)
		sblR = append(sblR, stats.Summarize(sr).Mean)
		kuwR = append(kuwR, stats.Summarize(kr).Mean)
		cfg.Logf("f1: n=%d done", n)
	}
	fit := &harness.Table{
		ID: "f1", Title: "Fitted exponents (the figure's slopes)",
		Note: "rounds are the theory-level comparison: SBL's bound is 2·n^α·log n (slope ≈ α + log-term, α = 0.3 here), " +
			"KUW's is Θ(√n)-like (slope ≈ 0.5); depth adds per-round polylog overheads to both",
		Columns: []string{"series", "exponent e in y ~ n^e"},
	}
	fit.AddRow("SBL depth", fitExponent(ns, sblD))
	fit.AddRow("KUW depth", fitExponent(ns, kuwD))
	fit.AddRow("SBL rounds", fitExponent(ns, sblR))
	fit.AddRow("KUW rounds", fitExponent(ns, kuwR))
	// Crossover estimate: first size where SBL's depth beats KUW's.
	cross := "none in sweep"
	for i := range ns {
		if sblD[i] < kuwD[i] {
			cross = fmt.Sprintf("n = %d", ns[i])
			break
		}
	}
	fit.AddRow("crossover (SBL < KUW)", cross)
	return []*harness.Table{tab, fit}
}
