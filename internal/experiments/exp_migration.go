package experiments

import (
	"math"

	"repro/internal/bl"
	"repro/internal/concentration"
	"repro/internal/harness"
	"repro/internal/hypergraph"
	"repro/internal/rng"
)

// F2 — edge migration: the quantity Kelsen's Corollary 2 bounds with
// (log n)^{2^{k−j}+1}·Δ_k and the paper's Corollary 4 sharpens to
// (log n)^{2(k−j)}·Δ_k. Two views:
//
//  1. distributional: the migration polynomial S(H',w',p) of §3 around
//     a sunflower core, Monte-Carlo tail vs D, the Lemma 4 envelope
//     (Δ_{|X|+k})^j, and both analytic factors;
//  2. dynamic: the per-stage (k→j) migration matrix of an actual BL run
//     on a layered-migration instance.
func init() {
	harness.Register(harness.Experiment{
		ID:    "f2",
		Title: "Edge migration: Kelsen Cor 2 vs paper Cor 4 vs measured (§3–4)",
		Claim: "per-stage d_j increase ≤ Σ_{k>j}(log n)^{2^{k−j}+1}·Δ_k (Kelsen) improved to (log n)^{2(k−j)}·Δ_k (Kim–Vu)",
		Run:   runF2,
	})
}

func runF2(cfg harness.Config) []*harness.Table {
	trials := trialsOr(cfg.Trials, 20000)
	n := 512
	if cfg.Quick {
		n, trials = 256, 4000
	}

	// View 1: migration polynomial around a planted core. The core is
	// the common intersection of all layered edges; recover it by
	// intersecting edges (canonical order does not put the core first
	// within an edge, so h.Edge(0)[0] would be a random petal vertex).
	coreSize := 1
	h := hypergraph.LayeredMigration(rng.New(cfg.Seed+11), n, coreSize, 4, 7, n/12)
	tabDeg := hypergraph.BuildDegreeTable(h)
	d := h.Dim()
	p := 1.0 / (math.Pow(2, float64(d+1)) * tabDeg.Delta())
	x := commonVertices(h, coreSize)
	poly := &harness.Table{
		ID:      "f2",
		Title:   "Migration polynomial S(H',w',p) around the core (layered instance, p = BL marking prob)",
		Note:    "E[S] and the empirical max must sit far below both analytic per-stage factors × Δ_k — and Cor 4 ≪ Cor 2",
		Columns: []string{"j", "k", "|E'|", "E[S]", "emp max", "D(H',w',p)", "Lemma4 Δ^j", "Kelsen factor", "Cor4 factor"},
	}
	// Layered edges have sizes coreSize+3 … coreSize+6, so k ranges 3–6
	// for the singleton core.
	for _, jk := range [][2]int{{1, 3}, {2, 3}, {1, 4}, {2, 4}, {3, 4}, {1, 5}} {
		j, k := jk[0], jk[1]
		if len(x) == 0 || len(x)+k > d {
			continue
		}
		w := concentration.MigrationPolynomial(h, x, j, k)
		if len(w.Edges) == 0 {
			continue
		}
		res := concentration.MonteCarloTail(w, p, math.Inf(1), trials, rng.New(cfg.Seed+uint64(10*j+k)))
		poly.AddRow(fmtI(j), fmtI(k), fmtI(len(w.Edges)),
			fmtF(res.Mean), fmtF(res.Max), fmtF(w.D(p)),
			fmtF(concentration.Lemma4Bound(tabDeg, len(x), j, k)),
			fmtF(concentration.KelsenMigrationFactor(n, k, j)),
			fmtF(concentration.KimVuMigrationFactor(n, k, j)))
		cfg.Logf("f2: (j,k)=(%d,%d) done", j, k)
	}

	// View 2: dynamic migration matrix from an actual BL run.
	opts := bl.DefaultOptions()
	opts.CollectStats = true
	blRes, err := bl.Run(h, nil, rng.New(cfg.Seed+13), nil, opts)
	dyn := &harness.Table{
		ID:      "f2",
		Title:   "Aggregate (k→j) edge-migration counts across one BL run",
		Note:    "the raw phenomenon both corollaries bound: higher-dimensional edges raining down on lower levels",
		Columns: []string{"from k", "to j", "edges migrated", "stages active"},
	}
	if err != nil {
		cfg.Logf("f2: BL run failed: %v", err)
		return []*harness.Table{poly, dyn}
	}
	type cell struct{ count, stages int }
	agg := map[[2]int]cell{}
	for _, st := range blRes.Stats {
		for k, row := range st.Migration {
			for j, c := range row {
				if c > 0 {
					a := agg[[2]int{k, j}]
					a.count += c
					a.stages++
					agg[[2]int{k, j}] = a
				}
			}
		}
	}
	for k := d; k >= 2; k-- {
		for j := k - 1; j >= 1; j-- {
			if a, ok := agg[[2]int{k, j}]; ok {
				dyn.AddRow(fmtI(k), fmtI(j), fmtI(a.count), fmtI(a.stages))
			}
		}
	}

	// Factor comparison strip (the "much smaller" claim quantified).
	cmp := &harness.Table{
		ID:      "f2",
		Title:   "Per-stage bound factors at this n (multiples of Δ_k)",
		Columns: []string{"k−j", "Kelsen (logn)^{2^{k−j}+1}", "Cor4 (logn)^{2(k−j)}", "improvement ×"},
	}
	for r := 1; r <= 4; r++ {
		kf := concentration.KelsenMigrationFactor(n, r+1, 1)
		cf := concentration.KimVuMigrationFactor(n, r+1, 1)
		cmp.AddRow(fmtI(r), fmtF(kf), fmtF(cf), fmtF(kf/cf))
	}
	return []*harness.Table{poly, dyn, cmp}
}

// commonVertices returns up to want vertices contained in every edge of
// h (the planted core of layered/sunflower instances).
func commonVertices(h *hypergraph.Hypergraph, want int) hypergraph.Edge {
	if h.M() == 0 {
		return nil
	}
	common := append(hypergraph.Edge(nil), h.Edge(0)...)
	for i := 1; i < h.M() && len(common) > 0; i++ {
		var next hypergraph.Edge
		for _, v := range common {
			if hypergraph.ContainsSorted(h.Edge(i), hypergraph.Edge{v}) {
				next = append(next, v)
			}
		}
		common = next
	}
	if len(common) > want {
		common = common[:want]
	}
	return common
}
