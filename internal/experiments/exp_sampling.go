package experiments

import (
	"math"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/hypergraph"
	"repro/internal/rng"
	"repro/internal/stats"
)

// T3 — event B analysis: after sampling with probability p, the induced
// sub-hypergraph's dimension should stay ≤ d where d is derived from
// r·m·p^{d+1} ≤ 1/n. We measure the dimension distribution of H' and
// the frequency of event B across p.
func init() {
	harness.Register(harness.Experiment{
		ID:    "t3",
		Title: "Sampled sub-hypergraph dimension (event B, §2.2 claim 2)",
		Claim: "Pr[some sampled edge exceeds d] ≤ r·m·p^{d+1} ≤ 1/n for d = log(rmn)/log(1/p) − 1",
		Run:   runT3,
	})
}

func runT3(cfg harness.Config) []*harness.Table {
	trials := trialsOr(cfg.Trials, 200)
	n := 2048
	if cfg.Quick {
		n, trials = 512, 50
	}
	m := 2 * n
	tab := &harness.Table{
		ID:      "t3",
		Title:   "Dimension of H' under sampling (n=" + fmtI(n) + ", m=2n, edges 2–12)",
		Note:    "derived d must keep measured Pr[dim>d] at/below the r·m·p^{d+1} budget (≤ 1/n by construction)",
		Columns: []string{"alpha", "p", "derived d", "dim(H') mean", "dim max", "Pr[dim>d] measured", "budget rmn·p^{d+1}"},
	}
	h := hypergraph.RandomMixed(rng.New(cfg.Seed+1), n, m, 2, 12)
	for _, alpha := range []float64{0.2, 0.25, 0.3, 0.35, 0.4} {
		prm := core.DeriveParams(n, m, alpha)
		r := core.ExpectedRounds(n, prm.P)
		budget := r * float64(m) * math.Pow(prm.P, float64(prm.D+1))
		var dims []float64
		exceed := 0
		s := rng.New(cfg.Seed + uint64(alpha*1000))
		for t := 0; t < trials; t++ {
			ts := s.Child(uint64(t))
			sub := hypergraph.Induced(h, func(v hypergraph.V) bool {
				return ts.Child(uint64(v)).Bernoulli(prm.P)
			})
			dims = append(dims, float64(sub.Dim()))
			if sub.Dim() > prm.D {
				exceed++
			}
		}
		sd := stats.Summarize(dims)
		tab.AddRow(fmtF(alpha), fmtF(prm.P), fmtI(prm.D), fmtF(sd.Mean), fmtF(sd.Max),
			fmtF(float64(exceed)/float64(trials)), fmtF(budget))
		cfg.Logf("t3: alpha=%.2f done", alpha)
	}
	return []*harness.Table{tab}
}

// T10 — total failure probability: the union bound of §2.2 gives
// Pr[A ∨ B ∨ C] ≤ 2/n. We measure the rate at which full SBL runs hit
// event B (FailHard) and the retry counts under the default policy.
func init() {
	harness.Register(harness.Experiment{
		ID:    "t10",
		Title: "SBL failure rate (union bound §2.2: ≤ 2/n)",
		Claim: "Pr[failure] ≤ 3Pr[A] + Pr[B|¬A] + Pr[C|¬A] ≤ 2/n for sufficiently large n",
		Run:   runT10,
	})
}

func runT10(cfg harness.Config) []*harness.Table {
	trials := trialsOr(cfg.Trials, 100)
	sizes := []int{256, 512, 1024}
	if cfg.Quick {
		sizes = []int{256, 512}
		trials = trialsOr(cfg.Trials, 30)
	}
	tab := &harness.Table{
		ID:      "t10",
		Title:   "Full-run failure and retry statistics (α = 0.3, mixed edges 2–14)",
		Note:    "failHard rate = fraction of runs hitting event B at least once; derived d keeps the bound ≤ ~1/n",
		Columns: []string{"n", "trials", "failHard rate", "bound 2/n", "retry runs (default policy)", "mean retries", "eventA rounds frac"},
	}
	for _, n := range sizes {
		fails := 0
		retryRuns := 0
		var retries []float64
		eventA, totalRounds := 0, 0
		for t := 0; t < trials; t++ {
			h := generalInstance(rng.New(cfg.Seed+uint64(5000*n+t)), n, 14, 2)
			// FailHard measurement.
			_, err := core.Run(h, rng.New(cfg.Seed+uint64(t)), nil,
				core.Options{Alpha: sblAlpha, OnEventB: core.FailHard})
			if err != nil {
				fails++
			}
			// Default policy measurement.
			res, err := core.Run(h, rng.New(cfg.Seed+uint64(t)), nil,
				core.Options{Alpha: sblAlpha, CollectStats: true})
			if err != nil {
				continue
			}
			if res.EventBs > 0 {
				retryRuns++
			}
			retries = append(retries, float64(res.EventBs))
			for _, st := range res.Stats {
				totalRounds++
				if st.EventA {
					eventA++
				}
			}
		}
		fracA := 0.0
		if totalRounds > 0 {
			fracA = float64(eventA) / float64(totalRounds)
		}
		tab.AddRow(fmtI(n), fmtI(trials),
			fmtF(float64(fails)/float64(trials)), fmtF(2/float64(n)),
			fmtI(retryRuns), fmtF(stats.Summarize(retries).Mean), fmtF(fracA))
		cfg.Logf("t10: n=%d done", n)
	}
	note := &harness.Table{
		ID: "t10", Title: "Reading",
		Columns: []string{"remark"},
	}
	note.AddRow("the 2/n bound is asymptotic; at finite n the derived d (event-B budget 1/n) dominates the measured rate")
	note.AddRow("eventA fraction bounds Pr[A]: rounds removing < p·n_i/2 of the undecided vertices")
	return []*harness.Table{tab, note}
}
