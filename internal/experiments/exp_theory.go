package experiments

import (
	"math"

	"repro/internal/concentration"
	"repro/internal/harness"
	"repro/internal/hypergraph"
	"repro/internal/mathx"
	"repro/internal/potential"
	"repro/internal/rng"
)

// T8 — the recurrence feasibility sweep of §3.1: Kelsen's f(+7) fails
// the induction for super-constant d (the k = j+1 exponent collapses to
// −1, reducing the claim to 2^{d(d+1)} < 1), while the paper's f(+d²)
// satisfies Lemma 6, the feasibility inequality, the dimension
// condition d(d+1) ≤ loglog n·(d²−8), and F(i) ≤ d²(i+2)!.
func init() {
	harness.Register(harness.Experiment{
		ID:    "t8",
		Title: "Recurrence feasibility: Kelsen f(+7) vs paper f(+d²) (§3.1)",
		Claim: "the modified recurrence makes the potential induction go through for d ≤ log(2)n/(4·log(3)n); Kelsen's does not",
		Run:   runT8,
	})
}

func runT8(cfg harness.Config) []*harness.Table {
	main := &harness.Table{
		ID:      "t8",
		Title:   "Induction feasibility across scales (logN = log₂ n; d from the Theorem 2 cap unless noted)",
		Note:    "paper's table must become feasible once logN is large enough for its d; Kelsen's must stay infeasible",
		Columns: []string{"logN", "cap d", "d used", "Kelsen feasible", "paper feasible", "dim cond", "Lemma 6 (paper)", "F_paper(d)"},
	}
	logNs := []float64{8, 16, 64, 256, 4096, 1 << 16, 1 << 24}
	if cfg.Quick {
		logNs = []float64{16, 256, 4096}
	}
	for _, logN := range logNs {
		cap := potential.TheoremDBound(logN)
		d := int(cap)
		if d < 3 {
			d = 3
		}
		kel := potential.KelsenTable(d)
		pap := potential.PaperTable(d)
		l6, _, _ := pap.Lemma6Holds(d)
		main.AddRow(fmtF(logN), fmtF(cap), fmtI(d),
			boolCell(kel.Feasible(logN, d)), boolCell(pap.Feasible(logN, d)),
			boolCell(potential.DimensionCondition(logN, d)),
			boolCell(l6), fmtF(pap.F[d]))
	}

	// Kelsen's breakpoint inequality 2^{d(d+1)} ≤ logn/(logn+2loglogn):
	// false everywhere — the paper's observation, tabulated.
	bp := &harness.Table{
		ID:      "t8",
		Title:   "Kelsen reduced claim at k = j+1 (must be false for all d ≥ 1)",
		Columns: []string{"logN", "d", "2^{d(d+1)} ≤ logn/(logn+2loglogn)"},
	}
	for _, logN := range []float64{16, 4096, 1 << 24} {
		for _, d := range []int{1, 3, 6} {
			bp.AddRow(fmtF(logN), fmtI(d), boolCell(potential.KelsenBreakpoint(logN, d)))
		}
	}

	// §4.1: the minimal-F lower bound — F(j) ≥ F(j−1)·j + 5 is forced
	// even with the Kim–Vu factor; both factorial tables satisfy it,
	// polynomial tables cannot.
	lower := &harness.Table{
		ID:      "t8",
		Title:   "§4.1 necessary condition F(j) ≥ F(j−1)·j + 5",
		Note:    "the paper's point: no concentration-bound improvement alone beats roughly-factorial exponents",
		Columns: []string{"table", "first violating j (0 = none)"},
	}
	d := 8
	lower.AddRow("Kelsen f(+7)", fmtI(potential.Section41MinimalF(potential.KelsenTable(d).F)))
	lower.AddRow("paper f(+d²)", fmtI(potential.Section41MinimalF(potential.PaperTable(d).F)))
	poly := make([]float64, d+1)
	for i := range poly {
		poly[i] = float64(i * i * i)
	}
	lower.AddRow("cubic F (hypothetical)", fmtI(potential.Section41MinimalF(poly)))

	// Factorial envelope F(i) ≤ d²(i+2)! (used for the (d+4)! bound).
	env := &harness.Table{
		ID:      "t8",
		Title:   "Envelope F(i) ≤ d²·(i+2)! (paper recurrence)",
		Columns: []string{"d", "holds"},
	}
	for _, dd := range []int{3, 5, 8, 12} {
		env.AddRow(fmtI(dd), boolCell(potential.PaperTable(dd).FactorialBoundHolds(dd)))
	}
	return []*harness.Table{main, bp, lower, env}
}

func boolCell(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// T9 — concentration tails: Kelsen's Theorem 3 / Corollary 1 thresholds
// versus the Kim–Vu (Corollary 3) thresholds versus the measured tail of
// S(H,w,p). The bounds should hold with room to spare (they are
// worst-case); the experiment quantifies how much sharper Kim–Vu is.
func init() {
	harness.Register(harness.Experiment{
		ID:    "t9",
		Title: "Concentration tails: Kelsen vs Kim–Vu vs Monte Carlo (Thm 3, Cor 1/3)",
		Claim: "Pr[S > k(H)·D] < p(H) (Kelsen); Pr[S > (1+a_r λ^r)·Δ^j] ≤ 2e²e^{−λ}n^{r−1} (Kim–Vu)",
		Run:   runT9,
	})
}

func runT9(cfg harness.Config) []*harness.Table {
	trials := trialsOr(cfg.Trials, 20000)
	n := 256
	if cfg.Quick {
		n, trials = 128, 4000
	}
	tab := &harness.Table{
		ID:      "t9",
		Title:   "Tail of S(H,w,p) on random d-uniform hypergraphs (unit weights)",
		Note:    "max/D shows the true concentration; both analytic thresholds must never be exceeded empirically",
		Columns: []string{"d", "p", "E[S]", "D", "emp max/D", "Kelsen thr/D (δ=log²n)", "KimVu thr/D (λ=log²n)", "exceed either"},
	}
	for _, d := range []int{2, 3, 4} {
		h := hypergraph.RandomUniform(rng.New(cfg.Seed+uint64(d)), n, 3*n, d)
		w := concentration.FromHypergraph(h)
		tabDeg := hypergraph.BuildDegreeTable(h)
		p := 1.0 / (math.Pow(2, float64(d+1)) * tabDeg.Delta())
		dVal := w.D(p)
		logn := mathx.Log2(float64(n))
		delta := logn * logn
		kelsenThr := concentration.KelsenK(n, d, delta) * dVal
		// Kim–Vu style threshold against D as the base quantity with
		// r = d−1 (full-edge collapse) and λ = log²n.
		r := d - 1
		if r < 1 {
			r = 1
		}
		kvThr := concentration.KimVuThresholdFactor(r, delta) * dVal
		thr := math.Min(kelsenThr, kvThr)
		res := concentration.MonteCarloTail(w, p, thr, trials, rng.New(cfg.Seed+uint64(100+d)))
		tab.AddRow(fmtI(d), fmtF(p), fmtF(w.Expectation(p)), fmtF(dVal),
			fmtF(res.Max/dVal), fmtF(kelsenThr/dVal), fmtF(kvThr/dVal),
			fmtI(res.Exceed))
		cfg.Logf("t9: d=%d done", d)
	}
	bounds := &harness.Table{
		ID:      "t9",
		Title:   "Analytic failure probabilities at δ = λ = log²n (often vacuous at small n — reported honestly)",
		Columns: []string{"d", "Kelsen p(H)", "KimVu tail", "Cor1 threshold/D"},
	}
	for _, d := range []int{2, 3, 4} {
		logn := mathx.Log2(float64(n))
		delta := logn * logn
		r := d - 1
		if r < 1 {
			r = 1
		}
		bounds.AddRow(fmtI(d),
			fmtF(concentration.KelsenTailProb(n, d, 3*n, delta)),
			fmtF(concentration.KimVuTailProb(n, r, delta)),
			fmtF(concentration.KelsenCorollary1Threshold(n, d, 1)))
	}
	return []*harness.Table{tab, bounds}
}
