package experiments

import (
	"repro/internal/bl"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/hypergraph"
	"repro/internal/mathx"
	"repro/internal/par"
	"repro/internal/permbl"
	"repro/internal/pram"
	"repro/internal/rng"
	"repro/internal/stats"
)

// T13 — the open question the introduction highlights: Beame and Luby's
// random-permutation algorithm is conjectured to be RNC (Shachnai &
// Srinivasan made partial progress). Its parallel round count is the
// dependency depth of greedy on a random order; we measure how it grows
// with n and dimension. (For graphs the depth is Θ(log n) w.h.p.; for
// hypergraphs the answer is open — these are data points, not a proof.)
func init() {
	harness.Register(harness.Experiment{
		ID:    "t13",
		Title: "Permutation-greedy dependency depth (open RNC conjecture, §1)",
		Claim: "Beame–Luby conjectured the random-permutation algorithm is RNC; measured depth growth is the empirical shadow",
		Run:   runT13,
	})
}

func runT13(cfg harness.Config) []*harness.Table {
	trials := trialsOr(cfg.Trials, 5)
	sizes := sweepSizes(cfg.Quick)
	tab := &harness.Table{
		ID:      "t13",
		Title:   "Dependency-resolution rounds of the permutation algorithm (m = 2n)",
		Note:    "polylogarithmic growth across dimensions would support the conjecture at these scales",
		Columns: []string{"d", "n", "rounds mean", "rounds max", "rounds/log₂n", "fit e: rounds~(logn)^e"},
	}
	for _, d := range []int{2, 3, 4} {
		var logns, rs []float64
		type row struct {
			n         int
			mean, max float64
			perLog    float64
		}
		var rows []row
		for _, n := range sizes {
			var rounds []float64
			for t := 0; t < trials; t++ {
				h := hypergraph.RandomUniform(rng.New(cfg.Seed+uint64(9000*n+100*d+t)), n, 2*n, d)
				res, err := permbl.Run(h, nil, rng.New(cfg.Seed+uint64(t)), nil, permbl.Options{})
				if err != nil {
					cfg.Logf("t13: d=%d n=%d: %v", d, n, err)
					continue
				}
				rounds = append(rounds, float64(res.Rounds))
			}
			if len(rounds) == 0 {
				continue
			}
			s := stats.Summarize(rounds)
			logn := mathx.Log2(float64(n))
			rows = append(rows, row{n, s.Mean, s.Max, s.Mean / logn})
			logns = append(logns, logn)
			rs = append(rs, s.Mean)
		}
		fit := stats.GrowthExponent(logns, rs)
		for i, r := range rows {
			fitCell := ""
			if i == len(rows)-1 {
				fitCell = fmtF(fit.Slope)
			}
			tab.AddRow(fmtI(d), fmtI(r.n), fmtF(r.mean), fmtF(r.max), fmtF(r.perLog), fitCell)
		}
		cfg.Logf("t13: d=%d done", d)
	}
	return []*harness.Table{tab}
}

// T14 — ablations of the implementation choices DESIGN.md calls out:
// per-stage Δ recomputation vs the pseudocode's fixed p, the isolated-
// vertex fast path, and SBL's tail solver choice.
func init() {
	harness.Register(harness.Experiment{
		ID:    "t14",
		Title: "Ablations: BL probability policy, isolated fast path, SBL tail",
		Claim: "implementation choices (DESIGN.md): which matter, by how much",
		Run:   runT14,
	})
}

func runT14(cfg harness.Config) []*harness.Table {
	trials := trialsOr(cfg.Trials, 3)
	n := 2048
	if cfg.Quick {
		n = 512
	}
	blTab := &harness.Table{
		ID:      "t14",
		Title:   "BL ablation on random 3-uniform (m = 2n, n = " + fmtI(n) + ")",
		Note:    "fixed-p is Algorithm 2 verbatim; recompute-Δ is the variant Kelsen's analysis tracks — the stage gap is the point",
		Columns: []string{"variant", "stages mean", "stages max"},
	}
	variants := []struct {
		name string
		opts bl.Options
	}{
		{"recomputeΔ + isolated fast path (default)", bl.DefaultOptions()},
		{"fixed p (pseudocode-exact)", bl.Options{MaxStages: 2000000, RecomputeDelta: false, AddIsolatedImmediately: true}},
		{"no isolated fast path", bl.Options{MaxStages: 2000000, RecomputeDelta: true, AddIsolatedImmediately: false}},
	}
	for _, va := range variants {
		var stages []float64
		for t := 0; t < trials; t++ {
			h := hypergraph.RandomUniform(rng.New(cfg.Seed+uint64(13000+t)), n, 2*n, 3)
			res, err := bl.Run(h, nil, rng.New(cfg.Seed+uint64(t)), nil, va.opts)
			if err != nil {
				cfg.Logf("t14: %s: %v", va.name, err)
				continue
			}
			if hypergraph.VerifyMIS(h, res.InIS) != nil {
				cfg.Logf("t14: %s: invalid MIS", va.name)
				continue
			}
			stages = append(stages, float64(res.Stages))
		}
		s := stats.Summarize(stages)
		blTab.AddRow(va.name, fmtF(s.Mean), fmtF(s.Max))
		cfg.Logf("t14: %s done", va.name)
	}

	tailTab := &harness.Table{
		ID:      "t14",
		Title:   "SBL tail-solver ablation (mixed edges 2–14, m = 2n, α = 0.3)",
		Note:    "the paper allows either tail (Algorithm 1 line 23 vs the linear-time remark); KUW keeps the tail parallel",
		Columns: []string{"tail", "depth mean", "work mean", "tail size mean"},
	}
	for _, tail := range []core.TailSolver{core.TailKUW, core.TailGreedy} {
		var ds, ws, ts []float64
		for t := 0; t < trials; t++ {
			h := generalInstance(rng.New(cfg.Seed+uint64(14000+t)), n, 14, 2)
			var cost par.Cost
			res, err := core.Run(h, rng.New(cfg.Seed+uint64(t)), &cost,
				core.Options{Alpha: sblAlpha, Tail: tail})
			if err != nil {
				continue
			}
			if hypergraph.VerifyMIS(h, res.InIS) != nil {
				continue
			}
			ds = append(ds, float64(cost.Depth()))
			ws = append(ws, float64(cost.Work()))
			ts = append(ts, float64(res.TailSize))
		}
		name := "KUW"
		if tail == core.TailGreedy {
			name = "greedy (sequential)"
		}
		tailTab.AddRow(name, fmtF(stats.Summarize(ds).Mean),
			fmtF(stats.Summarize(ws).Mean), fmtF(stats.Summarize(ts).Mean))
	}
	return []*harness.Table{blTab, tailTab}
}

// T15 — the EREW machine audit: the BL marking kernel executed on the
// simulated machine must be violation-free with O(log) depth per stage,
// grounding Theorem 2's "can be implemented on EREW PRAM".
func init() {
	harness.Register(harness.Experiment{
		ID:    "t15",
		Title: "EREW machine audit of the BL kernel (Theorem 2's model claim)",
		Claim: "the BL stage is EREW-implementable in O(log maxdeg + log d) steps — executed and audited, not asserted",
		Run:   runT15,
	})
}

func runT15(cfg harness.Config) []*harness.Table {
	sizes := []int{256, 1024, 4096}
	if cfg.Quick {
		sizes = []int{256, 1024}
	}
	tab := &harness.Table{
		ID:      "t15",
		Title:   "Machine-hosted BL runs (random 3-uniform, m = 2n)",
		Note:    "violations must be 0; depth/stage must stay logarithmic while n grows 16×",
		Columns: []string{"n", "stages", "machine depth", "depth/stage", "machine work", "EREW violations"},
	}
	for _, n := range sizes {
		h := hypergraph.RandomUniform(rng.New(cfg.Seed+uint64(15000+n)), n, 2*n, 3)
		res, err := pram.RunBLOnMachine(h, rng.New(cfg.Seed), 0)
		if err != nil {
			cfg.Logf("t15: n=%d: %v", n, err)
			continue
		}
		if hypergraph.VerifyMIS(h, res.InIS) != nil {
			cfg.Logf("t15: n=%d: invalid MIS", n)
			continue
		}
		perStage := 0.0
		if res.Stages > 0 {
			perStage = float64(res.Depth) / float64(res.Stages)
		}
		tab.AddRow(fmtI(n), fmtI(res.Stages), fmtF(float64(res.Depth)),
			fmtF(perStage), fmtF(float64(res.Work)), fmtI(res.Violations))
		cfg.Logf("t15: n=%d done", n)
	}
	return []*harness.Table{tab}
}
