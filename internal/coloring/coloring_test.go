package coloring

import (
	"errors"
	"testing"

	"repro/internal/bl"
	"repro/internal/greedy"
	"repro/internal/hypergraph"
	"repro/internal/rng"
)

// greedySolver adapts the sequential greedy MIS to the Solver signature.
func greedySolver(h *hypergraph.Hypergraph, active []bool, round int) ([]bool, error) {
	return greedy.Run(h, active).InIS, nil
}

// blSolver adapts BL.
func blSolver(h *hypergraph.Hypergraph, active []bool, round int) ([]bool, error) {
	res, err := bl.Run(h, active, rng.New(uint64(round)+77), nil, bl.DefaultOptions())
	if err != nil {
		return nil, err
	}
	return res.InIS, nil
}

func TestColoringTriangle(t *testing.T) {
	h := hypergraph.NewBuilder(3).AddEdge(0, 1, 2).MustBuild()
	res, err := ByMIS(h, greedySolver, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(h, res); err != nil {
		t.Fatal(err)
	}
	// One MIS takes 2 vertices, the second takes the last: 2 colors.
	if res.NumColors != 2 {
		t.Fatalf("colors = %d", res.NumColors)
	}
}

func TestColoringEdgeless(t *testing.T) {
	h := hypergraph.NewBuilder(6).MustBuild()
	res, err := ByMIS(h, greedySolver, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumColors != 1 {
		t.Fatalf("edgeless should be 1-colorable, got %d", res.NumColors)
	}
	if err := Verify(h, res); err != nil {
		t.Fatal(err)
	}
}

func TestColoringSingletonEdge(t *testing.T) {
	// Singleton edges are stripped; their vertices still get colored.
	h := hypergraph.NewBuilder(3).AddEdge(1).AddEdge(0, 2).MustBuild()
	res, err := ByMIS(h, greedySolver, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(h, res); err != nil {
		t.Fatal(err)
	}
	if res.Colors[1] < 0 {
		t.Fatal("singleton vertex left uncolored")
	}
}

func TestColoringRandomWithBL(t *testing.T) {
	s := rng.New(1)
	for trial := 0; trial < 10; trial++ {
		h := hypergraph.RandomMixed(s, 60+s.Intn(60), 2*60, 2, 4)
		res, err := ByMIS(h, blSolver, 0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := Verify(h, res); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		total := 0
		for _, sz := range res.ClassSizes {
			total += sz
		}
		if total != h.N() {
			t.Fatalf("trial %d: classes cover %d of %d", trial, total, h.N())
		}
	}
}

func TestColoringHypergraphBeatsCliqueBound(t *testing.T) {
	// A 3-uniform complete hypergraph on k vertices is 2-colorable for
	// any k ≥ 3 split unevenly? No: any color class of size ≥ 3 contains
	// an edge, so classes have size ≤ 2 and we need ⌈k/2⌉ colors. Check
	// the peeling matches that bound.
	h := hypergraph.Complete(8, 8, 3)
	res, err := ByMIS(h, greedySolver, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(h, res); err != nil {
		t.Fatal(err)
	}
	if res.NumColors != 4 {
		t.Fatalf("complete 3-uniform on 8 vertices: %d colors, want 4", res.NumColors)
	}
}

func TestColoringBudgetExhausted(t *testing.T) {
	h := hypergraph.Complete(8, 8, 3) // needs 4 colors
	_, err := ByMIS(h, greedySolver, 2)
	if !errors.Is(err, ErrTooManyColors) {
		t.Fatalf("got %v", err)
	}
}

func TestColoringBrokenSolver(t *testing.T) {
	h := hypergraph.NewBuilder(3).AddEdge(0, 1).MustBuild()
	broken := func(h *hypergraph.Hypergraph, active []bool, round int) ([]bool, error) {
		return make([]bool, h.N()), nil // empty "MIS"
	}
	if _, err := ByMIS(h, broken, 0); !errors.Is(err, ErrNoProgress) {
		t.Fatalf("got %v", err)
	}
}

func TestVerifyCatchesMonochromatic(t *testing.T) {
	h := hypergraph.NewBuilder(3).AddEdge(0, 1, 2).MustBuild()
	bad := &Result{Colors: []int{0, 0, 0}, NumColors: 1}
	if Verify(h, bad) == nil {
		t.Fatal("monochromatic edge accepted")
	}
}

func TestVerifyCatchesUncolored(t *testing.T) {
	h := hypergraph.NewBuilder(2).AddEdge(0, 1).MustBuild()
	bad := &Result{Colors: []int{0, -1}, NumColors: 1}
	if Verify(h, bad) == nil {
		t.Fatal("uncolored vertex accepted")
	}
}
