// Package coloring implements hypergraph coloring by repeated MIS
// extraction ("MIS peeling"): assign color c to a maximal independent
// set of the sub-hypergraph induced by the still-uncolored vertices,
// remove it, repeat. The result is a proper coloring in the hypergraph
// sense — no edge monochromatic — using at most as many colors as
// peeling rounds. This is the classic consumption pattern for parallel
// MIS primitives (scheduling windows, channel assignment, symmetry
// breaking), and the application layer of the paper's contribution.
package coloring

import (
	"errors"
	"fmt"

	"repro/internal/hypergraph"
)

// Solver produces a maximal independent set of the sub-hypergraph of h
// induced by the active vertices: a mask that is independent and cannot
// be extended *within the active set*. The round index lets callers
// reseed per color class.
type Solver func(h *hypergraph.Hypergraph, active []bool, round int) ([]bool, error)

// Result is a proper coloring.
type Result struct {
	// Colors[v] is the color of vertex v, in [0, NumColors).
	Colors []int
	// NumColors is the number of color classes used.
	NumColors int
	// ClassSizes[c] is the size of color class c.
	ClassSizes []int
}

// ErrTooManyColors is returned when maxColors is exhausted.
var ErrTooManyColors = errors.New("coloring: color budget exhausted")

// ErrNoProgress is returned when a solver returns an empty class (a
// broken solver; a correct MIS of a nonempty active set is nonempty).
var ErrNoProgress = errors.New("coloring: solver made no progress")

// ByMIS peels color classes off h using the given solver. maxColors
// bounds the palette (0 = n, always sufficient: singleton classes).
func ByMIS(h *hypergraph.Hypergraph, solve Solver, maxColors int) (*Result, error) {
	n := h.N()
	if maxColors == 0 {
		maxColors = n
	}
	colors := make([]int, n)
	for v := range colors {
		colors[v] = -1
	}
	active := make([]bool, n)
	remaining := n
	for v := range active {
		active[v] = true
	}
	res := &Result{Colors: colors}
	// Proper hypergraph coloring is defined on edges of size ≥ 2 (a
	// singleton edge is unsatisfiable: any color makes it
	// monochromatic). Strip singletons so their vertices are colorable;
	// Verify skips them symmetrically.
	cur := hypergraph.FilterEdges(h, func(e hypergraph.Edge) bool { return len(e) >= 2 })
	for c := 0; remaining > 0; c++ {
		if c >= maxColors {
			return nil, fmt.Errorf("%w: %d vertices uncolored after %d colors", ErrTooManyColors, remaining, c)
		}
		mis, err := solve(cur, active, c)
		if err != nil {
			return nil, fmt.Errorf("coloring: round %d: %w", c, err)
		}
		class := 0
		for v := 0; v < n; v++ {
			if active[v] && mis[v] {
				colors[v] = c
				active[v] = false
				class++
			}
		}
		if class == 0 {
			return nil, fmt.Errorf("%w at color %d", ErrNoProgress, c)
		}
		remaining -= class
		res.ClassSizes = append(res.ClassSizes, class)
		res.NumColors = c + 1
		// Restrict to edges entirely among uncolored vertices: only
		// those can still become monochromatic in later classes.
		cur = hypergraph.Induced(cur, func(v hypergraph.V) bool { return active[v] })
	}
	return res, nil
}

// Verify checks that the coloring is complete (no -1), within the
// palette, and proper: no edge of h has all vertices the same color.
func Verify(h *hypergraph.Hypergraph, res *Result) error {
	if len(res.Colors) != h.N() {
		return fmt.Errorf("coloring: %d colors for %d vertices", len(res.Colors), h.N())
	}
	for v, c := range res.Colors {
		if c < 0 || c >= res.NumColors {
			return fmt.Errorf("coloring: vertex %d has color %d outside [0,%d)", v, c, res.NumColors)
		}
	}
	for i, e := range h.Edges() {
		if len(e) < 2 {
			// A singleton edge can never be non-monochromatic; proper
			// hypergraph coloring is conventionally defined on edges of
			// size ≥ 2 (a singleton is an unsatisfiable constraint).
			continue
		}
		c0 := res.Colors[e[0]]
		mono := true
		for _, v := range e {
			if res.Colors[v] != c0 {
				mono = false
				break
			}
		}
		if mono {
			return fmt.Errorf("coloring: edge #%d %v monochromatic in color %d", i, e, c0)
		}
	}
	return nil
}
