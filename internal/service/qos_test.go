package service

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"strconv"
	"sync"
	"testing"
	"time"

	hypermis "repro"
	"repro/internal/admit"
	"repro/internal/faultinject"
)

func waitFor(t *testing.T, what string, pred func() bool) {
	t.Helper()
	for end := time.Now().Add(5 * time.Second); time.Now().Before(end); {
		if pred() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestWeightedDequeuePrefersInteractive: with one worker deterministically
// parked, a background job queued FIRST and an interactive job queued
// second, the freed worker must pick the interactive job — the weighted
// dequeue order, not FIFO arrival order, decides. The background job
// parks in its own observer so the assertion window is race-free: when
// it parks, the interactive solve has either completed (counter bumped
// by the worker before moving on) or was skipped.
func TestWeightedDequeuePrefersInteractive(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 1, CacheSize: -1})
	release := blockWorker(t, s)

	bgBlock := make(chan struct{})
	bgParked := make(chan struct{})
	bgDone := make(chan error, 1)
	var bgOnce sync.Once
	go func() {
		hb := hypermis.RandomMixed(78, 1000, 2000, 2, 8)
		_, _, err := s.SolveClass(t.Context(), hb, hypermis.Options{
			Algorithm: hypermis.AlgKUW,
			Seed:      2,
			RoundObserver: func(hypermis.RoundTrace) {
				bgOnce.Do(func() { close(bgParked) })
				<-bgBlock
			},
		}, admit.Background)
		bgDone <- err
	}()
	waitFor(t, "background job queued", func() bool { return len(s.queues[admit.Background]) == 1 })

	iDone := make(chan error, 1)
	go func() {
		hi := hypermis.RandomMixed(5, 120, 240, 2, 4)
		_, _, err := s.SolveClass(t.Context(), hi, hypermis.Options{Algorithm: hypermis.AlgGreedy}, admit.Interactive)
		iDone <- err
	}()
	waitFor(t, "interactive job queued", func() bool { return len(s.queues[admit.Interactive]) == 1 })

	release() // frees the worker; the next dequeue tick prefers interactive
	<-bgParked
	// The background solve is mid-flight, so if the interactive solve's
	// counter is in, the worker served it first (blockWorker's own solve
	// is the other interactive one).
	if got := s.metrics.prio(admit.Interactive).Solves.Load(); got != 2 {
		t.Errorf("interactive solves at background pickup = %d, want 2 (weighted dequeue ignored)", got)
	}
	close(bgBlock)
	if err := <-bgDone; err != nil {
		t.Errorf("background solve: %v", err)
	}
	if err := <-iDone; err != nil {
		t.Errorf("interactive solve: %v", err)
	}
}

// TestAdmissionShedsUnmeetableDeadline: once the estimator has seen a
// service time, a request whose deadline_ms budget cannot cover even
// one solve is shed 503 with a Retry-After — under concurrent load,
// every such request individually. Without the deadline the identical
// request is admitted.
func TestAdmissionShedsUnmeetableDeadline(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, CacheSize: -1})
	s.estimator.Observe("kuw", 500*time.Millisecond)
	h := hypermis.RandomMixed(9, 150, 300, 2, 5)
	body := instanceText(t, h)

	const n = 8
	var wg sync.WaitGroup
	codes := make([]int, n)
	retryAfters := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(
				ts.URL+"/v1/solve?algo=kuw&deadline_ms=5&seed="+strconv.Itoa(i),
				ContentTypeText, bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes[i] = resp.StatusCode
			retryAfters[i] = resp.Header.Get("Retry-After")
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if codes[i] != http.StatusServiceUnavailable {
			t.Errorf("request %d: status %d, want 503", i, codes[i])
		}
		if secs, err := strconv.Atoi(retryAfters[i]); err != nil || secs < 1 {
			t.Errorf("request %d: Retry-After %q, want an integer >= 1", i, retryAfters[i])
		}
	}
	if got := s.metrics.AdmissionRejected.Load(); got != n {
		t.Errorf("admission_rejected_total = %d, want %d", got, n)
	}
	// The same request without a deadline is admitted and solves.
	if _, resp := postSolve(t, ts, "algo=kuw&seed=99", body, ContentTypeText); resp.StatusCode != http.StatusOK {
		t.Errorf("deadline-free request status %d", resp.StatusCode)
	}
}

// TestQueueFullShedsConcurrently: with the worker parked and the only
// queue slot held, a burst of concurrent solves is shed — every
// response a 503 carrying a Retry-After — instead of queueing without
// bound or hanging.
func TestQueueFullShedsConcurrently(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, CacheSize: -1})
	release := blockWorker(t, s)

	filler := make(chan error, 1)
	go func() {
		h := hypermis.RandomMixed(55, 100, 200, 2, 4)
		_, _, err := s.Solve(t.Context(), h, hypermis.Options{Algorithm: hypermis.AlgGreedy})
		filler <- err
	}()
	waitFor(t, "queue slot occupied", func() bool { return len(s.queues[admit.Interactive]) == 1 })

	h := hypermis.RandomMixed(66, 100, 200, 2, 4)
	body := instanceText(t, h)
	const n = 16
	var wg sync.WaitGroup
	var shed404 sync.Map
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/solve?algo=greedy&seed="+strconv.Itoa(i),
				ContentTypeText, bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			shed404.Store(i, [2]string{strconv.Itoa(resp.StatusCode), resp.Header.Get("Retry-After")})
		}(i)
	}
	wg.Wait()
	shed404.Range(func(k, v any) bool {
		got := v.([2]string)
		if got[0] != "503" {
			t.Errorf("request %v: status %s, want 503", k, got[0])
		}
		if secs, err := strconv.Atoi(got[1]); err != nil || secs < 1 {
			t.Errorf("request %v: Retry-After %q, want an integer >= 1", k, got[1])
		}
		return true
	})
	if got := s.metrics.Rejected.Load(); got < n {
		t.Errorf("rejected_total = %d, want >= %d", got, n)
	}
	release() // free the worker so the queued filler can complete
	if err := <-filler; err != nil {
		t.Errorf("filler solve: %v", err)
	}
}

// TestRateLimiter429: a client exceeding its burst gets 429 with a
// Retry-After while a differently keyed client is unaffected — the
// buckets are per client, not global.
func TestRateLimiter429(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, RateLimit: 1, RateBurst: 3})
	h := hypermis.RandomMixed(12, 60, 120, 2, 4)
	body := instanceText(t, h)

	do := func(client string) *http.Response {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/solve?algo=greedy",
			bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", ContentTypeText)
		req.Header.Set("X-Hypermis-Client", client)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}

	var limited int
	for i := 0; i < 5; i++ {
		if resp := do("greedy-client"); resp.StatusCode == http.StatusTooManyRequests {
			limited++
			if ra := resp.Header.Get("Retry-After"); ra == "" {
				t.Error("429 without Retry-After")
			}
		}
	}
	if limited < 2 {
		t.Errorf("client limited %d times over burst 3 in 5 requests, want >= 2", limited)
	}
	if resp := do("other-client"); resp.StatusCode != http.StatusOK {
		t.Errorf("unrelated client status %d, want 200", resp.StatusCode)
	}
	if got := s.metrics.RateLimited.Load(); got != int64(limited) {
		t.Errorf("ratelimited_total = %d, want %d", got, limited)
	}
	if s.Stats().RateLimitClients != 2 {
		t.Errorf("limiter tracks %d clients, want 2", s.Stats().RateLimitClients)
	}
}

// TestDrainFailsQueuedKeepsRunning: Drain fails the jobs still waiting
// in the queues with ErrDraining, refuses new submissions, lets the
// running solve finish, and reports a clean (nil) drain.
func TestDrainFailsQueuedKeepsRunning(t *testing.T) {
	s := New(Config{Workers: 1, CacheSize: -1})
	release := blockWorker(t, s)

	queued := make(chan error, 2)
	for seed := uint64(0); seed < 2; seed++ {
		go func(seed uint64) {
			h := hypermis.RandomMixed(90+seed, 100, 200, 2, 4)
			_, _, err := s.Solve(t.Context(), h, hypermis.Options{Algorithm: hypermis.AlgGreedy, Seed: seed})
			queued <- err
		}(seed)
	}
	waitFor(t, "both jobs queued", func() bool { return len(s.queues[admit.Interactive]) == 2 })

	drainErr := make(chan error, 1)
	go func() { drainErr <- s.Drain(10 * time.Second) }()

	// The queued jobs must fail fast with ErrDraining — before the
	// parked worker is released.
	for i := 0; i < 2; i++ {
		if err := <-queued; !errors.Is(err, ErrDraining) {
			t.Errorf("queued job error %v, want ErrDraining", err)
		}
	}
	if !s.Stats().Draining {
		t.Error("stats does not report draining")
	}
	// New work is refused while draining.
	h := hypermis.RandomMixed(123, 60, 120, 2, 4)
	if _, _, err := s.Solve(t.Context(), h, hypermis.Options{Algorithm: hypermis.AlgGreedy}); !errors.Is(err, ErrDraining) {
		t.Errorf("post-drain solve error %v, want ErrDraining", err)
	}
	if _, err := s.SubmitJob(h, hypermis.Options{Algorithm: hypermis.AlgGreedy}, admit.Batch); !errors.Is(err, ErrDraining) {
		t.Errorf("post-drain submit error %v, want ErrDraining", err)
	}

	release() // let the running solve finish; the drain completes cleanly
	if err := <-drainErr; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got := s.metrics.DrainedJobs.Load(); got != 2 {
		t.Errorf("drained_jobs_total = %d, want 2", got)
	}
}

// TestDrainForcedCancel: a drain whose timeout expires while a solve is
// still running force-cancels it and reports the truncation as an
// error — the caller (hypermisd) turns that into a nonzero exit.
func TestDrainForcedCancel(t *testing.T) {
	s := New(Config{Workers: 1, CacheSize: -1})
	block := make(chan struct{})
	parked := make(chan struct{})
	solveErr := make(chan error, 1)
	var once sync.Once
	go func() {
		h := hypermis.RandomMixed(77, 1000, 2000, 2, 8)
		_, _, err := s.Solve(t.Context(), h, hypermis.Options{
			Algorithm: hypermis.AlgKUW,
			Seed:      1,
			RoundObserver: func(hypermis.RoundTrace) {
				once.Do(func() { close(parked) })
				<-block
			},
		})
		solveErr <- err
	}()
	<-parked

	drainErr := make(chan error, 1)
	go func() { drainErr <- s.Drain(30 * time.Millisecond) }()
	// The forced cancel fires when the timeout lapses; only then unpark
	// the solve so it can observe the cancellation and unwind.
	<-s.drainCtx.Done()
	close(block)
	if err := <-drainErr; err == nil {
		t.Fatal("forced drain reported a clean stop")
	}
	if err := <-solveErr; err == nil {
		t.Fatal("force-canceled solve returned a result")
	}
}

// TestChaosInjectedSolveError: with the chaos injector failing every
// solve, the HTTP path reports 500 (a server fault, not a client one)
// and the error counters advance.
func TestChaosInjectedSolveError(t *testing.T) {
	inj := faultinject.New(faultinject.Config{ErrorRate: 1, Seed: 1})
	s, ts := newTestServer(t, Config{Workers: 1, CacheSize: -1, Chaos: inj})
	h := hypermis.RandomMixed(31, 80, 160, 2, 4)
	resp, err := http.Post(ts.URL+"/v1/solve?algo=greedy", ContentTypeText,
		bytes.NewReader(instanceText(t, h)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("injected-error solve status %d, want 500", resp.StatusCode)
	}
	if got := s.metrics.Errors.Load(); got != 1 {
		t.Errorf("solve_errors_total = %d, want 1", got)
	}
	if errs, _, _ := inj.Counts(); errs != 1 {
		t.Errorf("injector counted %d errors, want 1", errs)
	}
}

// TestChaosForcedQueueFull: with every enqueue chaos-rejected, the
// solve path sheds 503 exactly as a genuinely full queue would.
func TestChaosForcedQueueFull(t *testing.T) {
	inj := faultinject.New(faultinject.Config{QueueFullRate: 1, Seed: 2})
	s, ts := newTestServer(t, Config{Workers: 1, CacheSize: -1, Chaos: inj})
	h := hypermis.RandomMixed(32, 80, 160, 2, 4)
	resp, err := http.Post(ts.URL+"/v1/solve?algo=greedy", ContentTypeText,
		bytes.NewReader(instanceText(t, h)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("chaos queue-full status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("chaos queue-full 503 without Retry-After")
	}
	if got := s.metrics.Rejected.Load(); got != 1 {
		t.Errorf("rejected_total = %d, want 1", got)
	}
}

// TestBatchBackoffCounter: batch items that hit a full queue retry with
// backoff and each sleep is counted — batch_backoff_total is the
// saturation signal for the blocking paths.
func TestBatchBackoffCounter(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, CacheSize: -1})
	release := blockWorker(t, s)

	h := hypermis.RandomMixed(44, 80, 160, 2, 4)
	var body bytes.Buffer
	for seed := 0; seed < 4; seed++ {
		item := `{"algo":"greedy","seed":` + strconv.Itoa(seed) + `,"instance":` +
			strconv.Quote(string(instanceText(t, h))) + "}\n"
		body.WriteString(item)
	}
	type result struct {
		status int
		raw    []byte
	}
	resCh := make(chan result, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/batch", ContentTypeNDJSON, bytes.NewReader(body.Bytes()))
		if err != nil {
			t.Error(err)
			resCh <- result{}
			return
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		resCh <- result{resp.StatusCode, raw}
	}()
	// With one queue slot and four uncacheable items, at least one item
	// must back off while the worker is parked.
	waitFor(t, "a batch item to back off", func() bool { return s.metrics.BatchBackoff.Load() > 0 })
	release()
	res := <-resCh
	if res.status != http.StatusOK {
		t.Fatalf("batch status %d: %s", res.status, res.raw)
	}
	if n := bytes.Count(bytes.TrimSpace(res.raw), []byte("\n")) + 1; n != 4 {
		t.Errorf("batch returned %d result lines, want 4", n)
	}
	if bytes.Contains(res.raw, []byte(`"error"`)) {
		t.Errorf("batch items failed despite backoff: %s", res.raw)
	}
	if got := s.metrics.prio(admit.Batch).Enqueued.Load(); got == 0 {
		t.Error("batch items were not enqueued under the batch priority class")
	}
}

// TestBadPriorityIs400: an unknown priority name is the caller's error.
func TestBadPriorityIs400(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	h := hypermis.RandomMixed(13, 60, 120, 2, 4)
	resp, err := http.Post(ts.URL+"/v1/solve?algo=greedy&priority=mystery", ContentTypeText,
		bytes.NewReader(instanceText(t, h)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad priority status %d, want 400", resp.StatusCode)
	}
}
