package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	hypermis "repro"
)

func jobRequest(t *testing.T, method, url string, body []byte) (int, JobStatusResponse) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var js JobStatusResponse
	if resp.StatusCode < 400 {
		if err := json.Unmarshal(raw, &js); err != nil {
			t.Fatalf("bad job JSON %q: %v", raw, err)
		}
	}
	return resp.StatusCode, js
}

// pollJob polls GET /v1/jobs/{id} until pred holds or the deadline
// passes, returning the last observation.
func pollJob(t *testing.T, base, id string, deadline time.Duration, pred func(int, JobStatusResponse) bool) (int, JobStatusResponse) {
	t.Helper()
	var code int
	var js JobStatusResponse
	for end := time.Now().Add(deadline); time.Now().Before(end); {
		code, js = jobRequest(t, http.MethodGet, base+"/v1/jobs/"+id, nil)
		if pred(code, js) {
			return code, js
		}
		time.Sleep(2 * time.Millisecond)
	}
	return code, js
}

func TestJobLifecycleDone(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	h := hypermis.RandomMixed(21, 150, 300, 2, 5)
	body := instanceText(t, h)

	code, js := jobRequest(t, http.MethodPost, ts.URL+"/v1/jobs?algo=sbl&seed=3&alpha=0.3", body)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	if js.JobID == "" || js.Status != JobQueued {
		t.Fatalf("submit response %+v", js)
	}

	code, js = pollJob(t, ts.URL, js.JobID, 10*time.Second, func(c int, j JobStatusResponse) bool {
		return j.Status == JobDone
	})
	if js.Status != JobDone {
		t.Fatalf("job never finished: status %d, %+v", code, js)
	}
	if js.Solve == nil {
		t.Fatal("done job carries no solve payload")
	}

	// The async result must be bit-identical to the synchronous path.
	sr, _ := postSolve(t, ts, "algo=sbl&seed=3&alpha=0.3", body, ContentTypeText)
	if fmt.Sprint(js.Solve.MIS) != fmt.Sprint(sr.MIS) {
		t.Error("async job MIS differs from synchronous solve")
	}
	if got := s.metrics.JobsDone.Load(); got != 1 {
		t.Errorf("jobs_done = %d, want 1", got)
	}
	st := s.Stats()
	if st.JobsSubmitted != 1 || st.JobsActive != 0 || st.JobStoreSize != 1 {
		t.Errorf("stats: submitted=%d active=%d size=%d, want 1/0/1",
			st.JobsSubmitted, st.JobsActive, st.JobStoreSize)
	}
}

func TestJobUnknown(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	if code, _ := jobRequest(t, http.MethodGet, ts.URL+"/v1/jobs/jdeadbeef", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job GET status %d, want 404", code)
	}
	if code, _ := jobRequest(t, http.MethodDelete, ts.URL+"/v1/jobs/jdeadbeef", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job DELETE status %d, want 404", code)
	}
}

// TestJobTTLExpiry: a finished job is retained for JobTTL and then
// evicted — a later GET is a 404.
func TestJobTTLExpiry(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, JobTTL: 40 * time.Millisecond})
	h := hypermis.RandomMixed(5, 60, 120, 2, 4)
	code, js := jobRequest(t, http.MethodPost, ts.URL+"/v1/jobs?algo=greedy", instanceText(t, h))
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	id := js.JobID
	_, js = pollJob(t, ts.URL, id, 10*time.Second, func(c int, j JobStatusResponse) bool {
		return j.Status == JobDone
	})
	if js.Status != JobDone {
		t.Fatalf("job never finished: %+v", js)
	}
	code, _ = pollJob(t, ts.URL, id, 10*time.Second, func(c int, j JobStatusResponse) bool {
		return c == http.StatusNotFound
	})
	if code != http.StatusNotFound {
		t.Fatalf("expired job still served: status %d", code)
	}
}

// blockWorker occupies one scheduler worker with a solve whose
// RoundObserver parks on a channel: deterministic control over when the
// worker frees up. Returns after the worker is parked; the caller must
// call the returned release func.
func blockWorker(t *testing.T, s *Server) (release func()) {
	t.Helper()
	block := make(chan struct{})
	parked := make(chan struct{})
	done := make(chan error, 1)
	var once bool
	go func() {
		// KUW always drives the shared round loop (SBL may shortcut via
		// direct BL on small dimensions, skipping the observer).
		h := hypermis.RandomMixed(77, 1000, 2000, 2, 8)
		_, _, err := s.Solve(t.Context(), h, hypermis.Options{
			Algorithm: hypermis.AlgKUW,
			Seed:      1,
			RoundObserver: func(hypermis.RoundTrace) {
				if !once {
					once = true // observer runs on one goroutine, in round order
					close(parked)
				}
				<-block
			},
		})
		done <- err
	}()
	<-parked
	return func() {
		close(block)
		if err := <-done; err != nil {
			t.Errorf("blocked worker solve failed: %v", err)
		}
	}
}

// TestJobCancelInFlight: with the single worker deterministically
// parked, a submitted job cannot complete; canceling it must drive it
// to the canceled terminal state while the worker is still busy.
func TestJobCancelInFlight(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	release := blockWorker(t, s)
	defer release()

	h := hypermis.RandomMixed(31, 100, 200, 2, 5)
	code, js := jobRequest(t, http.MethodPost, ts.URL+"/v1/jobs?algo=sbl", instanceText(t, h))
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	id := js.JobID

	code, js = jobRequest(t, http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	if code != http.StatusOK {
		t.Fatalf("cancel status %d", code)
	}
	_, js = pollJob(t, ts.URL, id, 10*time.Second, func(c int, j JobStatusResponse) bool {
		return j.Status == JobCanceled
	})
	if js.Status != JobCanceled {
		t.Fatalf("job not canceled: %+v", js)
	}
	if js.Solve != nil {
		t.Error("canceled job carries a solve payload")
	}
	if got := s.metrics.JobsCanceled.Load(); got != 1 {
		t.Errorf("jobs_canceled = %d, want 1", got)
	}
}

// TestJobStoreEvictionSparesRunning: when the store is at capacity
// with a mix of terminal and non-terminal jobs, making room for a new
// submission must evict a terminal job — never the one still queued or
// running, whose submitter would otherwise lose a job it was promised.
func TestJobStoreEvictionSparesRunning(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, MaxJobs: 2, CacheSize: -1})
	h := hypermis.RandomMixed(61, 80, 160, 2, 4)
	body := instanceText(t, h)

	// Slot 1: a finished (terminal, evictable) job.
	code, done := jobRequest(t, http.MethodPost, ts.URL+"/v1/jobs?algo=greedy&seed=1", body)
	if code != http.StatusAccepted {
		t.Fatalf("first submit status %d", code)
	}
	_, js := pollJob(t, ts.URL, done.JobID, 10*time.Second, func(c int, j JobStatusResponse) bool {
		return j.Status == JobDone
	})
	if js.Status != JobDone {
		t.Fatalf("seed job never finished: %+v", js)
	}

	// Slot 2: a job parked behind the now-blocked worker (non-terminal).
	release := blockWorker(t, s)
	code, live := jobRequest(t, http.MethodPost, ts.URL+"/v1/jobs?algo=greedy&seed=2", body)
	if code != http.StatusAccepted {
		t.Fatalf("live submit status %d", code)
	}

	// The store is full; this submission must evict the terminal job.
	code, extra := jobRequest(t, http.MethodPost, ts.URL+"/v1/jobs?algo=greedy&seed=3", body)
	if code != http.StatusAccepted {
		t.Fatalf("pressure submit status %d, want 202 (terminal job evicted)", code)
	}
	// The terminal job is gone, the live one is not.
	if code, _ := jobRequest(t, http.MethodGet, ts.URL+"/v1/jobs/"+done.JobID, nil); code != http.StatusNotFound {
		t.Errorf("terminal job survived eviction: status %d", code)
	}
	if code, js := jobRequest(t, http.MethodGet, ts.URL+"/v1/jobs/"+live.JobID, nil); code != http.StatusOK || js.Status.terminal() {
		t.Fatalf("live job dropped by eviction: status %d, %+v", code, js)
	}

	// Both survivors run to completion once the worker frees up.
	release()
	for _, id := range []string{live.JobID, extra.JobID} {
		_, js := pollJob(t, ts.URL, id, 10*time.Second, func(c int, j JobStatusResponse) bool {
			return j.Status == JobDone
		})
		if js.Status != JobDone || js.Solve == nil {
			t.Errorf("job %s did not finish after release: %+v", id, js)
		}
	}
}

// TestJobStoreFull: with every store slot held by an in-flight job,
// submission sheds with 503; slots free once jobs reach terminal
// states.
func TestJobStoreFull(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, MaxJobs: 1})
	release := blockWorker(t, s)
	defer release()

	h := hypermis.RandomMixed(41, 80, 160, 2, 4)
	body := instanceText(t, h)
	code, js := jobRequest(t, http.MethodPost, ts.URL+"/v1/jobs?algo=sbl", body)
	if code != http.StatusAccepted {
		t.Fatalf("first submit status %d", code)
	}
	if code, _ := jobRequest(t, http.MethodPost, ts.URL+"/v1/jobs?algo=sbl", body); code != http.StatusServiceUnavailable {
		t.Fatalf("second submit status %d, want 503", code)
	}
	// Cancel the holder; once terminal it is evictable and a new job fits.
	if code, _ := jobRequest(t, http.MethodDelete, ts.URL+"/v1/jobs/"+js.JobID, nil); code != http.StatusOK {
		t.Fatalf("cancel status %d", code)
	}
	pollJob(t, ts.URL, js.JobID, 10*time.Second, func(c int, j JobStatusResponse) bool {
		return j.Status == JobCanceled
	})
	if code, _ = jobRequest(t, http.MethodPost, ts.URL+"/v1/jobs?algo=greedy", body); code != http.StatusAccepted {
		t.Fatalf("post-eviction submit status %d, want 202", code)
	}
}
