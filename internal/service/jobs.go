package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	hypermis "repro"
	"repro/internal/admit"
	"repro/internal/obs"
)

// JobState is an async job's lifecycle state. A job is accepted as
// JobQueued, becomes JobRunning when its goroutine starts driving the
// scheduler, and ends in exactly one terminal state: JobDone (result
// available), JobFailed (solve error or per-job deadline), or
// JobCanceled (DELETE /v1/jobs/{id} or server shutdown). Terminal jobs
// are retained for Config.JobTTL and then evicted — a GET after
// eviction is a 404, indistinguishable from a job that never existed.
type JobState string

const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

func (st JobState) terminal() bool {
	return st == JobDone || st == JobFailed || st == JobCanceled
}

// ErrJobStoreFull is returned by SubmitJob when the job store holds
// MaxJobs jobs and none is an evictable terminal one; the caller should
// shed or retry later (HTTP 503).
var ErrJobStoreFull = errors.New("service: job store full")

// errUnknownJob distinguishes "no such job" (404) from other failures.
var errUnknownJob = errors.New("service: unknown job")

// asyncJob is one async workload tracked by the job store. All fields
// after the immutable header are guarded by the store's mutex. resp is
// the kind's wire response (*SolveResponse, *ColorResponse or
// *TransversalResponse) once the job is done.
type asyncJob struct {
	id      string
	kind    WorkKind
	created time.Time
	cancel  context.CancelFunc

	state   JobState
	resp    any
	errMsg  string
	expires time.Time // zero until terminal; then terminal time + TTL
}

// jobStore is the bounded TTL-evicting registry behind the async job
// API. Eviction is lazy: every add sweeps expired terminal jobs, and a
// get of an expired job removes it inline — no background janitor, so
// an idle server holds at most MaxJobs records and spends nothing.
type jobStore struct {
	mu     sync.Mutex
	ttl    time.Duration
	cap    int
	m      map[string]*asyncJob
	active int // jobs in a non-terminal state
}

func newJobStore(ttl time.Duration, capacity int) *jobStore {
	return &jobStore{ttl: ttl, cap: capacity, m: make(map[string]*asyncJob)}
}

func newJobID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("service: job id entropy: %v", err))
	}
	return "j" + hex.EncodeToString(b[:])
}

// sweep removes expired terminal jobs. Called with mu held.
func (st *jobStore) sweep(now time.Time) {
	for id, j := range st.m {
		if j.state.terminal() && now.After(j.expires) {
			delete(st.m, id)
		}
	}
}

// add registers j, evicting expired — then, if still full, the oldest
// terminal — jobs to make room. With cap non-terminal jobs in flight
// the store refuses (ErrJobStoreFull): accepted jobs are a real backlog
// and must stay bounded, exactly like the solve queue.
func (st *jobStore) add(j *asyncJob) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	now := j.created
	st.sweep(now)
	if len(st.m) >= st.cap {
		var oldest *asyncJob
		for _, cand := range st.m {
			if cand.state.terminal() && (oldest == nil || cand.expires.Before(oldest.expires)) {
				oldest = cand
			}
		}
		if oldest == nil {
			return ErrJobStoreFull
		}
		delete(st.m, oldest.id)
	}
	st.m[j.id] = j
	st.active++
	return nil
}

// snapshot returns a copy of the job's current state, expiring it
// inline if its TTL has lapsed.
func (st *jobStore) snapshot(id string, now time.Time) (asyncJob, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.m[id]
	if !ok {
		return asyncJob{}, false
	}
	if j.state.terminal() && now.After(j.expires) {
		delete(st.m, id)
		return asyncJob{}, false
	}
	return *j, true
}

func (st *jobStore) setRunning(id string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if j, ok := st.m[id]; ok && j.state == JobQueued {
		j.state = JobRunning
	}
}

// finish moves the job to a terminal state and starts its TTL clock.
// The job may already have been evicted (store pressure); that is fine.
func (st *jobStore) finish(id string, state JobState, resp any, errMsg string, now time.Time) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.m[id]
	if !ok || j.state.terminal() {
		return
	}
	j.state = state
	j.resp = resp
	j.errMsg = errMsg
	j.expires = now.Add(st.ttl)
	st.active--
}

// requestCancel cancels a non-terminal job's context and reports the
// job's state at the time of the call. The job transitions to
// JobCanceled only when its solve actually unwinds.
func (st *jobStore) requestCancel(id string) (JobState, error) {
	st.mu.Lock()
	j, ok := st.m[id]
	if !ok {
		st.mu.Unlock()
		return "", errUnknownJob
	}
	state := j.state
	cancel := j.cancel
	st.mu.Unlock()
	if !state.terminal() {
		cancel()
	}
	return state, nil
}

// counts reports the jobs in a non-terminal state and the total store
// occupancy after an expiry sweep.
func (st *jobStore) counts(now time.Time) (active, size int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.sweep(now)
	return st.active, len(st.m)
}

// cancelAll cancels every non-terminal job (server shutdown).
func (st *jobStore) cancelAll() {
	st.mu.Lock()
	cancels := make([]context.CancelFunc, 0, st.active)
	for _, j := range st.m {
		if !j.state.terminal() {
			cancels = append(cancels, j.cancel)
		}
	}
	st.mu.Unlock()
	for _, c := range cancels {
		c()
	}
}

// SubmitJob accepts h under opts as an async MIS solve in the given
// priority class — SubmitWork with the historical solve kind.
func (s *Server) SubmitJob(h *hypermis.Hypergraph, opts hypermis.Options, prio admit.Priority) (string, error) {
	return s.SubmitWork(WorkSolve, h, opts, prio)
}

// SubmitWork accepts h under opts as an async job of the given workload
// kind and priority class and returns its id immediately; the work runs
// through the same scheduler, cache and workspace pool as the
// synchronous paths, detached from any caller context. Poll JobStatus
// for the result; CancelJob stops an in-flight job at its next solver
// round.
func (s *Server) SubmitWork(kind WorkKind, h *hypermis.Hypergraph, opts hypermis.Options, prio admit.Priority) (string, error) {
	// The job context bounds the job's WHOLE lifetime — queue wait
	// included — at twice the per-job deadline (which itself starts only
	// at worker pickup). Without this, a job starved by a saturated
	// queue would spin in solveBlocking forever, holding a store slot
	// that non-terminal jobs never free.
	var jctx context.Context
	var cancel context.CancelFunc
	if s.cfg.JobTimeout > 0 {
		jctx, cancel = context.WithTimeout(context.Background(), 2*s.cfg.JobTimeout)
	} else {
		jctx, cancel = context.WithCancel(context.Background())
	}
	j := &asyncJob{id: newJobID(), kind: kind, created: time.Now(), cancel: cancel, state: JobQueued}
	// Hold the read side across the closed-check, the store add and the
	// WaitGroup Add (mirroring enqueue): once Close holds the write side
	// it sees every accepted job — cancelAll catches it in the store and
	// jobWg.Wait never races an in-flight Add.
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.isClosed {
		cancel()
		return "", ErrClosed
	}
	if s.isDraining {
		cancel()
		return "", ErrDraining
	}
	if err := s.jobs.add(j); err != nil {
		cancel()
		return "", err
	}
	s.metrics.JobsSubmitted.Add(1)
	s.jobWg.Add(1)
	go s.runJob(jctx, cancel, j.id, kind, h, opts, prio)
	return j.id, nil
}

func (s *Server) runJob(ctx context.Context, cancel context.CancelFunc, id string, kind WorkKind, h *hypermis.Hypergraph, opts hypermis.Options, prio admit.Priority) {
	defer s.jobWg.Done()
	// Release the lifetime timer once terminal; CancelJob may also call
	// it concurrently (CancelFuncs are idempotent and safe).
	defer cancel()
	// An async job owns no HTTP request, so it carries its own trace:
	// the submit response's job id finds it in the flight recorder
	// (filter endpoint=JOB), spans and round tallies included.
	var tr *obs.Trace
	if s.recorder != nil {
		tr = obs.NewTrace("JOB /v1/jobs")
		tr.SetDetail("job=%s kind=%s algo=%s", id, kind, hypermis.ResolveAlgorithm(h, opts.Algorithm))
		ctx = obs.With(ctx, tr)
	}
	s.jobs.setRunning(id)
	start := time.Now()
	res, cached, err := s.workBlocking(ctx, kind, h, opts, prio)
	status := http.StatusOK
	switch {
	case err == nil:
		var resp any
		elapsed := time.Since(start)
		switch kind {
		case WorkColor:
			resp = ColorResponseFor(h, res.(*hypermis.ColorResult), cached, elapsed)
		case WorkTransversal:
			resp = TransversalResponseFor(h, res.(*hypermis.TransversalResult), cached, elapsed)
		default:
			resp = SolveResponseFor(h, res.(*hypermis.Result), cached, elapsed)
		}
		s.jobs.finish(id, JobDone, resp, "", time.Now())
		s.metrics.JobsDone.Add(1)
	case errors.Is(err, context.Canceled), errors.Is(err, ErrClosed):
		// Only CancelJob and server shutdown cancel the job's context
		// (deadlines — the per-job one and the 2× lifetime bound —
		// surface as DeadlineExceeded). ErrClosed is the shutdown race
		// where Solve observes the closed flag before the job's canceled
		// context: same outcome, same state.
		s.jobs.finish(id, JobCanceled, nil, err.Error(), time.Now())
		s.metrics.JobsCanceled.Add(1)
		status = 499 // client closed request: the de-facto canceled code
	default:
		s.jobs.finish(id, JobFailed, nil, err.Error(), time.Now())
		s.metrics.JobsFailed.Add(1)
		status = http.StatusInternalServerError
	}
	if tr != nil {
		tr.Finish(status)
		s.recorder.Record(tr.Snapshot())
	}
}

// JobStatusResponse is the JSON body of POST /v1/jobs (job_id + status
// only), GET /v1/jobs/{id} and DELETE /v1/jobs/{id}. Exactly one of
// Solve, Color or Transversal — matching the submitted kind — is
// present once the job is done; Error once it failed or was canceled;
// ExpiresInMs counts down the terminal job's retention.
type JobStatusResponse struct {
	JobID       string               `json:"job_id"`
	Kind        WorkKind             `json:"kind,omitempty"`
	Status      JobState             `json:"status"`
	AgeMs       float64              `json:"age_ms,omitempty"`
	ExpiresInMs float64              `json:"expires_in_ms,omitempty"`
	Error       string               `json:"error,omitempty"`
	Solve       *SolveResponse       `json:"solve,omitempty"`
	Color       *ColorResponse       `json:"color,omitempty"`
	Transversal *TransversalResponse `json:"transversal,omitempty"`
}

func jobStatusResponse(j asyncJob, now time.Time) JobStatusResponse {
	resp := JobStatusResponse{
		JobID:  j.id,
		Kind:   j.kind,
		Status: j.state,
		AgeMs:  float64(now.Sub(j.created)) / float64(time.Millisecond),
		Error:  j.errMsg,
	}
	switch r := j.resp.(type) {
	case *SolveResponse:
		resp.Solve = r
	case *ColorResponse:
		resp.Color = r
	case *TransversalResponse:
		resp.Transversal = r
	}
	if j.state.terminal() {
		resp.ExpiresInMs = float64(j.expires.Sub(now)) / float64(time.Millisecond)
	}
	return resp
}

// JobStatus reports the job's current state (ok=false: unknown or
// expired).
func (s *Server) JobStatus(id string) (JobStatusResponse, bool) {
	now := time.Now()
	j, ok := s.jobs.snapshot(id, now)
	if !ok {
		return JobStatusResponse{}, false
	}
	return jobStatusResponse(j, now), true
}

// CancelJob requests cancellation of an in-flight job. Terminal jobs
// are unaffected. The returned state is the state at cancel time; poll
// JobStatus to observe the transition to JobCanceled.
func (s *Server) CancelJob(id string) (JobStatusResponse, bool) {
	if _, err := s.jobs.requestCancel(id); err != nil {
		return JobStatusResponse{}, false
	}
	s.metrics.JobCancelRequests.Add(1)
	return s.JobStatus(id)
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	if !s.allowClient(w, r) {
		return
	}
	opts, err := parseSolveOptions(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	kind, err := ParseWorkKind(r.URL.Query().Get("kind"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	prio, err := requestPriority(r, admit.Batch)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	h, err := readInstanceBody(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading instance: %v", err)
		return
	}
	id, err := s.SubmitWork(kind, h, opts, prio)
	switch {
	case errors.Is(err, ErrJobStoreFull):
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+id)
	writeJSON(w, http.StatusAccepted, JobStatusResponse{JobID: id, Kind: kind, Status: JobQueued})
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	resp, ok := s.JobStatus(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown or expired job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	resp, ok := s.CancelJob(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown or expired job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
