package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand/v2"
	"net/http"
	"strings"
	"sync"
	"time"

	hypermis "repro"
	"repro/internal/admit"
	"repro/internal/hgio"
	"repro/internal/obs"
)

// ContentTypeNDJSON frames batch requests and responses: one JSON
// document per line, no enclosing array, so both sides can stream.
const ContentTypeNDJSON = "application/x-ndjson"

// BatchItem is one line of the NDJSON body of POST /v1/batch: a
// self-contained work request (a solve by default — see Kind). Exactly
// one of Instance (hgio text
// format, newlines included), InstanceB64 (standard base64 of the hgio
// binary format) or Ref (the id of an earlier item in the same batch,
// whose already-parsed instance is reused) carries the hypergraph. The
// remaining fields mirror the query parameters of POST /v1/solve and
// default the same way. The type is shared by the server, the
// `hypermis batch` CLI and cmd/hypermisload, so the framing cannot
// drift between them.
type BatchItem struct {
	// ID is echoed back verbatim in the item's result, for clients that
	// correlate by name instead of by index. It is also the anchor Ref
	// resolves against: later items in the same batch may reuse this
	// item's instance without resending it.
	ID string `json:"id,omitempty"`
	// Kind selects the item's workload: "solve" (the default when
	// empty), "color" or "transversal". The remaining options apply to
	// every kind (a coloring seeds class c with Seed+c).
	Kind        string  `json:"kind,omitempty"`
	Algo        string  `json:"algo,omitempty"`
	Seed        uint64  `json:"seed,omitempty"`
	Alpha       float64 `json:"alpha,omitempty"`
	GreedyTail  bool    `json:"greedytail,omitempty"`
	Cost        bool    `json:"cost,omitempty"`
	Trace       bool    `json:"trace,omitempty"`
	Par         int     `json:"par,omitempty"`
	Instance    string  `json:"instance,omitempty"`
	InstanceB64 string  `json:"instance_b64,omitempty"`
	// Ref reuses the instance of the earlier item whose ID equals Ref —
	// the batch is parsed in stream order, so forward references are
	// errors. Solving k seeds over one instance therefore parses it
	// once, not k times (if two earlier items share an id, the later
	// one wins).
	Ref string `json:"ref,omitempty"`
	// Priority names the item's admission class (interactive, batch or
	// background); empty defaults to batch, the class for work with no
	// client waiting on each individual result.
	Priority string `json:"priority,omitempty"`
}

// Options converts the item's solve parameters into hypermis.Options,
// applying the same validation as the /v1/solve query parameters.
func (it BatchItem) Options() (hypermis.Options, error) {
	var opts hypermis.Options
	algo, err := hypermis.ParseAlgorithm(it.Algo)
	if err != nil {
		return opts, err
	}
	opts.Algorithm = algo
	opts.Seed = it.Seed
	if it.Alpha < 0 || it.Alpha >= 1 {
		return opts, fmt.Errorf("bad alpha %g (want [0,1))", it.Alpha)
	}
	opts.Alpha = it.Alpha
	opts.UseGreedyTail = it.GreedyTail
	opts.CollectCost = it.Cost
	opts.Trace = it.Trace
	if it.Par < 0 || it.Par > maxParRequest {
		return opts, fmt.Errorf("bad par %d (want 0..%d)", it.Par, maxParRequest)
	}
	opts.Parallelism = it.Par
	return opts, nil
}

// Hypergraph decodes the item's instance payload. Items using Ref need
// the batch-scoped context a BatchParser carries; use one of those when
// decoding a whole stream.
func (it BatchItem) Hypergraph() (*hypermis.Hypergraph, error) {
	return NewBatchParser().Instance(&it)
}

// BatchParser decodes the instances of one batch's items in stream
// order: decode buffers (readers, base64 scratch) are reused across
// items, and every successfully parsed instance is remembered under
// its item's ID so later items can Ref it instead of resending the
// bytes. One server batch request, one local `hypermis batch` run and
// one hypermisload batch step each use exactly one BatchParser.
type BatchParser struct {
	scratch parseScratch
	refs    map[string]*hypermis.Hypergraph
}

// NewBatchParser returns a parser for one batch stream.
func NewBatchParser() *BatchParser {
	return &BatchParser{refs: make(map[string]*hypermis.Hypergraph)}
}

// Instance resolves it's hypergraph: a Ref looks up an earlier item's
// parsed instance, anything else parses the item's own payload (and
// registers it under the item's ID for later Refs).
func (p *BatchParser) Instance(it *BatchItem) (*hypermis.Hypergraph, error) {
	if it.Ref != "" {
		if it.Instance != "" || it.InstanceB64 != "" {
			return nil, errors.New("ref excludes instance and instance_b64")
		}
		h, ok := p.refs[it.Ref]
		if !ok {
			return nil, fmt.Errorf("ref %q does not name an earlier item id in this batch", it.Ref)
		}
		// A ref item's own id is a valid anchor too (ref chains), per
		// docs/api.md: ref names the id of any earlier item.
		if it.ID != "" {
			p.refs[it.ID] = h
		}
		return h, nil
	}
	h, err := p.scratch.instance(it)
	if err != nil {
		return nil, err
	}
	if it.ID != "" {
		p.refs[it.ID] = h
	}
	return h, nil
}

// BatchItemResult is one line of the NDJSON response of POST /v1/batch.
// Index is the item's zero-based position in the request stream (the
// response arrives in completion order, not submission order); exactly
// one of Solve, Color, Transversal (matching the item's Kind) and Error
// is set. A per-item Error never aborts the rest of the batch.
type BatchItemResult struct {
	Index       int                  `json:"index"`
	ID          string               `json:"id,omitempty"`
	Error       string               `json:"error,omitempty"`
	Solve       *SolveResponse       `json:"solve,omitempty"`
	Color       *ColorResponse       `json:"color,omitempty"`
	Transversal *TransversalResponse `json:"transversal,omitempty"`
}

// parseScratch holds the decode buffers one batch request reuses across
// its items: the string/byte readers the hgio parsers consume and the
// base64 scratch for binary payloads. The built Hypergraphs themselves
// must be freshly allocated (they outlive parsing — jobs, cache entries
// and responses hold them), so only the transient decoding state is
// shared.
type parseScratch struct {
	sr  strings.Reader
	br  bytes.Reader
	b64 []byte
}

func (ps *parseScratch) instance(it *BatchItem) (*hypermis.Hypergraph, error) {
	var h *hypermis.Hypergraph
	var err error
	switch {
	case it.Instance != "" && it.InstanceB64 != "":
		return nil, errors.New("instance and instance_b64 are mutually exclusive")
	case it.Instance != "":
		ps.sr.Reset(it.Instance)
		h, err = hgio.ReadText(&ps.sr)
	case it.InstanceB64 != "":
		need := base64.StdEncoding.DecodedLen(len(it.InstanceB64))
		if cap(ps.b64) < need {
			ps.b64 = make([]byte, need)
		}
		var n int
		n, err = base64.StdEncoding.Decode(ps.b64[:need], []byte(it.InstanceB64))
		if err != nil {
			return nil, fmt.Errorf("instance_b64: %w", err)
		}
		ps.br.Reset(ps.b64[:n])
		h, err = hgio.ReadBinary(&ps.br)
	default:
		return nil, errors.New("missing instance (set instance or instance_b64)")
	}
	if err != nil {
		return nil, err
	}
	if h.N() > maxInstanceN {
		return nil, fmt.Errorf("instance declares %d vertices, limit %d", h.N(), maxInstanceN)
	}
	return h, nil
}

// timedResult carries an item's result to the response writer together
// with the item's arrival time, so the streaming latency histogram can
// measure read-to-flush per item.
type timedResult struct {
	res   BatchItemResult
	start time.Time
}

// workBlocking is the kind-generic *Class scheduling with the bounded
// queue's fail-fast turned into waiting: the batch and async-job paths
// own no client connection that needs an immediate 503, so on
// ErrQueueFull they back off — capped exponential with full jitter, so
// a queue-full burst doesn't resubmit every stalled item in lockstep —
// and retry until ctx expires. Other errors pass through (an
// AdmissionError is terminal: retrying a deadline that cannot be met
// only adds load). The cache key is computed once and counters fire
// only on the first attempt — see workKeyed. Every backoff sleep bumps
// batch_backoff_total, the saturation signal for this path.
func (s *Server) workBlocking(ctx context.Context, kind WorkKind, h *hypermis.Hypergraph, opts hypermis.Options, prio admit.Priority) (any, bool, error) {
	key := WorkKey(kind, h, opts)
	for attempt := 1; ; attempt++ {
		res, cached, err := s.workKeyed(ctx, kind, h, opts, key, prio, attempt == 1)
		if !errors.Is(err, ErrQueueFull) {
			return res, cached, err
		}
		// 1, 2, 4, ... 32ms ceilings, jittered uniformly over (0, ceiling]
		// so concurrent stalled items spread out instead of thundering.
		ceiling := time.Millisecond << min(attempt-1, 5)
		backoff := time.Duration(rand.Int64N(int64(ceiling))) + 1
		s.metrics.BatchBackoff.Add(1)
		select {
		case <-ctx.Done():
			return nil, false, ctx.Err()
		case <-time.After(backoff):
		}
	}
}

// handleBatch streams POST /v1/batch: NDJSON items in, NDJSON results
// out, in completion order. Items fan out through the scheduler (same
// bounded queue, workspace pool and per-item cache lookups as
// /v1/solve) under an in-flight window of 2×Workers, and each result
// line is flushed as soon as its item completes. Backpressure is
// end-to-end: a slow client blocks the response writer, which fills the
// results channel, which stalls the window, which stops the request
// scanner — the batch never buffers more than the window.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if !s.allowClient(w, r) {
		return
	}
	s.metrics.BatchRequests.Add(1)
	w.Header().Set("Content-Type", ContentTypeNDJSON)
	flusher, _ := w.(http.Flusher)
	// The handler reads items while writing results. On HTTP/1.x the
	// server closes an unread body at the first response write unless
	// full-duplex is enabled; HTTP/2 is always full-duplex (the call
	// errors there, harmlessly).
	_ = http.NewResponseController(w).EnableFullDuplex()

	window := 2 * s.cfg.Workers
	if window > s.cfg.MaxBatchItems {
		window = s.cfg.MaxBatchItems
	}
	if window < 1 {
		window = 1
	}
	results := make(chan timedResult, window)
	sem := make(chan struct{}, window)
	ctx := r.Context()

	go func() {
		var wg sync.WaitGroup
		defer func() {
			wg.Wait()
			close(results)
		}()
		emit := func(tr timedResult) {
			sem <- struct{}{}
			results <- tr
			<-sem
		}
		sc := bufio.NewScanner(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
		sc.Buffer(make([]byte, 1<<20), maxBodyBytes)
		// One parser for the whole batch: items decode through shared
		// readers and one base64 buffer instead of per-item ones, and
		// ref items reuse earlier instances without reparsing.
		parser := NewBatchParser()
		index := 0
		for sc.Scan() {
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			if index >= s.cfg.MaxBatchItems {
				// A stream-level notice, not a carried item: it counts in
				// neither batch_items_total nor batch_item_errors, keeping
				// errors/items a meaningful per-item failure rate.
				emit(timedResult{BatchItemResult{
					Index: index,
					Error: fmt.Sprintf("batch truncated: limit is %d items per request", s.cfg.MaxBatchItems),
				}, time.Now()})
				return
			}
			start := time.Now()
			s.metrics.BatchItems.Add(1)
			var it BatchItem
			if err := json.Unmarshal(line, &it); err != nil {
				// A malformed line fails this item only; the stream stays
				// line-framed, so subsequent items still parse.
				s.metrics.BatchItemErrors.Add(1)
				emit(timedResult{BatchItemResult{Index: index, Error: fmt.Sprintf("bad item JSON: %v", err)}, start})
				index++
				continue
			}
			res := BatchItemResult{Index: index, ID: it.ID}
			opts, err := it.Options()
			var kind WorkKind
			if err == nil {
				kind, err = ParseWorkKind(it.Kind)
			}
			var prio admit.Priority
			if err == nil {
				prio, err = admit.Parse(it.Priority, admit.Batch)
			}
			if err == nil {
				var h *hypermis.Hypergraph
				h, err = parser.Instance(&it)
				if err == nil {
					sem <- struct{}{}
					wg.Add(1)
					go func(res BatchItemResult, h *hypermis.Hypergraph, opts hypermis.Options, start time.Time) {
						defer wg.Done()
						worked, cached, err := s.workBlocking(ctx, kind, h, opts, prio)
						if err != nil {
							s.metrics.BatchItemErrors.Add(1)
							res.Error = err.Error()
						} else {
							switch kind {
							case WorkColor:
								res.Color = ColorResponseFor(h, worked.(*hypermis.ColorResult), cached, time.Since(start))
							case WorkTransversal:
								res.Transversal = TransversalResponseFor(h, worked.(*hypermis.TransversalResult), cached, time.Since(start))
							default:
								res.Solve = SolveResponseFor(h, worked.(*hypermis.Result), cached, time.Since(start))
							}
						}
						results <- timedResult{res, start}
						<-sem
					}(res, h, opts, start)
					index++
					continue
				}
			}
			s.metrics.BatchItemErrors.Add(1)
			res.Error = err.Error()
			emit(timedResult{res, start})
			index++
		}
		if err := sc.Err(); err != nil {
			// Stream-level failure record — not an item, not counted.
			emit(timedResult{BatchItemResult{Index: index, Error: fmt.Sprintf("reading batch: %v", err)}, time.Now()})
		}
	}()

	trace := obs.From(r.Context())
	enc := json.NewEncoder(w)
	flushed := 0
	for tr := range results {
		sp := trace.StartSpan("flush")
		_ = enc.Encode(tr.res)
		if flusher != nil {
			flusher.Flush()
		}
		sp.End()
		flushed++
		s.metrics.BatchItemLatency.Observe(time.Since(tr.start))
	}
	trace.SetDetail("items=%d", flushed)
}
