package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	hypermis "repro"
	"repro/internal/durable"
)

func postColor(t *testing.T, ts *httptest.Server, query string, body []byte, contentType string) *ColorResponse {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/color?"+query, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("color status %d: %s", resp.StatusCode, raw)
	}
	var cr ColorResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	return &cr
}

func postTransversal(t *testing.T, ts *httptest.Server, query string, body []byte, contentType string) *TransversalResponse {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/transversal?"+query, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("transversal status %d: %s", resp.StatusCode, raw)
	}
	var tv TransversalResponse
	if err := json.NewDecoder(resp.Body).Decode(&tv); err != nil {
		t.Fatal(err)
	}
	return &tv
}

// maskFromMembers rebuilds the []bool mask a TransversalResponse's
// ascending member list denotes.
func maskFromMembers(t *testing.T, n int, members []int) []bool {
	t.Helper()
	mask := make([]bool, n)
	prev := -1
	for _, v := range members {
		if v <= prev || v >= n {
			t.Fatalf("member list not ascending in range: %v", members)
		}
		prev = v
		mask[v] = true
	}
	return mask
}

// TestColorEndpointMatchesLocal: POST /v1/color is bit-identical to the
// in-process ColorByMISCtx at every requested parallelism degree, the
// served coloring verifies against the instance, and a repeat request
// is a cache hit with the same bits. The cache is disabled for the par
// sweep (keys are par-independent, so hits would mask par bugs).
func TestColorEndpointMatchesLocal(t *testing.T) {
	h := testInstance(31)
	opts := hypermis.Options{Algorithm: hypermis.AlgSBL, Seed: 7, Alpha: 0.3}
	ref, err := hypermis.ColorByMISCtx(context.Background(), h, opts)
	if err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, Config{Workers: 4, CacheSize: -1})
	body := instanceText(t, h)
	for _, par := range []int{0, 1, 2, 8} {
		q := fmt.Sprintf("algo=sbl&seed=7&alpha=0.3&par=%d", par)
		cr := postColor(t, ts, q, body, ContentTypeText)
		if cr.Cached {
			t.Fatalf("par=%d: cache hit with caching disabled", par)
		}
		if cr.Algorithm != "sbl" || cr.N != h.N() || cr.M != h.M() {
			t.Fatalf("par=%d: response header %s/%d/%d", par, cr.Algorithm, cr.N, cr.M)
		}
		if cr.NumColors != ref.NumColors || cr.Rounds != ref.Rounds {
			t.Fatalf("par=%d: (colors,rounds)=(%d,%d), local=(%d,%d)",
				par, cr.NumColors, cr.Rounds, ref.NumColors, ref.Rounds)
		}
		if fmt.Sprint(cr.Colors) != fmt.Sprint(ref.Colors) {
			t.Fatalf("par=%d: served colors differ from local ColorByMISCtx", par)
		}
		if fmt.Sprint(cr.ClassSizes) != fmt.Sprint(ref.ClassSizes) {
			t.Fatalf("par=%d: class sizes %v, local %v", par, cr.ClassSizes, ref.ClassSizes)
		}
		if len(cr.Classes) != cr.NumColors {
			t.Fatalf("par=%d: %d class records for %d colors", par, len(cr.Classes), cr.NumColors)
		}
		served := &hypermis.Coloring{Colors: cr.Colors, NumColors: cr.NumColors, ClassSizes: cr.ClassSizes}
		if err := hypermis.VerifyColoring(h, served); err != nil {
			t.Fatalf("par=%d: served coloring invalid: %v", par, err)
		}
	}

	// With caching on, the second request is a hit with identical bits.
	_, ts2 := newTestServer(t, Config{Workers: 2})
	first := postColor(t, ts2, "algo=sbl&seed=7&alpha=0.3", body, ContentTypeText)
	if first.Cached {
		t.Fatal("first request was a cache hit")
	}
	second := postColor(t, ts2, "algo=sbl&seed=7&alpha=0.3", body, ContentTypeText)
	if !second.Cached {
		t.Fatal("repeat request missed the cache")
	}
	if fmt.Sprint(second.Colors) != fmt.Sprint(first.Colors) {
		t.Fatal("cached coloring differs from the computed one")
	}
}

// TestTransversalEndpointMatchesLocal: POST /v1/transversal is
// bit-identical to the in-process MinimalTransversalCtx at every
// parallelism degree, and the served member list denotes a verified
// minimal transversal with Size + MISSize == N.
func TestTransversalEndpointMatchesLocal(t *testing.T) {
	h := testInstance(32)
	opts := hypermis.Options{Algorithm: hypermis.AlgKUW, Seed: 4}
	ref, err := hypermis.MinimalTransversalCtx(context.Background(), h, opts)
	if err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, Config{Workers: 4, CacheSize: -1})
	body := instanceText(t, h)
	for _, par := range []int{0, 1, 2, 8} {
		q := fmt.Sprintf("algo=kuw&seed=4&par=%d", par)
		tv := postTransversal(t, ts, q, body, ContentTypeText)
		if tv.Cached {
			t.Fatalf("par=%d: cache hit with caching disabled", par)
		}
		if tv.Size != ref.Size || tv.MISSize != ref.MISSize || tv.Rounds != ref.Rounds {
			t.Fatalf("par=%d: (size,mis,rounds)=(%d,%d,%d), local=(%d,%d,%d)",
				par, tv.Size, tv.MISSize, tv.Rounds, ref.Size, ref.MISSize, ref.Rounds)
		}
		if tv.Size+tv.MISSize != tv.N || tv.N != h.N() {
			t.Fatalf("par=%d: size %d + mis_size %d != n %d", par, tv.Size, tv.MISSize, tv.N)
		}
		mask := maskFromMembers(t, h.N(), tv.Transversal)
		for v := range mask {
			if mask[v] != ref.Transversal[v] {
				t.Fatalf("par=%d: served transversal differs from local at vertex %d", par, v)
			}
		}
		if err := hypermis.VerifyMinimalTransversal(h, mask); err != nil {
			t.Fatalf("par=%d: served transversal invalid: %v", par, err)
		}
	}
}

// TestWorkloadCrossPathEquivalence: the same (instance, options, kind)
// through the synchronous endpoint, a /v1/batch item with a kind field,
// and an async /v1/jobs?kind= submission yields bit-identical payloads.
func TestWorkloadCrossPathEquivalence(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	h := testInstance(33)
	body := instanceText(t, h)

	syncColor := postColor(t, ts, "algo=sbl&seed=2", body, ContentTypeText)
	syncTv := postTransversal(t, ts, "algo=sbl&seed=2", body, ContentTypeText)

	// Batch: one item per kind, the color item anchoring the instance
	// and the transversal item reusing it by ref.
	results := byIndex(t, postBatch(t, ts.URL, []BatchItem{
		{ID: "c", Kind: "color", Algo: "sbl", Seed: 2, InstanceB64: instanceB64(t, h)},
		{ID: "t", Kind: "transversal", Algo: "sbl", Seed: 2, Ref: "c"},
	}), 2)
	if results[0].Error != "" || results[1].Error != "" {
		t.Fatalf("batch errors: %q / %q", results[0].Error, results[1].Error)
	}
	if results[0].Color == nil || results[1].Transversal == nil {
		t.Fatalf("batch results missing kind payloads: %+v / %+v", results[0], results[1])
	}
	if fmt.Sprint(results[0].Color.Colors) != fmt.Sprint(syncColor.Colors) {
		t.Fatal("batch coloring differs from synchronous /v1/color")
	}
	if fmt.Sprint(results[1].Transversal.Transversal) != fmt.Sprint(syncTv.Transversal) {
		t.Fatal("batch transversal differs from synchronous /v1/transversal")
	}

	// Async jobs: one submission per kind; the done payload must carry
	// the matching kind field and identical bits.
	for _, tc := range []struct {
		kind  string
		check func(js JobStatusResponse)
	}{
		{"color", func(js JobStatusResponse) {
			if js.Color == nil || js.Transversal != nil || js.Solve != nil {
				t.Fatalf("color job payloads: %+v", js)
			}
			if fmt.Sprint(js.Color.Colors) != fmt.Sprint(syncColor.Colors) {
				t.Fatal("async coloring differs from synchronous /v1/color")
			}
		}},
		{"transversal", func(js JobStatusResponse) {
			if js.Transversal == nil || js.Color != nil || js.Solve != nil {
				t.Fatalf("transversal job payloads: %+v", js)
			}
			if fmt.Sprint(js.Transversal.Transversal) != fmt.Sprint(syncTv.Transversal) {
				t.Fatal("async transversal differs from synchronous /v1/transversal")
			}
		}},
	} {
		code, js := jobRequest(t, http.MethodPost, ts.URL+"/v1/jobs?kind="+tc.kind+"&algo=sbl&seed=2", body)
		if code != http.StatusAccepted {
			t.Fatalf("%s job submit status %d", tc.kind, code)
		}
		if string(js.Kind) != tc.kind {
			t.Fatalf("submit echoed kind %q, want %q", js.Kind, tc.kind)
		}
		_, js = pollJob(t, ts.URL, js.JobID, 10*time.Second, func(c int, j JobStatusResponse) bool {
			return j.Status == JobDone || j.Status == JobFailed
		})
		if js.Status != JobDone {
			t.Fatalf("%s job ended %q: %s", tc.kind, js.Status, js.Error)
		}
		if string(js.Kind) != tc.kind {
			t.Fatalf("done status carries kind %q, want %q", js.Kind, tc.kind)
		}
		tc.check(js)
	}
}

// TestWorkloadCacheKindSegregation: the same (instance, options) under
// all three kinds produces three distinct cache entries — the first
// request of each kind computes, the second hits, and the per-kind
// completion counters move independently.
func TestWorkloadCacheKindSegregation(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	h := testInstance(34)
	opts := hypermis.Options{Algorithm: hypermis.AlgSBL, Seed: 1}
	ctx := context.Background()

	if _, cached, err := s.Solve(ctx, h, opts); err != nil || cached {
		t.Fatalf("first solve: cached=%v err=%v", cached, err)
	}
	if _, cached, err := s.Color(ctx, h, opts); err != nil || cached {
		t.Fatalf("first color: cached=%v err=%v", cached, err)
	}
	if _, cached, err := s.Transversal(ctx, h, opts); err != nil || cached {
		t.Fatalf("first transversal: cached=%v err=%v", cached, err)
	}
	if _, cached, err := s.Solve(ctx, h, opts); err != nil || !cached {
		t.Fatalf("repeat solve: cached=%v err=%v", cached, err)
	}
	if _, cached, err := s.Color(ctx, h, opts); err != nil || !cached {
		t.Fatalf("repeat color: cached=%v err=%v", cached, err)
	}
	if _, cached, err := s.Transversal(ctx, h, opts); err != nil || !cached {
		t.Fatalf("repeat transversal: cached=%v err=%v", cached, err)
	}

	st := s.Stats()
	if st.Solves != 1 || st.Colorings != 1 || st.Transversals != 1 {
		t.Fatalf("completions solve/color/transversal = %d/%d/%d, want 1/1/1",
			st.Solves, st.Colorings, st.Transversals)
	}
	if st.ColorErrors != 0 || st.TransversalErrors != 0 || st.Errors != 0 {
		t.Fatalf("error counters moved: %d/%d/%d", st.ColorErrors, st.TransversalErrors, st.Errors)
	}
	if st.ColorClasses == 0 {
		t.Fatal("color_classes_total did not count the coloring's classes")
	}
	if st.CacheHits != 3 {
		t.Fatalf("cache hits = %d, want 3 (one per kind)", st.CacheHits)
	}
}

// TestWorkloadDurableRestartServesBothKinds: colorings and transversals
// persisted by one server generation are durable-tier hits for the
// next, bit-identical and without recomputing (the per-kind completion
// counters stay zero, mirroring the solve-path crash-recovery smoke).
func TestWorkloadDurableRestartServesBothKinds(t *testing.T) {
	dir := t.TempDir()
	h := testInstance(35)
	opts := hypermis.Options{Algorithm: hypermis.AlgSBL, Seed: 6}
	ctx := context.Background()

	store := openDurable(t, dir, durable.Config{})
	s := New(Config{Workers: 2, Durable: store})
	col1, cached, err := s.Color(ctx, h, opts)
	if err != nil || cached {
		t.Fatalf("warm color: cached=%v err=%v", cached, err)
	}
	tv1, cached, err := s.Transversal(ctx, h, opts)
	if err != nil || cached {
		t.Fatalf("warm transversal: cached=%v err=%v", cached, err)
	}
	store.Flush()
	s.Close()
	store.Close()

	store2 := openDurable(t, dir, durable.Config{})
	s2 := New(Config{Workers: 2, Durable: store2, DurableVerify: true})
	defer s2.Close()
	col2, cached, err := s2.Color(ctx, h, opts)
	if err != nil || !cached {
		t.Fatalf("post-restart color: cached=%v err=%v", cached, err)
	}
	if fmt.Sprint(col2.Colors) != fmt.Sprint(col1.Colors) || col2.NumColors != col1.NumColors {
		t.Fatal("recovered coloring differs from the original")
	}
	tv2, cached, err := s2.Transversal(ctx, h, opts)
	if err != nil || !cached {
		t.Fatalf("post-restart transversal: cached=%v err=%v", cached, err)
	}
	if fmt.Sprint(tv2.Transversal) != fmt.Sprint(tv1.Transversal) {
		t.Fatal("recovered transversal differs from the original")
	}
	st := s2.Stats()
	if st.Colorings != 0 || st.Transversals != 0 || st.Solves != 0 {
		t.Fatalf("post-restart generation recomputed: solve/color/transversal = %d/%d/%d, want 0/0/0",
			st.Solves, st.Colorings, st.Transversals)
	}
	if st.DurableHits != 2 || st.DurableVerifyFailed != 0 {
		t.Fatalf("durable hits %d (want 2), verify failures %d (want 0)",
			st.DurableHits, st.DurableVerifyFailed)
	}
}

// TestWorkloadDurableKindConfusionMisses: a well-formed *solve* record
// planted under a *color* key (and vice versa) is a clean durable miss
// — the record-version check refuses to decode it as the wrong kind,
// the workload recomputes, and nothing is served cross-kind.
func TestWorkloadDurableKindConfusionMisses(t *testing.T) {
	dir := t.TempDir()
	h := testInstance(36)
	opts := hypermis.Options{Algorithm: hypermis.AlgGreedy}

	// Plant a solve result under the color key and a transversal result
	// under the solve key.
	solved, err := hypermis.Solve(h, opts)
	if err != nil {
		t.Fatal(err)
	}
	tvRes, err := hypermis.MinimalTransversalCtx(context.Background(), h, opts)
	if err != nil {
		t.Fatal(err)
	}
	forge := openDurable(t, dir, durable.Config{})
	forge.Put(WorkKey(WorkColor, h, opts), solved)
	forge.PutTransversal(WorkKey(WorkSolve, h, opts), tvRes)
	forge.Flush()
	forge.Close()

	store := openDurable(t, dir, durable.Config{})
	s := New(Config{Workers: 1, Durable: store, DurableVerify: true})
	defer s.Close()
	ctx := context.Background()

	col, cached, err := s.Color(ctx, h, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("solve record under a color key served as a coloring")
	}
	if err := hypermis.VerifyColoring(h, col.Coloring()); err != nil {
		t.Fatalf("recomputed coloring invalid: %v", err)
	}
	res, cached, err := s.Solve(ctx, h, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("transversal record under a solve key served as a MIS")
	}
	if err := hypermis.VerifyMIS(h, res.MIS); err != nil {
		t.Fatalf("recomputed MIS invalid: %v", err)
	}
	if st := s.Stats(); st.Solves != 1 || st.Colorings != 1 {
		t.Fatalf("solves/colorings = %d/%d, want 1/1 (both recomputed)", st.Solves, st.Colorings)
	}
}

// TestWorkloadEndpointErrorContract: the workload endpoints share the
// solve endpoint's client-error mapping — a dimension violation is 422
// with the kind named, a bad option is 400.
func TestWorkloadEndpointErrorContract(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	h := hypermis.RandomMixed(37, 50, 100, 2, 5)
	body := instanceText(t, h)

	for _, path := range []string{"/v1/color", "/v1/transversal"} {
		resp, err := http.Post(ts.URL+path+"?algo=luby", ContentTypeText, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("%s dim violation status %d: %s", path, resp.StatusCode, raw)
		}
		resp, err = http.Post(ts.URL+path+"?algo=nonesuch", ContentTypeText, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s bad algo status %d", path, resp.StatusCode)
		}
	}
}
