package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	hypermis "repro"
	"repro/internal/hgio"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(NewHandler(s))
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func instanceText(t *testing.T, h *hypermis.Hypergraph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := hgio.WriteText(&buf, h); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func postSolve(t *testing.T, ts *httptest.Server, query string, body []byte, contentType string) (*SolveResponse, *http.Response) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/solve?"+query, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("solve status %d: %s", resp.StatusCode, raw)
	}
	var sr SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	return &sr, resp
}

func TestHTTPSolveTextAndBinary(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	h := hypermis.RandomMixed(1, 200, 400, 2, 5)

	sr, _ := postSolve(t, ts, "algo=sbl&seed=3", instanceText(t, h), ContentTypeText)
	if sr.Algorithm != "sbl" || sr.N != 200 || sr.Cached {
		t.Fatalf("unexpected response %+v", sr)
	}
	mask := hypermis.MaskFromList(h.N(), intsToV(sr.MIS))
	if err := hypermis.VerifyMIS(h, mask); err != nil {
		t.Fatalf("served MIS invalid: %v", err)
	}

	// The same instance in binary form must hit the cache entry created
	// by the text request — the digest is format-independent.
	var bin bytes.Buffer
	if err := hgio.WriteBinary(&bin, h); err != nil {
		t.Fatal(err)
	}
	sr2, _ := postSolve(t, ts, "algo=sbl&seed=3", bin.Bytes(), ContentTypeBinary)
	if !sr2.Cached {
		t.Fatal("binary re-request missed the cache")
	}
	if sr2.Size != sr.Size {
		t.Fatalf("cached size %d != original %d", sr2.Size, sr.Size)
	}
}

func intsToV(xs []int) []hypermis.V {
	vs := make([]hypermis.V, len(xs))
	for i, x := range xs {
		vs[i] = hypermis.V(x)
	}
	return vs
}

func TestHTTPSolveTrace(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	h := hypermis.RandomMixed(6, 300, 600, 2, 8)
	body := instanceText(t, h)

	plain, _ := postSolve(t, ts, "algo=kuw&seed=3", body, ContentTypeText)
	if len(plain.Trace) != 0 {
		t.Fatalf("traceless solve returned %d trace records", len(plain.Trace))
	}
	traced, _ := postSolve(t, ts, "algo=kuw&seed=3&trace=1", body, ContentTypeText)
	if traced.Cached {
		t.Fatal("trace request served from the traceless cache entry")
	}
	if len(traced.Trace) != traced.Rounds || traced.Rounds == 0 {
		t.Fatalf("trace has %d records for %d rounds", len(traced.Trace), traced.Rounds)
	}
	for i, r := range traced.Trace {
		if r.Round != i || r.N <= 0 {
			t.Fatalf("trace[%d] = %+v", i, r)
		}
	}
	if traced.Size != plain.Size {
		t.Fatalf("trace changed the MIS: size %d vs %d", traced.Size, plain.Size)
	}
	// Same-options trace requests hit their own cache entry, trace intact.
	again, _ := postSolve(t, ts, "algo=kuw&seed=3&trace=1", body, ContentTypeText)
	if !again.Cached || len(again.Trace) != len(traced.Trace) {
		t.Fatalf("cached trace solve: cached=%v records=%d", again.Cached, len(again.Trace))
	}

	// Aggregate round counters surfaced in stats.
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.SolverRounds <= 0 || st.SolverRoundDecided <= 0 {
		t.Fatalf("stats rounds=%d decided=%d, want > 0", st.SolverRounds, st.SolverRoundDecided)
	}
}

func TestHTTPSolveDeterministic(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, CacheSize: -1})
	h := hypermis.RandomMixed(2, 150, 300, 2, 4)
	a, _ := postSolve(t, ts, "algo=permbl&seed=9", instanceText(t, h), ContentTypeText)
	b, _ := postSolve(t, ts, "algo=permbl&seed=9", instanceText(t, h), ContentTypeText)
	if a.Cached || b.Cached {
		t.Fatal("cache disabled yet a hit was reported")
	}
	if fmt.Sprint(a.MIS) != fmt.Sprint(b.MIS) {
		t.Fatal("equal (instance, seed) produced different MISs")
	}
}

func TestHTTPSolveErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	post := func(query, body, ct string) int {
		resp, err := http.Post(ts.URL+"/v1/solve?"+query, ct, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := post("algo=nope", "hypergraph 1 0\n", ContentTypeText); got != http.StatusBadRequest {
		t.Fatalf("bad algo: %d", got)
	}
	if got := post("", "garbage", ContentTypeText); got != http.StatusBadRequest {
		t.Fatalf("bad body: %d", got)
	}
	if got := post("seed=-1", "hypergraph 1 0\n", ContentTypeText); got != http.StatusBadRequest {
		t.Fatalf("bad seed: %d", got)
	}
	// Luby on a dim-3 instance is a client error, not a server fault.
	if got := post("algo=luby", "hypergraph 3 1\n0 1 2\n", ContentTypeText); got != http.StatusUnprocessableEntity {
		t.Fatalf("dimension violation: %d", got)
	}
	if got := post("", "hypergraph 1 0\n", "method"); got != http.StatusOK {
		t.Fatalf("unknown content type should default to text: %d", got)
	}
	// A few bytes declaring billions of vertices must be rejected at the
	// boundary, not allocated (memory-exhaustion guard) — on both the
	// solve and verify routes.
	huge := "hypergraph 9000000000 0\n"
	if got := post("", huge, ContentTypeText); got != http.StatusBadRequest {
		t.Fatalf("huge-n solve: %d, want 400", got)
	}
	vresp, err := http.Post(ts.URL+"/v1/verify", ContentTypeText, strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	vresp.Body.Close()
	if vresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("huge-n verify: %d, want 400", vresp.StatusCode)
	}
}

func TestHTTPJobTimeoutIs504(t *testing.T) {
	// The server-imposed per-job deadline is a retryable server
	// condition, not a malformed request: 504, not 422.
	_, ts := newTestServer(t, Config{Workers: 1, JobTimeout: time.Nanosecond, CacheSize: -1})
	h := hypermis.RandomMixed(8, 2000, 4000, 2, 8)
	resp, err := http.Post(ts.URL+"/v1/solve?algo=sbl", ContentTypeText, bytes.NewReader(instanceText(t, h)))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%s), want 504", resp.StatusCode, raw)
	}
}

func TestHTTPGenerateSolveVerifyRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	resp, err := http.Post(ts.URL+"/v1/generate?kind=mixed&n=120&m=240&min=2&max=5&seed=17", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("generate: %d %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ContentTypeText {
		t.Fatalf("generate content type %q", ct)
	}
	digest := resp.Header.Get("X-Instance-Digest")
	h, err := hgio.ReadText(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("generated instance unreadable: %v", err)
	}
	if hgio.Digest(h) != digest {
		t.Fatal("advertised digest does not match the payload")
	}
	// Generation is deterministic: same query, same digest.
	resp2, err := http.Post(ts.URL+"/v1/generate?kind=mixed&n=120&m=240&min=2&max=5&seed=17", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if d2 := resp2.Header.Get("X-Instance-Digest"); d2 != digest {
		t.Fatalf("generate not deterministic: %s vs %s", d2, digest)
	}

	sr, _ := postSolve(t, ts, "algo=auto&seed=1", body, ContentTypeText)

	ids := make([]string, len(sr.MIS))
	for i, v := range sr.MIS {
		ids[i] = strconv.Itoa(v)
	}
	vresp, err := http.Post(ts.URL+"/v1/verify?mis="+strings.Join(ids, ","), ContentTypeText, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var vr VerifyResponse
	if err := json.NewDecoder(vresp.Body).Decode(&vr); err != nil {
		t.Fatal(err)
	}
	vresp.Body.Close()
	if vresp.StatusCode != http.StatusOK || !vr.OK || vr.Size != sr.Size {
		t.Fatalf("verify: status %d, %+v", vresp.StatusCode, vr)
	}

	// The empty set is not maximal (every vertex could join): 422.
	vresp2, err := http.Post(ts.URL+"/v1/verify", ContentTypeText, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, vresp2.Body)
	vresp2.Body.Close()
	if vresp2.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("empty-set verify status %d, want 422", vresp2.StatusCode)
	}
}

func TestHTTPGenerateRejectsBadParams(t *testing.T) {
	// Parameter combinations the generators panic on must come back as
	// 400s, and oversized work demands are refused by the serving caps.
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []struct{ name, query string }{
		{"sunflower needs more vertices than n", "kind=sunflower"}, // defaults: 2+2000·3 > 1000
		{"mixed max over n", "kind=mixed&n=3&m=1"},                 // default max 6 > 3
		{"uniform d zero", "kind=uniform&d=0"},
		{"uniform d over n", "kind=uniform&n=5&m=1&d=10"},
		{"unknown kind", "kind=mixd"},
		{"absurd n", "n=999999999"},
		{"edge size over cap", "kind=uniform&n=100000&m=10&d=4000"},
		{"work cap", "kind=uniform&n=4000000&m=4000000&d=64"},
		{"linear m cap", "kind=linear&n=100000&m=50000&d=3"},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/generate?"+tc.query, "", nil)
		if err != nil {
			t.Fatalf("%s: transport error %v (handler panicked?)", tc.name, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
}

func TestHTTPGenerateBinaryFormat(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Post(ts.URL+"/v1/generate?kind=graph&n=50&m=100&seed=2&format=bin", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != ContentTypeBinary {
		t.Fatalf("content type %q", ct)
	}
	h, err := hgio.ReadBinary(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if h.N() != 50 || h.Dim() > 2 {
		t.Fatalf("n=%d dim=%d", h.N(), h.Dim())
	}
}

func TestHTTPStatsAndHealth(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	h := hypermis.RandomGraph(4, 80, 160)
	postSolve(t, ts, "seed=1", instanceText(t, h), ContentTypeText)
	postSolve(t, ts, "seed=1", instanceText(t, h), ContentTypeText) // cache hit

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Solves != 1 || st.CacheHits != 1 || st.Workers != 2 {
		t.Fatalf("stats %+v", st)
	}
	if st.LatencyP50Ms <= 0 || st.LatencyP99Ms < st.LatencyP50Ms {
		t.Fatalf("latency quantiles implausible: %+v", st)
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hbody, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK || strings.TrimSpace(string(hbody)) != "ok" {
		t.Fatalf("healthz: %d %q", hresp.StatusCode, hbody)
	}

	// Unknown routes 404; GET on a POST route 405.
	if r, _ := http.Get(ts.URL + "/v1/nope"); r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown route: %d", r.StatusCode)
	}
	if r, _ := http.Get(ts.URL + "/v1/solve"); r.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET solve: %d", r.StatusCode)
	}
}
