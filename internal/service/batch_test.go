package service

import (
	"bufio"
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	hypermis "repro"
	"repro/internal/hgio"
)

// postBatch sends items as an NDJSON batch and returns the decoded
// result lines in arrival order.
func postBatch(t *testing.T, url string, items []BatchItem) []BatchItemResult {
	t.Helper()
	var body bytes.Buffer
	enc := json.NewEncoder(&body)
	for _, it := range items {
		if err := enc.Encode(it); err != nil {
			t.Fatal(err)
		}
	}
	return postBatchRaw(t, url, body.Bytes())
}

func postBatchRaw(t *testing.T, url string, body []byte) []BatchItemResult {
	t.Helper()
	resp, err := http.Post(url+"/v1/batch", ContentTypeNDJSON, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("batch status %d: %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ContentTypeNDJSON {
		t.Fatalf("batch content type %q, want %q", ct, ContentTypeNDJSON)
	}
	var out []BatchItemResult
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var r BatchItemResult
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad result line %q: %v", sc.Text(), err)
		}
		out = append(out, r)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// byIndex reindexes results by item position, checking each index
// appears exactly once in [0, n).
func byIndex(t *testing.T, results []BatchItemResult, n int) []BatchItemResult {
	t.Helper()
	if len(results) != n {
		t.Fatalf("got %d results, want %d", len(results), n)
	}
	out := make([]BatchItemResult, n)
	seen := make([]bool, n)
	for _, r := range results {
		if r.Index < 0 || r.Index >= n || seen[r.Index] {
			t.Fatalf("bad or duplicate result index %d", r.Index)
		}
		seen[r.Index] = true
		out[r.Index] = r
	}
	return out
}

func instanceB64(t *testing.T, h *hypermis.Hypergraph) string {
	t.Helper()
	var buf bytes.Buffer
	if err := hgio.WriteBinary(&buf, h); err != nil {
		t.Fatal(err)
	}
	return base64.StdEncoding.EncodeToString(buf.Bytes())
}

// TestBatchMatchesSingleShot is the equivalence property test: every
// item of a mixed batch (text and binary payloads, several algorithms,
// seeds and trace settings) must return bit-identical results to the
// same request issued as a single POST /v1/solve.
func TestBatchMatchesSingleShot(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	type variant struct {
		algo  string
		seed  uint64
		alpha float64
		trace bool
	}
	variants := []variant{
		{"auto", 1, 0, false},
		{"sbl", 2, 0.3, true},
		{"greedy", 3, 0, false},
		{"kuw", 4, 0, false},
	}
	var items []BatchItem
	var singles []*SolveResponse
	for i := 0; i < 4; i++ {
		h := hypermis.RandomMixed(uint64(10+i), 120, 240, 2, 5)
		text := instanceText(t, h)
		for _, v := range variants {
			it := BatchItem{
				ID:    fmt.Sprintf("i%d-%s-%d", i, v.algo, v.seed),
				Algo:  v.algo,
				Seed:  v.seed,
				Alpha: v.alpha,
				Trace: v.trace,
			}
			// Alternate payload encodings across items.
			if (i+len(items))%2 == 0 {
				it.Instance = string(text)
			} else {
				it.InstanceB64 = instanceB64(t, h)
			}
			items = append(items, it)

			query := fmt.Sprintf("algo=%s&seed=%d&alpha=%g", v.algo, v.seed, v.alpha)
			if v.trace {
				query += "&trace=1"
			}
			sr, _ := postSolve(t, ts, query, text, ContentTypeText)
			singles = append(singles, sr)
		}
	}

	results := byIndex(t, postBatch(t, ts.URL, items), len(items))
	for i, r := range results {
		if r.Error != "" {
			t.Fatalf("item %d (%s): unexpected error %q", i, items[i].ID, r.Error)
		}
		if r.ID != items[i].ID {
			t.Errorf("item %d: id %q, want %q", i, r.ID, items[i].ID)
		}
		got, want := r.Solve, singles[i]
		if got == nil {
			t.Fatalf("item %d: missing solve payload", i)
		}
		if got.Algorithm != want.Algorithm || got.Size != want.Size || got.Rounds != want.Rounds {
			t.Errorf("item %d: (algo,size,rounds)=(%s,%d,%d), single-shot (%s,%d,%d)",
				i, got.Algorithm, got.Size, got.Rounds, want.Algorithm, want.Size, want.Rounds)
		}
		if fmt.Sprint(got.MIS) != fmt.Sprint(want.MIS) {
			t.Errorf("item %d: batch MIS differs from single-shot MIS", i)
		}
		if len(got.Trace) != len(want.Trace) {
			t.Errorf("item %d: trace length %d, single-shot %d", i, len(got.Trace), len(want.Trace))
		}
	}
}

func TestBatchEmpty(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	results := postBatchRaw(t, ts.URL, nil)
	if len(results) != 0 {
		t.Fatalf("empty batch returned %d results", len(results))
	}
	// Blank lines only is also an empty batch.
	results = postBatchRaw(t, ts.URL, []byte("\n\n  \n"))
	if len(results) != 0 {
		t.Fatalf("blank-line batch returned %d results", len(results))
	}
}

// TestBatchMalformedMidStream: a garbage line mid-batch fails that item
// alone; NDJSON line framing lets every other item parse and solve.
func TestBatchMalformedMidStream(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	h := hypermis.RandomMixed(1, 60, 120, 2, 4)
	good, err := json.Marshal(BatchItem{Instance: string(instanceText(t, h)), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	body := bytes.Join([][]byte{good, []byte(`{"seed": nope}`), good}, []byte("\n"))
	results := byIndex(t, postBatchRaw(t, ts.URL, body), 3)
	if results[0].Error != "" || results[0].Solve == nil {
		t.Errorf("item 0 should have solved: %+v", results[0])
	}
	if results[1].Error == "" || !strings.Contains(results[1].Error, "bad item JSON") {
		t.Errorf("item 1 should report a JSON error, got %+v", results[1])
	}
	if results[2].Error != "" || results[2].Solve == nil {
		t.Errorf("item 2 should have solved: %+v", results[2])
	}
	if fmt.Sprint(results[0].Solve.MIS) != fmt.Sprint(results[2].Solve.MIS) {
		t.Error("identical items 0 and 2 disagree")
	}
	if got := s.metrics.BatchItemErrors.Load(); got != 1 {
		t.Errorf("batch_item_errors = %d, want 1", got)
	}
	if got := s.metrics.BatchItems.Load(); got != 3 {
		t.Errorf("batch_items_total = %d, want 3", got)
	}
}

// TestBatchPerItemErrors: option errors, instance errors and solver
// errors (dimension violation) each fail their own item without
// aborting the rest of the batch.
func TestBatchPerItemErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	okGraph := hypermis.RandomGraph(1, 80, 160)   // dim 2: fine for luby
	dim3 := hypermis.RandomUniform(2, 80, 160, 3) // dim 3: luby must refuse
	items := []BatchItem{
		{ID: "ok", Instance: string(instanceText(t, okGraph)), Algo: "luby", Seed: 1},
		{ID: "bad-algo", Instance: string(instanceText(t, okGraph)), Algo: "bogus"},
		{ID: "no-instance"},
		{ID: "bad-text", Instance: "not a hypergraph"},
		{ID: "dim-violation", Instance: string(instanceText(t, dim3)), Algo: "luby"},
		{ID: "ok2", Instance: string(instanceText(t, okGraph)), Algo: "luby", Seed: 1},
	}
	results := byIndex(t, postBatch(t, ts.URL, items), len(items))
	for _, i := range []int{1, 2, 3, 4} {
		if results[i].Error == "" {
			t.Errorf("item %d (%s) should have failed", i, items[i].ID)
		}
		if results[i].Solve != nil {
			t.Errorf("item %d (%s) has both error and solve", i, items[i].ID)
		}
	}
	for _, i := range []int{0, 5} {
		if results[i].Error != "" || results[i].Solve == nil {
			t.Fatalf("item %d (%s) should have solved: %+v", i, items[i].ID, results[i])
		}
	}
	if fmt.Sprint(results[0].Solve.MIS) != fmt.Sprint(results[5].Solve.MIS) {
		t.Error("identical items 0 and 5 disagree")
	}
}

// TestBatchTruncation: items past Config.MaxBatchItems are refused with
// one truncation error record; items under the cap still solve.
func TestBatchTruncation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxBatchItems: 2})
	h := hypermis.RandomMixed(1, 40, 80, 2, 4)
	it := BatchItem{Instance: string(instanceText(t, h))}
	results := byIndex(t, postBatch(t, ts.URL, []BatchItem{it, it, it, it}), 3)
	for i := 0; i < 2; i++ {
		if results[i].Solve == nil || results[i].Error != "" {
			t.Errorf("item %d should have solved: %+v", i, results[i])
		}
	}
	if !strings.Contains(results[2].Error, "truncated") {
		t.Errorf("item 2 should be the truncation record, got %+v", results[2])
	}
}

// TestBatchRefs: a ref item reuses an earlier item's parsed instance
// and must solve identically to a full payload; forward/unknown refs
// and ref+payload combinations fail their own item only.
func TestBatchRefs(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	h := hypermis.RandomMixed(3, 100, 200, 2, 5)
	text := string(instanceText(t, h))
	items := []BatchItem{
		{ID: "base", Instance: text, Algo: "sbl", Seed: 7, Alpha: 0.3},
		{ID: "viaRef", Ref: "base", Algo: "sbl", Seed: 7, Alpha: 0.3},
		{ID: "otherSeed", Ref: "base", Algo: "sbl", Seed: 8, Alpha: 0.3},
		{ID: "fwd", Ref: "later"},
		{ID: "both", Ref: "base", Instance: text},
		{ID: "later", Instance: text},
		{ID: "chain", Ref: "viaRef", Algo: "sbl", Seed: 7, Alpha: 0.3},
	}
	results := byIndex(t, postBatch(t, ts.URL, items), len(items))
	if results[0].Error != "" || results[1].Error != "" {
		t.Fatalf("payload/ref items failed: %q / %q", results[0].Error, results[1].Error)
	}
	if fmt.Sprint(results[0].Solve.MIS) != fmt.Sprint(results[1].Solve.MIS) {
		t.Error("ref item solved differently from its payload twin")
	}
	// Ref chains: a ref item's own id anchors later refs.
	if results[6].Error != "" {
		t.Errorf("ref-to-a-ref failed: %q", results[6].Error)
	} else if fmt.Sprint(results[6].Solve.MIS) != fmt.Sprint(results[0].Solve.MIS) {
		t.Error("chained ref solved differently from the base item")
	}
	if fmt.Sprint(results[0].Solve.MIS) == fmt.Sprint(results[2].Solve.MIS) {
		t.Error("distinct seeds over one ref'd instance returned equal MISs (suspicious)")
	}
	if !strings.Contains(results[3].Error, "earlier item") {
		t.Errorf("forward ref should fail, got %+v", results[3])
	}
	if !strings.Contains(results[4].Error, "excludes") {
		t.Errorf("ref+instance should fail, got %+v", results[4])
	}
	if results[5].Error != "" {
		t.Errorf("trailing payload item failed: %q", results[5].Error)
	}
}

// TestBatchItemRoundTripsCLIPath covers the shared client path: the
// same BatchItem methods the hypermis CLI uses locally must agree with
// the server.
func TestBatchItemRoundTripsCLIPath(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	h := hypermis.RandomMixed(9, 100, 200, 2, 5)
	it := BatchItem{Instance: string(instanceText(t, h)), Algo: "sbl", Seed: 11, Alpha: 0.3}

	opts, err := it.Options()
	if err != nil {
		t.Fatal(err)
	}
	local, err := it.Hypergraph()
	if err != nil {
		t.Fatal(err)
	}
	res, err := hypermis.Solve(local, opts)
	if err != nil {
		t.Fatal(err)
	}
	results := byIndex(t, postBatch(t, ts.URL, []BatchItem{it}), 1)
	if results[0].Error != "" {
		t.Fatal(results[0].Error)
	}
	localMIS := make([]int, 0, res.Size)
	for v, in := range res.MIS {
		if in {
			localMIS = append(localMIS, v)
		}
	}
	if fmt.Sprint(localMIS) != fmt.Sprint(results[0].Solve.MIS) {
		t.Error("local BatchItem solve disagrees with server batch solve")
	}
}
