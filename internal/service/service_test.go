package service

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	hypermis "repro"
)

func testInstance(seed uint64) *hypermis.Hypergraph {
	return hypermis.RandomMixed(seed, 300, 600, 2, 5)
}

func TestSolveCachesRepeats(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	h := testInstance(1)
	opts := hypermis.Options{Algorithm: hypermis.AlgSBL, Seed: 7}

	res1, cached, err := s.Solve(context.Background(), h, opts)
	if err != nil || cached {
		t.Fatalf("first solve: cached=%v err=%v", cached, err)
	}
	if err := hypermis.VerifyMIS(h, res1.MIS); err != nil {
		t.Fatalf("invalid MIS: %v", err)
	}
	res2, cached, err := s.Solve(context.Background(), h, opts)
	if err != nil || !cached {
		t.Fatalf("second solve: cached=%v err=%v", cached, err)
	}
	if res2 != res1 {
		t.Fatal("cache hit returned a different result object")
	}
	st := s.Stats()
	if st.CacheHits != 1 || st.CacheMisses != 1 || st.Solves != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 solve", st)
	}
}

func TestJobKeyCanonicalization(t *testing.T) {
	g := hypermis.RandomGraph(3, 100, 200) // dim 2: auto resolves to luby
	auto := JobKey(g, hypermis.Options{Algorithm: hypermis.AlgAuto, Seed: 5})
	luby := JobKey(g, hypermis.Options{Algorithm: hypermis.AlgLuby, Seed: 5})
	if auto != luby {
		t.Fatalf("auto and explicit luby key apart:\n%s\n%s", auto, luby)
	}
	if k := JobKey(g, hypermis.Options{Algorithm: hypermis.AlgLuby, Seed: 6}); k == luby {
		t.Fatal("seed not part of the key")
	}
	if k := JobKey(g, hypermis.Options{Algorithm: hypermis.AlgGreedy, Seed: 5}); k == luby {
		t.Fatal("algorithm not part of the key")
	}
	// Alpha and the tail choice only matter for SBL.
	h := testInstance(2)
	def := JobKey(h, hypermis.Options{Algorithm: hypermis.AlgSBL})
	expl := JobKey(h, hypermis.Options{Algorithm: hypermis.AlgSBL, Alpha: 0.25})
	if def != expl {
		t.Fatal("alpha 0 and explicit default alpha key apart")
	}
	if k := JobKey(h, hypermis.Options{Algorithm: hypermis.AlgSBL, Alpha: 0.3}); k == def {
		t.Fatal("alpha not part of the SBL key")
	}
	if k := JobKey(h, hypermis.Options{Algorithm: hypermis.AlgKUW}); k != JobKey(h, hypermis.Options{Algorithm: hypermis.AlgKUW, Alpha: 0.3, UseGreedyTail: true}) {
		t.Fatal("irrelevant SBL fields leak into a non-SBL key")
	}
}

func TestSolveDeterministicAcrossCacheSizes(t *testing.T) {
	// With the cache disabled every solve recomputes; results must still
	// be bit-identical for equal (instance, options).
	s := New(Config{Workers: 4, CacheSize: -1})
	defer s.Close()
	h := testInstance(3)
	opts := hypermis.Options{Algorithm: hypermis.AlgSBL, Seed: 11}
	var first []bool
	for i := 0; i < 3; i++ {
		res, cached, err := s.Solve(context.Background(), h, opts)
		if err != nil || cached {
			t.Fatalf("solve %d: cached=%v err=%v", i, cached, err)
		}
		if first == nil {
			first = res.MIS
			continue
		}
		for v := range first {
			if res.MIS[v] != first[v] {
				t.Fatalf("solve %d differs at vertex %d", i, v)
			}
		}
	}
}

func TestQueueFull(t *testing.T) {
	// One worker, queue of one. Occupy the worker, then the queue slot,
	// each step confirmed via Stats before moving on — the third submit
	// must shed with ErrQueueFull deterministically.
	s := New(Config{Workers: 1, QueueDepth: 1, CacheSize: -1, JobTimeout: -1})
	defer s.Close()
	// Big enough that the occupying solves cannot finish before the
	// flood submit; they are cancelled, not run to completion.
	big := hypermis.RandomMixed(9, 30000, 60000, 2, 8)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	waitFor := func(what string, cond func(Stats) bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for !cond(s.Stats()) {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s (stats %+v)", what, s.Stats())
			}
			time.Sleep(time.Millisecond)
		}
	}
	done := make(chan error, 2)
	submit := func(seed uint64) {
		go func() {
			_, _, err := s.Solve(ctx, big, hypermis.Options{Algorithm: hypermis.AlgPermBL, Seed: seed})
			done <- err
		}()
	}
	submit(0)
	waitFor("worker pickup", func(st Stats) bool { return st.Enqueued == 1 && st.QueueDepth == 0 })
	submit(1)
	waitFor("queued job", func(st Stats) bool { return st.QueueDepth == 1 })

	_, _, err := s.Solve(context.Background(), big, hypermis.Options{Algorithm: hypermis.AlgPermBL, Seed: 2})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("flood submit err = %v, want ErrQueueFull", err)
	}
	if s.Stats().Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", s.Stats().Rejected)
	}

	// Release the occupying jobs: the running one stops at its next
	// round check, the queued one is abandoned by its submitter.
	cancel()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("occupying job err = %v", err)
		}
	}
}

func TestJobDeadline(t *testing.T) {
	// A microscopic per-job deadline must cancel the solve via SolveCtx
	// and surface context.DeadlineExceeded to the submitter.
	s := New(Config{Workers: 1, CacheSize: -1, JobTimeout: time.Nanosecond})
	defer s.Close()
	h := testInstance(4)
	_, _, err := s.Solve(context.Background(), h, hypermis.Options{Algorithm: hypermis.AlgSBL})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if s.Stats().Errors == 0 {
		t.Fatal("error counter not incremented")
	}
}

func TestSubmitterCancellation(t *testing.T) {
	s := New(Config{Workers: 1, CacheSize: -1})
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := s.Solve(ctx, testInstance(5), hypermis.Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestCloseRejectsNewWork(t *testing.T) {
	s := New(Config{Workers: 1})
	s.Close()
	_, _, err := s.Solve(context.Background(), testInstance(6), hypermis.Options{})
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	s.Close() // idempotent
}

func TestConcurrentMixedLoad(t *testing.T) {
	s := New(Config{Workers: 4, QueueDepth: 64, CacheSize: 32})
	defer s.Close()
	var wg sync.WaitGroup
	failures := make(chan error, 256)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				h := testInstance(uint64(i % 5))
				res, _, err := s.Solve(context.Background(), h, hypermis.Options{Seed: uint64(i % 3)})
				if err != nil {
					if errors.Is(err, ErrQueueFull) {
						continue // shedding is valid behaviour under load
					}
					failures <- err
					return
				}
				if err := hypermis.VerifyMIS(h, res.MIS); err != nil {
					failures <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(failures)
	for err := range failures {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.CacheHits == 0 {
		t.Fatalf("no cache hits across 160 solves of 15 distinct keys: %+v", st)
	}
}

func TestLRUCacheEviction(t *testing.T) {
	c := newLRUCache(2, 0)
	r := &hypermis.Result{}
	c.Put("a", r)
	c.Put("b", r)
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted early")
	}
	c.Put("c", r) // evicts b (a was refreshed)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b not evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a lost")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c lost")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestLRUCacheByteBudget(t *testing.T) {
	heavy := &hypermis.Result{MIS: make([]bool, 1000)}
	c := newLRUCache(100, 2500) // entry cost = 1000 + 64 overhead
	c.Put("a", heavy)
	c.Put("b", heavy)
	c.Put("c", heavy) // over budget: evicts a
	if _, ok := c.Get("a"); ok {
		t.Fatal("byte budget not enforced")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("newest entry evicted")
	}
	if c.Len() != 2 || c.Bytes() > 2500 {
		t.Fatalf("len=%d bytes=%d", c.Len(), c.Bytes())
	}
	// A single over-budget entry is still kept (never evict below 1).
	c2 := newLRUCache(100, 10)
	c2.Put("big", heavy)
	if _, ok := c2.Get("big"); !ok || c2.Len() != 1 {
		t.Fatal("sole entry should survive even over budget")
	}
}

// TestEntryCostChargesTrace: a traced result must weigh its Trace slice
// against the byte budget, not just its mask — a long-round traced
// solve can carry far more trace than mask.
func TestEntryCostChargesTrace(t *testing.T) {
	bare := &hypermis.Result{MIS: make([]bool, 100)}
	traced := &hypermis.Result{MIS: make([]bool, 100), Trace: make([]hypermis.RoundTrace, 50)}
	if entryCost(traced) <= entryCost(bare) {
		t.Fatalf("traced cost %d not above bare cost %d", entryCost(traced), entryCost(bare))
	}
	if got, min := entryCost(traced)-entryCost(bare), int64(50*40); got < min {
		t.Fatalf("50 trace records charged only %d bytes, want ≥ %d", got, min)
	}
	// The budget must see that weight: two traced entries whose masks
	// alone would fit cannot both stay under a mask-sized budget.
	c := newLRUCache(100, 2*entryCost(bare))
	c.Put("a", traced)
	c.Put("b", traced)
	if c.Len() != 1 {
		t.Fatalf("len = %d: trace weight not charged against the byte budget", c.Len())
	}
	// Refreshing an entry from bare to traced re-charges it.
	c2 := newLRUCache(100, 0)
	c2.Put("a", bare)
	before := c2.Bytes()
	c2.Put("a", traced)
	if c2.Bytes() <= before {
		t.Fatalf("bytes %d → %d after swapping in a traced result, want an increase", before, c2.Bytes())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile not 0")
	}
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond) // all in the [512µs, 1024µs) … bucket of 1000µs
	}
	h.Observe(100 * time.Millisecond)
	if got := h.Count(); got != 101 {
		t.Fatalf("count = %d", got)
	}
	if h.Max() != 100*time.Millisecond {
		t.Fatalf("max = %v", h.Max())
	}
	p50 := h.Quantile(0.5)
	if p50 < 512*time.Microsecond || p50 > 2*time.Millisecond {
		t.Fatalf("p50 = %v, want ≈1ms", p50)
	}
	p999 := h.Quantile(0.999)
	if p999 < 50*time.Millisecond {
		t.Fatalf("p999 = %v, want to land in the outlier bucket", p999)
	}
	if q := h.Quantile(1.0); q < p999 {
		t.Fatalf("quantiles not monotone: q1=%v < q0.999=%v", q, p999)
	}
}

// TestParallelismGrantIdle: an idle server grants a wide job as many
// tokens as the pool holds, capped by MaxJobParallelism, and returns
// them all afterwards.
func TestParallelismGrantIdle(t *testing.T) {
	s := New(Config{Workers: 2, MaxJobParallelism: 4})
	defer s.Close()
	st := s.Stats()
	if st.ParCap < 2 {
		t.Fatalf("par_cap=%d want >=2 (Workers=2)", st.ParCap)
	}
	h := testInstance(31)
	opts := hypermis.Options{Algorithm: hypermis.AlgKUW, Seed: 3, Parallelism: 4}
	if _, _, err := s.Solve(context.Background(), h, opts); err != nil {
		t.Fatalf("solve: %v", err)
	}
	st = s.Stats()
	// The pool was idle, so the single job got min(pool, request, cap)
	// tokens: with Workers=2 that is at least 2 — a wide grant.
	wantGrant := int64(st.ParCap)
	if wantGrant > 4 {
		wantGrant = 4
	}
	if st.ParGranted != wantGrant {
		t.Fatalf("par_granted_total=%d want %d (pool=%d)", st.ParGranted, wantGrant, st.ParCap)
	}
	if st.WideJobs != 1 {
		t.Fatalf("jobs_wide=%d want 1", st.WideJobs)
	}
	if st.ParInUse != 0 {
		t.Fatalf("par_in_use=%d after drain, want 0", st.ParInUse)
	}
}

// TestParallelismAggregateCap: concurrent wide jobs can never hold more
// tokens than the pool, and every token comes back.
func TestParallelismAggregateCap(t *testing.T) {
	s := New(Config{Workers: 3, MaxJobParallelism: 8})
	defer s.Close()
	cap := s.Stats().ParCap
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h := testInstance(uint64(40 + i)) // distinct instances: no cache hits
			_, _, err := s.Solve(context.Background(), h,
				hypermis.Options{Algorithm: hypermis.AlgKUW, Seed: uint64(i), Parallelism: 8})
			if err != nil && !errors.Is(err, ErrQueueFull) {
				t.Errorf("solve %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	st := s.Stats()
	if st.ParInUse != 0 {
		t.Fatalf("par_in_use=%d after drain, want 0 (leaked tokens)", st.ParInUse)
	}
	if st.Solves > 0 && st.ParGranted > int64(st.Solves)*int64(cap) {
		t.Fatalf("granted %d tokens across %d solves with pool %d: aggregate cap violated",
			st.ParGranted, st.Solves, cap)
	}
	if st.MaxJobParallelism != 8 {
		t.Fatalf("max_job_parallelism=%d want 8", st.MaxJobParallelism)
	}
}

// TestCacheIgnoresParallelism: par is a scheduling knob, not an input —
// a wide request must be satisfied by a cached narrow result.
func TestCacheIgnoresParallelism(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	h := testInstance(9)
	narrow := hypermis.Options{Algorithm: hypermis.AlgKUW, Seed: 5, Parallelism: 1}
	wide := hypermis.Options{Algorithm: hypermis.AlgKUW, Seed: 5, Parallelism: 8}
	if JobKey(h, narrow) != JobKey(h, wide) {
		t.Fatal("JobKey depends on Parallelism")
	}
	res1, cached, err := s.Solve(context.Background(), h, narrow)
	if err != nil || cached {
		t.Fatalf("narrow solve: cached=%v err=%v", cached, err)
	}
	res2, cached, err := s.Solve(context.Background(), h, wide)
	if err != nil || !cached {
		t.Fatalf("wide solve: cached=%v err=%v (want cache hit)", cached, err)
	}
	for i := range res1.MIS {
		if res1.MIS[i] != res2.MIS[i] {
			t.Fatalf("cached result differs at vertex %d", i)
		}
	}
}
