package service_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"

	hypermis "repro"
	"repro/internal/hgio"
	"repro/internal/service"
)

// Example_batchClient is the batch client path end to end: frame
// solve items as NDJSON (sending the instance once and ref-ing it for
// further seeds), POST them to /v1/batch, and decode the streamed
// per-item results. The same BatchItem/BatchItemResult types drive
// `hypermis batch` and cmd/hypermisload.
func Example_batchClient() {
	srv := service.New(service.Config{Workers: 2})
	defer srv.Close()
	ts := httptest.NewServer(service.NewHandler(srv))
	defer ts.Close()

	// One instance, three seeds: item "s0" carries the bytes, the rest
	// reuse its parsed instance via ref.
	h := hypermis.RandomMixed(42, 60, 120, 2, 4)
	var text bytes.Buffer
	if err := hgio.WriteText(&text, h); err != nil {
		panic(err)
	}
	var body bytes.Buffer
	enc := json.NewEncoder(&body)
	for seed := uint64(0); seed < 3; seed++ {
		it := service.BatchItem{ID: fmt.Sprintf("s%d", seed), Algo: "sbl", Seed: seed, Alpha: 0.3}
		if seed == 0 {
			it.Instance = text.String()
		} else {
			it.Ref = "s0"
		}
		if err := enc.Encode(it); err != nil {
			panic(err)
		}
	}

	resp, err := http.Post(ts.URL+"/v1/batch", service.ContentTypeNDJSON, &body)
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()

	// Results stream back in completion order; reorder by index.
	var results []service.BatchItemResult
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var r service.BatchItemResult
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			panic(err)
		}
		results = append(results, r)
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Index < results[j].Index })
	for _, r := range results {
		fmt.Printf("%s: algorithm=%s size=%d\n", r.ID, r.Solve.Algorithm, r.Solve.Size)
	}
	// Output:
	// s0: algorithm=sbl size=30
	// s1: algorithm=sbl size=31
	// s2: algorithm=sbl size=32
}
