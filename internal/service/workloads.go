package service

import (
	"context"
	"errors"
	"net/http"
	"time"

	hypermis "repro"
	"repro/internal/admit"
	"repro/internal/faultinject"
	"repro/internal/obs"
)

// ColorClassInfo is one color class in a ColorResponse: the class's
// size plus the telemetry of the MIS solve that carved it out of the
// residual hypergraph (n and m are the residual's shape when the class
// was solved). Trace is present only on ?trace=1 requests.
type ColorClassInfo struct {
	Size   int                   `json:"size"`
	N      int                   `json:"n"`
	M      int                   `json:"m"`
	Rounds int                   `json:"rounds"`
	Trace  []hypermis.RoundTrace `json:"trace,omitempty"`
}

// ColorResponse is the JSON body of POST /v1/color. Colors assigns
// every vertex its class index in [0, NumColors); Classes carries the
// per-class peeling telemetry in class order.
type ColorResponse struct {
	Algorithm  string           `json:"algorithm"`
	N          int              `json:"n"`
	M          int              `json:"m"`
	NumColors  int              `json:"num_colors"`
	ClassSizes []int            `json:"class_sizes"`
	Rounds     int              `json:"rounds"`
	Cached     bool             `json:"cached"`
	ElapsedMs  float64          `json:"elapsed_ms"`
	Classes    []ColorClassInfo `json:"classes"`
	Colors     []int            `json:"colors"`
}

// TransversalResponse is the JSON body of POST /v1/transversal.
// Transversal lists the member vertices in ascending order; MISSize is
// the size of the complementary maximal independent set, so
// Size + MISSize == N always.
type TransversalResponse struct {
	Algorithm   string                `json:"algorithm"`
	N           int                   `json:"n"`
	M           int                   `json:"m"`
	Size        int                   `json:"size"`
	MISSize     int                   `json:"mis_size"`
	Rounds      int                   `json:"rounds"`
	Cached      bool                  `json:"cached"`
	ElapsedMs   float64               `json:"elapsed_ms"`
	Depth       int64                 `json:"depth,omitempty"`
	Work        int64                 `json:"work,omitempty"`
	Trace       []hypermis.RoundTrace `json:"trace,omitempty"`
	Transversal []int                 `json:"transversal"`
}

// ColorResponseFor builds the wire response for one completed coloring
// — shared by the color, batch and async-job paths (and the CLI's
// local mode) so they all report identical shapes.
func ColorResponseFor(h *hypermis.Hypergraph, res *hypermis.ColorResult, cached bool, elapsed time.Duration) *ColorResponse {
	classes := make([]ColorClassInfo, len(res.Classes))
	for i, c := range res.Classes {
		classes[i] = ColorClassInfo{Size: c.Size, N: c.N, M: c.M, Rounds: c.Rounds, Trace: c.Trace}
	}
	return &ColorResponse{
		Algorithm:  res.Algorithm.String(),
		N:          h.N(),
		M:          h.M(),
		NumColors:  res.NumColors,
		ClassSizes: append([]int(nil), res.ClassSizes...),
		Rounds:     res.Rounds,
		Cached:     cached,
		ElapsedMs:  float64(elapsed) / float64(time.Millisecond),
		Classes:    classes,
		Colors:     res.Colors,
	}
}

// TransversalResponseFor builds the wire response for one completed
// minimal-transversal computation — shared across the synchronous,
// batch and async-job paths like SolveResponseFor.
func TransversalResponseFor(h *hypermis.Hypergraph, res *hypermis.TransversalResult, cached bool, elapsed time.Duration) *TransversalResponse {
	members := make([]int, 0, res.Size)
	for v, in := range res.Transversal {
		if in {
			members = append(members, v)
		}
	}
	return &TransversalResponse{
		Algorithm:   res.Algorithm.String(),
		N:           h.N(),
		M:           h.M(),
		Size:        res.Size,
		MISSize:     res.MISSize,
		Rounds:      res.Rounds,
		Cached:      cached,
		ElapsedMs:   float64(elapsed) / float64(time.Millisecond),
		Depth:       res.Depth,
		Work:        res.Work,
		Trace:       res.Trace,
		Transversal: members,
	}
}

// writeWorkError maps a failed workload to its HTTP status and body —
// the one overload/fault contract shared by the solve, color and
// transversal endpoints (see handleSolve's original inline switch for
// the rationale on each arm). err must be non-nil.
func (s *Server) writeWorkError(w http.ResponseWriter, r *http.Request, kind WorkKind, prio admit.Priority, err error) {
	var admission *AdmissionError
	switch {
	case errors.As(err, &admission):
		// Deadline-aware shed: the queue-wait estimate says the client's
		// deadline cannot be met, so the Retry-After is that estimate —
		// the soonest moment a retry could plausibly succeed.
		w.Header().Set("Retry-After", retryAfterSeconds(admission.EstWait))
		httpError(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", retryAfterSeconds(s.estimatedRetryAfter(prio)))
		httpError(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, ErrDraining):
		// The process is going away; point retries at a restarted
		// instance, not this one.
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, ErrClosed):
		httpError(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, faultinject.ErrInjected):
		// A chaos-injected solver failure is a server fault by
		// construction; clients must see the 5xx a real one would cause.
		httpError(w, http.StatusInternalServerError, "%s: %v", kind, err)
	case errors.Is(err, context.DeadlineExceeded) && r.Context().Err() == nil:
		// The client's own context is still live, so the expiry was a
		// server-side deadline (the per-job one, or the request's
		// deadline_ms budget): a retryable condition, not a malformed
		// request.
		httpError(w, http.StatusGatewayTimeout, "%s: %v (deadline)", kind, err)
	default:
		// Dimension violations and client-driven cancellation are the
		// client's fault or choice; unprocessable rather than 500.
		httpError(w, http.StatusUnprocessableEntity, "%s: %v", kind, err)
	}
}

// handleWork is the one synchronous workload handler behind POST
// /v1/solve, /v1/color and /v1/transversal: same option parsing, same
// admission and rate-limit policy, same error contract — only the
// computation dispatched and the response shape differ by kind.
func (s *Server) handleWork(w http.ResponseWriter, r *http.Request, kind WorkKind) {
	if !s.allowClient(w, r) {
		return
	}
	tr := obs.From(r.Context())
	opts, err := parseSolveOptions(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	prio, err := requestPriority(r, admit.Interactive)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancelDeadline, err := requestDeadline(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	defer cancelDeadline()
	sp := tr.StartSpan("decode")
	h, err := readInstanceBody(r)
	sp.End()
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading instance: %v", err)
		return
	}
	start := time.Now()
	res, cached, err := s.workKeyed(ctx, kind, h, opts, WorkKey(kind, h, opts), prio, true)
	if err != nil {
		s.writeWorkError(w, r, kind, prio, err)
		return
	}
	elapsed := time.Since(start)
	sp = tr.StartSpan("encode")
	defer sp.End()
	switch kind {
	case WorkColor:
		cr := res.(*hypermis.ColorResult)
		tr.SetDetail("algo=%s n=%d m=%d colors=%d cached=%t", cr.Algorithm, h.N(), h.M(), cr.NumColors, cached)
		writeJSON(w, http.StatusOK, *ColorResponseFor(h, cr, cached, elapsed))
	case WorkTransversal:
		tv := res.(*hypermis.TransversalResult)
		tr.SetDetail("algo=%s n=%d m=%d size=%d cached=%t", tv.Algorithm, h.N(), h.M(), tv.Size, cached)
		writeJSON(w, http.StatusOK, *TransversalResponseFor(h, tv, cached, elapsed))
	default:
		sr := res.(*hypermis.Result)
		tr.SetDetail("algo=%s n=%d m=%d size=%d cached=%t", sr.Algorithm, h.N(), h.M(), sr.Size, cached)
		writeJSON(w, http.StatusOK, *SolveResponseFor(h, sr, cached, elapsed))
	}
}

func (s *Server) handleColor(w http.ResponseWriter, r *http.Request) {
	s.handleWork(w, r, WorkColor)
}

func (s *Server) handleTransversal(w http.ResponseWriter, r *http.Request) {
	s.handleWork(w, r, WorkTransversal)
}
