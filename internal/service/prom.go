package service

import (
	"net/http"
	"sort"
	"time"

	"repro/internal/admit"
	"repro/internal/obs"
)

// handleMetrics serves GET /metrics: the full counter, gauge and
// histogram state of the scheduler in Prometheus text exposition
// format, generated straight from the Metrics struct with no
// client-library dependency. The log₂ Histogram buckets map onto
// cumulative `le` buckets exactly (each bucket's upper bound is
// 2^{b+1}µs), so Prometheus quantile estimation sees the same geometry
// the in-process Quantile uses.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", obs.ContentTypeProm)
	pw := obs.NewPromWriter(w)
	s.writeProm(pw)
	_ = pw.Flush()
}

// promHistogram exports h as a conventional cumulative histogram in
// seconds. Buckets past the last observation are trimmed — the +Inf
// bucket covers them — so idle histograms don't emit 41 empty lines.
func promHistogram(pw *obs.PromWriter, name, help string, h *Histogram) {
	counts := h.Buckets()
	last := -1
	for b, c := range counts {
		if c > 0 {
			last = b
		}
	}
	var bounds []float64
	var cumulative []int64
	var running int64
	for b := 0; b <= last; b++ {
		running += counts[b]
		bounds = append(bounds, BucketUpperBound(b).Seconds())
		cumulative = append(cumulative, running)
	}
	pw.Histogram(name, help, bounds, cumulative, h.Sum().Seconds(), running)
}

// writeProm emits every metric family. Families are grouped (all
// samples of one family are contiguous) and label sets are emitted in
// sorted order, so the exposition is deterministic and passes
// obs.LintExposition — the CI smoke step scrapes a live daemon through
// the same linter.
func (s *Server) writeProm(pw *obs.PromWriter) {
	m := &s.metrics

	// Scheduler counters.
	pw.Counter("hypermisd_enqueued_total", "Jobs accepted into the solve queue.", float64(m.Enqueued.Load()))
	pw.Counter("hypermisd_solves_total", "Solves completed without error (cache misses only).", float64(m.Solves.Load()))
	pw.Counter("hypermisd_solve_errors_total", "Solves that returned an error, timeouts and cancels included.", float64(m.Errors.Load()))
	pw.Counter("hypermisd_rejected_total", "Jobs shed with 503 because the queue was full.", float64(m.Rejected.Load()))
	pw.Counter("hypermisd_admission_rejected_total", "Jobs shed with 503 because the queue-wait estimate exceeded the caller's deadline.", float64(m.AdmissionRejected.Load()))
	pw.Counter("hypermisd_ratelimited_total", "Requests answered 429 by the per-client rate limiter.", float64(m.RateLimited.Load()))
	pw.Counter("hypermisd_batch_backoff_total", "Backoff sleeps taken by queue-full batch/async items.", float64(m.BatchBackoff.Load()))
	pw.Counter("hypermisd_drained_jobs_total", "Queued jobs failed with the drain error during graceful shutdown.", float64(m.DrainedJobs.Load()))
	pw.Counter("hypermisd_cache_hits_total", "Result-cache hits.", float64(m.CacheHits.Load()))
	pw.Counter("hypermisd_cache_misses_total", "Result-cache misses.", float64(m.CacheMisses.Load()))
	pw.Counter("hypermisd_verifies_total", "Inline verify requests.", float64(m.Verifies.Load()))
	pw.Counter("hypermisd_generates_total", "Inline generate requests.", float64(m.Generates.Load()))
	pw.Counter("hypermisd_wide_jobs_total", "Jobs granted parallelism degree > 1.", float64(m.WideJobs.Load()))
	pw.Counter("hypermisd_par_granted_total", "Sum of granted parallelism degrees across jobs.", float64(m.ParGranted.Load()))

	// Coloring and transversal workloads (solve counters above stay
	// solve-only; these are the sibling families for the other kinds).
	pw.Counter("hypermisd_colorings_total", "Colorings completed without error (cache misses only).", float64(m.Colorings.Load()))
	pw.Counter("hypermisd_color_classes_total", "Color classes produced across completed colorings.", float64(m.ColorClasses.Load()))
	pw.Counter("hypermisd_color_errors_total", "Colorings that returned an error, timeouts and cancels included.", float64(m.ColorErrors.Load()))
	pw.Counter("hypermisd_transversals_total", "Minimal transversals completed without error (cache misses only).", float64(m.Transversals.Load()))
	pw.Counter("hypermisd_transversal_errors_total", "Transversal computations that returned an error.", float64(m.TransversalErrors.Load()))

	// Aggregate solver-round telemetry.
	pw.Counter("hypermisd_solver_rounds_total", "Outer solver rounds executed across all jobs.", float64(m.SolverRounds.Load()))
	pw.Counter("hypermisd_solver_round_decided_total", "Vertices decided inside solver rounds.", float64(m.SolverRoundDecided.Load()))
	pw.Counter("hypermisd_solver_round_seconds_total", "Summed in-round wall time in seconds.", time.Duration(m.SolverRoundNs.Load()).Seconds())

	// Per-algorithm labeled counters, solver names sorted for a
	// deterministic exposition.
	names := make([]string, 0, len(m.perAlg))
	for name := range m.perAlg {
		names = append(names, name)
	}
	sort.Strings(names)
	pw.Header("hypermisd_algo_solves_total", "Solves completed without error, by resolved algorithm.", "counter")
	for _, name := range names {
		pw.Sample("hypermisd_algo_solves_total", []obs.Label{{Name: "algo", Value: name}}, float64(m.perAlg[name].Solves.Load()))
	}
	pw.Header("hypermisd_algo_errors_total", "Solve errors, by resolved algorithm.", "counter")
	for _, name := range names {
		pw.Sample("hypermisd_algo_errors_total", []obs.Label{{Name: "algo", Value: name}}, float64(m.perAlg[name].Errors.Load()))
	}
	pw.Header("hypermisd_algo_rounds_total", "Outer solver rounds executed, by resolved algorithm.", "counter")
	for _, name := range names {
		pw.Sample("hypermisd_algo_rounds_total", []obs.Label{{Name: "algo", Value: name}}, float64(m.perAlg[name].Rounds.Load()))
	}

	// Per-priority labeled counters and queue depths, classes in
	// priority order (the order is fixed, so the exposition stays
	// deterministic).
	classes := admit.Names()
	pw.Header("hypermisd_prio_enqueued_total", "Jobs accepted into the solve queue, by priority class.", "counter")
	for p, name := range classes {
		pw.Sample("hypermisd_prio_enqueued_total", []obs.Label{{Name: "class", Value: name}}, float64(m.perPrio[p].Enqueued.Load()))
	}
	pw.Header("hypermisd_prio_rejected_total", "Jobs shed (queue full or admission), by priority class.", "counter")
	for p, name := range classes {
		pw.Sample("hypermisd_prio_rejected_total", []obs.Label{{Name: "class", Value: name}}, float64(m.perPrio[p].Rejected.Load()))
	}
	pw.Header("hypermisd_prio_solves_total", "Solves completed without error, by priority class.", "counter")
	for p, name := range classes {
		pw.Sample("hypermisd_prio_solves_total", []obs.Label{{Name: "class", Value: name}}, float64(m.perPrio[p].Solves.Load()))
	}
	pw.Header("hypermisd_prio_queue_depth", "Jobs waiting right now, by priority class.", "gauge")
	for p, name := range classes {
		pw.Sample("hypermisd_prio_queue_depth", []obs.Label{{Name: "class", Value: name}}, float64(len(s.queues[p])))
	}

	// Chaos injection (the families exist only when chaos is enabled, so
	// a production scrape carries no fault-injection noise).
	if s.cfg.Chaos != nil {
		errs, delays, fulls := s.cfg.Chaos.Counts()
		pw.Counter("hypermisd_chaos_errors_total", "Solver errors injected by the chaos layer.", float64(errs))
		pw.Counter("hypermisd_chaos_delays_total", "Latency injections by the chaos layer.", float64(delays))
		pw.Counter("hypermisd_chaos_queue_fulls_total", "Forced queue-full rejections by the chaos layer.", float64(fulls))
	}

	// Durable cache tier (families exist only when -cachedir is set, so
	// a daemon without persistence carries no dead families).
	if s.cfg.Durable != nil {
		dc := s.cfg.Durable.Counters()
		pw.Counter("hypermisd_durable_hits_total", "Durable-tier cache hits served from disk.", float64(dc.Hits))
		pw.Counter("hypermisd_durable_misses_total", "Durable-tier lookups that found nothing servable.", float64(dc.Misses))
		pw.Counter("hypermisd_durable_writes_total", "Records persisted by the write-behind goroutine.", float64(dc.Writes))
		pw.Counter("hypermisd_durable_write_errors_total", "Durable writes dropped: queue overflow, I/O errors, short writes.", float64(dc.WriteErrors))
		pw.Counter("hypermisd_durable_recovered_total", "Records recovered from segments at boot.", float64(dc.Recovered))
		pw.Counter("hypermisd_durable_corrupt_skipped_total", "Corrupt frames skipped during recovery or rejected at read time.", float64(dc.CorruptSkipped))
		pw.Counter("hypermisd_durable_compactions_total", "Whole oldest segments deleted to enforce the byte budget.", float64(dc.Compactions))
		pw.Counter("hypermisd_durable_verify_failed_total", "Durable hits rejected by verify-first recovery.", float64(dc.VerifyFailed))
		pw.Gauge("hypermisd_durable_entries", "Records indexed by the durable store.", float64(dc.Entries))
		pw.Gauge("hypermisd_durable_segments", "Segment files held by the durable store.", float64(dc.Segments))
		pw.Gauge("hypermisd_durable_bytes", "Bytes held on disk by the durable store.", float64(dc.Bytes))
	}

	// Batch pipeline.
	pw.Counter("hypermisd_batch_requests_total", "POST /v1/batch requests.", float64(m.BatchRequests.Load()))
	pw.Counter("hypermisd_batch_items_total", "Items carried by batch requests.", float64(m.BatchItems.Load()))
	pw.Counter("hypermisd_batch_item_errors_total", "Batch items that failed (parse, options, or solve).", float64(m.BatchItemErrors.Load()))

	// Async jobs.
	pw.Counter("hypermisd_jobs_submitted_total", "Async jobs accepted.", float64(m.JobsSubmitted.Load()))
	pw.Counter("hypermisd_jobs_done_total", "Async jobs finished with a result.", float64(m.JobsDone.Load()))
	pw.Counter("hypermisd_jobs_failed_total", "Async jobs that failed.", float64(m.JobsFailed.Load()))
	pw.Counter("hypermisd_jobs_canceled_total", "Async jobs canceled.", float64(m.JobsCanceled.Load()))
	pw.Counter("hypermisd_job_cancel_requests_total", "Cancel requests accepted.", float64(m.JobCancelRequests.Load()))

	// Tracing.
	pw.Counter("hypermisd_traces_recorded_total", "Request traces recorded by the flight recorder.", float64(s.recorder.Recorded()))

	// Live gauges.
	pw.Gauge("hypermisd_workers", "Worker-pool size.", float64(s.cfg.Workers))
	depth := 0
	for p := range s.queues {
		depth += len(s.queues[p])
	}
	pw.Gauge("hypermisd_queue_depth", "Jobs waiting across all priority queues right now.", float64(depth))
	pw.Gauge("hypermisd_queue_cap", "Per-class queue capacity.", float64(s.cfg.QueueDepth))
	pw.Gauge("hypermisd_running_jobs", "Solves currently executing on workers.", float64(s.running.Load()))
	pw.Gauge("hypermisd_ratelimit_clients", "Client buckets tracked by the rate limiter.", float64(s.limiter.Clients()))
	s.closeMu.RLock()
	draining := s.isDraining
	s.closeMu.RUnlock()
	var drainingVal float64
	if draining {
		drainingVal = 1
	}
	pw.Gauge("hypermisd_draining", "1 while the server is draining for shutdown.", drainingVal)
	pw.Gauge("hypermisd_par_in_use", "Parallelism tokens held by running jobs.", float64(cap(s.parTokens)-len(s.parTokens)))
	pw.Gauge("hypermisd_par_cap", "Parallelism token-pool capacity.", float64(cap(s.parTokens)))
	pps := s.parPool.Stats()
	pw.Gauge("hypermisd_par_pool_workers", "Persistent parallel worker-pool size.", float64(pps.Workers))
	pw.Gauge("hypermisd_par_workers_busy", "Pool workers running a parallel pass right now.", float64(pps.Busy))
	pw.Counter("hypermisd_par_handoffs_total", "Parallel-pass blocks handed to parked pool workers.", float64(pps.Handoffs))
	pw.Counter("hypermisd_par_inline_total", "Multi-worker passes that found no parked worker and ran inline.", float64(pps.Inline))
	if s.cache != nil {
		pw.Gauge("hypermisd_cache_entries", "Result-cache entries held.", float64(s.cache.Len()))
		pw.Gauge("hypermisd_cache_bytes", "Approximate bytes held by the result cache.", float64(s.cache.Bytes()))
	}
	active, size := s.jobs.counts(time.Now())
	pw.Gauge("hypermisd_jobs_active", "Async jobs currently queued or running.", float64(active))
	pw.Gauge("hypermisd_job_store_size", "Stored async jobs, retained terminal ones included.", float64(size))

	// Latency histograms (seconds, cumulative log₂ buckets).
	promHistogram(pw, "hypermisd_solve_latency_seconds", "Uncached solve latency: queue wait + solve.", &m.SolveLatency)
	promHistogram(pw, "hypermisd_batch_stream_seconds", "Per-item batch streaming latency: item read to result flush.", &m.BatchItemLatency)
}
