// Package service turns the hypermis library into a long-lived,
// multi-tenant MIS-solving service: a job scheduler with a bounded
// queue and a fixed worker pool, per-job deadlines with cooperative
// cancellation (via hypermis.SolveCtx), an LRU result cache, and
// counters/latency quantiles for observability. Command hypermisd wraps
// it in an HTTP daemon; command hypermisload drives that daemon.
//
// # Endpoints (see NewHandler)
//
//	POST /v1/solve     body = instance; query algo, seed, alpha,
//	                   greedytail, cost, par (requested parallelism
//	                   degree), trace (trace=1 adds per-round telemetry
//	                   to the response). Returns a JSON SolveResponse.
//	POST /v1/color     body + query as /v1/solve. Colors the instance by
//	                   MIS peeling in one scheduled job and returns a
//	                   JSON ColorResponse (per-class telemetry; trace=1
//	                   adds each class's per-round solve trace).
//	POST /v1/transversal  body + query as /v1/solve. Returns a JSON
//	                   TransversalResponse: a verified minimal
//	                   transversal (the solved MIS's complement).
//	POST /v1/verify    body = instance; query mis = comma-separated
//	                   vertex ids. 200 on a valid MIS, 422 otherwise.
//	POST /v1/generate  query kind, n, m, d, min, max, seed, format.
//	                   Returns an instance (text or binary).
//	POST /v1/batch     body = NDJSON, one BatchItem per line (kind =
//	                   solve | color | transversal). Streams one
//	                   BatchItemResult line per item back in completion
//	                   order, flushing as items finish.
//	POST /v1/jobs      body = instance, query as /v1/solve plus kind.
//	                   Accepts an async job, 202 + job id immediately.
//	GET  /v1/jobs/{id}    job status; the result once the job is done.
//	DELETE /v1/jobs/{id}  cancel an in-flight job.
//	GET  /v1/stats     JSON Stats snapshot.
//	GET  /metrics      Prometheus text exposition of the same state.
//	GET  /v1/debug/requests  flight recorder: span breakdowns of the
//	                   most recent and slowest requests (query min_ms,
//	                   endpoint, trace, limit).
//	GET  /healthz      liveness probe, always "ok".
//
// docs/api.md is the full wire-level reference for every endpoint.
//
// # Observability
//
// Unless Config.DisableTracing is set, every request carries a span
// trace (internal/obs): the handler wrap opens it, announces its id in
// the X-Hypermis-Trace response header, and records the finished trace
// into a flight recorder retaining the last TraceRecent traces plus
// the TraceSlowest slowest ones. Span points cover the whole solve
// path — request decode, cache lookup, queue wait (enqueue to worker
// pickup), workspace checkout, the solve itself with a per-round tally
// from the RoundObserver, and response encode/flush — so
// GET /v1/debug/requests answers "where did this request's time go"
// per request, not just in aggregate. Async jobs detach from their
// submitting connection and carry their own JOB /v1/jobs trace.
// Config.Logger, when set, receives one structured log line per
// request. GET /metrics exposes the Metrics counters, per-algorithm
// labeled counters, and the log₂ latency histograms as cumulative
// Prometheus buckets, dependency-free.
//
// # Batching and async jobs
//
// A batch request amortizes connection, scheduling and parsing costs
// across many instances: items fan out through the same bounded queue,
// workspace pool and per-item cache lookups as single solves, bounded
// by an in-flight window (2×Workers), and results stream back the
// moment each item completes — the server never buffers the batch.
// Per-item results are bit-identical to the equivalent single
// /v1/solve calls (property-tested), and a failing item fails alone.
//
// An async job is a single solve detached from the submitting
// connection: POST /v1/jobs returns a job id immediately, the solve
// runs through the scheduler in the background, and the client polls
// GET /v1/jobs/{id}. Jobs move queued → running → done | failed |
// canceled; terminal jobs are retained for Config.JobTTL in a store
// bounded by Config.MaxJobs (lazy TTL eviction, oldest-terminal
// eviction under pressure) and then disappear.
//
// Instance bodies are the hgio text format by default; send
// Content-Type application/x-hypergraph-binary (or octet-stream) for
// the binary format. Responses to /v1/generate mirror the requested
// format and carry the instance digest in an X-Instance-Digest header.
//
// # Scheduling
//
// Only solves are scheduled; generate and verify are answered inline
// (both are linear-time). A solve is submitted to a bounded queue —
// when the queue is full the job is rejected immediately with
// ErrQueueFull (HTTP 503) rather than building an unbounded backlog.
// Workers (Config.Workers, default GOMAXPROCS) pop jobs and run
// hypermis.SolveCtx under the job's context capped by Config.JobTimeout,
// so a cancelled client or an expired deadline stops the solver at the
// next outer round instead of burning the pool.
//
// Every job solves on a pooled solver workspace (hypermis.Workspace):
// the pool is sized by the parallelism token pool, so steady-state
// traffic recycles a fixed set of warm arenas and an uncached solve
// allocates ~no arena memory. Workspaces are handed to exactly one job
// at a time and solvers zero every buffer at checkout, so recycling is
// invisible in results — the pooling property test poisons workspaces
// between jobs to prove it. Each job also installs a RoundObserver
// feeding the aggregate per-round counters in Stats
// (solver_rounds_total, solver_round_decided_total,
// solver_round_ms_total).
//
// # Per-job parallelism
//
// A job may request a multicore solve (query par=N → Options.
// Parallelism); the solvers' round passes then shard over that many
// worker goroutines. Wide degrees are opt-in — a job that does not ask
// runs at degree 1. The scheduler grants degrees from a fixed token
// pool sized max(GOMAXPROCS, Workers): every running job holds one
// token, and a wide job opportunistically takes up to min(N,
// Config.MaxJobParallelism)−1 extra tokens if they are free right now,
// returning everything when it finishes. Aggregate parallelism across
// concurrent jobs therefore never exceeds the pool — a single large
// job can use the whole machine when the service is idle, and under
// load degrees collapse to 1 instead of oversubscribing. Solving is
// deterministic for any degree (see hypermis.Options.Parallelism), so
// the granted degree never affects results — which is also why JobKey
// excludes it: par=1 and par=8 requests share one cache entry.
//
// # Cache semantics
//
// Results are cached in a fixed-capacity LRU keyed by JobKey: the
// canonical instance digest (hgio.Digest — hex SHA-256 of the binary
// encoding) plus the canonicalized solve options. Canonicalization
// resolves AlgAuto against the instance's dimension and normalizes
// SBL's Alpha default, so e.g. an explicit "luby" request and an "auto"
// request on the same graph share one entry. Solving is deterministic
// for equal (instance, options) — cached results are exact, never
// stale, and are returned without touching the queue. Concurrent
// misses for the same key may each compute the result (no
// single-flight); determinism makes the duplicates identical and the
// last write wins.
package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	hypermis "repro"
	"repro/internal/admit"
	"repro/internal/durable"
	"repro/internal/faultinject"
	"repro/internal/hgio"
	"repro/internal/obs"
	"repro/internal/solver"
)

// Config sizes the scheduler. The zero value of any field selects its
// default.
type Config struct {
	// Workers is the worker-pool size (default runtime.GOMAXPROCS(0)).
	Workers int
	// QueueDepth bounds the pending-job queue (default 4×Workers).
	QueueDepth int
	// CacheSize is the LRU result-cache capacity in entries
	// (default 1024). Negative disables caching.
	CacheSize int
	// CacheBytes bounds the approximate total weight of cached results
	// (default 256 MiB; negative disables the byte bound). Entries are
	// charged by their MIS mask length, so the cache cannot grow to
	// CacheSize × maxInstanceN bytes on maximal-size instances.
	CacheBytes int64
	// JobTimeout is the per-job deadline applied on top of the
	// submitter's context (default 30s; negative disables).
	JobTimeout time.Duration
	// MaxJobParallelism caps the worker goroutines any single job may
	// be granted (default GOMAXPROCS; negative pins every job to
	// degree 1). The aggregate across concurrent jobs is additionally
	// capped by the token pool — see the package comment.
	MaxJobParallelism int
	// MaxBatchItems caps the items one POST /v1/batch request may carry
	// (default 1024; values < 1 are raised to 1). Items past the cap are
	// answered with a single truncation error record.
	MaxBatchItems int
	// JobTTL is how long a finished (done/failed/canceled) async job is
	// retained for GET /v1/jobs/{id} before eviction (values ≤ 0 select
	// the default 5m — instant expiry would make results unretrievable).
	JobTTL time.Duration
	// MaxJobs bounds the async job store, terminal and in-flight jobs
	// together (default 1024). At capacity, expired and oldest terminal
	// jobs are evicted first; if every slot holds an in-flight job, new
	// submissions are refused with ErrJobStoreFull.
	MaxJobs int
	// DisableTracing turns off per-request span tracing and the flight
	// recorder: no X-Hypermis-Trace header, an empty
	// GET /v1/debug/requests, and zero per-request recording cost.
	DisableTracing bool
	// TraceRecent is the flight recorder's ring size — the last N
	// completed traces retained (default 256).
	TraceRecent int
	// TraceSlowest is the always-retained slowest-trace set size: the K
	// slowest requests survive any burst of fast ones (default 32).
	TraceSlowest int
	// Logger, when non-nil, receives one structured record per HTTP
	// request (endpoint, status, duration, trace id) and service
	// lifecycle events. Nil logs nothing — library users and tests stay
	// silent by default.
	Logger *slog.Logger
	// RateLimit, when > 0, grants each client (keyed by the
	// X-Hypermis-Client header, falling back to the remote IP) this many
	// solve-path requests per second with a burst of RateBurst (default
	// 2×RateLimit, minimum 1). Excess requests are answered 429 with a
	// Retry-After. Zero disables rate limiting.
	RateLimit float64
	RateBurst float64
	// RateLimitClients bounds the limiter's per-client bucket LRU
	// (default 4096): the limiter's memory stays bounded no matter how
	// many distinct client keys appear.
	RateLimitClients int
	// Chaos, when non-nil, injects faults (solver errors, latency,
	// forced queue-full) per its configuration — see hypermisd -chaos
	// and internal/faultinject. Nil injects nothing.
	Chaos *faultinject.Injector
	// Durable, when non-nil, is the crash-safe disk tier of the result
	// cache (internal/durable): lookups fall through memory LRU →
	// durable → solve, and a successful solve fills both. The server
	// does not own the store — the caller opens it before New and
	// closes it after Drain. Nil disables persistence.
	Durable *durable.Store
	// DurableVerify re-verifies every durable-tier hit against the
	// submitted instance (hypermis.VerifyMIS, linear time) before it is
	// served; a failing mask is dropped from the store and the request
	// proceeds as a miss. The hypermisd -cacheverify flag sets it.
	DurableVerify bool
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.CacheSize == 0 {
		c.CacheSize = 1024
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 256 << 20
	}
	if c.JobTimeout == 0 {
		c.JobTimeout = 30 * time.Second
	}
	if c.MaxJobParallelism == 0 {
		c.MaxJobParallelism = runtime.GOMAXPROCS(0)
	}
	if c.MaxJobParallelism < 1 {
		c.MaxJobParallelism = 1
	}
	if c.MaxBatchItems == 0 {
		c.MaxBatchItems = 1024
	}
	if c.MaxBatchItems < 1 {
		c.MaxBatchItems = 1
	}
	if c.JobTTL <= 0 {
		c.JobTTL = 5 * time.Minute
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	if c.TraceRecent <= 0 {
		c.TraceRecent = 256
	}
	if c.TraceSlowest <= 0 {
		c.TraceSlowest = 32
	}
	if c.RateLimit > 0 && c.RateBurst <= 0 {
		c.RateBurst = 2 * c.RateLimit
	}
	if c.RateLimitClients <= 0 {
		c.RateLimitClients = 4096
	}
	return c
}

// ErrQueueFull is returned by Solve when the bounded queue is at
// capacity; the caller should shed or retry later (HTTP 503).
var ErrQueueFull = errors.New("service: job queue full")

// ErrClosed is returned by Solve after Close.
var ErrClosed = errors.New("service: server closed")

// ErrDraining is returned by Solve and SubmitJob while the server is
// draining: submissions are refused and already-queued jobs fail fast
// so in-flight connections unwind before the process exits (HTTP 503).
var ErrDraining = errors.New("service: draining")

// AdmissionError is returned by Solve when deadline-aware admission
// rejects the request: the estimated queue wait alone would exhaust
// the caller's deadline, so queueing the job could only waste a worker
// on an answer nobody is left to read. EstWait is the estimate behind
// the decision — the honest Retry-After for the 503.
type AdmissionError struct {
	EstWait time.Duration
}

func (e *AdmissionError) Error() string {
	return fmt.Sprintf("service: deadline unmeetable (estimated queue wait %v)", e.EstWait.Round(time.Millisecond))
}

type job struct {
	ctx      context.Context
	kind     WorkKind
	h        *hypermis.Hypergraph
	opts     hypermis.Options
	key      string
	prio     admit.Priority
	enqueued time.Time // queue-wait span start, stamped by enqueue
	done     chan jobResult
}

// jobResult carries the finished job's kind-specific result:
// *hypermis.Result, *hypermis.ColorResult, or
// *hypermis.TransversalResult per job.kind.
type jobResult struct {
	res any
	err error
}

// Server is the solving service: a worker pool draining a bounded job
// queue, fronted by an LRU result cache. Create with New, release with
// Close.
type Server struct {
	cfg Config
	// queues holds one bounded job queue per priority class; workers
	// drain them in the weighted order admit.Order derives from tick,
	// so a batch flood cannot starve interactive solves (and neither
	// can starve background work entirely).
	queues  [admit.NumPriorities]chan *job
	tick    atomic.Uint64
	cache   *lruCache
	metrics Metrics

	// estimator tracks per-algorithm EWMA service times; the admission
	// controller turns them into queue-wait estimates, and Retry-After
	// headers report them to shed clients.
	estimator *admit.Estimator
	// limiter is the per-client token-bucket rate limiter (nil when
	// Config.RateLimit is zero — the nil limiter admits everything).
	limiter *admit.RateLimiter
	// running counts jobs currently inside run(); Drain waits for it to
	// reach zero before declaring the pipeline empty.
	running atomic.Int64
	// drainCtx is canceled when a drain exceeds its timeout: every
	// in-flight solve watches it and unwinds at its next round check.
	drainCtx    context.Context
	drainCancel context.CancelFunc

	// parTokens is the machine-wide parallelism budget: every running
	// job holds one token, wide jobs hold extras. Capacity is
	// max(GOMAXPROCS, Workers) so degree-1 scheduling is never blocked
	// by the pool, and the aggregate granted degree can never exceed it.
	parTokens chan struct{}

	// parPool is the persistent parallel worker pool every job's solve
	// dispatches onto (hypermis.Options.ParPool): its workers are
	// started once per server and park between passes, so wide jobs pay
	// no goroutine-spawn cost per solver round. Sized like parTokens —
	// the aggregate granted degree — and closed by Close after the last
	// worker exits.
	parPool *hypermis.ParPool

	// wsPool recycles solver workspaces across jobs. It is sized by the
	// parallelism token pool — the number of jobs that can be solving
	// simultaneously — so steady-state traffic runs on a fixed set of
	// warm workspaces and an uncached solve allocates ~no arena memory.
	wsPool *solver.Pool

	// closeMu serializes enqueues against Close and Drain: submissions
	// hold the read side across the state-check and the channel send, so
	// once Close (or Drain) holds the write side and flips the flag, no
	// job can slip into the queues after the final drain.
	closeMu    sync.RWMutex
	isClosed   bool
	isDraining bool

	// jobs is the bounded TTL store behind the async job API; jobWg
	// tracks the per-job driver goroutines so Close can wait for them.
	jobs  *jobStore
	jobWg sync.WaitGroup

	// recorder is the flight recorder behind GET /v1/debug/requests
	// (nil when Config.DisableTracing); logger receives per-request
	// structured logs (nil = silent).
	recorder *obs.Recorder
	logger   *slog.Logger

	closeOnce sync.Once
	closed    chan struct{}
	wg        sync.WaitGroup
}

// New starts a Server with cfg's worker pool running.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	poolSize := runtime.GOMAXPROCS(0)
	if cfg.Workers > poolSize {
		poolSize = cfg.Workers
	}
	s := &Server{
		cfg:       cfg,
		parTokens: make(chan struct{}, poolSize),
		parPool:   hypermis.NewParPool(poolSize),
		wsPool:    solver.NewPool(poolSize),
		jobs:      newJobStore(cfg.JobTTL, cfg.MaxJobs),
		estimator: admit.NewEstimator(),
		limiter:   admit.NewRateLimiter(cfg.RateLimit, cfg.RateBurst, cfg.RateLimitClients),
		logger:    cfg.Logger,
		closed:    make(chan struct{}),
	}
	// Each class gets its own full-depth queue: a batch flood fills the
	// batch queue and sheds batch traffic while interactive submissions
	// still find room — per-class bounds are themselves an isolation
	// mechanism, not just a memory cap.
	for p := range s.queues {
		s.queues[p] = make(chan *job, cfg.QueueDepth)
	}
	s.drainCtx, s.drainCancel = context.WithCancel(context.Background())
	if !cfg.DisableTracing {
		s.recorder = obs.NewRecorder(cfg.TraceRecent, cfg.TraceSlowest)
	}
	s.metrics.initPerAlg(solver.Names())
	for i := 0; i < poolSize; i++ {
		s.parTokens <- struct{}{}
	}
	if cfg.CacheSize > 0 {
		s.cache = newLRUCache(cfg.CacheSize, cfg.CacheBytes)
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Close stops the workers after the queued jobs drain and fails any
// subsequent Solve or SubmitJob with ErrClosed. In-flight async jobs
// are canceled (they end JobCanceled) and their driver goroutines are
// waited for. Safe to call more than once.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.closeMu.Lock()
		s.isClosed = true
		s.closeMu.Unlock()
		s.jobs.cancelAll()
		close(s.closed)
	})
	s.jobWg.Wait()
	s.wg.Wait()
	// Workers are done solving, so no dispatch can race the pool
	// shutdown; release its parked goroutines and wait for them.
	s.parPool.Close()
}

// Drain shuts the server down gracefully: new submissions are refused
// with ErrDraining, jobs still waiting in the queues fail fast with
// ErrDraining (their submitters get an answer instead of a hang), and
// running solves — sync, batch items and async jobs alike — get up to
// timeout to finish. If they don't, drainCtx is canceled and every
// in-flight solve unwinds at its next round check; Drain then reports
// the forced stop. Either way the server is fully Closed on return, so
// Drain is the SIGTERM path: clean exit when the error is nil.
func (s *Server) Drain(timeout time.Duration) error {
	s.closeMu.Lock()
	if s.isClosed || s.isDraining {
		s.closeMu.Unlock()
		s.Close()
		return nil
	}
	s.isDraining = true
	s.closeMu.Unlock()
	if s.logger != nil {
		s.logger.Info("drain started", slog.Duration("timeout", timeout))
	}
	// Fail everything that is queued but not yet running. Workers may
	// race us for individual jobs; each job is either failed here or
	// runs to completion below — never both, never neither.
	drained := 0
	for p := range s.queues {
	queue:
		for {
			select {
			case j := <-s.queues[p]:
				j.done <- jobResult{nil, ErrDraining}
				drained++
			default:
				break queue
			}
		}
	}
	s.metrics.DrainedJobs.Add(int64(drained))
	// Wait for the pipeline to empty: running solves plus async job
	// driver goroutines (their queued members were just failed, so they
	// terminate as soon as their solveBlocking observes ErrDraining).
	deadline := time.Now().Add(timeout)
	forced := false
	for {
		active, _ := s.jobs.counts(time.Now())
		if s.running.Load() == 0 && active == 0 {
			break
		}
		if time.Now().After(deadline) {
			forced = true
			s.drainCancel()
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	s.Close()
	if s.logger != nil {
		s.logger.Info("drain finished",
			slog.Int("queued_failed", drained), slog.Bool("forced", forced))
	}
	if forced {
		return fmt.Errorf("service: drain timeout after %v: in-flight solves force-canceled", timeout)
	}
	return nil
}

// Config reports the effective (defaulted) configuration.
func (s *Server) Config() Config { return s.cfg }

// JobKey is the result-cache key for solving h under opts — WorkKey for
// the solve workload. See WorkKey for the canonicalization rules.
func JobKey(h *hypermis.Hypergraph, opts hypermis.Options) string {
	return WorkKey(WorkSolve, h, opts)
}

// WorkKey is the result-cache key for running workload kind on h under
// opts: the workload kind, the canonical instance digest, and the
// canonicalized options. The kind leads the key, so a color result can
// never answer a solve (or vice versa) even before the durable tier's
// record-version check — the keys simply never collide. AlgAuto is
// resolved against h and SBL's Alpha default is normalized, so
// equivalent requests share one entry; fields that cannot influence the
// result for the resolved algorithm are dropped. Options.Parallelism is
// deliberately excluded: every workload is deterministic for any
// degree, so a par=8 request is satisfied by a cached par=1 result and
// vice versa.
func WorkKey(kind WorkKind, h *hypermis.Hypergraph, opts hypermis.Options) string {
	algo := hypermis.ResolveAlgorithm(h, opts.Algorithm)
	alpha := 0.0
	greedyTail := false
	if algo == hypermis.AlgSBL {
		alpha = opts.Alpha
		if alpha == 0 {
			alpha = 0.25
		}
		greedyTail = opts.UseGreedyTail
	}
	// Trace is part of the key: the answer is identical either way, but
	// a cached traceless result cannot serve a ?trace=1 request.
	return fmt.Sprintf("%s|%s|algo=%s|seed=%d|alpha=%g|gtail=%t|cost=%t|trace=%t",
		kind, hgio.Digest(h), algo, opts.Seed, alpha, greedyTail, opts.CollectCost, opts.Trace)
}

// Solve computes (or recalls) the MIS of h under opts at interactive
// priority. The boolean reports a cache hit. Cache hits return without
// queueing; misses wait for a worker for as long as ctx allows (the
// configured JobTimeout starts only once a worker picks the job up, so
// queue time is bounded by the submitter's own deadline). A full queue
// fails fast with ErrQueueFull, and a ctx deadline the queue-wait
// estimate says cannot be met fails fast with *AdmissionError.
func (s *Server) Solve(ctx context.Context, h *hypermis.Hypergraph, opts hypermis.Options) (*hypermis.Result, bool, error) {
	return s.SolveClass(ctx, h, opts, admit.Interactive)
}

// SolveClass is Solve under an explicit priority class: interactive
// jobs are preferred by the weighted dequeue, batch tolerates
// queueing, background fills otherwise-idle capacity.
func (s *Server) SolveClass(ctx context.Context, h *hypermis.Hypergraph, opts hypermis.Options, prio admit.Priority) (*hypermis.Result, bool, error) {
	res, hit, err := s.workKeyed(ctx, WorkSolve, h, opts, JobKey(h, opts), prio, true)
	if err != nil {
		return nil, hit, err
	}
	return res.(*hypermis.Result), hit, nil
}

// workKeyed is the kind-generic scheduling path every workload shares:
// memory LRU → durable tier → admission → bounded queue → worker. The
// cache key is precomputed and counter updates optional: the
// batch/async retry loop (workBlocking) hashes the instance once and
// counts the cache miss / queue rejection only on its first attempt, so
// a queue-starved item doesn't inflate cache_misses and rejected on
// every backoff retry (nor re-digest a large instance while the server
// is already overloaded). The returned value's type follows kind — see
// jobResult.
func (s *Server) workKeyed(ctx context.Context, kind WorkKind, h *hypermis.Hypergraph, opts hypermis.Options, key string, prio admit.Priority, count bool) (any, bool, error) {
	if s.cache != nil {
		sp := obs.From(ctx).StartSpan("cache-lookup")
		res, ok := s.cache.Get(key)
		sp.End()
		if ok {
			if count {
				s.metrics.CacheHits.Add(1)
			}
			return res, true, nil
		}
		if count {
			s.metrics.CacheMisses.Add(1)
		}
	}
	// Second cache tier: the durable store. A hit here short-circuits
	// the queue exactly like a memory hit and back-fills the LRU, but
	// nothing read from disk is trusted blindly — the record already
	// passed its CRC (and its kind's record-version check) inside the
	// store, the answer's length must match the instance (a wrong-length
	// answer cannot be this instance's result), and under DurableVerify
	// the answer is re-proved against the submitted instance before it
	// is served. Any failure evicts the record and degrades to a miss,
	// never a wrong answer.
	if s.cfg.Durable != nil {
		sp := obs.From(ctx).StartSpan("durable-lookup")
		res, ok := s.durableGet(kind, key)
		sp.End()
		if ok {
			good := durableLenOK(kind, res, h.N())
			if good && s.cfg.DurableVerify {
				vsp := obs.From(ctx).StartSpan("durable-verify")
				good = durableVerify(kind, h, res) == nil
				vsp.End()
			}
			if good {
				if s.cache != nil {
					s.cache.Put(key, res)
				}
				return res, true, nil
			}
			s.cfg.Durable.MarkVerifyFailed(key)
		}
	}
	// Deadline-aware admission: if the caller brought a deadline and the
	// queue-wait estimate alone would blow it, reject now — honestly —
	// instead of queueing a job whose answer will arrive after the
	// caller has gone. Estimates come from observed service times; with
	// no observations yet the estimate is zero and admission stays open.
	if err := s.admissionCheck(ctx, kind, h, opts, prio); err != nil {
		return nil, false, err
	}
	j := &job{ctx: ctx, kind: kind, h: h, opts: opts, key: key, prio: prio, done: make(chan jobResult, 1)}
	if err := s.enqueue(j, count); err != nil {
		return nil, false, err
	}
	select {
	case r := <-j.done:
		return r.res, false, r.err
	case <-ctx.Done():
		// The worker observes the same context and abandons the solve at
		// its next round check; the buffered done channel lets it finish.
		return nil, false, ctx.Err()
	}
}

// admissionCheck estimates how long a prio-class job would wait for a
// worker (jobs of the same or a preferred class ahead of it, each
// costing the algorithm's EWMA service time) and rejects with
// *AdmissionError when the caller's ctx deadline precedes even the
// optimistic completion time estWait + svc.
func (s *Server) admissionCheck(ctx context.Context, kind WorkKind, h *hypermis.Hypergraph, opts hypermis.Options, prio admit.Priority) error {
	dl, ok := ctx.Deadline()
	if !ok {
		return nil
	}
	svc := s.estimator.Estimate(estimatorLabel(kind, h, opts))
	if svc <= 0 {
		return nil
	}
	ahead := 0
	for p := admit.Priority(0); p <= prio; p++ {
		ahead += len(s.queues[p])
	}
	estWait := admit.QueueWait(ahead, s.cfg.Workers, svc)
	if time.Until(dl) >= estWait+svc {
		return nil
	}
	s.metrics.AdmissionRejected.Add(1)
	s.metrics.prio(prio).Rejected.Add(1)
	return &AdmissionError{EstWait: estWait}
}

// estimatedRetryAfter reports how long a shed prio-class client should
// wait before retrying: the estimated time to drain that class's
// current backlog, floored at one second (the smallest honest value
// the integral Retry-After header can carry).
func (s *Server) estimatedRetryAfter(prio admit.Priority) time.Duration {
	ahead := 0
	for p := admit.Priority(0); p <= prio; p++ {
		ahead += len(s.queues[p])
	}
	wait := admit.QueueWait(ahead, s.cfg.Workers, s.estimator.Estimate(""))
	if wait < time.Second {
		wait = time.Second
	}
	return wait
}

// enqueue submits j to its class's bounded queue, holding the read
// side of closeMu across the state-check and the send so the job
// cannot land in a queue after the final drain (which would strand the
// submitter on a done channel nobody serves). countRejected gates the
// Rejected counter: retry attempts of one waiting request shed at most
// one rejection into the stats.
func (s *Server) enqueue(j *job, countRejected bool) error {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.isClosed {
		return ErrClosed
	}
	if s.isDraining {
		return ErrDraining
	}
	if s.cfg.Chaos.QueueFull() {
		if countRejected {
			s.metrics.Rejected.Add(1)
			s.metrics.prio(j.prio).Rejected.Add(1)
		}
		return ErrQueueFull
	}
	j.enqueued = time.Now()
	select {
	case s.queues[j.prio] <- j:
		s.metrics.Enqueued.Add(1)
		s.metrics.prio(j.prio).Enqueued.Add(1)
		return nil
	default:
		if countRejected {
			s.metrics.Rejected.Add(1)
			s.metrics.prio(j.prio).Rejected.Add(1)
		}
		return ErrQueueFull
	}
}

// Stats snapshots the scheduler's counters and latency quantiles.
func (s *Server) Stats() Stats {
	st := s.metrics.snapshot()
	st.Workers = s.cfg.Workers
	st.QueueCap = s.cfg.QueueDepth
	for p := range s.queues {
		depth := len(s.queues[p])
		st.QueueDepth += depth
		ps := st.PerPriority[admit.Priority(p).String()]
		ps.QueueDepth = depth
		st.PerPriority[admit.Priority(p).String()] = ps
	}
	st.RunningJobs = int(s.running.Load())
	st.RateLimitClients = s.limiter.Clients()
	s.closeMu.RLock()
	st.Draining = s.isDraining
	s.closeMu.RUnlock()
	if s.cfg.Chaos != nil {
		st.ChaosErrors, st.ChaosDelays, st.ChaosQueueFulls = s.cfg.Chaos.Counts()
	}
	if s.cfg.Durable != nil {
		dc := s.cfg.Durable.Counters()
		st.DurableEnabled = true
		st.DurableHits = dc.Hits
		st.DurableMisses = dc.Misses
		st.DurableWrites = dc.Writes
		st.DurableWriteErrors = dc.WriteErrors
		st.DurableRecovered = dc.Recovered
		st.DurableCorruptSkipped = dc.CorruptSkipped
		st.DurableCompactions = dc.Compactions
		st.DurableVerifyFailed = dc.VerifyFailed
		st.DurableEntries = dc.Entries
		st.DurableSegments = dc.Segments
		st.DurableBytes = dc.Bytes
	}
	st.ParCap = cap(s.parTokens)
	st.ParInUse = cap(s.parTokens) - len(s.parTokens)
	st.MaxJobParallelism = s.cfg.MaxJobParallelism
	ps := s.parPool.Stats()
	st.ParPoolWorkers = ps.Workers
	st.ParWorkersBusy = ps.Busy
	st.ParHandoffs = ps.Handoffs
	st.ParInline = ps.Inline
	if s.cache != nil {
		st.CacheSize = s.cache.Len()
		st.CacheCap = s.cfg.CacheSize
		st.CacheBytes = s.cache.Bytes()
	}
	st.JobsActive, st.JobStoreSize = s.jobs.counts(time.Now())
	st.JobStoreCap = s.cfg.MaxJobs
	st.MaxBatchItems = s.cfg.MaxBatchItems
	st.JobTTLSeconds = s.cfg.JobTTL.Seconds()
	st.TracesRecorded = s.recorder.Recorded()
	return st
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j, ok := s.nextJob()
		if !ok {
			// Closed: run whatever was accepted before the close (after a
			// Drain the queues are already empty — queued jobs were failed
			// with ErrDraining, not run).
			for {
				j := s.tryDequeue()
				if j == nil {
					return
				}
				s.run(j)
			}
		}
		s.run(j)
	}
}

// nextJob blocks until a job is available (weighted across the
// priority queues) or the server closes. The weighting only matters
// under contention: a non-blocking pass tries the classes in the
// tick's admit.Order, so when several queues are non-empty the
// preferred class wins its configured share of pickups; when all are
// empty the blocking select serves whichever class arrives first.
func (s *Server) nextJob() (*job, bool) {
	order := admit.Order(s.tick.Add(1) - 1)
	for _, p := range order {
		select {
		case j := <-s.queues[p]:
			return j, true
		default:
		}
	}
	select {
	case j := <-s.queues[admit.Interactive]:
		return j, true
	case j := <-s.queues[admit.Batch]:
		return j, true
	case j := <-s.queues[admit.Background]:
		return j, true
	case <-s.closed:
		return nil, false
	}
}

// tryDequeue pops one queued job in strict priority order, or nil.
func (s *Server) tryDequeue() *job {
	for p := range s.queues {
		select {
		case j := <-s.queues[p]:
			return j
		default:
		}
	}
	return nil
}

// grantParallelism acquires this job's share of the token pool: one
// token always (blocking — a running job is one unit of parallelism by
// definition), plus up to want−1 extra tokens if they are free right
// now. It returns the granted degree; releaseParallelism must be called
// with the same value when the job finishes.
//
// Wide degrees are opt-in: a job that did not ask (want ≤ 0) runs at
// degree 1. Defaulting to MaxJobParallelism instead would let one
// ordinary request drain the pool and block every other worker's
// mandatory 1-token acquire, serializing the pool.
func (s *Server) grantParallelism(want int) int {
	if want <= 0 {
		want = 1
	}
	if want > s.cfg.MaxJobParallelism {
		want = s.cfg.MaxJobParallelism
	}
	<-s.parTokens
	grant := 1
	for grant < want {
		select {
		case <-s.parTokens:
			grant++
		default:
			return grant
		}
	}
	return grant
}

func (s *Server) releaseParallelism(grant int) {
	for i := 0; i < grant; i++ {
		s.parTokens <- struct{}{}
	}
}

func (s *Server) run(j *job) {
	s.running.Add(1)
	defer s.running.Add(-1)
	// The request's trace (nil when tracing is off or the caller is
	// untraced): queue wait ends the moment a worker picks the job up.
	tr := obs.From(j.ctx)
	tr.AddSpan("queue-wait", j.enqueued, time.Since(j.enqueued))
	// Acquire the parallelism grant before the per-job deadline starts
	// ticking: waiting for a token is queueing, not solving. Tokens are
	// returned before the done-channel send below, so a submitter that
	// observed its result never sees the job still holding the pool.
	grant := s.grantParallelism(j.opts.Parallelism)
	j.opts.Parallelism = grant
	s.metrics.ParGranted.Add(int64(grant))
	if grant > 1 {
		s.metrics.WideJobs.Add(1)
	}
	// Pooled workspace + aggregate round telemetry: the solve draws its
	// arenas from a recycled workspace and every outer solver round
	// bumps the service-wide round counters, the per-algorithm labeled
	// counters, and the trace's round tally.
	sp := tr.StartSpan("workspace-checkout")
	ws := s.wsPool.Get()
	sp.End()
	j.opts.Workspace = ws
	j.opts.ParPool = s.parPool
	ac := s.metrics.alg(hypermis.ResolveAlgorithm(j.h, j.opts.Algorithm).String())
	callerObserver := j.opts.RoundObserver
	j.opts.RoundObserver = func(r hypermis.RoundTrace) {
		s.metrics.SolverRounds.Add(1)
		s.metrics.SolverRoundDecided.Add(int64(r.Decided))
		s.metrics.SolverRoundNs.Add(int64(r.Elapsed))
		if ac != nil {
			ac.Rounds.Add(1)
		}
		tr.AddRound(r.Elapsed)
		if callerObserver != nil {
			callerObserver(r)
		}
	}
	start := time.Now()
	ctx := j.ctx
	if s.cfg.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.JobTimeout)
		defer cancel()
	}
	// A timed-out Drain cancels drainCtx; propagate that into this
	// solve so it unwinds at its next round check. AfterFunc avoids a
	// per-job watcher goroutine.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	stopDrainWatch := context.AfterFunc(s.drainCtx, cancel)
	defer stopDrainWatch()
	// Chaos hooks (nil injector = no-ops): injected latency models a
	// slow solver, an injected error models a failing one.
	s.cfg.Chaos.Delay(ctx)
	sp = tr.StartSpan(string(j.kind))
	var res any
	err := s.cfg.Chaos.SolveError()
	if err == nil {
		res, err = s.compute(ctx, j)
	}
	sp.End()
	s.wsPool.Put(ws)
	s.releaseParallelism(grant)
	if err != nil {
		s.countError(j.kind, ac)
	} else {
		if s.cache != nil {
			s.cache.Put(j.key, res)
		}
		if s.cfg.Durable != nil {
			// The typed puts only queue the record (the write-behind
			// goroutine does the disk work), so the span bounds the
			// hand-off, not an I/O.
			dsp := tr.StartSpan("durable-fill")
			s.durableFill(j.key, res)
			dsp.End()
		}
		s.countDone(j, res, ac)
		svc := time.Since(start)
		// One latency histogram covers every workload kind — a color job
		// is a pipeline of solves and reports its whole wall time here.
		s.metrics.SolveLatency.Observe(svc)
		// Feed the admission controller's queue-wait arithmetic with the
		// service time this kind of job actually took.
		s.estimator.Observe(estimatorLabel(j.kind, j.h, j.opts), svc)
	}
	j.done <- jobResult{res, err}
}
