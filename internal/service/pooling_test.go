package service

import (
	"context"
	"fmt"
	"sync"
	"testing"

	hypermis "repro"
	"repro/internal/solver"
)

// poolCases is one instance per solver, small enough to keep the -race
// runs fast but large enough that every solver executes several rounds.
func poolCases() []struct {
	name string
	algo hypermis.Algorithm
	h    *hypermis.Hypergraph
} {
	return []struct {
		name string
		algo hypermis.Algorithm
		h    *hypermis.Hypergraph
	}{
		{"sbl", hypermis.AlgSBL, hypermis.RandomMixed(21, 600, 1200, 2, 12)},
		{"bl", hypermis.AlgBL, hypermis.RandomUniform(22, 400, 800, 3)},
		{"kuw", hypermis.AlgKUW, hypermis.RandomMixed(23, 600, 1200, 2, 8)},
		{"luby", hypermis.AlgLuby, hypermis.RandomGraph(24, 600, 1800)},
		{"permbl", hypermis.AlgPermBL, hypermis.RandomMixed(25, 400, 800, 2, 6)},
	}
}

func sameMIS(t *testing.T, label string, ref, got *hypermis.Result) {
	t.Helper()
	if ref.Rounds != got.Rounds || ref.Size != got.Size {
		t.Fatalf("%s: rounds/size %d/%d != %d/%d", label, got.Rounds, got.Size, ref.Rounds, ref.Size)
	}
	for v := range ref.MIS {
		if ref.MIS[v] != got.MIS[v] {
			t.Fatalf("%s: MIS differs at vertex %d", label, v)
		}
	}
}

// TestPooledWorkspacesBitIdenticalWithPoison drives every solver
// through a deliberately tiny workspace pool, poisoning each workspace
// between checkouts, and asserts results bit-identical to
// fresh-workspace runs. Poisoning makes any read of a stale buffer —
// cross-job mask or arena contamination — flip the output (or crash),
// so a pass proves solvers fully re-initialize everything they borrow.
func TestPooledWorkspacesBitIdenticalWithPoison(t *testing.T) {
	pool := solver.NewPool(2)
	for round := 0; round < 3; round++ {
		for _, c := range poolCases() {
			for seed := uint64(0); seed < 2; seed++ {
				ref, err := hypermis.Solve(c.h, hypermis.Options{Algorithm: c.algo, Seed: seed})
				if err != nil {
					t.Fatalf("%s fresh: %v", c.name, err)
				}
				ws := pool.Get()
				ws.Poison()
				got, err := hypermis.Solve(c.h, hypermis.Options{Algorithm: c.algo, Seed: seed, Workspace: ws})
				pool.Put(ws)
				if err != nil {
					t.Fatalf("%s pooled: %v", c.name, err)
				}
				sameMIS(t, fmt.Sprintf("%s seed=%d round=%d", c.name, seed, round), ref, got)
			}
		}
	}
}

// TestConcurrentServiceJobsSharePoolSafely floods a small-pool server
// with concurrent jobs across all five solvers and verifies every
// result against an uncached fresh-workspace reference. Run under
// -race (CI does) this is the cross-job contamination property test at
// the service level: workers concurrently check workspaces in and out
// of the shared pool while solving.
func TestConcurrentServiceJobsSharePoolSafely(t *testing.T) {
	s := New(Config{Workers: 4, QueueDepth: 256, CacheSize: -1})
	defer s.Close()

	type ref struct {
		algo hypermis.Algorithm
		h    *hypermis.Hypergraph
		seed uint64
		want *hypermis.Result
	}
	var refs []ref
	for _, c := range poolCases() {
		for seed := uint64(0); seed < 3; seed++ {
			want, err := hypermis.Solve(c.h, hypermis.Options{Algorithm: c.algo, Seed: seed})
			if err != nil {
				t.Fatalf("%s: %v", c.name, err)
			}
			refs = append(refs, ref{c.algo, c.h, seed, want})
		}
	}

	const repeats = 2
	var wg sync.WaitGroup
	errs := make(chan error, len(refs)*repeats)
	for rep := 0; rep < repeats; rep++ {
		for _, r := range refs {
			wg.Add(1)
			go func(r ref) {
				defer wg.Done()
				got, _, err := s.Solve(context.Background(), r.h, hypermis.Options{Algorithm: r.algo, Seed: r.seed})
				if err != nil {
					errs <- fmt.Errorf("algo=%v seed=%d: %v", r.algo, r.seed, err)
					return
				}
				if got.Size != r.want.Size || got.Rounds != r.want.Rounds {
					errs <- fmt.Errorf("algo=%v seed=%d: size/rounds %d/%d want %d/%d",
						r.algo, r.seed, got.Size, got.Rounds, r.want.Size, r.want.Rounds)
					return
				}
				for v := range r.want.MIS {
					if got.MIS[v] != r.want.MIS[v] {
						errs <- fmt.Errorf("algo=%v seed=%d: MIS differs at %d", r.algo, r.seed, v)
						return
					}
				}
			}(r)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if st := s.Stats(); st.SolverRounds <= 0 {
		t.Errorf("solver_rounds_total = %d after %d jobs, want > 0", st.SolverRounds, len(refs)*repeats)
	}
}

// TestJobKeySeparatesTrace: a cached traceless result must not serve a
// trace request and vice versa.
func TestJobKeySeparatesTrace(t *testing.T) {
	h := testInstance(9)
	plain := JobKey(h, hypermis.Options{Algorithm: hypermis.AlgSBL, Seed: 1})
	traced := JobKey(h, hypermis.Options{Algorithm: hypermis.AlgSBL, Seed: 1, Trace: true})
	if plain == traced {
		t.Fatal("JobKey ignores Trace")
	}
}
