package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	hypermis "repro"
	"repro/internal/admit"
	"repro/internal/hgio"
)

// Content types for instance payloads. Text is the default; anything
// containing "binary" or "octet-stream" selects the hgio binary format.
const (
	ContentTypeText   = "text/x-hypergraph"
	ContentTypeBinary = "application/x-hypergraph-binary"
)

// maxBodyBytes bounds instance uploads (64 MiB — far above any
// plausible request, just a backstop against accidental floods).
const maxBodyBytes = 64 << 20

// maxInstanceN caps the declared vertex count of a submitted or
// generated instance. The header's n drives O(n) allocations in every
// solver and in verification, so without this cap a few-byte request
// declaring billions of vertices is a memory-exhaustion attack.
const maxInstanceN = 4 << 20

// maxParRequest bounds the parallelism degree a request may ask for
// (the scheduler caps grants far lower; this is input sanitation).
const maxParRequest = 4096

// SolveResponse is the JSON body of POST /v1/solve. Trace is present
// only on ?trace=1 requests: one record per outer solver round with the
// residual shape (n, m, dim), the vertices decided, and the round's
// wall time in nanoseconds.
type SolveResponse struct {
	Algorithm string                `json:"algorithm"`
	N         int                   `json:"n"`
	M         int                   `json:"m"`
	Size      int                   `json:"size"`
	Rounds    int                   `json:"rounds"`
	Cached    bool                  `json:"cached"`
	ElapsedMs float64               `json:"elapsed_ms"`
	Depth     int64                 `json:"depth,omitempty"`
	Work      int64                 `json:"work,omitempty"`
	Trace     []hypermis.RoundTrace `json:"trace,omitempty"`
	MIS       []int                 `json:"mis"`
}

// VerifyResponse is the JSON body of POST /v1/verify.
type VerifyResponse struct {
	OK        bool   `json:"ok"`
	Size      int    `json:"size"`
	Violation string `json:"violation,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// NewHandler mounts the service endpoints documented in the package
// comment onto a fresh mux serving s, wrapped with the per-request
// observability layer (trace header, flight recorder, request log —
// see trace.go). /metrics and /v1/debug/requests serve the
// observability state itself and stay outside the wrap: scrapes and
// debug pulls should not pollute the flight recorder they read.
func NewHandler(s *Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", s.handleSolve)
	mux.HandleFunc("POST /v1/color", s.handleColor)
	mux.HandleFunc("POST /v1/transversal", s.handleTransversal)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("POST /v1/verify", s.handleVerify)
	mux.HandleFunc("POST /v1/generate", s.handleGenerate)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	traced := s.withObs(mux)

	outer := http.NewServeMux()
	outer.HandleFunc("GET /metrics", s.handleMetrics)
	outer.HandleFunc("GET /v1/debug/requests", s.handleDebugRequests)
	outer.Handle("/", traced)
	return outer
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// retryAfterSeconds renders d as an integral Retry-After header value:
// rounded up (never telling a client to retry sooner than the estimate)
// and floored at 1, the smallest value the header can honestly carry.
func retryAfterSeconds(d time.Duration) string {
	secs := int64(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// clientKey identifies the requester for rate limiting: the
// X-Hypermis-Client header when the client names itself, else the
// remote IP (without the ephemeral port, so one client is one bucket).
func clientKey(r *http.Request) string {
	if c := r.Header.Get("X-Hypermis-Client"); c != "" {
		return c
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// allowClient charges the request against its client's rate-limit
// bucket; over-limit requests are answered 429 with an honest
// Retry-After and false is returned. A nil limiter admits everything.
func (s *Server) allowClient(w http.ResponseWriter, r *http.Request) bool {
	ok, retryAfter := s.limiter.Allow(clientKey(r))
	if ok {
		return true
	}
	s.metrics.RateLimited.Add(1)
	w.Header().Set("Retry-After", retryAfterSeconds(retryAfter))
	httpError(w, http.StatusTooManyRequests, "rate limit exceeded for client %q", clientKey(r))
	return false
}

// requestPriority resolves the request's admission class: the
// ?priority= query parameter wins, then the X-Hypermis-Priority
// header, then def (interactive for /v1/solve, batch for the bulk
// endpoints). Unknown values are the caller's 400.
func requestPriority(r *http.Request, def admit.Priority) (admit.Priority, error) {
	v := r.URL.Query().Get("priority")
	if v == "" {
		v = r.Header.Get("X-Hypermis-Priority")
	}
	return admit.Parse(v, def)
}

// requestDeadline applies the ?deadline_ms= query parameter — the
// client's end-to-end latency budget — to ctx, enabling deadline-aware
// admission for this request. Zero/absent leaves ctx alone.
func requestDeadline(r *http.Request) (context.Context, context.CancelFunc, error) {
	ctx := r.Context()
	v := r.URL.Query().Get("deadline_ms")
	if v == "" {
		return ctx, func() {}, nil
	}
	ms, err := strconv.ParseInt(v, 10, 64)
	if err != nil || ms <= 0 {
		return ctx, func() {}, fmt.Errorf("bad deadline_ms %q (want a positive integer)", v)
	}
	ctx, cancel := context.WithTimeout(ctx, time.Duration(ms)*time.Millisecond)
	return ctx, cancel, nil
}

func wantsBinary(contentType string) bool {
	return strings.Contains(contentType, "binary") || strings.Contains(contentType, "octet-stream")
}

func readInstanceBody(r *http.Request) (*hypermis.Hypergraph, error) {
	body := http.MaxBytesReader(nil, r.Body, maxBodyBytes)
	var h *hypermis.Hypergraph
	var err error
	if wantsBinary(r.Header.Get("Content-Type")) {
		h, err = hgio.ReadBinary(body)
	} else {
		h, err = hgio.ReadText(body)
	}
	if err != nil {
		return nil, err
	}
	if h.N() > maxInstanceN {
		return nil, fmt.Errorf("instance declares %d vertices, limit %d", h.N(), maxInstanceN)
	}
	return h, nil
}

func parseSolveOptions(r *http.Request) (hypermis.Options, error) {
	var opts hypermis.Options
	q := r.URL.Query()
	algo, err := hypermis.ParseAlgorithm(q.Get("algo"))
	if err != nil {
		return opts, err
	}
	opts.Algorithm = algo
	if v := q.Get("seed"); v != "" {
		seed, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return opts, fmt.Errorf("bad seed %q", v)
		}
		opts.Seed = seed
	}
	if v := q.Get("alpha"); v != "" {
		alpha, err := strconv.ParseFloat(v, 64)
		if err != nil || alpha < 0 || alpha >= 1 {
			return opts, fmt.Errorf("bad alpha %q (want [0,1))", v)
		}
		opts.Alpha = alpha
	}
	opts.UseGreedyTail = q.Get("greedytail") == "1" || q.Get("greedytail") == "true"
	opts.CollectCost = q.Get("cost") == "1" || q.Get("cost") == "true"
	opts.Trace = q.Get("trace") == "1" || q.Get("trace") == "true"
	if v := q.Get("par"); v != "" {
		p, err := strconv.Atoi(v)
		if err != nil || p < 0 || p > maxParRequest {
			return opts, fmt.Errorf("bad par %q (want 0..%d)", v, maxParRequest)
		}
		// The requested degree; the scheduler caps it by
		// MaxJobParallelism and the free-token count at grant time.
		opts.Parallelism = p
	}
	return opts, nil
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	s.handleWork(w, r, WorkSolve)
}

// SolveResponseFor builds the wire response for one completed solve —
// shared by the solve, batch and async-job paths (and the `hypermis
// batch` CLI's local mode) so they all report identical shapes.
func SolveResponseFor(h *hypermis.Hypergraph, res *hypermis.Result, cached bool, elapsed time.Duration) *SolveResponse {
	mis := make([]int, 0, res.Size)
	for v, in := range res.MIS {
		if in {
			mis = append(mis, v)
		}
	}
	return &SolveResponse{
		Algorithm: res.Algorithm.String(),
		N:         h.N(),
		M:         h.M(),
		Size:      res.Size,
		Rounds:    res.Rounds,
		Cached:    cached,
		ElapsedMs: float64(elapsed) / float64(time.Millisecond),
		Depth:     res.Depth,
		Work:      res.Work,
		Trace:     res.Trace,
		MIS:       mis,
	}
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	h, err := readInstanceBody(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading instance: %v", err)
		return
	}
	misParam := r.URL.Query().Get("mis")
	mask := make([]bool, h.N())
	size := 0
	if misParam != "" {
		for _, f := range strings.Split(misParam, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || v < 0 || v >= h.N() {
				httpError(w, http.StatusBadRequest, "bad mis vertex %q", f)
				return
			}
			if !mask[v] {
				mask[v] = true
				size++
			}
		}
	}
	s.metrics.Verifies.Add(1)
	if err := hypermis.VerifyMIS(h, mask); err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, VerifyResponse{OK: false, Size: size, Violation: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, VerifyResponse{OK: true, Size: size})
}

func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	getInt := func(name string, def int) (int, error) {
		v := q.Get(name)
		if v == "" {
			return def, nil
		}
		i, err := strconv.Atoi(v)
		if err != nil {
			return 0, fmt.Errorf("bad %s %q", name, v)
		}
		return i, nil
	}
	var parseErr error
	geti := func(name string, def int) int {
		i, err := getInt(name, def)
		if err != nil && parseErr == nil {
			parseErr = err
		}
		return i
	}
	n := geti("n", 1000)
	m := geti("m", 2000)
	d := geti("d", 3)
	minS := geti("min", 2)
	maxS := geti("max", 6)
	if parseErr != nil {
		httpError(w, http.StatusBadRequest, "%v", parseErr)
		return
	}
	// Resource policy for the inline (unqueued) generate path: bound the
	// instance size and, because generation cost is ~m × edge size (m²
	// for linear's pairwise rejection), the total work a single request
	// can demand. The library itself allows more — these caps are the
	// serving layer's, mirroring maxInstanceN on the ingest side.
	const (
		maxGenEdgeSize = 64
		maxGenWork     = 1 << 26
		maxGenLinearM  = 1 << 10
	)
	kind := q.Get("kind")
	if n <= 0 || m < 0 || n > maxInstanceN || m > maxInstanceN {
		httpError(w, http.StatusBadRequest, "n, m must be in (0, %d]", maxInstanceN)
		return
	}
	if d > maxGenEdgeSize || maxS > maxGenEdgeSize {
		httpError(w, http.StatusBadRequest, "edge sizes are capped at %d", maxGenEdgeSize)
		return
	}
	if widest := max(d, maxS, 2); m*widest > maxGenWork {
		httpError(w, http.StatusBadRequest, "m × edge size exceeds the work cap %d", maxGenWork)
		return
	}
	if kind == "linear" && m > maxGenLinearM {
		httpError(w, http.StatusBadRequest, "linear generation is capped at m <= %d", maxGenLinearM)
		return
	}
	var seed uint64 = 1
	if v := q.Get("seed"); v != "" {
		var err error
		if seed, err = strconv.ParseUint(v, 10, 64); err != nil {
			httpError(w, http.StatusBadRequest, "bad seed %q", v)
			return
		}
	}
	h, err := hypermis.Generate(hypermis.GenerateSpec{
		Kind: kind, Seed: seed, N: n, M: m, D: d, MinSize: minS, MaxSize: maxS,
	})
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.metrics.Generates.Add(1)

	var buf bytes.Buffer
	binary := q.Get("format") == "bin" || wantsBinary(r.Header.Get("Accept"))
	if binary {
		err = hgio.WriteBinary(&buf, h)
	} else {
		err = hgio.WriteText(&buf, h)
	}
	if err != nil {
		httpError(w, http.StatusInternalServerError, "encoding: %v", err)
		return
	}
	if binary {
		w.Header().Set("Content-Type", ContentTypeBinary)
	} else {
		w.Header().Set("Content-Type", ContentTypeText)
	}
	w.Header().Set("X-Instance-Digest", hgio.Digest(h))
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	_, _ = w.Write(buf.Bytes())
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
