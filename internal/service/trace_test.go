package service

import (
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"

	hypermis "repro"
	"repro/internal/obs"
)

var traceIDPattern = regexp.MustCompile(`^[0-9a-f]{16}$`)

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, raw)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestTraceHeaderOnResponses(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	h := hypermis.RandomMixed(7, 60, 120, 2, 4)

	_, resp := postSolve(t, ts, "algo=sbl&seed=1", instanceText(t, h), ContentTypeText)
	id := resp.Header.Get(TraceHeader)
	if !traceIDPattern.MatchString(id) {
		t.Fatalf("solve response %s = %q, want 16 hex digits", TraceHeader, id)
	}

	// Error responses carry the header too — the wrap sets it before
	// the handler runs.
	resp2, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	id2 := resp2.Header.Get(TraceHeader)
	if !traceIDPattern.MatchString(id2) || id2 == id {
		t.Fatalf("stats trace id %q (solve was %q): want a fresh 16-hex id", id2, id)
	}
}

func TestDebugRequestsSpanBreakdown(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	h := hypermis.RandomMixed(11, 300, 600, 2, 5)

	_, resp := postSolve(t, ts, "algo=kuw&seed=2", instanceText(t, h), ContentTypeText)
	traceID := resp.Header.Get(TraceHeader)

	var dbg debugRequestsResponse
	getJSON(t, ts.URL+"/v1/debug/requests", &dbg)
	if dbg.TracesRecorded == 0 || len(dbg.Recent) == 0 || len(dbg.Slowest) == 0 {
		t.Fatalf("flight recorder empty after a solve: %+v", dbg)
	}

	// Pull the solve's own trace by id and check the span breakdown
	// covers the whole path: decode, queue wait, solve, encode.
	var byID debugRequestsResponse
	getJSON(t, ts.URL+"/v1/debug/requests?trace="+traceID, &byID)
	if len(byID.Recent) != 1 {
		t.Fatalf("trace filter %q returned %d recent traces, want 1", traceID, len(byID.Recent))
	}
	rec := byID.Recent[0]
	if rec.TraceID != traceID || rec.Endpoint != "POST /v1/solve" || rec.Status != http.StatusOK {
		t.Fatalf("unexpected trace record %+v", rec)
	}
	if rec.DurationMs <= 0 || rec.Rounds <= 0 {
		t.Fatalf("trace missing duration/rounds: %+v", rec)
	}
	got := make(map[string]bool, len(rec.Spans))
	for _, sp := range rec.Spans {
		got[sp.Name] = true
		if sp.DurUs < 0 || sp.StartUs < 0 {
			t.Fatalf("negative span timing %+v", sp)
		}
	}
	for _, want := range []string{"decode", "queue-wait", "solve", "encode"} {
		if !got[want] {
			t.Fatalf("trace lacks %q span; spans = %+v", want, rec.Spans)
		}
	}
	if rec.Detail == "" || !strings.Contains(rec.Detail, "algo=kuw") {
		t.Fatalf("trace detail %q lacks algo annotation", rec.Detail)
	}

	// Endpoint filtering: a substring that matches nothing comes back
	// empty, the solve endpoint matches at least our request.
	var none debugRequestsResponse
	getJSON(t, ts.URL+"/v1/debug/requests?endpoint=/v1/nope", &none)
	if len(none.Recent) != 0 || len(none.Slowest) != 0 {
		t.Fatalf("bogus endpoint filter matched traces: %+v", none)
	}
	var solves debugRequestsResponse
	getJSON(t, ts.URL+"/v1/debug/requests?endpoint=/v1/solve", &solves)
	if len(solves.Recent) == 0 {
		t.Fatal("endpoint filter /v1/solve matched nothing")
	}

	resp3, err := http.Get(ts.URL + "/v1/debug/requests?min_ms=nope")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad min_ms: status %d, want 400", resp3.StatusCode)
	}
}

func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	h := hypermis.RandomMixed(3, 80, 160, 2, 4)
	body := instanceText(t, h)
	postSolve(t, ts, "algo=sbl&seed=1", body, ContentTypeText)
	postSolve(t, ts, "algo=sbl&seed=1", body, ContentTypeText) // cache hit
	postSolve(t, ts, "algo=greedy", body, ContentTypeText)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentTypeProm {
		t.Fatalf("content type %q, want %q", ct, obs.ContentTypeProm)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)

	samples, errs := obs.LintExposition(strings.NewReader(text))
	if len(errs) > 0 {
		t.Fatalf("exposition lint failed: %v\n%s", errs, text)
	}
	if samples < 20 {
		t.Fatalf("only %d samples exposed", samples)
	}

	for _, want := range []string{
		"hypermisd_solves_total 2",
		"hypermisd_cache_hits_total 1",
		`hypermisd_algo_solves_total{algo="sbl"} 1`,
		`hypermisd_algo_solves_total{algo="greedy"} 1`,
		`hypermisd_solve_latency_seconds_bucket{le="+Inf"} 2`,
		"hypermisd_solve_latency_seconds_count 2",
		"hypermisd_traces_recorded_total",
		"hypermisd_workers 2",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition lacks %q:\n%s", want, text)
		}
	}

	// The scrape itself must not enter the flight recorder — /metrics is
	// mounted outside the tracing wrap.
	if id := resp.Header.Get(TraceHeader); id != "" {
		t.Fatalf("/metrics response carries a trace id %q", id)
	}
	var dbg debugRequestsResponse
	getJSON(t, ts.URL+"/v1/debug/requests?endpoint=/metrics", &dbg)
	if len(dbg.Recent) != 0 {
		t.Fatalf("/metrics scrapes leaked into the flight recorder: %+v", dbg.Recent)
	}
}

func TestTracingDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, DisableTracing: true})
	h := hypermis.RandomMixed(5, 40, 80, 2, 4)

	_, resp := postSolve(t, ts, "algo=sbl", instanceText(t, h), ContentTypeText)
	if id := resp.Header.Get(TraceHeader); id != "" {
		t.Fatalf("tracing disabled but response carries trace id %q", id)
	}

	resp2, err := http.Get(ts.URL + "/v1/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("/v1/debug/requests with tracing disabled: status %d, want 404", resp2.StatusCode)
	}

	// /metrics keeps working without the recorder.
	resp3, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp3.Body)
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("/metrics with tracing disabled: status %d", resp3.StatusCode)
	}
	if _, errs := obs.LintExposition(strings.NewReader(string(raw))); len(errs) > 0 {
		t.Fatalf("lint with tracing disabled: %v", errs)
	}
	if !strings.Contains(string(raw), "hypermisd_traces_recorded_total 0") {
		t.Fatal("traces_recorded_total should read 0 with tracing disabled")
	}
}

func TestAsyncJobTraces(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	h := hypermis.RandomMixed(13, 80, 160, 2, 4)

	code, js := jobRequest(t, http.MethodPost, ts.URL+"/v1/jobs?algo=sbl&seed=4", instanceText(t, h))
	if code != http.StatusAccepted || js.JobID == "" {
		t.Fatalf("job submit: status %d, %+v", code, js)
	}
	_, js = pollJob(t, ts.URL, js.JobID, 10*time.Second, func(c int, j JobStatusResponse) bool {
		return j.Status == JobDone
	})
	if js.Status != JobDone {
		t.Fatalf("job never finished: %+v", js)
	}

	// The detached worker records its own JOB trace naming the job id.
	var dbg debugRequestsResponse
	getJSON(t, ts.URL+"/v1/debug/requests?endpoint=JOB", &dbg)
	found := false
	for _, rec := range dbg.Recent {
		if strings.Contains(rec.Detail, "job="+js.JobID) {
			found = true
			if rec.Status != http.StatusOK {
				t.Fatalf("done job trace status %d, want 200: %+v", rec.Status, rec)
			}
			spans := make(map[string]bool)
			for _, sp := range rec.Spans {
				spans[sp.Name] = true
			}
			if !spans["solve"] {
				t.Fatalf("job trace lacks solve span: %+v", rec.Spans)
			}
		}
	}
	if !found {
		t.Fatalf("no JOB trace for job %s in %+v", js.JobID, dbg.Recent)
	}
}
